/**
 * @file
 * Figure 7 reproduction: system throughput (STP, Eq. 2) of every
 * policy across the nine scenarios, normalized to Planaria as in the
 * paper.  Headline claims (Sec. V-C): MoCA improves STP by 1.7x
 * geomean (up to 2.3x) over Planaria, 1.7x (up to 2.1x) over static,
 * and 12.5x geomean over Prema; Workload-A (light models) shows the
 * biggest MoCA-vs-Planaria gaps because migrations rival the light
 * models' runtimes.
 *
 * Usage: fig7_stp [tasks=N] [seed=S] [load=F]
 *                 [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Figure 7: system throughput normalized to "
                "Planaria (tasks=%d seed=%llu jobs=%d) ==\n\n",
                mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    Table t({"Scenario", "Prema", "Static", "Planaria", "MoCA",
             "MoCA STP (abs)"});
    std::vector<double> vs_prema, vs_static, vs_planaria;
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        const double plan =
            cell.result(exp::PolicyKind::Planaria).metrics.stp;
        const double prema =
            cell.result(exp::PolicyKind::Prema).metrics.stp;
        const double stat =
            cell.result(exp::PolicyKind::StaticPartition).metrics.stp;
        const double m = cell.result(exp::PolicyKind::Moca).metrics.stp;
        t.row().cell(name).cell(prema / plan, 3).cell(stat / plan, 3)
            .cell(1.0, 3).cell(m / plan, 3).cell(m, 2);
        vs_prema.push_back(m / prema);
        vs_static.push_back(m / stat);
        vs_planaria.push_back(m / plan);
    }
    t.print("Figure 7: STP normalized to Planaria");
    t.writeCsv("fig7_stp.csv");

    Table s({"MoCA STP vs.", "geomean", "max",
             "paper geomean", "paper max"});
    s.row().cell("Prema").cell(geomean(vs_prema), 2)
        .cell(*std::max_element(vs_prema.begin(), vs_prema.end()), 2)
        .cell("12.5").cell("20.5");
    s.row().cell("Static").cell(geomean(vs_static), 2)
        .cell(*std::max_element(vs_static.begin(), vs_static.end()), 2)
        .cell("1.7").cell("2.1");
    s.row().cell("Planaria").cell(geomean(vs_planaria), 2)
        .cell(*std::max_element(vs_planaria.begin(),
                                vs_planaria.end()), 2)
        .cell("1.7").cell("2.3");
    s.print("MoCA STP improvement summary (paper Sec. V-C)");
    return 0;
}
