/**
 * @file
 * Figure 7 reproduction: system throughput (STP, Eq. 2) of every
 * policy across the nine scenarios, normalized to Planaria as in the
 * paper.  Headline claims (Sec. V-C): MoCA improves STP by 1.7x
 * geomean (up to 2.3x) over Planaria, 1.7x (up to 2.1x) over static,
 * and 12.5x geomean over Prema; Workload-A (light models) shows the
 * biggest MoCA-vs-Planaria gaps because migrations rival the light
 * models' runtimes.
 *
 * Usage: fig7_stp [tasks=N] [seed=S] [load=F]
 *                 [--policy SPEC[,SPEC...]] [--list-policies]
 *                 [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const auto policies = exp::policiesFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));
    mcfg.policies = policies;

    // The paper normalizes to Planaria; when it was deselected,
    // normalize to the first policy given.
    const std::string norm =
        std::find(policies.begin(), policies.end(), "planaria") !=
            policies.end()
        ? "planaria"
        : policies.front();

    std::printf("== Figure 7: system throughput normalized to %s "
                "(tasks=%d seed=%llu jobs=%d) ==\n\n", norm.c_str(),
                mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    std::vector<std::string> header = {"Scenario"};
    header.insert(header.end(), policies.begin(), policies.end());
    header.push_back("MoCA STP (abs)");
    Table t(header);
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        const double base = cell.result(norm).metrics.stp;
        t.row().cell(name);
        for (const auto &spec : policies)
            t.cell(cell.result(spec).metrics.stp / base, 3);
        t.cell(cell.has("moca") ? cell.result("moca").metrics.stp
                                : 0.0, 2);
    }
    t.print("Figure 7: STP normalized to " + norm);
    t.writeCsv("fig7_stp.csv");

    const std::string ref = "moca";
    if (std::find(policies.begin(), policies.end(), ref) !=
        policies.end() && policies.size() > 1) {
        auto paper = [](const std::string &spec, bool is_max) {
            if (spec == "prema")
                return is_max ? "20.5" : "12.5";
            if (spec == "static")
                return is_max ? "2.1" : "1.7";
            if (spec == "planaria")
                return is_max ? "2.3" : "1.7";
            return "-";
        };
        Table s({"MoCA STP vs.", "geomean", "max",
                 "paper geomean", "paper max"});
        for (const auto &spec : policies) {
            if (spec == ref)
                continue;
            std::vector<double> ratios;
            for (const auto &cell : matrix)
                ratios.push_back(cell.result(ref).metrics.stp /
                                 cell.result(spec).metrics.stp);
            s.row().cell(spec).cell(geomean(ratios), 2)
                .cell(*std::max_element(ratios.begin(),
                                        ratios.end()), 2)
                .cell(paper(spec, false)).cell(paper(spec, true));
        }
        s.print("MoCA STP improvement summary (paper Sec. V-C)");
    }
    return 0;
}
