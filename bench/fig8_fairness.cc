/**
 * @file
 * Figure 8 reproduction: fairness (Eq. 1, priority-weighted
 * proportional progress, min-over-pairs) of every policy across the
 * nine scenarios, normalized to Planaria.  Headline claims
 * (Sec. V-D): MoCA improves fairness by 1.8x geomean over Prema,
 * 1.07x over static, 1.2x over Planaria; the benefit is most
 * pronounced for Workload-B (memory-intensive co-runners starve
 * without regulation); MoCA can dip slightly *below* static for
 * Workload-C where its memory-aware grouping trades fairness for
 * throughput.
 *
 * Usage: fig8_fairness [tasks=N] [seed=S] [load=F]
 *                      [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Figure 8: fairness normalized to Planaria "
                "(tasks=%d seed=%llu jobs=%d) ==\n\n", mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    Table t({"Scenario", "Prema", "Static", "Planaria", "MoCA",
             "MoCA fairness (abs)"});
    std::vector<double> vs_prema, vs_static, vs_planaria;
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        auto fair = [&](exp::PolicyKind k) {
            return std::max(cell.result(k).metrics.fairness, 1e-6);
        };
        const double plan = fair(exp::PolicyKind::Planaria);
        const double prema = fair(exp::PolicyKind::Prema);
        const double stat = fair(exp::PolicyKind::StaticPartition);
        const double m = fair(exp::PolicyKind::Moca);
        t.row().cell(name).cell(prema / plan, 3).cell(stat / plan, 3)
            .cell(1.0, 3).cell(m / plan, 3).cell(m, 4);
        vs_prema.push_back(m / prema);
        vs_static.push_back(m / stat);
        vs_planaria.push_back(m / plan);
    }
    t.print("Figure 8: fairness normalized to Planaria");
    t.writeCsv("fig8_fairness.csv");

    Table s({"MoCA fairness vs.", "geomean", "max",
             "paper geomean", "paper max"});
    s.row().cell("Prema").cell(geomean(vs_prema), 2)
        .cell(*std::max_element(vs_prema.begin(), vs_prema.end()), 2)
        .cell("1.8").cell("2.4");
    s.row().cell("Static").cell(geomean(vs_static), 2)
        .cell(*std::max_element(vs_static.begin(), vs_static.end()), 2)
        .cell("1.07").cell("1.2");
    s.row().cell("Planaria").cell(geomean(vs_planaria), 2)
        .cell(*std::max_element(vs_planaria.begin(),
                                vs_planaria.end()), 2)
        .cell("1.2").cell("1.3");
    s.print("MoCA fairness improvement summary (paper Sec. V-D)");
    return 0;
}
