/**
 * @file
 * Figure 8 reproduction: fairness (Eq. 1, priority-weighted
 * proportional progress, min-over-pairs) of every policy across the
 * nine scenarios, normalized to Planaria.  Headline claims
 * (Sec. V-D): MoCA improves fairness by 1.8x geomean over Prema,
 * 1.07x over static, 1.2x over Planaria; the benefit is most
 * pronounced for Workload-B (memory-intensive co-runners starve
 * without regulation); MoCA can dip slightly *below* static for
 * Workload-C where its memory-aware grouping trades fairness for
 * throughput.
 *
 * Usage: fig8_fairness [tasks=N] [seed=S] [load=F]
 *                      [--policy SPEC[,SPEC...]] [--list-policies]
 *                      [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const auto policies = exp::policiesFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));
    mcfg.policies = policies;

    const std::string norm =
        std::find(policies.begin(), policies.end(), "planaria") !=
            policies.end()
        ? "planaria"
        : policies.front();

    std::printf("== Figure 8: fairness normalized to %s "
                "(tasks=%d seed=%llu jobs=%d) ==\n\n", norm.c_str(),
                mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    std::vector<std::string> header = {"Scenario"};
    header.insert(header.end(), policies.begin(), policies.end());
    header.push_back("MoCA fairness (abs)");
    Table t(header);
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        auto fair = [&](const std::string &spec) {
            return std::max(cell.result(spec).metrics.fairness, 1e-6);
        };
        t.row().cell(name);
        for (const auto &spec : policies)
            t.cell(fair(spec) / fair(norm), 3);
        t.cell(cell.has("moca") ? fair("moca") : 0.0, 4);
    }
    t.print("Figure 8: fairness normalized to " + norm);
    t.writeCsv("fig8_fairness.csv");

    const std::string ref = "moca";
    if (std::find(policies.begin(), policies.end(), ref) !=
        policies.end() && policies.size() > 1) {
        auto paper = [](const std::string &spec, bool is_max) {
            if (spec == "prema")
                return is_max ? "2.4" : "1.8";
            if (spec == "static")
                return is_max ? "1.2" : "1.07";
            if (spec == "planaria")
                return is_max ? "1.3" : "1.2";
            return "-";
        };
        Table s({"MoCA fairness vs.", "geomean", "max",
                 "paper geomean", "paper max"});
        for (const auto &spec : policies) {
            if (spec == ref)
                continue;
            std::vector<double> ratios;
            for (const auto &cell : matrix) {
                const double m = std::max(
                    cell.result(ref).metrics.fairness, 1e-6);
                const double b = std::max(
                    cell.result(spec).metrics.fairness, 1e-6);
                ratios.push_back(m / b);
            }
            s.row().cell(spec).cell(geomean(ratios), 2)
                .cell(*std::max_element(ratios.begin(),
                                        ratios.end()), 2)
                .cell(paper(spec, false)).cell(paper(spec, true));
        }
        s.print("MoCA fairness improvement summary (paper Sec. V-D)");
    }
    return 0;
}
