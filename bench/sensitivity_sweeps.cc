/**
 * @file
 * SoC-configuration sensitivity study, mirroring the artifact
 * appendix's "Experiment customization" (users can reconfigure the
 * shared L2, the accelerator tiles, and the memory system):
 *
 *  - DRAM bandwidth sweep: contention management matters most when
 *    bandwidth is scarce; MoCA's margin over static should shrink as
 *    the channel gets faster.
 *  - Shared L2 capacity sweep: capacity contention drives DRAM
 *    traffic (Fig. 1's AlexNet pathology); more L2 relieves it.
 *  - Tile-count sweep: how the mechanisms scale with the number of
 *    co-located partitions.
 *
 * Usage: sensitivity_sweeps [tasks=N] [seed=S]
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/scenario.h"

using namespace moca;

namespace {

struct Point
{
    double mocaSla = 0.0;
    double staticSla = 0.0;
    double mocaStp = 0.0;
    double staticStp = 0.0;
};

Point
runPoint(const sim::SocConfig &cfg, int tasks, std::uint64_t seed)
{
    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::C;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = tasks;
    trace.seed = seed;
    trace.numTiles = cfg.numTiles;

    exp::clearOracleCache();
    const auto specs = exp::makeTrace(trace, cfg);
    const auto moca =
        exp::runTrace(exp::PolicyKind::Moca, specs, trace, cfg);
    const auto stat = exp::runTrace(exp::PolicyKind::StaticPartition,
                                    specs, trace, cfg);
    exp::clearOracleCache();

    Point p;
    p.mocaSla = moca.metrics.slaRate;
    p.staticSla = stat.metrics.slaRate;
    p.mocaStp = moca.metrics.stp;
    p.staticStp = stat.metrics.stp;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const int tasks = static_cast<int>(args.getInt("tasks", 120));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    std::printf("== SoC sensitivity sweeps (MoCA vs static, "
                "Workload-C QoS-M, tasks=%d) ==\n\n", tasks);

    {
        Table t({"DRAM (GB/s)", "MoCA SLA", "Static SLA",
                 "MoCA/Static", "MoCA STP", "Static STP"});
        for (double bw : {8.0, 16.0, 32.0, 64.0}) {
            sim::SocConfig cfg;
            cfg.dramBytesPerCycle = bw;
            const Point p = runPoint(cfg, tasks, seed);
            t.row().cell(bw, 0).cell(p.mocaSla, 3)
                .cell(p.staticSla, 3)
                .cell(p.mocaSla / std::max(p.staticSla, 1e-3), 2)
                .cell(p.mocaStp, 2).cell(p.staticStp, 2);
        }
        t.print("DRAM bandwidth sweep");
        t.writeCsv("sweep_dram_bw.csv");
    }

    {
        Table t({"L2 (MB)", "MoCA SLA", "Static SLA", "MoCA/Static",
                 "MoCA STP", "Static STP"});
        for (std::uint64_t mb : {1ull, 2ull, 4ull, 8ull}) {
            sim::SocConfig cfg;
            cfg.l2Bytes = mb * MiB;
            const Point p = runPoint(cfg, tasks, seed);
            t.row().cell(static_cast<long long>(mb))
                .cell(p.mocaSla, 3).cell(p.staticSla, 3)
                .cell(p.mocaSla / std::max(p.staticSla, 1e-3), 2)
                .cell(p.mocaStp, 2).cell(p.staticStp, 2);
        }
        t.print("Shared L2 capacity sweep");
        t.writeCsv("sweep_l2.csv");
    }

    {
        Table t({"Tiles", "MoCA SLA", "Static SLA", "MoCA/Static",
                 "MoCA STP", "Static STP"});
        for (int tiles : {4, 8, 16}) {
            sim::SocConfig cfg;
            cfg.numTiles = tiles;
            const Point p = runPoint(cfg, tasks, seed);
            t.row().cell(static_cast<long long>(tiles))
                .cell(p.mocaSla, 3).cell(p.staticSla, 3)
                .cell(p.mocaSla / std::max(p.staticSla, 1e-3), 2)
                .cell(p.mocaStp, 2).cell(p.staticStp, 2);
        }
        t.print("Accelerator tile-count sweep");
        t.writeCsv("sweep_tiles.csv");
    }
    return 0;
}
