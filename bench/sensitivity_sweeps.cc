/**
 * @file
 * SoC-configuration sensitivity study, mirroring the artifact
 * appendix's "Experiment customization" (users can reconfigure the
 * shared L2, the accelerator tiles, and the memory system):
 *
 *  - DRAM bandwidth sweep: contention management matters most when
 *    bandwidth is scarce; MoCA's margin over static should shrink as
 *    the channel gets faster.
 *  - Shared L2 capacity sweep: capacity contention drives DRAM
 *    traffic (Fig. 1's AlexNet pathology); more L2 relieves it.
 *  - Tile-count sweep: how the mechanisms scale with the number of
 *    co-located partitions.
 *
 * All eleven configuration points x two policies run as one grid on
 * the sweep engine; the oracle cache is keyed by the full SoC
 * configuration, so mixed-config cells share it safely.
 *
 * Usage: sensitivity_sweeps [tasks=N] [seed=S]
 *                           [--policy SPEC,SPEC] [--list-policies]
 *                           [--jobs N] [--csv PATH] [--json PATH]
 */

#include <cstdio>

#include "common/log.h"
#include "common/table.h"
#include "common/units.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

struct Point
{
    std::string axisValue; ///< Row label within its sweep table.
    double mocaSla = 0.0;
    double staticSla = 0.0;
    double mocaStp = 0.0;
    double staticStp = 0.0;
};

/** Append the policy-pair cells for one configuration. */
void
addPoint(std::vector<exp::SweepCell> &grid, const std::string &label,
         const std::vector<std::string> &policies,
         const sim::SocConfig &cfg, int tasks, std::uint64_t seed)
{
    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::C;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = tasks;
    trace.seed = seed;
    trace.numTiles = cfg.numTiles;

    exp::appendPolicyCells(grid, label, policies, trace, cfg);
}

void
printSweepTable(const std::string &title, const std::string &axis,
                const std::vector<std::string> &policies,
                const std::vector<exp::SweepCell> &grid,
                const std::vector<exp::ScenarioResult> &results,
                std::size_t lo, std::size_t hi,
                const std::string &csv_path)
{
    const std::string &a = policies[0], &b = policies[1];
    Table t({axis, a + " SLA", b + " SLA", a + "/" + b,
             a + " STP", b + " STP"});
    for (std::size_t i = lo; i + 1 < hi && i + 1 < results.size();
         i += 2) {
        Point p;
        p.axisValue = grid[i].label;
        p.mocaSla = results[i].metrics.slaRate;
        p.mocaStp = results[i].metrics.stp;
        p.staticSla = results[i + 1].metrics.slaRate;
        p.staticStp = results[i + 1].metrics.stp;
        t.row().cell(p.axisValue).cell(p.mocaSla, 3)
            .cell(p.staticSla, 3)
            .cell(p.mocaSla / std::max(p.staticSla, 1e-3), 2)
            .cell(p.mocaStp, 2).cell(p.staticStp, 2);
    }
    t.print(title);
    t.writeCsv(csv_path);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const int tasks = static_cast<int>(args.getInt("tasks", 120));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    // The sweep compares a managed against an unmanaged mechanism;
    // --policy substitutes any two specs (e.g. "moca:tick=2048,moca").
    const auto policies =
        exp::policiesFromArgs(args, {"moca", "static"});
    if (policies.size() != 2)
        fatal("sensitivity_sweeps needs exactly two policy specs, "
              "got %zu", policies.size());

    std::printf("== SoC sensitivity sweeps (%s vs %s, "
                "Workload-C QoS-M, tasks=%d) ==\n\n",
                policies[0].c_str(), policies[1].c_str(), tasks);

    // One grid, three slices: [0,8) DRAM bw, [8,16) L2, [16,22) tiles.
    std::vector<exp::SweepCell> grid;
    for (double bw : {8.0, 16.0, 32.0, 64.0}) {
        sim::SocConfig cfg;
        cfg.dramBytesPerCycle = bw;
        addPoint(grid, strprintf("%.0f", bw), policies, cfg, tasks,
                 seed);
    }
    for (std::uint64_t mb : {1ull, 2ull, 4ull, 8ull}) {
        sim::SocConfig cfg;
        cfg.l2Bytes = mb * MiB;
        addPoint(grid,
                 strprintf("%llu", static_cast<unsigned long long>(mb)),
                 policies, cfg, tasks, seed);
    }
    for (int tiles : {4, 8, 16}) {
        sim::SocConfig cfg;
        cfg.numTiles = tiles;
        addPoint(grid, strprintf("%d", tiles), policies, cfg, tasks,
                 seed);
    }

    const auto sinks = exp::fileSinksFromArgs(args);
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid, sinks.pointers());

    printSweepTable("DRAM bandwidth sweep", "DRAM (GB/s)", policies,
                    grid, results, 0, 8, "sweep_dram_bw.csv");
    printSweepTable("Shared L2 capacity sweep", "L2 (MB)", policies,
                    grid, results, 8, 16, "sweep_l2.csv");
    printSweepTable("Accelerator tile-count sweep", "Tiles", policies,
                    grid, results, 16, 22, "sweep_tiles.csv");
    return 0;
}
