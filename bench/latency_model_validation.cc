/**
 * @file
 * Algorithm 1 validation: the paper reports that the MoCA runtime's
 * latency prediction is "within 10% of measured runtimes across
 * networks and layers".  This harness compares the analytical
 * prediction against the simulator's measured isolated latency for
 * every model at 1/2/4/8 tiles, and demonstrates the overlap_f tuning
 * utility (Sec. III-C) by recovering the overlap factor from a small
 * set of measured layers.
 *
 * Usage: latency_model_validation
 */

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "moca/runtime/latency_model.h"

using namespace moca;

namespace {

/** Measure a single layer's isolated latency by running it as a
 *  one-layer model on the simulator. */
double
measureLayer(const dnn::Layer &layer, int tiles,
             const sim::SocConfig &cfg)
{
    const dnn::Model one("single", dnn::ModelSize::Light, {layer});
    exp::SoloPolicy policy(tiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &one;
    soc.addJob(spec);
    soc.run();
    return static_cast<double>(soc.results()[0].latency());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = bench::socConfigFromArgs(args);

    std::printf("== Algorithm 1 validation: prediction vs. measured "
                "isolated latency ==\n\n");
    bench::printSocBanner(cfg);

    runtime::LatencyModel model(cfg);

    Table t({"Model", "Tiles", "Measured (Kcyc)", "Predicted (Kcyc)",
             "Error %"});
    StatAccum errors;
    double worst = 0.0;
    for (dnn::ModelId id : dnn::allModelIds()) {
        for (int tiles : {1, 2, 4, 8}) {
            const double measured = static_cast<double>(
                exp::isolatedLatency(id, tiles, cfg));
            const double predicted =
                model.estimateModel(dnn::getModel(id), tiles);
            const double err =
                100.0 * (predicted - measured) / measured;
            errors.add(std::abs(err));
            worst = std::max(worst, std::abs(err));
            t.row().cell(dnn::modelIdName(id))
                .cell(static_cast<long long>(tiles))
                .cell(measured / 1e3, 1)
                .cell(predicted / 1e3, 1)
                .cell(err, 1);
        }
    }
    t.print("Per-model prediction error");
    t.writeCsv("latency_validation.csv");

    std::printf("\nmean |error| = %.2f%%, worst |error| = %.2f%% "
                "(paper: within 10%%)\n", errors.mean(), worst);

    // --- overlap_f tuning utility demo --------------------------------
    std::printf("\n== overlap_f tuning utility (Sec. III-C) ==\n");
    std::vector<std::pair<const dnn::Layer *, double>> measured;
    const auto &probe = dnn::getModel(dnn::ModelId::ResNet50);
    // "running a few DNN layers before starting inference queries"
    for (std::size_t i = 2; i < probe.numLayers() && measured.size() < 6;
         i += 7) {
        const dnn::Layer &l = probe.layer(i);
        if (l.layerClass() != dnn::LayerClass::Compute)
            continue;
        measured.push_back({&l, measureLayer(l, 2, cfg)});
    }
    const double tuned = runtime::tuneOverlapF(cfg, measured, 2);
    std::printf("tuned overlap_f = %.2f (SoC configured with %.2f)\n",
                tuned, cfg.overlapF);
    return 0;
}
