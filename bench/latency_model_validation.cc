/**
 * @file
 * Algorithm 1 validation: the paper reports that the MoCA runtime's
 * latency prediction is "within 10% of measured runtimes across
 * networks and layers".  This harness compares the analytical
 * prediction against the simulator's measured isolated latency for
 * every model at 1/2/4/8 tiles — every (model, tiles) point is an
 * independent task on the sweep engine — and demonstrates the
 * overlap_f tuning utility (Sec. III-C) by recovering the overlap
 * factor from a small set of measured layers.
 *
 * Usage: latency_model_validation [--mem SPEC] [--list-mem-models]
 *                                 [--list-policies] [--jobs N]
 *
 * `--mem banked` re-validates Algorithm 1 against the bank-aware
 * memory model: isolated runs keep full row locality, so the
 * runtime's coarse model must stay inside the paper's ~10% band
 * under either memory model (the banner records which one ran).
 */

#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/sweep/options.h"
#include "moca/runtime/latency_model.h"

using namespace moca;

namespace {

/** Measure a single layer's isolated latency by running it as a
 *  one-layer model on the simulator. */
double
measureLayer(const dnn::Layer &layer, int tiles,
             const sim::SocConfig &cfg)
{
    const dnn::Model one("single", dnn::ModelSize::Light, {layer});
    exp::SoloPolicy policy(tiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &one;
    soc.addJob(spec);
    soc.run();
    return static_cast<double>(soc.results()[0].latency());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    // Prediction accuracy is policy-independent; --list-policies
    // still works, and any --policy selection is rejected rather
    // than ignored.
    if (exp::policiesFromArgs(args, {"solo"}) !=
        std::vector<std::string>{"solo"})
        fatal("latency_model_validation measures isolated runs; its "
              "policy is fixed to 'solo' and --policy cannot change "
              "it");
    const int jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Algorithm 1 validation: prediction vs. measured "
                "isolated latency ==\n\n");
    exp::printSocBanner(cfg);

    runtime::LatencyModel model(cfg);

    const auto &ids = dnn::allModelIds();
    const std::vector<int> tile_counts = {1, 2, 4, 8};
    const std::size_t n = ids.size() * tile_counts.size();

    struct Point
    {
        double measured = 0.0;
        double predicted = 0.0;
    };
    std::vector<Point> points(n);
    exp::SweepRunner::runIndexed(n, jobs, [&](std::size_t i) {
        const dnn::ModelId id = ids[i / tile_counts.size()];
        const int tiles = tile_counts[i % tile_counts.size()];
        points[i].measured = static_cast<double>(
            exp::isolatedLatency(id, tiles, cfg));
        points[i].predicted =
            model.estimateModel(dnn::getModel(id), tiles);
    });

    Table t({"Model", "Tiles", "Measured (Kcyc)", "Predicted (Kcyc)",
             "Error %"});
    StatAccum errors;
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const dnn::ModelId id = ids[i / tile_counts.size()];
        const int tiles = tile_counts[i % tile_counts.size()];
        const double err = 100.0 *
            (points[i].predicted - points[i].measured) /
            points[i].measured;
        errors.add(std::abs(err));
        worst = std::max(worst, std::abs(err));
        t.row().cell(dnn::modelIdName(id))
            .cell(static_cast<long long>(tiles))
            .cell(points[i].measured / 1e3, 1)
            .cell(points[i].predicted / 1e3, 1)
            .cell(err, 1);
    }
    t.print("Per-model prediction error");
    t.writeCsv("latency_validation.csv");

    std::printf("\nmean |error| = %.2f%%, worst |error| = %.2f%% "
                "(paper: within 10%%)\n", errors.mean(), worst);

    // --- overlap_f tuning utility demo --------------------------------
    std::printf("\n== overlap_f tuning utility (Sec. III-C) ==\n");
    std::vector<std::pair<const dnn::Layer *, double>> measured;
    const auto &probe = dnn::getModel(dnn::ModelId::ResNet50);
    // "running a few DNN layers before starting inference queries"
    for (std::size_t i = 2; i < probe.numLayers() && measured.size() < 6;
         i += 7) {
        const dnn::Layer &l = probe.layer(i);
        if (l.layerClass() != dnn::LayerClass::Compute)
            continue;
        measured.push_back({&l, measureLayer(l, 2, cfg)});
    }
    const double tuned = runtime::tuneOverlapF(cfg, measured, 2);
    std::printf("tuned overlap_f = %.2f (SoC configured with %.2f)\n",
                tuned, cfg.overlapF);
    return 0;
}
