#include <cstdio>
#include "exp/matrix.h"
using namespace moca;
int main(int argc, char** argv) {
    ArgMap dummy(0,nullptr); (void)argc; (void)argv;
    sim::SocConfig cfg;
    for (double load : {1.0, 1.5, 2.0}) {
        for (double qs : {1.0, 1.5, 2.0, 3.0}) {
            workload::TraceConfig tr;
            tr.set = workload::WorkloadSet::C;
            tr.qos = workload::QosLevel::Medium;
            tr.numTasks = 150; tr.loadFactor = load; tr.qosScale = qs; tr.seed = 2;
            const auto specs = exp::makeTrace(tr, cfg);
            std::printf("load=%.1f qos=%.1f :", load, qs);
            for (auto kind : exp::allPolicies()) {
                auto r = exp::runTrace(kind, specs, tr, cfg);
                std::printf("  %s=%.2f(stp %.1f)", exp::policyKindName(kind), r.metrics.slaRate, r.metrics.stp);
            }
            std::printf("\n"); std::fflush(stdout);
        }
    }
    return 0;
}
