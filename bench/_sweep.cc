/**
 * @file
 * Smoke sweep + throughput baseline for the parallel experiment
 * engine.  The default mode replays the historical 12-point
 * (load x qos_scale) grid under all four policies through
 * `exp::SweepRunner`.  `timing=1` instead times a fig5-sized grid at
 * `--jobs 1` versus `--jobs <hw_concurrency>` and prints the
 * speedup, so future PRs can track sweep throughput against this
 * PR's baseline.
 *
 * Usage: _sweep [tasks=N] [--policy SPEC[,SPEC...]]
 *               [--list-policies] [--jobs N] [--csv PATH]
 *               [--json PATH] [timing=1 [timing_tasks=N]]
 */

#include <cstdio>

#include "common/log.h"
#include "common/table.h"
#include "common/walltime.h"
#include "exp/matrix.h"
#include "exp/oracle.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

double
wallSeconds(const std::function<void()> &fn)
{
    const WallTimer timer;
    fn();
    return timer.seconds();
}

/** Time the 36-cell fig5 grid at a given worker count. */
double
timeMatrix(int tasks, int jobs)
{
    exp::MatrixConfig mcfg;
    mcfg.numTasks = tasks;
    mcfg.verbose = false;
    mcfg.jobs = jobs;
    const sim::SocConfig cfg;
    return wallSeconds([&] { exp::runMatrix(mcfg, cfg); });
}

int
runTimingBaseline(const ArgMap &args)
{
    const int tasks = static_cast<int>(args.getInt("timing_tasks", 100));
    const int hw = exp::resolveJobs(0);

    std::printf("== sweep throughput baseline: fig5-sized grid "
                "(36 cells, tasks=%d) ==\n\n", tasks);

    // Warm the oracle cache once so both measurements exercise the
    // same (simulation-only) work.
    exp::clearOracleCache();
    (void)timeMatrix(10, 1);

    const double serial = timeMatrix(tasks, 1);
    const double parallel = timeMatrix(tasks, hw);

    Table t({"jobs", "wall (s)", "speedup"});
    t.row().cell(1LL).cell(serial, 2).cell(1.0, 2);
    t.row().cell(static_cast<long long>(hw)).cell(parallel, 2)
        .cell(serial / parallel, 2);
    t.print("fig5-sized grid wall-clock");
    std::printf("\nhardware concurrency: %d\n", hw);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const auto policies = exp::policiesFromArgs(args);
    if (args.getBool("timing", false))
        return runTimingBaseline(args);

    const int tasks = static_cast<int>(args.getInt("tasks", 150));
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);

    // The historical smoke grid: Workload-C QoS-M at three offered
    // loads and four QoS scales, each under the selected policies on
    // the identical trace.
    std::vector<exp::SweepCell> grid;
    for (double load : {1.0, 1.5, 2.0}) {
        for (double qs : {1.0, 1.5, 2.0, 3.0}) {
            workload::TraceConfig tr;
            tr.set = workload::WorkloadSet::C;
            tr.qos = workload::QosLevel::Medium;
            tr.numTasks = tasks;
            tr.loadFactor = load;
            tr.qosScale = qs;
            tr.seed = 2;
            exp::appendPolicyCells(
                grid, strprintf("load=%.1f qos=%.1f", load, qs),
                policies, tr, cfg);
        }
    }

    const auto sinks = exp::fileSinksFromArgs(args);
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid, sinks.pointers());

    for (std::size_t i = 0; i < results.size();) {
        std::printf("%s :", grid[i].label.c_str());
        for (std::size_t p = 0; p < policies.size(); ++p, ++i) {
            std::printf("  %s=%.2f(stp %.1f)",
                        results[i].policy.c_str(),
                        results[i].metrics.slaRate,
                        results[i].metrics.stp);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
