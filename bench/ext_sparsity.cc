/**
 * @file
 * Sparse-DNN extension study (the paper's Limitations section): MoCA
 * assumes dense workloads because "if sparsity is considered in
 * hardware, it can be challenging to estimate the memory requirements
 * of the DNN layers during runtime", but "can be augmented with an
 * accurate performance and memory resource predictor of sparse DNNs".
 *
 * This bench implements that augmentation and quantifies it:
 *
 *  1. Prediction accuracy of the sparsity-aware vs dense-assuming
 *     Algorithm 1 on magnitude-pruned variants of the zoo (density
 *     1.0 / 0.5 / 0.25).
 *  2. A mixed dense/pruned multi-tenant run under MoCA with each
 *     predictor — end-to-end sensitivity of the runtime to the
 *     prediction error.  (The first-order effect is on prediction
 *     accuracy itself, which SLA budgeting and admission control
 *     depend on; allocation-side effects are second-order because a
 *     uniformly scaled mis-estimate preserves relative orderings.)
 *
 * Usage: ext_sparsity [tasks=N] [seed=S]
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/scenario.h"
#include "moca/moca_policy.h"
#include "moca/runtime/latency_model.h"
#include "sim/soc.h"

using namespace moca;

namespace {

/** Measure a sparse model's isolated latency on `tiles` tiles. */
double
measureIsolated(const dnn::Model &model, int tiles,
                const sim::SocConfig &cfg)
{
    exp::SoloPolicy policy(tiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &model;
    soc.addJob(spec);
    soc.run();
    return static_cast<double>(soc.results()[0].latency());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = bench::socConfigFromArgs(args);
    const int tasks = static_cast<int>(args.getInt("tasks", 120));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    std::printf("== Sparse-DNN extension (paper Sec. III-E) ==\n\n");
    bench::printSocBanner(cfg);

    // ---- 1. Predictor accuracy on pruned networks --------------------
    runtime::LatencyModel aware(cfg, true);
    runtime::LatencyModel dense(cfg, false);

    Table t({"Model", "Density", "Measured (Kcyc)",
             "Aware err %", "Dense-assume err %"});
    StatAccum aware_err, dense_err;
    for (dnn::ModelId id :
         {dnn::ModelId::ResNet50, dnn::ModelId::AlexNet,
          dnn::ModelId::GoogleNet, dnn::ModelId::YoloV2}) {
        for (double density : {1.0, 0.5, 0.25}) {
            const dnn::Model sparse =
                dnn::sparsifyModel(dnn::getModel(id), density);
            const double measured = measureIsolated(sparse, 2, cfg);
            const double ea = 100.0 *
                (aware.estimateModel(sparse, 2) - measured) /
                measured;
            const double ed = 100.0 *
                (dense.estimateModel(sparse, 2) - measured) /
                measured;
            aware_err.add(std::abs(ea));
            dense_err.add(std::abs(ed));
            t.row().cell(dnn::getModel(id).name()).cell(density, 2)
                .cell(measured / 1e3, 1).cell(ea, 1).cell(ed, 1);
        }
    }
    t.print("Algorithm 1 on pruned networks: sparsity-aware vs "
            "dense-assuming predictor");
    t.writeCsv("ext_sparsity_prediction.csv");
    std::printf("\nmean |error|: aware %.1f%%, dense-assuming %.1f%%\n",
                aware_err.mean(), dense_err.mean());

    // ---- 2. Multi-tenant impact of the predictor ---------------------
    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::B;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = tasks;
    trace.seed = seed;
    auto specs = exp::makeTrace(trace, cfg);

    // Swap every job's model for its 25%-density pruned variant.
    std::vector<dnn::Model> sparse_models;
    sparse_models.reserve(dnn::allModelIds().size());
    std::vector<const dnn::Model *> by_id(
        dnn::allModelIds().size(), nullptr);
    for (dnn::ModelId id : dnn::allModelIds()) {
        sparse_models.push_back(
            dnn::sparsifyModel(dnn::getModel(id), 0.25));
        by_id[static_cast<std::size_t>(id)] = &sparse_models.back();
    }
    // Memoized isolated latencies of the sparse variants.
    std::vector<double> iso1(by_id.size(), 0.0);
    std::vector<double> iso8(by_id.size(), 0.0);
    for (std::size_t i = 0; i < by_id.size(); ++i) {
        if (by_id[i] != nullptr) {
            iso1[i] = measureIsolated(*by_id[i], 1, cfg);
            iso8[i] = measureIsolated(*by_id[i], cfg.numTiles, cfg);
        }
    }
    // Mixed-density deployment: every other job runs the pruned
    // variant.  A uniformly mis-scaled predictor would keep relative
    // allocations intact; the mixed case is where dense assumptions
    // misjudge jobs *relative to each other*.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto &s = specs[i];
        if (i % 2 != 0)
            continue;
        const auto id = static_cast<std::size_t>(
            dnn::modelIdFromName(s.model->name()));
        s.model = by_id[id];
        // Keep edge-grade targets: scale the SLA to the sparse
        // isolated latency.
        s.slaLatency = static_cast<Cycles>(
            trace.qosScale * workload::qosMultiplier(trace.qos) *
            iso1[id]);
    }

    Table t2({"Predictor", "SLA (all)", "SLA (pruned jobs)",
              "SLA (dense jobs)", "STP"});
    for (bool is_aware : {true, false}) {
        MocaPolicyConfig pc;
        pc.sparsityAwarePredictor = is_aware;
        MocaPolicy policy(cfg, pc);
        sim::Soc soc(cfg, policy);
        for (const auto &s : specs)
            soc.addJob(s);
        soc.run();
        // C_single per job depends on whether it ran pruned; use a
        // per-kind oracle keyed on the base network with the sparse
        // latency for even ids (matching the substitution above).
        std::vector<sim::JobResult> sparse_jobs, dense_jobs;
        for (const auto &r : soc.results()) {
            if (r.spec.id % 2 == 0)
                sparse_jobs.push_back(r);
            else
                dense_jobs.push_back(r);
        }
        const auto m_sparse = metrics::computeMetrics(
            sparse_jobs, [&](dnn::ModelId id) {
                return static_cast<Cycles>(
                    iso8[static_cast<std::size_t>(id)]);
            });
        const auto m_dense = metrics::computeMetrics(
            dense_jobs, [&](dnn::ModelId id) {
                return exp::isolatedLatency(id, cfg.numTiles, cfg);
            });
        const double sla =
            (m_sparse.slaRate * sparse_jobs.size() +
             m_dense.slaRate * dense_jobs.size()) /
            std::max<std::size_t>(1, soc.results().size());
        t2.row().cell(is_aware ? "sparsity-aware" : "dense-assuming")
            .cell(sla, 3)
            .cell(m_sparse.slaRate, 3)
            .cell(m_dense.slaRate, 3)
            .cell(m_sparse.stp + m_dense.stp, 2);
    }
    t2.print("MoCA on a mixed dense/25%-density deployment "
             "(Workload-B, QoS-M)");
    t2.writeCsv("ext_sparsity_multitenant.csv");
    return 0;
}
