/**
 * @file
 * Sparse-DNN extension study (the paper's Limitations section): MoCA
 * assumes dense workloads because "if sparsity is considered in
 * hardware, it can be challenging to estimate the memory requirements
 * of the DNN layers during runtime", but "can be augmented with an
 * accurate performance and memory resource predictor of sparse DNNs".
 *
 * This bench implements that augmentation and quantifies it:
 *
 *  1. Prediction accuracy of the sparsity-aware vs dense-assuming
 *     Algorithm 1 on magnitude-pruned variants of the zoo (density
 *     1.0 / 0.5 / 0.25) — each (model, density) point an independent
 *     task on the sweep engine.
 *  2. A mixed dense/pruned multi-tenant run under MoCA with each
 *     predictor — end-to-end sensitivity of the runtime to the
 *     prediction error, as two parameterized policy specs
 *     ("moca:sparsity_aware=1|0") replaying the identical mutated
 *     trace.
 *
 * Usage: ext_sparsity [tasks=N] [seed=S] [--policy SPEC,SPEC]
 *                     [--list-policies] [--jobs N]
 */

#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/sweep/options.h"
#include "moca/runtime/latency_model.h"
#include "sim/soc.h"

using namespace moca;

namespace {

/** Measure a sparse model's isolated latency on `tiles` tiles. */
double
measureIsolated(const dnn::Model &model, int tiles,
                const sim::SocConfig &cfg)
{
    exp::SoloPolicy policy(tiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &model;
    soc.addJob(spec);
    soc.run();
    return static_cast<double>(soc.results()[0].latency());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const int tasks = static_cast<int>(args.getInt("tasks", 120));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const int jobs = static_cast<int>(args.getInt("jobs", 1));
    // The predictor pair under comparison, overridable via --policy.
    const auto predictor_specs = exp::policiesFromArgs(
        args, {"moca:sparsity_aware=1", "moca:sparsity_aware=0"});

    std::printf("== Sparse-DNN extension (paper Sec. III-E) ==\n\n");
    exp::printSocBanner(cfg);

    // ---- 1. Predictor accuracy on pruned networks --------------------
    runtime::LatencyModel aware(cfg, true);
    runtime::LatencyModel dense(cfg, false);

    const std::vector<dnn::ModelId> pred_models = {
        dnn::ModelId::ResNet50, dnn::ModelId::AlexNet,
        dnn::ModelId::GoogleNet, dnn::ModelId::YoloV2};
    const std::vector<double> densities = {1.0, 0.5, 0.25};

    struct PredPoint
    {
        double measured = 0.0;
        double awareErr = 0.0;
        double denseErr = 0.0;
    };
    const std::size_t np = pred_models.size() * densities.size();
    std::vector<PredPoint> pred(np);
    exp::SweepRunner::runIndexed(np, jobs, [&](std::size_t i) {
        const dnn::ModelId id = pred_models[i / densities.size()];
        const double density = densities[i % densities.size()];
        const dnn::Model sparse =
            dnn::sparsifyModel(dnn::getModel(id), density);
        pred[i].measured = measureIsolated(sparse, 2, cfg);
        pred[i].awareErr = 100.0 *
            (aware.estimateModel(sparse, 2) - pred[i].measured) /
            pred[i].measured;
        pred[i].denseErr = 100.0 *
            (dense.estimateModel(sparse, 2) - pred[i].measured) /
            pred[i].measured;
    });

    Table t({"Model", "Density", "Measured (Kcyc)",
             "Aware err %", "Dense-assume err %"});
    StatAccum aware_err, dense_err;
    for (std::size_t i = 0; i < np; ++i) {
        const dnn::ModelId id = pred_models[i / densities.size()];
        aware_err.add(std::abs(pred[i].awareErr));
        dense_err.add(std::abs(pred[i].denseErr));
        t.row().cell(dnn::getModel(id).name())
            .cell(densities[i % densities.size()], 2)
            .cell(pred[i].measured / 1e3, 1)
            .cell(pred[i].awareErr, 1).cell(pred[i].denseErr, 1);
    }
    t.print("Algorithm 1 on pruned networks: sparsity-aware vs "
            "dense-assuming predictor");
    t.writeCsv("ext_sparsity_prediction.csv");
    std::printf("\nmean |error|: aware %.1f%%, dense-assuming %.1f%%\n",
                aware_err.mean(), dense_err.mean());

    // ---- 2. Multi-tenant impact of the predictor ---------------------
    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::B;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = tasks;
    trace.seed = seed;
    auto specs = exp::makeTrace(trace, cfg);

    // Swap every job's model for its 25%-density pruned variant.
    std::vector<dnn::Model> sparse_models;
    sparse_models.reserve(dnn::allModelIds().size());
    std::vector<const dnn::Model *> by_id(
        dnn::allModelIds().size(), nullptr);
    for (dnn::ModelId id : dnn::allModelIds()) {
        sparse_models.push_back(
            dnn::sparsifyModel(dnn::getModel(id), 0.25));
        by_id[static_cast<std::size_t>(id)] = &sparse_models.back();
    }
    // Memoized isolated latencies of the sparse variants.
    std::vector<double> iso1(by_id.size(), 0.0);
    std::vector<double> iso8(by_id.size(), 0.0);
    exp::SweepRunner::runIndexed(by_id.size(), jobs, [&](std::size_t i) {
        if (by_id[i] != nullptr) {
            iso1[i] = measureIsolated(*by_id[i], 1, cfg);
            iso8[i] = measureIsolated(*by_id[i], cfg.numTiles, cfg);
        }
    });
    // Mixed-density deployment: every other job runs the pruned
    // variant.  A uniformly mis-scaled predictor would keep relative
    // allocations intact; the mixed case is where dense assumptions
    // misjudge jobs *relative to each other*.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto &s = specs[i];
        if (i % 2 != 0)
            continue;
        const auto id = static_cast<std::size_t>(
            dnn::modelIdFromName(s.model->name()));
        s.model = by_id[id];
        // Keep edge-grade targets: scale the SLA to the sparse
        // isolated latency.
        s.slaLatency = static_cast<Cycles>(
            trace.qosScale * workload::qosMultiplier(trace.qos) *
            iso1[id]);
    }

    // Both predictor variants replay the identical mutated trace as
    // parameterized policy specs on the sweep engine.
    auto shared_specs =
        std::make_shared<const std::vector<sim::JobSpec>>(
            std::move(specs));
    std::vector<exp::SweepCell> grid;
    for (const auto &spec : predictor_specs) {
        exp::SweepCell cell;
        cell.label = spec;
        cell.policy = spec;
        cell.trace = trace;
        cell.soc = cfg;
        cell.specs = shared_specs;
        grid.push_back(std::move(cell));
    }
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid);

    Table t2({"Predictor", "SLA (all)", "SLA (pruned jobs)",
              "SLA (dense jobs)", "STP"});
    for (std::size_t v = 0; v < grid.size(); ++v) {
        // C_single per job depends on whether it ran pruned; use a
        // per-kind oracle keyed on the base network with the sparse
        // latency for even ids (matching the substitution above).
        std::vector<sim::JobResult> sparse_jobs, dense_jobs;
        for (const auto &r : results[v].jobs) {
            if (r.spec.id % 2 == 0)
                sparse_jobs.push_back(r);
            else
                dense_jobs.push_back(r);
        }
        const auto m_sparse = metrics::computeMetrics(
            sparse_jobs, [&](dnn::ModelId id) {
                return static_cast<Cycles>(
                    iso8[static_cast<std::size_t>(id)]);
            });
        const auto m_dense = metrics::computeMetrics(
            dense_jobs, [&](dnn::ModelId id) {
                return exp::isolatedLatency(id, cfg.numTiles, cfg);
            });
        const std::size_t total =
            sparse_jobs.size() + dense_jobs.size();
        const double sla =
            (m_sparse.slaRate * sparse_jobs.size() +
             m_dense.slaRate * dense_jobs.size()) /
            std::max<std::size_t>(1, total);
        t2.row().cell(grid[v].label)
            .cell(sla, 3)
            .cell(m_sparse.slaRate, 3)
            .cell(m_dense.slaRate, 3)
            .cell(m_sparse.stp + m_dense.stp, 2);
    }
    t2.print("MoCA on a mixed dense/25%-density deployment "
             "(Workload-B, QoS-M)");
    t2.writeCsv("ext_sparsity_multitenant.csv");
    return 0;
}
