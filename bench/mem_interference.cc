/**
 * @file
 * Memory-interference scenario family: how much does bank-level
 * memory modeling change (or confirm) the paper's policy ranking?
 *
 * The sweep crosses memory-hierarchy models {flat, banked at several
 * bank counts / remap policies} x policies {prema, planaria, moca} x
 * co-location mixes (the paper's Workload sets A/B/C at QoS-M), every
 * policy replaying the identical job stream per mix.  The flat model
 * reproduces the pre-mem-subsystem simulator exactly, so its cells
 * double as a regression anchor; the banked cells show whether MoCA's
 * SLA/STP margin over the baselines survives when row-buffer locality
 * destruction and bank conflicts are modeled explicitly instead of
 * through the global thrash heuristic.
 *
 * With `--json PATH` the bench emits the machine-readable baseline
 * (bench/baselines/BENCH_mem.json) that CI uploads: per-cell SLA/STP
 * plus memory-behavior counters (row-hit rate, per-bank imbalance,
 * L2 conflict loss), and a per-model summary of MoCA's margin over
 * each baseline.
 *
 * Usage: mem_interference [tasks=150] [load=F] [seed=S]
 *                         [mems=flat,banked:banks=4,...]
 *                         [--policy SPEC[,SPEC...]] [--list-policies]
 *                         [--list-mem-models] [--jobs N] [--csv PATH]
 *                         [--json PATH] [kernel=quantum|event] ...
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "common/text.h"
#include "common/walltime.h"
#include "exp/registry.h"
#include "exp/sweep/options.h"
#include "mem/memory_model.h"

using namespace moca;

namespace {

struct CellKey
{
    workload::WorkloadSet set;
    std::string mem;
    std::string policy;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig base = exp::socConfigFromArgs(args);
    const auto policies =
        exp::policiesFromArgs(args, {"prema", "planaria", "moca"});
    const int tasks = static_cast<int>(args.getInt("tasks", 150));
    const double load = args.getDouble("load", 1.2);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const exp::SweepOptions opts = exp::sweepOptionsFromArgs(args);

    // Memory-model axis: `mems=` takes registry specs with the same
    // list grammar as --policy ("flat,banked:banks=4,remap=mod" is
    // flat followed by one parameterized banked spec).  A bare
    // `--mem X` (the shared SoC flag) restricts the sweep to X.
    std::vector<std::string> mems = exp::splitPolicyList(
        args.getString(
            "mems",
            args.has("mem")
                ? args.getString("mem", "flat")
                : "flat,banked:banks=4,banked:banks=8,"
                  "banked:banks=16,banked:banks=8,remap=mod"),
        "mems=");
    for (const auto &m : mems)
        mem::MemoryModelRegistry::instance().validate(m, base);

    const std::vector<workload::WorkloadSet> sets = {
        workload::WorkloadSet::A,
        workload::WorkloadSet::B,
        workload::WorkloadSet::C,
    };

    std::printf("== mem_interference: memory-model x policy x mix "
                "(tasks=%d load=%.2f seed=%llu jobs=%d) ==\n\n",
                tasks, load, static_cast<unsigned long long>(seed),
                exp::resolveJobs(opts.jobs));
    exp::printSocBanner(base);
    // The banner shows the base config; the sweep's memory-model
    // axis overrides it per cell.
    std::printf("memory-model axis: %s\n\n",
                joinNames(mems).c_str());

    // One identical job stream per mix, shared read-only by every
    // (mem, policy) cell: isolated single-tile latencies — and
    // therefore QoS targets — are identical under flat and banked
    // (a lone streamer keeps full locality), so the comparison is
    // apples-to-apples across the whole grid.
    std::vector<CellKey> keys;
    std::vector<exp::SweepCell> grid;
    std::size_t mix_idx = 0;
    for (const auto set : sets) {
        workload::TraceConfig tr;
        tr.set = set;
        tr.qos = workload::QosLevel::Medium;
        tr.numTasks = tasks;
        tr.loadFactor = load;
        tr.seed = exp::deriveCellSeed(seed, mix_idx++);
        const auto stream =
            std::make_shared<const std::vector<sim::JobSpec>>(
                exp::makeTrace(tr, base));
        for (const auto &mem_spec : mems) {
            for (const auto &policy : policies) {
                exp::SweepCell cell;
                cell.label = strprintf(
                    "%s %s", workload::workloadSetName(set),
                    mem_spec.c_str());
                cell.policy = policy;
                cell.trace = tr;
                cell.soc = base;
                cell.soc.memModel = mem_spec;
                cell.specs = stream;
                grid.push_back(std::move(cell));
                keys.push_back({set, mem_spec, policy});
            }
        }
    }

    exp::SinkSet sinks;
    const std::string csv = args.getString("csv", "");
    if (!csv.empty())
        sinks.add(std::make_unique<exp::CsvSink>(csv));

    std::printf("running %zu cells...\n\n", grid.size());
    const WallTimer timer;
    const auto results =
        exp::SweepRunner(opts).run(grid, sinks.pointers());
    const double wall = timer.seconds();

    Table t({"Mix", "Mem model", "Policy", "SLA", "p-High", "STP",
             "RowHit%", "BankCV", "L2 lost (MB)"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        t.row()
            .cell(workload::workloadSetName(keys[i].set))
            .cell(keys[i].mem)
            .cell(keys[i].policy)
            .cell(r.metrics.slaRate, 3)
            .cell(r.metrics.slaRateHigh, 3)
            .cell(r.metrics.stp, 2)
            .cell(100.0 * r.memTraffic.rowHitRate(), 1)
            .cell(r.memTraffic.bankBytesCv(), 3)
            .cell(r.memTraffic.l2ConflictLostBytes / 1e6, 2);
    }
    t.print("memory-interference sweep");

    // --- MoCA margin per memory model (mean over mixes) ---------------
    struct Acc
    {
        double sla = 0.0;
        double stp = 0.0;
        int n = 0;
    };
    std::map<std::string, std::map<std::string, Acc>> by_mem;
    for (std::size_t i = 0; i < results.size(); ++i) {
        Acc &a = by_mem[keys[i].mem][keys[i].policy];
        a.sla += results[i].metrics.slaRate;
        a.stp += results[i].metrics.stp;
        a.n++;
    }
    const bool have_moca = by_mem.begin() != by_mem.end() &&
        by_mem.begin()->second.count("moca") > 0;
    if (have_moca) {
        Table m({"Mem model", "Policy", "mean SLA", "mean STP",
                 "MoCA SLA x", "MoCA STP x"});
        for (const auto &mem_spec : mems) {
            const auto &per_policy = by_mem[mem_spec];
            const Acc &moca = per_policy.at("moca");
            for (const auto &policy : policies) {
                const Acc &a = per_policy.at(policy);
                const double sla = a.sla / a.n;
                const double stp = a.stp / a.n;
                m.row()
                    .cell(mem_spec)
                    .cell(policy)
                    .cell(sla, 3)
                    .cell(stp, 2)
                    .cell(sla > 0.0 ? (moca.sla / moca.n) / sla
                                    : 0.0,
                          2)
                    .cell(stp > 0.0 ? (moca.stp / moca.n) / stp
                                    : 0.0,
                          2);
            }
        }
        m.print("MoCA margin by memory model (mean over mixes)");
    }
    std::printf("total wall: %.2f s\n", wall);

    const std::string json = args.getString("json", "");
    if (!json.empty()) {
        std::FILE *f = std::fopen(json.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write %s", json.c_str());
        std::fprintf(f, "{\n  \"bench\": \"mem_interference\",\n");
        std::fprintf(f, "  \"tasks\": %d,\n", tasks);
        std::fprintf(f, "  \"load_factor\": %.3f,\n", load);
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(seed));
        std::fprintf(f, "  \"kernel\": \"%s\",\n",
                     sim::simKernelName(base.kernel));
        std::fprintf(f, "  \"cells\": [\n");
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const auto &r = results[i];
            std::fprintf(
                f,
                "    {\"mix\": \"%s\", \"mem\": \"%s\", "
                "\"policy\": \"%s\", \"sla\": %.6f, "
                "\"sla_high\": %.6f, \"stp\": %.6f, "
                "\"row_hit_rate\": %.6f, \"bank_cv\": %.6f, "
                "\"l2_conflict_bytes\": %.0f, \"makespan\": %llu}%s\n",
                workload::workloadSetName(keys[i].set),
                keys[i].mem.c_str(), keys[i].policy.c_str(),
                r.metrics.slaRate, r.metrics.slaRateHigh,
                r.metrics.stp, r.memTraffic.rowHitRate(),
                r.memTraffic.bankBytesCv(),
                r.memTraffic.l2ConflictLostBytes,
                static_cast<unsigned long long>(r.makespan),
                i + 1 < keys.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"margins\": [\n");
        bool first = true;
        for (const auto &mem_spec : mems) {
            if (!have_moca)
                break;
            const auto &per_policy = by_mem[mem_spec];
            const Acc &moca = per_policy.at("moca");
            for (const auto &policy : policies) {
                if (policy == "moca")
                    continue;
                const Acc &a = per_policy.at(policy);
                std::fprintf(
                    f,
                    "%s    {\"mem\": \"%s\", \"vs\": \"%s\", "
                    "\"moca_sla_x\": %.4f, \"moca_stp_x\": %.4f}",
                    first ? "" : ",\n", mem_spec.c_str(),
                    policy.c_str(),
                    a.sla > 0.0 ? moca.sla / a.sla : 0.0,
                    a.stp > 0.0 ? moca.stp / a.stp : 0.0);
                first = false;
            }
        }
        std::fprintf(f, "\n  ],\n");
        std::fprintf(f, "  \"total\": {\"wall_s\": %.6f}\n}\n", wall);
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    return 0;
}
