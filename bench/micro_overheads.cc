/**
 * @file
 * Micro-benchmarks (google-benchmark) backing the paper's
 * "lightweight" claims: the runtime's Algorithm 1/2 computations and
 * the Algorithm 3 scheduling round must be cheap enough to run at
 * layer-block boundaries without observable overhead (Sec. IV-A:
 * "implemented in software with little overhead observed"), and the
 * hardware reconfiguration path costs 5-10 cycles versus ~1M-cycle
 * thread migrations (Sec. V-A).  Also measures the sweep engine's
 * task-dispatch overhead, which must stay negligible relative to a
 * scenario cell for `--jobs N` parallelism to pay off.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/compute_estimator.h"
#include "common/rng.h"
#include "dnn/model_zoo.h"
#include "exp/registry.h"
#include "exp/sweep/sweep.h"
#include "obs/profile.h"
#include "moca/hw/throttle_engine.h"
#include "moca/runtime/contention_manager.h"
#include "moca/runtime/latency_model.h"
#include "moca/sched/scheduler.h"
#include "sim/arbiter.h"
#include "sim/event_queue.h"

using namespace moca;

namespace {

const sim::SocConfig kCfg;

void
BM_Alg1_EstimateLayer(benchmark::State &state)
{
    runtime::LatencyModel model(kCfg);
    const auto &net = dnn::getModel(dnn::ModelId::ResNet50);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.estimateLayer(net.layer(i), 2));
        i = (i + 1) % net.numLayers();
    }
}
BENCHMARK(BM_Alg1_EstimateLayer);

void
BM_Alg1_EstimateModel(benchmark::State &state)
{
    runtime::LatencyModel model(kCfg);
    const auto &net = dnn::getModel(
        static_cast<dnn::ModelId>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.estimateModel(net, 2));
    state.SetLabel(net.name());
}
BENCHMARK(BM_Alg1_EstimateModel)
    ->DenseRange(0, 6, 1);

void
BM_Alg2_ContentionDecision(benchmark::State &state)
{
    runtime::ContentionManager cm(kCfg);
    const int corunners = static_cast<int>(state.range(0));
    // Pre-populate co-runner scoreboard entries.
    for (int j = 1; j <= corunners; ++j) {
        runtime::JobSnapshot co;
        co.appId = j;
        co.model = &dnn::getModel(dnn::ModelId::AlexNet);
        co.nextLayer = 0;
        co.numTiles = 2;
        co.userPriority = j % 12;
        co.slackCycles = 1e6;
        cm.onBlockBoundary(co);
    }
    runtime::JobSnapshot snap;
    snap.appId = 0;
    snap.model = &dnn::getModel(dnn::ModelId::ResNet50);
    snap.nextLayer = 10;
    snap.numTiles = 2;
    snap.userPriority = 5;
    snap.slackCycles = 2e6;
    for (auto _ : state)
        benchmark::DoNotOptimize(cm.onBlockBoundary(snap));
}
BENCHMARK(BM_Alg2_ContentionDecision)->Arg(1)->Arg(3)->Arg(7);

void
BM_Alg3_SchedulingRound(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    std::vector<sched::SchedTask> queue(n);
    for (std::size_t i = 0; i < n; ++i) {
        queue[i].id = static_cast<int>(i);
        queue[i].priority = static_cast<int>(rng.uniformInt(0, 11));
        queue[i].dispatched = static_cast<Cycles>(
            rng.uniformInt(0, 1'000'000));
        queue[i].estimatedTime = rng.uniform(1e5, 1e7);
        queue[i].estimatedAvgBw = rng.uniform(0.0, 16.0);
    }
    sched::MocaScheduler sched(sched::SchedulerConfig{},
                               kCfg.dramBytesPerCycle);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched.selectGroup(queue, 2'000'000, 4));
}
BENCHMARK(BM_Alg3_SchedulingRound)->Arg(8)->Arg(64)->Arg(512);

void
BM_ThrottleEngine_Advance(benchmark::State &state)
{
    hw::ThrottleEngine engine;
    engine.configure({4096, 1024});
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.advance(512, 512));
}
BENCHMARK(BM_ThrottleEngine_Advance);

void
BM_Arbiter_MaxMin(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<sim::BwDemand> demands(n);
    Rng rng(3);
    for (auto &d : demands) {
        d.bytes = rng.uniform(0.0, 8192.0);
        d.weight = rng.uniform(1.0, 8.0);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim::allocateBandwidth(demands, 8192.0));
}
BENCHMARK(BM_Arbiter_MaxMin)->Arg(4)->Arg(8);

void
BM_SweepEngine_RunIndexed(benchmark::State &state)
{
    // Pool spawn + work-queue dispatch cost for an n-task sweep with
    // trivial cells: the fixed overhead `--jobs N` must amortize.
    const auto n = static_cast<std::size_t>(state.range(0));
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        exp::SweepRunner::runIndexed(n, 2, [&](std::size_t i) {
            sink.fetch_add(i, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_SweepEngine_RunIndexed)->Arg(16)->Arg(256);

constexpr Cycles kEqWidth = 512;

/** Fill `q` with `n` pending events spread over ~n calendar days. */
void
fillEventQueue(sim::EventQueue &q, std::size_t n, Rng &rng)
{
    for (std::size_t i = 0; i < n; ++i)
        q.push(kEqWidth *
                   (1 + static_cast<Cycles>(rng.uniformInt(
                            0, static_cast<int>(
                                   std::min<std::size_t>(n, 1u << 20))))),
               static_cast<sim::SimEventKind>(
                   rng.uniformInt(0, static_cast<int>(
                                         sim::kNumSimEventKinds) - 1)),
               static_cast<int>(i % 4096));
}

/** Calendar-queue hold pattern: pop the min, push a replacement at a
 *  random future offset, holding `n` events pending.  The flat-cost
 *  claim behind the event kernel: this must not grow with n. */
void
BM_EventQueue_PushPop(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    sim::EventQueue q(kEqWidth);
    Rng rng(17);
    fillEventQueue(q, n, rng);
    for (auto _ : state) {
        const sim::SimEvent ev = q.pop();
        q.push(ev.at + kEqWidth *
                           (1 + static_cast<Cycles>(
                                    rng.uniformInt(0, 127))),
               ev.kind, ev.jobId);
        benchmark::DoNotOptimize(ev.at);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue_PushPop)
    ->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

/** Lazy-invalidation mix: cancel one job's pending event, re-arm it,
 *  then pop/push the global min — the reschedule-heavy pattern a
 *  policy-driven kernel produces.  invalidate() itself is O(1); the
 *  stale entries are swept out as the calendar advances. */
void
BM_EventQueue_InvalidatePushPop(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    sim::EventQueue q(kEqWidth);
    Rng rng(23);
    fillEventQueue(q, n, rng);
    int job = 0;
    for (auto _ : state) {
        job = (job + 1) % 4096;
        q.invalidate(sim::SimEventKind::ThrottleWindow, job);
        const sim::SimEvent ev = q.pop();
        q.push(ev.at + kEqWidth *
                           (1 + static_cast<Cycles>(
                                    rng.uniformInt(0, 127))),
               sim::SimEventKind::ThrottleWindow, job);
        benchmark::DoNotOptimize(ev.at);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue_InvalidatePushPop)
    ->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void
BM_ComputeOnlyEstimate(benchmark::State &state)
{
    const auto &net = dnn::getModel(dnn::ModelId::YoloV2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            baselines::computeOnlyEstimate(net, 8, kCfg));
}
BENCHMARK(BM_ComputeOnlyEstimate);

} // namespace

/**
 * Custom main instead of BENCHMARK_MAIN(): the shared --policy /
 * --list-policies flags are handled (and removed from argv) before
 * google-benchmark parses its own flags.  Setup vs run wall clock is
 * measured through the shared phase-profiling scopes (obs/profile.h)
 * so every bench reports timing through one code path.
 */
int
main(int argc, char **argv)
{
    moca::obs::PhaseProfiler phases;
    {
        const moca::obs::ScopedPhase scope(phases, "setup");
        std::vector<char *> filtered = {argv[0]};
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--list-policies") {
                std::fputs(
                    moca::exp::PolicyRegistry::instance().listText()
                        .c_str(), stdout);
                return 0;
            }
            if (arg == "--policy" && i + 1 < argc) {
                for (const auto &spec :
                     moca::exp::splitPolicyList(argv[++i]))
                    moca::exp::PolicyRegistry::instance().validate(
                        spec);
                continue;
            }
            if (arg.rfind("--policy=", 0) == 0) {
                for (const auto &spec : moca::exp::splitPolicyList(
                         arg.substr(std::string("--policy=").size())))
                    moca::exp::PolicyRegistry::instance().validate(
                        spec);
                continue;
            }
            filtered.push_back(argv[i]);
        }
        int filtered_argc = static_cast<int>(filtered.size());
        benchmark::Initialize(&filtered_argc, filtered.data());
        if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                                   filtered.data()))
            return 1;
    }
    {
        const moca::obs::ScopedPhase scope(phases, "run");
        benchmark::RunSpecifiedBenchmarks();
    }
    std::printf("\n%s",
                phases.render("micro_overheads wall-clock phases")
                    .c_str());
    return 0;
}
