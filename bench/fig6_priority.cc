/**
 * @file
 * Figure 6 reproduction: SLA satisfaction rate broken down by
 * priority group (p-Low: 0-2, p-Mid: 3-8, p-High: 9-11) for each
 * workload set and QoS level, per policy.  The headline claims
 * (Sec. V-B): all systems trend upward with priority; MoCA delivers
 * the highest p-High satisfaction and is the only one consistent
 * across all scenarios; Planaria can serve p-High *worse* than p-Mid
 * on light models because aggressive compute reclaiming costs
 * migrations.
 *
 * Usage: fig6_priority [tasks=N] [seed=S] [load=F]
 *                      [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <cstdio>

#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Figure 6: SLA satisfaction by priority group "
                "(tasks=%d seed=%llu jobs=%d) ==\n\n", mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    Table t({"Scenario", "Policy", "p-Low", "p-Mid", "p-High"});
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        for (const auto &r : cell.byPolicy) {
            t.row().cell(name)
                .cell(exp::policyKindName(r.policy))
                .cell(r.metrics.slaRateLow, 3)
                .cell(r.metrics.slaRateMid, 3)
                .cell(r.metrics.slaRateHigh, 3);
        }
    }
    t.print("Figure 6: per-priority-group SLA satisfaction");
    t.writeCsv("fig6_priority.csv");

    // p-High improvement summary (paper: up to 4.7x over Planaria,
    // 1.8x over static, 9.9x over Prema).
    double best_vs_planaria = 0.0, best_vs_static = 0.0,
           best_vs_prema = 0.0;
    for (const auto &cell : matrix) {
        const double m =
            cell.result(exp::PolicyKind::Moca).metrics.slaRateHigh;
        auto ratio = [&](exp::PolicyKind k) {
            const double b = cell.result(k).metrics.slaRateHigh;
            return m / std::max(b, 1e-3);
        };
        best_vs_planaria =
            std::max(best_vs_planaria, ratio(exp::PolicyKind::Planaria));
        best_vs_static = std::max(
            best_vs_static, ratio(exp::PolicyKind::StaticPartition));
        best_vs_prema =
            std::max(best_vs_prema, ratio(exp::PolicyKind::Prema));
    }
    std::printf("\np-High max improvement of MoCA: %.2fx vs planaria "
                "(paper 4.7x), %.2fx vs static (paper 1.8x), "
                "%.2fx vs prema (paper 9.9x)\n",
                best_vs_planaria, best_vs_static, best_vs_prema);
    return 0;
}
