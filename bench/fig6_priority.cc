/**
 * @file
 * Figure 6 reproduction: SLA satisfaction rate broken down by
 * priority group (p-Low: 0-2, p-Mid: 3-8, p-High: 9-11) for each
 * workload set and QoS level, per policy.  The headline claims
 * (Sec. V-B): all systems trend upward with priority; MoCA delivers
 * the highest p-High satisfaction and is the only one consistent
 * across all scenarios; Planaria can serve p-High *worse* than p-Mid
 * on light models because aggressive compute reclaiming costs
 * migrations.
 *
 * Usage: fig6_priority [tasks=N] [seed=S] [load=F]
 *                      [--policy SPEC[,SPEC...]] [--list-policies]
 *                      [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const auto policies = exp::policiesFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.policies = policies;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Figure 6: SLA satisfaction by priority group "
                "(tasks=%d seed=%llu jobs=%d) ==\n\n", mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    Table t({"Scenario", "Policy", "p-Low", "p-Mid", "p-High"});
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        for (const auto &r : cell.byPolicy) {
            t.row().cell(name)
                .cell(r.policy)
                .cell(r.metrics.slaRateLow, 3)
                .cell(r.metrics.slaRateMid, 3)
                .cell(r.metrics.slaRateHigh, 3);
        }
    }
    t.print("Figure 6: per-priority-group SLA satisfaction");
    t.writeCsv("fig6_priority.csv");

    // p-High improvement summary (paper: up to 4.7x over Planaria,
    // 1.8x over static, 9.9x over Prema).
    const std::string ref = "moca";
    if (std::find(policies.begin(), policies.end(), ref) !=
        policies.end() && policies.size() > 1) {
        std::printf("\np-High max improvement of MoCA (paper: 4.7x "
                    "vs planaria, 1.8x vs static, 9.9x vs prema):\n");
        for (const auto &spec : policies) {
            if (spec == ref)
                continue;
            double best = 0.0;
            for (const auto &cell : matrix) {
                const double m =
                    cell.result(ref).metrics.slaRateHigh;
                const double b =
                    cell.result(spec).metrics.slaRateHigh;
                best = std::max(best, m / std::max(b, 1e-3));
            }
            std::printf("  %.2fx vs %s\n", best, spec.c_str());
        }
    }
    return 0;
}
