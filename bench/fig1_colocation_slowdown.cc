/**
 * @file
 * Figure 1 reproduction: average and worst-case latency increase of a
 * DNN when co-located with 0..3 other randomly dispatched DNNs on the
 * same SoC, with *no* contention management.  The paper runs 300
 * randomized co-locations per point; the repetition count is
 * configurable (default 120 to keep a laptop run short — the curves
 * are already stable there).
 *
 * Every (model, x, repetition) point is an independent task on the
 * sweep engine's worker pool, with its RNG seeded deterministically
 * from the point's index — so parallel and serial runs produce
 * identical tables.
 *
 * Expected shape (paper Sec. II-B): >= 40% average latency increase at
 * x=4 for every network; AlexNet worst on average (memory-capacity
 * sensitive FC layers); SqueezeNet's worst case > 3x isolated (short
 * runtime, fully overlapped with memory-intensive co-runners).
 *
 * Usage: fig1_colocation_slowdown [reps=N] [seed=S]
 *                                 [--mem SPEC] [--list-mem-models]
 *                                 [--list-policies] [--jobs N]
 *
 * `--mem banked[:banks=N,...]` replays the co-location study under
 * the bank-aware memory model, where the slowdown comes from
 * emergent row-locality loss instead of the flat thrash heuristic.
 */

#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/sweep/options.h"
#include "sim/soc.h"

using namespace moca;

namespace {

/** The four DNNs of the paper's Figure 1. */
const std::vector<dnn::ModelId> kFig1Models = {
    dnn::ModelId::ResNet50,
    dnn::ModelId::AlexNet,
    dnn::ModelId::GoogleNet,
    dnn::ModelId::SqueezeNet,
};

/** One co-location run: the test job plus (x-1) random co-runners
 *  dispatched at random offsets; returns the test job's latency. */
Cycles
colocatedLatency(dnn::ModelId test, int x, Rng &rng,
                 const sim::SocConfig &cfg, Cycles test_iso)
{
    exp::SoloPolicy policy(cfg.numTiles / 4); // spatial co-location
    sim::Soc soc(cfg, policy);

    // The test job starts mid-window so co-runners dispatched both
    // before and after it are possible — the worst case for a short
    // network is being dispatched *into* an ongoing memory-intensive
    // phase of a heavy co-runner.
    const Cycles lead = 30'000'000;
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &dnn::getModel(test);
    spec.dispatch = lead;
    spec.slaLatency = 0;
    soc.addJob(spec);

    for (int i = 1; i < x; ++i) {
        sim::JobSpec co;
        co.id = i;
        const dnn::ModelId co_id =
            kFig1Models[static_cast<std::size_t>(rng.uniformInt(
                0,
                static_cast<std::int64_t>(kFig1Models.size()) - 1))];
        co.model = &dnn::getModel(co_id);
        // Dispatch so the co-runner can overlap the test job at a
        // random phase: anywhere from "co-runner still executing
        // when the test job starts" to "co-runner starts during the
        // test job's run".
        const auto co_iso = static_cast<std::int64_t>(
            exp::isolatedLatency(co_id, cfg.numTiles / 4, cfg));
        const auto lo = std::max<std::int64_t>(
            0, static_cast<std::int64_t>(lead) - co_iso);
        co.dispatch = static_cast<Cycles>(rng.uniformInt(
            lo, static_cast<std::int64_t>(lead + test_iso)));
        co.slaLatency = 0;
        soc.addJob(co);
    }
    soc.run();
    for (const auto &r : soc.results())
        if (r.spec.id == 0)
            return r.finish - r.spec.dispatch;
    fatal("test job did not complete");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    // This bench studies *unmanaged* co-location, so the policy under
    // test is fixed to "solo"; --list-policies still works, and any
    // other --policy selection is rejected rather than ignored.
    if (exp::policiesFromArgs(args, {"solo"}) !=
        std::vector<std::string>{"solo"})
        fatal("fig1_colocation_slowdown measures unmanaged "
              "co-location; its policy is fixed to 'solo' and "
              "--policy cannot change it");
    const int reps = static_cast<int>(args.getInt("reps", 120));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const int jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Figure 1: latency increase under co-location "
                "(reps=%d seed=%llu jobs=%d) ==\n\n", reps,
                static_cast<unsigned long long>(seed),
                exp::resolveJobs(jobs));
    exp::printSocBanner(cfg);

    const std::size_t num_models = kFig1Models.size();

    // Isolated references: each model alone on its 2-tile partition.
    std::vector<Cycles> iso(num_models, 0);
    exp::SweepRunner::runIndexed(num_models, jobs, [&](std::size_t m) {
        exp::SoloPolicy solo(cfg.numTiles / 4);
        sim::Soc iso_soc(cfg, solo);
        sim::JobSpec spec;
        spec.id = 0;
        spec.model = &dnn::getModel(kFig1Models[m]);
        iso_soc.addJob(spec);
        iso_soc.run();
        iso[m] = iso_soc.results()[0].latency();
    });

    // Flat task grid: (model, x in 2..4, rep), each with its own
    // index-derived RNG stream.
    const std::size_t num_x = 3;
    const auto nreps = static_cast<std::size_t>(reps);
    const std::size_t n = num_models * num_x * nreps;
    std::vector<double> norm(n, 0.0);
    exp::SweepRunner::runIndexed(n, jobs, [&](std::size_t i) {
        const std::size_t m = i / (num_x * nreps);
        const int x = static_cast<int>(2 + (i / nreps) % num_x);
        Rng rng(exp::deriveCellSeed(seed, i));
        const Cycles lat = colocatedLatency(kFig1Models[m], x, rng,
                                            cfg, iso[m]);
        norm[i] = static_cast<double>(lat) /
            static_cast<double>(iso[m]);
    });

    Table avg({"Model", "x=1", "x=2", "x=3", "x=4"});
    Table worst({"Model", "x=1", "x=2", "x=3", "x=4"});
    for (std::size_t m = 0; m < num_models; ++m) {
        avg.row().cell(dnn::modelIdName(kFig1Models[m])).cell(1.0, 2);
        worst.row().cell(dnn::modelIdName(kFig1Models[m]))
            .cell(1.0, 2);
        for (std::size_t xi = 0; xi < num_x; ++xi) {
            SampleSet samples;
            const std::size_t base = (m * num_x + xi) * nreps;
            for (std::size_t rep = 0; rep < nreps; ++rep)
                samples.add(norm[base + rep]);
            avg.cell(samples.mean(), 2);
            worst.cell(samples.max(), 2);
        }
    }

    avg.print("Figure 1a: average latency increase "
              "(normalized to isolated)");
    avg.writeCsv("fig1_avg.csv");
    worst.print("Figure 1b: worst-case latency increase "
                "(normalized to isolated)");
    worst.writeCsv("fig1_worst.csv");

    std::printf("\npaper shape check: >=1.4x average at x=4; AlexNet "
                "worst average case;\nSqueezeNet worst-case > 3x.\n");
    return 0;
}
