/**
 * @file
 * Component ablation of the MoCA design choices called out in
 * DESIGN.md: hardware throttling (Sec. III-B), the scheduler's
 * memory-aware pairing (Sec. III-D), the dynamic priority score
 * (Sec. III-C), and the rare compute repartitioning — plus the
 * simulator-side knob that idealizes the DRAM (max-min arbitration,
 * no thrash), which shows how much of MoCA's benefit exists only
 * because real unregulated memory systems misbehave.
 *
 * Usage: ablation_components [tasks=N] [seed=S] [set=a|b|c] [qos=l|m|h]
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/scenario.h"
#include "moca/moca_policy.h"
#include "sim/soc.h"

using namespace moca;

namespace {

struct Variant
{
    const char *name;
    MocaPolicyConfig cfg;
};

metrics::RunMetrics
runVariant(const MocaPolicyConfig &pc,
           const std::vector<sim::JobSpec> &specs,
           const sim::SocConfig &cfg, sim::SocStats *stats_out)
{
    MocaPolicy policy(cfg, pc);
    sim::Soc soc(cfg, policy);
    for (const auto &s : specs)
        soc.addJob(s);
    soc.run();
    if (stats_out != nullptr)
        *stats_out = soc.stats();
    return metrics::computeMetrics(
        soc.results(), [&](dnn::ModelId id) {
            return exp::isolatedLatency(id, cfg.numTiles, cfg);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    sim::SocConfig cfg = bench::socConfigFromArgs(args);

    workload::TraceConfig trace;
    trace.numTasks = static_cast<int>(args.getInt("tasks", 200));
    trace.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const std::string set = args.getString("set", "c");
    trace.set = set == "a" ? workload::WorkloadSet::A
        : set == "b" ? workload::WorkloadSet::B
                     : workload::WorkloadSet::C;
    const std::string qos = args.getString("qos", "m");
    trace.qos = qos == "l" ? workload::QosLevel::Light
        : qos == "h" ? workload::QosLevel::Hard
                     : workload::QosLevel::Medium;

    std::printf("== MoCA component ablation (%s, %s, tasks=%d, "
                "seed=%llu) ==\n\n",
                workload::workloadSetName(trace.set),
                workload::qosLevelName(trace.qos), trace.numTasks,
                static_cast<unsigned long long>(trace.seed));
    bench::printSocBanner(cfg);

    const auto specs = exp::makeTrace(trace, cfg);

    MocaPolicyConfig full;
    Variant variants[] = {
        {"moca (full)", full},
        {"- throttling", [&] {
             auto c = full;
             c.enableThrottling = false;
             return c;
         }()},
        {"- mem-aware pairing", [&] {
             auto c = full;
             c.enableMemAwarePairing = false;
             return c;
         }()},
        {"- dynamic score", [&] {
             auto c = full;
             c.enableDynamicScore = false;
             return c;
         }()},
        {"- compute repartition", [&] {
             auto c = full;
             c.enableComputeRepartition = false;
             return c;
         }()},
        {"- all (plain slots)", [&] {
             auto c = full;
             c.enableThrottling = false;
             c.enableMemAwarePairing = false;
             c.enableDynamicScore = false;
             c.enableComputeRepartition = false;
             return c;
         }()},
    };

    Table t({"Variant", "SLA", "SLA p-High", "STP", "Fairness",
             "Thrash (MB)"});
    for (const auto &v : variants) {
        sim::SocStats stats;
        const auto m = runVariant(v.cfg, specs, cfg, &stats);
        t.row().cell(v.name).cell(m.slaRate, 3)
            .cell(m.slaRateHigh, 3).cell(m.stp, 2)
            .cell(m.fairness, 4)
            .cell(stats.thrashLostBytes / 1e6, 0);
    }
    t.print("MoCA component ablation");
    t.writeCsv("ablation_components.csv");

    // Simulator-side ablation: idealized memory system.
    Table t2({"DRAM model", "SLA (moca)", "SLA (static)",
              "STP (moca)", "STP (static)"});
    for (bool ideal : {false, true}) {
        sim::SocConfig c2 = cfg;
        if (ideal) {
            c2.dramProportionalArbitration = false;
            c2.dramThrashFactor = 0.0;
        }
        exp::clearOracleCache();
        const auto specs2 = exp::makeTrace(trace, c2);
        sim::SocStats stats;
        const auto moca_m =
            runVariant(MocaPolicyConfig{}, specs2, c2, &stats);
        const auto stat_r = exp::runTrace(
            exp::PolicyKind::StaticPartition, specs2, trace, c2);
        t2.row()
            .cell(ideal ? "idealized (max-min, no thrash)"
                        : "realistic (FCFS-like + thrash)")
            .cell(moca_m.slaRate, 3)
            .cell(stat_r.metrics.slaRate, 3)
            .cell(moca_m.stp, 2)
            .cell(stat_r.metrics.stp, 2);
    }
    exp::clearOracleCache();
    t2.print("Memory-system realism ablation");
    return 0;
}
