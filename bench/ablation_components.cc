/**
 * @file
 * Component ablation of the MoCA design choices called out in
 * DESIGN.md: hardware throttling (Sec. III-B), the scheduler's
 * memory-aware pairing (Sec. III-D), the dynamic priority score
 * (Sec. III-C), and the rare compute repartitioning — plus the
 * simulator-side knob that idealizes the DRAM (max-min arbitration,
 * no thrash), which shows how much of MoCA's benefit exists only
 * because real unregulated memory systems misbehave.
 *
 * Every policy variant is a registry spec string ("moca:throttle=0",
 * ...) replaying the identical trace on the sweep engine — the
 * ablation needs no bespoke factory wiring; the memory-realism
 * ablation adds four more cells with modified SoC configurations.
 *
 * Usage: ablation_components [tasks=N] [seed=S] [set=a|b|c]
 *                            [qos=l|m|h] [--policy SPEC[,SPEC...]]
 *                            [--list-policies] [--jobs N]
 *                            [--csv PATH] [--json PATH]
 */

#include <cstdio>

#include "common/table.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    sim::SocConfig cfg = exp::socConfigFromArgs(args);

    // The six MoCA variants as parameterized policy specs; --policy
    // swaps in any other variant list.
    const std::vector<std::string> variants = exp::policiesFromArgs(
        args,
        {
            "moca",
            "moca:throttle=0",
            "moca:pairing=0",
            "moca:dynamic_score=0",
            "moca:repartition=0",
            "moca:throttle=0,pairing=0,dynamic_score=0,"
            "repartition=0",
        });
    const std::size_t num_variants = variants.size();

    workload::TraceConfig trace;
    trace.numTasks = static_cast<int>(args.getInt("tasks", 200));
    trace.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const std::string set = args.getString("set", "c");
    trace.set = set == "a" ? workload::WorkloadSet::A
        : set == "b" ? workload::WorkloadSet::B
                     : workload::WorkloadSet::C;
    const std::string qos = args.getString("qos", "m");
    trace.qos = qos == "l" ? workload::QosLevel::Light
        : qos == "h" ? workload::QosLevel::Hard
                     : workload::QosLevel::Medium;

    std::printf("== MoCA component ablation (%s, %s, tasks=%d, "
                "seed=%llu) ==\n\n",
                workload::workloadSetName(trace.set),
                workload::qosLevelName(trace.qos), trace.numTasks,
                static_cast<unsigned long long>(trace.seed));
    exp::printSocBanner(cfg);

    auto specs = std::make_shared<const std::vector<sim::JobSpec>>(
        exp::makeTrace(trace, cfg));

    // ---- grid: variant cells + 4 memory-realism cells ---------------
    std::vector<exp::SweepCell> grid;
    for (const auto &variant : variants) {
        exp::SweepCell cell;
        cell.label = variant;
        cell.policy = variant;
        cell.trace = trace;
        cell.soc = cfg;
        cell.specs = specs;
        grid.push_back(std::move(cell));
    }

    // Simulator-side ablation: realistic vs idealized memory system.
    // The realistic pair replays the specs generated above; the
    // idealized configuration changes the SoC, so its pair shares a
    // trace regenerated once for that config.
    for (bool ideal : {false, true}) {
        sim::SocConfig c2 = cfg;
        auto pair_specs = specs;
        if (ideal) {
            c2.dramProportionalArbitration = false;
            c2.dramThrashFactor = 0.0;
            pair_specs = std::make_shared<
                const std::vector<sim::JobSpec>>(
                exp::makeTrace(trace, c2));
        }
        const char *label = ideal
            ? "idealized (max-min, no thrash)"
            : "realistic (FCFS-like + thrash)";
        for (const char *policy : {"moca", "static"}) {
            exp::SweepCell cell;
            cell.label = label;
            cell.policy = policy;
            cell.trace = trace;
            cell.soc = c2;
            cell.specs = pair_specs;
            grid.push_back(std::move(cell));
        }
    }

    const auto sinks = exp::fileSinksFromArgs(args);
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid, sinks.pointers());

    Table t({"Variant", "SLA", "SLA p-High", "STP", "Fairness",
             "Thrash (MB)"});
    for (std::size_t v = 0; v < num_variants; ++v) {
        const auto &r = results[v];
        t.row().cell(grid[v].label).cell(r.metrics.slaRate, 3)
            .cell(r.metrics.slaRateHigh, 3).cell(r.metrics.stp, 2)
            .cell(r.metrics.fairness, 4)
            .cell(r.thrashLostBytes / 1e6, 0);
    }
    t.print("MoCA component ablation");
    t.writeCsv("ablation_components.csv");

    Table t2({"DRAM model", "SLA (moca)", "SLA (static)",
              "STP (moca)", "STP (static)"});
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &moca_r = results[num_variants + 2 * i];
        const auto &stat_r = results[num_variants + 2 * i + 1];
        t2.row().cell(grid[num_variants + 2 * i].label)
            .cell(moca_r.metrics.slaRate, 3)
            .cell(stat_r.metrics.slaRate, 3)
            .cell(moca_r.metrics.stp, 2)
            .cell(stat_r.metrics.stp, 2);
    }
    t2.print("Memory-system realism ablation");
    return 0;
}
