/**
 * @file
 * Figure 5 reproduction: SLA satisfaction rate of MoCA vs. the three
 * multi-tenancy baselines (PREMA, static partitioning, Planaria)
 * across the nine scenarios (Workload-{A,B,C} x QoS-{L,M,H}).  Also
 * prints the Table III workload-set composition and the paper-style
 * improvement summary (geomean / max of MoCA over each baseline).
 *
 * Usage: fig5_sla [tasks=N] [seed=S] [load=F] [qos_scale=F]
 *                 [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "exp/matrix.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

void
printWorkloadSets()
{
    Table t({"Workload set", "Model size", "DNN models"});
    auto join = [](const std::vector<dnn::ModelId> &ids) {
        std::string s;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            s += dnn::modelIdName(ids[i]);
            if (i + 1 < ids.size())
                s += ", ";
        }
        return s;
    };
    t.row().cell("Workload-A").cell("Light")
        .cell(join(dnn::workloadSetA()));
    t.row().cell("Workload-B").cell("Heavy")
        .cell(join(dnn::workloadSetB()));
    t.row().cell("Workload-C").cell("Mixed")
        .cell(join(dnn::workloadSetC()));
    t.print("Table III: benchmark DNNs and workload sets");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Figure 5: SLA satisfaction rate "
                "(tasks=%d seed=%llu load=%.2f jobs=%d) ==\n\n",
                mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                mcfg.loadFactor, exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);
    printWorkloadSets();

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    Table t({"Scenario", "Prema", "Static", "Planaria", "MoCA"});
    std::vector<double> vs_prema, vs_static, vs_planaria;
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        const double prema =
            cell.result(exp::PolicyKind::Prema).metrics.slaRate;
        const double stat =
            cell.result(exp::PolicyKind::StaticPartition)
                .metrics.slaRate;
        const double plan =
            cell.result(exp::PolicyKind::Planaria).metrics.slaRate;
        const double mocaRate =
            cell.result(exp::PolicyKind::Moca).metrics.slaRate;
        t.row().cell(name).cell(prema, 3).cell(stat, 3)
            .cell(plan, 3).cell(mocaRate, 3);
        auto ratio = [](double moca_v, double base) {
            return moca_v / std::max(base, 1e-3);
        };
        vs_prema.push_back(ratio(mocaRate, prema));
        vs_static.push_back(ratio(mocaRate, stat));
        vs_planaria.push_back(ratio(mocaRate, plan));
    }
    t.print("Figure 5: SLA satisfaction rate by scenario");
    t.writeCsv("fig5_sla.csv");

    Table s({"MoCA vs.", "geomean", "max",
             "paper geomean", "paper max"});
    s.row().cell("Prema").cell(geomean(vs_prema), 2)
        .cell(*std::max_element(vs_prema.begin(), vs_prema.end()), 2)
        .cell("8.7").cell("18.1");
    s.row().cell("Static").cell(geomean(vs_static), 2)
        .cell(*std::max_element(vs_static.begin(), vs_static.end()), 2)
        .cell("1.8").cell("2.4");
    s.row().cell("Planaria").cell(geomean(vs_planaria), 2)
        .cell(*std::max_element(vs_planaria.begin(),
                                vs_planaria.end()), 2)
        .cell("1.8").cell("3.9");
    s.print("MoCA SLA improvement summary (paper Sec. V-A)");
    return 0;
}
