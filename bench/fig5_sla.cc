/**
 * @file
 * Figure 5 reproduction: SLA satisfaction rate of MoCA vs. the three
 * multi-tenancy baselines (PREMA, static partitioning, Planaria)
 * across the nine scenarios (Workload-{A,B,C} x QoS-{L,M,H}).  Also
 * prints the Table III workload-set composition and the paper-style
 * improvement summary (geomean / max of MoCA over each baseline).
 *
 * Usage: fig5_sla [tasks=N] [seed=S] [load=F] [qos_scale=F]
 *                 [--policy SPEC[,SPEC...]] [--list-policies]
 *                 [--jobs N] [--csv PATH] [--json PATH] ...
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/matrix.h"
#include "exp/oracle.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

void
printWorkloadSets()
{
    Table t({"Workload set", "Model size", "DNN models"});
    auto join = [](const std::vector<dnn::ModelId> &ids) {
        std::string s;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            s += dnn::modelIdName(ids[i]);
            if (i + 1 < ids.size())
                s += ", ";
        }
        return s;
    };
    t.row().cell("Workload-A").cell("Light")
        .cell(join(dnn::workloadSetA()));
    t.row().cell("Workload-B").cell("Heavy")
        .cell(join(dnn::workloadSetB()));
    t.row().cell("Workload-C").cell("Mixed")
        .cell(join(dnn::workloadSetC()));
    t.print("Table III: benchmark DNNs and workload sets");
}

/** Paper-reported (geomean, max) improvement, per baseline spec. */
const char *
paperRef(const std::string &spec, bool is_max)
{
    if (spec == "prema")
        return is_max ? "18.1" : "8.7";
    if (spec == "static")
        return is_max ? "2.4" : "1.8";
    if (spec == "planaria")
        return is_max ? "3.9" : "1.8";
    return "-";
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const auto policies = exp::policiesFromArgs(args);

    exp::MatrixConfig mcfg;
    mcfg.numTasks = static_cast<int>(args.getInt("tasks", 250));
    mcfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    mcfg.loadFactor = args.getDouble("load", mcfg.loadFactor);
    mcfg.qosScale = args.getDouble("qos_scale", mcfg.qosScale);
    mcfg.verbose = args.getBool("verbose", true);
    mcfg.jobs = static_cast<int>(args.getInt("jobs", 1));
    mcfg.policies = policies;

    std::printf("== Figure 5: SLA satisfaction rate "
                "(tasks=%d seed=%llu load=%.2f jobs=%d) ==\n\n",
                mcfg.numTasks,
                static_cast<unsigned long long>(mcfg.seed),
                mcfg.loadFactor, exp::resolveJobs(mcfg.jobs));
    exp::printSocBanner(cfg);
    printWorkloadSets();

    const auto sinks = exp::fileSinksFromArgs(args);
    const auto matrix = exp::runMatrix(mcfg, cfg, sinks.pointers());

    std::vector<std::string> header = {"Scenario"};
    header.insert(header.end(), policies.begin(), policies.end());
    Table t(header);
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        t.row().cell(name);
        for (const auto &spec : policies)
            t.cell(cell.result(spec).metrics.slaRate, 3);
    }
    t.print("Figure 5: SLA satisfaction rate by scenario");
    t.writeCsv("fig5_sla.csv");

    // Tail latency per scenario: p50/p95/p99 of end-to-end latency
    // normalized to the isolated full-SoC latency (the same
    // normalization as meanNormLatency).  SLA rates hide the tail;
    // this is where policy differences at the 99th percentile show.
    Table tails(header);
    for (const auto &cell : matrix) {
        const std::string name =
            std::string(workload::workloadSetName(cell.set)) + " " +
            workload::qosLevelName(cell.qos);
        tails.row().cell(name);
        for (const auto &spec : policies) {
            std::vector<double> norm;
            for (const auto &job : cell.result(spec).jobs) {
                const Cycles iso = exp::isolatedLatency(
                    dnn::modelIdFromName(job.spec.model->name()),
                    cfg.numTiles, cfg);
                norm.push_back(static_cast<double>(job.latency()) /
                               static_cast<double>(iso));
            }
            const PercentileSummary p = percentileSummary(norm);
            tails.cell(strprintf("%.1f/%.1f/%.1f", p.p50, p.p95,
                                 p.p99));
        }
    }
    tails.print("Tail latency by scenario "
                "(p50/p95/p99, normalized to isolated latency)");

    // Improvement summary: MoCA against every other selected policy.
    const std::string ref = "moca";
    if (std::find(policies.begin(), policies.end(), ref) !=
        policies.end() && policies.size() > 1) {
        Table s({"MoCA vs.", "geomean", "max",
                 "paper geomean", "paper max"});
        for (const auto &spec : policies) {
            if (spec == ref)
                continue;
            std::vector<double> ratios;
            for (const auto &cell : matrix)
                ratios.push_back(
                    cell.result(ref).metrics.slaRate /
                    std::max(cell.result(spec).metrics.slaRate,
                             1e-3));
            s.row().cell(spec).cell(geomean(ratios), 2)
                .cell(*std::max_element(ratios.begin(),
                                        ratios.end()), 2)
                .cell(paperRef(spec, false))
                .cell(paperRef(spec, true));
        }
        s.print("MoCA SLA improvement summary (paper Sec. V-A)");
    }
    return 0;
}
