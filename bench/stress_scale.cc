/**
 * @file
 * Long-horizon stress sweep comparing the two simulation kernels
 * (SocConfig::kernel): 2.5k-25k task traces under all three arrival
 * patterns (Poisson, uniform, bursty), each stream replayed
 * identically under the quantum and event kernels through
 * `exp::SweepRunner`.  Reports per-cell wall clock, kernel-step
 * counts, and metric deltas, and — with `--json PATH` — emits the
 * machine-readable perf baseline (BENCH_kernel.json) that CI uploads
 * so the bench trajectory accumulates.
 *
 * Note: unlike the figure benches, `--json` here writes the kernel
 * perf baseline, not per-scenario result rows.
 *
 * Usage: stress_scale [tasks=2500,10000,25000] [load=F] [seed=S]
 *                     [kernels=both|quantum|event] [quantum-cap=N]
 *                     [--policy SPEC[,SPEC...]] [--list-policies]
 *                     [--jobs N] [--json PATH] [--sample-every N]
 *                     [--sample-out FILE] [max-cycles=N] ...
 *
 * `--sample-every N` turns on sim-time telemetry sampling in every
 * cell (src/obs; observational only), and `--sample-out FILE` writes
 * the first sampled cell's timeseries (CSV, or JSON for a .json
 * path).
 *
 * `quantum-cap=N` bounds the quantum-kernel tier: cells with more
 * than N tasks skip the (hours-long at 100k) quantum run, and their
 * quantum wall is linearly extrapolated from the largest measured
 * tier of the same pattern+policy.  Extrapolated cells are explicit:
 * `~` in the table, `quantum_extrapolated` in the JSON.  Metrics
 * (steps, SLA) are never extrapolated — only wall clock is.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "common/text.h"
#include "common/walltime.h"
#include "exp/sweep/options.h"
#include "obs/sampler.h"

using namespace moca;

namespace {

/** Wall-clock timestamps per completed cell (valid per cell when the
 *  sweep runs serially; only the total is meaningful with --jobs). */
class TimingSink : public exp::ResultSink
{
  public:
    void start() { timer_.restart(); }

    void
    onResult(std::size_t, const exp::SweepCell &,
             const exp::ScenarioResult &) override
    {
        walls.push_back(timer_.restart());
    }

    std::vector<double> walls;

  private:
    WallTimer timer_;
};

std::vector<int>
parseTaskList(const std::string &text)
{
    std::vector<int> tasks;
    for (const auto &tok : splitCommaList(text))
        tasks.push_back(
            static_cast<int>(parseIntValue("tasks", tok)));
    if (tasks.empty())
        fatal("tasks= needs at least one value");
    return tasks;
}

struct CellKey
{
    workload::ArrivalPattern pattern;
    int tasks;
    std::string policy;
};

void
writeJsonSide(std::FILE *f, const char *name,
              const exp::ScenarioResult &r, double wall)
{
    std::fprintf(
        f,
        "      \"%s\": {\"wall_s\": %.6f, \"steps\": %llu, "
        "\"sla_rate\": %.6f, \"stp\": %.6f, \"makespan\": %llu}",
        name, wall, static_cast<unsigned long long>(r.simSteps),
        r.metrics.slaRate, r.metrics.stp,
        static_cast<unsigned long long>(r.makespan));
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    sim::SocConfig base = exp::socConfigFromArgs(args);
    const std::string sample_out = args.getString("sample-out", "");
    if (!sample_out.empty() && base.sampleEvery == 0) {
        base.sampleEvery = 100'000;
        inform("--sample-out without --sample-every: defaulting to "
               "sampling every %llu cycles",
               static_cast<unsigned long long>(base.sampleEvery));
    }
    const auto policies = exp::policiesFromArgs(args, {"moca"});
    const auto tasks_list =
        parseTaskList(args.getString("tasks", "2500,10000,25000"));
    const double load = args.getDouble("load", 0.8);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    // `kernels=` selects the comparison mode; a plain `--kernel X`
    // (the shared single-kernel bench flag) means "just that one".
    const std::string kernels = args.getString(
        "kernels",
        args.has("kernel") ? simKernelName(base.kernel) : "both");
    const bool run_quantum = kernels == "both" || kernels == "quantum";
    const bool run_event = kernels == "both" || kernels == "event";
    if (!run_quantum && !run_event)
        fatal("kernels=%s: expected both, quantum, or event",
              kernels.c_str());
    const int qcap =
        static_cast<int>(args.getInt("quantum-cap", 0));
    const exp::SweepOptions opts = exp::sweepOptionsFromArgs(args);
    const bool serial = exp::resolveJobs(opts.jobs) == 1;

    const std::vector<workload::ArrivalPattern> patterns = {
        workload::ArrivalPattern::Poisson,
        workload::ArrivalPattern::Uniform,
        workload::ArrivalPattern::Bursty,
    };

    std::printf("== stress_scale: long-horizon kernel comparison "
                "(load=%.2f seed=%llu jobs=%d) ==\n\n",
                load, static_cast<unsigned long long>(seed),
                exp::resolveJobs(opts.jobs));
    exp::printSocBanner(base);

    // One identical job stream per (pattern, tasks) cell, shared
    // read-only between the two kernels' grids.  `qindex` maps a key
    // to its row in the (possibly quantum-cap-filtered) quantum grid;
    // -1 marks a cell whose quantum tier is extrapolated.
    std::vector<CellKey> keys;
    std::vector<exp::SweepCell> quantum_grid, event_grid;
    std::vector<int> qindex;
    std::size_t idx = 0;
    for (const auto pattern : patterns) {
        for (const int tasks : tasks_list) {
            workload::TraceConfig tr;
            tr.set = workload::WorkloadSet::C;
            tr.qos = workload::QosLevel::Medium;
            tr.arrivals = pattern;
            tr.numTasks = tasks;
            tr.loadFactor = load;
            tr.seed = exp::deriveCellSeed(seed, idx++);
            const auto stream =
                std::make_shared<const std::vector<sim::JobSpec>>(
                    exp::makeTrace(tr, base));
            for (const auto &policy : policies) {
                exp::SweepCell cell;
                cell.label = strprintf(
                    "%s tasks=%d %s",
                    workload::arrivalPatternName(pattern), tasks,
                    policy.c_str());
                cell.policy = policy;
                cell.trace = tr;
                cell.soc = base;
                cell.specs = stream;
                keys.push_back({pattern, tasks, policy});

                if (qcap == 0 || tasks <= qcap) {
                    qindex.push_back(
                        static_cast<int>(quantum_grid.size()));
                    cell.soc.kernel = sim::SimKernel::Quantum;
                    quantum_grid.push_back(cell);
                } else {
                    qindex.push_back(-1);
                }
                cell.soc.kernel = sim::SimKernel::Event;
                event_grid.push_back(cell);
            }
        }
    }

    const exp::SweepRunner runner(opts);
    auto run_grid = [&](const std::vector<exp::SweepCell> &grid,
                        TimingSink &sink, double &total) {
        sink.start();
        const WallTimer grid_timer;
        const auto results = runner.run(grid, {&sink});
        total = grid_timer.seconds();
        return results;
    };

    TimingSink qtimes, etimes;
    double qwall = 0.0, ewall = 0.0;
    std::vector<exp::ScenarioResult> qres, eres;
    if (run_quantum) {
        std::printf("running %zu cells on the quantum kernel...\n",
                    quantum_grid.size());
        qres = run_grid(quantum_grid, qtimes, qwall);
    }
    if (run_event) {
        std::printf("running %zu cells on the event kernel...\n",
                    event_grid.size());
        eres = run_grid(event_grid, etimes, ewall);
    }
    std::printf("\n");

    const bool both = run_quantum && run_event;
    if (!both) {
        const auto &res = run_quantum ? qres : eres;
        const auto &walls = run_quantum ? qtimes.walls : etimes.walls;
        Table t({"cell", "wall (s)", "steps", "SLA", "STP"});
        for (std::size_t i = 0; i < res.size(); ++i) {
            t.row()
                .cell(run_quantum ? quantum_grid[i].label
                                  : event_grid[i].label)
                .cell(serial ? walls[i] : 0.0, 2)
                .cell(static_cast<long long>(res[i].simSteps))
                .cell(res[i].metrics.slaRate, 3)
                .cell(res[i].metrics.stp, 2);
        }
        t.print(strprintf("stress sweep (%s kernel)",
                          kernels.c_str()));
        std::printf("total wall: %.2f s\n",
                    run_quantum ? qwall : ewall);
    }

    // Quantum wall for a cell: measured when the tier ran, else
    // linearly extrapolated in task count from the largest measured
    // tier of the same pattern+policy (kernel steps are linear in
    // trace length).  Only wall clock is ever extrapolated.
    auto quantumWall = [&](std::size_t i, bool &extrapolated) {
        extrapolated = qindex[i] < 0;
        if (!extrapolated)
            return serial ? qtimes.walls[static_cast<std::size_t>(
                                qindex[i])]
                          : 0.0;
        double best_wall = 0.0;
        int best_tasks = 0;
        for (std::size_t j = 0; j < keys.size(); ++j) {
            if (qindex[j] < 0 ||
                keys[j].policy != keys[i].policy ||
                keys[j].pattern != keys[i].pattern ||
                keys[j].tasks <= best_tasks)
                continue;
            best_tasks = keys[j].tasks;
            best_wall = serial ? qtimes.walls[static_cast<std::size_t>(
                                     qindex[j])]
                               : 0.0;
        }
        return best_tasks > 0 ? best_wall * keys[i].tasks / best_tasks
                              : 0.0;
    };

    if (both) {
        Table t({"pattern", "tasks", "policy", "q wall", "e wall",
                 "speedup", "steps q/e", "SLA q", "SLA e",
                 "e ns/step"});
        for (std::size_t i = 0; i < keys.size(); ++i) {
            bool extrap = false;
            const double qw = quantumWall(i, extrap);
            const double ew = serial ? etimes.walls[i] : 0.0;
            const double ens = eres[i].simSteps > 0
                ? ew * 1e9 / static_cast<double>(eres[i].simSteps)
                : 0.0;
            Table &row = t.row()
                .cell(workload::arrivalPatternName(keys[i].pattern))
                .cell(static_cast<long long>(keys[i].tasks))
                .cell(keys[i].policy);
            if (!extrap) {
                const auto &qr =
                    qres[static_cast<std::size_t>(qindex[i])];
                row.cell(qw, 2)
                    .cell(ew, 2)
                    .cell(ew > 0.0 ? qw / ew : 0.0, 1)
                    .cell(static_cast<double>(qr.simSteps) /
                              static_cast<double>(eres[i].simSteps),
                          1)
                    .cell(qr.metrics.slaRate, 3);
            } else {
                row.cell(strprintf("~%.2f", qw))
                    .cell(ew, 2)
                    .cell(strprintf("~%.1f",
                                    ew > 0.0 ? qw / ew : 0.0))
                    .cell("-")
                    .cell("-");
            }
            row.cell(eres[i].metrics.slaRate, 3).cell(ens, 0);
        }
        t.print("stress sweep: quantum vs event kernel");
        std::printf("\nspeedup vs scale:\n");
        for (const int tasks : tasks_list) {
            double qsum = 0.0, esum = 0.0;
            bool any_extrap = false;
            for (std::size_t i = 0; i < keys.size(); ++i) {
                if (keys[i].tasks != tasks)
                    continue;
                bool extrap = false;
                qsum += quantumWall(i, extrap);
                any_extrap = any_extrap || extrap;
                esum += serial ? etimes.walls[i] : 0.0;
            }
            std::printf("  tasks=%-7d quantum %s%.2f s  "
                        "event %.2f s  speedup %s%.1fx\n",
                        tasks, any_extrap ? "~" : "", qsum, esum,
                        any_extrap ? "~" : "",
                        esum > 0.0 ? qsum / esum : 0.0);
        }
        std::printf("\ntotal wall: quantum %.2f s, event %.2f s, "
                    "speedup %.1fx%s\n",
                    qwall, ewall,
                    ewall > 0.0 ? qwall / ewall : 0.0,
                    qcap > 0 ? " (quantum total covers measured "
                               "tiers only)" : "");
    }

    if (!sample_out.empty()) {
        // First sampled cell's timeseries (event grid preferred — it
        // always runs in the comparison modes that matter).
        const exp::ScenarioResult *sampled = nullptr;
        for (const auto &r : run_event ? eres : qres) {
            if (r.telemetry) {
                sampled = &r;
                break;
            }
        }
        if (sampled == nullptr)
            warn("--sample-out %s: no cell produced a sampled "
                 "series", sample_out.c_str());
        else
            obs::writeTimeseries(*sampled->telemetry, sample_out);
    }

    const std::string json = args.getString("json", "");
    if (!json.empty()) {
        std::FILE *f = std::fopen(json.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write %s", json.c_str());
        std::fprintf(f, "{\n  \"bench\": \"stress_scale\",\n");
        std::fprintf(f, "  \"workload_set\": \"Workload-C\",\n");
        std::fprintf(f, "  \"qos\": \"QoS-M\",\n");
        std::fprintf(f, "  \"load_factor\": %.3f,\n", load);
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(seed));
        std::fprintf(f, "  \"jobs\": %d,\n",
                     exp::resolveJobs(opts.jobs));
        if (qcap > 0)
            std::fprintf(f, "  \"quantum_cap\": %d,\n", qcap);
        std::fprintf(f, "  \"cells\": [\n");
        for (std::size_t i = 0; i < keys.size(); ++i) {
            std::fprintf(
                f,
                "    {\"pattern\": \"%s\", \"tasks\": %d, "
                "\"policy\": \"%s\",\n",
                workload::arrivalPatternName(keys[i].pattern),
                keys[i].tasks, keys[i].policy.c_str());
            const bool qmeasured = run_quantum && qindex[i] >= 0;
            const char *sep = "";
            if (qmeasured) {
                writeJsonSide(
                    f, "quantum",
                    qres[static_cast<std::size_t>(qindex[i])],
                    serial ? qtimes.walls[static_cast<std::size_t>(
                                 qindex[i])]
                           : 0.0);
                sep = ",\n";
            } else if (run_quantum) {
                bool extrap = false;
                std::fprintf(
                    f,
                    "      \"quantum_extrapolated\": "
                    "{\"wall_s\": %.6f, \"cap\": %d}",
                    quantumWall(i, extrap), qcap);
                sep = ",\n";
            }
            if (run_event) {
                std::fputs(sep, f);
                writeJsonSide(f, "event", eres[i],
                              serial ? etimes.walls[i] : 0.0);
                const double ew = serial ? etimes.walls[i] : 0.0;
                if (eres[i].simSteps > 0)
                    std::fprintf(
                        f, ",\n      \"event_ns_per_step\": %.3f",
                        ew * 1e9 /
                            static_cast<double>(eres[i].simSteps));
            }
            if (both && qmeasured) {
                const auto &qr =
                    qres[static_cast<std::size_t>(qindex[i])];
                const double qw =
                    serial ? qtimes.walls[static_cast<std::size_t>(
                                 qindex[i])]
                           : 0.0;
                const double ew = serial ? etimes.walls[i] : 0.0;
                std::fprintf(
                    f,
                    ",\n      \"speedup\": %.3f, "
                    "\"step_ratio\": %.3f, \"sla_delta\": %.6f",
                    ew > 0.0 ? qw / ew : 0.0,
                    static_cast<double>(qr.simSteps) /
                        static_cast<double>(eres[i].simSteps),
                    eres[i].metrics.slaRate - qr.metrics.slaRate);
            } else if (both) {
                bool extrap = false;
                const double qw = quantumWall(i, extrap);
                const double ew = serial ? etimes.walls[i] : 0.0;
                std::fprintf(f,
                             ",\n      \"speedup_extrapolated\": "
                             "%.3f",
                             ew > 0.0 ? qw / ew : 0.0);
            }
            std::fprintf(f, "}%s\n",
                         i + 1 < keys.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        if (both) {
            // Per-tier speedup-vs-scale summary: the flat-cost claim
            // the calendar-queue kernel makes is that this column
            // does not collapse as traces grow.
            std::fprintf(f, "  \"speedup_vs_scale\": [\n");
            for (std::size_t k = 0; k < tasks_list.size(); ++k) {
                const int tasks = tasks_list[k];
                double qsum = 0.0, esum = 0.0;
                bool any_extrap = false;
                for (std::size_t i = 0; i < keys.size(); ++i) {
                    if (keys[i].tasks != tasks)
                        continue;
                    bool extrap = false;
                    qsum += quantumWall(i, extrap);
                    any_extrap = any_extrap || extrap;
                    esum += serial ? etimes.walls[i] : 0.0;
                }
                std::fprintf(
                    f,
                    "    {\"tasks\": %d, \"quantum_wall_s\": %.6f, "
                    "\"event_wall_s\": %.6f, \"speedup\": %.3f, "
                    "\"extrapolated\": %s}%s\n",
                    tasks, qsum, esum,
                    esum > 0.0 ? qsum / esum : 0.0,
                    any_extrap ? "true" : "false",
                    k + 1 < tasks_list.size() ? "," : "");
            }
            std::fprintf(f, "  ],\n");
        }
        std::fprintf(f, "  \"total\": {");
        if (run_quantum)
            std::fprintf(f, "\"quantum_wall_s\": %.6f%s", qwall,
                         run_event ? ", " : "");
        if (run_event)
            std::fprintf(f, "\"event_wall_s\": %.6f", ewall);
        if (both)
            std::fprintf(f, ", \"speedup\": %.3f",
                         ewall > 0.0 ? qwall / ewall : 0.0);
        std::fprintf(f, "}\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    return 0;
}
