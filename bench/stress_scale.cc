/**
 * @file
 * Long-horizon stress sweep comparing the two simulation kernels
 * (SocConfig::kernel): 2.5k-25k task traces under all three arrival
 * patterns (Poisson, uniform, bursty), each stream replayed
 * identically under the quantum and event kernels through
 * `exp::SweepRunner`.  Reports per-cell wall clock, kernel-step
 * counts, and metric deltas, and — with `--json PATH` — emits the
 * machine-readable perf baseline (BENCH_kernel.json) that CI uploads
 * so the bench trajectory accumulates.
 *
 * Note: unlike the figure benches, `--json` here writes the kernel
 * perf baseline, not per-scenario result rows.
 *
 * Usage: stress_scale [tasks=2500,10000,25000] [load=F] [seed=S]
 *                     [kernels=both|quantum|event]
 *                     [--policy SPEC[,SPEC...]] [--list-policies]
 *                     [--jobs N] [--json PATH] [max-cycles=N] ...
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "common/text.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

/** Wall-clock timestamps per completed cell (valid per cell when the
 *  sweep runs serially; only the total is meaningful with --jobs). */
class TimingSink : public exp::ResultSink
{
  public:
    void start() { last_ = std::chrono::steady_clock::now(); }

    void
    onResult(std::size_t, const exp::SweepCell &,
             const exp::ScenarioResult &) override
    {
        const auto now = std::chrono::steady_clock::now();
        walls.push_back(
            std::chrono::duration<double>(now - last_).count());
        last_ = now;
    }

    std::vector<double> walls;

  private:
    std::chrono::steady_clock::time_point last_;
};

std::vector<int>
parseTaskList(const std::string &text)
{
    std::vector<int> tasks;
    for (const auto &tok : splitCommaList(text))
        tasks.push_back(
            static_cast<int>(parseIntValue("tasks", tok)));
    if (tasks.empty())
        fatal("tasks= needs at least one value");
    return tasks;
}

struct CellKey
{
    workload::ArrivalPattern pattern;
    int tasks;
    std::string policy;
};

void
writeJsonSide(std::FILE *f, const char *name,
              const exp::ScenarioResult &r, double wall)
{
    std::fprintf(
        f,
        "      \"%s\": {\"wall_s\": %.6f, \"steps\": %llu, "
        "\"sla_rate\": %.6f, \"stp\": %.6f, \"makespan\": %llu}",
        name, wall, static_cast<unsigned long long>(r.simSteps),
        r.metrics.slaRate, r.metrics.stp,
        static_cast<unsigned long long>(r.makespan));
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig base = exp::socConfigFromArgs(args);
    const auto policies = exp::policiesFromArgs(args, {"moca"});
    const auto tasks_list =
        parseTaskList(args.getString("tasks", "2500,10000,25000"));
    const double load = args.getDouble("load", 0.8);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    // `kernels=` selects the comparison mode; a plain `--kernel X`
    // (the shared single-kernel bench flag) means "just that one".
    const std::string kernels = args.getString(
        "kernels",
        args.has("kernel") ? simKernelName(base.kernel) : "both");
    const bool run_quantum = kernels == "both" || kernels == "quantum";
    const bool run_event = kernels == "both" || kernels == "event";
    if (!run_quantum && !run_event)
        fatal("kernels=%s: expected both, quantum, or event",
              kernels.c_str());
    const exp::SweepOptions opts = exp::sweepOptionsFromArgs(args);
    const bool serial = exp::resolveJobs(opts.jobs) == 1;

    const std::vector<workload::ArrivalPattern> patterns = {
        workload::ArrivalPattern::Poisson,
        workload::ArrivalPattern::Uniform,
        workload::ArrivalPattern::Bursty,
    };

    std::printf("== stress_scale: long-horizon kernel comparison "
                "(load=%.2f seed=%llu jobs=%d) ==\n\n",
                load, static_cast<unsigned long long>(seed),
                exp::resolveJobs(opts.jobs));
    exp::printSocBanner(base);

    // One identical job stream per (pattern, tasks) cell, shared
    // read-only between the two kernels' grids.
    std::vector<CellKey> keys;
    std::vector<exp::SweepCell> quantum_grid, event_grid;
    std::size_t idx = 0;
    for (const auto pattern : patterns) {
        for (const int tasks : tasks_list) {
            workload::TraceConfig tr;
            tr.set = workload::WorkloadSet::C;
            tr.qos = workload::QosLevel::Medium;
            tr.arrivals = pattern;
            tr.numTasks = tasks;
            tr.loadFactor = load;
            tr.seed = exp::deriveCellSeed(seed, idx++);
            const auto stream =
                std::make_shared<const std::vector<sim::JobSpec>>(
                    exp::makeTrace(tr, base));
            for (const auto &policy : policies) {
                exp::SweepCell cell;
                cell.label = strprintf(
                    "%s tasks=%d %s",
                    workload::arrivalPatternName(pattern), tasks,
                    policy.c_str());
                cell.policy = policy;
                cell.trace = tr;
                cell.soc = base;
                cell.specs = stream;
                keys.push_back({pattern, tasks, policy});

                cell.soc.kernel = sim::SimKernel::Quantum;
                quantum_grid.push_back(cell);
                cell.soc.kernel = sim::SimKernel::Event;
                event_grid.push_back(cell);
            }
        }
    }

    const exp::SweepRunner runner(opts);
    auto run_grid = [&](const std::vector<exp::SweepCell> &grid,
                        TimingSink &sink, double &total) {
        sink.start();
        const auto t0 = std::chrono::steady_clock::now();
        const auto results = runner.run(grid, {&sink});
        total = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        return results;
    };

    TimingSink qtimes, etimes;
    double qwall = 0.0, ewall = 0.0;
    std::vector<exp::ScenarioResult> qres, eres;
    if (run_quantum) {
        std::printf("running %zu cells on the quantum kernel...\n",
                    quantum_grid.size());
        qres = run_grid(quantum_grid, qtimes, qwall);
    }
    if (run_event) {
        std::printf("running %zu cells on the event kernel...\n",
                    event_grid.size());
        eres = run_grid(event_grid, etimes, ewall);
    }
    std::printf("\n");

    const bool both = run_quantum && run_event;
    if (!both) {
        const auto &res = run_quantum ? qres : eres;
        const auto &walls = run_quantum ? qtimes.walls : etimes.walls;
        Table t({"cell", "wall (s)", "steps", "SLA", "STP"});
        for (std::size_t i = 0; i < res.size(); ++i) {
            t.row()
                .cell(run_quantum ? quantum_grid[i].label
                                  : event_grid[i].label)
                .cell(serial ? walls[i] : 0.0, 2)
                .cell(static_cast<long long>(res[i].simSteps))
                .cell(res[i].metrics.slaRate, 3)
                .cell(res[i].metrics.stp, 2);
        }
        t.print(strprintf("stress sweep (%s kernel)",
                          kernels.c_str()));
        std::printf("total wall: %.2f s\n",
                    run_quantum ? qwall : ewall);
    } else {
        Table t({"pattern", "tasks", "policy", "q wall", "e wall",
                 "speedup", "steps q/e", "SLA q", "SLA e"});
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const double qw = serial ? qtimes.walls[i] : 0.0;
            const double ew = serial ? etimes.walls[i] : 0.0;
            t.row()
                .cell(workload::arrivalPatternName(keys[i].pattern))
                .cell(static_cast<long long>(keys[i].tasks))
                .cell(keys[i].policy)
                .cell(qw, 2)
                .cell(ew, 2)
                .cell(ew > 0.0 ? qw / ew : 0.0, 1)
                .cell(static_cast<double>(qres[i].simSteps) /
                          static_cast<double>(eres[i].simSteps),
                      1)
                .cell(qres[i].metrics.slaRate, 3)
                .cell(eres[i].metrics.slaRate, 3);
        }
        t.print("stress sweep: quantum vs event kernel");
        std::printf("\ntotal wall: quantum %.2f s, event %.2f s, "
                    "speedup %.1fx\n",
                    qwall, ewall,
                    ewall > 0.0 ? qwall / ewall : 0.0);
    }

    const std::string json = args.getString("json", "");
    if (!json.empty()) {
        std::FILE *f = std::fopen(json.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write %s", json.c_str());
        std::fprintf(f, "{\n  \"bench\": \"stress_scale\",\n");
        std::fprintf(f, "  \"workload_set\": \"Workload-C\",\n");
        std::fprintf(f, "  \"qos\": \"QoS-M\",\n");
        std::fprintf(f, "  \"load_factor\": %.3f,\n", load);
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(seed));
        std::fprintf(f, "  \"jobs\": %d,\n",
                     exp::resolveJobs(opts.jobs));
        std::fprintf(f, "  \"cells\": [\n");
        for (std::size_t i = 0; i < keys.size(); ++i) {
            std::fprintf(
                f,
                "    {\"pattern\": \"%s\", \"tasks\": %d, "
                "\"policy\": \"%s\",\n",
                workload::arrivalPatternName(keys[i].pattern),
                keys[i].tasks, keys[i].policy.c_str());
            const char *sep = "";
            if (run_quantum) {
                writeJsonSide(f, "quantum", qres[i],
                              serial ? qtimes.walls[i] : 0.0);
                sep = ",\n";
            }
            if (run_event) {
                std::fputs(sep, f);
                writeJsonSide(f, "event", eres[i],
                              serial ? etimes.walls[i] : 0.0);
            }
            if (both) {
                const double qw = serial ? qtimes.walls[i] : 0.0;
                const double ew = serial ? etimes.walls[i] : 0.0;
                std::fprintf(
                    f,
                    ",\n      \"speedup\": %.3f, "
                    "\"step_ratio\": %.3f, \"sla_delta\": %.6f",
                    ew > 0.0 ? qw / ew : 0.0,
                    static_cast<double>(qres[i].simSteps) /
                        static_cast<double>(eres[i].simSteps),
                    eres[i].metrics.slaRate -
                        qres[i].metrics.slaRate);
            }
            std::fprintf(f, "}%s\n",
                         i + 1 < keys.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"total\": {");
        if (run_quantum)
            std::fprintf(f, "\"quantum_wall_s\": %.6f%s", qwall,
                         run_event ? ", " : "");
        if (run_event)
            std::fprintf(f, "\"event_wall_s\": %.6f", ewall);
        if (both)
            std::fprintf(f, ", \"speedup\": %.3f",
                         ewall > 0.0 ? qwall / ewall : 0.0);
        std::fprintf(f, "}\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    return 0;
}
