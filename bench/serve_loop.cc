/**
 * @file
 * Closed-loop serving study: does MoCA's contention-aware SLA lead
 * survive when the control loop fights back?  Every other results
 * family replays open-loop arrival traces; here K closed-loop clients
 * (serve/serve.h) issue requests reactively from completions through
 * admission control, with optional SoC failure injection and
 * autoscaling, so retry storms and shed-vs-queue tradeoffs feed back
 * into the offered load.
 *
 * Three sweep families share one grid:
 *   - clients:   client-count axis (offered-load ramp), always-admit,
 *                no failures;
 *   - admission: admission-policy axis (always / queue-cap /
 *                SLO-budget token bucket) at a fixed population;
 *   - failures:  fleet failure-rate axis (per Gcycle) at a fixed
 *                population, in-flight policy configurable.
 * Each scenario runs every selected per-SoC policy x dispatcher;
 * the summary table reports the reference policy's (moca) SLA and
 * goodput margins over the baselines per scenario.
 *
 * `--cluster-jobs N` shards the fleet across N conservative-PDES
 * workers; every emitted number is bit-identical for every N — CI
 * gates this by byte-diffing the `timing=0` JSON of `--cluster-jobs
 * 1` vs `4`, failure injection included.
 *
 * Telemetry (src/obs): `--trace-out FILE` exports one cell as a
 * Chrome trace_event JSON — SoC job spans, PDES epoch spans, and
 * front-end shed/defer/fail/recover/autoscale instants on one
 * timeline.  The exported cell is the first one with a nonzero fail
 * rate (so the fail/recover story is visible), falling back to the
 * first cell.  `--sample-every N` enables per-SoC sim-time sampling
 * (the traced cell's sampled series ride along into the trace as
 * counter tracks).  Observational only: emitted metrics are
 * bit-identical with or without telemetry.
 *
 * Usage: serve_loop [socs=4] [clients=4,16,64] [base-clients=16]
 *                   [rpc=24] [outstanding=1] [think=4.0]
 *                   [timeout-scale=6.0] [retries=3]
 *                   [fail-rates=0,100,400] [downtime=2e6]
 *                   [inflight=requeue|drop] [autoscale=0|1]
 *                   [control-quantum=50000] [seed=S] [timing=0|1]
 *                   [--cluster-jobs N] [--policy SPEC[,...]]
 *                   [--dispatcher SPEC[,...]] [--admission SPEC[,...]]
 *                   [--list-admission] [--jobs N] [--json PATH]
 *                   [--trace-out FILE] [--sample-every N]
 *                   [kernel=quantum|event] ...
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "common/text.h"
#include "common/walltime.h"
#include "exp/sweep/options.h"
#include "obs/capture.h"
#include "obs/chrome_trace.h"
#include "obs/profile.h"
#include "serve/serve.h"

using namespace moca;

namespace {

std::vector<int>
parseIntList(const std::string &what, const std::string &text)
{
    std::vector<int> values;
    for (const auto &tok : splitCommaList(text))
        values.push_back(static_cast<int>(parseIntValue(what, tok)));
    if (values.empty())
        fatal("%s needs at least one value", what.c_str());
    return values;
}

std::vector<double>
parseDoubleList(const std::string &what, const std::string &text)
{
    std::vector<double> values;
    for (const auto &tok : splitCommaList(text))
        values.push_back(parseDoubleValue(what, tok));
    if (values.empty())
        fatal("%s needs at least one value", what.c_str());
    return values;
}

struct Cell
{
    std::string family;   ///< "clients" / "admission" / "failures".
    std::string scenario; ///< Axis value label.
    std::string dispatcher;
    std::string policy;
    serve::ServeConfig cfg;
    serve::ServeResult result;
    double wall = 0.0;
};

/** One scenario axis point before the policy x dispatcher expansion. */
struct Scenario
{
    std::string family;
    std::string label;
    int clients = 0;
    std::string admission;
    double failRate = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    sim::SocConfig base = exp::socConfigFromArgs(args);
    // The closed loop re-plans at every harvest boundary; default to
    // the event kernel like the other fleet-scale benches.
    if (!args.has("kernel"))
        base.kernel = sim::SimKernel::Event;
    const auto policies = exp::policiesFromArgs(
        args, {"prema", "planaria", "moca"});
    const auto dispatchers =
        exp::dispatchersFromArgs(args, {"rr", "qos-aware"});
    const auto admissions = exp::admissionFromArgs(
        args,
        {"always", "queue-cap:depth=4", "slo-budget:rate=4,burst=8"});

    const int socs = static_cast<int>(args.getInt("socs", 4));
    const auto clients_list = parseIntList(
        "clients", args.getString("clients", "4,16,64"));
    const int base_clients =
        static_cast<int>(args.getInt("base-clients", 16));
    const int rpc = static_cast<int>(args.getInt("rpc", 24));
    const int outstanding =
        static_cast<int>(args.getInt("outstanding", 1));
    const double think = args.getDouble("think", 4.0);
    const double timeout_scale =
        args.getDouble("timeout-scale", 6.0);
    const int retries = static_cast<int>(args.getInt("retries", 3));
    const auto fail_rates = parseDoubleList(
        "fail-rates", args.getString("fail-rates", "0,100,400"));
    const double downtime = args.getDouble("downtime", 2e6);
    const auto inflight = serve::inflightPolicyFromName(
        args.getString("inflight", "requeue"));
    const bool autoscale = args.getBool("autoscale", false);
    const auto quantum = static_cast<Cycles>(
        args.getInt("control-quantum", 50'000));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const exp::SweepOptions opts = exp::sweepOptionsFromArgs(args);
    const int cluster_jobs =
        static_cast<int>(args.getInt("cluster-jobs", 1));
    if (cluster_jobs < 1)
        fatal("--cluster-jobs %d: the fleet engine needs at least "
              "one worker", cluster_jobs);
    // timing=0 zeroes every wall-clock field so two runs that must
    // be value-identical (--cluster-jobs 1 vs 4 in CI) emit
    // byte-identical JSON.
    const bool timing = args.getBool("timing", true);
    const bool record_wall =
        exp::resolveJobs(opts.jobs) == 1 && timing;

    std::printf("== serve_loop: closed-loop serving "
                "(socs=%d rpc=%d outstanding=%d timeout-scale=%.1f "
                "inflight=%s seed=%llu jobs=%d cluster-jobs=%d) "
                "==\n\n",
                socs, rpc, outstanding, timeout_scale,
                serve::inflightPolicyName(inflight),
                static_cast<unsigned long long>(seed),
                exp::resolveJobs(opts.jobs), cluster_jobs);
    exp::printSocBanner(base);

    std::vector<Scenario> scenarios;
    for (int c : clients_list) {
        Scenario s;
        s.family = "clients";
        s.label = strprintf("clients=%d", c);
        s.clients = c;
        s.admission = admissions.front();
        scenarios.push_back(std::move(s));
    }
    for (const auto &adm : admissions) {
        Scenario s;
        s.family = "admission";
        s.label = adm;
        s.clients = base_clients;
        s.admission = adm;
        scenarios.push_back(std::move(s));
    }
    for (double rate : fail_rates) {
        Scenario s;
        s.family = "failures";
        s.label = strprintf("fail-rate=%g", rate);
        s.clients = base_clients;
        s.admission = admissions.front();
        s.failRate = rate;
        scenarios.push_back(std::move(s));
    }

    // Scenario-major, then dispatcher, then policy — the margin
    // tables below index into this layout.
    std::vector<Cell> cells;
    for (const auto &s : scenarios) {
        for (const auto &dispatcher : dispatchers) {
            for (const auto &policy : policies) {
                Cell cell;
                cell.family = s.family;
                cell.scenario = s.label;
                cell.dispatcher = dispatcher;
                cell.policy = policy;
                serve::ServeConfig sc;
                sc.soc = base;
                sc.numSocs = socs;
                sc.policy = policy;
                sc.dispatcher = dispatcher;
                sc.admission = s.admission;
                sc.dispatcherSeed = seed;
                sc.jobs = cluster_jobs;
                sc.controlQuantum = quantum;
                sc.clients.numClients = s.clients;
                sc.clients.maxOutstanding = outstanding;
                sc.clients.requestsPerClient = rpc;
                sc.clients.thinkFactor = think;
                sc.clients.timeoutScale = timeout_scale;
                sc.clients.maxRetries = retries;
                sc.clients.seed = seed;
                sc.failures.rate = s.failRate;
                sc.failures.meanDowntime = downtime;
                sc.failures.inflight = inflight;
                sc.failures.seed = seed + 6;
                sc.autoscaler.enabled = autoscale;
                sc.profile = record_wall;
                cell.cfg = sc;
                cells.push_back(std::move(cell));
            }
        }
    }

    // Telemetry export: one capture bag on the first cell whose
    // scenario injects failures (the interesting timeline), else
    // cell 0; written by that cell's coordinator alone.
    const std::string trace_out = args.getString("trace-out", "");
    obs::Capture capture;
    std::size_t capture_idx = cells.size();
    if (!trace_out.empty() && !cells.empty()) {
        capture_idx = 0;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].cfg.failures.rate > 0.0) {
                capture_idx = i;
                break;
            }
        }
        cells[capture_idx].cfg.capture = &capture;
    }

    std::printf("running %zu serving cells...\n\n", cells.size());
    const WallTimer total_timer;
    exp::SweepRunner::runIndexed(
        cells.size(), opts.jobs, [&](std::size_t i) {
            Cell &cell = cells[i];
            const WallTimer cell_timer;
            cell.result = serve::runServe(cell.cfg);
            cell.wall = cell_timer.seconds();
            if (opts.verbose)
                std::printf("  [%zu/%zu] %s %s %s %s done "
                            "(%.1f s)\n",
                            i + 1, cells.size(),
                            cell.family.c_str(),
                            cell.scenario.c_str(),
                            cell.dispatcher.c_str(),
                            cell.policy.c_str(), cell.wall);
        });
    const double total_wall = total_timer.seconds();

    Table t({"family", "scenario", "dispatcher", "policy", "SLA",
             "goodput/s", "succ", "shed", "retry", "tmo", "p99n",
             "clat-p99 (Mcyc)", "upSoCs", "fails", "wall (s)"});
    for (const auto &cell : cells) {
        const auto &r = cell.result;
        t.row()
            .cell(cell.family)
            .cell(cell.scenario)
            .cell(cell.dispatcher)
            .cell(cell.policy)
            .cell(r.cluster.slaRate, 3)
            .cell(r.cluster.goodput, 0)
            .cell(r.successRate, 3)
            .cell(r.cluster.shedRate, 3)
            .cell(r.cluster.retryRate, 3)
            .cell(r.cluster.timeoutRate, 3)
            .cell(r.cluster.normLatency.p99, 2)
            .cell(r.clientLatency.p99 / 1e6, 2)
            .cell(r.meanUpSocs, 2)
            .cell(static_cast<long long>(r.failEvents))
            .cell(record_wall ? cell.wall : 0.0, 2);
    }
    t.print("closed-loop serving sweep (SLA/goodput count "
            "client-observed responses only; shed/retry/tmo are the "
            "control-loop outcome rates; clat-p99: client-observed "
            "latency incl. backoff)");

    // ---- reference-vs-baseline margins per scenario -----------------
    const std::string ref =
        [&] {
            for (const auto &p : policies)
                if (p == "moca")
                    return p;
            return policies.front();
        }();
    const std::size_t P = policies.size();
    const std::size_t D = dispatchers.size();
    auto cellAt = [&](std::size_t si, std::size_t di,
                      std::size_t pi) -> const Cell & {
        return cells[(si * D + di) * P + pi];
    };
    struct Margin
    {
        const Cell *refCell = nullptr;
        std::vector<const Cell *> others;
    };
    std::vector<Margin> margins;
    if (P > 1) {
        Table m({"family", "scenario", "dispatcher", ref + " SLA",
                 ref + " goodput/s", "best-other SLA",
                 "SLA margin", "goodput margin"});
        for (std::size_t si = 0; si < scenarios.size(); ++si) {
            for (std::size_t di = 0; di < D; ++di) {
                Margin mg;
                for (std::size_t pi = 0; pi < P; ++pi) {
                    const Cell &c = cellAt(si, di, pi);
                    if (c.policy == ref)
                        mg.refCell = &c;
                    else
                        mg.others.push_back(&c);
                }
                if (mg.refCell == nullptr)
                    continue;
                double best_sla = 0.0, best_goodput = 0.0;
                for (const Cell *o : mg.others) {
                    if (o->result.cluster.slaRate > best_sla)
                        best_sla = o->result.cluster.slaRate;
                    if (o->result.cluster.goodput > best_goodput)
                        best_goodput = o->result.cluster.goodput;
                }
                const auto &rr = mg.refCell->result.cluster;
                m.row()
                    .cell(mg.refCell->family)
                    .cell(mg.refCell->scenario)
                    .cell(mg.refCell->dispatcher)
                    .cell(rr.slaRate, 3)
                    .cell(rr.goodput, 0)
                    .cell(best_sla, 3)
                    .cell(rr.slaRate / std::max(best_sla, 1e-3), 2)
                    .cell(rr.goodput / std::max(best_goodput, 1e-3),
                          2);
                margins.push_back(std::move(mg));
            }
        }
        m.print(strprintf("%s vs best baseline per scenario (margin "
                          "= %s / best other)",
                          ref.c_str(), ref.c_str()));
    }
    std::printf("\ntotal wall: %.2f s\n", total_wall);

    if (record_wall) {
        obs::PhaseProfiler phases;
        for (const auto &cell : cells) {
            const auto &p = cell.result.cluster.phases;
            phases.add("shard-advance", p.shardAdvanceSec);
            phases.add("barrier-wait", p.barrierWaitSec);
            phases.add("coordinator", p.dispatchSec);
        }
        std::fputs(
            phases.render("serving phase profile (all cells)")
                .c_str(),
            stdout);
    }

    if (capture_idx < cells.size()) {
        const Cell &traced = cells[capture_idx];
        inform("trace-out: exporting cell %s %s %s %s",
               traced.family.c_str(), traced.scenario.c_str(),
               traced.dispatcher.c_str(), traced.policy.c_str());
        obs::ChromeTraceWriter writer;
        writer.addCapture(capture);
        writer.write(trace_out);
    }

    const std::string json = args.getString("json", "");
    if (!json.empty()) {
        std::FILE *f = std::fopen(json.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write %s", json.c_str());
        std::fprintf(f, "{\n  \"bench\": \"serve_loop\",\n");
        std::fprintf(f,
                     "  \"socs\": %d, \"rpc\": %d, "
                     "\"outstanding\": %d,\n",
                     socs, rpc, outstanding);
        std::fprintf(f,
                     "  \"think_factor\": %.3f, "
                     "\"timeout_scale\": %.3f, \"retries\": %d,\n",
                     think, timeout_scale, retries);
        std::fprintf(f,
                     "  \"downtime\": %.1f, \"inflight\": \"%s\", "
                     "\"autoscale\": %d,\n",
                     downtime, serve::inflightPolicyName(inflight),
                     autoscale ? 1 : 0);
        std::fprintf(f,
                     "  \"control_quantum\": %llu, \"seed\": %llu, "
                     "\"kernel\": \"%s\",\n",
                     static_cast<unsigned long long>(quantum),
                     static_cast<unsigned long long>(seed),
                     sim::simKernelName(base.kernel));
        std::fprintf(f, "  \"jobs\": %d,\n",
                     exp::resolveJobs(opts.jobs));
        std::fprintf(f, "  \"cells\": [\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &cell = cells[i];
            const auto &r = cell.result;
            const auto &c = r.cluster;
            std::fprintf(
                f,
                "    {\"family\": \"%s\", \"scenario\": \"%s\", "
                "\"dispatcher\": \"%s\", \"policy\": \"%s\",\n"
                "     \"requests\": %llu, \"attempts\": %llu, "
                "\"responses\": %llu, \"give_ups\": %llu,\n"
                "     \"timeouts\": %llu, \"retries\": %llu, "
                "\"shed\": %llu, \"deferrals\": %llu, "
                "\"orphans\": %llu,\n"
                "     \"requeued\": %llu, \"lost_jobs\": %llu, "
                "\"fail_events\": %llu, \"recover_events\": %llu,\n"
                "     \"scale_ups\": %llu, \"scale_downs\": %llu, "
                "\"success_rate\": %.6f,\n"
                "     \"sla_rate\": %.6f, \"sla_rate_high\": %.6f, "
                "\"goodput\": %.4f,\n"
                "     \"shed_rate\": %.6f, \"retry_rate\": %.6f, "
                "\"timeout_rate\": %.6f,\n"
                "     \"norm_p50\": %.4f, \"norm_p99\": %.4f, "
                "\"client_p50\": %.1f, \"client_p99\": %.1f,\n"
                "     \"stp\": %.6f, \"makespan\": %llu, "
                "\"balance_cv\": %.4f, \"epochs\": %llu,\n"
                "     \"mean_up_socs\": %.4f, \"end_cycle\": %llu, "
                "\"wall_s\": %.6f}%s\n",
                cell.family.c_str(), cell.scenario.c_str(),
                cell.dispatcher.c_str(), cell.policy.c_str(),
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.attempts),
                static_cast<unsigned long long>(r.responses),
                static_cast<unsigned long long>(r.giveUps),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.deferrals),
                static_cast<unsigned long long>(r.orphans),
                static_cast<unsigned long long>(r.requeued),
                static_cast<unsigned long long>(r.lostJobs),
                static_cast<unsigned long long>(r.failEvents),
                static_cast<unsigned long long>(r.recoverEvents),
                static_cast<unsigned long long>(r.scaleUps),
                static_cast<unsigned long long>(r.scaleDowns),
                r.successRate, c.slaRate, c.slaRateHigh, c.goodput,
                c.shedRate, c.retryRate, c.timeoutRate,
                c.normLatency.p50, c.normLatency.p99,
                r.clientLatency.p50, r.clientLatency.p99, c.stp,
                static_cast<unsigned long long>(c.makespan),
                c.balanceCv,
                static_cast<unsigned long long>(c.epochs),
                r.meanUpSocs,
                static_cast<unsigned long long>(r.endCycle),
                record_wall ? cell.wall : 0.0,
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"margins\": [\n");
        for (std::size_t i = 0; i < margins.size(); ++i) {
            const Margin &mg = margins[i];
            const auto &rr = mg.refCell->result.cluster;
            std::fprintf(
                f,
                "    {\"family\": \"%s\", \"scenario\": \"%s\", "
                "\"dispatcher\": \"%s\", \"ref\": \"%s\",\n"
                "     \"ref_sla\": %.6f, \"ref_goodput\": %.4f, "
                "\"baselines\": [",
                mg.refCell->family.c_str(),
                mg.refCell->scenario.c_str(),
                mg.refCell->dispatcher.c_str(), ref.c_str(),
                rr.slaRate, rr.goodput);
            for (std::size_t o = 0; o < mg.others.size(); ++o) {
                const auto &oc = mg.others[o]->result.cluster;
                std::fprintf(
                    f,
                    "%s\n      {\"policy\": \"%s\", "
                    "\"sla_rate\": %.6f, \"goodput\": %.4f, "
                    "\"sla_ratio\": %.4f, "
                    "\"goodput_ratio\": %.4f}",
                    o > 0 ? "," : "",
                    mg.others[o]->policy.c_str(), oc.slaRate,
                    oc.goodput,
                    rr.slaRate / std::max(oc.slaRate, 1e-3),
                    rr.goodput / std::max(oc.goodput, 1e-3));
            }
            std::fprintf(f, "]}%s\n",
                         i + 1 < margins.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"total\": {\"wall_s\": %.6f}\n}\n",
                     timing ? total_wall : 0.0);
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    return 0;
}
