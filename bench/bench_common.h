/**
 * @file
 * Shared helpers for the benchmark binaries: the Table II
 * configuration banner and default-trace plumbing, so every bench
 * prints the SoC it is modelling alongside its results.
 */

#ifndef MOCA_BENCH_BENCH_COMMON_H
#define MOCA_BENCH_BENCH_COMMON_H

#include <cstdio>

#include "common/argparse.h"
#include "sim/config.h"

namespace moca::bench {

/** Print the Table II SoC configuration banner. */
inline void
printSocBanner(const sim::SocConfig &cfg)
{
    std::printf("SoC configuration (paper Table II):\n");
    std::printf("  systolic array (per tile)  %dx%d\n", cfg.arrayDim,
                cfg.arrayDim);
    std::printf("  scratchpad (per tile)      %llu KiB\n",
                static_cast<unsigned long long>(
                    cfg.scratchpadBytes / KiB));
    std::printf("  accumulator (per tile)     %llu KiB\n",
                static_cast<unsigned long long>(
                    cfg.accumulatorBytes / KiB));
    std::printf("  accelerator tiles          %d\n", cfg.numTiles);
    std::printf("  shared L2                  %llu MB, %d banks\n",
                static_cast<unsigned long long>(cfg.l2Bytes / MiB),
                cfg.l2Banks);
    std::printf("  DRAM bandwidth             %.0f GB/s @ 1 GHz\n",
                cfg.dramBytesPerCycle);
    std::printf("\n");
}

/** Apply common key=value overrides to the SoC configuration. */
inline sim::SocConfig
socConfigFromArgs(const ArgMap &args)
{
    sim::SocConfig cfg;
    cfg.numTiles =
        static_cast<int>(args.getInt("tiles", cfg.numTiles));
    cfg.dramBytesPerCycle =
        args.getDouble("dram_bw", cfg.dramBytesPerCycle);
    cfg.l2Bytes = static_cast<std::uint64_t>(
        args.getInt("l2_kib",
                    static_cast<std::int64_t>(cfg.l2Bytes / KiB))) *
        KiB;
    cfg.overlapF = args.getDouble("overlap_f", cfg.overlapF);
    cfg.quantum = static_cast<Cycles>(
        args.getInt("quantum", static_cast<std::int64_t>(cfg.quantum)));
    return cfg;
}

} // namespace moca::bench

#endif // MOCA_BENCH_BENCH_COMMON_H
