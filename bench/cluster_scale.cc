/**
 * @file
 * Cluster fleet scaling study: does MoCA's contention-aware advantage
 * over the baselines survive at datacenter scale, where a front-end
 * load balancer can route contending jobs apart instead?  Sweeps fleet
 * size x dispatcher x per-SoC policy over synthesized open-loop
 * traces (cluster/workload.h), reporting fleet SLA, tail latency
 * (p50/p95/p99), STP, and load balance, and — with `--json PATH` —
 * emits the machine-readable perf baseline (BENCH_cluster.json) that
 * CI uploads.
 *
 * The default grid is {1,4,16,64} SoCs x {rr, p2c, least-loaded,
 * qos-aware} x {prema, planaria, moca} with tasks scaling with fleet
 * size (tasks-per-soc=1600, i.e. a 102k-task stream at 64 SoCs) over
 * the "wide" model mix (Table III plus the extension profiles);
 * `--big-fleet` extends the default tier to {128, 256} SoCs (a
 * 409.6k-task stream at 256) as the sharded engine's headroom target
 * — off in the CI smoke grid.
 *
 * `--cluster-jobs N` shards each fleet across N conservative-PDES
 * workers (cluster/parallel.h); every emitted number is bit-identical
 * for every N, which CI gates by byte-diffing the `timing=0` JSON of
 * `--cluster-jobs 1` vs `--cluster-jobs 4`.  (`--jobs` parallelizes
 * across grid cells as everywhere else; the two compose.)
 *
 * Telemetry (src/obs): `--trace-out FILE` exports the *first* grid
 * cell's run as a Chrome trace_event JSON (chrome://tracing /
 * Perfetto) — per-SoC job spans plus the PDES epoch timeline;
 * `--sample-every N` turns on per-SoC sim-time sampling, and
 * `--sample-out FILE` writes the first cell's SoC-0 timeseries
 * (CSV, or JSON for a .json path).  All observational: emitted
 * metrics are bit-identical with or without them.
 *
 * Usage: cluster_scale [socs=1,4,16,64] [tasks-per-soc=N] [tasks=N]
 *                      [process=poisson|mmpp|diurnal] [mix=wide|a|b|c|
 *                      name,name,...] [load=F] [seed=S] [timing=0|1]
 *                      [--big-fleet] [--cluster-jobs N]
 *                      [--policy SPEC[,SPEC...]] [--list-policies]
 *                      [--dispatcher SPEC[,SPEC...]]
 *                      [--list-dispatchers] [--jobs N] [--json PATH]
 *                      [--trace-out FILE] [--sample-every N]
 *                      [--sample-out FILE] [kernel=quantum|event] ...
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/log.h"
#include "common/table.h"
#include "common/text.h"
#include "common/walltime.h"
#include "exp/oracle.h"
#include "exp/sweep/options.h"
#include "obs/capture.h"
#include "obs/chrome_trace.h"
#include "obs/profile.h"
#include "obs/sampler.h"

using namespace moca;

namespace {

std::vector<int>
parseIntList(const std::string &what, const std::string &text)
{
    std::vector<int> values;
    for (const auto &tok : splitCommaList(text))
        values.push_back(static_cast<int>(parseIntValue(what, tok)));
    if (values.empty())
        fatal("%s needs at least one value", what.c_str());
    return values;
}

std::vector<dnn::ModelId>
parseMix(const std::string &text)
{
    if (text.empty() || text == "c")
        return dnn::workloadSetC();
    if (text == "a")
        return dnn::workloadSetA();
    if (text == "b")
        return dnn::workloadSetB();
    if (text == "wide") {
        std::vector<dnn::ModelId> mix = dnn::allModelIds();
        for (dnn::ModelId id : dnn::extensionModelIds())
            mix.push_back(id);
        return mix;
    }
    std::vector<dnn::ModelId> mix;
    for (const auto &tok : splitCommaList(text))
        mix.push_back(dnn::modelIdFromName(tok));
    if (mix.empty())
        fatal("mix= needs at least one model");
    return mix;
}

struct Cell
{
    int socs = 0;
    int tasks = 0;
    std::string dispatcher;
    std::string policy;
    std::shared_ptr<const std::vector<cluster::ClusterTask>> stream;
    cluster::ClusterResult result;
    double wall = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    sim::SocConfig base = exp::socConfigFromArgs(args);
    // Fleet scale is the point of this bench: default to the event
    // kernel (stress_scale compares the kernels; here we just want
    // the fast one) unless the user picked one explicitly.
    if (!args.has("kernel"))
        base.kernel = sim::SimKernel::Event;
    const auto policies = exp::policiesFromArgs(
        args, {"prema", "planaria", "moca"});
    const auto dispatchers = exp::dispatchersFromArgs(
        args, {"rr", "p2c", "least-loaded", "qos-aware"});
    // The {128, 256} headroom tier exists for the sharded engine on
    // real multi-core hardware; CI smoke stays on the small tiers.
    const bool big_fleet = args.getBool("big-fleet", false);
    const auto socs_list = parseIntList(
        "socs", args.getString(
                    "socs", big_fleet ? "1,4,16,64,128,256"
                                      : "1,4,16,64"));
    const int tasks_per_soc =
        static_cast<int>(args.getInt("tasks-per-soc", 1600));
    const int tasks_total = static_cast<int>(args.getInt("tasks", 0));
    const auto process = cluster::arrivalProcessFromName(
        args.getString("process", "poisson"));
    const auto mix = parseMix(args.getString("mix", "wide"));
    const double load = args.getDouble("load", 0.8);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const exp::SweepOptions opts = exp::sweepOptionsFromArgs(args);
    const int cluster_jobs =
        static_cast<int>(args.getInt("cluster-jobs", 1));
    if (cluster_jobs < 1)
        fatal("--cluster-jobs %d: the fleet engine needs at least "
              "one worker", cluster_jobs);
    // timing=0 zeroes every wall-clock field so two runs that must be
    // value-identical (e.g. --cluster-jobs 1 vs 4 in CI) emit
    // byte-identical JSON.
    const bool timing = args.getBool("timing", true);
    const bool record_wall =
        exp::resolveJobs(opts.jobs) == 1 && timing;

    // Telemetry export targets the first grid cell only: one capture
    // bag, written by that cell's run alone (never shared).
    const std::string trace_out = args.getString("trace-out", "");
    const std::string sample_out = args.getString("sample-out", "");
    if (!sample_out.empty() && base.sampleEvery == 0) {
        base.sampleEvery = 100'000;
        inform("--sample-out without --sample-every: defaulting to "
               "sampling every %llu cycles",
               static_cast<unsigned long long>(base.sampleEvery));
    }
    obs::Capture capture;
    const bool want_capture =
        !trace_out.empty() || !sample_out.empty();

    std::printf("== cluster_scale: fleet co-simulation "
                "(process=%s load=%.2f seed=%llu jobs=%d "
                "cluster-jobs=%d) ==\n\n",
                cluster::arrivalProcessName(process), load,
                static_cast<unsigned long long>(seed),
                exp::resolveJobs(opts.jobs), cluster_jobs);
    exp::printSocBanner(base);

    // One task stream per fleet size, shared read-only by every
    // dispatcher x policy cell so all strategies see identical
    // traffic.
    std::vector<Cell> cells;
    for (std::size_t si = 0; si < socs_list.size(); ++si) {
        const int n = socs_list[si];
        if (n < 1)
            fatal("socs=%d: fleet needs at least one SoC", n);
        const int tasks =
            tasks_total > 0 ? tasks_total : tasks_per_soc * n;

        cluster::SynthConfig synth;
        synth.process = process;
        synth.numTasks = tasks;
        synth.mix = mix;
        synth.loadFactor = load;
        synth.fleetTiles = n * base.numTiles;
        synth.seed = exp::deriveCellSeed(seed, si);
        const auto stream = std::make_shared<
            const std::vector<cluster::ClusterTask>>(
            cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
                return exp::isolatedLatency(id, 1, base);
            }));

        for (const auto &dispatcher : dispatchers) {
            for (const auto &policy : policies) {
                Cell cell;
                cell.socs = n;
                cell.tasks = tasks;
                cell.dispatcher = dispatcher;
                cell.policy = policy;
                cell.stream = stream;
                cells.push_back(std::move(cell));
            }
        }
    }

    std::printf("running %zu fleet cells...\n\n", cells.size());
    const WallTimer total_timer;
    exp::SweepRunner::runIndexed(
        cells.size(), opts.jobs, [&](std::size_t i) {
            Cell &cell = cells[i];
            cluster::ClusterConfig cc =
                cluster::ClusterConfig::homogeneous(cell.socs, base);
            cc.policy = cell.policy;
            cc.dispatcher = cell.dispatcher;
            cc.dispatcherSeed = seed;
            cc.jobs = cluster_jobs;
            cc.profile = record_wall;
            if (i == 0 && want_capture)
                cc.capture = &capture;
            const WallTimer cell_timer;
            cell.result = cluster::runCluster(cc, *cell.stream);
            cell.wall = cell_timer.seconds();
            if (opts.verbose)
                std::printf("  [%zu/%zu] socs=%d %s %s done "
                            "(%.1f s)\n",
                            i + 1, cells.size(), cell.socs,
                            cell.dispatcher.c_str(),
                            cell.policy.c_str(), cell.wall);
        });
    const double total_wall = total_timer.seconds();

    Table t({"socs", "tasks", "dispatcher", "policy", "SLA",
             "SLA-hi", "p50n", "p99n", "STP", "goodput/s",
             "balance", "steps", "epochs", "stalls", "wall (s)"});
    for (const auto &cell : cells) {
        const auto &r = cell.result;
        t.row()
            .cell(static_cast<long long>(cell.socs))
            .cell(static_cast<long long>(cell.tasks))
            .cell(cell.dispatcher)
            .cell(cell.policy)
            .cell(r.slaRate, 3)
            .cell(r.slaRateHigh, 3)
            .cell(r.normLatency.p50, 2)
            .cell(r.normLatency.p99, 2)
            .cell(r.stp, 1)
            .cell(r.goodput, 0)
            .cell(r.balanceCv, 3)
            .cell(static_cast<long long>(r.simSteps))
            .cell(static_cast<long long>(r.epochs))
            .cell(static_cast<long long>(r.horizonStalls))
            .cell(record_wall ? cell.wall : 0.0, 2);
    }
    t.print("cluster fleet sweep (p50n/p99n: end-to-end latency "
            "normalized to isolated full-SoC latency; epochs/stalls: "
            "PDES barrier epochs and skipped no-activity windows)");
    std::printf("\ntotal wall: %.2f s\n", total_wall);

    if (record_wall) {
        // Where the fleet runs actually spent their wall clock,
        // summed over all cells (obs/profile.h).
        obs::PhaseProfiler phases;
        for (const auto &cell : cells) {
            phases.add("shard-advance",
                       cell.result.phases.shardAdvanceSec);
            phases.add("barrier-wait",
                       cell.result.phases.barrierWaitSec);
            phases.add("dispatch", cell.result.phases.dispatchSec);
        }
        std::fputs(
            phases.render("PDES phase profile (all cells)").c_str(),
            stdout);
    }

    if (!trace_out.empty()) {
        obs::ChromeTraceWriter writer;
        writer.addCapture(capture);
        writer.write(trace_out);
    }
    if (!sample_out.empty()) {
        if (capture.socSeries.empty())
            warn("--sample-out %s: the run produced no sampled "
                 "series", sample_out.c_str());
        else
            obs::writeTimeseries(capture.socSeries.front(),
                                 sample_out);
    }

    const std::string json = args.getString("json", "");
    if (!json.empty()) {
        std::FILE *f = std::fopen(json.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write %s", json.c_str());
        std::fprintf(f, "{\n  \"bench\": \"cluster_scale\",\n");
        std::fprintf(f, "  \"process\": \"%s\",\n",
                     cluster::arrivalProcessName(process));
        std::fprintf(f, "  \"load_factor\": %.3f,\n", load);
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(seed));
        std::fprintf(f, "  \"kernel\": \"%s\",\n",
                     sim::simKernelName(base.kernel));
        std::fprintf(f, "  \"jobs\": %d,\n",
                     exp::resolveJobs(opts.jobs));
        std::fprintf(f, "  \"cells\": [\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &cell = cells[i];
            const auto &r = cell.result;
            std::fprintf(
                f,
                "    {\"socs\": %d, \"tasks\": %d, "
                "\"dispatcher\": \"%s\", \"policy\": \"%s\",\n"
                "     \"sla_rate\": %.6f, \"sla_rate_high\": %.6f, "
                "\"stp\": %.6f,\n"
                "     \"goodput\": %.4f, \"shed_rate\": %.6f, "
                "\"retry_rate\": %.6f, \"timeout_rate\": %.6f,\n"
                "     \"latency_p50\": %.1f, \"latency_p95\": %.1f, "
                "\"latency_p99\": %.1f,\n"
                "     \"norm_p50\": %.4f, \"norm_p95\": %.4f, "
                "\"norm_p99\": %.4f,\n"
                "     \"makespan\": %llu, \"balance_cv\": %.4f, "
                "\"sim_steps\": %llu,\n"
                "     \"epochs\": %llu, \"horizon_stalls\": %llu, "
                "\"mean_socs_stepped\": %.4f, \"wall_s\": %.6f}%s\n",
                cell.socs, cell.tasks, cell.dispatcher.c_str(),
                cell.policy.c_str(), r.slaRate, r.slaRateHigh,
                r.stp, r.goodput, r.shedRate, r.retryRate,
                r.timeoutRate, r.latency.p50, r.latency.p95,
                r.latency.p99,
                r.normLatency.p50, r.normLatency.p95,
                r.normLatency.p99,
                static_cast<unsigned long long>(r.makespan),
                r.balanceCv,
                static_cast<unsigned long long>(r.simSteps),
                static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.horizonStalls),
                r.meanSocsStepped,
                record_wall ? cell.wall : 0.0,
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"total\": {\"wall_s\": %.6f}\n}\n",
                     timing ? total_wall : 0.0);
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    return 0;
}
