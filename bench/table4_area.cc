/**
 * @file
 * Table IV reproduction: area breakdown of a MoCA-enabled accelerator
 * tile in the GlobalFoundries 12 nm process.  Fixed component areas
 * reproduce the paper's synthesis results; the MoCA hardware entry is
 * additionally derived from the gate-count model so the overhead
 * claim (< 0.1 Kum^2, 0.02% of the tile, 1.7%-grade memory-interface
 * delta) is recomputed rather than transcribed.  A counter-width
 * sensitivity grid (16..48-bit counters, evaluated on the sweep
 * engine) shows how far the width can grow before the overhead claim
 * breaks.
 *
 * Usage: table4_area [--list-policies] [--jobs N]
 */

#include <cstdio>
#include <vector>

#include "area/area_model.h"
#include "common/argparse.h"
#include "common/log.h"
#include "common/table.h"
#include "exp/sweep/options.h"

int
main(int argc, char **argv)
{
    using namespace moca;

    ArgMap args(argc, argv);
    // Area accounting is policy-independent; --list-policies still
    // works, and any --policy selection is rejected rather than
    // ignored.
    if (exp::policiesFromArgs(args, {"moca"}) !=
        std::vector<std::string>{"moca"})
        fatal("table4_area models the MoCA hardware area; --policy "
              "cannot change what it measures");
    const int jobs = static_cast<int>(args.getInt("jobs", 1));

    std::printf("== Table IV: area breakdown of an accelerator tile "
                "with MoCA ==\n\n");

    const area::MocaHwModel hw;
    const area::TileAreaBreakdown b = area::tileAreaBreakdown(hw);

    Table t({"Component", "Area (um^2)", "% of tile"});
    for (const auto &c : b.components) {
        t.row().cell(c.name).cell(c.areaUm2, 1)
            .cell(100.0 * c.areaUm2 / b.tileTotalUm2, 2);
    }
    t.row().cell("Tile (total)").cell(b.tileTotalUm2, 1).cell(100.0, 2);
    t.print();

    std::printf("\nMoCA hardware gate-count model: %.1f um^2 "
                "(paper reports ~0.1 Kum^2)\n", hw.areaUm2());
    std::printf("MoCA vs. memory interface: +%.1f%% "
                "(paper: ~1.7%% of the memory interface)\n",
                100.0 * b.mocaVsMemIf());
    std::printf("MoCA vs. tile: +%.3f%% (paper: 0.02%%)\n",
                100.0 * b.mocaVsTile());

    // ---- counter-width sensitivity (gate-count model) ----------------
    const std::vector<int> widths = {16, 24, 32, 48};
    std::vector<area::TileAreaBreakdown> breakdowns(widths.size());
    exp::SweepRunner::runIndexed(
        widths.size(), jobs, [&](std::size_t i) {
            area::MocaHwModel m;
            m.accessCounterBits = widths[i];
            m.thresholdRegBits = widths[i];
            m.windowCounterBits = widths[i];
            m.windowRegBits = widths[i];
            breakdowns[i] = area::tileAreaBreakdown(m);
        });

    Table s({"Counter width (bits)", "MoCA HW (um^2)",
             "% of mem IF", "% of tile"});
    for (std::size_t i = 0; i < widths.size(); ++i) {
        s.row().cell(static_cast<long long>(widths[i]))
            .cell(breakdowns[i].mocaHwUm2, 1)
            .cell(100.0 * breakdowns[i].mocaVsMemIf(), 2)
            .cell(100.0 * breakdowns[i].mocaVsTile(), 3);
    }
    s.print("MoCA hardware area vs. counter width");
    return 0;
}
