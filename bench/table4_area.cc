/**
 * @file
 * Table IV reproduction: area breakdown of a MoCA-enabled accelerator
 * tile in the GlobalFoundries 12 nm process.  Fixed component areas
 * reproduce the paper's synthesis results; the MoCA hardware entry is
 * additionally derived from the gate-count model so the overhead
 * claim (< 0.1 Kum^2, 0.02% of the tile, 1.7%-grade memory-interface
 * delta) is recomputed rather than transcribed.
 */

#include <cstdio>

#include "area/area_model.h"
#include "common/table.h"

int
main()
{
    using namespace moca;

    std::printf("== Table IV: area breakdown of an accelerator tile "
                "with MoCA ==\n\n");

    const area::MocaHwModel hw;
    const area::TileAreaBreakdown b = area::tileAreaBreakdown(hw);

    Table t({"Component", "Area (um^2)", "% of tile"});
    for (const auto &c : b.components) {
        t.row().cell(c.name).cell(c.areaUm2, 1)
            .cell(100.0 * c.areaUm2 / b.tileTotalUm2, 2);
    }
    t.row().cell("Tile (total)").cell(b.tileTotalUm2, 1).cell(100.0, 2);
    t.print();

    std::printf("\nMoCA hardware gate-count model: %.1f um^2 "
                "(paper reports ~0.1 Kum^2)\n", hw.areaUm2());
    std::printf("MoCA vs. memory interface: +%.1f%% "
                "(paper: ~1.7%% of the memory interface)\n",
                100.0 * b.mocaVsMemIf());
    std::printf("MoCA vs. tile: +%.3f%% (paper: 0.02%%)\n",
                100.0 * b.mocaVsTile());
    return 0;
}
