/**
 * @file
 * Robustness study: the headline MoCA-over-baselines ratios must not
 * be artifacts of one random trace.  Sweeps (a) five seeds and (b)
 * three arrival processes (Poisson / uniform-jitter / bursty) on
 * Workload-C QoS-M, and (c) compares the paper's layer-*block*
 * reconfiguration granularity against per-layer reconfiguration
 * (Sec. IV-D adopts blocks following Veltair).
 *
 * Usage: robustness [tasks=N]
 */

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/oracle.h"
#include "exp/scenario.h"

using namespace moca;

namespace {

struct Ratios
{
    double vsStatic = 0.0;
    double vsPlanaria = 0.0;
    double vsPrema = 0.0;
    double mocaSla = 0.0;
};

Ratios
runOnce(const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    const auto specs = exp::makeTrace(trace, cfg);
    auto sla = [&](exp::PolicyKind k) {
        return std::max(
            exp::runTrace(k, specs, trace, cfg).metrics.slaRate,
            1e-3);
    };
    Ratios r;
    r.mocaSla = sla(exp::PolicyKind::Moca);
    r.vsStatic = r.mocaSla / sla(exp::PolicyKind::StaticPartition);
    r.vsPlanaria = r.mocaSla / sla(exp::PolicyKind::Planaria);
    r.vsPrema = r.mocaSla / sla(exp::PolicyKind::Prema);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = bench::socConfigFromArgs(args);
    const int tasks = static_cast<int>(args.getInt("tasks", 150));

    std::printf("== Robustness: seeds, arrival processes, reconfig "
                "granularity (Workload-C QoS-M, tasks=%d) ==\n\n",
                tasks);

    // ---- (a) seed sweep ----------------------------------------------
    {
        Table t({"Seed", "MoCA SLA", "MoCA/Static", "MoCA/Planaria",
                 "MoCA/Prema"});
        StatAccum vs_static;
        for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
            workload::TraceConfig trace;
            trace.numTasks = tasks;
            trace.seed = seed;
            const Ratios r = runOnce(trace, cfg);
            vs_static.add(r.vsStatic);
            t.row().cell(static_cast<long long>(seed))
                .cell(r.mocaSla, 3).cell(r.vsStatic, 2)
                .cell(r.vsPlanaria, 2).cell(r.vsPrema, 2);
        }
        t.print("Seed sweep");
        t.writeCsv("robustness_seeds.csv");
        std::printf("\nMoCA/Static across seeds: mean %.2f, "
                    "stddev %.2f, min %.2f\n", vs_static.mean(),
                    vs_static.stddev(), vs_static.min());
    }

    // ---- (b) arrival-pattern sweep -------------------------------------
    {
        Table t({"Arrivals", "MoCA SLA", "MoCA/Static",
                 "MoCA/Planaria", "MoCA/Prema"});
        for (auto pattern : {workload::ArrivalPattern::Poisson,
                             workload::ArrivalPattern::Uniform,
                             workload::ArrivalPattern::Bursty}) {
            workload::TraceConfig trace;
            trace.numTasks = tasks;
            trace.seed = 1;
            trace.arrivals = pattern;
            const Ratios r = runOnce(trace, cfg);
            t.row().cell(workload::arrivalPatternName(pattern))
                .cell(r.mocaSla, 3).cell(r.vsStatic, 2)
                .cell(r.vsPlanaria, 2).cell(r.vsPrema, 2);
        }
        t.print("Arrival-process sweep");
        t.writeCsv("robustness_arrivals.csv");
    }

    // ---- (c) reconfiguration granularity ------------------------------
    {
        Table t({"Granularity", "MoCA SLA", "STP",
                 "Throttle reconfigs"});
        for (bool per_layer : {false, true}) {
            sim::SocConfig c2 = cfg;
            c2.layerBoundaryEvents = per_layer;
            workload::TraceConfig trace;
            trace.numTasks = tasks;
            trace.seed = 1;
            exp::clearOracleCache();
            const auto specs = exp::makeTrace(trace, c2);
            const auto r = exp::runTrace(exp::PolicyKind::Moca, specs,
                                         trace, c2);
            t.row().cell(per_layer ? "per layer" : "layer block")
                .cell(r.metrics.slaRate, 3).cell(r.metrics.stp, 2)
                .cell(static_cast<long long>(
                    r.totalThrottleReconfigs));
        }
        exp::clearOracleCache();
        t.print("Reconfiguration granularity (Sec. IV-D)");
        t.writeCsv("robustness_granularity.csv");
    }
    return 0;
}
