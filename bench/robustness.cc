/**
 * @file
 * Robustness study: the headline MoCA-over-baselines ratios must not
 * be artifacts of one random trace.  Sweeps (a) five seeds and (b)
 * three arrival processes (Poisson / uniform-jitter / bursty) on
 * Workload-C QoS-M, and (c) compares the paper's layer-*block*
 * reconfiguration granularity against per-layer reconfiguration
 * (Sec. IV-D adopts blocks following Veltair).  All 34 scenario
 * cells run as one grid on the sweep engine.
 *
 * Usage: robustness [tasks=N] [--jobs N] [--csv PATH] [--json PATH]
 */

#include <cstdio>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

struct Ratios
{
    double vsStatic = 0.0;
    double vsPlanaria = 0.0;
    double vsPrema = 0.0;
    double mocaSla = 0.0;
};

/** Ratios of one scenario from its four consecutive results. */
Ratios
toRatios(const std::vector<exp::ScenarioResult> &results,
         std::size_t base)
{
    auto sla = [&](exp::PolicyKind k) {
        for (std::size_t p = 0; p < exp::allPolicies().size(); ++p)
            if (results[base + p].policy == k)
                return std::max(results[base + p].metrics.slaRate,
                                1e-3);
        return 1e-3;
    };
    Ratios r;
    r.mocaSla = sla(exp::PolicyKind::Moca);
    r.vsStatic = r.mocaSla / sla(exp::PolicyKind::StaticPartition);
    r.vsPlanaria = r.mocaSla / sla(exp::PolicyKind::Planaria);
    r.vsPrema = r.mocaSla / sla(exp::PolicyKind::Prema);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const int tasks = static_cast<int>(args.getInt("tasks", 150));

    std::printf("== Robustness: seeds, arrival processes, reconfig "
                "granularity (Workload-C QoS-M, tasks=%d) ==\n\n",
                tasks);

    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
    const std::vector<workload::ArrivalPattern> patterns = {
        workload::ArrivalPattern::Poisson,
        workload::ArrivalPattern::Uniform,
        workload::ArrivalPattern::Bursty,
    };
    const std::size_t per_scenario = exp::allPolicies().size();

    std::vector<exp::SweepCell> grid;

    // ---- (a) seed sweep: cells [0, 20) ------------------------------
    for (std::uint64_t seed : seeds) {
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = seed;
        exp::appendPolicyCells(
            grid,
            strprintf("seed=%llu",
                      static_cast<unsigned long long>(seed)),
            exp::allPolicies(), trace, cfg);
    }

    // ---- (b) arrival-pattern sweep: cells [20, 32) ------------------
    for (auto pattern : patterns) {
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = 1;
        trace.arrivals = pattern;
        exp::appendPolicyCells(grid,
                               workload::arrivalPatternName(pattern),
                               exp::allPolicies(), trace, cfg);
    }

    // ---- (c) reconfiguration granularity: cells [32, 34) ------------
    const std::size_t gran_base = grid.size();
    for (bool per_layer : {false, true}) {
        sim::SocConfig c2 = cfg;
        c2.layerBoundaryEvents = per_layer;
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = 1;
        exp::SweepCell cell;
        cell.label = per_layer ? "per layer" : "layer block";
        cell.policy = exp::PolicyKind::Moca;
        cell.trace = trace;
        cell.soc = c2;
        grid.push_back(std::move(cell));
    }

    const auto sinks = exp::fileSinksFromArgs(args);
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid, sinks.pointers());

    {
        Table t({"Seed", "MoCA SLA", "MoCA/Static", "MoCA/Planaria",
                 "MoCA/Prema"});
        StatAccum vs_static;
        for (std::size_t s = 0; s < seeds.size(); ++s) {
            const Ratios r = toRatios(results, s * per_scenario);
            vs_static.add(r.vsStatic);
            t.row().cell(static_cast<long long>(seeds[s]))
                .cell(r.mocaSla, 3).cell(r.vsStatic, 2)
                .cell(r.vsPlanaria, 2).cell(r.vsPrema, 2);
        }
        t.print("Seed sweep");
        t.writeCsv("robustness_seeds.csv");
        std::printf("\nMoCA/Static across seeds: mean %.2f, "
                    "stddev %.2f, min %.2f\n", vs_static.mean(),
                    vs_static.stddev(), vs_static.min());
    }

    {
        Table t({"Arrivals", "MoCA SLA", "MoCA/Static",
                 "MoCA/Planaria", "MoCA/Prema"});
        const std::size_t base = seeds.size() * per_scenario;
        for (std::size_t p = 0; p < patterns.size(); ++p) {
            const Ratios r =
                toRatios(results, base + p * per_scenario);
            t.row().cell(workload::arrivalPatternName(patterns[p]))
                .cell(r.mocaSla, 3).cell(r.vsStatic, 2)
                .cell(r.vsPlanaria, 2).cell(r.vsPrema, 2);
        }
        t.print("Arrival-process sweep");
        t.writeCsv("robustness_arrivals.csv");
    }

    {
        Table t({"Granularity", "MoCA SLA", "STP",
                 "Throttle reconfigs"});
        for (std::size_t g = 0; g < 2; ++g) {
            const auto &r = results[gran_base + g];
            t.row().cell(grid[gran_base + g].label)
                .cell(r.metrics.slaRate, 3).cell(r.metrics.stp, 2)
                .cell(static_cast<long long>(
                    r.totalThrottleReconfigs));
        }
        t.print("Reconfiguration granularity (Sec. IV-D)");
        t.writeCsv("robustness_granularity.csv");
    }
    return 0;
}
