/**
 * @file
 * Robustness study: the headline MoCA-over-baselines ratios must not
 * be artifacts of one random trace.  Sweeps (a) five seeds and (b)
 * three arrival processes (Poisson / uniform-jitter / bursty) on
 * Workload-C QoS-M, and (c) compares the paper's layer-*block*
 * reconfiguration granularity against per-layer reconfiguration
 * (Sec. IV-D adopts blocks following Veltair).  All 34 scenario
 * cells run as one grid on the sweep engine.
 *
 * Usage: robustness [tasks=N] [--policy SPEC[,SPEC...]]
 *                   [--list-policies] [--jobs N] [--csv PATH]
 *                   [--json PATH]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/sweep/options.h"

using namespace moca;

namespace {

/**
 * The reference policy's SLA and its ratio over every other selected
 * policy, from one scenario's consecutive results.
 */
struct Ratios
{
    double refSla = 0.0;
    std::vector<double> vsOthers; ///< ref/other, others in list order.
};

Ratios
toRatios(const std::vector<exp::ScenarioResult> &results,
         std::size_t base, const std::vector<std::string> &policies,
         const std::string &ref)
{
    auto sla = [&](const std::string &spec) {
        for (std::size_t p = 0; p < policies.size(); ++p)
            if (results[base + p].policy == spec)
                return std::max(results[base + p].metrics.slaRate,
                                1e-3);
        return 1e-3;
    };
    Ratios r;
    r.refSla = sla(ref);
    for (const auto &spec : policies)
        if (spec != ref)
            r.vsOthers.push_back(r.refSla / sla(spec));
    return r;
}

/** Header row for a ratio table: ref SLA + ref/other columns. */
std::vector<std::string>
ratioHeader(const std::string &axis,
            const std::vector<std::string> &policies,
            const std::string &ref)
{
    std::vector<std::string> h = {axis, ref + " SLA"};
    for (const auto &spec : policies)
        if (spec != ref)
            h.push_back(ref + "/" + spec);
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const int tasks = static_cast<int>(args.getInt("tasks", 150));
    const auto policies = exp::policiesFromArgs(args);
    const std::string ref =
        std::find(policies.begin(), policies.end(), "moca") !=
            policies.end()
        ? "moca"
        : policies.front();

    std::printf("== Robustness: seeds, arrival processes, reconfig "
                "granularity (Workload-C QoS-M, tasks=%d) ==\n\n",
                tasks);

    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
    const std::vector<workload::ArrivalPattern> patterns = {
        workload::ArrivalPattern::Poisson,
        workload::ArrivalPattern::Uniform,
        workload::ArrivalPattern::Bursty,
    };
    const std::size_t per_scenario = policies.size();

    std::vector<exp::SweepCell> grid;

    // ---- (a) seed sweep: cells [0, 20) ------------------------------
    for (std::uint64_t seed : seeds) {
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = seed;
        exp::appendPolicyCells(
            grid,
            strprintf("seed=%llu",
                      static_cast<unsigned long long>(seed)),
            policies, trace, cfg);
    }

    // ---- (b) arrival-pattern sweep: cells [20, 32) ------------------
    for (auto pattern : patterns) {
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = 1;
        trace.arrivals = pattern;
        exp::appendPolicyCells(grid,
                               workload::arrivalPatternName(pattern),
                               policies, trace, cfg);
    }

    // ---- (c) reconfiguration granularity: cells [32, 34) ------------
    const std::size_t gran_base = grid.size();
    for (bool per_layer : {false, true}) {
        sim::SocConfig c2 = cfg;
        c2.layerBoundaryEvents = per_layer;
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = 1;
        exp::SweepCell cell;
        cell.label = per_layer ? "per layer" : "layer block";
        cell.policy = ref;
        cell.trace = trace;
        cell.soc = c2;
        grid.push_back(std::move(cell));
    }

    const auto sinks = exp::fileSinksFromArgs(args);
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid, sinks.pointers());

    {
        Table t(ratioHeader("Seed", policies, ref));
        StatAccum first_ratio;
        for (std::size_t s = 0; s < seeds.size(); ++s) {
            const Ratios r =
                toRatios(results, s * per_scenario, policies, ref);
            if (!r.vsOthers.empty())
                first_ratio.add(r.vsOthers.front());
            t.row().cell(static_cast<long long>(seeds[s]))
                .cell(r.refSla, 3);
            for (double v : r.vsOthers)
                t.cell(v, 2);
        }
        t.print("Seed sweep");
        t.writeCsv("robustness_seeds.csv");
        if (first_ratio.count() > 0)
            std::printf("\n%s across seeds: mean %.2f, "
                        "stddev %.2f, min %.2f\n",
                        ratioHeader("", policies, ref)[2].c_str(),
                        first_ratio.mean(), first_ratio.stddev(),
                        first_ratio.min());
    }

    {
        Table t(ratioHeader("Arrivals", policies, ref));
        const std::size_t base = seeds.size() * per_scenario;
        for (std::size_t p = 0; p < patterns.size(); ++p) {
            const Ratios r = toRatios(
                results, base + p * per_scenario, policies, ref);
            t.row().cell(workload::arrivalPatternName(patterns[p]))
                .cell(r.refSla, 3);
            for (double v : r.vsOthers)
                t.cell(v, 2);
        }
        t.print("Arrival-process sweep");
        t.writeCsv("robustness_arrivals.csv");
    }

    {
        Table t({"Granularity", ref + " SLA", "STP",
                 "Throttle reconfigs"});
        for (std::size_t g = 0; g < 2; ++g) {
            const auto &r = results[gran_base + g];
            t.row().cell(grid[gran_base + g].label)
                .cell(r.metrics.slaRate, 3).cell(r.metrics.stp, 2)
                .cell(static_cast<long long>(
                    r.totalThrottleReconfigs));
        }
        t.print("Reconfiguration granularity (Sec. IV-D)");
        t.writeCsv("robustness_granularity.csv");
    }
    return 0;
}
