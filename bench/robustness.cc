/**
 * @file
 * Robustness study: the headline MoCA-over-baselines ratios must not
 * be artifacts of one random trace.  Sweeps (a) five seeds and (b)
 * three arrival processes (Poisson / uniform-jitter / bursty) on
 * Workload-C QoS-M, (c) compares the paper's layer-*block*
 * reconfiguration granularity against per-layer reconfiguration
 * (Sec. IV-D adopts blocks following Veltair), and (d) injects
 * seeded SoC failures into a small closed-loop serving fleet
 * (serve/serve.h) to check the ratios survive capacity churn.  The
 * 34 trace cells of (a)-(c) run as one grid on the sweep engine;
 * the (d) serving cells run on the same runIndexed pool.
 *
 * Usage: robustness [tasks=N] [--policy SPEC[,SPEC...]]
 *                   [--list-policies] [--jobs N] [--csv PATH]
 *                   [--json PATH]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "exp/sweep/options.h"
#include "serve/serve.h"

using namespace moca;

namespace {

/**
 * The reference policy's SLA and its ratio over every other selected
 * policy, from one scenario's consecutive results.
 */
struct Ratios
{
    double refSla = 0.0;
    std::vector<double> vsOthers; ///< ref/other, others in list order.
};

Ratios
toRatios(const std::vector<exp::ScenarioResult> &results,
         std::size_t base, const std::vector<std::string> &policies,
         const std::string &ref)
{
    auto sla = [&](const std::string &spec) {
        for (std::size_t p = 0; p < policies.size(); ++p)
            if (results[base + p].policy == spec)
                return std::max(results[base + p].metrics.slaRate,
                                1e-3);
        return 1e-3;
    };
    Ratios r;
    r.refSla = sla(ref);
    for (const auto &spec : policies)
        if (spec != ref)
            r.vsOthers.push_back(r.refSla / sla(spec));
    return r;
}

/** Header row for a ratio table: ref SLA + ref/other columns. */
std::vector<std::string>
ratioHeader(const std::string &axis,
            const std::vector<std::string> &policies,
            const std::string &ref)
{
    std::vector<std::string> h = {axis, ref + " SLA"};
    for (const auto &spec : policies)
        if (spec != ref)
            h.push_back(ref + "/" + spec);
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg = exp::socConfigFromArgs(args);
    const int tasks = static_cast<int>(args.getInt("tasks", 150));
    const auto policies = exp::policiesFromArgs(args);
    const std::string ref =
        std::find(policies.begin(), policies.end(), "moca") !=
            policies.end()
        ? "moca"
        : policies.front();

    std::printf("== Robustness: seeds, arrival processes, reconfig "
                "granularity (Workload-C QoS-M, tasks=%d) ==\n\n",
                tasks);

    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
    const std::vector<workload::ArrivalPattern> patterns = {
        workload::ArrivalPattern::Poisson,
        workload::ArrivalPattern::Uniform,
        workload::ArrivalPattern::Bursty,
    };
    const std::size_t per_scenario = policies.size();

    std::vector<exp::SweepCell> grid;

    // ---- (a) seed sweep: cells [0, 20) ------------------------------
    for (std::uint64_t seed : seeds) {
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = seed;
        exp::appendPolicyCells(
            grid,
            strprintf("seed=%llu",
                      static_cast<unsigned long long>(seed)),
            policies, trace, cfg);
    }

    // ---- (b) arrival-pattern sweep: cells [20, 32) ------------------
    for (auto pattern : patterns) {
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = 1;
        trace.arrivals = pattern;
        exp::appendPolicyCells(grid,
                               workload::arrivalPatternName(pattern),
                               policies, trace, cfg);
    }

    // ---- (c) reconfiguration granularity: cells [32, 34) ------------
    const std::size_t gran_base = grid.size();
    for (bool per_layer : {false, true}) {
        sim::SocConfig c2 = cfg;
        c2.layerBoundaryEvents = per_layer;
        workload::TraceConfig trace;
        trace.numTasks = tasks;
        trace.seed = 1;
        exp::SweepCell cell;
        cell.label = per_layer ? "per layer" : "layer block";
        cell.policy = ref;
        cell.trace = trace;
        cell.soc = c2;
        grid.push_back(std::move(cell));
    }

    const auto sinks = exp::fileSinksFromArgs(args);
    const exp::SweepOptions opts = exp::sweepOptionsFromArgs(args);
    const exp::SweepRunner runner(opts);
    const auto results = runner.run(grid, sinks.pointers());

    {
        Table t(ratioHeader("Seed", policies, ref));
        StatAccum first_ratio;
        for (std::size_t s = 0; s < seeds.size(); ++s) {
            const Ratios r =
                toRatios(results, s * per_scenario, policies, ref);
            if (!r.vsOthers.empty())
                first_ratio.add(r.vsOthers.front());
            t.row().cell(static_cast<long long>(seeds[s]))
                .cell(r.refSla, 3);
            for (double v : r.vsOthers)
                t.cell(v, 2);
        }
        t.print("Seed sweep");
        t.writeCsv("robustness_seeds.csv");
        if (first_ratio.count() > 0)
            std::printf("\n%s across seeds: mean %.2f, "
                        "stddev %.2f, min %.2f\n",
                        ratioHeader("", policies, ref)[2].c_str(),
                        first_ratio.mean(), first_ratio.stddev(),
                        first_ratio.min());
    }

    {
        Table t(ratioHeader("Arrivals", policies, ref));
        const std::size_t base = seeds.size() * per_scenario;
        for (std::size_t p = 0; p < patterns.size(); ++p) {
            const Ratios r = toRatios(
                results, base + p * per_scenario, policies, ref);
            t.row().cell(workload::arrivalPatternName(patterns[p]))
                .cell(r.refSla, 3);
            for (double v : r.vsOthers)
                t.cell(v, 2);
        }
        t.print("Arrival-process sweep");
        t.writeCsv("robustness_arrivals.csv");
    }

    {
        Table t({"Granularity", ref + " SLA", "STP",
                 "Throttle reconfigs"});
        for (std::size_t g = 0; g < 2; ++g) {
            const auto &r = results[gran_base + g];
            t.row().cell(grid[gran_base + g].label)
                .cell(r.metrics.slaRate, 3).cell(r.metrics.stp, 2)
                .cell(static_cast<long long>(
                    r.totalThrottleReconfigs));
        }
        t.print("Reconfiguration granularity (Sec. IV-D)");
        t.writeCsv("robustness_granularity.csv");
    }

    // ---- (d) failure injection: closed-loop serving under churn -----
    // A small closed-loop fleet (serve/serve.h) with seeded SoC
    // fail/recover events: the ratios must survive capacity churn,
    // not just trace resampling.  Rates are fleet-wide failures per
    // Gcycle; in-flight work on a failed SoC is requeued.
    {
        const std::vector<double> fail_rates = {0.0, 200.0, 800.0};
        std::vector<serve::ServeResult> serve_results(
            fail_rates.size() * policies.size());
        exp::SweepRunner::runIndexed(
            serve_results.size(), opts.jobs, [&](std::size_t i) {
                const std::size_t fr = i / policies.size();
                serve::ServeConfig sc;
                sc.soc = cfg;
                sc.numSocs = 2;
                sc.policy = policies[i % policies.size()];
                sc.clients.numClients = 8;
                sc.clients.requestsPerClient = 8;
                sc.clients.timeoutScale = 6.0;
                sc.failures.rate = fail_rates[fr];
                serve_results[i] = serve::runServe(sc);
            });

        auto sla = [&](std::size_t fr, const std::string &spec) {
            for (std::size_t p = 0; p < policies.size(); ++p)
                if (policies[p] == spec)
                    return std::max(
                        serve_results[fr * policies.size() + p]
                            .cluster.slaRate,
                        1e-3);
            return 1e-3;
        };
        std::vector<std::string> header =
            ratioHeader("Failures/Gcyc", policies, ref);
        header.push_back("fail events");
        header.push_back("requeued");
        Table t(header);
        for (std::size_t fr = 0; fr < fail_rates.size(); ++fr) {
            const double ref_sla = sla(fr, ref);
            t.row().cell(fail_rates[fr], 0).cell(ref_sla, 3);
            for (const auto &spec : policies)
                if (spec != ref)
                    t.cell(ref_sla / sla(fr, spec), 2);
            std::uint64_t fails = 0, requeued = 0;
            for (std::size_t p = 0; p < policies.size(); ++p) {
                fails += serve_results[fr * policies.size() + p]
                             .failEvents;
                requeued += serve_results[fr * policies.size() + p]
                                .requeued;
            }
            t.cell(static_cast<long long>(fails))
                .cell(static_cast<long long>(requeued));
        }
        t.print("Closed-loop failure injection (serve/serve.h; "
                "fail events/requeued summed over the policy runs "
                "at each rate)");
        t.writeCsv("robustness_failures.csv");
    }
    return 0;
}
