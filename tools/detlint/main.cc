/**
 * @file
 * detlint CLI.
 *
 *   detlint [--config FILE] [--root DIR] [--format=text|json]
 *           [--output FILE] [--list-rules] [path...]
 *
 * With no paths, scans the config's [paths] include roots (default:
 * src bench tests examples).  Exit 0 clean, 1 findings, 2 usage/IO
 * errors — the contract the lint CI job gates on.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/detlint/detlint.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--config FILE] [--root DIR] "
        "[--format=text|json] [--output FILE] [--list-rules] "
        "[path...]\n",
        argv0);
    return 2;
}

void
listRules()
{
    std::printf(
        "R1   iteration over std::unordered_map/set (order feeds "
        "decisions)\n"
        "R2   banned nondeterminism sources: rand/srand, "
        "std::random_device,\n"
        "     time(), std::chrono::*::now() outside src/common/, "
        "pthread_self,\n"
        "     thread-id logic\n"
        "R3   pointer-valued ordering/hash keys (std::map<T*, ...>)\n"
        "R4   static/mutable shared state without adjacent "
        "mutex/atomic (src/)\n"
        "R5   uninitialized POD members in *Config/*Spec structs\n"
        "SUP  suppression-grammar errors (allow() without a reason)\n"
        "\n"
        "suppress with: // detlint: allow(R1) <reason>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string configPath;
    std::string root;
    std::string format = "text";
    std::string output;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "detlint: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--config") {
            configPath = value("--config");
        } else if (arg == "--root") {
            root = value("--root");
        } else if (arg.compare(0, 9, "--format=") == 0) {
            format = arg.substr(9);
        } else if (arg == "--format") {
            format = value("--format");
        } else if (arg == "--output") {
            output = value("--output");
        } else if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (format != "text" && format != "json") {
        std::fprintf(stderr, "detlint: unknown format '%s'\n",
                     format.c_str());
        return 2;
    }

    if (!root.empty()) {
        std::error_code ec;
        std::filesystem::current_path(root, ec);
        if (ec) {
            std::fprintf(stderr, "detlint: cannot chdir to %s\n",
                         root.c_str());
            return 2;
        }
    }

    detlint::Config cfg = detlint::defaultConfig();
    if (configPath.empty() &&
        std::filesystem::exists("detlint.toml"))
        configPath = "detlint.toml";
    if (!configPath.empty()) {
        std::ifstream in(configPath);
        if (!in) {
            std::fprintf(stderr, "detlint: cannot read %s\n",
                         configPath.c_str());
            return 2;
        }
        std::ostringstream body;
        body << in.rdbuf();
        std::string err;
        if (!detlint::Config::parseToml(body.str(), cfg, &err)) {
            std::fprintf(stderr, "detlint: %s\n", err.c_str());
            return 2;
        }
    }

    // Explicit paths mean "scan exactly this" — the [paths] exclude
    // globs only prune the default roots, so fixtures and vendored
    // files can still be linted by naming them.
    const bool explicitPaths = !paths.empty();
    if (paths.empty())
        paths = cfg.include;
    const std::vector<std::string> files = detlint::expandPaths(
        paths, explicitPaths ? std::vector<std::string>{}
                             : cfg.exclude);
    if (files.empty()) {
        std::fprintf(stderr, "detlint: no source files under:");
        for (const std::string &p : paths)
            std::fprintf(stderr, " %s", p.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    const detlint::Engine engine(cfg);
    const detlint::Report report = engine.scanFiles(files);
    const std::string rendered = format == "json"
                                     ? detlint::formatJson(report)
                                     : detlint::formatText(report);
    if (output.empty()) {
        std::fputs(rendered.c_str(), stdout);
    } else {
        std::ofstream out(output);
        if (!out) {
            std::fprintf(stderr, "detlint: cannot write %s\n",
                         output.c_str());
            return 2;
        }
        out << rendered;
        // Keep the human-readable summary on stdout even when the
        // JSON report goes to a file.
        if (format == "json")
            std::fputs(detlint::formatText(report).c_str(), stdout);
    }
    return detlint::exitCode(report);
}
