/**
 * @file
 * detlint scanner: comment/string stripping, suppression parsing,
 * tokenizing, and filesystem expansion.  The blanking pass preserves
 * line count and per-line length so rule matches report accurate
 * line numbers and the suppression grammar can key off the original
 * comment text.
 */

#include "tools/detlint/source_model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/detlint/detlint.h"

namespace detlint {

namespace fs = std::filesystem;

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

int
SourceFile::lineOfOffset(std::size_t off) const
{
    auto it = std::upper_bound(lineStart.begin(), lineStart.end(), off);
    return static_cast<int>(it - lineStart.begin());
}

namespace {

/** Parse `detlint: allow(R1,R2) reason` out of one line's comments. */
void
parseSuppression(const std::string &comment, int line,
                 std::vector<Suppression> &out)
{
    const std::string marker = "detlint:";
    std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    std::size_t p = at + marker.size();
    while (p < comment.size() && std::isspace(
               static_cast<unsigned char>(comment[p])))
        ++p;
    const std::string verb = "allow";
    Suppression s;
    s.line = line;
    if (comment.compare(p, verb.size(), verb) != 0) {
        // The marker followed by anything but allow(...) is a typo'd
        // suppression; surface it rather than silently ignoring.
        s.rules.push_back("SUP");
        s.reason.clear();
        out.push_back(std::move(s));
        return;
    }
    p += verb.size();
    while (p < comment.size() && std::isspace(
               static_cast<unsigned char>(comment[p])))
        ++p;
    if (p >= comment.size() || comment[p] != '(') {
        s.rules.push_back("SUP");
        out.push_back(std::move(s));
        return;
    }
    std::size_t close = comment.find(')', p);
    if (close == std::string::npos) {
        s.rules.push_back("SUP");
        out.push_back(std::move(s));
        return;
    }
    std::string list = comment.substr(p + 1, close - p - 1);
    std::string id;
    std::istringstream iss(list);
    while (std::getline(iss, id, ',')) {
        id = trimmed(id);
        if (!id.empty())
            s.rules.push_back(id);
    }
    s.reason = trimmed(comment.substr(close + 1));
    out.push_back(std::move(s));
}

} // namespace

SourceFile
buildSourceFile(const std::string &path, const std::string &text)
{
    SourceFile f;
    f.path = path;

    // Split keeping empty trailing lines irrelevant.
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            f.raw.push_back(text.substr(start));
            break;
        }
        f.raw.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }

    f.code.resize(f.raw.size());
    f.comments.resize(f.raw.size());

    bool inBlock = false;
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
        const std::string &line = f.raw[i];
        std::string code(line.size(), ' ');
        std::string comment;
        for (std::size_t p = 0; p < line.size();) {
            if (inBlock) {
                if (line.compare(p, 2, "*/") == 0) {
                    inBlock = false;
                    p += 2;
                } else {
                    comment += line[p];
                    ++p;
                }
                continue;
            }
            char c = line[p];
            if (c == '/' && p + 1 < line.size() && line[p + 1] == '/') {
                comment += line.substr(p + 2);
                break;
            }
            if (c == '/' && p + 1 < line.size() && line[p + 1] == '*') {
                inBlock = true;
                p += 2;
                continue;
            }
            if (c == '"' || c == '\'') {
                char quote = c;
                code[p] = quote;
                ++p;
                while (p < line.size()) {
                    if (line[p] == '\\') {
                        p += 2;
                        continue;
                    }
                    if (line[p] == quote) {
                        code[p] = quote;
                        ++p;
                        break;
                    }
                    ++p;
                }
                continue;
            }
            code[p] = c;
            ++p;
        }
        f.code[i] = std::move(code);
        f.comments[i] = comment;
        if (!comment.empty())
            parseSuppression(comment, static_cast<int>(i) + 1,
                             f.suppressions);
    }

    f.lineStart.reserve(f.code.size());
    for (const std::string &l : f.code) {
        f.lineStart.push_back(f.joined.size());
        f.joined += l;
        f.joined += '\n';
    }
    return f;
}

std::vector<Token>
tokenize(const std::string &codeLine)
{
    std::vector<Token> out;
    std::size_t p = 0;
    const std::size_t n = codeLine.size();
    auto isIdentChar = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (p < n) {
        char c = codeLine[p];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++p;
            continue;
        }
        Token t;
        t.offset = p;
        if (isIdentChar(c)) {
            std::size_t e = p;
            while (e < n && isIdentChar(codeLine[e]))
                ++e;
            t.text = codeLine.substr(p, e - p);
            t.isIdent = !std::isdigit(static_cast<unsigned char>(c));
            p = e;
        } else {
            // Multi-char punctuation the rules care about.
            static const char *multi[] = {"::", "->", "<=", ">=", "==",
                                          "!=", "&&", "||", "+=", "-=",
                                          "<<", ">>"};
            t.text = std::string(1, c);
            for (const char *m : multi) {
                if (codeLine.compare(p, 2, m) == 0) {
                    t.text = m;
                    break;
                }
            }
            p += t.text.size();
        }
        out.push_back(std::move(t));
    }
    return out;
}

std::size_t
matchAngle(const std::string &text, std::size_t pos)
{
    int depth = 0;
    for (std::size_t p = pos; p < text.size(); ++p) {
        char c = text[p];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            if (--depth == 0)
                return p + 1;
        } else if (c == ';' || c == '{') {
            // A template argument list never crosses these; treat as
            // an operator< misparse.
            return std::string::npos;
        }
    }
    return std::string::npos;
}

bool
isSourceFile(const std::string &path)
{
    static const char *exts[] = {".h", ".hh", ".hpp", ".cc", ".cpp",
                                 ".cxx"};
    for (const char *e : exts) {
        std::size_t n = std::string(e).size();
        if (path.size() > n && path.compare(path.size() - n, n, e) == 0)
            return true;
    }
    return false;
}

bool
pathMatches(const std::string &pattern, const std::string &path)
{
    if (pattern.empty())
        return false;
    if (pattern.find('*') == std::string::npos &&
        pattern.find('?') == std::string::npos) {
        // Wildcard-free pattern: exact file or directory prefix.
        if (path == pattern)
            return true;
        std::string pre = pattern;
        if (pre.back() != '/')
            pre += '/';
        return path.compare(0, pre.size(), pre) == 0;
    }
    // Iterative glob: '*' and '?' match across '/' (fnmatch-lite).
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < path.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == path[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<std::string>
expandPaths(const std::vector<std::string> &paths,
            const std::vector<std::string> &excludeGlobs)
{
    std::vector<std::string> files;
    auto excluded = [&](const std::string &p) {
        for (const std::string &g : excludeGlobs)
            if (pathMatches(g, p))
                return true;
        return false;
    };
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file(ec))
                    continue;
                std::string fp = it->path().generic_string();
                if (isSourceFile(fp) && !excluded(fp))
                    files.push_back(fp);
            }
        } else if (!excluded(p)) {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

Report
Engine::scanFiles(const std::vector<std::string> &paths) const
{
    Report report;
    for (const std::string &p : paths) {
        std::ifstream in(p, std::ios::binary);
        if (!in) {
            Finding f;
            f.rule = "SUP";
            f.file = p;
            f.line = 0;
            f.message = "cannot read file";
            report.findings.push_back(std::move(f));
            continue;
        }
        std::ostringstream body;
        body << in.rdbuf();
        scanSource(p, body.str(), report);
    }
    return report;
}

} // namespace detlint
