/**
 * @file
 * detlint — the repo's in-tree determinism & concurrency linter.
 *
 * The simulator's core promise is that every parallel path is
 * bit-identical (`--jobs 1 == --jobs N`, sharded == serial) and every
 * optimization is decision-identical.  Runtime differential tests
 * catch a hazard only after it fires on a covered input; detlint
 * rejects the hazard classes this codebase actually trades in at the
 * source level, before they can land:
 *
 *   R1  iteration over std::unordered_map / std::unordered_set in
 *       non-test code — iteration order is implementation-defined and
 *       feeds scheduling decisions.
 *   R2  banned nondeterminism sources: rand()/srand(),
 *       std::random_device, time(), std::chrono::...::now(),
 *       pthread_self(), std::this_thread::get_id() — anywhere outside
 *       the sanctioned timing shims in src/common/.
 *   R3  pointer-valued ordering / hash keys (std::map<T*, ...> and
 *       friends) — address order varies run to run.
 *   R4  mutable shared state (non-const `static` variables, `mutable`
 *       members) without an adjacent mutex/atomic mention, in code
 *       that SweepRunner worker threads reach.
 *   R5  uninitialized POD members in *Config / *Spec structs — a
 *       forgotten field reads stack garbage, nondeterministically.
 *
 * Findings are suppressed with
 *
 *   // detlint: allow(R1) lookup-only memo, never iterated
 *
 * on the same line or the line directly above; a suppression without
 * a reason string is itself a finding (rule SUP).  detlint is a
 * token/line-level scanner, not a compiler: the rules are heuristics
 * tuned to this codebase's idiom, and the suppression grammar is the
 * escape hatch for the false positives a text scanner cannot avoid.
 */

#ifndef MOCA_TOOLS_DETLINT_H
#define MOCA_TOOLS_DETLINT_H

#include <map>
#include <string>
#include <vector>

namespace detlint {

/** One rule violation (or suppression-grammar error, rule "SUP"). */
struct Finding
{
    std::string rule;    ///< "R1".."R5" or "SUP".
    std::string file;    ///< Path as given to the scanner.
    int line = 0;        ///< 1-based source line.
    std::string message; ///< Human-readable explanation.
    std::string snippet; ///< Trimmed source line for context.
};

/** Per-rule path gating (merged over the built-in defaults). */
struct RuleConfig
{
    bool enabled = true;

    /** When non-empty, the rule fires only under these path globs. */
    std::vector<std::string> include;

    /** Path globs the rule never fires under. */
    std::vector<std::string> exclude;
};

/** Parsed detlint.toml (a deliberately tiny TOML subset: [section]
 *  headers, `key = "str"` and `key = ["a", "b"]` entries). */
struct Config
{
    /** Scan roots ([paths] include), relative to the config file. */
    std::vector<std::string> include;

    /** Path globs excluded from every rule ([paths] exclude). */
    std::vector<std::string> exclude;

    /** Extra scalar type names R5 treats as POD (e.g. "Cycles"). */
    std::vector<std::string> extraScalars;

    /** Per-rule overrides keyed by rule id ([rule.R2] sections). */
    std::map<std::string, RuleConfig> rules;

    /**
     * Parse a config from TOML text.  On grammar errors returns
     * false and sets `err`; the config is left partially filled.
     */
    static bool parseToml(const std::string &text, Config &out,
                          std::string *err);
};

/** Everything one scan produced. */
struct Report
{
    std::vector<Finding> findings;
    int filesScanned = 0;
    int suppressed = 0; ///< Findings silenced by allow() comments.
};

/** Built-in per-rule path defaults (before config overrides):
 *  R1 skips tests/, R2 skips src/common/, R4 fires only under src/. */
Config defaultConfig();

/** The rule engine.  Thread-compatible: one Engine per thread. */
class Engine
{
  public:
    explicit Engine(Config cfg = defaultConfig());

    /**
     * Scan one file's contents.  `path` is used for per-rule path
     * gating and in findings; `text` is the file body.  Appends to
     * `out` and bumps its counters.
     */
    void scanSource(const std::string &path, const std::string &text,
                    Report &out) const;

    /** Read and scan files from disk (missing file -> SUP finding). */
    Report scanFiles(const std::vector<std::string> &paths) const;

    const Config &config() const { return cfg_; }

  private:
    Config cfg_;

    bool ruleApplies(const std::string &rule,
                     const std::string &path) const;
};

/** Source-file extensions the directory walker picks up. */
bool isSourceFile(const std::string &path);

/** Recursively expand files/directories into a sorted file list. */
std::vector<std::string>
expandPaths(const std::vector<std::string> &paths,
            const std::vector<std::string> &excludeGlobs);

/** fnmatch-lite: `*` and `?` (both match across '/'); a pattern
 *  without wildcards matches any path equal to it or under it. */
bool pathMatches(const std::string &pattern, const std::string &path);

/** Render a report for humans: one `file:line: [rule] message` line
 *  per finding plus a trailing summary. */
std::string formatText(const Report &report);

/** Render a report as JSON (stable key order, \n-terminated). */
std::string formatJson(const Report &report);

/** CI contract: 0 clean, 1 unsuppressed findings. */
int exitCode(const Report &report);

} // namespace detlint

#endif // MOCA_TOOLS_DETLINT_H
