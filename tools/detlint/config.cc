/**
 * @file
 * detlint configuration: built-in rule/path defaults plus a
 * deliberately tiny TOML-subset parser for detlint.toml —
 * `[section]` / `[rule.RN]` headers, `key = "string"` and
 * `key = ["a", "b"]` entries, `#` comments.  Anything fancier is a
 * parse error; the config format should never grow interesting
 * enough to need a real TOML library.
 */

#include <cctype>
#include <sstream>

#include "tools/detlint/detlint.h"
#include "tools/detlint/source_model.h"

namespace detlint {

Config
defaultConfig()
{
    Config cfg;
    cfg.include = {"src", "bench", "tests", "examples"};
    cfg.exclude = {"tests/fixtures"};
    cfg.extraScalars = {"Cycles"};
    // Test code may iterate unordered containers (assertions are
    // order-insensitive or sort first); decisions never flow from it.
    cfg.rules["R1"].exclude = {"tests"};
    // The sanctioned wall-clock/timing shims live in src/common/.
    cfg.rules["R2"].exclude = {"src/common"};
    // R4 polices code SweepRunner worker threads execute.
    cfg.rules["R4"].include = {"src"};
    return cfg;
}

namespace {

/** Parse `"a"` or `["a", "b"]` into a string list. */
bool
parseStringList(const std::string &value,
                std::vector<std::string> &out, std::string *err)
{
    std::string v = trimmed(value);
    if (v.empty()) {
        *err = "empty value";
        return false;
    }
    auto takeString = [&](std::size_t &p, std::string &s) {
        if (v[p] != '"')
            return false;
        std::size_t close = v.find('"', p + 1);
        if (close == std::string::npos)
            return false;
        s = v.substr(p + 1, close - p - 1);
        p = close + 1;
        return true;
    };
    if (v[0] == '"') {
        std::size_t p = 0;
        std::string s;
        if (!takeString(p, s)) {
            *err = "unterminated string";
            return false;
        }
        out.push_back(std::move(s));
        return true;
    }
    if (v[0] == '[') {
        std::size_t p = 1;
        for (;;) {
            while (p < v.size() &&
                   (std::isspace(static_cast<unsigned char>(v[p])) ||
                    v[p] == ','))
                ++p;
            if (p < v.size() && v[p] == ']')
                return true;
            std::string s;
            if (p >= v.size() || !takeString(p, s)) {
                *err = "malformed array";
                return false;
            }
            out.push_back(std::move(s));
        }
    }
    *err = "expected string or array";
    return false;
}

} // namespace

bool
Config::parseToml(const std::string &text, Config &out,
                  std::string *err)
{
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineno = 0;
    auto fail = [&](const std::string &what) {
        if (err)
            *err = "detlint.toml:" + std::to_string(lineno) + ": " +
                   what;
        return false;
    };
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments outside strings.
        bool inStr = false;
        for (std::size_t p = 0; p < line.size(); ++p) {
            if (line[p] == '"')
                inStr = !inStr;
            else if (line[p] == '#' && !inStr) {
                line = line.substr(0, p);
                break;
            }
        }
        line = trimmed(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                return fail("unterminated section header");
            section = trimmed(line.substr(1, line.size() - 2));
            continue;
        }
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected key = value");
        std::string key = trimmed(line.substr(0, eq));
        std::string value = trimmed(line.substr(eq + 1));
        std::string lerr;

        if (section == "paths") {
            std::vector<std::string> *dst =
                key == "include" ? &out.include
                : key == "exclude" ? &out.exclude : nullptr;
            if (dst == nullptr)
                return fail("unknown [paths] key '" + key + "'");
            dst->clear();
            if (!parseStringList(value, *dst, &lerr))
                return fail(lerr);
        } else if (section == "types") {
            if (key != "extra_scalars")
                return fail("unknown [types] key '" + key + "'");
            out.extraScalars.clear();
            if (!parseStringList(value, out.extraScalars, &lerr))
                return fail(lerr);
        } else if (section.compare(0, 5, "rule.") == 0) {
            RuleConfig &rc = out.rules[section.substr(5)];
            if (key == "enabled") {
                rc.enabled = trimmed(value) == "true";
            } else if (key == "include" || key == "exclude") {
                std::vector<std::string> &dst =
                    key == "include" ? rc.include : rc.exclude;
                dst.clear();
                if (!parseStringList(value, dst, &lerr))
                    return fail(lerr);
            } else {
                return fail("unknown rule key '" + key + "'");
            }
        } else {
            return fail("unknown section '" + section + "'");
        }
    }
    return true;
}

} // namespace detlint
