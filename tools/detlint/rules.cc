/**
 * @file
 * detlint rule implementations.  Each rule is a heuristic scan over
 * the blanked source model (comments and string literals removed);
 * see detlint.h for the rule catalogue and rationale.  The engine
 * runs every applicable rule, then applies `detlint: allow(...)`
 * suppressions (same line or the line directly above a finding).
 */

#include <algorithm>
#include <cctype>
#include <set>

#include "tools/detlint/detlint.h"
#include "tools/detlint/source_model.h"

namespace detlint {

namespace {

// --- shared helpers ---------------------------------------------------

/** Identifier token starting at joined[pos]? Returns its length. */
std::size_t
identAt(const std::string &text, std::size_t pos)
{
    auto isIdent = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (pos >= text.size() || !isIdent(text[pos]) ||
        std::isdigit(static_cast<unsigned char>(text[pos])))
        return 0;
    if (pos > 0 && isIdent(text[pos - 1]))
        return 0; // Mid-identifier.
    std::size_t e = pos;
    while (e < text.size() && isIdent(text[e]))
        ++e;
    return e - pos;
}

/** Offset of the next non-whitespace character at or after pos. */
std::size_t
skipWs(const std::string &text, std::size_t pos)
{
    while (pos < text.size() && std::isspace(
               static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos;
}

/** Every occurrence of identifier `word` in `text` (word-bounded). */
std::vector<std::size_t>
findIdent(const std::string &text, const std::string &word)
{
    std::vector<std::size_t> hits;
    std::size_t at = 0;
    while ((at = text.find(word, at)) != std::string::npos) {
        if (identAt(text, at) == word.size())
            hits.push_back(at);
        at += word.size();
    }
    return hits;
}

/** Names of unordered containers declared in this file (R1). */
std::set<std::string>
collectUnorderedNames(const SourceFile &f)
{
    std::set<std::string> names;
    for (const char *kind : {"unordered_map", "unordered_set"}) {
        for (std::size_t at : findIdent(f.joined, kind)) {
            std::size_t lt = skipWs(f.joined, at + std::string(kind)
                                                       .size());
            if (lt >= f.joined.size() || f.joined[lt] != '<')
                continue;
            std::size_t close = matchAngle(f.joined, lt);
            if (close == std::string::npos)
                continue;
            std::size_t p = skipWs(f.joined, close);
            // Skip references; `const unordered_map<...> &name`.
            while (p < f.joined.size() &&
                   (f.joined[p] == '&' || f.joined[p] == '*'))
                p = skipWs(f.joined, p + 1);
            std::size_t len = identAt(f.joined, p);
            if (len > 0)
                names.insert(f.joined.substr(p, len));
        }
    }
    return names;
}

/** Trimmed raw source line for a 1-based line number. */
std::string
snippetFor(const SourceFile &f, int line)
{
    if (line < 1 || line > static_cast<int>(f.raw.size()))
        return "";
    return trimmed(f.raw[static_cast<std::size_t>(line - 1)]);
}

void
add(std::vector<Finding> &out, const SourceFile &f,
    const std::string &rule, int line, std::string message)
{
    Finding fd;
    fd.rule = rule;
    fd.file = f.path;
    fd.line = line;
    fd.message = std::move(message);
    fd.snippet = snippetFor(f, line);
    out.push_back(std::move(fd));
}

// --- R1: iteration over unordered containers --------------------------

void
ruleR1(const SourceFile &f, std::vector<Finding> &out)
{
    const std::set<std::string> names = collectUnorderedNames(f);
    if (names.empty())
        return;

    // Range-for whose sequence expression resolves to a collected
    // name: `for (decl : expr)`.
    for (std::size_t at : findIdent(f.joined, "for")) {
        std::size_t open = skipWs(f.joined, at + 3);
        if (open >= f.joined.size() || f.joined[open] != '(')
            continue;
        int depth = 0;
        std::size_t close = open;
        for (; close < f.joined.size(); ++close) {
            if (f.joined[close] == '(')
                ++depth;
            else if (f.joined[close] == ')' && --depth == 0)
                break;
        }
        if (close >= f.joined.size())
            continue;
        std::string body = f.joined.substr(open + 1, close - open - 1);
        if (body.find(';') != std::string::npos)
            continue; // Classic three-clause for.
        // Top-level ':' (not '::').
        std::size_t colon = std::string::npos;
        int d = 0;
        for (std::size_t p = 0; p < body.size(); ++p) {
            char c = body[p];
            if (c == '(' || c == '[' || c == '{')
                ++d;
            else if (c == ')' || c == ']' || c == '}')
                --d;
            else if (c == ':' && d == 0) {
                if ((p + 1 < body.size() && body[p + 1] == ':') ||
                    (p > 0 && body[p - 1] == ':'))
                    continue;
                colon = p;
                break;
            }
        }
        if (colon == std::string::npos)
            continue;
        std::string rhs = body.substr(colon + 1);
        if (rhs.find('(') != std::string::npos)
            continue; // Call expression; unresolvable by name.
        for (const Token &t : tokenize(rhs)) {
            if (t.isIdent && names.count(t.text)) {
                add(out, f, "R1", f.lineOfOffset(at),
                    "range-for over unordered container '" + t.text +
                        "' — iteration order is "
                        "implementation-defined and nondeterministic "
                        "across platforms");
                break;
            }
        }
    }

    // Iterator walks: name.begin() / name.cbegin() / name.rbegin().
    // A bare `.end()` is NOT flagged — `it == memo.end()` is the
    // sentinel comparison of a keyed lookup, which is order-safe;
    // only obtaining a begin iterator implies traversal.
    for (const std::string &name : names) {
        for (std::size_t at : findIdent(f.joined, name)) {
            std::size_t p = skipWs(f.joined, at + name.size());
            if (p >= f.joined.size() || f.joined[p] != '.')
                continue;
            p = skipWs(f.joined, p + 1);
            for (const char *m : {"begin", "cbegin", "rbegin"}) {
                std::size_t len = std::string(m).size();
                if (identAt(f.joined, p) == len &&
                    f.joined.compare(p, len, m) == 0) {
                    add(out, f, "R1", f.lineOfOffset(at),
                        "iterator over unordered container '" + name +
                            "' — visiting order is nondeterministic");
                    break;
                }
            }
        }
    }
}

// --- R2: banned nondeterminism sources --------------------------------

void
ruleR2(const SourceFile &f, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::vector<Token> toks = tokenize(f.code[i]);
        const int line = static_cast<int>(i) + 1;
        for (std::size_t t = 0; t < toks.size(); ++t) {
            if (!toks[t].isIdent)
                continue;
            const std::string &id = toks[t].text;
            auto prev = [&](std::size_t back) -> const std::string & {
                static const std::string none;
                return t >= back ? toks[t - back].text : none;
            };
            const bool call = t + 1 < toks.size() &&
                              toks[t + 1].text == "(";
            const bool member =
                prev(1) == "." || prev(1) == "->";
            const bool stdQual =
                prev(1) != "::" || prev(2) == "std";
            // `Cycles time() const` declares a function named like a
            // banned source; only flag call expressions.  A previous
            // identifier is a declaration's return type — except
            // keywords that legally precede a call expression.
            bool declaration = false;
            if (t >= 1 && toks[t - 1].isIdent) {
                static const char *preceders[] = {"return", "case",
                                                  "else", "do",
                                                  "co_return"};
                declaration = true;
                for (const char *k : preceders)
                    if (toks[t - 1].text == k)
                        declaration = false;
            }

            if ((id == "rand" || id == "srand") && call && !member &&
                !declaration && stdQual) {
                add(out, f, "R2", line,
                    "'" + id + "()' — libc PRNG with hidden global "
                    "state; use the seeded moca::Rng");
            } else if (id == "random_device") {
                add(out, f, "R2", line,
                    "'std::random_device' — hardware entropy is "
                    "nondeterministic by design; use the seeded "
                    "moca::Rng");
            } else if (id == "time" && call && !member &&
                       !declaration && stdQual) {
                add(out, f, "R2", line,
                    "'time()' — wall-clock reads leak host time into "
                    "results; use simulated cycles or the "
                    "common/walltime.h shim");
            } else if (id == "now" && call && prev(1) == "::") {
                add(out, f, "R2", line,
                    "'" + prev(2) + "::now()' — wall-clock reads are "
                    "nondeterministic; route timing through "
                    "common/walltime.h");
            } else if (id == "pthread_self" ||
                       (id == "get_id" && call && !declaration)) {
                add(out, f, "R2", line,
                    "thread-identity call '" + id + "' — decisions "
                    "keyed on thread ids break the jobs=1 == jobs=N "
                    "contract");
            }
        }
    }
}

// --- R3: pointer-valued ordering / hash keys --------------------------

void
ruleR3(const SourceFile &f, std::vector<Finding> &out)
{
    for (const char *kind :
         {"map", "set", "multimap", "multiset", "unordered_map",
          "unordered_set"}) {
        for (std::size_t at : findIdent(f.joined, kind)) {
            std::size_t lt =
                skipWs(f.joined, at + std::string(kind).size());
            if (lt >= f.joined.size() || f.joined[lt] != '<')
                continue;
            std::size_t close = matchAngle(f.joined, lt);
            if (close == std::string::npos)
                continue;
            // First top-level template argument == the key type.
            std::string args =
                f.joined.substr(lt + 1, close - lt - 2);
            int d = 0;
            std::size_t end = args.size();
            for (std::size_t p = 0; p < args.size(); ++p) {
                char c = args[p];
                if (c == '<' || c == '(')
                    ++d;
                else if (c == '>' || c == ')')
                    --d;
                else if (c == ',' && d == 0) {
                    end = p;
                    break;
                }
            }
            std::string key = args.substr(0, end);
            if (key.find('*') != std::string::npos) {
                add(out, f, "R3", f.lineOfOffset(at),
                    "pointer-valued key in std::" + std::string(kind) +
                        "<" + trimmed(key) + ", ...> — address order "
                        "varies run to run; key on a stable id "
                        "instead");
            }
        }
    }
}

// --- R4: shared mutable state without synchronization -----------------

/** Any synchronization vocabulary within ±window lines? */
bool
syncNearby(const SourceFile &f, std::size_t lineIdx,
           std::size_t window)
{
    static const char *words[] = {"mutex",      "atomic",
                                  "lock_guard", "unique_lock",
                                  "scoped_lock", "once_flag",
                                  "call_once",  "shared_lock"};
    std::size_t lo = lineIdx >= window ? lineIdx - window : 0;
    std::size_t hi = std::min(f.code.size(), lineIdx + window + 1);
    for (std::size_t i = lo; i < hi; ++i)
        for (const char *w : words)
            if (f.code[i].find(w) != std::string::npos)
                return true;
    return false;
}

void
ruleR4(const SourceFile &f, std::vector<Finding> &out)
{
    for (const char *kw : {"static", "mutable"}) {
        // Adjacent declarations (a block of mutable members) merge
        // into one finding so one allow() can cover the block.
        int lastFlagged = -2;
        for (std::size_t at : findIdent(f.joined, kw)) {
            // `) mutable {` is a lambda qualifier, not a member.
            std::size_t before = at;
            while (before > 0 && std::isspace(static_cast<unsigned char>(
                                     f.joined[before - 1])))
                --before;
            if (before > 0 && f.joined[before - 1] == ')')
                continue;
            // Logical statement: tokens from the keyword to the first
            // of ';', '=', '(' or '{'.  A '(' first means a function
            // declaration — not state.
            std::size_t stop = f.joined.find_first_of(";=({", at);
            if (stop == std::string::npos)
                continue;
            if (f.joined[stop] == '(')
                continue;
            std::string decl = f.joined.substr(at, stop - at);
            bool immutable = false;
            for (const Token &t : tokenize(decl)) {
                if (t.text == "const" || t.text == "constexpr" ||
                    t.text == "thread_local") {
                    immutable = true;
                    break;
                }
            }
            if (immutable)
                continue;
            const int line = f.lineOfOffset(at);
            const std::size_t lineIdx =
                static_cast<std::size_t>(line - 1);
            if (syncNearby(f, lineIdx, 5))
                continue;
            if (line <= lastFlagged + 1) {
                lastFlagged = line; // Extend the merged block.
                continue;
            }
            lastFlagged = line;
            add(out, f, "R4", line,
                std::string(kw == std::string("static")
                                ? "static variable"
                                : "mutable member(s)") +
                    " with no mutex/atomic nearby — if SweepRunner "
                    "workers can reach this, synchronize it, make it "
                    "per-instance, or allow() with the reason it is "
                    "safe");
        }
    }
}

// --- R5: uninitialized POD members in *Config / *Spec structs ---------

/** Enum type names declared anywhere in this file. */
std::set<std::string>
collectEnums(const std::string &joined)
{
    std::set<std::string> enums;
    for (std::size_t at : findIdent(joined, "enum")) {
        std::size_t p = skipWs(joined, at + 4);
        for (const char *kw : {"class", "struct"}) {
            std::size_t len = std::string(kw).size();
            if (identAt(joined, p) == len &&
                joined.compare(p, len, kw) == 0)
                p = skipWs(joined, p + len);
        }
        std::size_t len = identAt(joined, p);
        if (len > 0)
            enums.insert(joined.substr(p, len));
    }
    return enums;
}

bool
isScalarType(const std::vector<Token> &typeToks,
             const std::set<std::string> &scalars)
{
    for (const Token &t : typeToks) {
        if (t.text == "<")
            return false; // Template args are not the member's type;
                          // std::vector<int> is default-constructed.
        if (t.text == "*")
            return true; // Pointer member.
        if (!t.isIdent)
            continue;
        static const char *builtins[] = {
            "int",    "long",   "short",     "char",   "bool",
            "float",  "double", "unsigned",  "signed", "size_t",
            "ptrdiff_t", "intptr_t", "uintptr_t"};
        for (const char *b : builtins)
            if (t.text == b)
                return true;
        // (u)int8/16/32/64_t and friends.
        const std::string &s = t.text;
        if (s.size() > 2 && s.compare(s.size() - 2, 2, "_t") == 0 &&
            (s.compare(0, 3, "int") == 0 ||
             s.compare(0, 4, "uint") == 0))
            return true;
        if (scalars.count(s))
            return true;
    }
    return false;
}

void
ruleR5(const SourceFile &f, const std::set<std::string> &scalars,
       std::vector<Finding> &out)
{
    static const char *suffixes[] = {"Config", "Spec", "Options",
                                     "Params"};
    for (const char *intro : {"struct", "class"}) {
        for (std::size_t at : findIdent(f.joined, intro)) {
            std::size_t p = skipWs(f.joined,
                                   at + std::string(intro).size());
            std::size_t nameLen = identAt(f.joined, p);
            if (nameLen == 0)
                continue;
            std::string name = f.joined.substr(p, nameLen);
            bool matches = false;
            for (const char *suf : suffixes) {
                std::size_t n = std::string(suf).size();
                if (name.size() >= n &&
                    name.compare(name.size() - n, n, suf) == 0)
                    matches = true;
            }
            if (!matches)
                continue;
            // Find the body '{' (skipping a base-clause); a ';'
            // first means a forward declaration.
            std::size_t open = p + nameLen;
            while (open < f.joined.size() && f.joined[open] != '{' &&
                   f.joined[open] != ';')
                ++open;
            if (open >= f.joined.size() || f.joined[open] == ';')
                continue;

            // Walk depth-1 statements of the body.
            int depth = 1;
            std::size_t stmtBegin = open + 1;
            for (std::size_t q = open + 1;
                 q < f.joined.size() && depth > 0; ++q) {
                char c = f.joined[q];
                if (c == '{' || c == '(') {
                    ++depth;
                } else if (c == ')') {
                    --depth;
                } else if (c == '}') {
                    if (--depth == 0)
                        break;
                } else if (c == ';' && depth == 1) {
                    std::string stmt =
                        f.joined.substr(stmtBegin, q - stmtBegin);
                    stmtBegin = q + 1;
                    if (stmt.find('=') != std::string::npos ||
                        stmt.find('{') != std::string::npos ||
                        stmt.find('(') != std::string::npos)
                        continue; // Initialized, or a function.
                    std::vector<Token> toks = tokenize(stmt);
                    // Drop access specifiers and skip non-data
                    // statements.
                    while (toks.size() >= 2 && toks[1].text == ":" &&
                           (toks[0].text == "public" ||
                            toks[0].text == "private" ||
                            toks[0].text == "protected"))
                        toks.erase(toks.begin(), toks.begin() + 2);
                    if (toks.size() < 2 || !toks.back().isIdent)
                        continue;
                    bool skip = false;
                    for (const Token &t : toks)
                        if (t.text == "using" ||
                            t.text == "typedef" ||
                            t.text == "friend" ||
                            t.text == "enum" || t.text == "struct" ||
                            t.text == "class" || t.text == "static")
                            skip = true;
                    if (skip)
                        continue;
                    std::vector<Token> typeToks(toks.begin(),
                                                toks.end() - 1);
                    if (!isScalarType(typeToks, scalars))
                        continue;
                    const std::size_t stmtOff =
                        stmtBegin - stmt.size() - 1;
                    add(out, f, "R5",
                        f.lineOfOffset(stmtOff + toks.back().offset),
                        "member '" + toks.back().text + "' of " +
                            name + " has no initializer — a "
                            "forgotten field reads indeterminate "
                            "memory");
                }
            }
        }
    }
}

} // namespace

// --- engine -----------------------------------------------------------

Engine::Engine(Config cfg) : cfg_(std::move(cfg)) {}

bool
Engine::ruleApplies(const std::string &rule,
                    const std::string &path) const
{
    auto it = cfg_.rules.find(rule);
    if (it == cfg_.rules.end())
        return true;
    const RuleConfig &rc = it->second;
    if (!rc.enabled)
        return false;
    if (!rc.include.empty()) {
        bool hit = false;
        for (const std::string &g : rc.include)
            if (pathMatches(g, path))
                hit = true;
        if (!hit)
            return false;
    }
    for (const std::string &g : rc.exclude)
        if (pathMatches(g, path))
            return false;
    return true;
}

void
Engine::scanSource(const std::string &path, const std::string &text,
                   Report &out) const
{
    std::string p = path;
    if (p.compare(0, 2, "./") == 0)
        p = p.substr(2);
    const SourceFile f = buildSourceFile(p, text);
    ++out.filesScanned;

    std::vector<Finding> found;
    if (ruleApplies("R1", p))
        ruleR1(f, found);
    if (ruleApplies("R2", p))
        ruleR2(f, found);
    if (ruleApplies("R3", p))
        ruleR3(f, found);
    if (ruleApplies("R4", p))
        ruleR4(f, found);
    if (ruleApplies("R5", p)) {
        std::set<std::string> scalars = collectEnums(f.joined);
        scalars.insert(cfg_.extraScalars.begin(),
                       cfg_.extraScalars.end());
        ruleR5(f, scalars, found);
    }

    // Apply suppressions: a finding is silenced by an allow() for its
    // rule on the same line or the line directly above.
    std::vector<Finding> kept;
    for (Finding &fd : found) {
        bool silenced = false;
        for (const Suppression &s : f.suppressions) {
            if (s.line != fd.line && s.line != fd.line - 1)
                continue;
            if (std::find(s.rules.begin(), s.rules.end(), fd.rule) ==
                s.rules.end())
                continue;
            s.used = true;
            silenced = true;
        }
        if (silenced)
            ++out.suppressed;
        else
            kept.push_back(std::move(fd));
    }

    // Suppression-grammar errors are findings in their own right:
    // every allow() must carry a reason, and a stray/typo'd marker
    // must not silently do nothing.
    for (const Suppression &s : f.suppressions) {
        if (s.rules.size() == 1 && s.rules[0] == "SUP") {
            add(kept, f, "SUP", s.line,
                "malformed detlint marker — expected 'detlint: "
                "allow(<rule>[,<rule>...]) <reason>'");
        } else if (s.reason.empty()) {
            add(kept, f, "SUP", s.line,
                "suppression without a reason — every allow() must "
                "say why the finding is safe");
        }
    }

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(kept.begin()),
                        std::make_move_iterator(kept.end()));
}

} // namespace detlint
