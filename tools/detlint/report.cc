/**
 * @file
 * detlint report rendering: the human text format CI logs show and
 * the JSON format uploaded as a build artifact, plus the exit-code
 * contract lint jobs gate on.
 */

#include <sstream>

#include "tools/detlint/detlint.h"

namespace detlint {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatText(const Report &report)
{
    std::ostringstream out;
    for (const Finding &f : report.findings) {
        out << f.file << ':' << f.line << ": [" << f.rule << "] "
            << f.message << '\n';
        if (!f.snippet.empty())
            out << "    " << f.snippet << '\n';
    }
    out << "detlint: " << report.findings.size() << " finding"
        << (report.findings.size() == 1 ? "" : "s") << " ("
        << report.suppressed << " suppressed) across "
        << report.filesScanned << " files\n";
    return out.str();
}

std::string
formatJson(const Report &report)
{
    std::ostringstream out;
    out << "{\n  \"version\": 1,\n  \"files_scanned\": "
        << report.filesScanned
        << ",\n  \"suppressed\": " << report.suppressed
        << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        out << (i == 0 ? "" : ",") << "\n    {\"rule\": \""
            << jsonEscape(f.rule) << "\", \"file\": \""
            << jsonEscape(f.file) << "\", \"line\": " << f.line
            << ", \"message\": \"" << jsonEscape(f.message)
            << "\", \"snippet\": \"" << jsonEscape(f.snippet)
            << "\"}";
    }
    out << (report.findings.empty() ? "" : "\n  ") << "]\n}\n";
    return out.str();
}

int
exitCode(const Report &report)
{
    return report.findings.empty() ? 0 : 1;
}

} // namespace detlint
