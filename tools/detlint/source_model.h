/**
 * @file
 * detlint internals: the per-file source model the rules run over.
 * Not installed; include only from the tool's own sources and the
 * detlint test suite.
 */

#ifndef MOCA_TOOLS_DETLINT_SOURCE_MODEL_H
#define MOCA_TOOLS_DETLINT_SOURCE_MODEL_H

#include <cstddef>
#include <string>
#include <vector>

namespace detlint {

/** One parsed `// detlint: allow(R1,R4) reason` comment. */
struct Suppression
{
    std::vector<std::string> rules; ///< Rule ids listed in allow().
    int line = 0;                   ///< 1-based line of the comment.
    std::string reason;             ///< Text after the closing paren.
    mutable bool used = false;      ///< Silenced at least one finding.
};

/**
 * A file prepared for rule scanning: `code[i]` is source line i with
 * comments and string/char literals blanked out (same line count and
 * per-line length as the original, so columns still align), and
 * `comments[i]` is the comment text found on line i (for the
 * suppression grammar).
 */
struct SourceFile
{
    std::string path;
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::string> comments;
    std::vector<Suppression> suppressions;

    /** Whole blanked body joined with '\n' (for cross-line matches);
     *  byte offsets map back to lines via lineOfOffset. */
    std::string joined;
    std::vector<std::size_t> lineStart; ///< joined offset of line i.

    /** 1-based line containing joined-text offset `off`. */
    int lineOfOffset(std::size_t off) const;
};

/** Build the model: split lines, strip comments/strings (tracking
 *  block comments across lines), parse suppressions. */
SourceFile buildSourceFile(const std::string &path,
                           const std::string &text);

/** A lexed token of a blanked code line. */
struct Token
{
    std::string text;
    std::size_t offset = 0; ///< Byte offset within the line.
    bool isIdent = false;
};

/** Lex identifiers / numbers / (multi-char) punctuation. */
std::vector<Token> tokenize(const std::string &codeLine);

/** Trimmed copy (for finding snippets). */
std::string trimmed(const std::string &s);

/**
 * Given `text[pos]` == '<', return the offset one past the matching
 * '>' honouring nesting, or std::string::npos when unbalanced (e.g.
 * an operator< that only looks like a template bracket).
 */
std::size_t matchAngle(const std::string &text, std::size_t pos);

} // namespace detlint

#endif // MOCA_TOOLS_DETLINT_SOURCE_MODEL_H
