/**
 * @file
 * Step-by-step walk through the MoCA decision stack on a synthetic
 * situation, showing exactly what Algorithms 2 and 3 compute:
 *
 *  1. A task queue with mixed priorities, ages, and memory
 *     intensities is scored and a co-running group is formed
 *     (Algorithm 3, including the mem/non-mem pairing).
 *  2. The selected jobs hit layer-block boundaries; Algorithm 2
 *     estimates each block, detects bandwidth overflow, computes
 *     dynamic priority scores, and programs per-tile throttle
 *     windows.  The scoreboard state is printed at each step.
 *  3. A *user-registered* toy policy shows the open policy registry:
 *     define a sim::Policy, register it once with PolicyRegistrar,
 *     and it becomes addressable everywhere by spec string —
 *     including every bench binary's --policy flag.
 */

#include <cstdio>

#include "common/argparse.h"
#include "common/log.h"
#include "common/table.h"
#include "dnn/model_zoo.h"
#include "exp/experiment.h"
#include "exp/registry.h"
#include "moca/runtime/contention_manager.h"
#include "moca/sched/scheduler.h"
#include "sim/soc.h"

using namespace moca;

namespace {

/**
 * Toy mechanism: admit jobs strictly in arrival order onto a fixed
 * tile count, never preempt, never throttle.  Deliberately naive —
 * the point is how little code a new registered policy needs.
 */
class FifoPolicy : public sim::Policy
{
  public:
    explicit FifoPolicy(int tiles) : tiles_(tiles) {}

    const char *name() const override { return "fifo"; }

    void schedule(sim::Soc &soc, sim::SchedEvent) override
    {
        // startJob erases from the live waiting set; iterate a copy.
        const std::vector<int> waiting = soc.waitingJobs();
        for (int id : waiting) {
            if (soc.freeTiles() < tiles_)
                break;
            soc.startJob(id, tiles_);
        }
    }

  private:
    int tiles_;
};

/**
 * One-time registration: name, description, parameter schema, and a
 * factory applying the parsed spec parameters.  From here on
 * "fifo" / "fifo:tiles=4" is a valid --policy spec everywhere.
 */
const exp::PolicyRegistrar fifoRegistrar({
    "fifo",
    "toy example policy: FCFS onto a fixed tile count "
    "(examples/scheduler_playground.cpp)",
    {{"tiles", "int", "2", "tiles each admitted job runs on"}},
    [](const sim::SocConfig &cfg, const exp::PolicySpec &spec) {
        int tiles = 2;
        for (const auto &[key, value] : spec.params)
            if (key == "tiles")
                tiles = static_cast<int>(
                    parseIntValue("fifo:tiles", value));
        if (tiles < 1 || tiles > cfg.numTiles)
            fatal("fifo: tiles must be in [1, %d]", cfg.numTiles);
        return std::make_unique<FifoPolicy>(tiles);
    },
});

} // namespace

int
main()
{
    const sim::SocConfig cfg;
    runtime::LatencyModel model(cfg);

    // ---- Algorithm 3: one scheduling round ---------------------------
    std::printf("== Algorithm 3: scheduling round ==\n\n");

    struct QueueEntry
    {
        const char *name;
        dnn::ModelId model;
        int priority;
        Cycles waited;
    };
    const QueueEntry entries[] = {
        {"eye-tracking", dnn::ModelId::Kws, 11, 200'000},
        {"photo-index", dnn::ModelId::ResNet50, 0, 9'000'000},
        {"detector", dnn::ModelId::YoloV2, 6, 1'000'000},
        {"classifier", dnn::ModelId::AlexNet, 3, 4'000'000},
        {"background", dnn::ModelId::GoogleNet, 1, 500'000},
    };

    const Cycles now = 10'000'000;
    std::vector<sched::SchedTask> queue;
    sched::MocaScheduler scheduler(sched::SchedulerConfig{},
                                   cfg.dramBytesPerCycle);

    Table q({"Task", "Model", "Priority", "Waited (Mcyc)", "Score",
             "Avg BW", "Mem-intensive?"});
    int id = 0;
    for (const auto &e : entries) {
        sched::SchedTask t;
        t.id = id++;
        t.priority = e.priority;
        t.dispatched = now - e.waited;
        t.estimatedTime =
            model.estimateModel(dnn::getModel(e.model), 2);
        t.estimatedAvgBw =
            model.estimateAvgBw(dnn::getModel(e.model), 2);
        queue.push_back(t);
        q.row().cell(e.name).cell(dnn::modelIdName(e.model))
            .cell(static_cast<long long>(e.priority))
            .cell(static_cast<double>(e.waited) / 1e6, 1)
            .cell(sched::MocaScheduler::score(t, now), 2)
            .cell(t.estimatedAvgBw, 2)
            .cell(scheduler.isMemIntensive(t) ? "yes" : "no");
    }
    q.print("TaskQueue before the round");

    const auto group = scheduler.selectGroup(queue, now, 4);
    std::printf("\nselected co-running group (launch order): ");
    for (int g : group)
        std::printf("%s  ",
                    entries[static_cast<std::size_t>(g)].name);
    std::printf("\n  (memory-intensive picks are paired with "
                "compute-bound partners)\n\n");

    // ---- Algorithm 2: contention detection at block boundaries -------
    std::printf("== Algorithm 2: contention detection & HW update "
                "==\n\n");

    runtime::ContentionManager cm(cfg);
    Table a({"Step", "Job", "Demand (B/cyc)", "Score", "Contention?",
             "Alloc (B/cyc)", "Window (cyc)", "Threshold (beats)"});

    int step = 1;
    for (int g : group) {
        const auto &e = entries[static_cast<std::size_t>(g)];
        runtime::JobSnapshot snap;
        snap.appId = g;
        snap.model = &dnn::getModel(e.model);
        // Jobs sit at interesting block boundaries: AlexNet is about
        // to enter its memory-hungry fully-connected region.
        snap.nextLayer = 0;
        if (e.model == dnn::ModelId::AlexNet) {
            for (std::size_t i = 0; i < snap.model->numLayers(); ++i) {
                if (snap.model->layer(i).kind ==
                    dnn::LayerKind::Dense) {
                    snap.nextLayer = i;
                    break;
                }
            }
        }
        snap.numTiles = 2;
        snap.userPriority = e.priority;
        snap.slackCycles = 5e6;
        const auto d = cm.onBlockBoundary(snap);
        const auto &entry = cm.scoreboard().entry(g);
        a.row().cell(static_cast<long long>(step++)).cell(e.name)
            .cell(entry.bwRate, 2).cell(d.score, 2)
            .cell(d.contention ? "yes" : "no").cell(d.bwRate, 2)
            .cell(static_cast<long long>(d.hwConfig.windowCycles))
            .cell(static_cast<long long>(d.hwConfig.thresholdLoad));
    }
    a.print("Block-boundary reconfigurations (in admission order)");

    std::printf("\nscoreboard after the sweep:\n");
    for (const auto &[app, entry] : cm.scoreboard().entries()) {
        std::printf("  app %d (%s): demand %.2f B/cyc, score %.2f\n",
                    app, entries[static_cast<std::size_t>(app)].name,
                    entry.bwRate, entry.score);
    }
    std::printf("\nwindow = 0 means the job runs unthrottled "
                "(compute-bound or no overflow).\n");

    // ---- The open policy registry: a user-defined policy -------------
    std::printf("\n== Open policy registry: the toy 'fifo' policy "
                "==\n\n");
    std::printf("registered policies: ");
    for (const auto &name : exp::PolicyRegistry::instance().names())
        std::printf("%s ", name.c_str());
    std::printf("\n\n");

    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::C;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = 40;
    trace.seed = 4;
    const auto results = exp::Experiment()
                             .soc(cfg)
                             .trace(trace)
                             .policies({"fifo:tiles=2", "moca"})
                             .run();

    Table r({"Policy spec", "SLA", "STP", "Fairness"});
    for (const auto &res : results)
        r.row().cell(res.policy).cell(res.metrics.slaRate, 3)
            .cell(res.metrics.stp, 2).cell(res.metrics.fairness, 4);
    r.print("Toy policy vs MoCA on the identical trace");
    std::printf("\nthe same spec works in every bench: "
                "fig5_sla --policy fifo:tiles=4,moca\n");
    return 0;
}
