/**
 * @file
 * Model-zoo characterization tool: per-network summaries (layers,
 * blocks, parameters, MACs, arithmetic intensity), the per-block
 * compute/memory balance that drives the MoCA runtime's decisions,
 * and predicted isolated latency across tile counts.
 *
 * Usage: layer_explorer [model=resnet50] — pass a model name to dump
 * its per-block detail; without arguments prints the zoo summary.
 */

#include <cstdio>

#include "common/argparse.h"
#include "common/log.h"
#include "common/table.h"
#include "dnn/model_zoo.h"
#include "moca/runtime/latency_model.h"
#include "sim/compute_model.h"

using namespace moca;

namespace {

void
printZooSummary(const sim::SocConfig &cfg)
{
    runtime::LatencyModel model(cfg);
    Table t({"Model", "Set", "Layers", "Blocks", "Params (MB)",
             "MACs (G)", "MACs/byte", "Pred 1T (Mcyc)",
             "Pred 8T (Mcyc)", "Avg BW (B/cyc)"});
    for (dnn::ModelId id : dnn::allModelIds()) {
        const dnn::Model &m = dnn::getModel(id);
        double total_bytes = 0.0;
        for (const auto &l : m.layers())
            total_bytes += static_cast<double>(
                l.weightBytes() + l.inputBytes() + l.outputBytes());
        t.row().cell(m.name())
            .cell(m.size() == dnn::ModelSize::Light ? "A (light)"
                                                    : "B (heavy)")
            .cell(static_cast<long long>(m.numLayers()))
            .cell(static_cast<long long>(m.numBlocks()))
            .cell(static_cast<double>(m.totalWeightBytes()) / 1e6, 2)
            .cell(static_cast<double>(m.totalMacs()) / 1e9, 2)
            .cell(static_cast<double>(m.totalMacs()) / total_bytes, 1)
            .cell(model.estimateModel(m, 1) / 1e6, 2)
            .cell(model.estimateModel(m, 8) / 1e6, 2)
            .cell(model.estimateAvgBw(m, 2), 2);
    }
    t.print("Model zoo (paper Table III networks)");
}

void
printModelDetail(dnn::ModelId id, const sim::SocConfig &cfg)
{
    runtime::LatencyModel model(cfg);
    const dnn::Model &m = dnn::getModel(id);

    Table t({"Block", "Layers", "MACs (M)", "Pred 2T (Kcyc)",
             "DRAM (KB)", "L2 (KB)", "BW (B/cyc)", "Class"});
    const auto &blocks = m.blocks();
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto est = model.estimateBlock(m, b, 2);
        const bool hungry = est.bwRate() > 0.5 * cfg.dramBytesPerCycle;
        std::string layers = m.layer(blocks[b].first).name;
        if (blocks[b].count > 1)
            layers += " .. " +
                m.layer(blocks[b].first + blocks[b].count - 1).name;
        t.row().cell(static_cast<long long>(b)).cell(layers)
            .cell(static_cast<double>(blocks[b].macs) / 1e6, 1)
            .cell(est.prediction / 1e3, 1)
            .cell(static_cast<double>(est.fromDram) / 1e3, 0)
            .cell(static_cast<double>(est.totalMem) / 1e3, 0)
            .cell(est.bwRate(), 2)
            .cell(hungry ? "MEM-hungry" : "compute");
    }
    t.print(strprintf("%s: layer blocks as the MoCA runtime sees them",
                      m.name().c_str()));
}

} // namespace

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const sim::SocConfig cfg;

    printZooSummary(cfg);
    const std::string which = args.getString("model", "alexnet");
    std::printf("\n");
    printModelDetail(dnn::modelIdFromName(which), cfg);
    std::printf("\n(pass model=<name> for another network: "
                "squeezenet yolo-lite kws googlenet alexnet resnet50 "
                "yolov2)\n");
    return 0;
}
