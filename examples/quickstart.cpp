/**
 * @file
 * Quickstart: run a small multi-tenant mix under MoCA and print what
 * happened.  This is the 20-line tour of the public API:
 *
 *   1. pick a SoC configuration (Table II defaults),
 *   2. generate a multi-tenant trace (models, priorities, QoS),
 *   3. run it through the fluent exp::Experiment builder under a
 *      policy spec string (here: "moca" — any registered policy or
 *      parameterized variant like "moca:tick=2048" works),
 *   4. read the paper's metrics back.
 */

#include <cstdio>

#include "exp/experiment.h"

int
main()
{
    using namespace moca;

    sim::SocConfig soc; // Table II defaults: 8 tiles, 2 MB L2, 16 GB/s

    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::C; // all seven DNNs
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = 40;
    trace.seed = 1;

    std::printf("quickstart: %d tasks from %s under %s...\n",
                trace.numTasks, workload::workloadSetName(trace.set),
                workload::qosLevelName(trace.qos));

    const exp::ExperimentResults results =
        exp::Experiment().soc(soc).trace(trace).policy("moca").run();
    const exp::ScenarioResult &r = results["moca"];

    std::printf("\nresults (MoCA):\n");
    std::printf("  SLA satisfaction   %.1f%%\n",
                100.0 * r.metrics.slaRate);
    std::printf("  by priority        low %.1f%% / mid %.1f%% / "
                "high %.1f%%\n",
                100.0 * r.metrics.slaRateLow,
                100.0 * r.metrics.slaRateMid,
                100.0 * r.metrics.slaRateHigh);
    std::printf("  STP                %.2f\n", r.metrics.stp);
    std::printf("  fairness           %.3f\n", r.metrics.fairness);
    std::printf("  makespan           %.1f Mcycles\n",
                static_cast<double>(r.makespan) / 1e6);
    std::printf("  DRAM busy          %.1f%%\n",
                100.0 * r.dramBusyFraction);
    std::printf("  throttle reconfigs %d, migrations %d\n",
                r.totalThrottleReconfigs, r.totalMigrations);
    return 0;
}
