/**
 * @file
 * Domain scenario: an AR/VR-style SoC running mixed-criticality DNNs
 * concurrently — latency-critical perception (high priority, tight
 * QoS), interactive detection (mid priority), and best-effort photo
 * indexing (low priority) — comparing all four multi-tenancy
 * mechanisms on the identical request stream.
 *
 * This is the motivating deployment of the paper's Sec. II: the
 * interesting question is not average throughput but whether the
 * high-priority tasks keep their deadlines while the best-effort work
 * still progresses.
 */

#include <cstdio>

#include "common/table.h"
#include "exp/sweep/options.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    sim::SocConfig soc;

    // Mixed-criticality trace: all seven DNNs, medium QoS, saturating
    // load, 120 requests.
    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::C;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = 120;
    trace.seed = 11;

    std::printf("multi_tenant_qos: %d mixed-criticality requests, "
                "%s, %s\n\n", trace.numTasks,
                workload::workloadSetName(trace.set),
                workload::qosLevelName(trace.qos));

    // The selected policies (default: all four mechanisms) replay the
    // identical trace as one sweep grid (pass --jobs 4 to run them
    // concurrently, --policy to swap mechanisms in and out).
    std::vector<exp::SweepCell> grid;
    exp::appendPolicyCells(grid, "all-policies",
                           exp::policiesFromArgs(args), trace, soc);
    const exp::SweepRunner runner(exp::sweepOptionsFromArgs(args));
    const auto results = runner.run(grid);

    Table t({"Policy", "SLA", "p-Low", "p-Mid", "p-High", "STP",
             "Fairness", "Migrations", "Preempts", "Throttle cfgs"});
    for (const auto &r : results) {
        t.row().cell(r.policy)
            .cell(r.metrics.slaRate, 3)
            .cell(r.metrics.slaRateLow, 3)
            .cell(r.metrics.slaRateMid, 3)
            .cell(r.metrics.slaRateHigh, 3)
            .cell(r.metrics.stp, 2)
            .cell(r.metrics.fairness, 4)
            .cell(static_cast<long long>(r.totalMigrations))
            .cell(static_cast<long long>(r.totalPreemptions))
            .cell(static_cast<long long>(r.totalThrottleReconfigs));
    }
    t.print("Policy comparison on the identical request stream");

    std::printf("\nreading guide: MoCA should hold the best p-High "
                "column without giving up\nSTP; Prema pays for "
                "serialization; Planaria pays ~1M-cycle migrations.\n");
    return 0;
}
