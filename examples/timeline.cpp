/**
 * @file
 * Execution-timeline viewer: runs a small co-location under MoCA with
 * the trace recorder enabled and prints each job's lifecycle — when
 * it was dispatched, placed on tiles, crossed layer-block boundaries,
 * had its throttle reprogrammed, was resized, and completed.  Useful
 * for seeing the runtime's reactions (windows appearing when the
 * AlexNet jobs reach their FC blocks) rather than just the aggregate
 * metrics.
 *
 * Usage: timeline [--policy SPEC] — any registry spec works, e.g.
 *        --policy prema or --policy moca:tick=2048
 */

#include <cstdio>

#include "common/argparse.h"
#include "dnn/model_zoo.h"
#include "exp/scenario.h"
#include "sim/soc.h"

using namespace moca;

int
main(int argc, char **argv)
{
    ArgMap args(argc, argv);
    const std::string which = args.getString("policy", "moca");

    sim::SocConfig cfg;
    auto policy = exp::makePolicy(which, cfg);
    sim::Soc soc(cfg, *policy);
    soc.trace().enable();

    struct Request
    {
        dnn::ModelId model;
        Cycles dispatch;
        int priority;
    };
    const Request reqs[] = {
        {dnn::ModelId::AlexNet, 0, 2},
        {dnn::ModelId::SqueezeNet, 200'000, 9},
        {dnn::ModelId::AlexNet, 400'000, 0},
        {dnn::ModelId::GoogleNet, 600'000, 6},
        {dnn::ModelId::Kws, 3'000'000, 11},
    };
    int id = 0;
    for (const auto &r : reqs) {
        sim::JobSpec s;
        s.id = id++;
        s.model = &dnn::getModel(r.model);
        s.dispatch = r.dispatch;
        s.priority = r.priority;
        s.slaLatency = 40'000'000;
        soc.addJob(s);
    }
    soc.run();

    std::printf("timeline under %s (cycles in K):\n\n",
                which.c_str());
    for (int j = 0; j < id; ++j) {
        const auto &job = soc.job(j);
        std::printf("-- job %d: %s (priority %d, dispatched %.0fK)\n",
                    j, job.spec.model->name().c_str(),
                    job.spec.priority,
                    static_cast<double>(job.spec.dispatch) / 1e3);
        int throttle_cfgs = 0;
        for (const auto &e : soc.trace().forJob(j)) {
            // Collapse the (frequent) throttle reprogramming into a
            // summary; print everything else.
            if (e.kind == sim::TraceEventKind::ThrottleConfig) {
                ++throttle_cfgs;
                if (throttle_cfgs <= 3 && e.value > 0) {
                    std::printf("   %10.1fK  throttle window=%lld\n",
                                static_cast<double>(e.cycle) / 1e3,
                                e.value);
                }
                continue;
            }
            if (e.kind == sim::TraceEventKind::BlockBoundary)
                continue; // too chatty for the demo
            std::printf("   %10.1fK  %-9s %lld\n",
                        static_cast<double>(e.cycle) / 1e3,
                        sim::traceEventKindName(e.kind), e.value);
        }
        if (throttle_cfgs > 3)
            std::printf("   ... %d throttle reconfigurations total\n",
                        throttle_cfgs);
    }

    std::printf("\nper-job outcome:\n");
    for (const auto &r : soc.results()) {
        std::printf("  job %d %-11s latency %7.1fK  (SLA %s)\n",
                    r.spec.id, r.spec.model->name().c_str(),
                    static_cast<double>(r.latency()) / 1e3,
                    r.slaMet() ? "met" : "missed");
    }
    return 0;
}
