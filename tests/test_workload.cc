/**
 * @file
 * Unit tests for the workload generator: QoS multipliers, workload
 * sets, the priority distribution and grouping, trace determinism,
 * arrival-rate calibration, and SLA-target derivation.
 */

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace moca::workload {
namespace {

Cycles
fakeIso(dnn::ModelId id)
{
    // Deterministic fake isolated latencies (cycles).
    return 1'000'000 + 100'000 * static_cast<Cycles>(id);
}

TEST(Workload, QosMultipliers)
{
    EXPECT_DOUBLE_EQ(qosMultiplier(QosLevel::Light), 1.2);
    EXPECT_DOUBLE_EQ(qosMultiplier(QosLevel::Medium), 1.0);
    EXPECT_DOUBLE_EQ(qosMultiplier(QosLevel::Hard), 0.8);
}

TEST(Workload, SetsMatchTableIII)
{
    EXPECT_EQ(workloadSetModels(WorkloadSet::A).size(), 3u);
    EXPECT_EQ(workloadSetModels(WorkloadSet::B).size(), 4u);
    EXPECT_EQ(workloadSetModels(WorkloadSet::C).size(), 7u);
}

TEST(Workload, PriorityWeightsCoverAllLevels)
{
    const auto &w = priorityWeights();
    ASSERT_EQ(w.size(), 12u);
    for (double v : w)
        EXPECT_GT(v, 0.0);
    // Low-priority mass dominates (Google-trace shape).
    EXPECT_GT(w[0], w[11]);
}

TEST(Workload, PriorityGrouping)
{
    EXPECT_EQ(priorityGroup(0), PriorityGroup::Low);
    EXPECT_EQ(priorityGroup(2), PriorityGroup::Low);
    EXPECT_EQ(priorityGroup(3), PriorityGroup::Mid);
    EXPECT_EQ(priorityGroup(8), PriorityGroup::Mid);
    EXPECT_EQ(priorityGroup(9), PriorityGroup::High);
    EXPECT_EQ(priorityGroup(11), PriorityGroup::High);
}

TEST(Workload, TraceDeterministicPerSeed)
{
    TraceConfig cfg;
    cfg.numTasks = 50;
    cfg.seed = 42;
    const auto a = generateTrace(cfg, fakeIso);
    const auto b = generateTrace(cfg, fakeIso);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].dispatch, b[i].dispatch);
        EXPECT_EQ(a[i].priority, b[i].priority);
        EXPECT_EQ(a[i].model, b[i].model);
        EXPECT_EQ(a[i].slaLatency, b[i].slaLatency);
    }
    cfg.seed = 43;
    const auto c = generateTrace(cfg, fakeIso);
    int diffs = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diffs += a[i].dispatch != c[i].dispatch;
    EXPECT_GT(diffs, 10);
}

TEST(Workload, DispatchTimesMonotone)
{
    TraceConfig cfg;
    cfg.numTasks = 100;
    const auto trace = generateTrace(cfg, fakeIso);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].dispatch, trace[i - 1].dispatch);
}

TEST(Workload, ArrivalRateMatchesLoadFactor)
{
    TraceConfig cfg;
    cfg.numTasks = 4000;
    cfg.set = WorkloadSet::A;
    cfg.loadFactor = 1.0;
    cfg.numTiles = 8;
    const auto trace = generateTrace(cfg, fakeIso);

    double mean_iso = 0.0;
    for (dnn::ModelId id : workloadSetModels(WorkloadSet::A))
        mean_iso += static_cast<double>(fakeIso(id));
    mean_iso /= 3.0;

    const double expected_interarrival = mean_iso / 8.0;
    const double measured = static_cast<double>(
        trace.back().dispatch) / (cfg.numTasks - 1);
    EXPECT_NEAR(measured, expected_interarrival,
                expected_interarrival * 0.1);
}

TEST(Workload, SlaTargetScalesWithQos)
{
    TraceConfig cfg;
    cfg.numTasks = 200;
    cfg.qosScale = 4.0;
    cfg.qos = QosLevel::Hard;
    const auto hard = generateTrace(cfg, fakeIso);
    cfg.qos = QosLevel::Light;
    const auto light = generateTrace(cfg, fakeIso);
    for (std::size_t i = 0; i < hard.size(); ++i) {
        ASSERT_EQ(hard[i].model, light[i].model);
        EXPECT_NEAR(static_cast<double>(light[i].slaLatency) /
                        static_cast<double>(hard[i].slaLatency),
                    1.2 / 0.8, 0.01);
    }
}

TEST(Workload, SlaTargetProportionalToModelLatency)
{
    TraceConfig cfg;
    cfg.numTasks = 300;
    cfg.qosScale = 4.0;
    const auto trace = generateTrace(cfg, fakeIso);
    for (const auto &spec : trace) {
        const dnn::ModelId id =
            dnn::modelIdFromName(spec.model->name());
        EXPECT_NEAR(static_cast<double>(spec.slaLatency),
                    4.0 * static_cast<double>(fakeIso(id)),
                    2.0);
    }
}

TEST(Workload, PriorityDistributionSampled)
{
    TraceConfig cfg;
    cfg.numTasks = 20000;
    const auto trace = generateTrace(cfg, fakeIso);
    int counts[12] = {};
    for (const auto &spec : trace) {
        ASSERT_GE(spec.priority, 0);
        ASSERT_LE(spec.priority, 11);
        counts[spec.priority]++;
    }
    const auto &w = priorityWeights();
    double total_w = 0.0;
    for (double v : w)
        total_w += v;
    for (int p = 0; p < 12; ++p) {
        const double expected =
            w[static_cast<std::size_t>(p)] / total_w;
        const double got =
            counts[p] / static_cast<double>(cfg.numTasks);
        EXPECT_NEAR(got, expected, 0.02) << "priority " << p;
    }
}

TEST(Workload, ModelsDrawnFromRequestedSet)
{
    TraceConfig cfg;
    cfg.numTasks = 200;
    cfg.set = WorkloadSet::B;
    const auto trace = generateTrace(cfg, fakeIso);
    for (const auto &spec : trace)
        EXPECT_EQ(spec.model->size(), dnn::ModelSize::Heavy);
}

} // namespace
} // namespace moca::workload
