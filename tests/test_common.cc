/**
 * @file
 * Unit tests for the common substrate: RNG determinism and
 * distributions, statistics accumulators, tables, argument parsing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/argparse.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace moca {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(11);
    double sum = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(5);
    const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[rng.categorical(w)]++;
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(9);
    const auto perm = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (auto p : perm) {
        ASSERT_LT(p, 50u);
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(StatAccum, BasicMoments)
{
    StatAccum s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatAccum, EmptyIsZero)
{
    StatAccum s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(SampleSet, PercentileAfterLateAdd)
{
    SampleSet s;
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
}

TEST(Stats, PercentileSummary)
{
    std::vector<double> values;
    for (int i = 100; i >= 1; --i) // Unsorted on purpose.
        values.push_back(static_cast<double>(i));
    const PercentileSummary s = percentileSummary(values);
    EXPECT_NEAR(s.p50, 50.5, 1e-9);
    EXPECT_NEAR(s.p95, 95.05, 1e-9);
    EXPECT_NEAR(s.p99, 99.01, 1e-9);

    const PercentileSummary empty = percentileSummary({});
    EXPECT_EQ(empty.p50, 0.0);
    EXPECT_EQ(empty.p95, 0.0);
    EXPECT_EQ(empty.p99, 0.0);

    const PercentileSummary one = percentileSummary({7.0});
    EXPECT_EQ(one.p50, 7.0);
    EXPECT_EQ(one.p99, 7.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, RenderAndCsv)
{
    Table t({"a", "b"});
    t.row().cell("x").cell(1.5, 1);
    t.row().cell("longer").cell(static_cast<long long>(7));
    const std::string out = t.render();
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("a,b"), std::string::npos);
    EXPECT_NE(csv.find("x,1.5"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table t({"h"});
    t.row().cell("va,lue");
    EXPECT_NE(t.csv().find("\"va,lue\""), std::string::npos);
}

TEST(ArgMap, ParsesTypes)
{
    const char *argv[] = {"prog", "tasks=300", "load=0.9", "flag",
                          "name=abc"};
    ArgMap args(5, const_cast<char **>(argv));
    EXPECT_EQ(args.getInt("tasks", 0), 300);
    EXPECT_DOUBLE_EQ(args.getDouble("load", 0.0), 0.9);
    EXPECT_TRUE(args.getBool("flag", false));
    EXPECT_EQ(args.getString("name", ""), "abc");
    EXPECT_EQ(args.getInt("missing", 17), 17);
}

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv<std::uint64_t>(1, 256), 1u);
}

} // namespace
} // namespace moca
