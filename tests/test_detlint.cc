/**
 * @file
 * Tests for the in-tree determinism linter (tools/detlint): the rule
 * engine over checked-in fixture snippets (one positive and one
 * suppressed case per rule), the suppression grammar, the JSON
 * output, the exit-code contract, the config parser — and the
 * repo-clean gate: the actual source tree must scan clean under the
 * actual detlint.toml, mirroring what the lint CI job enforces.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/detlint/detlint.h"
#include "tools/detlint/source_model.h"

using namespace detlint;

namespace {

/** All rules everywhere: fixture paths are absolute, so the default
 *  per-rule path gates (which use repo-relative globs) never match. */
Config
permissiveConfig()
{
    Config cfg = defaultConfig();
    cfg.rules.clear();
    cfg.exclude.clear();
    return cfg;
}

std::string
fixturePath(const std::string &name)
{
    return std::string(DETLINT_FIXTURE_DIR) + "/" + name;
}

Report
scanFixture(const std::string &name)
{
    Engine engine(permissiveConfig());
    return engine.scanFiles({fixturePath(name)});
}

int
countRule(const Report &r, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(r.findings.begin(), r.findings.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

Report
scanText(const std::string &text, const Config &cfg,
         const std::string &path = "snippet.cc")
{
    Engine engine(cfg);
    Report report;
    engine.scanSource(path, text, report);
    return report;
}

// --- fixture snippets: one positive + one suppressed case per rule --

TEST(DetlintRules, R1UnorderedIterationFixture)
{
    const Report r = scanFixture("r1_unordered_iteration.cc");
    EXPECT_EQ(countRule(r, "R1"), 2); // range-for + iterator loop.
    EXPECT_EQ(r.suppressed, 1);       // allow(R1) range-for.
    EXPECT_EQ(static_cast<int>(r.findings.size()), 2)
        << formatText(r);
}

TEST(DetlintRules, R2NondeterminismSourcesFixture)
{
    const Report r = scanFixture("r2_nondeterminism_sources.cc");
    EXPECT_EQ(countRule(r, "R2"), 4); // rand, random_device, now, time.
    EXPECT_EQ(r.suppressed, 1);
    EXPECT_EQ(static_cast<int>(r.findings.size()), 4)
        << formatText(r);
}

TEST(DetlintRules, R3PointerKeysFixture)
{
    const Report r = scanFixture("r3_pointer_keys.cc");
    EXPECT_EQ(countRule(r, "R3"), 2); // map + unordered_set.
    EXPECT_EQ(r.suppressed, 1);
    EXPECT_EQ(static_cast<int>(r.findings.size()), 2)
        << formatText(r);
}

TEST(DetlintRules, R4SharedStateFixture)
{
    const Report r = scanFixture("r4_shared_state.cc");
    // One static counter + one merged mutable-member block; the
    // atomic, mutex-guarded, constexpr, and thread_local cases stay
    // clean.
    EXPECT_EQ(countRule(r, "R4"), 2) << formatText(r);
    EXPECT_EQ(r.suppressed, 1);
    EXPECT_EQ(static_cast<int>(r.findings.size()), 2)
        << formatText(r);
}

TEST(DetlintRules, R5UninitializedConfigFixture)
{
    const Report r = scanFixture("r5_uninitialized_config.cc");
    // int + double + enum in FixtureConfig, int64 in FixtureTaskSpec;
    // PlainRecord is out of scope and initialized members are clean.
    EXPECT_EQ(countRule(r, "R5"), 4) << formatText(r);
    EXPECT_EQ(r.suppressed, 1);
    EXPECT_EQ(static_cast<int>(r.findings.size()), 4)
        << formatText(r);
}

// --- suppression grammar ---------------------------------------------

TEST(DetlintSuppressions, ReasonlessAllowIsAFinding)
{
    const Report r = scanText("int f() {\n"
                              "    // detlint: allow(R2)\n"
                              "    return rand();\n"
                              "}\n",
                              permissiveConfig());
    // The R2 finding is silenced, but the naked allow() is reported.
    EXPECT_EQ(countRule(r, "R2"), 0);
    EXPECT_EQ(countRule(r, "SUP"), 1);
    EXPECT_EQ(r.suppressed, 1);
}

TEST(DetlintSuppressions, MalformedMarkerIsAFinding)
{
    const Report r = scanText("// detlint: alow(R2) typo\n"
                              "int x = 0;\n",
                              permissiveConfig());
    EXPECT_EQ(countRule(r, "SUP"), 1);
}

TEST(DetlintSuppressions, SameLineAndLineAboveBothWork)
{
    const Config cfg = permissiveConfig();
    const Report above = scanText(
        "// detlint: allow(R2) deliberate\nint x = rand();\n", cfg);
    EXPECT_EQ(static_cast<int>(above.findings.size()), 0);
    EXPECT_EQ(above.suppressed, 1);

    const Report inline_ = scanText(
        "int x = rand(); // detlint: allow(R2) deliberate\n", cfg);
    EXPECT_EQ(static_cast<int>(inline_.findings.size()), 0);
    EXPECT_EQ(inline_.suppressed, 1);
}

TEST(DetlintSuppressions, WrongRuleDoesNotSuppress)
{
    const Report r = scanText(
        "// detlint: allow(R1) wrong rule\nint x = rand();\n",
        permissiveConfig());
    EXPECT_EQ(countRule(r, "R2"), 1);
    EXPECT_EQ(r.suppressed, 0);
}

TEST(DetlintSuppressions, MultiRuleAllowList)
{
    const Report r = scanText(
        "// detlint: allow(R1, R2) both silenced here\n"
        "int x = rand();\n",
        permissiveConfig());
    EXPECT_EQ(static_cast<int>(r.findings.size()), 0);
    EXPECT_EQ(r.suppressed, 1);
}

// --- output formats & exit-code contract -----------------------------

TEST(DetlintReport, JsonRoundTrip)
{
    const Report r = scanFixture("r2_nondeterminism_sources.cc");
    const std::string json = formatJson(r);

    // Structural invariants a consumer relies on.
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"R2\""), std::string::npos);
    EXPECT_NE(json.find("r2_nondeterminism_sources.cc"),
              std::string::npos);

    // Finding count round-trips: one {"rule": ...} object per finding.
    std::size_t count = 0, at = 0;
    while ((at = json.find("{\"rule\":", at)) != std::string::npos) {
        ++count;
        at += 8;
    }
    EXPECT_EQ(count, r.findings.size());

    // Balanced braces (cheap well-formedness check; all strings in
    // the report are escaped, so raw braces only come from syntax).
    long depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(DetlintReport, JsonEscapesSpecials)
{
    Report r;
    Finding f;
    f.rule = "R2";
    f.file = "a\"b.cc";
    f.line = 1;
    f.message = "tab\there";
    f.snippet = "back\\slash";
    r.findings.push_back(f);
    const std::string json = formatJson(r);
    EXPECT_NE(json.find("a\\\"b.cc"), std::string::npos);
    EXPECT_NE(json.find("tab\\there"), std::string::npos);
    EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(DetlintReport, ExitCodeContract)
{
    Report clean;
    clean.filesScanned = 3;
    clean.suppressed = 7; // Suppressed findings do not fail the run.
    EXPECT_EQ(exitCode(clean), 0);

    Report dirty = clean;
    Finding f;
    f.rule = "R1";
    dirty.findings.push_back(f);
    EXPECT_EQ(exitCode(dirty), 1);
}

TEST(DetlintReport, TextFormatNamesEveryFinding)
{
    const Report r = scanFixture("r1_unordered_iteration.cc");
    const std::string text = formatText(r);
    EXPECT_NE(text.find("[R1]"), std::string::npos);
    EXPECT_NE(text.find("r1_unordered_iteration.cc:"),
              std::string::npos);
    EXPECT_NE(text.find("suppressed"), std::string::npos);
}

// --- config parsing ---------------------------------------------------

TEST(DetlintConfig, ParsesSectionsAndLists)
{
    Config cfg = defaultConfig();
    std::string err;
    const std::string toml =
        "# comment\n"
        "[paths]\n"
        "include = [\"src\", \"bench\"]\n"
        "exclude = [\"tests/fixtures\"]\n"
        "[types]\n"
        "extra_scalars = [\"Cycles\", \"NodeId\"]\n"
        "[rule.R2]\n"
        "exclude = [\"src/common\"]\n"
        "[rule.R9]\n"
        "enabled = false\n";
    ASSERT_TRUE(Config::parseToml(toml, cfg, &err)) << err;
    EXPECT_EQ(cfg.include,
              (std::vector<std::string>{"src", "bench"}));
    EXPECT_EQ(cfg.extraScalars,
              (std::vector<std::string>{"Cycles", "NodeId"}));
    EXPECT_EQ(cfg.rules["R2"].exclude,
              (std::vector<std::string>{"src/common"}));
    EXPECT_FALSE(cfg.rules["R9"].enabled);
}

TEST(DetlintConfig, RejectsUnknownKeys)
{
    Config cfg = defaultConfig();
    std::string err;
    EXPECT_FALSE(
        Config::parseToml("[paths]\nfrobnicate = \"x\"\n", cfg, &err));
    EXPECT_NE(err.find("frobnicate"), std::string::npos);
    EXPECT_FALSE(Config::parseToml("[nonsense]\nx = \"y\"\n", cfg,
                                   &err));
}

TEST(DetlintConfig, DisabledRuleFiresNothing)
{
    Config cfg = permissiveConfig();
    cfg.rules["R2"].enabled = false;
    const Report r = scanText("int x = rand();\n", cfg);
    EXPECT_EQ(static_cast<int>(r.findings.size()), 0);
}

TEST(DetlintConfig, PathMatching)
{
    EXPECT_TRUE(pathMatches("src", "src/sim/soc.cc"));
    EXPECT_TRUE(pathMatches("src/common", "src/common/rng.cc"));
    EXPECT_FALSE(pathMatches("src/common", "src/commonplace.cc"));
    EXPECT_TRUE(pathMatches("*.cc", "bench/fig5_sla.cc"));
    EXPECT_TRUE(pathMatches("tests/fixtures", "tests/fixtures/x.cc"));
    EXPECT_FALSE(pathMatches("tests", "src/tests.cc"));
    EXPECT_TRUE(pathMatches("src/*/soc.?", "src/sim/soc.h"));
}

TEST(DetlintConfig, RulePathGatingUsesConfig)
{
    Config cfg = permissiveConfig();
    cfg.rules["R2"].exclude = {"vendored"};
    const Report hit =
        scanText("int x = rand();\n", cfg, "app/main.cc");
    EXPECT_EQ(countRule(hit, "R2"), 1);
    const Report skipped =
        scanText("int x = rand();\n", cfg, "vendored/main.cc");
    EXPECT_EQ(countRule(skipped, "R2"), 0);
}

// --- the repo itself scans clean -------------------------------------

TEST(DetlintRepo, SourceTreeIsCleanUnderCheckedInConfig)
{
    // Mirror of the lint CI gate: the real tree, the real config.
    const std::filesystem::path root(DETLINT_SOURCE_ROOT);
    std::ifstream in(root / "detlint.toml");
    ASSERT_TRUE(in) << "detlint.toml missing from repo root";
    std::ostringstream body;
    body << in.rdbuf();

    Config cfg = defaultConfig();
    std::string err;
    ASSERT_TRUE(Config::parseToml(body.str(), cfg, &err)) << err;

    const auto cwd = std::filesystem::current_path();
    std::filesystem::current_path(root);
    const std::vector<std::string> files =
        expandPaths(cfg.include, cfg.exclude);
    const Report report = Engine(cfg).scanFiles(files);
    std::filesystem::current_path(cwd);

    EXPECT_GT(report.filesScanned, 100);
    EXPECT_EQ(static_cast<int>(report.findings.size()), 0)
        << formatText(report);
    // Every suppression in the tree must carry a reason; reasonless
    // ones surface as SUP findings and fail the expectation above.
}

} // namespace
