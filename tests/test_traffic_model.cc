/**
 * @file
 * Unit tests for the L2/DRAM traffic model: streaming plans, cache
 * capacity effects, reload factors, and invariants (DRAM traffic is a
 * subset of L2 traffic) across the whole model zoo.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "sim/traffic_model.h"

namespace moca::sim {
namespace {

SocConfig
cfg()
{
    return SocConfig{};
}

TEST(TrafficModel, SmallLayerSingleCachedPass)
{
    // Everything fits: stream = W + IA once; DRAM = W + bias + OA.
    const auto l = dnn::Layer::conv("c", 14, 14, 64, 64, 3, 1, 1);
    const auto t = layerTraffic(l, 1, cfg(), cfg().l2Bytes);
    const auto w = l.weightBytes();
    const auto in = l.inputBytes();
    const auto out = l.outputBytes();
    EXPECT_EQ(t.l2Bytes, w + in + out + l.biasBytes());
    EXPECT_EQ(t.dramBytes, w + l.biasBytes() + out);
}

TEST(TrafficModel, BigInputEvictedFromCache)
{
    // Input tensor larger than effective cache must be re-fetched
    // from DRAM.
    const auto l = dnn::Layer::conv("c", 416, 416, 32, 64, 3, 1, 1);
    const auto in = l.inputBytes();
    ASSERT_GT(in, 1u * MiB); // > half the 2 MB L2
    const auto hit = layerTraffic(l, 1, cfg(), 16 * MiB);
    const auto miss = layerTraffic(l, 1, cfg(), 1 * MiB);
    EXPECT_EQ(miss.dramBytes, hit.dramBytes + in);
    EXPECT_EQ(miss.l2Bytes, hit.l2Bytes);
}

TEST(TrafficModel, HugeWeightsStreamedOnce)
{
    // AlexNet fc6: 36 MB of weights stream from DRAM exactly once
    // (inputs are tiny and held resident).
    const auto l = dnn::Layer::dense("fc6", 9216, 4096);
    const auto t = layerTraffic(l, 1, cfg(), cfg().l2Bytes);
    const auto w = l.weightBytes();
    EXPECT_GE(t.dramBytes, w);
    EXPECT_LT(t.dramBytes, w + w / 10); // no weight reloads
    EXPECT_EQ(streamReloadFactor(l, cfg()), 1u);
}

TEST(TrafficModel, ReloadFactorWhenNeitherFits)
{
    // Both operands far larger than the 64 KiB scratchpad half.
    const auto l = dnn::Layer::conv("c", 112, 112, 128, 512, 3, 1, 1);
    EXPECT_GT(streamReloadFactor(l, cfg()), 1u);
}

TEST(TrafficModel, AddLayerOperandEviction)
{
    const auto l = dnn::Layer::add("a", 56, 56, 256);
    const auto small = layerTraffic(l, 1, cfg(), 16 * MiB);
    const auto tight = layerTraffic(l, 1, cfg(), 256 * KiB);
    EXPECT_EQ(small.dramBytes, l.outputBytes());
    EXPECT_EQ(tight.dramBytes, l.outputBytes() + l.inputBytes() / 2);
}

TEST(TrafficModel, MultiTileDuplicatesSharedOperandInL2Only)
{
    const auto l = dnn::Layer::conv("c", 56, 56, 64, 64, 3, 1, 1);
    const auto t1 = layerTraffic(l, 1, cfg(), cfg().l2Bytes);
    const auto t4 = layerTraffic(l, 4, cfg(), cfg().l2Bytes);
    EXPECT_GT(t4.l2Bytes, t1.l2Bytes);
    EXPECT_EQ(t4.dramBytes, t1.dramBytes);
}

/** Invariants across every layer of every model. */
class TrafficSweep : public ::testing::TestWithParam<dnn::ModelId>
{
};

TEST_P(TrafficSweep, DramSubsetOfL2)
{
    const auto &m = dnn::getModel(GetParam());
    for (std::uint64_t cache :
         {cfg().l2Bytes, cfg().l2Bytes / 4, cfg().l2Bytes / 8}) {
        for (int tiles : {1, 2, 8}) {
            for (const auto &l : m.layers()) {
                const auto t = layerTraffic(l, tiles, cfg(), cache);
                EXPECT_LE(t.dramBytes, t.l2Bytes)
                    << m.name() << "/" << l.name << " cache=" << cache
                    << " tiles=" << tiles;
                EXPECT_GT(t.l2Bytes, 0u)
                    << m.name() << "/" << l.name;
            }
        }
    }
}

TEST_P(TrafficSweep, SmallerCacheNeverReducesDram)
{
    const auto &m = dnn::getModel(GetParam());
    for (const auto &l : m.layers()) {
        const auto big = layerTraffic(l, 1, cfg(), cfg().l2Bytes);
        const auto small =
            layerTraffic(l, 1, cfg(), cfg().l2Bytes / 8);
        EXPECT_GE(small.dramBytes, big.dramBytes)
            << m.name() << "/" << l.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrafficSweep,
    ::testing::ValuesIn(dnn::allModelIds()),
    [](const ::testing::TestParamInfo<dnn::ModelId> &info) {
        std::string n = dnn::modelIdName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

} // namespace
} // namespace moca::sim
