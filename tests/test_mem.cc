/**
 * @file
 * Tests for the pluggable memory-hierarchy subsystem (src/mem/):
 * registry grammar and error discipline, the flat model's exact
 * equality with the legacy arbiter+thrash composition, the banked
 * model's interleave mapping, row-locality degradation under
 * interleaved co-runners, channel/bank feasibility properties, both
 * simulation kernels, and jobs=1 == jobs=4 bit-determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "exp/experiment.h"
#include "exp/oracle.h"
#include "exp/registry.h"
#include "mem/banked.h"
#include "mem/memory_model.h"
#include "sim/arbiter.h"
#include "sim/soc.h"

namespace moca::mem {
namespace {

sim::SocConfig
defaultCfg()
{
    return sim::SocConfig();
}

// ---- registry --------------------------------------------------------

TEST(MemRegistry, BuiltinsRegistered)
{
    auto &reg = MemoryModelRegistry::instance();
    EXPECT_TRUE(reg.contains("flat"));
    EXPECT_TRUE(reg.contains("banked"));
    const auto names = reg.names();
    // Registration order: flat (the default) first.
    ASSERT_GE(names.size(), 2u);
    EXPECT_EQ(names[0], "flat");
    EXPECT_EQ(names[1], "banked");

    const std::string list = reg.listText();
    EXPECT_NE(list.find("flat"), std::string::npos);
    EXPECT_NE(list.find("banked"), std::string::npos);
    EXPECT_NE(list.find("locality_tau"), std::string::npos);
}

TEST(MemRegistry, SpecRoundTrip)
{
    const MemSpec spec =
        MemSpec::parse("banked:banks=16,remap=mod", "memory model");
    EXPECT_EQ(spec.name, "banked");
    ASSERT_EQ(spec.params.size(), 2u);
    EXPECT_EQ(spec.canonical(), "banked:banks=16,remap=mod");

    const auto model =
        MemoryModelRegistry::instance().make(spec, defaultCfg());
    EXPECT_STREQ(model->name(), "banked");
    const auto &banked =
        dynamic_cast<const BankedMemoryModel &>(*model);
    EXPECT_EQ(banked.config().banks, 16);
    EXPECT_EQ(banked.config().remap, BankRemap::Mod);
}

using MemRegistryDeathTest = ::testing::Test;

TEST(MemRegistryDeathTest, UnknownModelSuggestsNearest)
{
    EXPECT_DEATH((void)MemoryModelRegistry::instance().make(
                     "bankd", defaultCfg()),
                 "did you mean 'banked'");
    EXPECT_DEATH((void)MemoryModelRegistry::instance().make(
                     "nonsense", defaultCfg()),
                 "known memory models");
}

TEST(MemRegistryDeathTest, UndeclaredParameterListsDeclared)
{
    EXPECT_DEATH((void)MemoryModelRegistry::instance().make(
                     "banked:rows=4", defaultCfg()),
                 "has no parameter 'rows'");
}

TEST(MemRegistryDeathTest, BadParameterValues)
{
    EXPECT_DEATH((void)MemoryModelRegistry::instance().make(
                     "banked:banks=0", defaultCfg()),
                 "banks must be >= 1");
    EXPECT_DEATH((void)MemoryModelRegistry::instance().make(
                     "banked:remap=diagonal", defaultCfg()),
                 "expected xor or mod");
    EXPECT_DEATH((void)MemoryModelRegistry::instance().make(
                     "banked:row_miss_bpc=99", defaultCfg()),
                 "row_miss_bpc <= row_hit_bpc");
}

TEST(MemRegistryDeathTest, SocConstructionValidatesSpec)
{
    sim::SocConfig cfg;
    cfg.memModel = "flatt";
    exp::SoloPolicy policy(1);
    EXPECT_DEATH(sim::Soc(cfg, policy), "unknown memory model");
}

TEST(MemRegistry, UserRegisteredModel)
{
    // Open registration: a toy model that grants everything.
    struct GreedyModel : MemoryModel
    {
        const char *name() const override { return "greedy-test"; }
        const std::vector<MemGrant> &
        arbitrate(const std::vector<MemRequest> &requests, Cycles,
                  MemStepStats &) override
        {
            grants_.assign(requests.size(), MemGrant{});
            for (std::size_t i = 0; i < requests.size(); ++i)
                grants_[i] = {requests[i].dramBytes,
                              requests[i].l2Bytes};
            return grants_;
        }
        std::vector<MemGrant> grants_;
    };
    static MemoryModelRegistrar reg({
        "greedy-test",
        "grants every demand (test double)",
        {},
        [](const sim::SocConfig &, const MemSpec &) {
            return std::make_unique<GreedyModel>();
        },
    });
    EXPECT_TRUE(
        MemoryModelRegistry::instance().contains("greedy-test"));

    // And it drives a full scenario through SocConfig::memModel.
    sim::SocConfig cfg;
    cfg.memModel = "greedy-test";
    workload::TraceConfig trace;
    trace.numTasks = 6;
    const auto r = exp::runScenario("moca", trace, cfg);
    EXPECT_EQ(r.metrics.numJobs, 6);
}

// ---- flat == legacy composition --------------------------------------

TEST(FlatModel, ExactlyTheLegacyArbiterComposition)
{
    const sim::SocConfig cfg = defaultCfg();
    const auto model =
        MemoryModelRegistry::instance().make("flat", cfg);
    Rng rng(101);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(1, 6));
        const Cycles horizon =
            static_cast<Cycles>(rng.uniformInt(64, 4096));
        std::vector<MemRequest> reqs;
        std::vector<sim::BwDemand> dram_req, l2_req;
        double total = 0.0, maxd = 0.0;
        for (int i = 0; i < n; ++i) {
            MemRequest r;
            r.id = i;
            r.dramBytes = rng.uniform(0.0, 40000.0);
            r.l2Bytes = rng.uniform(0.0, 80000.0);
            r.weight = static_cast<double>(rng.uniformInt(1, 8));
            reqs.push_back(r);
            dram_req.push_back({r.dramBytes, r.weight});
            l2_req.push_back({r.l2Bytes, r.weight});
            total += r.dramBytes;
            maxd = std::max(maxd, r.dramBytes);
        }

        MemStepStats stats;
        const auto grants = model->arbitrate(reqs, horizon, stats);

        // The legacy path, composed by hand.
        const double q = static_cast<double>(horizon);
        const sim::ThrashOutcome thrash = sim::applyDramThrash(
            total, maxd, cfg.dramBytesPerCycle * q,
            cfg.dramThrashOnset, cfg.dramThrashFactor);
        const auto dram = cfg.dramProportionalArbitration
            ? sim::allocateBandwidthProportional(dram_req,
                                                 thrash.capacity)
            : sim::allocateBandwidth(dram_req, thrash.capacity);
        const auto l2 = sim::allocateBandwidth(
            l2_req, cfg.l2BytesPerCycle() * q);

        EXPECT_EQ(stats.thrashed, thrash.thrashed);
        EXPECT_EQ(stats.thrashLostBytes, thrash.lostBytes);
        ASSERT_EQ(grants.size(), reqs.size());
        for (int i = 0; i < n; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            EXPECT_EQ(grants[idx].dramBytes, dram[idx]);
            EXPECT_EQ(grants[idx].l2Bytes, l2[idx]);
        }
    }
}

TEST(FlatModel, StatelessAndCounterFree)
{
    const auto model =
        MemoryModelRegistry::instance().make("flat", defaultCfg());
    EXPECT_EQ(model->cyclesUntilNextChange(), 0u);
    MemStepStats stats;
    (void)model->arbitrate({{0, 5000.0, 9000.0, 2.0}}, 512, stats);
    EXPECT_EQ(model->traffic().dramRowHits, 0u);
    EXPECT_EQ(model->traffic().dramRowMisses, 0u);
    EXPECT_TRUE(model->traffic().bankBytes.empty());
    EXPECT_EQ(model->traffic().l2ConflictLostBytes, 0.0);
}

/** `--mem flat` (the default) replays the default-config scenario
 *  path exactly: asserting the extraction changed nothing. */
TEST(FlatModel, DefaultScenarioUnchanged)
{
    workload::TraceConfig trace;
    trace.numTasks = 12;
    trace.seed = 5;

    const sim::SocConfig def; // memModel == "flat" by default
    sim::SocConfig explicit_flat = def;
    explicit_flat.memModel = "flat";

    const auto a = exp::runScenario("moca", trace, def);
    const auto b = exp::runScenario("moca", trace, explicit_flat);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.metrics.slaRate, b.metrics.slaRate);
    EXPECT_EQ(a.metrics.stp, b.metrics.stp);
    EXPECT_EQ(a.simSteps, b.simSteps);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i)
        EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
}

// ---- banked: interleave mapping --------------------------------------

TEST(BankedModel, InterleaveMapping)
{
    BankedConfig bc;
    bc.banks = 8;
    const BankedMemoryModel xor_model(defaultCfg(), bc);

    // Home banks are deterministic, in range, and scattered: 32
    // consecutive ids should not all collapse onto one bank.
    std::vector<int> seen(8, 0);
    for (int id = 0; id < 32; ++id) {
        const int h = xor_model.homeBank(id);
        EXPECT_EQ(h, xor_model.homeBank(id));
        ASSERT_GE(h, 0);
        ASSERT_LT(h, 8);
        seen[static_cast<std::size_t>(h)]++;
    }
    EXPECT_GT(std::count_if(seen.begin(), seen.end(),
                            [](int c) { return c > 0; }),
              4);

    // mod remap: adjacent ids land on adjacent banks (and collide
    // every `banks` ids).
    bc.remap = BankRemap::Mod;
    const BankedMemoryModel mod_model(defaultCfg(), bc);
    for (int id = 0; id < 32; ++id)
        EXPECT_EQ(mod_model.homeBank(id), id % 8);

    // Span: 0 for no demand, 1 row -> 1 bank, capped at the bank
    // count.
    EXPECT_EQ(xor_model.bankSpan(0.0, 8), 0);
    EXPECT_EQ(xor_model.bankSpan(1.0, 8), 1);
    EXPECT_EQ(xor_model.bankSpan(1024.0, 8), 1);
    EXPECT_EQ(xor_model.bankSpan(1025.0, 8), 2);
    EXPECT_EQ(xor_model.bankSpan(1e9, 8), 8);
}

// ---- banked: locality ------------------------------------------------

TEST(BankedModel, LoneStreamerKeepsLocalityAndFullService)
{
    const sim::SocConfig cfg = defaultCfg();
    BankedMemoryModel model(cfg, BankedConfig());
    MemStepStats stats;
    const Cycles q = 512;
    const double cap = cfg.dramBytesPerCycle * 512.0;

    for (int step = 0; step < 50; ++step) {
        const auto g = model.arbitrate(
            {{0, 2.0 * cap, 2.0 * cap, 8.0}}, q, stats);
        // A lone streamer keeps locality 1 and is served at exactly
        // the channel rate — identical to the flat model, so
        // isolated latencies (and QoS targets) are unchanged.
        EXPECT_NEAR(g[0].dramBytes, cap, 1e-6);
    }
    EXPECT_DOUBLE_EQ(model.locality(0), 1.0);
    EXPECT_EQ(model.traffic().dramRowMisses, 0u);
    EXPECT_GT(model.traffic().dramRowHits, 0u);
}

TEST(BankedModel, InterleavedCoRunnersDegradeLocality)
{
    const sim::SocConfig cfg = defaultCfg();
    BankedConfig bc;
    bc.localityTau = 2048; // Converge quickly in the test.
    BankedMemoryModel model(cfg, bc);
    MemStepStats stats;
    const double demand = 4.0 * cfg.dramBytesPerCycle * 512.0;

    double service_sum = 0.0;
    for (int step = 0; step < 100; ++step) {
        const auto g = model.arbitrate(
            {{0, demand, 0.0, 4.0}, {1, demand, 0.0, 4.0}}, 512,
            stats);
        service_sum = g[0].dramBytes + g[1].dramBytes;
    }
    // Two equal streamers interleaving on shared banks: locality
    // converges to each one's traffic share (1/2)...
    EXPECT_LT(model.locality(0), 0.55);
    EXPECT_GT(model.locality(0), 0.45);
    EXPECT_NEAR(model.locality(0), model.locality(1), 1e-9);
    // ...misses accumulate, and the channel serves measurably below
    // its peak (turnaround overhead) but above the hard floor.
    EXPECT_GT(model.traffic().dramRowMisses, 0u);
    const double peak = cfg.dramBytesPerCycle * 512.0;
    EXPECT_LT(service_sum, 0.95 * peak);
    EXPECT_GT(service_sum, 0.5 * peak);

    // The departed co-runner's locality recovers once requester 0
    // streams alone again — contention is a *state*, not a penalty.
    for (int step = 0; step < 100; ++step)
        (void)model.arbitrate({{0, demand, 0.0, 4.0}}, 512, stats);
    EXPECT_GT(model.locality(0), 0.95);
}

TEST(BankedModel, MoreBanksLessInterference)
{
    // With xor remap and span-limited demands, co-runners on a
    // 16-bank DRAM overlap less than on a 2-bank DRAM: aggregate
    // service after locality convergence must be no worse.
    const sim::SocConfig cfg = defaultCfg();
    auto converged_service = [&](int banks) {
        BankedConfig bc;
        bc.banks = banks;
        bc.localityTau = 2048;
        BankedMemoryModel model(cfg, bc);
        MemStepStats stats;
        // Short bursts: span 2 banks each.
        std::vector<MemRequest> reqs;
        for (int i = 0; i < 4; ++i)
            reqs.push_back({i, 2048.0, 0.0, 2.0});
        double sum = 0.0;
        for (int step = 0; step < 100; ++step) {
            const auto g = model.arbitrate(reqs, 512, stats);
            sum = 0.0;
            for (const auto &gr : g)
                sum += gr.dramBytes;
        }
        return sum;
    };
    EXPECT_GE(converged_service(16), converged_service(2) - 1e-6);
}

// ---- banked: feasibility properties ----------------------------------

TEST(BankedModel, PropertyGrantsFeasible)
{
    const sim::SocConfig cfg = defaultCfg();
    BankedMemoryModel model(cfg, BankedConfig());
    Rng rng(77);
    MemStepStats stats;
    for (int trial = 0; trial < 300; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(1, 8));
        const Cycles horizon =
            static_cast<Cycles>(rng.uniformInt(64, 8192));
        std::vector<MemRequest> reqs;
        for (int i = 0; i < n; ++i)
            reqs.push_back({static_cast<int>(rng.uniformInt(0, 40)),
                            rng.uniform(0.0, 1e6),
                            rng.uniform(0.0, 1e6),
                            static_cast<double>(
                                rng.uniformInt(1, 8))});
        const auto g = model.arbitrate(reqs, horizon, stats);
        ASSERT_EQ(g.size(), reqs.size());
        const double q = static_cast<double>(horizon);
        double dram_sum = 0.0, l2_sum = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) {
            EXPECT_GE(g[i].dramBytes, -1e-9);
            EXPECT_LE(g[i].dramBytes, reqs[i].dramBytes + 1e-6);
            EXPECT_GE(g[i].l2Bytes, -1e-9);
            EXPECT_LE(g[i].l2Bytes, reqs[i].l2Bytes + 1e-6);
            dram_sum += g[i].dramBytes;
            l2_sum += g[i].l2Bytes;
        }
        EXPECT_LE(dram_sum, cfg.dramBytesPerCycle * q + 1e-6);
        EXPECT_LE(l2_sum, cfg.l2BytesPerCycle() * q + 1e-6);
    }
}

// ---- banked under both kernels, determinism --------------------------

void
expectScenarioEq(const exp::ScenarioResult &a,
                 const exp::ScenarioResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.metrics.slaRate, b.metrics.slaRate);
    EXPECT_EQ(a.metrics.stp, b.metrics.stp);
    EXPECT_EQ(a.metrics.fairness, b.metrics.fairness);
    EXPECT_EQ(a.simSteps, b.simSteps);
    EXPECT_EQ(a.memTraffic.dramRowHits, b.memTraffic.dramRowHits);
    EXPECT_EQ(a.memTraffic.dramRowMisses,
              b.memTraffic.dramRowMisses);
    ASSERT_EQ(a.memTraffic.bankBytes.size(),
              b.memTraffic.bankBytes.size());
    for (std::size_t i = 0; i < a.memTraffic.bankBytes.size(); ++i)
        EXPECT_EQ(a.memTraffic.bankBytes[i],
                  b.memTraffic.bankBytes[i]);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i)
        EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
}

TEST(BankedKernels, RunsUnderBothKernelsWithTraffic)
{
    workload::TraceConfig trace;
    trace.numTasks = 20;
    trace.seed = 11;

    for (const auto kernel :
         {sim::SimKernel::Quantum, sim::SimKernel::Event}) {
        sim::SocConfig cfg;
        cfg.kernel = kernel;
        cfg.memModel = "banked";
        const auto r = exp::runScenario("moca", trace, cfg);
        EXPECT_EQ(r.metrics.numJobs, 20);
        EXPECT_GT(r.metrics.slaRate, 0.0);
        // The banked model's counters flow through to the result.
        EXPECT_GT(r.memTraffic.dramRowHits +
                      r.memTraffic.dramRowMisses,
                  0u);
        EXPECT_EQ(r.memTraffic.bankBytes.size(), 8u);
        double bank_sum = 0.0;
        for (double b : r.memTraffic.bankBytes)
            bank_sum += b;
        EXPECT_GT(bank_sum, 0.0);
    }
}

TEST(BankedKernels, EventKernelBoundsStepsByLocalityTau)
{
    // The MemStateChange event keeps event-kernel steps from
    // smearing locality decay: with a job stream long enough to
    // idle between arrivals, the event kernel must execute at least
    // cyclesSimulated / locality_tau arbitration rounds.
    workload::TraceConfig trace;
    trace.numTasks = 10;
    trace.seed = 3;

    sim::SocConfig cfg;
    cfg.kernel = sim::SimKernel::Event;
    cfg.memModel = "banked:locality_tau=8192";
    const auto r = exp::runScenario("prema", trace, cfg);
    EXPECT_GE(r.simSteps,
              r.cyclesSimulated / 8192);
}

TEST(BankedKernels, ParallelEqualsSerial)
{
    workload::TraceConfig trace;
    trace.numTasks = 24;
    trace.seed = 9;

    auto run = [&](int jobs) {
        return exp::Experiment()
            .trace(trace)
            .mem("banked:banks=16")
            .policies({"moca", "prema", "planaria"})
            .jobs(jobs)
            .run();
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto *spec : {"moca", "prema", "planaria"})
        expectScenarioEq(serial[spec], parallel[spec]);
}

TEST(BankedKernels, BankCountChangesOutcomes)
{
    // The knob must matter: a 2-bank DRAM under heavy co-location
    // cannot produce the identical trajectory as a 32-bank one.
    workload::TraceConfig trace;
    trace.numTasks = 24;
    trace.seed = 13;
    trace.loadFactor = 1.5;

    sim::SocConfig a;
    a.memModel = "banked:banks=2";
    sim::SocConfig b;
    b.memModel = "banked:banks=32";
    const auto ra = exp::runScenario("moca", trace, a);
    const auto rb = exp::runScenario("moca", trace, b);
    EXPECT_NE(ra.makespan, rb.makespan);
    // More banks -> less bank-level interference -> no later finish.
    EXPECT_LE(rb.makespan, ra.makespan);
}

} // namespace
} // namespace moca::mem
