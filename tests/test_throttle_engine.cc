/**
 * @file
 * Unit and property tests for the MoCA hardware engine (Access
 * Counter + Thresholding Module), including the equivalence of the
 * cycle-accurate step() path and the batched advance() path used by
 * the quantum-stepped simulator.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "moca/hw/throttle_engine.h"

namespace moca::hw {
namespace {

TEST(ThrottleEngine, DisabledGrantsEverything)
{
    ThrottleEngine e;
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(e.step(true));
    EXPECT_EQ(e.stats().accessesGranted, 100u);
    EXPECT_EQ(e.stats().bubblesInserted, 0u);
}

TEST(ThrottleEngine, ThresholdBlocksWithinWindow)
{
    ThrottleEngine e;
    e.configure({100, 10});
    // Burn the reconfiguration dead time.
    for (Cycles i = 0; i < ThrottleEngine::kReconfigCycles; ++i)
        EXPECT_FALSE(e.step(true));

    int granted = 0;
    for (int i = 0; i < 92; ++i) // rest of the 100-cycle window
        granted += e.step(true) ? 1 : 0;
    EXPECT_EQ(granted, 10); // exactly threshold_load grants
}

TEST(ThrottleEngine, WindowRolloverResetsBudget)
{
    ThrottleEngine e;
    e.configure({50, 5});
    std::uint64_t total = 0;
    for (int i = 0; i < 8 + 200; ++i)
        total += e.step(true) ? 1 : 0;
    // 208 cycles touch 5 windows of 50 ([0,50) holds the 8 reconfig
    // dead cycles but still has 42 live ones); each window grants
    // its budget of 5.
    EXPECT_EQ(total, 25u);
    EXPECT_GE(e.stats().windowsElapsed, 4u);
}

TEST(ThrottleEngine, ReconfigurationInsertsDeadCycles)
{
    ThrottleEngine e;
    e.configure({1000, 1000});
    for (Cycles i = 0; i < ThrottleEngine::kReconfigCycles; ++i) {
        EXPECT_TRUE(e.throttled());
        EXPECT_FALSE(e.step(true));
    }
    EXPECT_TRUE(e.step(true));
    EXPECT_EQ(e.stats().reconfigurations, 1u);
}

TEST(ThrottleEngine, AdvanceMatchesUnthrottled)
{
    ThrottleEngine e;
    EXPECT_EQ(e.advance(100, 40), 40u);
    EXPECT_EQ(e.advance(100, 1000), 100u); // at most 1/cycle
}

TEST(ThrottleEngine, AdvanceRespectsWindows)
{
    ThrottleEngine e;
    e.configure({100, 10});
    // 8 reconfig cycles + 92 window cycles -> 10 grants, then the
    // next full window grants another 10.
    EXPECT_EQ(e.advance(100, 1000), 10u);
    EXPECT_EQ(e.advance(100, 1000), 10u);
}

TEST(ThrottleEngine, PeekDoesNotMutate)
{
    ThrottleEngine e;
    e.configure({64, 16});
    const auto before_count = e.windowCount();
    const auto peek1 = e.peekAllowance(200);
    const auto peek2 = e.peekAllowance(200);
    EXPECT_EQ(peek1, peek2);
    EXPECT_EQ(e.windowCount(), before_count);
}

TEST(ThrottleEngine, PeekMatchesAdvance)
{
    Rng rng(123);
    for (int trial = 0; trial < 200; ++trial) {
        ThrottleEngine e;
        const Cycles window = static_cast<Cycles>(
            rng.uniformInt(1, 256));
        const auto thr = static_cast<std::uint64_t>(
            rng.uniformInt(0, 64));
        e.configure({window, thr});
        // Random warm-up.
        e.advance(static_cast<Cycles>(rng.uniformInt(0, 500)),
                  static_cast<std::uint64_t>(rng.uniformInt(0, 500)));
        const Cycles span = static_cast<Cycles>(
            rng.uniformInt(1, 300));
        const auto peek = e.peekAllowance(span);
        const auto granted = e.advance(span, 1'000'000);
        EXPECT_EQ(peek, granted)
            << "window=" << window << " thr=" << thr
            << " span=" << span;
    }
}

/**
 * Property: the batched advance() path grants exactly as many
 * accesses as driving step() cycle-by-cycle with a saturating
 * request stream, for random configurations and spans.
 */
TEST(ThrottleEngine, StepAdvanceEquivalenceSaturating)
{
    Rng rng(77);
    for (int trial = 0; trial < 100; ++trial) {
        const Cycles window = static_cast<Cycles>(
            rng.uniformInt(1, 128));
        const auto thr = static_cast<std::uint64_t>(
            rng.uniformInt(0, 32));
        ThrottleEngine stepper, batcher;
        stepper.configure({window, thr});
        batcher.configure({window, thr});

        for (int seg = 0; seg < 5; ++seg) {
            const Cycles span = static_cast<Cycles>(
                rng.uniformInt(1, 200));
            std::uint64_t step_granted = 0;
            for (Cycles c = 0; c < span; ++c)
                step_granted += stepper.step(true) ? 1 : 0;
            const std::uint64_t batch_granted =
                batcher.advance(span, span);
            EXPECT_EQ(step_granted, batch_granted)
                << "trial " << trial << " seg " << seg;
            EXPECT_EQ(stepper.windowCount(), batcher.windowCount());
        }
        EXPECT_EQ(stepper.stats().accessesGranted,
                  batcher.stats().accessesGranted);
    }
}

/** Property: granted accesses never exceed demand or wall-clock. */
TEST(ThrottleEngine, GrantsBoundedByDemandAndTime)
{
    Rng rng(42);
    ThrottleEngine e;
    e.configure({32, 8});
    for (int i = 0; i < 500; ++i) {
        const Cycles span = static_cast<Cycles>(rng.uniformInt(1, 64));
        const auto want = static_cast<std::uint64_t>(
            rng.uniformInt(0, 80));
        const auto got = e.advance(span, want);
        EXPECT_LE(got, want);
        EXPECT_LE(got, span);
    }
}

/** Long-run average rate equals threshold/window under saturation. */
TEST(ThrottleEngine, SteadyStateRate)
{
    ThrottleEngine e;
    e.configure({1000, 250});
    std::uint64_t granted = 0;
    constexpr Cycles total = 1'000'000;
    granted = e.advance(total, total);
    const double rate = static_cast<double>(granted) / total;
    EXPECT_NEAR(rate, 0.25, 0.001);
}

TEST(ThrottleEngine, ResetClearsState)
{
    ThrottleEngine e;
    e.configure({100, 10});
    e.advance(500, 500);
    e.reset();
    EXPECT_EQ(e.windowCount(), 0u);
    EXPECT_EQ(e.stats().accessesGranted, 0u);
    EXPECT_FALSE(e.throttled());
}

TEST(ThrottleEngine, ZeroThresholdBlocksAll)
{
    ThrottleEngine e;
    e.configure({100, 0});
    EXPECT_EQ(e.advance(1000, 1000), 0u);
}

} // namespace
} // namespace moca::hw
