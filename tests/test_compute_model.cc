/**
 * @file
 * Unit tests for the systolic compute-cycle model: ideal utilization
 * for aligned shapes, padding penalties, multi-tile scaling, and the
 * batch-1 dense behaviour (weight-load bound).
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "sim/compute_model.h"

namespace moca::sim {
namespace {

SocConfig
cfg()
{
    return SocConfig{};
}

TEST(ComputeModel, GemmShapeConv)
{
    const auto l = dnn::Layer::conv("c", 56, 56, 64, 128, 3, 1, 1);
    const GemmShape g = gemmShape(l);
    EXPECT_EQ(g.m, 56ull * 56);
    EXPECT_EQ(g.k, 9ull * 64);
    EXPECT_EQ(g.n, 128ull);
    EXPECT_EQ(g.groups, 1ull);
}

TEST(ComputeModel, GemmShapeGrouped)
{
    const auto l = dnn::Layer::conv("c", 27, 27, 96, 256, 5, 1, 2, 2);
    const GemmShape g = gemmShape(l);
    EXPECT_EQ(g.k, 25ull * 48);
    EXPECT_EQ(g.n, 128ull);
    EXPECT_EQ(g.groups, 2ull);
}

TEST(ComputeModel, AlignedConvNearIdeal)
{
    // K and N multiples of 16, M large: utilization should be high.
    const auto l = dnn::Layer::conv("c", 64, 64, 64, 64, 3, 1, 1);
    const double util = arrayUtilization(l, cfg());
    EXPECT_GT(util, 0.9);
    EXPECT_LE(util, 1.0 + 1e-9);
}

TEST(ComputeModel, RaggedChannelsWasteArray)
{
    // 3 input channels (first layer): K = 27 pads to 2 tiles of 16,
    // wasting 5/32 of the array (util ~ 27/32 = 0.84).
    const auto l = dnn::Layer::conv("c", 224, 224, 3, 64, 3, 1, 1);
    const double util = arrayUtilization(l, cfg());
    EXPECT_LT(util, 0.87);
    EXPECT_GT(util, 0.80);
}

TEST(ComputeModel, DenseBatchOneIsWeightBound)
{
    // FC at batch 1: cycles ~ weight tiles x array dim, far above
    // MACs / peak.
    const auto l = dnn::Layer::dense("fc", 4096, 4096);
    const Cycles c = computeCycles(l, 1, cfg());
    const Cycles ideal = l.macCount() / cfg().tileMacsPerCycle();
    EXPECT_GT(c, 10 * ideal);
}

TEST(ComputeModel, MultiTileSpeedsUpLargeConv)
{
    const auto l = dnn::Layer::conv("c", 56, 56, 256, 256, 3, 1, 1);
    const Cycles c1 = computeCycles(l, 1, cfg());
    const Cycles c4 = computeCycles(l, 4, cfg());
    const Cycles c8 = computeCycles(l, 8, cfg());
    EXPECT_LT(c4, c1);
    EXPECT_LT(c8, c4);
    // Sub-linear scaling: the Amdahl-style serial fraction f bounds
    // the 8-tile speedup at 8 / (1 + 7f).
    const double f = cfg().multiTileSerialFraction;
    const double bound = 8.0 / (1.0 + 7.0 * f);
    EXPECT_NEAR(static_cast<double>(c1) / c8, bound, 0.5);
    EXPECT_LT(static_cast<double>(c1) / c8, 8.0);
}

TEST(ComputeModel, MemLayerCheapButNonzero)
{
    const auto l = dnn::Layer::add("a", 56, 56, 256);
    const Cycles c = computeCycles(l, 1, cfg());
    EXPECT_GE(c, 1u);
    EXPECT_LT(c, 20000u);
}

TEST(ComputeModel, SmallLayersDoNotScale)
{
    // Coordination overheads mean a tiny layer can be *slower* on
    // many tiles than on one — the reason monolithic full-array
    // execution wastes the machine on small networks.
    const auto l = dnn::Layer::conv("c", 13, 13, 64, 64, 3, 1, 1);
    const Cycles c1 = computeCycles(l, 1, cfg());
    const Cycles c8 = computeCycles(l, 8, cfg());
    EXPECT_GT(static_cast<double>(c8),
              0.5 * static_cast<double>(c1));
}

TEST(ComputeModel, LargeLayersScaleDespiteOverheads)
{
    // For heavyweight layers the split still pays off on every
    // model's dominant convolutions.
    for (dnn::ModelId id :
         {dnn::ModelId::ResNet50, dnn::ModelId::YoloV2}) {
        const auto &m = dnn::getModel(id);
        std::uint64_t biggest_macs = 0;
        const dnn::Layer *biggest = nullptr;
        for (const auto &l : m.layers()) {
            if (l.macCount() > biggest_macs) {
                biggest_macs = l.macCount();
                biggest = &l;
            }
        }
        ASSERT_NE(biggest, nullptr);
        const Cycles c1 = computeCycles(*biggest, 1, cfg());
        const Cycles c8 = computeCycles(*biggest, 8, cfg());
        EXPECT_GT(static_cast<double>(c1) / c8, 2.0)
            << m.name() << "/" << biggest->name;
    }
}


TEST(ComputeModel, DepthwiseConvWastesSystolicArray)
{
    // groups == channels: one output channel per group means only one
    // array column does useful work -- the well-known depthwise
    // inefficiency of weight-stationary systolic arrays.
    const auto dw =
        dnn::Layer::conv("dw", 56, 56, 128, 128, 3, 1, 1, 128);
    const double util = arrayUtilization(dw, cfg());
    EXPECT_LT(util, 0.05);
    // The paired pointwise 1x1 is efficient.
    const auto pw = dnn::Layer::conv("pw", 56, 56, 128, 256, 1, 1, 0);
    EXPECT_GT(arrayUtilization(pw, cfg()), 0.5);
}

/** Parameterized sweep: utilization in (0, 1] for every zoo layer. */
class UtilizationSweep
    : public ::testing::TestWithParam<dnn::ModelId>
{
};

TEST_P(UtilizationSweep, UtilizationBounded)
{
    const auto &m = dnn::getModel(GetParam());
    for (const auto &l : m.layers()) {
        if (l.layerClass() != dnn::LayerClass::Compute)
            continue;
        const double u = arrayUtilization(l, cfg());
        EXPECT_GT(u, 0.0) << m.name() << "/" << l.name;
        EXPECT_LE(u, 1.0 + 1e-9) << m.name() << "/" << l.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, UtilizationSweep,
    ::testing::ValuesIn(dnn::allModelIds()),
    [](const ::testing::TestParamInfo<dnn::ModelId> &info) {
        std::string n = dnn::modelIdName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

} // namespace
} // namespace moca::sim
