/**
 * @file
 * Parity and regression tests of the event-driven simulation kernel
 * (SocConfig::kernel == SimKernel::Event) against the quantum kernel:
 * identical solo runs, bounded metric deltas on fig5/fig7-style
 * scenario cells, stall-expiry and throttle-window edge cases,
 * determinism under parallel sweeps, and the exact periodic-tick
 * cadence both kernels must keep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dnn/model_zoo.h"
#include "exp/experiment.h"
#include "exp/oracle.h"
#include "exp/scenario.h"
#include "sim/event_queue.h"
#include "sim/soc.h"

namespace moca {
namespace {

using sim::SimKernel;

sim::SocConfig
kernelCfg(SimKernel k)
{
    sim::SocConfig cfg;
    cfg.kernel = k;
    return cfg;
}

sim::JobSpec
spec(int id, dnn::ModelId model, Cycles dispatch = 0, int priority = 0)
{
    sim::JobSpec s;
    s.id = id;
    s.model = &dnn::getModel(model);
    s.dispatch = dispatch;
    s.priority = priority;
    s.slaLatency = 1'000'000'000;
    return s;
}

workload::TraceConfig
cellTrace(workload::WorkloadSet set, workload::QosLevel qos, int tasks)
{
    workload::TraceConfig t;
    t.set = set;
    t.qos = qos;
    t.numTasks = tasks;
    t.seed = 11;
    return t;
}

double
relDelta(double a, double b)
{
    const double denom = std::max(std::abs(a), std::abs(b));
    return denom > 0.0 ? std::abs(a - b) / denom : 0.0;
}

// --- EventQueue --------------------------------------------------------

TEST(EventQueue, PopsInTimeOrderWithDeterministicTies)
{
    sim::EventQueue q;
    q.push(300, sim::SimEventKind::LayerCompletion, 2);
    q.push(100, sim::SimEventKind::SchedTick);
    q.push(300, sim::SimEventKind::Arrival);
    q.push(300, sim::SimEventKind::LayerCompletion, 1);
    q.push(200, sim::SimEventKind::StallExpiry, 0);
    ASSERT_EQ(q.size(), 5u);

    EXPECT_EQ(q.top().at, 100u);
    EXPECT_EQ(q.pop().kind, sim::SimEventKind::SchedTick);
    EXPECT_EQ(q.pop().kind, sim::SimEventKind::StallExpiry);
    // Equal-time events break ties on kind, then job id.
    EXPECT_EQ(q.pop().kind, sim::SimEventKind::Arrival);
    EXPECT_EQ(q.pop().jobId, 1);
    EXPECT_EQ(q.pop().jobId, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearAndReuse)
{
    sim::EventQueue q;
    q.push(5, sim::SimEventKind::Arrival);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(7, sim::SimEventKind::SchedTick);
    EXPECT_EQ(q.top().at, 7u);
}

namespace {

/** Reference implementation: a plain binary min-heap over the same
 *  (at, kind, jobId) order the calendar queue promises. */
class RefHeap
{
  public:
    void push(Cycles at, sim::SimEventKind kind, int job_id)
    {
        heap_.push_back({at, kind, job_id});
        std::push_heap(heap_.begin(), heap_.end(), later);
    }
    sim::SimEvent pop()
    {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        const sim::SimEvent e = heap_.back();
        heap_.pop_back();
        return e;
    }
    bool empty() const { return heap_.empty(); }

  private:
    static bool later(const sim::SimEvent &a, const sim::SimEvent &b)
    {
        return b < a;
    }
    std::vector<sim::SimEvent> heap_;
};

/** Deterministic 64-bit LCG (tests must not depend on libc rand). */
std::uint64_t
lcg(std::uint64_t &s)
{
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 11;
}

} // anonymous namespace

TEST(EventQueue, DifferentialPopOrderMatchesReferenceHeap)
{
    // Random interleaved push/pop streams: the calendar queue's pop
    // sequence must be identical to the reference heap's, element by
    // element, across bucket wraps and resizes.
    for (std::uint64_t seed : {1ull, 42ull, 1337ull}) {
        std::uint64_t s = seed * 2654435761ull + 12345;
        sim::EventQueue q(512);
        RefHeap ref;
        Cycles base = 0;
        int pending = 0;
        for (int round = 0; round < 5000; ++round) {
            const bool do_push =
                pending == 0 || lcg(s) % 3 != 0;
            if (do_push) {
                // Mostly near-future events, occasionally a far
                // outlier (exercises the min-scan fallback).
                const Cycles at = base + (lcg(s) % 100 == 0
                    ? 512 * (lcg(s) % 100000)
                    : lcg(s) % (512 * 8));
                const auto kind = static_cast<sim::SimEventKind>(
                    lcg(s) % sim::kNumSimEventKinds);
                const int job = static_cast<int>(lcg(s) % 32) - 1;
                q.push(at, kind, job);
                ref.push(at, kind, job);
                ++pending;
            } else {
                const sim::SimEvent a = q.pop();
                const sim::SimEvent b = ref.pop();
                EXPECT_EQ(a.at, b.at);
                EXPECT_EQ(a.kind, b.kind);
                EXPECT_EQ(a.jobId, b.jobId);
                base = std::max(base, a.at); // Time moves forward.
                --pending;
            }
        }
        while (!ref.empty()) {
            const sim::SimEvent a = q.pop();
            const sim::SimEvent b = ref.pop();
            ASSERT_EQ(a.at, b.at);
            ASSERT_EQ(a.kind, b.kind);
            ASSERT_EQ(a.jobId, b.jobId);
        }
        EXPECT_TRUE(q.empty());
    }
}

TEST(EventQueue, InvalidateDropsStaleAndKeepsLive)
{
    sim::EventQueue q(512);
    q.push(100, sim::SimEventKind::StallExpiry, 3);
    q.push(200, sim::SimEventKind::StallExpiry, 3);
    q.push(150, sim::SimEventKind::LayerCompletion, 3);
    q.push(120, sim::SimEventKind::StallExpiry, 4);
    ASSERT_EQ(q.size(), 4u);

    // Drop job 3's stall events only: size reflects live events and
    // the stale ones are skipped on pop.
    q.invalidate(sim::SimEventKind::StallExpiry, 3);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.top().jobId, 4);

    // A push after the invalidation is live again (new generation).
    q.push(300, sim::SimEventKind::StallExpiry, 3);
    EXPECT_EQ(q.size(), 3u);

    EXPECT_EQ(q.pop().jobId, 4);
    EXPECT_EQ(q.pop().kind, sim::SimEventKind::LayerCompletion);
    const sim::SimEvent last = q.pop();
    EXPECT_EQ(last.at, 300u);
    EXPECT_EQ(last.jobId, 3);
    EXPECT_TRUE(q.empty());

    // Invalidating with nothing pending is a harmless no-op.
    q.invalidate(sim::SimEventKind::Arrival);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InvalidatedTopRecomputes)
{
    sim::EventQueue q(512);
    q.push(100, sim::SimEventKind::LayerCompletion, 1);
    q.push(900, sim::SimEventKind::SchedTick);
    EXPECT_EQ(q.top().at, 100u);
    // Invalidate the cached minimum: top must settle on the tick.
    q.invalidate(sim::SimEventKind::LayerCompletion, 1);
    EXPECT_EQ(q.top().at, 900u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, BucketWrapAndGrow)
{
    // More events than 2x the initial bucket count forces a resize;
    // days far beyond the bucket count force index wrap-around.
    sim::EventQueue q(512);
    const std::size_t initial = q.buckets();
    std::vector<Cycles> ats;
    for (Cycles i = 0; i < 200; ++i) {
        const Cycles at = (i * 37) % 199 * 512 * 3 + i;
        ats.push_back(at);
        q.push(at, sim::SimEventKind::Arrival,
               static_cast<int>(i));
    }
    EXPECT_GT(q.buckets(), initial);
    std::sort(ats.begin(), ats.end());
    for (Cycles expect : ats)
        EXPECT_EQ(q.pop().at, expect);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FarFutureGapUsesMinScan)
{
    // A lone event many calendar years past now: pop must find it
    // without walking every intervening day.
    sim::EventQueue q(512);
    q.push(512ull * 1000 * 1000, sim::SimEventKind::SchedTick);
    EXPECT_EQ(q.top().at, 512ull * 1000 * 1000);
    q.push(64, sim::SimEventKind::Arrival);
    EXPECT_EQ(q.pop().at, 64u);
    EXPECT_EQ(q.pop().at, 512ull * 1000 * 1000);
    EXPECT_TRUE(q.empty());
}

// --- Solo parity -------------------------------------------------------

TEST(EventKernel, IsolatedLatencyMatchesQuantumKernel)
{
    // A lone job sees no contention: both kernels walk the same layer
    // sequence on the same quantum grid, so the finish cycle may
    // differ only by the grid rounding of layer tails.
    for (dnn::ModelId id : {dnn::ModelId::Kws, dnn::ModelId::SqueezeNet,
                            dnn::ModelId::ResNet50}) {
        const Cycles q = exp::isolatedLatency(
            id, 8, kernelCfg(SimKernel::Quantum));
        const Cycles e = exp::isolatedLatency(
            id, 8, kernelCfg(SimKernel::Event));
        const auto diff = q > e ? q - e : e - q;
        EXPECT_LE(diff, 2 * sim::SocConfig().quantum)
            << dnn::modelIdName(id) << " quantum=" << q
            << " event=" << e;
    }
}

TEST(EventKernel, SoloTraceEventSequenceMatches)
{
    // Deterministic solo run: the recorded lifecycle sequence (kinds
    // and job ids) must be identical between kernels.
    std::vector<std::pair<sim::TraceEventKind, int>> seq[2];
    int i = 0;
    for (SimKernel k : {SimKernel::Quantum, SimKernel::Event}) {
        const sim::SocConfig cfg = kernelCfg(k);
        exp::SoloPolicy policy(4);
        sim::Soc soc(cfg, policy);
        soc.trace().enable();
        soc.addJob(spec(0, dnn::ModelId::SqueezeNet));
        soc.addJob(spec(1, dnn::ModelId::Kws, 700'000));
        soc.run();
        for (const auto &e : soc.trace().events())
            if (e.kind != sim::TraceEventKind::SchedTick)
                seq[i].push_back({e.kind, e.jobId});
        ++i;
    }
    EXPECT_EQ(seq[0], seq[1]);
}

// --- Scenario-cell parity (fig5 / fig7 grids) --------------------------

TEST(EventKernel, Fig5CellMetricsMatchWithinBound)
{
    // Fig5/fig7-style cells under every built-in policy on identical
    // traces.  The non-throttling baselines make all their decisions
    // at arrivals, completions, ticks, and block boundaries — points
    // both kernels hit on the same grid — so their metrics must match
    // exactly.  MoCA's throttle pacing interacts with step lengths
    // (intra-window budget exhaustion is resolved per step), so its
    // metrics may drift by a small bounded amount; measured deltas on
    // these cells are <= 0.05 sla / 0.09 stp / 0.06 makespan.
    const std::vector<std::pair<workload::WorkloadSet,
                                workload::QosLevel>> cells = {
        {workload::WorkloadSet::C, workload::QosLevel::Medium},
        {workload::WorkloadSet::A, workload::QosLevel::Light},
        {workload::WorkloadSet::B, workload::QosLevel::Hard},
    };
    for (const auto &[set, qos] : cells) {
        const auto t = cellTrace(set, qos, 60);
        const sim::SocConfig qcfg = kernelCfg(SimKernel::Quantum);
        const sim::SocConfig ecfg = kernelCfg(SimKernel::Event);
        const auto stream = exp::makeTrace(t, qcfg);
        for (const auto &policy : exp::allPolicySpecs()) {
            const auto rq = exp::runTrace(policy, stream, t, qcfg);
            const auto re = exp::runTrace(policy, stream, t, ecfg);
            const std::string what = std::string(policy) + " " +
                workload::workloadSetName(set) + " " +
                workload::qosLevelName(qos);
            const bool throttling = policy == "moca";
            const double sla_bound = throttling ? 0.10 : 0.005;
            const double rel_bound = throttling ? 0.15 : 0.005;

            ASSERT_EQ(rq.jobs.size(), re.jobs.size()) << what;
            EXPECT_LE(std::abs(rq.metrics.slaRate -
                               re.metrics.slaRate), sla_bound)
                << what;
            EXPECT_LE(relDelta(rq.metrics.stp, re.metrics.stp),
                      rel_bound)
                << what << " stp " << rq.metrics.stp << " vs "
                << re.metrics.stp;
            EXPECT_LE(relDelta(static_cast<double>(rq.makespan),
                               static_cast<double>(re.makespan)),
                      rel_bound)
                << what << " makespan " << rq.makespan << " vs "
                << re.makespan;
            // The event kernel must do far fewer rounds.
            EXPECT_LT(re.simSteps * 4, rq.simSteps) << what;
        }
    }
}

TEST(EventKernel, StepCountScalesWithEventsNotCycles)
{
    // A lone long job: the quantum kernel pays one round per quantum,
    // the event kernel one round per layer/tick.  The ratio is the
    // architectural speedup and must be substantial.
    const auto t = cellTrace(workload::WorkloadSet::B,
                             workload::QosLevel::Medium, 20);
    const sim::SocConfig qcfg = kernelCfg(SimKernel::Quantum);
    const auto stream = exp::makeTrace(t, qcfg);
    const auto rq = exp::runTrace("moca", stream, t, qcfg);
    const auto re = exp::runTrace("moca", stream, t,
                                  kernelCfg(SimKernel::Event));
    EXPECT_GT(static_cast<double>(rq.simSteps) /
                  static_cast<double>(re.simSteps),
              3.0)
        << "quantum steps " << rq.simSteps << ", event steps "
        << re.simSteps;
}

// --- Stall-expiry edge case --------------------------------------------

TEST(EventKernel, MidQuantumStallExpiryMatchesQuantumKernel)
{
    // A migration stall ends mid-quantum (migrationCycles is not a
    // quantum multiple): both kernels must resume the job at the same
    // grid point and account identical stall cycles.
    for (Cycles migration : {999'983u, 1'000'000u}) {
        Cycles finish[2];
        Cycles stalled[2];
        int i = 0;
        for (SimKernel k : {SimKernel::Quantum, SimKernel::Event}) {
            sim::SocConfig cfg = kernelCfg(k);
            cfg.migrationCycles = migration;

            struct Resizer : exp::SoloPolicy
            {
                bool done = false;
                Resizer() : exp::SoloPolicy(8) {}
                void
                schedule(sim::Soc &soc, sim::SchedEvent ev) override
                {
                    exp::SoloPolicy::schedule(soc, ev);
                    if (!done && !soc.runningJobs().empty() &&
                        soc.now() > 0) {
                        done = true;
                        soc.resizeJob(soc.runningJobs()[0], 4);
                    }
                }
            } policy;

            sim::Soc soc(cfg, policy);
            soc.addJob(spec(0, dnn::ModelId::SqueezeNet));
            soc.run();
            finish[i] = soc.results()[0].finish;
            stalled[i] = soc.results()[0].stallCycles;
            ++i;
        }
        EXPECT_EQ(finish[0], finish[1]) << "migration " << migration;
        EXPECT_EQ(stalled[0], stalled[1]) << "migration " << migration;
        EXPECT_GE(stalled[0], migration);
    }
}

// --- Throttle-window edge case -----------------------------------------

TEST(EventKernel, BindingThrottleWindowPacesBothKernelsAlike)
{
    // A hard throttle whose window is not a quantum multiple: the
    // event kernel must stop at window rollovers (ThrottleWindow
    // events) instead of smearing the budget over long steps.
    struct ThrottlingSolo : exp::SoloPolicy
    {
        hw::ThrottleConfig tcfg;
        ThrottlingSolo() : exp::SoloPolicy(8) {}
        void
        schedule(sim::Soc &soc, sim::SchedEvent ev) override
        {
            exp::SoloPolicy::schedule(soc, ev);
            for (int id : soc.runningJobs())
                if (soc.job(id).throttle.stats().reconfigurations == 0)
                    soc.configureThrottle(id, tcfg);
        }
    };

    Cycles latency[2];
    int i = 0;
    for (SimKernel k : {SimKernel::Quantum, SimKernel::Event}) {
        ThrottlingSolo policy;
        policy.tcfg = {1000, 60}; // 60 beats per 1000-cycle window.
        sim::Soc soc(kernelCfg(k), policy);
        soc.addJob(spec(0, dnn::ModelId::SqueezeNet));
        soc.run();
        latency[i++] = soc.results()[0].latency();
    }

    // Unthrottled reference: the throttle must bite under both
    // kernels, and the two paced latencies must agree closely.
    const Cycles freerun = exp::isolatedLatency(
        dnn::ModelId::SqueezeNet, 8, kernelCfg(SimKernel::Quantum));
    EXPECT_GT(latency[0], freerun + freerun / 10);
    EXPECT_GT(latency[1], freerun + freerun / 10);
    EXPECT_LE(relDelta(static_cast<double>(latency[0]),
                       static_cast<double>(latency[1])), 0.02)
        << "quantum " << latency[0] << " event " << latency[1];
}

// --- Determinism under parallel sweeps ---------------------------------

TEST(EventKernel, ParallelSweepBitIdenticalToSerial)
{
    const auto t = cellTrace(workload::WorkloadSet::C,
                             workload::QosLevel::Medium, 40);
    auto build = [&](int jobs) {
        return exp::Experiment()
            .kernel(SimKernel::Event)
            .trace(t)
            .policies({"moca", "prema", "static", "planaria"})
            .jobs(jobs)
            .run();
    };
    const auto serial = build(1);
    const auto parallel = build(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &policy : exp::allPolicySpecs()) {
        EXPECT_EQ(serial[policy].metrics.slaRate,
                  parallel[policy].metrics.slaRate) << policy;
        EXPECT_EQ(serial[policy].metrics.stp,
                  parallel[policy].metrics.stp) << policy;
        EXPECT_EQ(serial[policy].makespan, parallel[policy].makespan)
            << policy;
        EXPECT_EQ(serial[policy].simSteps, parallel[policy].simSteps)
            << policy;
        // Per-job bit-determinism: every completion record must match,
        // not just the aggregates.
        const auto &sj = serial[policy].jobs;
        const auto &pj = parallel[policy].jobs;
        ASSERT_EQ(sj.size(), pj.size()) << policy;
        for (std::size_t i = 0; i < sj.size(); ++i) {
            EXPECT_EQ(sj[i].spec.id, pj[i].spec.id) << policy;
            EXPECT_EQ(sj[i].firstStart, pj[i].firstStart) << policy;
            EXPECT_EQ(sj[i].finish, pj[i].finish) << policy;
            EXPECT_EQ(sj[i].dramBytesMoved, pj[i].dramBytesMoved)
                << policy;
            EXPECT_EQ(sj[i].stallCycles, pj[i].stallCycles) << policy;
        }
    }
}

// --- Periodic tick cadence (regression for the late-tick bug) ----------

TEST(TickCadence, PeriodicTickFiresOnExactCadenceUnderBothKernels)
{
    // schedPeriod is deliberately not a quantum multiple: before the
    // clamp fix the tick drifted by up to a quantum per period.
    for (SimKernel k : {SimKernel::Quantum, SimKernel::Event}) {
        sim::SocConfig cfg = kernelCfg(k);
        cfg.schedPeriod = 100'000; // 100000 % 512 != 0
        exp::SoloPolicy policy(4);
        sim::Soc soc(cfg, policy);
        soc.trace().enable();
        soc.addJob(spec(0, dnn::ModelId::SqueezeNet));
        soc.addJob(spec(1, dnn::ModelId::SqueezeNet, 1'300'000));
        soc.run();

        std::size_t ticks = 0;
        for (const auto &e : soc.trace().events()) {
            if (e.kind != sim::TraceEventKind::SchedTick)
                continue;
            EXPECT_EQ(e.cycle % cfg.schedPeriod, 0u)
                << simKernelName(k) << " tick at " << e.cycle;
            ++ticks;
        }
        // One tick per period from 0 through the makespan.
        EXPECT_EQ(ticks, soc.now() / cfg.schedPeriod + 1)
            << simKernelName(k);
    }
}

} // namespace
} // namespace moca
