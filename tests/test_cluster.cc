/**
 * @file
 * Cluster fleet simulator tests: dispatcher registry grammar and
 * did-you-mean errors, built-in placement strategies, open-loop
 * workload synthesis determinism, the Soc resumable-stepping API, the
 * cluster(1)+rr == single-SoC equivalence contract, and bit-identical
 * cluster determinism across runs and worker counts.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/workload.h"
#include "exp/experiment.h"
#include "exp/oracle.h"
#include "exp/scenario.h"
#include "sim/soc.h"

using namespace moca;
using cluster::ClusterConfig;
using cluster::ClusterResult;
using cluster::ClusterTask;
using cluster::DispatcherRegistry;
using cluster::SocLoad;
using cluster::SynthConfig;

namespace {

sim::SocConfig
testSoc(sim::SimKernel kernel = sim::SimKernel::Quantum)
{
    sim::SocConfig cfg;
    cfg.kernel = kernel;
    return cfg;
}

workload::TraceConfig
testTrace(int tasks, std::uint64_t seed)
{
    workload::TraceConfig tc;
    tc.set = workload::WorkloadSet::A;
    tc.qos = workload::QosLevel::Medium;
    tc.numTasks = tasks;
    tc.seed = seed;
    return tc;
}

SynthConfig
testSynth(int tasks, int fleet_tiles, std::uint64_t seed)
{
    SynthConfig synth;
    synth.numTasks = tasks;
    synth.set = workload::WorkloadSet::A;
    synth.fleetTiles = fleet_tiles;
    synth.seed = seed;
    return synth;
}

std::vector<ClusterTask>
synthTasks(const SynthConfig &synth, const sim::SocConfig &cfg)
{
    return cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
        return exp::isolatedLatency(id, 1, cfg);
    });
}

/** Field-by-field exact comparison of two cluster results. */
void
expectIdentical(const ClusterResult &a, const ClusterResult &b)
{
    EXPECT_EQ(a.numTasks, b.numTasks);
    EXPECT_EQ(a.slaRate, b.slaRate);
    EXPECT_EQ(a.slaRateHigh, b.slaRateHigh);
    EXPECT_EQ(a.latency.p50, b.latency.p50);
    EXPECT_EQ(a.latency.p95, b.latency.p95);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.normLatency.p99, b.normLatency.p99);
    EXPECT_EQ(a.stp, b.stp);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.balanceCv, b.balanceCv);
    EXPECT_EQ(a.simSteps, b.simSteps);
    ASSERT_EQ(a.perSoc.size(), b.perSoc.size());
    for (std::size_t i = 0; i < a.perSoc.size(); ++i) {
        EXPECT_EQ(a.perSoc[i].tasks, b.perSoc[i].tasks);
        EXPECT_EQ(a.perSoc[i].makespan, b.perSoc[i].makespan);
        EXPECT_EQ(a.perSoc[i].metrics.slaRate,
                  b.perSoc[i].metrics.slaRate);
        EXPECT_EQ(a.perSoc[i].metrics.stp, b.perSoc[i].metrics.stp);
    }
}

} // namespace

// --- Dispatcher registry ----------------------------------------------

TEST(DispatcherRegistry, BuiltinsRegisteredInOrder)
{
    const auto names = DispatcherRegistry::instance().names();
    const std::vector<std::string> expected = {
        "rr", "random", "least-loaded", "p2c", "qos-aware"};
    ASSERT_GE(names.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(names[i], expected[i]);
    for (const auto &name : expected)
        EXPECT_TRUE(DispatcherRegistry::instance().contains(name));
}

TEST(DispatcherRegistry, UnknownNameDiesWithSuggestion)
{
    EXPECT_DEATH(
        DispatcherRegistry::instance().validate("leest-loaded"),
        "did you mean 'least-loaded'");
    EXPECT_DEATH(DispatcherRegistry::instance().validate("nonsense"),
                 "known dispatchers: rr, random, least-loaded, p2c, "
                 "qos-aware");
}

TEST(DispatcherRegistry, UnknownParamDiesListingSchema)
{
    EXPECT_DEATH(
        DispatcherRegistry::instance().validate("rr:bogus=1"),
        "no parameter 'bogus'");
    EXPECT_DEATH(
        DispatcherRegistry::instance().validate("qos-aware:by=depth"),
        "declared parameters: prio_min, hard_qos");
    EXPECT_DEATH(
        (void)DispatcherRegistry::instance().make(
            "least-loaded:by=queue", 4, 1),
        "expected depth or work");
    // validate() rejects bad parameter *values* up front too (no
    // SoC-configuration dependence, unlike policy specs).
    EXPECT_DEATH(
        DispatcherRegistry::instance().validate(
            "least-loaded:by=depht"),
        "expected depth or work");
}

TEST(DispatcherRegistry, ListTextMentionsEveryBuiltin)
{
    const std::string text =
        DispatcherRegistry::instance().listText();
    for (const auto &name : DispatcherRegistry::instance().names())
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

// --- Built-in placement strategies ------------------------------------

namespace {

std::vector<SocLoad>
uniformLoads(int n)
{
    std::vector<SocLoad> loads(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        loads[static_cast<std::size_t>(i)].socIdx = i;
        loads[static_cast<std::size_t>(i)].numTiles = 8;
        loads[static_cast<std::size_t>(i)].freeTiles = 8;
    }
    return loads;
}

ClusterTask
taskWithPriority(int priority)
{
    ClusterTask t;
    t.priority = priority;
    return t;
}

} // namespace

TEST(Dispatchers, RoundRobinCycles)
{
    auto d = DispatcherRegistry::instance().make("rr", 3, 1);
    const auto loads = uniformLoads(3);
    const ClusterTask t;
    EXPECT_EQ(d->place(t, loads), 0);
    EXPECT_EQ(d->place(t, loads), 1);
    EXPECT_EQ(d->place(t, loads), 2);
    EXPECT_EQ(d->place(t, loads), 0);
}

TEST(Dispatchers, LeastLoadedPicksShortestQueue)
{
    auto d = DispatcherRegistry::instance().make("least-loaded", 3, 1);
    auto loads = uniformLoads(3);
    loads[0].waiting = 4;
    loads[1].waiting = 1;
    loads[2].waiting = 2;
    EXPECT_EQ(d->place(ClusterTask(), loads), 1);
    // Ties break toward the lower index.
    loads[1].waiting = 2;
    EXPECT_EQ(d->place(ClusterTask(), loads), 1);
    loads[1].waiting = 9;
    loads[2].waiting = 9;
    loads[0].waiting = 9;
    EXPECT_EQ(d->place(ClusterTask(), loads), 0);
}

TEST(Dispatchers, LeastLoadedByWorkUsesMacs)
{
    auto d = DispatcherRegistry::instance().make(
        "least-loaded:by=work", 2, 1);
    auto loads = uniformLoads(2);
    loads[0].waiting = 0;
    loads[0].outstandingMacs = 5e9;
    loads[1].waiting = 7; // Deeper queue but less work.
    loads[1].outstandingMacs = 1e9;
    EXPECT_EQ(d->place(ClusterTask(), loads), 1);
}

TEST(Dispatchers, PowerOfTwoIsSeededAndDeterministic)
{
    auto loads = uniformLoads(8);
    auto a = DispatcherRegistry::instance().make("p2c", 8, 42);
    auto b = DispatcherRegistry::instance().make("p2c", 8, 42);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a->place(ClusterTask(), loads),
                  b->place(ClusterTask(), loads));
}

TEST(Dispatchers, QosAwareRoutesCriticalToLeastContended)
{
    auto d = DispatcherRegistry::instance().make("qos-aware", 3, 1);
    auto loads = uniformLoads(3);
    loads[0].running = 4;
    loads[1].running = 1;
    loads[2].running = 3;
    // Critical (p-High) tasks go to the fewest co-runners...
    EXPECT_EQ(d->place(taskWithPriority(11), loads), 1);
    EXPECT_EQ(d->place(taskWithPriority(9), loads), 1);
    // ... bulk traffic round-robins regardless of load.
    EXPECT_EQ(d->place(taskWithPriority(0), loads), 0);
    EXPECT_EQ(d->place(taskWithPriority(3), loads), 1);
    EXPECT_EQ(d->place(taskWithPriority(0), loads), 2);
}

// --- Open-loop workload synthesis -------------------------------------

TEST(ClusterWorkload, SynthesisIsDeterministic)
{
    const sim::SocConfig cfg = testSoc();
    for (const auto process :
         {cluster::ArrivalProcess::Poisson,
          cluster::ArrivalProcess::Mmpp,
          cluster::ArrivalProcess::Diurnal}) {
        SynthConfig synth = testSynth(500, 32, 7);
        synth.process = process;
        const auto a = synthTasks(synth, cfg);
        const auto b = synthTasks(synth, cfg);
        ASSERT_EQ(a.size(), 500u);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].arrival, b[i].arrival);
            EXPECT_EQ(a[i].model, b[i].model);
            EXPECT_EQ(a[i].priority, b[i].priority);
            EXPECT_EQ(a[i].qos, b[i].qos);
            EXPECT_EQ(a[i].slaLatency, b[i].slaLatency);
        }
    }
}

TEST(ClusterWorkload, TasksAreSortedWithDenseIds)
{
    const sim::SocConfig cfg = testSoc();
    SynthConfig synth = testSynth(300, 16, 3);
    synth.process = cluster::ArrivalProcess::Mmpp;
    const auto tasks = synthTasks(synth, cfg);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(tasks[i].id, static_cast<int>(i));
        if (i > 0) {
            EXPECT_GE(tasks[i].arrival, tasks[i - 1].arrival);
        }
    }
}

TEST(ClusterWorkload, QosSharesAreRespected)
{
    const sim::SocConfig cfg = testSoc();
    SynthConfig synth = testSynth(200, 16, 3);
    synth.qosLightShare = 1.0;
    synth.qosMediumShare = 0.0;
    synth.qosHardShare = 0.0;
    for (const auto &t : synthTasks(synth, cfg))
        EXPECT_EQ(t.qos, workload::QosLevel::Light);
}

TEST(ClusterWorkload, ProcessesShapeArrivals)
{
    // Same seed, same rate: the three processes must produce
    // different streams, and MMPP must be burstier than Poisson
    // (higher squared coefficient of variation of inter-arrivals).
    const sim::SocConfig cfg = testSoc();
    SynthConfig synth = testSynth(2000, 16, 11);
    const auto poisson = synthTasks(synth, cfg);
    synth.process = cluster::ArrivalProcess::Mmpp;
    const auto mmpp = synthTasks(synth, cfg);

    const auto gaps = [](const std::vector<ClusterTask> &tasks) {
        StatAccum acc;
        for (std::size_t i = 1; i < tasks.size(); ++i)
            acc.add(static_cast<double>(tasks[i].arrival -
                                        tasks[i - 1].arrival));
        return acc;
    };
    const auto cv2 = [](const StatAccum &acc) {
        return acc.variance() / (acc.mean() * acc.mean());
    };
    const StatAccum pg = gaps(poisson), mg = gaps(mmpp);
    EXPECT_GT(cv2(mg), 1.5 * cv2(pg));
    // ... while the long-run rate stays calibrated to the load
    // factor (the burst state borrows rate from the base state).
    EXPECT_NEAR(mg.mean(), pg.mean(), 0.15 * pg.mean());

    // burstDuty=0 disables bursts outright: plain Poisson at the
    // calibrated rate, not a permanently-boosted stream.
    synth.burstDuty = 0.0;
    const StatAccum ng = gaps(synthTasks(synth, cfg));
    EXPECT_NEAR(ng.mean(), pg.mean(), 0.15 * pg.mean());
    EXPECT_LT(cv2(ng), 1.3);
}

// --- Soc resumable stepping -------------------------------------------

TEST(SocStepping, HorizonBoundsTimeAndInjectionResumes)
{
    const sim::SocConfig cfg = testSoc();
    exp::SoloPolicy policy(cfg.numTiles);
    sim::Soc soc(cfg, policy);

    const dnn::Model &model = dnn::getModel(dnn::ModelId::Kws);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &model;
    spec.dispatch = 0;
    soc.addJob(spec);

    soc.beginRun();
    const Cycles horizon = 10'000;
    while (!soc.done() && soc.now() < horizon)
        soc.stepOnce(horizon);
    EXPECT_LE(soc.now(), horizon);

    // Inject a second job mid-run at the exact horizon cycle.
    spec.id = 1;
    spec.dispatch = horizon;
    soc.injectJob(spec);
    while (!soc.done())
        soc.stepOnce();
    soc.finishRun();

    ASSERT_EQ(soc.results().size(), 2u);
    EXPECT_GE(soc.results()[1].firstStart, horizon);
}

TEST(SocStepping, MisuseDies)
{
    const sim::SocConfig cfg = testSoc();
    exp::SoloPolicy policy(cfg.numTiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &dnn::getModel(dnn::ModelId::Kws);
    EXPECT_DEATH(soc.stepOnce(), "before beginRun");
    EXPECT_DEATH(soc.injectJob(spec), "before beginRun");
}

// --- cluster(1) + rr == the single-SoC scenario path ------------------

TEST(ClusterEquivalence, OneSocRrReproducesSingleSocMetrics)
{
    for (const auto kernel :
         {sim::SimKernel::Quantum, sim::SimKernel::Event}) {
        for (const std::string policy : {"moca", "prema"}) {
            const sim::SocConfig cfg = testSoc(kernel);
            const workload::TraceConfig tc = testTrace(40, 5);
            const auto stream = exp::makeTrace(tc, cfg);
            const auto single =
                exp::runTrace(policy, stream, tc, cfg);

            ClusterConfig cc = ClusterConfig::homogeneous(1, cfg);
            cc.policy = policy;
            cc.dispatcher = "rr";
            const auto fleet = cluster::runCluster(
                cc, cluster::tasksFromJobSpecs(stream));

            // Metric-identical, not merely close: the cluster loop
            // must replay the very same kernel steps.
            EXPECT_EQ(fleet.perSoc[0].metrics.slaRate,
                      single.metrics.slaRate)
                << policy << " " << simKernelName(kernel);
            EXPECT_EQ(fleet.perSoc[0].metrics.stp,
                      single.metrics.stp);
            EXPECT_EQ(fleet.perSoc[0].metrics.fairness,
                      single.metrics.fairness);
            EXPECT_EQ(fleet.perSoc[0].metrics.meanNormLatency,
                      single.metrics.meanNormLatency);
            EXPECT_EQ(fleet.makespan, single.makespan);
            EXPECT_EQ(fleet.simSteps, single.simSteps);
            EXPECT_EQ(fleet.slaRate, single.metrics.slaRate);
        }
    }
}

// --- Cluster determinism ----------------------------------------------

TEST(ClusterDeterminism, RepeatedRunsAreBitIdentical)
{
    const sim::SocConfig cfg = testSoc(sim::SimKernel::Event);
    const auto tasks = synthTasks(testSynth(300, 4 * 8, 21), cfg);
    for (const std::string dispatcher :
         {"rr", "random", "least-loaded", "p2c", "qos-aware"}) {
        ClusterConfig cc = ClusterConfig::homogeneous(4, cfg);
        cc.policy = "moca";
        cc.dispatcher = dispatcher;
        cc.dispatcherSeed = 9;
        const auto a = cluster::runCluster(cc, tasks);
        const auto b = cluster::runCluster(cc, tasks);
        expectIdentical(a, b);
    }
}

TEST(ClusterDeterminism, FleetExperimentIdenticalAcrossJobs)
{
    // Same seed + same --jobs contract, and jobs=1 vs jobs=4: the
    // policy-level parallelism must not perturb any fleet result.
    const auto run = [&](int jobs) {
        return exp::Experiment()
            .soc(testSoc(sim::SimKernel::Event))
            .cluster(4)
            .dispatcher("least-loaded")
            .fleetWorkload(testSynth(250, 0, 17))
            .policies({"moca", "prema", "planaria"})
            .jobs(jobs)
            .runFleet();
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    ASSERT_EQ(serial.size(), 3u);
    for (const std::string policy : {"moca", "prema", "planaria"}) {
        ASSERT_TRUE(serial.has(policy));
        expectIdentical(serial[policy], parallel[policy]);
    }
}

// --- Fleet behaviour --------------------------------------------------

TEST(Cluster, FleetCompletesAllTasksAndBalances)
{
    const sim::SocConfig cfg = testSoc(sim::SimKernel::Event);
    const auto tasks = synthTasks(testSynth(200, 4 * 8, 13), cfg);
    ClusterConfig cc = ClusterConfig::homogeneous(4, cfg);
    cc.policy = "moca";
    cc.dispatcher = "rr";
    const auto res = cluster::runCluster(cc, tasks);

    EXPECT_EQ(res.numSocs, 4);
    EXPECT_EQ(res.numTasks, 200u);
    int placed = 0;
    for (const auto &share : res.perSoc)
        placed += share.tasks;
    EXPECT_EQ(placed, 200);
    // 200 tasks round-robin over 4 SoCs: exactly 50 each.
    for (const auto &share : res.perSoc)
        EXPECT_EQ(share.tasks, 50);
    EXPECT_EQ(res.balanceCv, 0.0);
    EXPECT_GE(res.slaRate, 0.0);
    EXPECT_LE(res.slaRate, 1.0);
    EXPECT_LE(res.latency.p50, res.latency.p95);
    EXPECT_LE(res.latency.p95, res.latency.p99);
    EXPECT_GT(res.stp, 0.0);
    EXPECT_GT(res.makespan, 0u);
}

TEST(Cluster, MoreSocsServeOpenLoopTrafficBetter)
{
    // The same 300-task stream offered to fleets of 2 and 8 SoCs:
    // the larger fleet must cut the p99 latency.
    const sim::SocConfig cfg = testSoc(sim::SimKernel::Event);
    SynthConfig synth = testSynth(300, 2 * 8, 19);
    const auto tasks = synthTasks(synth, cfg);

    const auto run = [&](int n) {
        ClusterConfig cc = ClusterConfig::homogeneous(n, cfg);
        cc.policy = "moca";
        cc.dispatcher = "least-loaded";
        return cluster::runCluster(cc, tasks);
    };
    const auto small = run(2);
    const auto big = run(8);
    EXPECT_LT(big.latency.p99, small.latency.p99);
    EXPECT_GE(big.slaRate, small.slaRate);
}

TEST(Cluster, HeterogeneousFleetRuns)
{
    const sim::SocConfig cfg = testSoc(sim::SimKernel::Event);
    sim::SocConfig small = cfg;
    small.numTiles = 4;
    ClusterConfig cc;
    cc.socs = {cfg, small};
    cc.policy = "moca";
    cc.dispatcher = "least-loaded";
    const auto tasks = synthTasks(testSynth(120, 12, 23), cfg);
    const auto res = cluster::runCluster(cc, tasks);
    EXPECT_EQ(res.numTasks, 120u);
    EXPECT_EQ(res.perSoc.size(), 2u);
}

TEST(Cluster, UnsortedTasksDie)
{
    const sim::SocConfig cfg = testSoc();
    auto tasks = synthTasks(testSynth(10, 8, 3), cfg);
    std::swap(tasks.front().arrival, tasks.back().arrival);
    ClusterConfig cc = ClusterConfig::homogeneous(2, cfg);
    EXPECT_DEATH((void)cluster::runCluster(cc, tasks),
                 "sorted by arrival");
}

TEST(Experiment, SingleSocRunRejectsClusterConfig)
{
    EXPECT_DEATH((void)exp::Experiment()
                     .cluster(4)
                     .policy("moca")
                     .run(),
                 "use\\s+runFleet");
}
