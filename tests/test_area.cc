/**
 * @file
 * Tests for the Table IV area model: the gate-count estimate of the
 * MoCA hardware, the fixed component breakdown, and the paper's
 * overhead claims (MoCA ~0.1 Kum^2; ~2% of the memory interface;
 * well under 0.1% of the tile).
 */

#include <gtest/gtest.h>

#include "area/area_model.h"

namespace moca::area {
namespace {

TEST(AreaModel, MocaHwNearPaperValue)
{
    const MocaHwModel hw;
    // Paper: ~0.1 Kum^2.
    EXPECT_GT(hw.areaUm2(), 50.0);
    EXPECT_LT(hw.areaUm2(), 400.0);
}

TEST(AreaModel, AreaGrowsWithCounterWidth)
{
    MocaHwModel narrow;
    narrow.accessCounterBits = 16;
    MocaHwModel wide;
    wide.accessCounterBits = 64;
    EXPECT_GT(wide.areaUm2(), narrow.areaUm2());
}

TEST(AreaModel, BreakdownMatchesTableIV)
{
    const TileAreaBreakdown b = tileAreaBreakdown();
    // Seven components incl. the MoCA hardware row.
    EXPECT_EQ(b.components.size(), 7u);
    // Paper's fixed entries.
    EXPECT_DOUBLE_EQ(b.components[0].areaUm2, 101'000.0); // Rocket
    EXPECT_DOUBLE_EQ(b.memIfUm2, 8'600.0);
    EXPECT_NEAR(b.tileTotalUm2, 493'000.0, 500.0);
}

TEST(AreaModel, OverheadClaims)
{
    const TileAreaBreakdown b = tileAreaBreakdown();
    // ~1.7% of the memory interface in the paper; our gate-count
    // model lands in the same band.
    EXPECT_GT(b.mocaVsMemIf(), 0.005);
    EXPECT_LT(b.mocaVsMemIf(), 0.05);
    // Far below 0.1% of the tile (paper: 0.02%).
    EXPECT_LT(b.mocaVsTile(), 0.001);
}

TEST(AreaModel, PrOverheadMultiplies)
{
    MocaHwModel flat;
    flat.prOverhead = 1.0;
    MocaHwModel routed;
    routed.prOverhead = 1.5;
    EXPECT_NEAR(routed.areaUm2() / flat.areaUm2(), 1.5, 1e-9);
}

} // namespace
} // namespace moca::area
