/**
 * @file
 * Integration-level tests of the SoC simulator engine: isolated runs,
 * co-location slowdowns, tile scaling, stalls, throttling effects,
 * and determinism.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "exp/oracle.h"
#include "sim/soc.h"

namespace moca::sim {
namespace {

JobSpec
spec(int id, dnn::ModelId model, Cycles dispatch = 0, int priority = 0)
{
    JobSpec s;
    s.id = id;
    s.model = &dnn::getModel(model);
    s.dispatch = dispatch;
    s.priority = priority;
    s.slaLatency = 1'000'000'000;
    return s;
}

TEST(Soc, SingleJobCompletes)
{
    SocConfig cfg;
    exp::SoloPolicy policy(cfg.numTiles);
    Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws));
    soc.run();
    ASSERT_EQ(soc.results().size(), 1u);
    EXPECT_GT(soc.results()[0].latency(), 0u);
}

TEST(Soc, IsolatedLatencyDeterministic)
{
    SocConfig cfg;
    exp::clearOracleCache();
    const Cycles a =
        exp::isolatedLatency(dnn::ModelId::AlexNet, 8, cfg);
    exp::clearOracleCache();
    const Cycles b =
        exp::isolatedLatency(dnn::ModelId::AlexNet, 8, cfg);
    EXPECT_EQ(a, b);
}

TEST(Soc, MoreTilesFaster)
{
    SocConfig cfg;
    for (dnn::ModelId id :
         {dnn::ModelId::ResNet50, dnn::ModelId::YoloV2}) {
        const Cycles c1 = exp::isolatedLatency(id, 1, cfg);
        const Cycles c8 = exp::isolatedLatency(id, 8, cfg);
        EXPECT_LT(c8, c1) << dnn::modelIdName(id);
        // Sub-linear but substantial speedup.
        EXPECT_GT(static_cast<double>(c1) / c8, 2.0)
            << dnn::modelIdName(id);
    }
}

TEST(Soc, IsolatedLatencyOrdering)
{
    // Heavier models take longer in isolation.
    SocConfig cfg;
    const Cycles kws = exp::isolatedLatency(dnn::ModelId::Kws, 8, cfg);
    const Cycles squeeze =
        exp::isolatedLatency(dnn::ModelId::SqueezeNet, 8, cfg);
    const Cycles resnet =
        exp::isolatedLatency(dnn::ModelId::ResNet50, 8, cfg);
    const Cycles yolo =
        exp::isolatedLatency(dnn::ModelId::YoloV2, 8, cfg);
    EXPECT_LT(kws, squeeze);
    EXPECT_LT(squeeze, resnet);
    EXPECT_LT(resnet, yolo);
}

TEST(Soc, ColocationSlowsJobsDown)
{
    // Two co-located AlexNets on 4 tiles each run slower than one
    // AlexNet alone on 4 tiles (bandwidth + cache contention).
    SocConfig cfg;
    exp::SoloPolicy solo4(4);
    Soc alone(cfg, solo4);
    alone.addJob(spec(0, dnn::ModelId::AlexNet));
    alone.run();
    const Cycles iso = alone.results()[0].latency();

    exp::SoloPolicy pair4(4);
    Soc both(cfg, pair4);
    both.addJob(spec(0, dnn::ModelId::AlexNet));
    both.addJob(spec(1, dnn::ModelId::AlexNet));
    both.run();
    for (const auto &r : both.results())
        EXPECT_GT(r.latency(), iso);
}

TEST(Soc, ThrottledJobRunsSlower)
{
    SocConfig cfg;

    struct ThrottlingSolo : exp::SoloPolicy
    {
        hw::ThrottleConfig tcfg;
        explicit ThrottlingSolo(int tiles) : exp::SoloPolicy(tiles) {}
        void
        schedule(Soc &soc, SchedEvent event) override
        {
            exp::SoloPolicy::schedule(soc, event);
            for (int id : soc.runningJobs())
                if (soc.job(id).throttle.stats().reconfigurations == 0)
                    soc.configureThrottle(id, tcfg);
        }
    };

    ThrottlingSolo p1(8);
    Soc free_run(cfg, p1);
    free_run.addJob(spec(0, dnn::ModelId::SqueezeNet));
    free_run.run();
    const Cycles unthrottled = free_run.results()[0].latency();

    ThrottlingSolo p2(8);
    // Cap each tile at 1/16 of its DMA beats (1 B/cycle/tile).
    p2.tcfg = {1024, 64};
    Soc throttled(cfg, p2);
    throttled.addJob(spec(0, dnn::ModelId::SqueezeNet));
    throttled.run();
    const Cycles capped = throttled.results()[0].latency();

    EXPECT_GT(capped, unthrottled + unthrottled / 10);
}

TEST(Soc, StallDelaysCompletion)
{
    SocConfig cfg;

    struct StallingPolicy : exp::SoloPolicy
    {
        bool stalled = false;
        explicit StallingPolicy(int tiles) : exp::SoloPolicy(tiles) {}
        void
        schedule(Soc &soc, SchedEvent event) override
        {
            exp::SoloPolicy::schedule(soc, event);
            if (!stalled && !soc.runningJobs().empty()) {
                stalled = true;
                // A resize to fewer tiles charges the migration
                // penalty.
                soc.resizeJob(soc.runningJobs()[0], 4);
            }
        }
    };

    exp::SoloPolicy plain(8);
    Soc base(cfg, plain);
    base.addJob(spec(0, dnn::ModelId::SqueezeNet));
    base.run();

    StallingPolicy stall(8);
    Soc delayed(cfg, stall);
    delayed.addJob(spec(0, dnn::ModelId::SqueezeNet));
    delayed.run();

    EXPECT_GT(delayed.results()[0].latency(),
              base.results()[0].latency() + cfg.migrationCycles / 2);
    EXPECT_EQ(delayed.results()[0].migrations, 1);
}

TEST(Soc, ArrivalTimesRespected)
{
    SocConfig cfg;
    exp::SoloPolicy policy(8);
    Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws, 0));
    soc.addJob(spec(1, dnn::ModelId::Kws, 5'000'000));
    soc.run();
    ASSERT_EQ(soc.results().size(), 2u);
    for (const auto &r : soc.results()) {
        if (r.spec.id == 1) {
            EXPECT_GE(r.firstStart, 5'000'000u);
        }
    }
}

TEST(Soc, FreeTileAccounting)
{
    SocConfig cfg;
    exp::SoloPolicy policy(3);
    Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws));
    soc.addJob(spec(1, dnn::ModelId::Kws));
    // After starting two 3-tile jobs, 2 tiles remain.
    soc.run(0);
    EXPECT_EQ(soc.freeTiles(), cfg.numTiles);
    EXPECT_EQ(soc.results().size(), 2u);
}

TEST(Soc, ResultsCarrySpecFields)
{
    SocConfig cfg;
    exp::SoloPolicy policy(8);
    Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::YoloLite, 100, 7));
    soc.run();
    const auto &r = soc.results()[0];
    EXPECT_EQ(r.spec.priority, 7);
    EXPECT_EQ(r.spec.dispatch, 100u);
    EXPECT_GT(r.dramBytesMoved, 0u);
    EXPECT_GE(r.l2BytesMoved, r.dramBytesMoved);
}

TEST(Soc, DramUtilizationBounded)
{
    SocConfig cfg;
    exp::SoloPolicy policy(2);
    Soc soc(cfg, policy);
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::AlexNet));
    soc.run();
    EXPECT_GT(soc.stats().dramBusyFraction, 0.05);
    EXPECT_LE(soc.stats().dramBusyFraction, 1.0 + 1e-9);
}

TEST(Soc, AdvanceToMatchesManualSteppingAndRun)
{
    // advanceTo(h) is the hoisted bounded-stepping loop the cluster
    // fleet engine runs per SoC; it must replay the manual
    // while-stepOnce loop exactly, and advanceTo(kNoHorizon) must
    // replay an unbounded run() bit-identically.
    SocConfig cfg;
    const auto load = [&](Soc &soc) {
        soc.addJob(spec(0, dnn::ModelId::AlexNet));
        soc.addJob(spec(1, dnn::ModelId::Kws, 20'000));
    };

    exp::SoloPolicy pa(cfg.numTiles), pb(cfg.numTiles),
        pc(cfg.numTiles);
    Soc manual(cfg, pa), hoisted(cfg, pb), reference(cfg, pc);
    load(manual);
    load(hoisted);
    load(reference);

    manual.beginRun();
    hoisted.beginRun();
    const Cycles horizon = 50'000;
    while (!manual.done() && manual.now() < horizon)
        manual.stepOnce(horizon);
    hoisted.advanceTo(horizon);
    EXPECT_EQ(hoisted.now(), manual.now());
    EXPECT_EQ(hoisted.done(), manual.done());

    manual.advanceTo(kNoHorizon);
    hoisted.advanceTo(kNoHorizon);
    manual.finishRun();
    hoisted.finishRun();
    reference.run();

    ASSERT_EQ(hoisted.results().size(), reference.results().size());
    for (std::size_t i = 0; i < hoisted.results().size(); ++i) {
        EXPECT_EQ(hoisted.results()[i].finish,
                  reference.results()[i].finish);
        EXPECT_EQ(hoisted.results()[i].firstStart,
                  reference.results()[i].firstStart);
        EXPECT_EQ(manual.results()[i].finish,
                  reference.results()[i].finish);
    }
    EXPECT_EQ(hoisted.stats().quanta, reference.stats().quanta);
    EXPECT_EQ(manual.stats().quanta, reference.stats().quanta);
}

TEST(Soc, AdvanceToHorizonZeroIsNoOpAndNextEventTracksClock)
{
    SocConfig cfg;
    exp::SoloPolicy policy(cfg.numTiles);
    Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws));
    soc.beginRun();

    // Horizon 0 means "an arrival at cycle 0": nothing may advance.
    EXPECT_EQ(soc.nextEventTime(), 0u);
    soc.advanceTo(0);
    EXPECT_EQ(soc.now(), 0u);
    EXPECT_EQ(soc.nextEventTime(), 0u);

    // A bounded advance leaves a busy SoC exactly at the horizon, and
    // nextEventTime() reports the clock until the SoC drains...
    soc.advanceTo(5'000);
    EXPECT_EQ(soc.now(), 5'000u);
    EXPECT_EQ(soc.nextEventTime(), 5'000u);

    // ... after which it reports the no-event sentinel.
    soc.advanceTo(kNoHorizon);
    soc.finishRun();
    EXPECT_TRUE(soc.done());
    EXPECT_EQ(soc.nextEventTime(), kNoEvent);
}

} // namespace
} // namespace moca::sim
