/**
 * @file
 * Failure-injection tests: every user-facing misuse must fail loudly
 * (fatal) and every internal invariant violation must abort (panic),
 * never corrupt state silently — the gem5-style error discipline the
 * codebase follows (fatal = user error, panic = simulator bug).
 */

#include <gtest/gtest.h>

#include "common/argparse.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dnn/model_zoo.h"
#include "exp/oracle.h"
#include "moca/moca_policy.h"
#include "sim/arbiter.h"
#include "sim/soc.h"

namespace moca {
namespace {

sim::JobSpec
spec(int id, dnn::ModelId model)
{
    sim::JobSpec s;
    s.id = id;
    s.model = &dnn::getModel(model);
    s.slaLatency = 1'000'000'000;
    return s;
}

TEST(Errors, JobWithoutModelIsFatal)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    sim::JobSpec s;
    s.id = 0;
    s.model = nullptr;
    EXPECT_DEATH(soc.addJob(s), "no model");
}

TEST(Errors, NonDenseJobIdsAreFatal)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    EXPECT_DEATH(soc.addJob(spec(3, dnn::ModelId::Kws)), "dense");
}

TEST(Errors, TileOverAllocationPanics)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws));
    soc.addJob(spec(1, dnn::ModelId::Kws));
    soc.run(0); // completes both; but manual misuse must still trap
    EXPECT_DEATH(soc.startJob(0, 1), "not startable");
}

TEST(Errors, StartMoreTilesThanFreePanics)
{
    sim::SocConfig cfg;

    struct GreedyPolicy : sim::Policy
    {
        const char *name() const override { return "greedy"; }
        void
        schedule(sim::Soc &soc, sim::SchedEvent) override
        {
            const std::vector<int> waiting = soc.waitingJobs();
            for (int id : waiting)
                soc.startJob(id, 16); // more than the SoC has
        }
    };
    GreedyPolicy policy;
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws));
    EXPECT_DEATH(soc.run(), "tiles requested");
}

TEST(Errors, BadJobIdPanics)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    EXPECT_DEATH(soc.job(0), "bad job id");
}

TEST(Errors, InvalidSocConfigIsFatal)
{
    exp::SoloPolicy policy(1);
    sim::SocConfig bad_tiles;
    bad_tiles.numTiles = 0;
    EXPECT_DEATH(sim::Soc(bad_tiles, policy), "tile");
    sim::SocConfig bad_quantum;
    bad_quantum.quantum = 0;
    EXPECT_DEATH(sim::Soc(bad_quantum, policy), "quantum");
}

TEST(Errors, ArbiterRejectsInvalidInputs)
{
    EXPECT_DEATH(sim::allocateBandwidth({{-1.0, 1.0}}, 10.0),
                 "negative");
    EXPECT_DEATH(sim::allocateBandwidth({{1.0, 0.0}}, 10.0),
                 "weight");
    EXPECT_DEATH(
        sim::allocateBandwidthProportional({{1.0, -2.0}}, 10.0),
        "weight");
}

TEST(Errors, RngRejectsBadRanges)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniformInt(5, 2), "lo");
    EXPECT_DEATH(rng.exponential(0.0), "positive");
    EXPECT_DEATH(rng.categorical({0.0, 0.0}), "zero");
    EXPECT_DEATH(rng.categorical({1.0, -1.0}), "negative");
}

TEST(Errors, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

TEST(Errors, ArgMapRejectsMalformedValues)
{
    const char *argv[] = {"prog", "tasks=abc"};
    ArgMap args(2, const_cast<char **>(argv));
    EXPECT_DEATH(args.getInt("tasks", 0), "not an integer");
    const char *argv2[] = {"prog", "load=x"};
    ArgMap args2(2, const_cast<char **>(argv2));
    EXPECT_DEATH(args2.getDouble("load", 0.0), "not a number");
    const char *argv3[] = {"prog", "flag=maybe"};
    ArgMap args3(2, const_cast<char **>(argv3));
    EXPECT_DEATH(args3.getBool("flag", false), "not a boolean");
}

TEST(Errors, UnknownModelNameIsFatal)
{
    EXPECT_DEATH(dnn::modelIdFromName("resnet51"), "unknown model");
    EXPECT_DEATH(dnn::modelIdFromName(""), "unknown model");
}

TEST(Errors, BadPolicyConfigsAreFatal)
{
    sim::SocConfig cfg;
    MocaPolicyConfig too_many_slots;
    too_many_slots.slots = 99;
    EXPECT_DEATH(MocaPolicy(cfg, too_many_slots), "slots");
}

TEST(Errors, GroupedConvChannelMismatchIsFatal)
{
    EXPECT_DEATH(dnn::Layer::conv("c", 8, 8, 7, 16, 3, 1, 1, 2),
                 "groups");
}

TEST(Errors, PercentileOutOfRangePanics)
{
    SampleSet s;
    s.add(1.0);
    EXPECT_DEATH(s.percentile(101.0), "percentile");
}

} // namespace
} // namespace moca
