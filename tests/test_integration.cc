/**
 * @file
 * End-to-end integration tests: full multi-tenant scenarios through
 * the trace generator, simulator, policies and metrics, asserting the
 * paper's headline *shapes* (who wins, and where) on small but
 * non-trivial traces.  These are the same code paths the Fig. 5-8
 * benches exercise at full size.
 */

#include <gtest/gtest.h>

#include "exp/matrix.h"
#include "exp/oracle.h"
#include "exp/scenario.h"

namespace moca::exp {
namespace {

workload::TraceConfig
trace(workload::WorkloadSet set, workload::QosLevel qos, int tasks,
      std::uint64_t seed = 3)
{
    workload::TraceConfig t;
    t.set = set;
    t.qos = qos;
    t.numTasks = tasks;
    t.seed = seed;
    return t;
}

TEST(Integration, AllPoliciesCompleteEveryJob)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::C,
                         workload::QosLevel::Medium, 40);
    const auto specs = makeTrace(t, cfg);
    for (const std::string &spec : allPolicySpecs()) {
        const auto r = runTrace(spec, specs, t, cfg);
        EXPECT_EQ(r.jobs.size(), 40u) << spec;
        EXPECT_GT(r.metrics.stp, 0.0) << spec;
        EXPECT_GT(r.makespan, 0u) << spec;
    }
}

TEST(Integration, IdenticalTraceAcrossPolicies)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::A,
                         workload::QosLevel::Medium, 30);
    const auto specs = makeTrace(t, cfg);
    const auto moca = runTrace("moca", specs, t, cfg);
    const auto prema = runTrace("prema", specs, t, cfg);
    // Same dispatched jobs, different outcomes.
    ASSERT_EQ(moca.jobs.size(), prema.jobs.size());
    for (const auto &j : moca.jobs) {
        bool found = false;
        for (const auto &k : prema.jobs) {
            if (k.spec.id == j.spec.id) {
                EXPECT_EQ(k.spec.dispatch, j.spec.dispatch);
                EXPECT_EQ(k.spec.priority, j.spec.priority);
                found = true;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(Integration, MocaBeatsPremaUnderLoad)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::C,
                         workload::QosLevel::Medium, 80);
    const auto specs = makeTrace(t, cfg);
    const auto moca = runTrace("moca", specs, t, cfg);
    const auto prema = runTrace("prema", specs, t, cfg);
    EXPECT_GT(moca.metrics.slaRate, prema.metrics.slaRate);
    EXPECT_GT(moca.metrics.stp, prema.metrics.stp);
}

TEST(Integration, MocaBeatsPlanariaOnHeavyMix)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::B,
                         workload::QosLevel::Medium, 80);
    const auto specs = makeTrace(t, cfg);
    const auto moca = runTrace("moca", specs, t, cfg);
    const auto plan = runTrace("planaria", specs, t, cfg);
    EXPECT_GE(moca.metrics.slaRate, plan.metrics.slaRate);
    EXPECT_GT(moca.metrics.stp, plan.metrics.stp);
}

TEST(Integration, MocaAtLeastMatchesStaticOnHeavyMix)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::B,
                         workload::QosLevel::Hard, 80);
    const auto specs = makeTrace(t, cfg);
    const auto moca = runTrace("moca", specs, t, cfg);
    const auto stat =
        runTrace("static", specs, t, cfg);
    EXPECT_GE(moca.metrics.slaRate, stat.metrics.slaRate);
}

TEST(Integration, TighterQosLowersSatisfaction)
{
    const sim::SocConfig cfg;
    for (const std::string &spec :
         {std::string("moca"), std::string("static")}) {
        const auto l = runScenario(
            spec, trace(workload::WorkloadSet::C,
                        workload::QosLevel::Light, 60), cfg);
        const auto h = runScenario(
            spec, trace(workload::WorkloadSet::C,
                        workload::QosLevel::Hard, 60), cfg);
        EXPECT_GE(l.metrics.slaRate, h.metrics.slaRate) << spec;
    }
}

TEST(Integration, PlanariaMigratesMoreThanMoca)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::A,
                         workload::QosLevel::Medium, 60);
    const auto specs = makeTrace(t, cfg);
    const auto moca = runTrace("moca", specs, t, cfg);
    const auto plan = runTrace("planaria", specs, t, cfg);
    EXPECT_GT(plan.totalMigrations, moca.totalMigrations);
}

TEST(Integration, MocaThrottleEngagesOnMemoryHeavyMix)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::B,
                         workload::QosLevel::Medium, 40);
    const auto r = runScenario("moca", t, cfg);
    EXPECT_GT(r.totalThrottleReconfigs, 0);
}

TEST(Integration, ResultsAreDeterministic)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::C,
                         workload::QosLevel::Medium, 30, 7);
    const auto a = runScenario("moca", t, cfg);
    const auto b = runScenario("moca", t, cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.metrics.slaRate, b.metrics.slaRate);
    EXPECT_DOUBLE_EQ(a.metrics.stp, b.metrics.stp);
}

TEST(Integration, HigherPriorityGroupsFareBetterUnderMoca)
{
    const sim::SocConfig cfg;
    const auto t = trace(workload::WorkloadSet::C,
                         workload::QosLevel::Medium, 120);
    const auto r = runScenario("moca", t, cfg);
    EXPECT_GE(r.metrics.slaRateHigh, r.metrics.slaRateLow);
}

} // namespace
} // namespace moca::exp
