/**
 * @file
 * Telemetry subsystem tests (src/obs): instrument semantics and
 * registry discipline, sim-time sampler cadence under both kernels,
 * Chrome trace_event JSON export, trace-event kind-name coverage, and
 * the observability contract itself — telemetry on vs off (and PDES
 * jobs 1 vs 4) must leave every simulation outcome bit-identical.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/workload.h"
#include "exp/oracle.h"
#include "exp/scenario.h"
#include "obs/capture.h"
#include "obs/chrome_trace.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "serve/serve.h"
#include "sim/soc.h"
#include "sim/trace.h"

using namespace moca;

namespace {

sim::SocConfig
testSoc(sim::SimKernel kernel = sim::SimKernel::Event)
{
    sim::SocConfig cfg;
    cfg.kernel = kernel;
    return cfg;
}

workload::TraceConfig
testTrace(int tasks, std::uint64_t seed)
{
    workload::TraceConfig tc;
    tc.set = workload::WorkloadSet::A;
    tc.qos = workload::QosLevel::Medium;
    tc.numTasks = tasks;
    tc.seed = seed;
    return tc;
}

std::vector<cluster::ClusterTask>
synthTasks(int tasks, const sim::SocConfig &cfg, int fleet_tiles)
{
    cluster::SynthConfig synth;
    synth.numTasks = tasks;
    synth.set = workload::WorkloadSet::A;
    synth.fleetTiles = fleet_tiles;
    synth.seed = 11;
    return cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
        return exp::isolatedLatency(id, 1, cfg);
    });
}

/**
 * Minimal structural JSON validator: balanced containers, strings
 * closed, no trailing garbage.  Not a parser — enough to catch the
 * emitter bugs that would break chrome://tracing / json.tool.
 */
bool
jsonWellFormed(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': case '[': stack.push_back(c); break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return !in_string && stack.empty() && !text.empty();
}

} // namespace

// --- Instruments ------------------------------------------------------

TEST(Telemetry, CounterAndGaugeBasics)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    obs::Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(2.5);
    g.set(-1.0);
    EXPECT_EQ(g.value(), -1.0);
}

TEST(Telemetry, HistogramBucketEdgesAreInclusiveUpperBounds)
{
    // Prometheus "le" semantics: bucket i counts
    // edges[i-1] < v <= edges[i]; the last bucket is overflow.
    obs::Histogram h({10.0, 20.0, 30.0});
    ASSERT_EQ(h.numBuckets(), 4u);

    h.observe(5.0);   // <= 10            -> bucket 0
    h.observe(10.0);  // == edge 0        -> bucket 0 (inclusive)
    h.observe(10.5);  // (10, 20]         -> bucket 1
    h.observe(20.0);  // == edge 1        -> bucket 1
    h.observe(30.0);  // == edge 2        -> bucket 2
    h.observe(30.001); // > last edge     -> overflow
    h.observe(1e12);  //                  -> overflow

    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.totalCount(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(),
                     5.0 + 10.0 + 10.5 + 20.0 + 30.0 + 30.001 + 1e12);
}

TEST(TelemetryDeathTest, HistogramRejectsBadEdges)
{
    EXPECT_DEATH(obs::Histogram({}), "edge");
    EXPECT_DEATH(obs::Histogram({1.0, 1.0}), "ascending");
    EXPECT_DEATH(obs::Histogram({2.0, 1.0}), "ascending");
}

// --- Registry ---------------------------------------------------------

TEST(Registry, ColumnsAndSnapshotFollowRegistrationOrder)
{
    obs::Registry reg;
    obs::Counter &jobs = reg.counter("jobs_done");
    obs::Gauge &depth = reg.gauge("queue_depth");
    obs::Histogram &lat =
        reg.histogram("latency", {100.0, 1000.0});

    jobs.add(3);
    depth.set(7.0);
    lat.observe(50.0);
    lat.observe(500.0);

    const std::vector<std::string> expected = {
        "jobs_done", "queue_depth", "latency.count", "latency.sum"};
    EXPECT_EQ(reg.columns(), expected);

    const std::vector<double> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), expected.size());
    EXPECT_EQ(snap[0], 3.0);
    EXPECT_EQ(snap[1], 7.0);
    EXPECT_EQ(snap[2], 2.0);
    EXPECT_EQ(snap[3], 550.0);
    EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, InstrumentReferencesStayStableAsMoreRegister)
{
    obs::Registry reg;
    obs::Counter &first = reg.counter("first");
    for (int i = 0; i < 100; ++i)
        reg.counter("c" + std::to_string(i));
    first.add(9);
    EXPECT_EQ(reg.snapshot().front(), 9.0);
}

TEST(RegistryDeathTest, DuplicateNameDies)
{
    obs::Registry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.counter("x"), "x");
    // Duplicates across kinds are just as much a caller bug.
    EXPECT_DEATH(reg.gauge("x"), "x");
    EXPECT_DEATH(reg.histogram("x", {1.0}), "x");
    EXPECT_DEATH(reg.counter(""), "name");
}

// --- Sampler ----------------------------------------------------------

TEST(Sampler, RowsLandOnTheFixedGrid)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("events");

    obs::Sampler sampler(reg, 50);
    EXPECT_EQ(sampler.pending(), 50u);

    // A tick far past several grid points emits one row per crossed
    // point, each stamped at the grid point with the post-step value
    // (state is piecewise-constant between steps).
    c.add(2);
    sampler.tick(125);
    c.add(5);
    sampler.tick(300);

    const obs::Timeseries &ts = sampler.series();
    ASSERT_EQ(ts.rows.size(), 6u);
    const Cycles expected_at[] = {50, 100, 150, 200, 250, 300};
    const double expected_val[] = {2, 2, 7, 7, 7, 7};
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(ts.rows[i].at, expected_at[i]) << "row " << i;
        ASSERT_EQ(ts.rows[i].values.size(), 1u);
        EXPECT_EQ(ts.rows[i].values[0], expected_val[i])
            << "row " << i;
    }
    EXPECT_EQ(sampler.pending(), 350u);
}

TEST(SamplerDeathTest, ZeroCadenceDies)
{
    obs::Registry reg;
    EXPECT_DEATH(obs::Sampler(reg, 0), "sample");
}

TEST(Sampler, SocCadenceIsKernelIndependent)
{
    // The grid depends only on (every, simulated span): both kernels
    // must sample at exactly k * every regardless of how they step.
    for (const auto kernel :
         {sim::SimKernel::Quantum, sim::SimKernel::Event}) {
        sim::SocConfig cfg = testSoc(kernel);
        cfg.sampleEvery = 100'000;
        const auto res =
            exp::runScenario("moca", testTrace(12, 5), cfg);
        ASSERT_NE(res.telemetry, nullptr)
            << sim::simKernelName(kernel);
        const obs::Timeseries &ts = *res.telemetry;
        ASSERT_GT(ts.rows.size(), 2u) << sim::simKernelName(kernel);
        for (std::size_t i = 0; i < ts.rows.size(); ++i)
            EXPECT_EQ(ts.rows[i].at,
                      static_cast<Cycles>(i + 1) * cfg.sampleEvery)
                << sim::simKernelName(kernel) << " row " << i;
    }
}

TEST(Sampler, DisabledByDefaultAndResultOmitsTelemetry)
{
    const auto res =
        exp::runScenario("moca", testTrace(6, 3), testSoc());
    EXPECT_EQ(res.telemetry, nullptr);
}

TEST(Sampler, CsvAndJsonRenderings)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("done");
    obs::Sampler sampler(reg, 10);
    c.add(1);
    sampler.tick(10);
    c.add(1);
    sampler.tick(20);

    const std::string csv = timeseriesCsv(sampler.series());
    EXPECT_NE(csv.find("cycle"), std::string::npos);
    EXPECT_NE(csv.find("done"), std::string::npos);

    const std::string json = timeseriesJson(sampler.series());
    EXPECT_TRUE(jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"columns\""), std::string::npos);
    EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

// --- Trace-event kinds (satellite: socId + new kinds) -----------------

TEST(TraceEvents, EveryKindHasAUniqueName)
{
    std::vector<std::string> names;
    for (int k = 0; k < sim::kNumTraceEventKinds; ++k) {
        const std::string name = sim::traceEventKindName(
            static_cast<sim::TraceEventKind>(k));
        EXPECT_FALSE(name.empty()) << "kind " << k;
        EXPECT_EQ(name.find('?'), std::string::npos) << "kind " << k;
        for (const auto &prev : names)
            EXPECT_NE(name, prev) << "kind " << k;
        names.push_back(name);
    }
}

TEST(TraceEvents, RecorderStampsSocIdAndCostsNothingOff)
{
    sim::TraceRecorder rec;
    rec.setSocId(7);
    // Disabled (the default): record() must drop events entirely.
    rec.record(100, sim::TraceEventKind::JobStarted, 0);
    EXPECT_TRUE(rec.events().empty());

    rec.enable();
    rec.record(200, sim::TraceEventKind::SocFail, 3);
    ASSERT_EQ(rec.events().size(), 1u);
    EXPECT_EQ(rec.events()[0].socId, 7);
    EXPECT_EQ(rec.events()[0].kind, sim::TraceEventKind::SocFail);
    EXPECT_EQ(rec.events()[0].jobId, 3);
}

// --- Chrome trace export ----------------------------------------------

TEST(ChromeTrace, RendersWellFormedJsonWithAllRecordTypes)
{
    obs::ChromeTraceWriter w;
    w.processName(0, "coordinator");
    w.span(0, 0, "epoch (2 socs)", 1'000, 5'000);
    w.instant(0, 0, "shed 4", 2'000);
    w.counter(1, "queue \"depth\"\n", 3'000, 2.5); // Needs escaping.
    EXPECT_EQ(w.numEvents(), 4u);

    const std::string json = w.render();
    EXPECT_TRUE(jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\\\"depth\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(ChromeTrace, SocEventsBecomeSpansAndInstants)
{
    std::vector<sim::TraceEvent> events;
    events.push_back({1'000, sim::TraceEventKind::JobStarted, 0, 0, 2});
    events.push_back({5'000, sim::TraceEventKind::JobPaused, 0, 0, 2});
    events.push_back({6'000, sim::TraceEventKind::JobResumed, 0, 0, 2});
    events.push_back(
        {9'000, sim::TraceEventKind::JobCompleted, 0, 0, 2});
    events.push_back({500, sim::TraceEventKind::JobStarted, 1, 0, 2});
    // Job 1 never completes: its span is closed at the last cycle.

    obs::ChromeTraceWriter w;
    w.addSocEvents(events);
    const std::string json = w.render();
    EXPECT_TRUE(jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"job 0\""), std::string::npos);
    EXPECT_NE(json.find("job 1 (open)"), std::string::npos);
    // SoC 2 lands on pid 3 (coordinator owns pid 0).
    EXPECT_NE(json.find("\"pid\": 3"), std::string::npos);
}

TEST(ChromeTrace, ClusterCaptureExportsAllLayers)
{
    const sim::SocConfig soc = testSoc();
    cluster::ClusterConfig cc =
        cluster::ClusterConfig::homogeneous(2, soc);
    cc.jobs = 2;
    obs::Capture capture;
    cc.capture = &capture;
    const auto tasks = synthTasks(16, soc, 2 * soc.numTiles);
    (void)cluster::runCluster(cc, tasks);

    EXPECT_FALSE(capture.epochs.empty());
    EXPECT_FALSE(capture.socEvents.empty());
    for (const auto &ev : capture.socEvents) {
        EXPECT_GE(ev.socId, 0);
        EXPECT_LT(ev.socId, 2);
    }

    obs::ChromeTraceWriter w;
    w.addCapture(capture);
    EXPECT_GT(w.numEvents(), 0u);
    const std::string json = w.render();
    EXPECT_TRUE(jsonWellFormed(json));
    EXPECT_NE(json.find("epoch"), std::string::npos);
}

TEST(ChromeTrace, ServeCaptureRecordsFrontendEvents)
{
    serve::ServeConfig sc;
    sc.soc = testSoc();
    sc.numSocs = 3;
    sc.clients.numClients = 6;
    sc.clients.requestsPerClient = 3;
    sc.clients.set = workload::WorkloadSet::A;
    sc.clients.timeoutScale = 8.0;
    sc.failures.rate = 4000.0; // Per Gcycle: failures will happen.

    obs::Capture capture;
    sc.capture = &capture;
    const auto res = serve::runServe(sc);

    ASSERT_GT(res.failEvents, 0u);
    bool saw_fail = false, saw_recover = false;
    for (const auto &ev : capture.frontend.events()) {
        saw_fail |= ev.kind == sim::TraceEventKind::SocFail;
        saw_recover |= ev.kind == sim::TraceEventKind::SocRecover;
    }
    EXPECT_TRUE(saw_fail);
    EXPECT_EQ(saw_recover, res.recoverEvents > 0);
    EXPECT_FALSE(capture.epochs.empty());
    EXPECT_FALSE(capture.socEvents.empty());

    obs::ChromeTraceWriter w;
    w.addCapture(capture);
    EXPECT_TRUE(jsonWellFormed(w.render()));
}

// --- Phase profiler ---------------------------------------------------

TEST(PhaseProfiler, AccumulatesAndDisabledIsNoop)
{
    obs::PhaseProfiler p;
    p.add("advance", 1.5);
    p.add("wait", 0.5);
    p.add("advance", 0.5);
    EXPECT_DOUBLE_EQ(p.seconds("advance"), 2.0);
    EXPECT_DOUBLE_EQ(p.seconds("wait"), 0.5);
    EXPECT_EQ(p.seconds("missing"), 0.0);
    ASSERT_EQ(p.entries().size(), 2u);
    EXPECT_EQ(p.entries()[0].first, "advance"); // First-seen order.
    EXPECT_NE(p.render("title").find("advance"), std::string::npos);

    obs::PhaseProfiler off(false);
    off.add("x", 1.0);
    EXPECT_TRUE(off.entries().empty());
}

TEST(PhaseProfiler, ClusterProfileFillsPhaseBreakdown)
{
    const sim::SocConfig soc = testSoc();
    cluster::ClusterConfig cc =
        cluster::ClusterConfig::homogeneous(2, soc);
    cc.jobs = 2;
    cc.profile = true;
    const auto tasks = synthTasks(12, soc, 2 * soc.numTiles);
    const auto res = cluster::runCluster(cc, tasks);
    EXPECT_GT(res.phases.shardAdvanceSec, 0.0);
    EXPECT_GT(res.phases.dispatchSec, 0.0);

    // Profiling off (the default): all zeros, as the timing=0
    // determinism baselines require.
    cc.profile = false;
    cc.capture = nullptr;
    const auto plain = cluster::runCluster(cc, tasks);
    EXPECT_EQ(plain.phases.shardAdvanceSec, 0.0);
    EXPECT_EQ(plain.phases.barrierWaitSec, 0.0);
    EXPECT_EQ(plain.phases.dispatchSec, 0.0);
}

// --- The observability contract ---------------------------------------

TEST(ObservabilityContract, ClusterBitIdenticalWithTelemetryOnOrOff)
{
    sim::SocConfig soc = testSoc();
    const auto tasks = synthTasks(24, soc, 4 * soc.numTiles);

    auto run = [&](bool telemetry, int jobs) {
        cluster::ClusterConfig cc =
            cluster::ClusterConfig::homogeneous(4, soc);
        cc.jobs = jobs;
        obs::Capture capture;
        if (telemetry) {
            for (auto &s : cc.socs)
                s.sampleEvery = 50'000;
            cc.capture = &capture;
            cc.profile = true;
        }
        return cluster::runCluster(cc, tasks);
    };

    const cluster::ClusterResult base = run(false, 1);
    for (const bool telemetry : {false, true}) {
        for (const int jobs : {1, 4}) {
            if (!telemetry && jobs == 1)
                continue;
            const cluster::ClusterResult other = run(telemetry, jobs);
            EXPECT_EQ(base.slaRate, other.slaRate);
            EXPECT_EQ(base.latency.p50, other.latency.p50);
            EXPECT_EQ(base.latency.p99, other.latency.p99);
            EXPECT_EQ(base.stp, other.stp);
            EXPECT_EQ(base.makespan, other.makespan);
            EXPECT_EQ(base.goodput, other.goodput);
            EXPECT_EQ(base.balanceCv, other.balanceCv);
            EXPECT_EQ(base.simSteps, other.simSteps);
            EXPECT_EQ(base.epochs, other.epochs);
            EXPECT_EQ(base.horizonStalls, other.horizonStalls);
            ASSERT_EQ(base.perSoc.size(), other.perSoc.size());
            for (std::size_t i = 0; i < base.perSoc.size(); ++i) {
                EXPECT_EQ(base.perSoc[i].tasks, other.perSoc[i].tasks);
                EXPECT_EQ(base.perSoc[i].makespan,
                          other.perSoc[i].makespan);
            }
        }
    }
}

TEST(ObservabilityContract, ServeBitIdenticalWithTelemetryOnOrOff)
{
    auto run = [&](bool telemetry, int jobs) {
        serve::ServeConfig sc;
        sc.soc = testSoc();
        sc.numSocs = 3;
        sc.jobs = jobs;
        sc.clients.numClients = 5;
        sc.clients.requestsPerClient = 3;
        sc.clients.set = workload::WorkloadSet::A;
        sc.clients.timeoutScale = 8.0;
        sc.failures.rate = 2000.0;
        obs::Capture capture;
        if (telemetry) {
            sc.soc.sampleEvery = 50'000;
            sc.capture = &capture;
            sc.profile = true;
        }
        return serve::runServe(sc);
    };

    const serve::ServeResult base = run(false, 1);
    for (const bool telemetry : {false, true}) {
        for (const int jobs : {1, 4}) {
            if (!telemetry && jobs == 1)
                continue;
            const serve::ServeResult other = run(telemetry, jobs);
            EXPECT_EQ(base.requests, other.requests);
            EXPECT_EQ(base.attempts, other.attempts);
            EXPECT_EQ(base.responses, other.responses);
            EXPECT_EQ(base.failEvents, other.failEvents);
            EXPECT_EQ(base.recoverEvents, other.recoverEvents);
            EXPECT_EQ(base.lostJobs, other.lostJobs);
            EXPECT_EQ(base.endCycle, other.endCycle);
            EXPECT_EQ(base.cluster.slaRate, other.cluster.slaRate);
            EXPECT_EQ(base.cluster.makespan, other.cluster.makespan);
            EXPECT_EQ(base.cluster.simSteps, other.cluster.simSteps);
            EXPECT_EQ(base.clientLatency.p99,
                      other.clientLatency.p99);
        }
    }
}
