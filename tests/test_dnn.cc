/**
 * @file
 * Unit tests for the DNN layer/model substrate: shape arithmetic,
 * footprints, MAC counts, the COMPUTE/MEM classification, the model
 * zoo's published parameter/MAC totals, and layer-block formation.
 */

#include <gtest/gtest.h>

#include "dnn/layer.h"
#include "dnn/model.h"
#include "dnn/model_zoo.h"

namespace moca::dnn {
namespace {

TEST(Layer, ConvOutputDims)
{
    const Layer l = Layer::conv("c", 224, 224, 3, 64, 7, 2, 3);
    EXPECT_EQ(l.outH(), 112);
    EXPECT_EQ(l.outW(), 112);
}

TEST(Layer, ConvMacCount)
{
    // 3x3 conv, 8->16 channels on 10x10 (pad 1): 10*10*16*3*3*8.
    const Layer l = Layer::conv("c", 10, 10, 8, 16, 3, 1, 1);
    EXPECT_EQ(l.macCount(), 10ull * 10 * 16 * 3 * 3 * 8);
}

TEST(Layer, GroupedConvDividesMacsAndWeights)
{
    const Layer full = Layer::conv("c", 27, 27, 96, 256, 5, 1, 2, 1);
    const Layer grouped = Layer::conv("g", 27, 27, 96, 256, 5, 1, 2, 2);
    EXPECT_EQ(grouped.macCount(), full.macCount() / 2);
    EXPECT_EQ(grouped.weightBytes(), full.weightBytes() / 2);
}

TEST(Layer, DenseFootprints)
{
    const Layer l = Layer::dense("fc", 9216, 4096);
    EXPECT_EQ(l.macCount(), 9216ull * 4096);
    EXPECT_EQ(l.weightBytes(), 9216ull * 4096 * kElemBytes);
    EXPECT_EQ(l.biasBytes(), 4096ull * kAccBytes);
    EXPECT_EQ(l.inputBytes(), 9216ull);
    EXPECT_EQ(l.outputBytes(), 4096ull);
}

TEST(Layer, AddReadsBothOperands)
{
    const Layer l = Layer::add("add", 14, 14, 256);
    EXPECT_EQ(l.inputBytes(), 2ull * 14 * 14 * 256);
    EXPECT_EQ(l.outputBytes(), 14ull * 14 * 256);
    EXPECT_EQ(l.macCount(), 0ull);
}

TEST(Layer, PoolShrinksOutput)
{
    const Layer l = Layer::pool("p", 55, 55, 96, 3, 2);
    EXPECT_EQ(l.outH(), 27);
    EXPECT_EQ(l.outputBytes(), 27ull * 27 * 96);
}

TEST(Layer, Classification)
{
    EXPECT_EQ(Layer::conv("c", 8, 8, 8, 8, 3, 1, 1).layerClass(),
              LayerClass::Compute);
    EXPECT_EQ(Layer::dense("d", 64, 64).layerClass(),
              LayerClass::Compute);
    EXPECT_EQ(Layer::pool("p", 8, 8, 8, 2, 2).layerClass(),
              LayerClass::Mem);
    EXPECT_EQ(Layer::add("a", 8, 8, 8).layerClass(), LayerClass::Mem);
    EXPECT_EQ(Layer::lrn("l", 8, 8, 8).layerClass(), LayerClass::Mem);
    EXPECT_EQ(Layer::globalPool("g", 8, 8, 8).layerClass(),
              LayerClass::Mem);
}

TEST(Layer, ArithmeticIntensityOrdering)
{
    // A 3x3 conv reuses weights across spatial positions; a dense
    // layer at batch 1 touches each weight once.
    const Layer conv = Layer::conv("c", 56, 56, 64, 64, 3, 1, 1);
    const Layer fc = Layer::dense("d", 4096, 4096);
    EXPECT_GT(conv.arithmeticIntensity(), fc.arithmeticIntensity());
    EXPECT_LT(fc.arithmeticIntensity(), 1.1);
}

// --- Model zoo ------------------------------------------------------

TEST(ModelZoo, AlexNetShapes)
{
    const Model &m = getModel(ModelId::AlexNet);
    // Published totals: ~61 M parameters, ~0.72 G MACs.
    EXPECT_NEAR(static_cast<double>(m.totalWeightBytes()), 61e6,
                3e6);
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 0.72e9, 0.08e9);
    EXPECT_EQ(m.size(), ModelSize::Heavy);
}

TEST(ModelZoo, ResNet50Shapes)
{
    const Model &m = getModel(ModelId::ResNet50);
    // ~25.5 M parameters, ~4.1 G MACs.
    EXPECT_NEAR(static_cast<double>(m.totalWeightBytes()), 25.5e6,
                1.5e6);
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 4.1e9, 0.3e9);
}

TEST(ModelZoo, SqueezeNetShapes)
{
    const Model &m = getModel(ModelId::SqueezeNet);
    // ~1.25 M parameters (v1.0), ~0.8-0.9 G MACs.
    EXPECT_NEAR(static_cast<double>(m.totalWeightBytes()), 1.25e6,
                0.2e6);
    EXPECT_GT(m.totalMacs(), 0.5e9);
    EXPECT_LT(m.totalMacs(), 1.1e9);
    EXPECT_EQ(m.size(), ModelSize::Light);
}

TEST(ModelZoo, GoogleNetShapes)
{
    const Model &m = getModel(ModelId::GoogleNet);
    // ~7 M parameters, ~1.5 G MACs.
    EXPECT_NEAR(static_cast<double>(m.totalWeightBytes()), 7e6, 1e6);
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 1.5e9, 0.2e9);
}

TEST(ModelZoo, YoloV2Shapes)
{
    const Model &m = getModel(ModelId::YoloV2);
    // ~50 M parameters, ~14.7 G MACs at 416x416.
    EXPECT_NEAR(static_cast<double>(m.totalWeightBytes()), 50e6,
                5e6);
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 14.7e9, 1.5e9);
}

TEST(ModelZoo, YoloLiteIsTiny)
{
    const Model &m = getModel(ModelId::YoloLite);
    EXPECT_LT(m.totalWeightBytes(), 1e6);
    EXPECT_LT(m.totalMacs(), 2.5e9);
    EXPECT_EQ(m.size(), ModelSize::Light);
}

TEST(ModelZoo, KwsIsSmallFootprint)
{
    const Model &m = getModel(ModelId::Kws);
    // res8: ~110 K parameters.
    EXPECT_LT(m.totalWeightBytes(), 300e3);
    EXPECT_EQ(m.size(), ModelSize::Light);
}

TEST(ModelZoo, WorkloadSets)
{
    EXPECT_EQ(workloadSetA().size(), 3u);
    EXPECT_EQ(workloadSetB().size(), 4u);
    EXPECT_EQ(workloadSetC().size(), 7u);
    for (ModelId id : workloadSetA())
        EXPECT_EQ(getModel(id).size(), ModelSize::Light);
    for (ModelId id : workloadSetB())
        EXPECT_EQ(getModel(id).size(), ModelSize::Heavy);
}

TEST(ModelZoo, NameRoundTrip)
{
    for (ModelId id : allModelIds())
        EXPECT_EQ(modelIdFromName(modelIdName(id)), id);
}

TEST(ModelZoo, GetModelIsMemoized)
{
    const Model &a = getModel(ModelId::ResNet50);
    const Model &b = getModel(ModelId::ResNet50);
    EXPECT_EQ(&a, &b);
}

TEST(ModelZoo, ResNetHasResidualAdds)
{
    const Model &m = getModel(ModelId::ResNet50);
    int adds = 0;
    for (const auto &l : m.layers())
        if (l.kind == LayerKind::Add)
            ++adds;
    EXPECT_EQ(adds, 16); // one per bottleneck
}


// --- Extension models ---------------------------------------------------

TEST(ModelZoo, MobileNetV1Shapes)
{
    const Model &m = getModel(ModelId::MobileNetV1);
    // ~4.2 M parameters, ~0.57 G MACs.
    EXPECT_NEAR(static_cast<double>(m.totalWeightBytes()), 4.2e6,
                0.4e6);
    EXPECT_NEAR(static_cast<double>(m.totalMacs()), 0.57e9, 0.06e9);
    // Depthwise layers present: groups == inC.
    int depthwise = 0;
    for (const auto &l : m.layers())
        if (l.kind == LayerKind::Conv && l.groups == l.inC &&
            l.groups > 1)
            ++depthwise;
    EXPECT_EQ(depthwise, 13);
}

TEST(ModelZoo, ExtensionModelsOutsideTableIII)
{
    // The paper's workload sets must not pick up extension models.
    for (ModelId id : workloadSetC())
        for (ModelId ext : extensionModelIds())
            EXPECT_NE(id, ext);
    EXPECT_EQ(extensionModelIds().size(), 4u);
    EXPECT_EQ(modelIdFromName("mobilenetv1"), ModelId::MobileNetV1);
    EXPECT_EQ(modelIdFromName("transformer-l"), ModelId::TransformerL);
    EXPECT_EQ(modelIdFromName("kws-micro"), ModelId::KwsMicro);
    EXPECT_EQ(modelIdFromName("dlrm"), ModelId::Dlrm);
}

TEST(ModelZoo, ExtensionProfilesSpanIntensityRange)
{
    // The cluster workload mixes lean on the extension models to
    // stretch the compute/memory-intensity range: the transformer
    // reuses each weight across all 256 tokens, DLRM touches each
    // weight exactly once, and kws-micro is an order of magnitude
    // below the res8 KWS.
    const Model &tf = getModel(ModelId::TransformerL);
    const Model &dlrm = getModel(ModelId::Dlrm);
    const Model &micro = getModel(ModelId::KwsMicro);
    const Model &kws = getModel(ModelId::Kws);

    const auto intensity = [](const Model &m) {
        return static_cast<double>(m.totalMacs()) /
            static_cast<double>(m.totalWeightBytes());
    };
    EXPECT_GT(intensity(tf), 50.0 * intensity(dlrm));
    EXPECT_LT(intensity(dlrm), 2.0); // ~1 MAC per weight byte.
    EXPECT_GT(tf.totalMacs(), getModel(ModelId::ResNet50).totalMacs());
    EXPECT_LT(micro.totalMacs() * 5, kws.totalMacs());
}

// --- Layer blocks -----------------------------------------------------

TEST(Model, BlocksTileLayerList)
{
    for (ModelId id : allModelIds()) {
        const Model &m = getModel(id);
        const auto &blocks = m.blocks();
        ASSERT_FALSE(blocks.empty());
        std::size_t next = 0;
        for (const auto &b : blocks) {
            EXPECT_EQ(b.first, next);
            EXPECT_GT(b.count, 0u);
            next += b.count;
        }
        EXPECT_EQ(next, m.numLayers());
    }
}

TEST(Model, HeavyModelsHaveMultipleBlocks)
{
    EXPECT_GT(getModel(ModelId::ResNet50).numBlocks(), 5u);
    EXPECT_GT(getModel(ModelId::YoloV2).numBlocks(), 10u);
}

TEST(Model, TinyModelFewBlocks)
{
    EXPECT_LE(getModel(ModelId::Kws).numBlocks(), 3u);
}

} // namespace
} // namespace moca::dnn
