// detlint fixture: R5 — uninitialized POD members in *Config/*Spec
// structs.  Expected: four R5 findings (int, double, and enum members
// of FixtureConfig plus the int64 in FixtureTaskSpec), one suppressed
// member, and initialized / non-POD members with no finding.
#include <cstdint>
#include <string>
#include <vector>

enum class FixtureMode
{
    Fast,
    Accurate,
};

struct FixtureConfig
{
    int tiles;        // finding: R5
    double loadSlack; // finding: R5
    FixtureMode mode; // finding: R5

    // detlint: allow(R5) always overwritten by the parser before use
    std::uint64_t seed;

    int banks = 8;                  // clean: initialized
    bool verbose = false;           // clean: initialized
    std::string name;               // clean: default-constructed
    std::vector<int> weights;       // clean: default-constructed
};

struct FixtureTaskSpec
{
    std::int64_t arrival; // finding: R5
    int priority = 0;     // clean
};

struct PlainRecord
{
    int x; // clean: not a *Config/*Spec struct
};
