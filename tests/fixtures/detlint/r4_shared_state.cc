// detlint fixture: R4 — mutable shared state without adjacent
// synchronization.  Expected: two R4 findings (static variable,
// mutable member block), one suppressed static, and synchronized /
// immutable cases with no finding.
#include <atomic>
#include <mutex>
#include <string>
#include <vector>

int
unsynchronizedCounter()
{
    static int calls = 0; // finding: R4
    return ++calls;
}

class LazyView
{
  public:
    const std::vector<int> &sorted() const;

  private:
    std::vector<int> data_;
    mutable std::vector<int> sorted_; // finding: R4 (merged block)
    mutable bool sorted_valid_ = false;
};

int
suppressedRegistry()
{
    // detlint: allow(R4) written once before any worker starts
    static int registered = 0;
    return registered;
}

int
synchronizedCounter()
{
    static std::atomic<int> calls{0}; // clean: atomic
    return calls.fetch_add(1);
}

const std::string &
guardedName()
{
    static std::mutex m; // clean: it is the lock
    static std::string name;
    std::lock_guard<std::mutex> lock(m);
    return name;
}

constexpr int kTableSize = 64; // clean: immutable

int
perThreadScratch()
{
    static thread_local int scratch = 0; // clean: per-thread
    return ++scratch;
}
