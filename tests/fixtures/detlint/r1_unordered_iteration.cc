// detlint fixture: R1 — iteration over unordered containers.
// Expected: two R1 findings (range-for, iterator loop), one
// suppressed range-for, and a lookup-only map with no finding.
#include <unordered_map>
#include <unordered_set>

int
positiveRangeFor()
{
    std::unordered_map<int, int> weights;
    int sum = 0;
    for (const auto &kv : weights) // finding: R1
        sum += kv.second;
    return sum;
}

int
positiveIteratorLoop()
{
    std::unordered_set<int> seen;
    int n = 0;
    for (auto it = seen.begin(); it != seen.end(); ++it) // finding: R1
        ++n;
    return n;
}

int
suppressedRangeFor()
{
    std::unordered_map<int, int> histogram;
    int sum = 0;
    // detlint: allow(R1) order-insensitive reduction (sum)
    for (const auto &kv : histogram)
        sum += kv.second;
    return sum;
}

int
lookupOnlyIsClean(int key)
{
    std::unordered_map<int, int> memo;
    auto it = memo.find(key);
    return it == memo.end() ? 0 : it->second;
}
