// detlint fixture: R3 — pointer-valued ordering/hash keys.
// Expected: two R3 findings (map and unordered_set), one suppressed
// map, and an id-keyed map with no finding.
#include <map>
#include <string>
#include <unordered_set>

struct Node
{
    int id = 0;
};

std::map<Node *, int> weightByNode;             // finding: R3
std::unordered_set<const char *> internedNames; // finding: R3

// detlint: allow(R3) values are compared via a total order on id
std::map<Node *, int, bool (*)(Node *, Node *)> orderedByUid(nullptr);

std::map<int, std::string> nameById; // clean: stable id key
