// detlint fixture: R2 — banned nondeterminism sources.
// Expected: four R2 findings (rand, random_device, chrono now,
// time) and one suppressed wall-clock read.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int
positiveRand()
{
    return std::rand(); // finding: R2
}

unsigned
positiveRandomDevice()
{
    std::random_device rd; // finding: R2
    return rd();
}

long
positiveChronoNow()
{
    auto t = std::chrono::steady_clock::now(); // finding: R2
    return t.time_since_epoch().count();
}

long
positiveTime()
{
    return time(nullptr); // finding: R2
}

double
suppressedWallClock()
{
    // detlint: allow(R2) fixture demonstrating the suppression syntax
    auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch())
        .count();
}

struct Ev
{
    int time_ = 0;
    int time() const { return time_; }
};

int
timestampMemberIsClean(const Ev &e)
{
    return e.time(); // a member named like a clock is not a clock read
}
