/**
 * @file
 * Unit/behavioural tests for the three baseline policies: PREMA
 * (temporal multiplexing + token preemption), static partitioning
 * (fixed slots, no adaptation), and Planaria (dynamic compute
 * fission with migration penalties).
 */

#include <gtest/gtest.h>

#include "baselines/compute_estimator.h"
#include "baselines/planaria.h"
#include "baselines/prema.h"
#include "baselines/static_partition.h"
#include "dnn/model_zoo.h"
#include "sim/soc.h"

namespace moca::baselines {
namespace {

sim::JobSpec
spec(int id, dnn::ModelId model, Cycles dispatch = 0,
     int priority = 0, Cycles sla = 1'000'000'000)
{
    sim::JobSpec s;
    s.id = id;
    s.model = &dnn::getModel(model);
    s.dispatch = dispatch;
    s.priority = priority;
    s.slaLatency = sla;
    return s;
}

TEST(ComputeEstimator, MonotoneInLayersAndTiles)
{
    const sim::SocConfig cfg;
    const auto &net = dnn::getModel(dnn::ModelId::ResNet50);
    const double full = computeOnlyEstimate(net, 0, 2, cfg);
    const double later = computeOnlyEstimate(net, 20, 2, cfg);
    EXPECT_GT(full, later);
    EXPECT_GT(computeOnlyEstimate(net, 1, cfg),
              computeOnlyEstimate(net, 8, cfg));
}

TEST(ComputeEstimator, IgnoresMemoryTime)
{
    // AlexNet's FC layers are memory-bound: the compute-only estimate
    // must be far below the full-system estimate.
    const sim::SocConfig cfg;
    const auto fc = dnn::Layer::dense("fc6", 9216, 4096);
    const dnn::Model one("fc-only", dnn::ModelSize::Light, {fc});
    const double compute_only = computeOnlyEstimate(one, 1, cfg);
    // Full traffic would add ~38 MB / 16 B/cyc ~ 2.4 Mcycles.
    EXPECT_LT(compute_only, 3.0e6);
}

// --- PREMA ------------------------------------------------------------

TEST(Prema, RunsOneJobAtATimeOnAllTiles)
{
    sim::SocConfig cfg;
    PremaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::SqueezeNet));
    soc.addJob(spec(1, dnn::ModelId::SqueezeNet));
    soc.run();
    ASSERT_EQ(soc.results().size(), 2u);
    // Serialized: the second job starts after the first finishes.
    const auto &r0 = soc.results()[0];
    const auto &r1 = soc.results()[1];
    const Cycles first_finish = std::min(r0.finish, r1.finish);
    const Cycles second_start =
        std::max(r0.firstStart, r1.firstStart);
    EXPECT_GE(second_start + cfg.quantum, first_finish);
}

TEST(Prema, HighTokenPreemptsAtBlockBoundary)
{
    sim::SocConfig cfg;
    PremaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    // Long low-priority job, then an urgent high-priority arrival.
    soc.addJob(spec(0, dnn::ModelId::YoloV2, 0, 0));
    soc.addJob(spec(1, dnn::ModelId::Kws, 1'000'000, 11));
    soc.run();
    const auto &results = soc.results();
    int preemptions = 0;
    for (const auto &r : results)
        preemptions += r.preemptions;
    EXPECT_GE(preemptions, 1);
    // The high-priority job finishes before the preempted long job.
    Cycles kws_finish = 0, yolo_finish = 0;
    for (const auto &r : results) {
        if (r.spec.id == 1)
            kws_finish = r.finish;
        else
            yolo_finish = r.finish;
    }
    EXPECT_LT(kws_finish, yolo_finish);
}

TEST(Prema, CheckpointCostScalesWithConfig)
{
    sim::SocConfig cfg;
    const Cycles base = PremaPolicy::checkpointCycles(cfg);
    cfg.scratchpadBytes *= 2;
    EXPECT_GT(PremaPolicy::checkpointCycles(cfg), base);
}

// --- Static partitioning ------------------------------------------------

TEST(StaticPartition, RunsFourConcurrentJobs)
{
    sim::SocConfig cfg;
    StaticPartitionPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::SqueezeNet));
    soc.run();
    // All four start immediately (4 slots x 2 tiles).
    for (const auto &r : soc.results())
        EXPECT_EQ(r.firstStart, 0u);
}

TEST(StaticPartition, NeverMigrates)
{
    sim::SocConfig cfg;
    StaticPartitionPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 6; ++i)
        soc.addJob(spec(i, dnn::ModelId::SqueezeNet,
                        static_cast<Cycles>(i) * 100'000));
    soc.run();
    for (const auto &r : soc.results()) {
        EXPECT_EQ(r.migrations, 0);
        EXPECT_EQ(r.preemptions, 0);
        EXPECT_EQ(r.throttleReconfigs, 0);
    }
}

TEST(StaticPartition, PriorityOrdersAdmission)
{
    sim::SocConfig cfg;
    StaticPartitionPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    // Fill all four slots with heavy jobs of different lengths so
    // partitions free one at a time, then queue two more with
    // different priorities; the higher-priority one is admitted
    // first.
    soc.addJob(spec(0, dnn::ModelId::GoogleNet));
    soc.addJob(spec(1, dnn::ModelId::ResNet50));
    soc.addJob(spec(2, dnn::ModelId::YoloV2));
    soc.addJob(spec(3, dnn::ModelId::AlexNet));
    soc.addJob(spec(4, dnn::ModelId::Kws, 1000, 1));
    soc.addJob(spec(5, dnn::ModelId::Kws, 1000, 10));
    soc.run();
    Cycles start_low = 0, start_high = 0;
    for (const auto &r : soc.results()) {
        if (r.spec.id == 4)
            start_low = r.firstStart;
        if (r.spec.id == 5)
            start_high = r.firstStart;
    }
    EXPECT_LT(start_high, start_low);
}

// --- Planaria -----------------------------------------------------------

TEST(Planaria, LoneJobGetsManyTiles)
{
    sim::SocConfig cfg;
    PlanariaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::ResNet50));
    soc.run();
    // Alone in the system, the job completes faster than a 1-tile
    // run would (it received a large fission share).
    const Cycles one_tile_estimate = static_cast<Cycles>(
        computeOnlyEstimate(dnn::getModel(dnn::ModelId::ResNet50), 1,
                            cfg));
    EXPECT_LT(soc.results()[0].latency(), one_tile_estimate);
}

TEST(Planaria, ArrivalsTriggerMigrations)
{
    sim::SocConfig cfg;
    PlanariaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    // A stream of staggered arrivals forces repeated refission.
    for (int i = 0; i < 6; ++i)
        soc.addJob(spec(i, dnn::ModelId::GoogleNet,
                        static_cast<Cycles>(i) * 2'000'000, i));
    soc.run();
    int migrations = 0;
    for (const auto &r : soc.results())
        migrations += r.migrations;
    EXPECT_GE(migrations, 2);
}

TEST(Planaria, MigrationsCostLatency)
{
    // The same job stream under static partitioning (no migrations)
    // vs Planaria: Planaria's total stall cycles are nonzero.
    sim::SocConfig cfg;
    PlanariaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    // Heavy jobs arriving one by one: the early job's large fission
    // share must shrink step by step (8 -> 4 -> 2 tiles), each
    // repartition stalling it for the migration penalty.
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::ResNet50,
                        static_cast<Cycles>(i) * 3'000'000));
    soc.run();
    Cycles stalls = 0;
    for (const auto &r : soc.results())
        stalls += r.stallCycles;
    EXPECT_GT(stalls, 0u);
}

TEST(Planaria, NeverThrottles)
{
    sim::SocConfig cfg;
    PlanariaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::AlexNet,
                        static_cast<Cycles>(i) * 500'000));
    soc.run();
    for (const auto &r : soc.results())
        EXPECT_EQ(r.throttleReconfigs, 0);
}

} // namespace
} // namespace moca::baselines
