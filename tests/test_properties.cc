/**
 * @file
 * Cross-cutting property tests with parameterized sweeps: byte
 * conservation in the simulator, quantum-size robustness of measured
 * latencies, throttle-rate enforcement across a config grid, and
 * policy-independent invariants on completed runs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/model_zoo.h"
#include "exp/oracle.h"
#include "exp/scenario.h"
#include "moca/hw/throttle_engine.h"
#include "sim/soc.h"

namespace moca {
namespace {

sim::JobSpec
spec(int id, dnn::ModelId model, Cycles dispatch = 0)
{
    sim::JobSpec s;
    s.id = id;
    s.model = &dnn::getModel(model);
    s.dispatch = dispatch;
    s.slaLatency = 1'000'000'000;
    return s;
}

// --- Conservation -------------------------------------------------------

TEST(Properties, DramBytesConserved)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(2);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::GoogleNet,
                        static_cast<Cycles>(i) * 300'000));
    soc.run();
    std::uint64_t per_job = 0;
    for (const auto &r : soc.results())
        per_job += r.dramBytesMoved;
    // SoC-level accounting matches the per-job sums (within rounding
    // of one beat per quantum per job).
    const double tolerance = 1e-3 * static_cast<double>(per_job) +
        1e4;
    EXPECT_NEAR(static_cast<double>(soc.stats().dramBytes),
                static_cast<double>(per_job), tolerance);
}

TEST(Properties, TrafficAtLeastModelFootprint)
{
    // A job must move at least its weights once through DRAM.
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::AlexNet));
    soc.run();
    EXPECT_GE(soc.results()[0].dramBytesMoved,
              dnn::getModel(dnn::ModelId::AlexNet).totalWeightBytes());
}

// --- Quantum robustness ---------------------------------------------------

class QuantumSweep : public ::testing::TestWithParam<Cycles>
{
};

TEST_P(QuantumSweep, IsolatedLatencyQuantumInsensitive)
{
    sim::SocConfig base;
    sim::SocConfig varied;
    varied.quantum = GetParam();

    exp::clearOracleCache();
    const double a = static_cast<double>(
        exp::isolatedLatency(dnn::ModelId::GoogleNet, 2, base));
    exp::clearOracleCache();
    const double b = static_cast<double>(
        exp::isolatedLatency(dnn::ModelId::GoogleNet, 2, varied));
    exp::clearOracleCache();
    // Within 3%: the quantum is a simulation step, not a model
    // parameter.
    EXPECT_NEAR(b / a, 1.0, 0.03) << "quantum=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweep,
                         ::testing::Values(128, 256, 1024, 2048));

// --- Throttle rate enforcement --------------------------------------------

struct ThrottleCase
{
    Cycles window;
    std::uint64_t threshold;
};

class ThrottleRateSweep
    : public ::testing::TestWithParam<ThrottleCase>
{
};

TEST_P(ThrottleRateSweep, SteadyStateRateMatchesConfig)
{
    const auto [window, threshold] = GetParam();
    hw::ThrottleEngine e;
    e.configure({window, threshold});
    constexpr Cycles total = 2'000'000;
    const std::uint64_t granted = e.advance(total, total);
    const double rate = static_cast<double>(granted) / total;
    const double target = std::min(
        1.0, static_cast<double>(threshold) / window);
    EXPECT_NEAR(rate, target, 0.01)
        << "window=" << window << " threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThrottleRateSweep,
    ::testing::Values(ThrottleCase{64, 16}, ThrottleCase{64, 64},
                      ThrottleCase{512, 128}, ThrottleCase{4096, 1024},
                      ThrottleCase{65536, 4096},
                      ThrottleCase{1000, 333}));

// --- Policy-independent invariants ----------------------------------------

class PolicyInvariants
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicyInvariants, RunInvariantsHold)
{
    const sim::SocConfig cfg;
    workload::TraceConfig trace;
    trace.set = workload::WorkloadSet::C;
    trace.qos = workload::QosLevel::Medium;
    trace.numTasks = 30;
    trace.seed = 5;
    const auto r = exp::runScenario(GetParam(), trace, cfg);

    ASSERT_EQ(r.jobs.size(), 30u);
    for (const auto &j : r.jobs) {
        // Causality.
        EXPECT_GE(j.firstStart, j.spec.dispatch);
        EXPECT_GT(j.finish, j.firstStart);
        // A job cannot move fewer DRAM bytes than zero nor more L2
        // bytes than... L2 >= DRAM always.
        EXPECT_GE(j.l2BytesMoved, j.dramBytesMoved);
        // No job finishes faster than its full-SoC isolated run.
        const Cycles iso = exp::isolatedLatency(
            dnn::modelIdFromName(j.spec.model->name()),
            cfg.numTiles, cfg);
        EXPECT_GE(j.finish - j.firstStart, iso / 2)
            << GetParam() << " job " << j.spec.id;
    }
    // Metrics are within their domains.
    EXPECT_GE(r.metrics.slaRate, 0.0);
    EXPECT_LE(r.metrics.slaRate, 1.0);
    EXPECT_GE(r.metrics.fairness, 0.0);
    EXPECT_LE(r.metrics.fairness, 1.0 + 1e-9);
    EXPECT_GT(r.metrics.stp, 0.0);
    EXPECT_LE(r.metrics.stp, 30.0 + 1e-9);
    EXPECT_LE(r.dramBusyFraction, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::ValuesIn(exp::allPolicySpecs()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// --- Load monotonicity ------------------------------------------------------

TEST(Properties, HigherLoadNeverImprovesSla)
{
    const sim::SocConfig cfg;
    double prev = 1.1;
    for (double load : {0.5, 1.0, 2.0}) {
        workload::TraceConfig trace;
        trace.set = workload::WorkloadSet::A;
        trace.qos = workload::QosLevel::Medium;
        trace.numTasks = 60;
        trace.loadFactor = load;
        trace.seed = 9;
        const auto r = exp::runScenario("moca", trace, cfg);
        EXPECT_LE(r.metrics.slaRate, prev + 0.08)
            << "load=" << load;
        prev = r.metrics.slaRate;
    }
}

} // namespace
} // namespace moca
