/**
 * @file
 * Unit tests for Algorithm 1 (the MoCA runtime's latency and
 * memory-requirement estimation): COMPUTE vs MEM branches, cache
 * rules, tile scaling, block/remaining aggregation, bandwidth-demand
 * derivation, and agreement with the simulator's measured isolated
 * latency (the paper's "within 10%" validation, asserted per model).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/model_zoo.h"
#include "exp/oracle.h"
#include "moca/runtime/latency_model.h"

namespace moca::runtime {
namespace {

sim::SocConfig
cfg()
{
    return sim::SocConfig{};
}

TEST(LatencyModel, ComputeLayerBranch)
{
    LatencyModel model(cfg());
    const auto l = dnn::Layer::conv("c", 28, 28, 128, 128, 3, 1, 1);
    const LayerEstimate est = model.estimateLayer(l, 1);
    EXPECT_GT(est.computeIdeal, 0.0);
    EXPECT_GT(est.memoryIdeal, 0.0);
    // Prediction = max + overlap_f * min.
    const double expect =
        std::max(est.computeIdeal, est.memoryIdeal) +
        cfg().overlapF * std::min(est.computeIdeal, est.memoryIdeal);
    EXPECT_DOUBLE_EQ(est.prediction, expect);
}

TEST(LatencyModel, MemLayerBranch)
{
    LatencyModel model(cfg());
    const auto l = dnn::Layer::add("a", 56, 56, 256);
    const LayerEstimate est = model.estimateLayer(l, 1);
    // MEM layers: InputB + output from DRAM; all operands through L2.
    EXPECT_EQ(est.totalMem, l.inputBytes() + l.outputBytes());
    EXPECT_EQ(est.fromDram, l.inputBytes() / 2 + l.outputBytes());
    EXPECT_GT(est.prediction, 0.0);
}

TEST(LatencyModel, FcIsMemoryBound)
{
    LatencyModel model(cfg());
    const auto l = dnn::Layer::dense("fc6", 9216, 4096);
    const LayerEstimate est = model.estimateLayer(l, 1);
    EXPECT_GT(est.memoryIdeal, est.computeIdeal * 0.5);
    // Nearly all traffic reaches DRAM (weights dominate).
    EXPECT_GT(static_cast<double>(est.fromDram),
              0.9 * static_cast<double>(l.weightBytes()));
    // Average bandwidth demand approaches the attainable DRAM rate.
    EXPECT_GT(est.bwRate(), 8.0);
}

TEST(LatencyModel, BigImageReloadsFromDram)
{
    LatencyModel model(cfg());
    // Input tensor far above the 2 MB L2.
    const auto big = dnn::Layer::conv("c", 416, 416, 32, 64, 3, 1, 1);
    const auto est = model.estimateLayer(big, 1);
    EXPECT_GE(est.fromDram,
              big.weightBytes() + big.outputBytes() + big.inputBytes());
}

TEST(LatencyModel, MoreTilesReduceComputeNotDram)
{
    LatencyModel model(cfg());
    const auto l = dnn::Layer::conv("c", 56, 56, 256, 256, 3, 1, 1);
    const auto e1 = model.estimateLayer(l, 1);
    const auto e8 = model.estimateLayer(l, 8);
    EXPECT_LT(e8.computeIdeal, e1.computeIdeal);
    EXPECT_EQ(e8.fromDram, e1.fromDram);
}

TEST(LatencyModel, EstimateRemainingDecreases)
{
    LatencyModel model(cfg());
    const auto &net = dnn::getModel(dnn::ModelId::ResNet50);
    double prev = model.estimateRemaining(net, 0, 2).prediction;
    for (std::size_t from = 10; from < net.numLayers(); from += 25) {
        const double cur =
            model.estimateRemaining(net, from, 2).prediction;
        EXPECT_LT(cur, prev);
        prev = cur;
    }
    EXPECT_DOUBLE_EQ(
        model.estimateRemaining(net, net.numLayers(), 2).prediction,
        0.0);
}

TEST(LatencyModel, BlocksSumToModel)
{
    LatencyModel model(cfg());
    const auto &net = dnn::getModel(dnn::ModelId::GoogleNet);
    LayerEstimate total;
    for (std::size_t b = 0; b < net.numBlocks(); ++b)
        total += model.estimateBlock(net, b, 2);
    EXPECT_NEAR(total.prediction, model.estimateModel(net, 2),
                1e-6 * model.estimateModel(net, 2));
}

TEST(LatencyModel, AvgBwOrdersModelsByMemoryIntensity)
{
    LatencyModel model(cfg());
    // AlexNet (FC-heavy) demands more average bandwidth than
    // YOLO-Lite (small convs with reuse).
    const double alex =
        model.estimateAvgBw(dnn::getModel(dnn::ModelId::AlexNet), 2);
    const double lite =
        model.estimateAvgBw(dnn::getModel(dnn::ModelId::YoloLite), 2);
    EXPECT_GT(alex, lite);
}

/**
 * The paper's validation: prediction within 10% of measured isolated
 * runtime, across networks and tile counts.
 */
class PredictionAccuracy
    : public ::testing::TestWithParam<dnn::ModelId>
{
};

TEST_P(PredictionAccuracy, Within10Percent)
{
    LatencyModel model(cfg());
    const auto &net = dnn::getModel(GetParam());
    for (int tiles : {1, 2, 8}) {
        const double measured = static_cast<double>(
            exp::isolatedLatency(GetParam(), tiles, cfg()));
        const double predicted = model.estimateModel(net, tiles);
        const double err = std::abs(predicted - measured) / measured;
        EXPECT_LT(err, 0.10)
            << net.name() << " tiles=" << tiles << " measured="
            << measured << " predicted=" << predicted;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PredictionAccuracy,
    ::testing::ValuesIn(dnn::allModelIds()),
    [](const ::testing::TestParamInfo<dnn::ModelId> &info) {
        std::string n = dnn::modelIdName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(TuneOverlapF, RecoversConfiguredFactor)
{
    // Measure a few layers on the simulator, then ask the tuner to
    // recover overlap_f; it should land near the configured value.
    const sim::SocConfig c = cfg();
    const auto &net = dnn::getModel(dnn::ModelId::ResNet50);
    std::vector<std::pair<const dnn::Layer *, double>> measured;
    for (std::size_t i = 2; i < net.numLayers() && measured.size() < 5;
         i += 9) {
        const dnn::Layer &l = net.layer(i);
        if (l.layerClass() != dnn::LayerClass::Compute)
            continue;
        const dnn::Model one("single", dnn::ModelSize::Light, {l});
        exp::SoloPolicy policy(2);
        sim::Soc soc(c, policy);
        sim::JobSpec spec;
        spec.id = 0;
        spec.model = &one;
        soc.addJob(spec);
        soc.run();
        measured.push_back(
            {&l, static_cast<double>(soc.results()[0].latency())});
    }
    ASSERT_GE(measured.size(), 3u);
    const double tuned = tuneOverlapF(c, measured, 2);
    EXPECT_NEAR(tuned, c.overlapF, 0.1);
}

} // namespace
} // namespace moca::runtime
