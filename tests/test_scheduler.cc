/**
 * @file
 * Unit tests for Algorithm 3 (the MoCA scheduler): scoring
 * (priority + waiting-time slowdown), the memory-intensiveness flag,
 * ExQueue thresholding, group formation with mem/non-mem pairing, and
 * the mix-rebalancing bias.
 */

#include <gtest/gtest.h>

#include "moca/sched/scheduler.h"

namespace moca::sched {
namespace {

constexpr double kDramBw = 16.0;

SchedTask
task(int id, int priority, Cycles dispatched, double est_time,
     double avg_bw)
{
    SchedTask t;
    t.id = id;
    t.priority = priority;
    t.dispatched = dispatched;
    t.estimatedTime = est_time;
    t.estimatedAvgBw = avg_bw;
    return t;
}

TEST(Scheduler, ScoreCombinesPriorityAndSlowdown)
{
    const SchedTask t = task(0, 5, 1000, 2000.0, 1.0);
    // waiting = 5000, slowdown = 5000/2000 = 2.5; score = 5 + 2.5.
    EXPECT_DOUBLE_EQ(MocaScheduler::score(t, 6000), 7.5);
}

TEST(Scheduler, WaitingEscalatesLowPriority)
{
    // An old low-priority task eventually outranks a fresh
    // high-priority one (anti-starvation).
    const SchedTask old_low = task(0, 0, 0, 1000.0, 1.0);
    const SchedTask fresh_high = task(1, 11, 99'000, 1000.0, 1.0);
    const Cycles now = 100'000;
    EXPECT_GT(MocaScheduler::score(old_low, now),
              MocaScheduler::score(fresh_high, now));
}

TEST(Scheduler, MemIntensiveFlagAtHalfDramBw)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    EXPECT_TRUE(s.isMemIntensive(task(0, 0, 0, 1.0, 8.1)));
    EXPECT_FALSE(s.isMemIntensive(task(0, 0, 0, 1.0, 7.9)));
}

TEST(Scheduler, SelectsByScoreOrder)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 2, 0, 1e6, 1.0),
        task(1, 9, 0, 1e6, 1.0),
        task(2, 5, 0, 1e6, 1.0),
    };
    const auto group = s.selectGroup(queue, 100, 3);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group[0], 1);
    EXPECT_EQ(group[1], 2);
    EXPECT_EQ(group[2], 0);
}

TEST(Scheduler, RespectsSlotLimit)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue;
    for (int i = 0; i < 10; ++i)
        queue.push_back(task(i, i, 0, 1e6, 1.0));
    EXPECT_EQ(s.selectGroup(queue, 100, 4).size(), 4u);
    EXPECT_TRUE(s.selectGroup(queue, 100, 0).empty());
}

TEST(Scheduler, PairsMemIntensiveWithCompute)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 11, 0, 1e6, 12.0), // mem-intensive, top score
        task(1, 10, 0, 1e6, 12.0), // mem-intensive
        task(2, 1, 0, 1e6, 1.0),   // compute-bound, low score
    };
    const auto group = s.selectGroup(queue, 100, 2);
    ASSERT_EQ(group.size(), 2u);
    EXPECT_EQ(group[0], 0);
    // The pairing pulls the compute-bound task ahead of the
    // higher-scored second memory hog.
    EXPECT_EQ(group[1], 2);
}

TEST(Scheduler, PairingDisabledFollowsScore)
{
    SchedulerConfig cfg;
    cfg.memAwarePairing = false;
    MocaScheduler s(cfg, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 11, 0, 1e6, 12.0),
        task(1, 10, 0, 1e6, 12.0),
        task(2, 1, 0, 1e6, 1.0),
    };
    const auto group = s.selectGroup(queue, 100, 2);
    ASSERT_EQ(group.size(), 2u);
    EXPECT_EQ(group[0], 0);
    EXPECT_EQ(group[1], 1);
}

TEST(Scheduler, ThresholdFiltersQueue)
{
    SchedulerConfig cfg;
    cfg.scoreThreshold = 6.0;
    MocaScheduler s(cfg, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 2, 0, 1e9, 1.0), // score ~2: below threshold
        task(1, 9, 0, 1e9, 1.0), // score ~9: above
    };
    const auto group = s.selectGroup(queue, 100, 4);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], 1);
}

TEST(Scheduler, PreferNonMemBiasPicksComputeFirst)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 11, 0, 1e6, 12.0), // mem-intensive, top score
        task(1, 5, 0, 1e6, 1.0),   // compute-bound
    };
    const auto group = s.selectGroup(
        queue, 100, 1, MocaScheduler::MixBias::PreferNonMem);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], 1);
}

TEST(Scheduler, PreferMemBiasPicksHogFirst)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 11, 0, 1e6, 1.0), // compute-bound, top score
        task(1, 5, 0, 1e6, 12.0), // mem-intensive
    };
    const auto group = s.selectGroup(
        queue, 100, 1, MocaScheduler::MixBias::PreferMem);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], 1);
}

TEST(Scheduler, BiasFallsBackWhenNoMatch)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue = {
        task(0, 3, 0, 1e6, 12.0), // only mem-intensive tasks
        task(1, 2, 0, 1e6, 12.0),
    };
    const auto group = s.selectGroup(
        queue, 100, 1, MocaScheduler::MixBias::PreferNonMem);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0], 0);
}

TEST(Scheduler, DeterministicTieBreakById)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    std::vector<SchedTask> queue = {
        task(3, 5, 0, 1e6, 1.0),
        task(1, 5, 0, 1e6, 1.0),
        task(2, 5, 0, 1e6, 1.0),
    };
    const auto group = s.selectGroup(queue, 100, 3);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group[0], 1);
    EXPECT_EQ(group[1], 2);
    EXPECT_EQ(group[2], 3);
}

TEST(Scheduler, EmptyQueue)
{
    MocaScheduler s(SchedulerConfig{}, kDramBw);
    EXPECT_TRUE(s.selectGroup({}, 100, 4).empty());
}

} // namespace
} // namespace moca::sched
