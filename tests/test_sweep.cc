/**
 * @file
 * Tests for the parallel experiment engine: determinism (parallel ==
 * serial, cell for cell), in-order sink delivery, the low-level
 * indexed pool, per-cell seed derivation, custom-policy cells, and
 * the CSV/JSON sinks' round-trip fidelity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/log.h"
#include "exp/sweep/sinks.h"
#include "exp/sweep/sweep.h"
#include "moca/moca_policy.h"

namespace moca::exp {
namespace {

/** A small but non-trivial grid: 2 scenarios x all 4 policies on
 *  shared traces, plus one mixed-config cell. */
std::vector<SweepCell>
smallGrid(int tasks = 16)
{
    const sim::SocConfig cfg;
    std::vector<SweepCell> grid;
    int scenario = 0;
    for (auto qos :
         {workload::QosLevel::Light, workload::QosLevel::Hard}) {
        workload::TraceConfig trace;
        trace.set = workload::WorkloadSet::C;
        trace.qos = qos;
        trace.numTasks = tasks;
        trace.seed = deriveCellSeed(7, static_cast<std::size_t>(scenario));
        auto specs = std::make_shared<const std::vector<sim::JobSpec>>(
            makeTrace(trace, cfg));
        for (const std::string &spec : allPolicySpecs()) {
            SweepCell cell;
            cell.label = strprintf("scenario-%d", scenario);
            cell.policy = spec;
            cell.trace = trace;
            cell.soc = cfg;
            cell.specs = specs;
            grid.push_back(std::move(cell));
        }
        ++scenario;
    }

    // One cell with a different SoC configuration, to exercise the
    // config-keyed oracle cache under concurrency.
    SweepCell mixed;
    mixed.label = "mixed-config";
    mixed.policy = "moca";
    mixed.trace.set = workload::WorkloadSet::A;
    mixed.trace.numTasks = tasks;
    mixed.trace.seed = 3;
    mixed.soc.numTiles = 4;
    mixed.trace.numTiles = 4;
    grid.push_back(std::move(mixed));
    return grid;
}

void
expectResultsIdentical(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.totalMigrations, b.totalMigrations);
    EXPECT_EQ(a.totalPreemptions, b.totalPreemptions);
    EXPECT_EQ(a.totalThrottleReconfigs, b.totalThrottleReconfigs);
    // Bit-identical, not approximately equal: the same cells must
    // compute the same doubles regardless of worker interleaving.
    EXPECT_EQ(a.metrics.slaRate, b.metrics.slaRate);
    EXPECT_EQ(a.metrics.stp, b.metrics.stp);
    EXPECT_EQ(a.metrics.fairness, b.metrics.fairness);
    EXPECT_EQ(a.dramBusyFraction, b.dramBusyFraction);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
        EXPECT_EQ(a.jobs[j].spec.id, b.jobs[j].spec.id);
        EXPECT_EQ(a.jobs[j].firstStart, b.jobs[j].firstStart);
        EXPECT_EQ(a.jobs[j].finish, b.jobs[j].finish);
        EXPECT_EQ(a.jobs[j].stallCycles, b.jobs[j].stallCycles);
    }
}

TEST(DeriveCellSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(deriveCellSeed(1, 0), deriveCellSeed(1, 0));
    EXPECT_NE(deriveCellSeed(1, 0), deriveCellSeed(1, 1));
    EXPECT_NE(deriveCellSeed(1, 0), deriveCellSeed(2, 0));
    // No trivial collisions across a realistic grid size.
    std::vector<std::uint64_t> seen;
    for (std::size_t i = 0; i < 1000; ++i)
        seen.push_back(deriveCellSeed(42, i));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(SweepRunner, ParallelMatchesSerialCellForCell)
{
    const auto grid = smallGrid();

    SweepOptions serial;
    serial.jobs = 1;
    const auto r1 = SweepRunner(serial).run(grid);

    SweepOptions parallel;
    parallel.jobs = 4;
    const auto r4 = SweepRunner(parallel).run(grid);

    ASSERT_EQ(r1.size(), grid.size());
    ASSERT_EQ(r4.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectResultsIdentical(r1[i], r4[i]);
}

TEST(SweepRunner, SinksObserveCellOrder)
{
    struct OrderSink : ResultSink
    {
        std::vector<std::size_t> indices;
        bool finished = false;
        void onResult(std::size_t index, const SweepCell &,
                      const ScenarioResult &) override
        {
            indices.push_back(index);
            EXPECT_FALSE(finished);
        }
        void finish() override { finished = true; }
    };

    const auto grid = smallGrid(8);
    OrderSink sink;
    SweepOptions opts;
    opts.jobs = 4;
    SweepRunner(opts).run(grid, {&sink});

    ASSERT_EQ(sink.indices.size(), grid.size());
    for (std::size_t i = 0; i < sink.indices.size(); ++i)
        EXPECT_EQ(sink.indices[i], i);
    EXPECT_TRUE(sink.finished);
}

TEST(SweepRunner, RunIndexedExecutesEveryTaskExactlyOnce)
{
    const std::size_t n = 200;
    std::vector<std::atomic<int>> hits(n);
    SweepRunner::runIndexed(n, 8, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(SweepRunner, RunIndexedPropagatesExceptions)
{
    EXPECT_THROW(
        SweepRunner::runIndexed(50, 4,
                                [&](std::size_t i) {
                                    if (i == 13)
                                        throw std::runtime_error("boom");
                                }),
        std::runtime_error);
}

TEST(SweepRunner, CustomPolicyFactoryMatchesRegistryPolicy)
{
    // A factory building the default MocaPolicy must reproduce the
    // registry cell exactly.
    const sim::SocConfig cfg;
    workload::TraceConfig trace;
    trace.numTasks = 12;
    trace.seed = 5;

    SweepCell registry;
    registry.label = "registry";
    registry.policy = "moca";
    registry.trace = trace;
    registry.soc = cfg;

    SweepCell custom = registry;
    custom.label = "custom";
    custom.policyFactory = [](const sim::SocConfig &c) {
        return std::make_unique<MocaPolicy>(c, MocaPolicyConfig{});
    };

    const auto results = SweepRunner().run({registry, custom});
    expectResultsIdentical(results[0], results[1]);
}

TEST(Sinks, CsvRoundTrip)
{
    const auto grid = smallGrid(8);
    const std::string path = "test_sweep_roundtrip.csv";
    CsvSink csv(path);
    SweepOptions opts;
    opts.jobs = 2;
    const auto results = SweepRunner(opts).run(grid, {&csv});

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));

    // Header matches the published field list.
    std::string header;
    for (const auto &f : sweepRecordFields())
        header += (header.empty() ? "" : ",") + f;
    EXPECT_EQ(line, header);

    // One row per cell, index and sla_rate faithful to the results.
    std::size_t row = 0;
    while (std::getline(in, line)) {
        std::stringstream ss(line);
        std::string field;
        std::vector<std::string> fields;
        while (std::getline(ss, field, ','))
            fields.push_back(field);
        ASSERT_EQ(fields.size(), sweepRecordFields().size());
        EXPECT_EQ(fields[0], strprintf("%zu", row));
        EXPECT_EQ(fields[2], results[row].policy);
        EXPECT_NEAR(std::stod(fields[10]),
                    results[row].metrics.slaRate, 1e-6);
        ++row;
    }
    EXPECT_EQ(row, grid.size());
    std::remove(path.c_str());
}

TEST(Sinks, JsonRoundTrip)
{
    const auto grid = smallGrid(8);
    JsonSink json(""); // No file: inspect text() directly.
    SweepOptions opts;
    opts.jobs = 2;
    const auto results = SweepRunner(opts).run(grid, {&json});
    const std::string text = json.text();

    // Structural sanity: one object per cell, every field present in
    // every record.
    std::size_t objects = 0;
    for (std::size_t pos = text.find('{'); pos != std::string::npos;
         pos = text.find('{', pos + 1))
        ++objects;
    EXPECT_EQ(objects, grid.size());
    for (const auto &f : sweepRecordFields()) {
        std::size_t count = 0;
        const std::string needle = "\"" + f + "\": ";
        for (std::size_t pos = text.find(needle);
             pos != std::string::npos;
             pos = text.find(needle, pos + 1))
            ++count;
        EXPECT_EQ(count, grid.size()) << "field " << f;
    }

    // Spot-check values: numeric fields unquoted, strings quoted.
    EXPECT_NE(text.find("\"index\": 0,"), std::string::npos);
    EXPECT_NE(text.find(strprintf("\"sla_rate\": %.6f",
                                  results[0].metrics.slaRate)),
              std::string::npos);
    EXPECT_NE(text.find("\"policy\": \"moca\""), std::string::npos);
}

} // namespace
} // namespace moca::exp
