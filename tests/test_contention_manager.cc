/**
 * @file
 * Unit tests for Algorithm 2 (contention detection + HW update) and
 * the scoreboard: overflow detection, score computation (priority +
 * capped urgency, hopeless-deadline guard), score-weighted bandwidth
 * allocation, throttle programming, and allocation stability across
 * co-runner sweeps.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "moca/runtime/contention_manager.h"

namespace moca::runtime {
namespace {

sim::SocConfig
cfg()
{
    return sim::SocConfig{};
}

JobSnapshot
snap(int id, dnn::ModelId model, int priority = 0,
     double slack = 1e9, std::size_t next_layer = 0)
{
    JobSnapshot s;
    s.appId = id;
    s.model = &dnn::getModel(model);
    s.nextLayer = next_layer;
    s.numTiles = 2;
    s.userPriority = priority;
    s.slackCycles = slack;
    return s;
}

TEST(Scoreboard, UpdateRemoveLookup)
{
    Scoreboard sb;
    sb.update(1, 4.0, 2.0);
    sb.update(2, 8.0, 1.0);
    EXPECT_TRUE(sb.contains(1));
    EXPECT_DOUBLE_EQ(sb.entry(1).bwRate, 4.0);
    EXPECT_DOUBLE_EQ(sb.otherBwRate(1), 8.0);
    EXPECT_DOUBLE_EQ(sb.otherWeightSum(1), 8.0);
    sb.remove(1);
    EXPECT_FALSE(sb.contains(1));
    EXPECT_EQ(sb.size(), 1u);
}

TEST(ContentionManager, SingleJobNoContention)
{
    ContentionManager cm(cfg());
    const auto d = cm.onBlockBoundary(
        snap(0, dnn::ModelId::ResNet50));
    EXPECT_FALSE(d.contention);
    EXPECT_FALSE(d.hwConfig.enabled());
    EXPECT_EQ(d.nextChangeCycles, 0u); // no throttle scheduled
    EXPECT_GT(d.prediction, 0.0);
}

TEST(ContentionManager, OverflowDetectedWithMemoryHogs)
{
    ContentionManager cm(cfg());
    // Several co-located AlexNets at their FC blocks demand far more
    // than 16 B/cycle in aggregate.
    const auto &alex = dnn::getModel(dnn::ModelId::AlexNet);
    std::size_t fc_layer = 0;
    for (std::size_t i = 0; i < alex.numLayers(); ++i) {
        if (alex.layer(i).kind == dnn::LayerKind::Dense) {
            fc_layer = i;
            break;
        }
    }
    ContentionDecision last;
    for (int id = 0; id < 3; ++id)
        last = cm.onBlockBoundary(
            snap(id, dnn::ModelId::AlexNet, 0, 1e9, fc_layer));
    EXPECT_TRUE(last.contention);
    EXPECT_TRUE(last.hwConfig.enabled());
    EXPECT_GT(last.hwConfig.thresholdLoad, 0u);
    // Allocated rate below the unthrottled demand.
    EXPECT_LT(last.bwRate, cfg().dramBytesPerCycle);
    // Event-driven callers bound their time advance on the decision's
    // next state change: one monitoring window.
    EXPECT_EQ(last.nextChangeCycles, last.hwConfig.windowCycles);
    EXPECT_GT(last.nextChangeCycles, 0u);
}

TEST(ContentionManager, HigherScoreGetsMoreBandwidth)
{
    const auto &alex = dnn::getModel(dnn::ModelId::AlexNet);
    std::size_t fc_layer = 0;
    for (std::size_t i = 0; i < alex.numLayers(); ++i) {
        if (alex.layer(i).kind == dnn::LayerKind::Dense) {
            fc_layer = i;
            break;
        }
    }
    ContentionManager cm(cfg());
    cm.onBlockBoundary(snap(0, dnn::ModelId::AlexNet, 0, 1e9,
                            fc_layer));
    cm.onBlockBoundary(snap(1, dnn::ModelId::AlexNet, 11, 1e9,
                            fc_layer));
    // Re-run both against the fully populated scoreboard.
    const auto low = cm.onBlockBoundary(
        snap(0, dnn::ModelId::AlexNet, 0, 1e9, fc_layer));
    const auto high = cm.onBlockBoundary(
        snap(1, dnn::ModelId::AlexNet, 11, 1e9, fc_layer));
    ASSERT_TRUE(low.contention);
    ASSERT_TRUE(high.contention);
    EXPECT_GT(high.bwRate, low.bwRate);
    EXPECT_GT(high.score, low.score);
}

TEST(ContentionManager, UrgencyRaisesScore)
{
    ContentionManager cm(cfg());
    const auto relaxed = cm.onBlockBoundary(
        snap(0, dnn::ModelId::ResNet50, 5, 1e12));
    const auto urgent = cm.onBlockBoundary(
        snap(0, dnn::ModelId::ResNet50, 5, 1e5));
    EXPECT_GT(urgent.score, relaxed.score);
}

TEST(ContentionManager, UrgencyIsCapped)
{
    ContentionManager cm(cfg());
    const auto d = cm.onBlockBoundary(
        snap(0, dnn::ModelId::YoloV2, 3, 1.0));
    EXPECT_LE(d.score, 3.0 + ContentionManager::kMaxUrgency + 1e-9);
}

TEST(ContentionManager, HopelessDeadlineFallsBackToPriority)
{
    ContentionManager cm(cfg());
    const auto d = cm.onBlockBoundary(
        snap(0, dnn::ModelId::ResNet50, 7, -5e6));
    EXPECT_DOUBLE_EQ(d.score, 7.0);
}

TEST(ContentionManager, AllocationIsStableAcrossSweeps)
{
    // Re-running Algorithm 2 for every co-runner against the same
    // demands must converge (no oscillation): the second sweep
    // reproduces the first sweep's allocations.
    const auto &alex = dnn::getModel(dnn::ModelId::AlexNet);
    std::size_t fc_layer = 0;
    for (std::size_t i = 0; i < alex.numLayers(); ++i) {
        if (alex.layer(i).kind == dnn::LayerKind::Dense) {
            fc_layer = i;
            break;
        }
    }
    ContentionManager cm(cfg());
    for (int id = 0; id < 4; ++id)
        cm.onBlockBoundary(
            snap(id, dnn::ModelId::AlexNet, id, 1e9, fc_layer));

    std::vector<double> first, second;
    for (int id = 0; id < 4; ++id)
        first.push_back(
            cm.onBlockBoundary(
                  snap(id, dnn::ModelId::AlexNet, id, 1e9, fc_layer))
                .bwRate);
    for (int id = 0; id < 4; ++id)
        second.push_back(
            cm.onBlockBoundary(
                  snap(id, dnn::ModelId::AlexNet, id, 1e9, fc_layer))
                .bwRate);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_NEAR(first[i], second[i], 1e-9) << "job " << i;
}

TEST(ContentionManager, AllocationsRespectChannelBandwidth)
{
    const auto &alex = dnn::getModel(dnn::ModelId::AlexNet);
    std::size_t fc_layer = 0;
    for (std::size_t i = 0; i < alex.numLayers(); ++i) {
        if (alex.layer(i).kind == dnn::LayerKind::Dense) {
            fc_layer = i;
            break;
        }
    }
    ContentionManager cm(cfg());
    for (int id = 0; id < 4; ++id)
        cm.onBlockBoundary(
            snap(id, dnn::ModelId::AlexNet, id * 3, 1e9, fc_layer));
    double total = 0.0;
    for (int id = 0; id < 4; ++id)
        total += cm.onBlockBoundary(
                       snap(id, dnn::ModelId::AlexNet, id * 3, 1e9,
                            fc_layer))
                     .bwRate;
    // Sum of allocations stays within the channel bandwidth plus the
    // per-job minimum-trickle guarantee.
    EXPECT_LE(total, cfg().dramBytesPerCycle * 1.25);
}

TEST(ContentionManager, ComputeBoundBlockNotThrottled)
{
    // Saturate the scoreboard with hogs, then reconfigure a job in a
    // genuinely compute-bound region (high-reuse 3x3 convolutions):
    // contention is reported but no window is programmed (not worth
    // regulating).
    const auto &alex = dnn::getModel(dnn::ModelId::AlexNet);
    std::size_t fc_layer = 0;
    for (std::size_t i = 0; i < alex.numLayers(); ++i) {
        if (alex.layer(i).kind == dnn::LayerKind::Dense) {
            fc_layer = i;
            break;
        }
    }
    ContentionManager cm(cfg());
    for (int id = 1; id <= 3; ++id)
        cm.onBlockBoundary(
            snap(id, dnn::ModelId::AlexNet, 0, 1e9, fc_layer));

    static const dnn::Model compute_net(
        "compute-heavy", dnn::ModelSize::Light,
        {dnn::Layer::conv("c1", 56, 56, 256, 256, 3, 1, 1),
         dnn::Layer::conv("c2", 56, 56, 256, 256, 3, 1, 1),
         dnn::Layer::conv("c3", 56, 56, 256, 256, 3, 1, 1)});
    JobSnapshot s;
    s.appId = 0;
    s.model = &compute_net;
    s.nextLayer = 0;
    s.numTiles = 2;
    s.userPriority = 0;
    s.slackCycles = 1e9;
    const auto d = cm.onBlockBoundary(s);
    EXPECT_FALSE(d.hwConfig.enabled());
}

TEST(ContentionManager, CompletionRemovesFromScoreboard)
{
    ContentionManager cm(cfg());
    cm.onBlockBoundary(snap(0, dnn::ModelId::AlexNet));
    cm.onBlockBoundary(snap(1, dnn::ModelId::AlexNet));
    EXPECT_EQ(cm.scoreboard().size(), 2u);
    cm.onJobComplete(0);
    EXPECT_EQ(cm.scoreboard().size(), 1u);
}

} // namespace
} // namespace moca::runtime
