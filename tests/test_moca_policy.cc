/**
 * @file
 * Behavioural tests of the full-stack MoCA policy: admission via
 * Algorithm 3, throttle programming via Algorithm 2 at block
 * boundaries, the co-runner reconfiguration sweep, rare compute
 * repartitioning, and the ablation knobs.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "exp/oracle.h"
#include "moca/moca_policy.h"
#include "sim/soc.h"

namespace moca {
namespace {

sim::JobSpec
spec(int id, dnn::ModelId model, Cycles dispatch = 0,
     int priority = 0, Cycles sla = 1'000'000'000)
{
    sim::JobSpec s;
    s.id = id;
    s.model = &dnn::getModel(model);
    s.dispatch = dispatch;
    s.priority = priority;
    s.slaLatency = sla;
    return s;
}

TEST(MocaPolicy, RunsSlotsConcurrently)
{
    sim::SocConfig cfg;
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::SqueezeNet));
    soc.run();
    for (const auto &r : soc.results())
        EXPECT_EQ(r.firstStart, 0u);
    EXPECT_EQ(policy.policyStats().jobsAdmitted, 4);
}

TEST(MocaPolicy, ThrottlesUnderMemoryContention)
{
    sim::SocConfig cfg;
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    // Four AlexNets: the FC blocks collide on DRAM bandwidth.
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::AlexNet));
    soc.run();
    EXPECT_GT(policy.policyStats().contentionDetected, 0);
    int reconfigs = 0;
    for (const auto &r : soc.results())
        reconfigs += r.throttleReconfigs;
    EXPECT_GT(reconfigs, 4);
}

TEST(MocaPolicy, NoThrottleWhenAblated)
{
    sim::SocConfig cfg;
    MocaPolicyConfig pc;
    pc.enableThrottling = false;
    MocaPolicy policy(cfg, pc);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, dnn::ModelId::AlexNet));
    soc.run();
    for (const auto &r : soc.results())
        EXPECT_EQ(r.throttleReconfigs, 0);
}

TEST(MocaPolicy, LoneHeavyJobExpands)
{
    sim::SocConfig cfg;
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::YoloV2));
    soc.run();
    // The lone long job is worth a compute repartition; it finishes
    // much faster than a 2-tile (one-slot) run.
    EXPECT_GE(policy.policyStats().repartitions, 1);
    const Cycles two_tile =
        exp::isolatedLatency(dnn::ModelId::YoloV2, 2, cfg);
    EXPECT_LT(soc.results()[0].latency(), two_tile);
}

TEST(MocaPolicy, ShortJobNotWorthExpanding)
{
    sim::SocConfig cfg;
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::Kws));
    soc.run();
    // KWS finishes in well under the repartition-benefit horizon.
    EXPECT_EQ(policy.policyStats().repartitions, 0);
    EXPECT_EQ(soc.results()[0].migrations, 0);
}

TEST(MocaPolicy, RepartitionDisabledByKnob)
{
    sim::SocConfig cfg;
    MocaPolicyConfig pc;
    pc.enableComputeRepartition = false;
    MocaPolicy policy(cfg, pc);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, dnn::ModelId::YoloV2));
    soc.run();
    EXPECT_EQ(policy.policyStats().repartitions, 0);
}

TEST(MocaPolicy, ThrottlingImprovesHighPriorityLatency)
{
    // Two co-located jobs: a low-priority memory hog (AlexNet) and a
    // high-priority urgent job.  With throttling, the urgent job
    // finishes no later than without it.
    sim::SocConfig cfg;
    auto run_urgent = [&](bool throttle) {
        MocaPolicyConfig pc;
        pc.enableThrottling = throttle;
        MocaPolicy policy(cfg, pc);
        sim::Soc soc(cfg, policy);
        soc.addJob(spec(0, dnn::ModelId::AlexNet, 0, 0));
        soc.addJob(spec(1, dnn::ModelId::AlexNet, 0, 0));
        // Urgent job with a tight deadline.
        soc.addJob(spec(2, dnn::ModelId::GoogleNet, 0, 11,
                        20'000'000));
        soc.run();
        for (const auto &r : soc.results())
            if (r.spec.id == 2)
                return r.latency();
        return Cycles(0);
    };
    const Cycles with_throttle = run_urgent(true);
    const Cycles without = run_urgent(false);
    EXPECT_LE(with_throttle, without + without / 20);
}

TEST(MocaPolicy, AllJobsComplete)
{
    sim::SocConfig cfg;
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    for (int i = 0; i < 12; ++i) {
        soc.addJob(spec(i,
                        i % 2 ? dnn::ModelId::AlexNet
                              : dnn::ModelId::Kws,
                        static_cast<Cycles>(i) * 700'000, i % 12));
    }
    soc.run();
    EXPECT_EQ(soc.results().size(), 12u);
}

TEST(MocaPolicy, DeterministicAcrossRuns)
{
    sim::SocConfig cfg;
    auto run_once = [&]() {
        MocaPolicy policy(cfg);
        sim::Soc soc(cfg, policy);
        for (int i = 0; i < 8; ++i)
            soc.addJob(spec(i,
                            i % 2 ? dnn::ModelId::GoogleNet
                                  : dnn::ModelId::SqueezeNet,
                            static_cast<Cycles>(i) * 400'000));
        soc.run();
        std::vector<Cycles> finishes;
        for (const auto &r : soc.results())
            finishes.push_back(r.finish);
        return finishes;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace moca
