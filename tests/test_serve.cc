/**
 * @file
 * Closed-loop serving subsystem tests (serve/): admission registry
 * grammar and decision logic, retry/backoff cadence, client-pool
 * determinism, the serve driver's accounting invariants, bit-identity
 * across PDES worker counts (failures and admission control
 * included), the forced-timeout retry path, the autoscaler's
 * drain-never-loses-work invariant, mid-run SoC fail/recover on both
 * time-advance kernels and both in-flight policies, and the
 * open-loop degenerate mode replaying cluster::runCluster.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "exp/oracle.h"
#include "serve/serve.h"

using namespace moca;
using serve::AdmissionDecision;
using serve::ServeConfig;
using serve::ServeResult;

namespace {

sim::SocConfig
testSoc(sim::SimKernel kernel = sim::SimKernel::Event)
{
    sim::SocConfig cfg;
    cfg.kernel = kernel;
    return cfg;
}

/** A small closed-loop configuration that exercises timeouts. */
ServeConfig
testServe(int socs, int clients, int rpc,
          sim::SimKernel kernel = sim::SimKernel::Event)
{
    ServeConfig sc;
    sc.soc = testSoc(kernel);
    sc.numSocs = socs;
    sc.clients.numClients = clients;
    sc.clients.requestsPerClient = rpc;
    sc.clients.set = workload::WorkloadSet::A;
    sc.clients.timeoutScale = 8.0;
    return sc;
}

std::vector<cluster::SocLoad>
loads(int socs, int outstanding_each)
{
    std::vector<cluster::SocLoad> out(
        static_cast<std::size_t>(socs));
    for (int i = 0; i < socs; ++i) {
        out[static_cast<std::size_t>(i)].socIdx = i;
        out[static_cast<std::size_t>(i)].waiting =
            outstanding_each;
    }
    return out;
}

/**
 * Field-by-field exact comparison: like the cluster engine, the
 * serving loop's contract is bit-identity, counters included.
 */
void
expectIdentical(const ServeResult &a, const ServeResult &b)
{
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.giveUps, b.giveUps);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.deferrals, b.deferrals);
    EXPECT_EQ(a.orphans, b.orphans);
    EXPECT_EQ(a.requeued, b.requeued);
    EXPECT_EQ(a.lostJobs, b.lostJobs);
    EXPECT_EQ(a.failEvents, b.failEvents);
    EXPECT_EQ(a.recoverEvents, b.recoverEvents);
    EXPECT_EQ(a.scaleUps, b.scaleUps);
    EXPECT_EQ(a.scaleDowns, b.scaleDowns);
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.successRate, b.successRate);
    EXPECT_EQ(a.meanUpSocs, b.meanUpSocs);
    EXPECT_EQ(a.clientLatency.p50, b.clientLatency.p50);
    EXPECT_EQ(a.clientLatency.p99, b.clientLatency.p99);
    EXPECT_EQ(a.cluster.slaRate, b.cluster.slaRate);
    EXPECT_EQ(a.cluster.slaRateHigh, b.cluster.slaRateHigh);
    EXPECT_EQ(a.cluster.latency.p50, b.cluster.latency.p50);
    EXPECT_EQ(a.cluster.latency.p99, b.cluster.latency.p99);
    EXPECT_EQ(a.cluster.normLatency.p99, b.cluster.normLatency.p99);
    EXPECT_EQ(a.cluster.stp, b.cluster.stp);
    EXPECT_EQ(a.cluster.makespan, b.cluster.makespan);
    EXPECT_EQ(a.cluster.goodput, b.cluster.goodput);
    EXPECT_EQ(a.cluster.shedRate, b.cluster.shedRate);
    EXPECT_EQ(a.cluster.retryRate, b.cluster.retryRate);
    EXPECT_EQ(a.cluster.timeoutRate, b.cluster.timeoutRate);
    EXPECT_EQ(a.cluster.balanceCv, b.cluster.balanceCv);
    EXPECT_EQ(a.cluster.simSteps, b.cluster.simSteps);
    ASSERT_EQ(a.cluster.perSoc.size(), b.cluster.perSoc.size());
    for (std::size_t i = 0; i < a.cluster.perSoc.size(); ++i) {
        EXPECT_EQ(a.cluster.perSoc[i].tasks,
                  b.cluster.perSoc[i].tasks);
        EXPECT_EQ(a.cluster.perSoc[i].makespan,
                  b.cluster.perSoc[i].makespan);
        EXPECT_EQ(a.cluster.perSoc[i].simSteps,
                  b.cluster.perSoc[i].simSteps);
    }
}

/** The accounting invariants every serve run must satisfy. */
void
expectAccountingInvariants(const ServeResult &r)
{
    // Every request resolves exactly once.
    EXPECT_EQ(r.requests, r.responses + r.giveUps);
    // Every admitted placement either came back to a waiting client,
    // completed as an orphan, or died with a failed SoC.
    EXPECT_EQ(r.attempts, r.responses + r.orphans + r.lostJobs);
    EXPECT_EQ(r.cluster.numTasks, r.attempts);
    EXPECT_GT(r.endCycle, 0u);
    if (r.requests > 0) {
        EXPECT_DOUBLE_EQ(r.successRate,
                         static_cast<double>(r.responses) /
                             static_cast<double>(r.requests));
    }
    if (r.responses > 0 && r.cluster.slaRate > 0.0) {
        EXPECT_GT(r.cluster.goodput, 0.0);
    }
}

} // namespace

// ---- admission registry ---------------------------------------------

TEST(Admission, RegistryGrammarAndValidation)
{
    auto &reg = serve::AdmissionRegistry::instance();
    EXPECT_STREQ(reg.make("always")->name(), "always");
    EXPECT_STREQ(reg.make("queue-cap:depth=2,defer=1")->name(),
                 "queue-cap");
    EXPECT_STREQ(
        reg.make("slo-budget:rate=2,burst=4,per_soc=0")->name(),
        "slo-budget");
    EXPECT_DEATH(reg.validate("nope"), "admission");
    EXPECT_DEATH(reg.validate("queue-cap:bogus=1"), "bogus");
    EXPECT_DEATH(reg.validate("queue-cap:depth=0"), "depth");
    EXPECT_DEATH(reg.validate("slo-budget:rate=0"), "rate");
    EXPECT_DEATH(reg.validate("slo-budget:burst=0.5"), "burst");
}

TEST(Admission, QueueCapShedsAtDepth)
{
    auto &reg = serve::AdmissionRegistry::instance();
    auto cap = reg.make("queue-cap:depth=2");
    cluster::ClusterTask task;
    // 2 SoCs x depth 2 = fleet cap 4 outstanding.
    EXPECT_EQ(cap->decide(task, 0, loads(2, 1)),
              AdmissionDecision::Admit);
    EXPECT_EQ(cap->decide(task, 0, loads(2, 2)),
              AdmissionDecision::Shed);
    auto defer = reg.make("queue-cap:depth=2,defer=1");
    EXPECT_EQ(defer->decide(task, 0, loads(2, 2)),
              AdmissionDecision::Defer);
    // The cap scales with the Up-SoC count: the same per-SoC load on
    // one SoC is over the fleet cap of 2.
    EXPECT_EQ(cap->decide(task, 0, loads(1, 2)),
              AdmissionDecision::Shed);
}

TEST(Admission, SloBudgetTokenBucket)
{
    auto &reg = serve::AdmissionRegistry::instance();
    auto bucket = reg.make("slo-budget:rate=1,burst=2,per_soc=0");
    cluster::ClusterTask task;
    const auto up = loads(1, 0);
    // Burst capacity: two admissions at t=0, then dry.
    EXPECT_EQ(bucket->decide(task, 0, up), AdmissionDecision::Admit);
    EXPECT_EQ(bucket->decide(task, 0, up), AdmissionDecision::Admit);
    EXPECT_EQ(bucket->decide(task, 0, up), AdmissionDecision::Shed);
    // rate=1/Mcycle: one token back after 1 Mcycle.
    EXPECT_EQ(bucket->decide(task, 1'000'000, up),
              AdmissionDecision::Admit);
    EXPECT_EQ(bucket->decide(task, 1'000'000, up),
              AdmissionDecision::Shed);
    // Refill saturates at burst, not at elapsed x rate.
    EXPECT_EQ(bucket->decide(task, 9'000'000, up),
              AdmissionDecision::Admit);
    EXPECT_EQ(bucket->decide(task, 9'000'000, up),
              AdmissionDecision::Admit);
    EXPECT_EQ(bucket->decide(task, 9'000'000, up),
              AdmissionDecision::Shed);
}

// ---- client pool -----------------------------------------------------

TEST(ClientPool, RetryBackoffCadence)
{
    serve::ClientPoolConfig cfg;
    cfg.backoffBase = 1.0;
    cfg.backoffFactor = 2.0;
    cfg.backoffCap = 8.0;
    const Cycles unit = 1000;
    EXPECT_EQ(serve::retryBackoff(cfg, unit, 1), 1000u);
    EXPECT_EQ(serve::retryBackoff(cfg, unit, 2), 2000u);
    EXPECT_EQ(serve::retryBackoff(cfg, unit, 3), 4000u);
    EXPECT_EQ(serve::retryBackoff(cfg, unit, 4), 8000u);
    // Capped: attempt 5 would be 16x but the cap holds it at 8x.
    EXPECT_EQ(serve::retryBackoff(cfg, unit, 5), 8000u);
}

TEST(ClientPool, DeterministicPopulation)
{
    const sim::SocConfig soc = testSoc();
    auto iso = [&](dnn::ModelId id) {
        return exp::isolatedLatency(id, 1, soc);
    };
    serve::ClientPoolConfig cfg;
    cfg.numClients = 3;
    cfg.requestsPerClient = 4;
    cfg.set = workload::WorkloadSet::A;
    cfg.timeoutScale = 2.0;
    const serve::ClientPool a(cfg, iso), b(cfg, iso);
    ASSERT_EQ(a.totalRequests(), 12);
    ASSERT_EQ(b.totalRequests(), 12);
    EXPECT_GT(a.meanIsolated(), 0u);
    for (int id = 0; id < a.totalRequests(); ++id) {
        const auto &ra = a.request(id);
        const auto &rb = b.request(id);
        EXPECT_EQ(ra.id, id);
        EXPECT_EQ(ra.client, id / cfg.requestsPerClient);
        EXPECT_EQ(ra.seq, id % cfg.requestsPerClient);
        EXPECT_GT(ra.think, 0u);
        EXPECT_GT(ra.timeout, 0u);
        EXPECT_GT(ra.task.slaLatency, 0u);
        EXPECT_EQ(ra.task.model, rb.task.model);
        EXPECT_EQ(ra.task.slaLatency, rb.task.slaLatency);
        EXPECT_EQ(ra.think, rb.think);
        EXPECT_EQ(ra.timeout, rb.timeout);
    }
    // timeoutScale=0 disables client timeouts entirely.
    cfg.timeoutScale = 0.0;
    const serve::ClientPool c(cfg, iso);
    for (int id = 0; id < c.totalRequests(); ++id)
        EXPECT_EQ(c.request(id).timeout, 0u);
}

// ---- the serving loop ------------------------------------------------

TEST(Serve, ClosedLoopAccountingInvariants)
{
    ServeConfig sc = testServe(2, 6, 4);
    const ServeResult r = serve::runServe(sc);
    EXPECT_EQ(r.requests, 24u);
    expectAccountingInvariants(r);
    // No failures, no admission pressure: nothing lost or shed.
    EXPECT_EQ(r.lostJobs, 0u);
    EXPECT_EQ(r.shed, 0u);
    EXPECT_EQ(r.failEvents, 0u);
    EXPECT_GT(r.responses, 0u);
    EXPECT_DOUBLE_EQ(r.meanUpSocs, 2.0);
}

TEST(Serve, DeterministicRepeat)
{
    ServeConfig sc = testServe(2, 5, 3);
    sc.admission = "queue-cap:depth=2";
    sc.failures.rate = 2000.0;
    sc.failures.meanDowntime = 2e5;
    const ServeResult a = serve::runServe(sc);
    const ServeResult b = serve::runServe(sc);
    expectIdentical(a, b);
}

TEST(Serve, BitIdenticalAcrossClusterJobs)
{
    // The acceptance gate: jobs=1 vs jobs=N byte-for-byte, with a
    // nonzero failure rate and live admission control in the loop.
    ServeConfig sc = testServe(4, 8, 3);
    sc.admission = "queue-cap:depth=3";
    sc.failures.rate = 1500.0;
    sc.failures.meanDowntime = 3e5;
    sc.jobs = 1;
    const ServeResult serial = serve::runServe(sc);
    expectAccountingInvariants(serial);
    for (int jobs : {2, 4}) {
        sc.jobs = jobs;
        const ServeResult sharded = serve::runServe(sc);
        expectIdentical(serial, sharded);
    }
}

TEST(Serve, TimeoutRetryBackoffPath)
{
    // Near-impossible timeouts: every attempt times out, clients
    // retry through the backoff schedule, then give up.
    ServeConfig sc = testServe(2, 4, 2);
    sc.clients.timeoutScale = 0.01;
    sc.clients.maxRetries = 2;
    const ServeResult r = serve::runServe(sc);
    expectAccountingInvariants(r);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_GT(r.giveUps, 0u);
    // A timed-out attempt that later completes is an orphan, and a
    // request burns at most 1 + maxRetries attempts.
    EXPECT_GT(r.orphans, 0u);
    EXPECT_LE(r.attempts,
              r.requests * static_cast<std::uint64_t>(
                               1 + sc.clients.maxRetries));
    EXPECT_EQ(r.cluster.timeoutRate,
              static_cast<double>(r.timeouts) /
                  static_cast<double>(r.requests));
}

TEST(Serve, AutoscalerDrainNeverLosesWork)
{
    // Force permanent scale-down pressure: the fleet drains to
    // minSocs while requests are in flight, but draining only stops
    // new placements — every accepted attempt still resolves.
    ServeConfig sc = testServe(4, 6, 3);
    sc.autoscaler.enabled = true;
    sc.autoscaler.minSocs = 1;
    sc.autoscaler.downThreshold = 1e9;
    sc.autoscaler.upThreshold = 2e9;
    sc.autoscaler.interval = 20'000;
    const ServeResult r = serve::runServe(sc);
    expectAccountingInvariants(r);
    EXPECT_GT(r.scaleDowns, 0u);
    EXPECT_EQ(r.lostJobs, 0u);
    EXPECT_EQ(r.requests, r.responses + r.giveUps);
    EXPECT_LT(r.meanUpSocs, 4.0);
}

TEST(Serve, AutoscalerScalesBackUpUnderLoad)
{
    // Low depth thresholds around a busy loop: drained capacity must
    // come back (scale-up re-activates the lowest drained slot).
    ServeConfig sc = testServe(3, 8, 3);
    sc.autoscaler.enabled = true;
    sc.autoscaler.downThreshold = 0.5;
    sc.autoscaler.upThreshold = 1.5;
    sc.autoscaler.interval = 50'000;
    const ServeResult r = serve::runServe(sc);
    expectAccountingInvariants(r);
    EXPECT_GT(r.scaleDowns, 0u);
    EXPECT_GT(r.scaleUps, 0u);
}

TEST(Serve, FailRecoverMidRunBothKernelsBothPolicies)
{
    for (auto kernel :
         {sim::SimKernel::Quantum, sim::SimKernel::Event}) {
        for (auto inflight : {serve::InflightPolicy::Requeue,
                              serve::InflightPolicy::Drop}) {
            ServeConfig sc = testServe(3, 6, 3, kernel);
            sc.failures.rate = 4000.0;
            sc.failures.meanDowntime = 2e5;
            sc.failures.inflight = inflight;
            const ServeResult r = serve::runServe(sc);
            expectAccountingInvariants(r);
            EXPECT_GT(r.failEvents, 0u)
                << sim::simKernelName(kernel) << " "
                << serve::inflightPolicyName(inflight);
            // Requeue turns lost attempts into free retries up to
            // the re-placement budget; drop leaves them all to the
            // client's timeout.
            if (inflight == serve::InflightPolicy::Requeue) {
                EXPECT_GT(r.requeued, 0u);
                EXPECT_LE(r.requeued, r.lostJobs);
            } else {
                EXPECT_EQ(r.requeued, 0u);
            }
        }
    }
}

TEST(Serve, OpenLoopDegenerateModeReplaysRunCluster)
{
    const sim::SocConfig soc = testSoc();
    const int socs = 2;
    cluster::SynthConfig synth;
    synth.numTasks = 24;
    synth.set = workload::WorkloadSet::A;
    synth.fleetTiles = socs * soc.numTiles;
    synth.seed = 11;
    const auto tasks =
        cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
            return exp::isolatedLatency(id, 1, soc);
        });

    cluster::ClusterConfig cc =
        cluster::ClusterConfig::homogeneous(socs, soc);
    const cluster::ClusterResult direct =
        cluster::runCluster(cc, tasks);

    ServeConfig sc;
    sc.soc = soc;
    sc.numSocs = socs;
    sc.openLoop = true;
    sc.synth = synth;
    sc.controlQuantum = 0;
    const ServeResult r = serve::runServe(sc);

    // Same placements, same job outcomes: the closed-loop driver
    // degenerates to the open-loop cluster path bit-identically.
    EXPECT_EQ(r.requests, static_cast<std::uint64_t>(tasks.size()));
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(r.cluster.slaRate, direct.slaRate);
    EXPECT_EQ(r.cluster.slaRateHigh, direct.slaRateHigh);
    EXPECT_EQ(r.cluster.latency.p50, direct.latency.p50);
    EXPECT_EQ(r.cluster.latency.p95, direct.latency.p95);
    EXPECT_EQ(r.cluster.latency.p99, direct.latency.p99);
    EXPECT_EQ(r.cluster.normLatency.p99, direct.normLatency.p99);
    EXPECT_EQ(r.cluster.stp, direct.stp);
    EXPECT_EQ(r.cluster.makespan, direct.makespan);
    ASSERT_EQ(r.cluster.perSoc.size(), direct.perSoc.size());
    for (std::size_t i = 0; i < direct.perSoc.size(); ++i) {
        EXPECT_EQ(r.cluster.perSoc[i].tasks, direct.perSoc[i].tasks);
        EXPECT_EQ(r.cluster.perSoc[i].makespan,
                  direct.perSoc[i].makespan);
    }
}

TEST(Serve, GoodputWiredThroughRunCluster)
{
    const sim::SocConfig soc = testSoc();
    cluster::SynthConfig synth;
    synth.numTasks = 16;
    synth.set = workload::WorkloadSet::A;
    synth.fleetTiles = 2 * soc.numTiles;
    synth.seed = 3;
    const auto tasks =
        cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
            return exp::isolatedLatency(id, 1, soc);
        });
    const auto r = cluster::runCluster(
        cluster::ClusterConfig::homogeneous(2, soc), tasks);
    ASSERT_GT(r.makespan, 0u);
    if (r.slaRate > 0.0) {
        EXPECT_GT(r.goodput, 0.0);
        // goodput = SLA-met completions x 1e9 / makespan.
        const double met =
            r.goodput * static_cast<double>(r.makespan) / 1e9;
        EXPECT_NEAR(met,
                    r.slaRate * static_cast<double>(r.numTasks),
                    1e-6);
    }
    // Serving-only counters stay zero on the open-loop path.
    EXPECT_EQ(r.shedRate, 0.0);
    EXPECT_EQ(r.retryRate, 0.0);
    EXPECT_EQ(r.timeoutRate, 0.0);
}

// ---- autoscaler decision logic --------------------------------------

TEST(Autoscaler, DepthHysteresisAndBounds)
{
    serve::AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.minSocs = 1;
    cfg.maxSocs = 4;
    cfg.upThreshold = 8.0;
    cfg.downThreshold = 2.0;
    serve::Autoscaler scaler(cfg);
    // Above the band: up; inside: hold; below: down.
    EXPECT_EQ(scaler.evaluate(2, 20), serve::ScaleAction::Up);
    EXPECT_EQ(scaler.evaluate(2, 10), serve::ScaleAction::None);
    EXPECT_EQ(scaler.evaluate(2, 2), serve::ScaleAction::Down);
    // Bounds: never above maxSocs, never below minSocs.
    EXPECT_EQ(scaler.evaluate(4, 100), serve::ScaleAction::None);
    EXPECT_EQ(scaler.evaluate(1, 0), serve::ScaleAction::None);
}

TEST(Autoscaler, P99HoldsUntilWindowFills)
{
    serve::AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.signal = serve::ScaleSignal::P99;
    cfg.window = 8;
    cfg.upThreshold = 1.0;
    cfg.downThreshold = 0.1;
    serve::Autoscaler scaler(cfg);
    for (int i = 0; i < 7; ++i) {
        scaler.recordResponse(5.0);
        EXPECT_EQ(scaler.evaluate(2, 0), serve::ScaleAction::None);
    }
    scaler.recordResponse(5.0);
    EXPECT_EQ(scaler.evaluate(2, 0), serve::ScaleAction::Up);
    // A window of fast responses swings the tail below the band.
    for (int i = 0; i < 8; ++i)
        scaler.recordResponse(0.01);
    EXPECT_EQ(scaler.evaluate(2, 0), serve::ScaleAction::Down);
}

// ---- misuse ----------------------------------------------------------

TEST(ServeDeath, InvalidConfiguration)
{
    ServeConfig sc = testServe(1, 2, 2);
    sc.jobs = 0;
    EXPECT_DEATH((void)serve::runServe(sc), "jobs");
    sc = testServe(0, 2, 2);
    EXPECT_DEATH((void)serve::runServe(sc), "SoC");
    sc = testServe(1, 2, 2);
    sc.admission = "nope";
    EXPECT_DEATH((void)serve::runServe(sc), "admission");
}
