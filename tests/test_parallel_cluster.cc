/**
 * @file
 * Conservative-PDES fleet engine tests (cluster/parallel.h): the
 * bit-identity contract between serial (jobs=1) and sharded (jobs=N)
 * cluster runs across fleet sizes, dispatchers, policies, and both
 * time-advance kernels; shard-count invariance; mid-run injection and
 * simultaneous-arrival (horizon-stall) ordering; epoch-statistic
 * consistency; and the jobs<1 misuse death paths.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/workload.h"
#include "exp/experiment.h"
#include "exp/oracle.h"
#include "sim/soc.h"

using namespace moca;
using cluster::ClusterConfig;
using cluster::ClusterResult;
using cluster::ClusterTask;
using cluster::SynthConfig;

namespace {

sim::SocConfig
testSoc(sim::SimKernel kernel = sim::SimKernel::Event)
{
    sim::SocConfig cfg;
    cfg.kernel = kernel;
    return cfg;
}

SynthConfig
testSynth(int tasks, int fleet_tiles, std::uint64_t seed)
{
    SynthConfig synth;
    synth.numTasks = tasks;
    synth.set = workload::WorkloadSet::A;
    synth.fleetTiles = fleet_tiles;
    synth.seed = seed;
    return synth;
}

std::vector<ClusterTask>
synthTasks(const SynthConfig &synth, const sim::SocConfig &cfg)
{
    return cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
        return exp::isolatedLatency(id, 1, cfg);
    });
}

/**
 * Field-by-field exact comparison — the PDES contract is bit-identity,
 * not tolerance.  Includes the epoch statistics: the horizon-stall
 * decision is an order-insensitive min over the whole fleet, so even
 * the engine's own bookkeeping must not depend on the shard count.
 */
void
expectIdentical(const ClusterResult &a, const ClusterResult &b)
{
    EXPECT_EQ(a.numTasks, b.numTasks);
    EXPECT_EQ(a.slaRate, b.slaRate);
    EXPECT_EQ(a.slaRateHigh, b.slaRateHigh);
    EXPECT_EQ(a.latency.p50, b.latency.p50);
    EXPECT_EQ(a.latency.p95, b.latency.p95);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.normLatency.p99, b.normLatency.p99);
    EXPECT_EQ(a.stp, b.stp);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.balanceCv, b.balanceCv);
    EXPECT_EQ(a.simSteps, b.simSteps);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.horizonStalls, b.horizonStalls);
    EXPECT_EQ(a.meanSocsStepped, b.meanSocsStepped);
    ASSERT_EQ(a.perSoc.size(), b.perSoc.size());
    for (std::size_t i = 0; i < a.perSoc.size(); ++i) {
        EXPECT_EQ(a.perSoc[i].tasks, b.perSoc[i].tasks);
        EXPECT_EQ(a.perSoc[i].makespan, b.perSoc[i].makespan);
        EXPECT_EQ(a.perSoc[i].metrics.slaRate,
                  b.perSoc[i].metrics.slaRate);
        EXPECT_EQ(a.perSoc[i].metrics.stp, b.perSoc[i].metrics.stp);
        EXPECT_EQ(a.perSoc[i].metrics.fairness,
                  b.perSoc[i].metrics.fairness);
        EXPECT_EQ(a.perSoc[i].simSteps, b.perSoc[i].simSteps);
    }
}

ClusterResult
runWith(const sim::SocConfig &cfg, int socs, int jobs,
        const std::string &dispatcher, const std::string &policy,
        const std::vector<ClusterTask> &tasks)
{
    ClusterConfig cc = ClusterConfig::homogeneous(socs, cfg);
    cc.policy = policy;
    cc.dispatcher = dispatcher;
    cc.dispatcherSeed = 9;
    cc.jobs = jobs;
    return cluster::runCluster(cc, tasks);
}

} // namespace

// --- Serial vs sharded bit-identity -----------------------------------

TEST(ParallelCluster, ShardedMatchesSerialEverywhere)
{
    // The full contract grid: {1,4,16} SoCs x {rr, qos-aware} x
    // {moca, prema} on both kernels, --cluster-jobs 1 vs 4.  Every
    // field of every result must match exactly.
    for (const auto kernel :
         {sim::SimKernel::Quantum, sim::SimKernel::Event}) {
        const sim::SocConfig cfg = testSoc(kernel);
        for (const int socs : {1, 4, 16}) {
            const auto tasks = synthTasks(
                testSynth(12 * socs, socs * cfg.numTiles, 31), cfg);
            for (const std::string dispatcher : {"rr", "qos-aware"}) {
                for (const std::string policy : {"moca", "prema"}) {
                    const auto serial = runWith(
                        cfg, socs, 1, dispatcher, policy, tasks);
                    const auto sharded = runWith(
                        cfg, socs, 4, dispatcher, policy, tasks);
                    SCOPED_TRACE(simKernelName(kernel) +
                                 std::string(" socs=") +
                                 std::to_string(socs) + " " +
                                 dispatcher + " " + policy);
                    expectIdentical(serial, sharded);
                }
            }
        }
    }
}

TEST(ParallelCluster, ShardCountInvariance)
{
    // Uneven shard splits (3 workers over 8 SoCs), more workers than
    // SoCs (8 over 8), and a non-divisor count must all reproduce the
    // serial run — the partitioning must never leak into results.
    const sim::SocConfig cfg = testSoc();
    const auto tasks =
        synthTasks(testSynth(160, 8 * cfg.numTiles, 47), cfg);
    const auto serial =
        runWith(cfg, 8, 1, "least-loaded", "moca", tasks);
    for (const int jobs : {2, 3, 8}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        expectIdentical(
            serial, runWith(cfg, 8, jobs, "least-loaded", "moca",
                            tasks));
    }
}

// --- Mid-run injection and horizon stalls -----------------------------

TEST(ParallelCluster, SimultaneousArrivalsStallNotStep)
{
    // Groups of tasks sharing one arrival cycle exercise the
    // horizon-stall path: only the group's first task opens an epoch;
    // the rest see the fleet already at the horizon and must skip the
    // barrier outright (a provable no-op).  Ordering of the
    // injections within a group must still be preserved exactly.
    const sim::SocConfig cfg = testSoc();
    auto tasks = synthTasks(testSynth(90, 4 * cfg.numTiles, 7), cfg);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        tasks[i].arrival = static_cast<Cycles>(i / 3) * 50'000;

    const auto serial = runWith(cfg, 4, 1, "rr", "moca", tasks);
    const auto sharded = runWith(cfg, 4, 3, "rr", "moca", tasks);
    expectIdentical(serial, sharded);

    // Each 3-task group stalls at least its 2 trailing arrivals (the
    // group at cycle 0 stalls all 3: the fleet min starts there).
    EXPECT_GE(serial.horizonStalls, 2 * (tasks.size() / 3));
    EXPECT_GT(serial.epochs, 0u);

    // Injection order within a group is the stream order: round-robin
    // placement of 90 tasks over 4 SoCs.
    int placed = 0;
    for (const auto &share : serial.perSoc)
        placed += share.tasks;
    EXPECT_EQ(placed, 90);
    EXPECT_GE(serial.perSoc[0].tasks, serial.perSoc[3].tasks);
}

TEST(ParallelCluster, MidRunInjectionKeepsDispatchCycles)
{
    // Every job must start at or after its exact arrival cycle even
    // when the injection lands mid-shard-advance — the barrier
    // guarantees the fleet is quiescent at the arrival horizon.
    const sim::SocConfig cfg = testSoc();
    const auto tasks =
        synthTasks(testSynth(120, 4 * cfg.numTiles, 13), cfg);
    ClusterConfig cc = ClusterConfig::homogeneous(4, cfg);
    cc.policy = "moca";
    cc.dispatcher = "least-loaded";
    cc.jobs = 3;
    const auto res = cluster::runCluster(cc, tasks);
    EXPECT_EQ(res.numTasks, 120u);
    std::size_t completed = 0;
    for (const auto &share : res.perSoc)
        completed += static_cast<std::size_t>(share.tasks);
    EXPECT_EQ(completed, 120u);
}

// --- Epoch statistics -------------------------------------------------

TEST(ParallelCluster, EpochStatsAreBoundedAndPopulated)
{
    const sim::SocConfig cfg = testSoc();
    const auto tasks =
        synthTasks(testSynth(100, 4 * cfg.numTiles, 3), cfg);
    const auto res = runWith(cfg, 4, 2, "rr", "moca", tasks);

    // One advance per arrival plus the final drain, minus stalls.
    EXPECT_GT(res.epochs, 0u);
    EXPECT_LE(res.epochs + res.horizonStalls, tasks.size() + 1);
    EXPECT_GT(res.meanSocsStepped, 0.0);
    EXPECT_LE(res.meanSocsStepped, 4.0);
}

// --- Experiment builder wiring ----------------------------------------

TEST(ParallelCluster, ExperimentClusterJobsIsBitIdentical)
{
    const auto run = [&](int cluster_jobs) {
        return exp::Experiment()
            .soc(testSoc())
            .cluster(6)
            .dispatcher("qos-aware")
            .clusterJobs(cluster_jobs)
            .fleetWorkload(testSynth(150, 0, 29))
            .policies({"moca", "prema"})
            .runFleet();
    };
    const auto serial = run(1);
    const auto sharded = run(4);
    for (const std::string policy : {"moca", "prema"}) {
        ASSERT_TRUE(serial.has(policy));
        expectIdentical(serial[policy], sharded[policy]);
    }
}

// --- Misuse -----------------------------------------------------------

TEST(ParallelClusterDeath, JobsBelowOneDies)
{
    const sim::SocConfig cfg = testSoc();
    const auto tasks = synthTasks(testSynth(5, 8, 3), cfg);
    ClusterConfig cc = ClusterConfig::homogeneous(2, cfg);
    cc.jobs = 0;
    EXPECT_DEATH((void)cluster::runCluster(cc, tasks),
                 "jobs must be >= 1");
    cc.jobs = -3;
    EXPECT_DEATH((void)cluster::runCluster(cc, tasks),
                 "jobs must be >= 1");
    EXPECT_DEATH((void)exp::Experiment().clusterJobs(0),
                 "at least one worker");
}
