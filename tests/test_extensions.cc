/**
 * @file
 * Tests for the extension features: the execution-trace recorder and
 * the sparse-DNN support (pruned layers, compressed storage,
 * sparsity-aware vs dense-assuming prediction).
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "exp/oracle.h"
#include "moca/moca_policy.h"
#include "moca/runtime/latency_model.h"
#include "sim/compute_model.h"
#include "sim/soc.h"

namespace moca {
namespace {

sim::JobSpec
spec(int id, const dnn::Model *model, Cycles dispatch = 0)
{
    sim::JobSpec s;
    s.id = id;
    s.model = model;
    s.dispatch = dispatch;
    s.slaLatency = 1'000'000'000;
    return s;
}

// --- Trace recorder -----------------------------------------------------

TEST(Trace, DisabledByDefaultAndEmpty)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, &dnn::getModel(dnn::ModelId::Kws)));
    soc.run();
    EXPECT_TRUE(soc.trace().events().empty());
}

TEST(Trace, RecordsJobLifecycle)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(8);
    sim::Soc soc(cfg, policy);
    soc.trace().enable();
    soc.addJob(spec(0, &dnn::getModel(dnn::ModelId::SqueezeNet)));
    soc.run();
    using sim::TraceEventKind;
    EXPECT_EQ(soc.trace().count(TraceEventKind::JobDispatched, 0), 1u);
    EXPECT_EQ(soc.trace().count(TraceEventKind::JobStarted, 0), 1u);
    EXPECT_EQ(soc.trace().count(TraceEventKind::JobCompleted, 0), 1u);
    EXPECT_GT(soc.trace().count(TraceEventKind::BlockBoundary, 0), 0u);
}

TEST(Trace, EventsAreTimeOrdered)
{
    sim::SocConfig cfg;
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    soc.trace().enable();
    for (int i = 0; i < 4; ++i)
        soc.addJob(spec(i, &dnn::getModel(dnn::ModelId::AlexNet),
                        static_cast<Cycles>(i) * 100'000));
    soc.run();
    Cycles prev = 0;
    for (const auto &e : soc.trace().events()) {
        EXPECT_GE(e.cycle, prev);
        prev = e.cycle;
    }
    // MoCA programs throttles; the trace sees them.
    EXPECT_GT(soc.trace().count(sim::TraceEventKind::ThrottleConfig),
              0u);
}

TEST(Trace, PerJobViewIsConsistent)
{
    sim::SocConfig cfg;
    exp::SoloPolicy policy(4);
    sim::Soc soc(cfg, policy);
    soc.trace().enable();
    soc.addJob(spec(0, &dnn::getModel(dnn::ModelId::Kws)));
    soc.addJob(spec(1, &dnn::getModel(dnn::ModelId::Kws)));
    soc.run();
    const auto job0 = soc.trace().forJob(0);
    for (const auto &e : job0)
        EXPECT_EQ(e.jobId, 0);
    EXPECT_FALSE(job0.empty());
    EXPECT_FALSE(soc.trace().render().empty());
}

// --- Sparsity -----------------------------------------------------------

TEST(Sparsity, DenseLayerUnchanged)
{
    const auto l = dnn::Layer::conv("c", 28, 28, 64, 64, 3, 1, 1);
    EXPECT_EQ(l.macCount(), l.denseMacCount());
    EXPECT_EQ(l.weightBytes(), l.denseWeightBytes());
}

TEST(Sparsity, PrunedLayerScalesMacsAndStorage)
{
    auto l = dnn::Layer::conv("c", 28, 28, 64, 64, 3, 1, 1);
    l.weightDensity = 0.25;
    EXPECT_NEAR(static_cast<double>(l.macCount()),
                0.25 * static_cast<double>(l.denseMacCount()),
                static_cast<double>(l.denseMacCount()) * 0.01);
    // Compressed storage: non-zeros + index overhead.
    EXPECT_NEAR(static_cast<double>(l.weightBytes()),
                0.375 * static_cast<double>(l.denseWeightBytes()),
                1.0);
    EXPECT_LT(l.weightBytes(), l.denseWeightBytes());
}

TEST(Sparsity, SparsifyModelTouchesComputeLayersOnly)
{
    const dnn::Model sparse =
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::ResNet50),
                           0.5);
    for (const auto &l : sparse.layers()) {
        if (l.layerClass() == dnn::LayerClass::Compute)
            EXPECT_DOUBLE_EQ(l.weightDensity, 0.5);
        else
            EXPECT_DOUBLE_EQ(l.weightDensity, 1.0);
    }
    EXPECT_LT(sparse.totalMacs(),
              dnn::getModel(dnn::ModelId::ResNet50).totalMacs());
}

TEST(Sparsity, SparseNameResolvesToBaseModel)
{
    const dnn::Model sparse =
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::YoloLite),
                           0.25);
    EXPECT_EQ(dnn::modelIdFromName(sparse.name()),
              dnn::ModelId::YoloLite);
}

TEST(Sparsity, ComputeCyclesShrinkWithDensity)
{
    sim::SocConfig cfg;
    auto l = dnn::Layer::conv("c", 56, 56, 256, 256, 3, 1, 1);
    const Cycles dense = sim::computeCycles(l, 1, cfg);
    l.weightDensity = 0.5;
    const Cycles half = sim::computeCycles(l, 1, cfg);
    l.weightDensity = 0.05; // below the structural floor of 0.1
    const Cycles tiny = sim::computeCycles(l, 1, cfg);
    EXPECT_LT(half, dense);
    EXPECT_GE(static_cast<double>(tiny),
              0.09 * static_cast<double>(dense));
}

TEST(Sparsity, SparseModelRunsFasterInSimulation)
{
    sim::SocConfig cfg;
    const dnn::Model sparse =
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::ResNet50),
                           0.25);
    exp::SoloPolicy p1(2), p2(2);
    sim::Soc dense_soc(cfg, p1), sparse_soc(cfg, p2);
    dense_soc.addJob(spec(0, &dnn::getModel(dnn::ModelId::ResNet50)));
    sparse_soc.addJob(spec(0, &sparse));
    dense_soc.run();
    sparse_soc.run();
    EXPECT_LT(sparse_soc.results()[0].latency(),
              dense_soc.results()[0].latency());
}

TEST(Sparsity, AwarePredictorAccurateDenseAssumingIsNot)
{
    sim::SocConfig cfg;
    const dnn::Model sparse =
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::AlexNet),
                           0.25);
    exp::SoloPolicy policy(2);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, &sparse));
    soc.run();
    const double measured =
        static_cast<double>(soc.results()[0].latency());

    runtime::LatencyModel aware(cfg, true);
    runtime::LatencyModel dense(cfg, false);
    const double aware_err =
        std::abs(aware.estimateModel(sparse, 2) - measured) /
        measured;
    const double dense_err =
        std::abs(dense.estimateModel(sparse, 2) - measured) /
        measured;
    EXPECT_LT(aware_err, 0.10);
    EXPECT_GT(dense_err, 0.50);
}

TEST(Sparsity, MocaRunsSparseWorkloads)
{
    sim::SocConfig cfg;
    const dnn::Model s1 =
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::AlexNet), 0.5);
    const dnn::Model s2 = dnn::sparsifyModel(
        dnn::getModel(dnn::ModelId::GoogleNet), 0.25);
    MocaPolicy policy(cfg);
    sim::Soc soc(cfg, policy);
    soc.addJob(spec(0, &s1));
    soc.addJob(spec(1, &s2));
    soc.addJob(spec(2, &dnn::getModel(dnn::ModelId::SqueezeNet)));
    soc.run();
    EXPECT_EQ(soc.results().size(), 3u);
}

TEST(Sparsity, InvalidDensityRejected)
{
    EXPECT_DEATH(
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::Kws), 0.0),
        "density");
    EXPECT_DEATH(
        dnn::sparsifyModel(dnn::getModel(dnn::ModelId::Kws), 1.5),
        "density");
}

} // namespace
} // namespace moca
