/**
 * @file
 * Unit tests for the system-level metrics (Sec. IV-C): SLA
 * satisfaction rate (overall and per priority group), STP (Eq. 2),
 * and the priority-weighted proportional-progress fairness (Eq. 1).
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "metrics/metrics.h"

namespace moca::metrics {
namespace {

sim::JobResult
result(int id, dnn::ModelId model, int priority, Cycles dispatch,
       Cycles finish, Cycles sla)
{
    sim::JobResult r;
    r.spec.id = id;
    r.spec.model = &dnn::getModel(model);
    r.spec.priority = priority;
    r.spec.dispatch = dispatch;
    r.spec.slaLatency = sla;
    r.finish = finish;
    return r;
}

Cycles
iso(dnn::ModelId)
{
    return 1'000'000;
}

TEST(Metrics, SlaRate)
{
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 0, 0, 500'000, 600'000),   // met
        result(1, dnn::ModelId::Kws, 0, 0, 900'000, 600'000),   // miss
        result(2, dnn::ModelId::Kws, 0, 0, 400'000, 600'000),   // met
        result(3, dnn::ModelId::Kws, 0, 0, 700'000, 600'000),   // miss
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_DOUBLE_EQ(m.slaRate, 0.5);
    EXPECT_EQ(m.numJobs, 4);
}

TEST(Metrics, LatencyIncludesQueueWait)
{
    // Dispatch at 100k, finish at 800k: latency 700k > 600k target.
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 0, 100'000, 800'000, 600'000),
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_DOUBLE_EQ(m.slaRate, 0.0);
}

TEST(Metrics, PriorityGroupBreakdown)
{
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 1, 0, 500'000, 600'000),  // low met
        result(1, dnn::ModelId::Kws, 1, 0, 900'000, 600'000),  // low miss
        result(2, dnn::ModelId::Kws, 5, 0, 500'000, 600'000),  // mid met
        result(3, dnn::ModelId::Kws, 10, 0, 900'000, 600'000), // hi miss
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_DOUBLE_EQ(m.slaRateLow, 0.5);
    EXPECT_DOUBLE_EQ(m.slaRateMid, 1.0);
    EXPECT_DOUBLE_EQ(m.slaRateHigh, 0.0);
}

TEST(Metrics, StpSumsNormalizedProgress)
{
    // Progress = iso / latency: 1e6/2e6 = 0.5 and 1e6/1e6 = 1.0.
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 0, 0, 2'000'000, 1),
        result(1, dnn::ModelId::Kws, 0, 0, 1'000'000, 1),
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_NEAR(m.stp, 1.5, 1e-9);
}

TEST(Metrics, FairnessPerfectWhenProgressMatchesPriority)
{
    // Two jobs with equal priority and equal slowdown: PP equal ->
    // fairness = 1.
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 3, 0, 2'000'000, 1),
        result(1, dnn::ModelId::Kws, 3, 0, 2'000'000, 1),
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_NEAR(m.fairness, 1.0, 1e-9);
}

TEST(Metrics, FairnessPenalizesDisproportionateSlowdown)
{
    // Equal priorities but one job runs 4x slower: fairness = 1/4.
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 3, 0, 1'000'000, 1),
        result(1, dnn::ModelId::Kws, 3, 0, 4'000'000, 1),
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_NEAR(m.fairness, 0.25, 1e-9);
}

TEST(Metrics, FairnessWeightsByPriority)
{
    // Priority weights (p+1): job A p=1 (weight 2), job B p=3
    // (weight 4).  B runs 2x slower; its PP = (0.5/ (4/6)) = 0.75,
    // A's PP = (1.0 / (2/6)) = 3.0 -> fairness 0.25.
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 1, 0, 1'000'000, 1),
        result(1, dnn::ModelId::Kws, 3, 0, 2'000'000, 1),
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_NEAR(m.fairness, 0.25, 1e-9);
}

TEST(Metrics, NormalizedLatencyStats)
{
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 0, 0, 2'000'000, 1),
        result(1, dnn::ModelId::Kws, 0, 0, 4'000'000, 1),
    };
    const auto m = computeMetrics(rs, iso);
    EXPECT_NEAR(m.meanNormLatency, 3.0, 1e-9);
    EXPECT_NEAR(m.worstNormLatency, 4.0, 1e-9);
}

TEST(Metrics, EmptyResults)
{
    const auto m = computeMetrics({}, iso);
    EXPECT_EQ(m.numJobs, 0);
    EXPECT_DOUBLE_EQ(m.slaRate, 0.0);
    EXPECT_DOUBLE_EQ(m.stp, 0.0);
}

TEST(Metrics, SlaRateWhere)
{
    std::vector<sim::JobResult> rs = {
        result(0, dnn::ModelId::Kws, 2, 0, 500'000, 600'000),
        result(1, dnn::ModelId::Kws, 9, 0, 900'000, 600'000),
        result(2, dnn::ModelId::Kws, 9, 0, 100'000, 600'000),
    };
    const double high_rate = slaRateWhere(
        rs, [](const sim::JobResult &r) {
            return r.spec.priority >= 9;
        });
    EXPECT_DOUBLE_EQ(high_rate, 0.5);
    const double none = slaRateWhere(
        rs, [](const sim::JobResult &) { return false; });
    EXPECT_DOUBLE_EQ(none, 0.0);
}

} // namespace
} // namespace moca::metrics
