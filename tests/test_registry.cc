/**
 * @file
 * Tests for the open policy registry and the fluent exp::Experiment
 * builder: spec-string grammar round-trips, loud failures on unknown
 * names/parameters (with did-you-mean), parameterized specs changing
 * behavior measurably, and bit-exact parity between Experiment and
 * the low-level runTrace path on a fig5-style cell.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/registry.h"
#include "exp/scenario.h"

namespace moca::exp {
namespace {

workload::TraceConfig
smallTrace(workload::WorkloadSet set, workload::QosLevel qos,
           int tasks, std::uint64_t seed = 3)
{
    workload::TraceConfig t;
    t.set = set;
    t.qos = qos;
    t.numTasks = tasks;
    t.seed = seed;
    return t;
}

// --- Spec grammar ----------------------------------------------------

TEST(PolicySpec, ParsesBareNameAndParams)
{
    const auto bare = PolicySpec::parse("moca", "policy");
    EXPECT_EQ(bare.name, "moca");
    EXPECT_TRUE(bare.params.empty());
    EXPECT_EQ(bare.canonical(), "moca");

    const auto p = PolicySpec::parse("moca:tick=2048,threshold=fixed", "policy");
    EXPECT_EQ(p.name, "moca");
    ASSERT_EQ(p.params.size(), 2u);
    EXPECT_EQ(p.params[0].first, "tick");
    EXPECT_EQ(p.params[0].second, "2048");
    EXPECT_EQ(p.params[1].first, "threshold");
    EXPECT_EQ(p.params[1].second, "fixed");
    EXPECT_EQ(p.canonical(), "moca:tick=2048,threshold=fixed");
}

TEST(PolicySpec, MalformedSpecsDie)
{
    EXPECT_DEATH(PolicySpec::parse("", "policy"), "empty policy spec");
    EXPECT_DEATH(PolicySpec::parse("moca:tick", "policy"), "key=value");
    EXPECT_DEATH(PolicySpec::parse("moca:=5", "policy"), "key=value");
}

TEST(PolicyList, SplitsSpecsAndContinuationParams)
{
    const auto specs =
        splitPolicyList("moca:tick=2048,threshold=fixed,prema");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0], "moca:tick=2048,threshold=fixed");
    EXPECT_EQ(specs[1], "prema");

    const auto plain = splitPolicyList("moca,prema");
    ASSERT_EQ(plain.size(), 2u);
    EXPECT_EQ(plain[0], "moca");
    EXPECT_EQ(plain[1], "prema");
}

// --- Registry lookups ------------------------------------------------

TEST(PolicyRegistry, RoundTripsEveryRegisteredSpec)
{
    const sim::SocConfig cfg;
    auto &reg = PolicyRegistry::instance();
    ASSERT_GE(reg.names().size(), 5u); // 4 mechanisms + solo.
    for (const auto &name : reg.names()) {
        SCOPED_TRACE(name);
        EXPECT_EQ(PolicySpec::parse(name, "policy").canonical(), name);
        auto policy = reg.make(name, cfg);
        ASSERT_NE(policy, nullptr);
        // Spec defaults must reproduce the declared schema defaults:
        // applying every declared default explicitly is a no-op spec
        // that must also build.
        std::string full = name;
        const auto &info = reg.info(name);
        for (std::size_t i = 0; i < info.params.size(); ++i) {
            // Enum-typed defaults round-trip too ("scaled").
            full += (i == 0 ? ":" : ",") + info.params[i].key + "=" +
                info.params[i].defaultValue;
        }
        EXPECT_NE(reg.make(full, cfg), nullptr) << full;
    }
}

TEST(PolicyRegistry, BuiltinOrderMatchesPaperPresentation)
{
    EXPECT_EQ(allPolicySpecs(),
              (std::vector<std::string>{"prema", "static", "planaria",
                                        "moca"}));
    for (const auto &spec : allPolicySpecs())
        EXPECT_TRUE(PolicyRegistry::instance().contains(spec));
}

TEST(PolicyRegistry, UnknownNameDiesWithDidYouMean)
{
    const sim::SocConfig cfg;
    EXPECT_DEATH((void)PolicyRegistry::instance().make("mocha", cfg),
                 "did you mean 'moca'");
    EXPECT_DEATH((void)PolicyRegistry::instance().make("nonsense",
                                                       cfg),
                 "known policies: prema, static, planaria, moca");
}

TEST(PolicyRegistry, UnknownParamDiesListingSchema)
{
    const sim::SocConfig cfg;
    EXPECT_DEATH(
        (void)PolicyRegistry::instance().make("moca:bogus=1", cfg),
        "no parameter 'bogus'");
    EXPECT_DEATH(
        (void)PolicyRegistry::instance().make("prema:slots=2", cfg),
        "declared parameters: preempt_margin");
}

TEST(PolicyRegistry, ValidateIsStructuralNotConfigDependent)
{
    // validate() must not reject specs whose parameter ranges depend
    // on the SoC they eventually run on: "solo:tiles=16" is invalid
    // for the 8-tile default config but valid for a 16-tile SoC.
    auto &reg = PolicyRegistry::instance();
    reg.validate("solo:tiles=16"); // must not die
    sim::SocConfig big;
    big.numTiles = 16;
    EXPECT_NE(reg.make("solo:tiles=16", big), nullptr);
    const sim::SocConfig small;
    EXPECT_DEATH((void)reg.make("solo:tiles=16", small),
                 "tiles must be in");
}

TEST(PolicyRegistry, MalformedValueDies)
{
    const sim::SocConfig cfg;
    EXPECT_DEATH(
        (void)PolicyRegistry::instance().make("moca:slots=banana",
                                              cfg),
        "not an integer");
    EXPECT_DEATH(
        (void)PolicyRegistry::instance().make("moca:threshold=maybe",
                                              cfg),
        "expected 'scaled' or 'fixed'");
}

// --- Parameterized specs change behavior -----------------------------

TEST(PolicyRegistry, TickParameterChangesBehaviorMeasurably)
{
    // A fixed 2048-cycle throttle window must pace the memory-heavy
    // mix differently than the prediction-derived windows.
    const sim::SocConfig cfg;
    const auto t = smallTrace(workload::WorkloadSet::B,
                              workload::QosLevel::Medium, 60);
    const auto stream = makeTrace(t, cfg);
    const auto base = runTrace("moca", stream, t, cfg);
    const auto tick = runTrace("moca:tick=2048", stream, t, cfg);
    EXPECT_GT(base.totalThrottleReconfigs, 0);
    EXPECT_NE(base.makespan, tick.makespan);

    // And the knob composes with others in one spec.
    const auto combo =
        runTrace("moca:tick=2048,threshold=fixed", stream, t, cfg);
    EXPECT_EQ(combo.policy, "moca:tick=2048,threshold=fixed");
    EXPECT_EQ(combo.jobs.size(), stream.size());
}

TEST(PolicyRegistry, SlotsParameterChangesAdmission)
{
    const sim::SocConfig cfg;
    const auto t = smallTrace(workload::WorkloadSet::C,
                              workload::QosLevel::Medium, 40);
    const auto stream = makeTrace(t, cfg);
    const auto four = runTrace("moca", stream, t, cfg);
    const auto two = runTrace("moca:slots=2", stream, t, cfg);
    EXPECT_NE(four.makespan, two.makespan);
}

TEST(PolicyRegistry, DefaultParamsReproduceBareSpec)
{
    // Explicit defaults are bit-identical to the bare name.
    const sim::SocConfig cfg;
    const auto t = smallTrace(workload::WorkloadSet::C,
                              workload::QosLevel::Medium, 30);
    const auto stream = makeTrace(t, cfg);
    const auto bare = runTrace("moca", stream, t, cfg);
    const auto expl =
        runTrace("moca:tick=0,threshold=scaled,slots=4", stream, t,
                 cfg);
    EXPECT_EQ(bare.makespan, expl.makespan);
    EXPECT_EQ(bare.metrics.slaRate, expl.metrics.slaRate);
}

// --- Experiment parity with the low-level path -----------------------

TEST(Experiment, MatchesRunTraceBitExactlyOnFig5Cell)
{
    // One fig5 cell (Workload-A / QoS-M): the fluent builder must
    // reproduce the pre-redesign runTrace path bit for bit, for
    // every policy on the identical stream.
    const sim::SocConfig cfg;
    const auto t = smallTrace(workload::WorkloadSet::A,
                              workload::QosLevel::Medium, 40, 1);
    const auto stream = makeTrace(t, cfg);

    const auto results = Experiment()
                             .soc(cfg)
                             .trace(t)
                             .policies(allPolicySpecs())
                             .withTrace(stream)
                             .jobs(2)
                             .run();
    ASSERT_EQ(results.size(), allPolicySpecs().size());

    for (const auto &spec : allPolicySpecs()) {
        SCOPED_TRACE(spec);
        const auto direct = runTrace(spec, stream, t, cfg);
        const auto &via = results[spec];
        EXPECT_EQ(via.policy, spec);
        EXPECT_EQ(via.makespan, direct.makespan);
        EXPECT_EQ(via.totalMigrations, direct.totalMigrations);
        EXPECT_EQ(via.totalPreemptions, direct.totalPreemptions);
        EXPECT_EQ(via.totalThrottleReconfigs,
                  direct.totalThrottleReconfigs);
        EXPECT_EQ(via.metrics.slaRate, direct.metrics.slaRate);
        EXPECT_EQ(via.metrics.stp, direct.metrics.stp);
        EXPECT_EQ(via.metrics.fairness, direct.metrics.fairness);
        ASSERT_EQ(via.jobs.size(), direct.jobs.size());
        for (std::size_t j = 0; j < via.jobs.size(); ++j) {
            EXPECT_EQ(via.jobs[j].finish, direct.jobs[j].finish);
            EXPECT_EQ(via.jobs[j].stallCycles,
                      direct.jobs[j].stallCycles);
        }
    }
}

TEST(Experiment, GeneratesTraceWhenNoneGiven)
{
    const sim::SocConfig cfg;
    const auto t = smallTrace(workload::WorkloadSet::C,
                              workload::QosLevel::Medium, 25, 7);
    const auto res =
        Experiment().soc(cfg).trace(t).policy("moca").run();
    const auto direct = runScenario("moca", t, cfg);
    EXPECT_EQ(res["moca"].makespan, direct.makespan);
    EXPECT_TRUE(res.has("moca"));
    EXPECT_FALSE(res.has("prema"));
}

TEST(Experiment, EmptyPolicyListDies)
{
    EXPECT_DEATH((void)Experiment().run(), "no policies");
}

TEST(Experiment, UnknownSpecDiesBeforeRunning)
{
    const sim::SocConfig cfg;
    const auto t = smallTrace(workload::WorkloadSet::C,
                              workload::QosLevel::Medium, 10);
    EXPECT_DEATH((void)Experiment()
                     .soc(cfg)
                     .trace(t)
                     .policy("premma")
                     .run(),
                 "did you mean 'prema'");
}

} // namespace
} // namespace moca::exp
