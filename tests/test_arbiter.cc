/**
 * @file
 * Unit and property tests for the weighted max-min fair bandwidth
 * arbiter shared by the DRAM channel and L2 banks.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "sim/arbiter.h"

namespace moca::sim {
namespace {

double
sum(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Arbiter, UnderloadedGrantsEverything)
{
    const auto g = allocateBandwidth({{100, 1}, {200, 1}}, 1000);
    EXPECT_DOUBLE_EQ(g[0], 100);
    EXPECT_DOUBLE_EQ(g[1], 200);
}

TEST(Arbiter, OverloadedSplitsEqually)
{
    const auto g = allocateBandwidth({{1000, 1}, {1000, 1}}, 600);
    EXPECT_DOUBLE_EQ(g[0], 300);
    EXPECT_DOUBLE_EQ(g[1], 300);
}

TEST(Arbiter, WaterFillingRedistributesLeftover)
{
    // One small demand frees capacity for the two big ones.
    const auto g =
        allocateBandwidth({{100, 1}, {1000, 1}, {1000, 1}}, 900);
    EXPECT_DOUBLE_EQ(g[0], 100);
    EXPECT_DOUBLE_EQ(g[1], 400);
    EXPECT_DOUBLE_EQ(g[2], 400);
}

TEST(Arbiter, WeightsScaleShares)
{
    // A 3-tile job gets 3x the share of a 1-tile job.
    const auto g = allocateBandwidth({{1000, 3}, {1000, 1}}, 400);
    EXPECT_DOUBLE_EQ(g[0], 300);
    EXPECT_DOUBLE_EQ(g[1], 100);
}

TEST(Arbiter, ZeroDemand)
{
    const auto g = allocateBandwidth({{0, 1}, {500, 1}}, 300);
    EXPECT_DOUBLE_EQ(g[0], 0);
    EXPECT_DOUBLE_EQ(g[1], 300);
}

TEST(Arbiter, EmptyAndZeroCapacity)
{
    EXPECT_TRUE(allocateBandwidth({}, 100).empty());
    const auto g = allocateBandwidth({{100, 1}}, 0);
    EXPECT_DOUBLE_EQ(g[0], 0);
}

/** Property: grants are feasible, demand-bounded and work-conserving. */
TEST(Arbiter, PropertyFeasibleAndWorkConserving)
{
    Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(1, 12));
        std::vector<BwDemand> d;
        double total_demand = 0.0;
        for (int i = 0; i < n; ++i) {
            BwDemand b;
            b.bytes = rng.uniform(0.0, 2000.0);
            b.weight = rng.uniform(0.5, 8.0);
            total_demand += b.bytes;
            d.push_back(b);
        }
        const double cap = rng.uniform(1.0, 3000.0);
        const auto g = allocateBandwidth(d, cap);

        ASSERT_EQ(g.size(), d.size());
        for (std::size_t i = 0; i < g.size(); ++i) {
            EXPECT_GE(g[i], -1e-9);
            EXPECT_LE(g[i], d[i].bytes + 1e-6);
        }
        EXPECT_LE(sum(g), cap + 1e-6);
        // Work conservation: either all demand served or capacity
        // (nearly) exhausted.
        if (total_demand <= cap)
            EXPECT_NEAR(sum(g), total_demand, 1e-6);
        else
            EXPECT_NEAR(sum(g), cap, cap * 1e-6 + 1e-6);
    }
}

/** Property: max-min fairness — an unsatisfied requester's weighted
 *  grant is >= every other requester's weighted grant (no one it
 *  could take from has more). */
TEST(Arbiter, PropertyMaxMinFairness)
{
    Rng rng(67);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(2, 8));
        std::vector<BwDemand> d;
        for (int i = 0; i < n; ++i)
            d.push_back({rng.uniform(0.0, 1000.0),
                         rng.uniform(0.5, 4.0)});
        const double cap = rng.uniform(10.0, 1200.0);
        const auto g = allocateBandwidth(d, cap);

        for (std::size_t i = 0; i < g.size(); ++i) {
            const bool unsatisfied = g[i] < d[i].bytes - 1e-6;
            if (!unsatisfied)
                continue;
            const double norm_i = g[i] / d[i].weight;
            for (std::size_t j = 0; j < g.size(); ++j) {
                if (j == i)
                    continue;
                const double norm_j = g[j] / d[j].weight;
                EXPECT_LE(norm_j, norm_i + 1e-6)
                    << "requester " << j
                    << " holds more than unsatisfied " << i;
            }
        }
    }
}

} // namespace
} // namespace moca::sim
