/**
 * @file
 * Unit and property tests for the weighted max-min fair bandwidth
 * arbiter shared by the DRAM channel and L2 banks.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "sim/arbiter.h"

namespace moca::sim {
namespace {

double
sum(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Arbiter, UnderloadedGrantsEverything)
{
    const auto g = allocateBandwidth({{100, 1}, {200, 1}}, 1000);
    EXPECT_DOUBLE_EQ(g[0], 100);
    EXPECT_DOUBLE_EQ(g[1], 200);
}

TEST(Arbiter, OverloadedSplitsEqually)
{
    const auto g = allocateBandwidth({{1000, 1}, {1000, 1}}, 600);
    EXPECT_DOUBLE_EQ(g[0], 300);
    EXPECT_DOUBLE_EQ(g[1], 300);
}

TEST(Arbiter, WaterFillingRedistributesLeftover)
{
    // One small demand frees capacity for the two big ones.
    const auto g =
        allocateBandwidth({{100, 1}, {1000, 1}, {1000, 1}}, 900);
    EXPECT_DOUBLE_EQ(g[0], 100);
    EXPECT_DOUBLE_EQ(g[1], 400);
    EXPECT_DOUBLE_EQ(g[2], 400);
}

TEST(Arbiter, WeightsScaleShares)
{
    // A 3-tile job gets 3x the share of a 1-tile job.
    const auto g = allocateBandwidth({{1000, 3}, {1000, 1}}, 400);
    EXPECT_DOUBLE_EQ(g[0], 300);
    EXPECT_DOUBLE_EQ(g[1], 100);
}

TEST(Arbiter, ZeroDemand)
{
    const auto g = allocateBandwidth({{0, 1}, {500, 1}}, 300);
    EXPECT_DOUBLE_EQ(g[0], 0);
    EXPECT_DOUBLE_EQ(g[1], 300);
}

TEST(Arbiter, EmptyAndZeroCapacity)
{
    EXPECT_TRUE(allocateBandwidth({}, 100).empty());
    const auto g = allocateBandwidth({{100, 1}}, 0);
    EXPECT_DOUBLE_EQ(g[0], 0);
}

/** Property: grants are feasible, demand-bounded and work-conserving. */
TEST(Arbiter, PropertyFeasibleAndWorkConserving)
{
    Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(1, 12));
        std::vector<BwDemand> d;
        double total_demand = 0.0;
        for (int i = 0; i < n; ++i) {
            BwDemand b;
            b.bytes = rng.uniform(0.0, 2000.0);
            b.weight = rng.uniform(0.5, 8.0);
            total_demand += b.bytes;
            d.push_back(b);
        }
        const double cap = rng.uniform(1.0, 3000.0);
        const auto g = allocateBandwidth(d, cap);

        ASSERT_EQ(g.size(), d.size());
        for (std::size_t i = 0; i < g.size(); ++i) {
            EXPECT_GE(g[i], -1e-9);
            EXPECT_LE(g[i], d[i].bytes + 1e-6);
        }
        EXPECT_LE(sum(g), cap + 1e-6);
        // Work conservation: either all demand served or capacity
        // (nearly) exhausted.
        if (total_demand <= cap)
            EXPECT_NEAR(sum(g), total_demand, 1e-6);
        else
            EXPECT_NEAR(sum(g), cap, cap * 1e-6 + 1e-6);
    }
}

// ---- flat-model extraction guards ------------------------------------
//
// These pin the exact arbiter/thrash behavior the `--mem flat` memory
// model must preserve when the arbitration path moves behind the
// mem::MemoryModel interface.

TEST(ArbiterProportional, ZeroDemandAndEmpty)
{
    EXPECT_TRUE(allocateBandwidthProportional({}, 100).empty());
    const auto g =
        allocateBandwidthProportional({{0, 1}, {500, 1}}, 300);
    EXPECT_DOUBLE_EQ(g[0], 0);
    EXPECT_DOUBLE_EQ(g[1], 300);
}

TEST(ArbiterProportional, SingleRequesterGetsMinOfDemandAndCapacity)
{
    auto g = allocateBandwidthProportional({{250, 4}}, 1000);
    EXPECT_DOUBLE_EQ(g[0], 250);
    g = allocateBandwidthProportional({{2500, 4}}, 1000);
    EXPECT_DOUBLE_EQ(g[0], 1000);
}

TEST(ArbiterProportional, HogWinsUnderProportionalNotUnderMaxMin)
{
    // The contention pathology MoCA regulates: an FCFS-style
    // controller serves in proportion to in-flight demand, so the
    // 3x-demand hog takes 3x the bandwidth; max-min with equal
    // weights splits equally instead.
    const std::vector<BwDemand> d = {{900, 1}, {300, 1}};
    const auto prop = allocateBandwidthProportional(d, 400);
    EXPECT_DOUBLE_EQ(prop[0], 300);
    EXPECT_DOUBLE_EQ(prop[1], 100);

    const auto fair = allocateBandwidth(d, 400);
    EXPECT_DOUBLE_EQ(fair[0], 200);
    EXPECT_DOUBLE_EQ(fair[1], 200);
}

TEST(ArbiterProportional, PureDemandProportionalSplit)
{
    // With equal weights and no requester's share exceeding its
    // demand, the split is exactly demand-proportional — the small
    // demand is NOT topped up the way max-min would.
    const auto g =
        allocateBandwidthProportional({{50, 1}, {600, 1}, {300, 1}},
                                      650);
    EXPECT_NEAR(g[0], 650.0 * 50 / 950, 1e-9);
    EXPECT_NEAR(g[1], 650.0 * 600 / 950, 1e-9);
    EXPECT_NEAR(g[2], 650.0 * 300 / 950, 1e-9);
    EXPECT_NEAR(sum(g), 650, 1e-9);
}

TEST(ArbiterProportional, WorkConservingRedistribution)
{
    // A heavily-weighted small demand is capped at its demand; the
    // leftover redistributes to the others in demand proportion.
    const auto g = allocateBandwidthProportional(
        {{50, 10}, {600, 1}, {300, 1}}, 400);
    EXPECT_DOUBLE_EQ(g[0], 50);
    EXPECT_NEAR(g[1], 350.0 * 600 / 900, 1e-9);
    EXPECT_NEAR(g[2], 350.0 * 300 / 900, 1e-9);
    EXPECT_NEAR(sum(g), 400, 1e-9);
}

TEST(Thrash, NoThrashAtOrBelowExactOnset)
{
    // total == capacity * onset is the boundary: not yet thrashing.
    const double cap = 1000.0, onset = 1.3;
    const auto at = applyDramThrash(cap * onset, 100.0, cap, onset,
                                    0.5);
    EXPECT_FALSE(at.thrashed);
    EXPECT_DOUBLE_EQ(at.capacity, cap);
    EXPECT_DOUBLE_EQ(at.lostBytes, 0.0);

    const auto below =
        applyDramThrash(cap * onset - 1.0, 100.0, cap, onset, 0.5);
    EXPECT_FALSE(below.thrashed);
    EXPECT_DOUBLE_EQ(below.capacity, cap);
}

TEST(Thrash, ThrashesJustAboveOnsetWhenInterleaved)
{
    const double cap = 1000.0, onset = 1.3;
    // Two equal streams: interleave = 0.5 (the saturating value).
    const double total = cap * onset + 10.0;
    const auto t =
        applyDramThrash(total, total / 2.0, cap, onset, 0.5);
    EXPECT_TRUE(t.thrashed);
    EXPECT_LT(t.capacity, cap);
    EXPECT_NEAR(t.lostBytes, cap - t.capacity, 1e-9);
}

TEST(Thrash, LoneStreamerKeepsLocality)
{
    // max_demand == total_demand: a single requester far above the
    // onset still keeps its row-buffer locality — no loss.
    const auto t = applyDramThrash(5000.0, 5000.0, 1000.0, 1.3, 0.5);
    EXPECT_FALSE(t.thrashed);
    EXPECT_DOUBLE_EQ(t.capacity, 1000.0);
}

TEST(Thrash, ZeroDemandAndZeroCapacity)
{
    const auto zd = applyDramThrash(0.0, 0.0, 1000.0, 1.3, 0.5);
    EXPECT_FALSE(zd.thrashed);
    EXPECT_DOUBLE_EQ(zd.capacity, 1000.0);

    const auto zc = applyDramThrash(500.0, 500.0, 0.0, 1.3, 0.5);
    EXPECT_FALSE(zc.thrashed);
    EXPECT_DOUBLE_EQ(zc.capacity, 0.0);
}

TEST(Thrash, LossSaturatesAtFactor)
{
    // Far above onset with fully interleaved demand the loss ramps to
    // exactly `factor`: over = min(1, ...) and interleave caps at 0.5.
    const double cap = 1000.0, factor = 0.5;
    const auto t = applyDramThrash(10.0 * cap, cap, cap, 1.3, factor);
    EXPECT_TRUE(t.thrashed);
    EXPECT_NEAR(t.capacity, cap * (1.0 - factor), 1e-9);
}

TEST(Thrash, StepLengthInvariantLossRatio)
{
    // The derate depends only on demand/capacity ratios, so scaling
    // demand and capacity together (a longer arbitration horizon)
    // scales lostBytes linearly — both kernels see the same derate.
    const auto a = applyDramThrash(2000.0, 800.0, 1000.0, 1.3, 0.5);
    const auto b =
        applyDramThrash(8.0 * 2000.0, 8.0 * 800.0, 8.0 * 1000.0, 1.3,
                        0.5);
    ASSERT_TRUE(a.thrashed);
    ASSERT_TRUE(b.thrashed);
    EXPECT_NEAR(b.lostBytes, 8.0 * a.lostBytes, 1e-6);
}

/** Property: max-min fairness — an unsatisfied requester's weighted
 *  grant is >= every other requester's weighted grant (no one it
 *  could take from has more). */
TEST(Arbiter, PropertyMaxMinFairness)
{
    Rng rng(67);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(2, 8));
        std::vector<BwDemand> d;
        for (int i = 0; i < n; ++i)
            d.push_back({rng.uniform(0.0, 1000.0),
                         rng.uniform(0.5, 4.0)});
        const double cap = rng.uniform(10.0, 1200.0);
        const auto g = allocateBandwidth(d, cap);

        for (std::size_t i = 0; i < g.size(); ++i) {
            const bool unsatisfied = g[i] < d[i].bytes - 1e-6;
            if (!unsatisfied)
                continue;
            const double norm_i = g[i] / d[i].weight;
            for (std::size_t j = 0; j < g.size(); ++j) {
                if (j == i)
                    continue;
                const double norm_j = g[j] / d[j].weight;
                EXPECT_LE(norm_j, norm_i + 1e-6)
                    << "requester " << j
                    << " holds more than unsatisfied " << i;
            }
        }
    }
}

} // namespace
} // namespace moca::sim
