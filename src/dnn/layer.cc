#include "dnn/layer.h"

#include "common/log.h"

namespace moca::dnn {

namespace {

int
convOutDim(int in, int kernel, int stride, int pad)
{
    const int out = (in + 2 * pad - kernel) / stride + 1;
    if (out <= 0)
        panic("layer output dimension is non-positive "
              "(in=%d k=%d s=%d p=%d)", in, kernel, stride, pad);
    return out;
}

} // anonymous namespace

int
Layer::outH() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pool:
        return convOutDim(inH, kernel, stride, pad);
      case LayerKind::GlobalPool:
        return 1;
      case LayerKind::Dense:
        return 1;
      case LayerKind::Add:
      case LayerKind::Lrn:
        return inH;
    }
    panic("unreachable layer kind");
}

int
Layer::outW() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pool:
        return convOutDim(inW, kernel, stride, pad);
      case LayerKind::GlobalPool:
        return 1;
      case LayerKind::Dense:
        return 1;
      case LayerKind::Add:
      case LayerKind::Lrn:
        return inW;
    }
    panic("unreachable layer kind");
}

std::uint64_t
Layer::macCount() const
{
    return static_cast<std::uint64_t>(
        static_cast<double>(denseMacCount()) * weightDensity);
}

std::uint64_t
Layer::denseMacCount() const
{
    switch (kind) {
      case LayerKind::Conv: {
        const std::uint64_t per_output =
            static_cast<std::uint64_t>(kernel) * kernel *
            (static_cast<std::uint64_t>(inC) / groups);
        return static_cast<std::uint64_t>(outH()) * outW() * outC *
            per_output;
      }
      case LayerKind::Dense:
        return static_cast<std::uint64_t>(inC) * outC;
      case LayerKind::Pool:
      case LayerKind::GlobalPool:
      case LayerKind::Add:
      case LayerKind::Lrn:
        // Element-wise / reduction work is not matrix work on the
        // systolic array; counted as zero MACs (MEM layers).
        return 0;
    }
    panic("unreachable layer kind");
}

std::uint64_t
Layer::weightBytes() const
{
    if (weightDensity >= 1.0)
        return denseWeightBytes();
    // Compressed sparse storage: non-zero values plus index/bitmap
    // overhead of ~1 bit per dense position (1/8 byte per int8).
    const double stored =
        static_cast<double>(denseWeightBytes()) *
        (weightDensity + 0.125);
    return static_cast<std::uint64_t>(stored);
}

std::uint64_t
Layer::denseWeightBytes() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<std::uint64_t>(kernel) * kernel *
            (static_cast<std::uint64_t>(inC) / groups) * outC *
            kElemBytes;
      case LayerKind::Dense:
        return static_cast<std::uint64_t>(inC) * outC * kElemBytes;
      case LayerKind::Pool:
      case LayerKind::GlobalPool:
      case LayerKind::Add:
      case LayerKind::Lrn:
        return 0;
    }
    panic("unreachable layer kind");
}

std::uint64_t
Layer::biasBytes() const
{
    if (!hasBias)
        return 0;
    return static_cast<std::uint64_t>(outC) * kAccBytes;
}

std::uint64_t
Layer::inputBytes() const
{
    const std::uint64_t tensor =
        static_cast<std::uint64_t>(inH) * inW * inC * kElemBytes;
    if (kind == LayerKind::Add)
        return 2 * tensor; // both residual operands
    return tensor;
}

std::uint64_t
Layer::outputBytes() const
{
    const int oc = kind == LayerKind::Pool || kind == LayerKind::Add ||
        kind == LayerKind::Lrn || kind == LayerKind::GlobalPool
        ? inC : outC;
    return static_cast<std::uint64_t>(outH()) * outW() * oc * kElemBytes;
}

LayerClass
Layer::layerClass() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Dense:
        return LayerClass::Compute;
      case LayerKind::Pool:
      case LayerKind::GlobalPool:
      case LayerKind::Add:
      case LayerKind::Lrn:
        return LayerClass::Mem;
    }
    panic("unreachable layer kind");
}

double
Layer::arithmeticIntensity() const
{
    const double bytes = static_cast<double>(weightBytes() +
        inputBytes() + outputBytes() + biasBytes());
    if (bytes <= 0.0)
        return 0.0;
    return static_cast<double>(macCount()) / bytes;
}

Layer
Layer::conv(std::string name, int in_h, int in_w, int in_c, int out_c,
            int kernel, int stride, int pad, int groups)
{
    if (in_c % groups != 0 || out_c % groups != 0)
        fatal("conv %s: channels (%d->%d) not divisible by groups %d",
              name.c_str(), in_c, out_c, groups);
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Conv;
    l.inH = in_h;
    l.inW = in_w;
    l.inC = in_c;
    l.outC = out_c;
    l.kernel = kernel;
    l.stride = stride;
    l.pad = pad;
    l.groups = groups;
    l.hasBias = true;
    return l;
}

Layer
Layer::dense(std::string name, int in_features, int out_features)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Dense;
    l.inC = in_features;
    l.outC = out_features;
    l.hasBias = true;
    return l;
}

Layer
Layer::pool(std::string name, int in_h, int in_w, int in_c, int kernel,
            int stride, int pad)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Pool;
    l.inH = in_h;
    l.inW = in_w;
    l.inC = in_c;
    l.outC = in_c;
    l.kernel = kernel;
    l.stride = stride;
    l.pad = pad;
    return l;
}

Layer
Layer::globalPool(std::string name, int in_h, int in_w, int in_c)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::GlobalPool;
    l.inH = in_h;
    l.inW = in_w;
    l.inC = in_c;
    l.outC = in_c;
    return l;
}

Layer
Layer::add(std::string name, int h, int w, int c)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Add;
    l.inH = h;
    l.inW = w;
    l.inC = c;
    l.outC = c;
    return l;
}

Layer
Layer::lrn(std::string name, int h, int w, int c)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Lrn;
    l.inH = h;
    l.inW = w;
    l.inC = c;
    l.outC = c;
    return l;
}

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Dense: return "dense";
      case LayerKind::Pool: return "pool";
      case LayerKind::GlobalPool: return "gap";
      case LayerKind::Add: return "add";
      case LayerKind::Lrn: return "lrn";
    }
    return "?";
}

} // namespace moca::dnn
