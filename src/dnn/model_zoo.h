/**
 * @file
 * The seven benchmark DNNs from Table III of the paper, described
 * layer by layer:
 *
 *  - Workload set A (light): SqueezeNet v1.0, YOLO-Lite, KWS (res8).
 *  - Workload set B (heavy): GoogLeNet, AlexNet, ResNet-50, YOLOv2.
 *  - Workload set C (mixed): all of the above.
 *
 * Branching modules (Fire, Inception, ResNet bottlenecks, YOLOv2's
 * passthrough) are linearized into their constituent convolutions plus
 * explicit Add layers for residuals; concatenations are free (adjacent
 * output buffers) and carry no layer of their own.
 */

#ifndef MOCA_DNN_MODEL_ZOO_H
#define MOCA_DNN_MODEL_ZOO_H

#include <memory>
#include <string>
#include <vector>

#include "dnn/model.h"

namespace moca::dnn {

/** SqueezeNet v1.0 [23], 224x224x3 input. */
Model makeSqueezeNet();

/** YOLO-Lite [21], 224x224x3 input, VOC head (125 outputs). */
Model makeYoloLite();

/** Keyword spotting res8 [51], 101x40x1 MFCC input. */
Model makeKws();

/** GoogLeNet [48], 224x224x3 input. */
Model makeGoogleNet();

/** AlexNet [29], 227x227x3 input (grouped conv2/4/5, LRN). */
Model makeAlexNet();

/** ResNet-50 [20], 224x224x3 input, explicit residual Add layers. */
Model makeResNet50();

/** YOLOv2 [45], 416x416x3 input, COCO head (425 outputs). */
Model makeYoloV2();

/**
 * MobileNetV1 (1.0x, 224x224x3) — an *extension* model outside the
 * paper's Table III benchmark set.  Its depthwise convolutions
 * exercise grouped execution with groups == channels, where a
 * weight-stationary systolic array is famously inefficient (1 of 16
 * columns active); useful for studying scheduler behaviour on
 * low-arithmetic-intensity compute layers.
 */
Model makeMobileNetV1();

/**
 * A 6-block transformer encoder (hidden 768, FFN 3072, 256-token
 * sequence folded into the spatial dimension) — an *extension* model
 * approximating large-batch transformer serving.  Its 1x1-projection
 * layers have high weight reuse (compute-intense), stretching the
 * high end of the mixes' compute-intensity range.
 */
Model makeTransformerL();

/**
 * A micro keyword-spotting network (DS-CNN-style, 49x10 MFCC input)
 * far smaller than the Table III KWS res8 — an *extension* model for
 * the "always-on tiny request" end of a cluster workload mix.
 */
Model makeKwsMicro();

/**
 * A DLRM-style recommendation MLP stack (wide dense layers; each
 * weight is used once) — an *extension* model whose arithmetic
 * intensity of ~1 MAC/weight-byte makes it the most memory-bound
 * profile in the zoo, the other extreme from makeTransformerL().
 */
Model makeDlrm();

/** Identifiers for zoo lookup. */
enum class ModelId
{
    SqueezeNet,
    YoloLite,
    Kws,
    GoogleNet,
    AlexNet,
    ResNet50,
    YoloV2,
    MobileNetV1,  ///< Extension model, not part of Table III.
    TransformerL, ///< Extension: compute-intense transformer encoder.
    KwsMicro,     ///< Extension: tiny always-on keyword spotter.
    Dlrm,         ///< Extension: memory-bound recommendation MLPs.
};

/** The paper's seven Table III model ids, in zoo order. */
const std::vector<ModelId> &allModelIds();

/** Extension models beyond the paper's benchmark set. */
const std::vector<ModelId> &extensionModelIds();

/** Model ids in workload set A (light models). */
const std::vector<ModelId> &workloadSetA();
/** Model ids in workload set B (heavy models). */
const std::vector<ModelId> &workloadSetB();
/** Model ids in workload set C (all models). */
const std::vector<ModelId> &workloadSetC();

/** Build (and memoize) the model for an id. */
const Model &getModel(ModelId id);

/** Printable model name. */
const char *modelIdName(ModelId id);

/** Lookup by name ("resnet50", "alexnet", ...); fatal if unknown. */
ModelId modelIdFromName(const std::string &name);

} // namespace moca::dnn

#endif // MOCA_DNN_MODEL_ZOO_H
