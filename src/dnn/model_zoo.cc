#include "dnn/model_zoo.h"

#include <map>
#include <mutex>

#include "common/log.h"

namespace moca::dnn {

namespace {

/**
 * Helper that appends layers while tracking the running tensor shape,
 * so the zoo reads like the paper's architecture tables.
 */
class NetBuilder
{
  public:
    NetBuilder(int h, int w, int c) : h_(h), w_(w), c_(c) {}

    NetBuilder &
    conv(const std::string &name, int out_c, int k, int s, int p,
         int groups = 1)
    {
        Layer l = Layer::conv(name, h_, w_, c_, out_c, k, s, p, groups);
        h_ = l.outH();
        w_ = l.outW();
        c_ = out_c;
        layers_.push_back(std::move(l));
        return *this;
    }

    NetBuilder &
    pool(const std::string &name, int k, int s, int p = 0)
    {
        Layer l = Layer::pool(name, h_, w_, c_, k, s, p);
        h_ = l.outH();
        w_ = l.outW();
        layers_.push_back(std::move(l));
        return *this;
    }

    NetBuilder &
    lrn(const std::string &name)
    {
        layers_.push_back(Layer::lrn(name, h_, w_, c_));
        return *this;
    }

    NetBuilder &
    add(const std::string &name)
    {
        layers_.push_back(Layer::add(name, h_, w_, c_));
        return *this;
    }

    NetBuilder &
    globalPool(const std::string &name)
    {
        layers_.push_back(Layer::globalPool(name, h_, w_, c_));
        h_ = 1;
        w_ = 1;
        return *this;
    }

    NetBuilder &
    dense(const std::string &name, int out_features)
    {
        layers_.push_back(
            Layer::dense(name, h_ * w_ * c_, out_features));
        h_ = 1;
        w_ = 1;
        c_ = out_features;
        return *this;
    }

    /**
     * SqueezeNet Fire module: squeeze 1x1 (s_c) then parallel expand
     * 1x1 (e1) and expand 3x3 (e3, pad 1); outputs concatenated to
     * e1+e3 channels (concat itself is free).
     */
    NetBuilder &
    fire(const std::string &name, int s_c, int e1, int e3)
    {
        conv(name + "/squeeze1x1", s_c, 1, 1, 0);
        const int h = h_, w = w_, c = c_;
        layers_.push_back(
            Layer::conv(name + "/expand1x1", h, w, c, e1, 1, 1, 0));
        layers_.push_back(
            Layer::conv(name + "/expand3x3", h, w, c, e3, 3, 1, 1));
        c_ = e1 + e3;
        return *this;
    }

    /**
     * GoogLeNet Inception module with branch widths
     * (b1, b3r->b3, b5r->b5, pool_proj); output b1+b3+b5+pp channels.
     */
    NetBuilder &
    inception(const std::string &name, int b1, int b3r, int b3, int b5r,
              int b5, int pp)
    {
        const int h = h_, w = w_, c = c_;
        layers_.push_back(
            Layer::conv(name + "/1x1", h, w, c, b1, 1, 1, 0));
        layers_.push_back(
            Layer::conv(name + "/3x3_reduce", h, w, c, b3r, 1, 1, 0));
        layers_.push_back(
            Layer::conv(name + "/3x3", h, w, b3r, b3, 3, 1, 1));
        layers_.push_back(
            Layer::conv(name + "/5x5_reduce", h, w, c, b5r, 1, 1, 0));
        layers_.push_back(
            Layer::conv(name + "/5x5", h, w, b5r, b5, 5, 1, 2));
        layers_.push_back(
            Layer::pool(name + "/pool", h, w, c, 3, 1, 1));
        layers_.push_back(
            Layer::conv(name + "/pool_proj", h, w, c, pp, 1, 1, 0));
        c_ = b1 + b3 + b5 + pp;
        return *this;
    }

    /**
     * ResNet bottleneck: 1x1 (mid) -> 3x3 (mid, stride s) -> 1x1
     * (4*mid) with residual Add; `project` adds the 1x1/stride-s
     * projection on the shortcut (first block of each stage).
     */
    NetBuilder &
    bottleneck(const std::string &name, int mid, int s, bool project)
    {
        const int in_c = c_;
        conv(name + "/conv1", mid, 1, 1, 0);
        conv(name + "/conv2", mid, 3, s, 1);
        conv(name + "/conv3", 4 * mid, 1, 1, 0);
        if (project) {
            // Shortcut projection runs on the block's input shape.
            const int proj_h = h_ * s;
            const int proj_w = w_ * s;
            layers_.push_back(Layer::conv(name + "/proj", proj_h,
                                          proj_w, in_c, 4 * mid, 1, s,
                                          0));
        }
        add(name + "/add");
        return *this;
    }

    /**
     * KWS res8 residual block: two 3x3 convolutions at constant width
     * plus the residual Add.
     */
    NetBuilder &
    res8Block(const std::string &name, int width)
    {
        conv(name + "/conv1", width, 3, 1, 1);
        conv(name + "/conv2", width, 3, 1, 1);
        add(name + "/add");
        return *this;
    }

    std::vector<Layer> take() { return std::move(layers_); }

    int h() const { return h_; }
    int w() const { return w_; }
    int c() const { return c_; }

  private:
    int h_, w_, c_;
    std::vector<Layer> layers_;
};

} // anonymous namespace

Model
makeSqueezeNet()
{
    // SqueezeNet v1.0 macroarchitecture (Table 1 of [23]).
    NetBuilder b(224, 224, 3);
    b.conv("conv1", 96, 7, 2, 2)
        .pool("maxpool1", 3, 2)
        .fire("fire2", 16, 64, 64)
        .fire("fire3", 16, 64, 64)
        .fire("fire4", 32, 128, 128)
        .pool("maxpool4", 3, 2)
        .fire("fire5", 32, 128, 128)
        .fire("fire6", 48, 192, 192)
        .fire("fire7", 48, 192, 192)
        .fire("fire8", 64, 256, 256)
        .pool("maxpool8", 3, 2)
        .fire("fire9", 64, 256, 256)
        .conv("conv10", 1000, 1, 1, 0)
        .globalPool("gap");
    return Model("squeezenet", ModelSize::Light, b.take());
}

Model
makeYoloLite()
{
    // YOLO-Lite [21]: 7 convolutional layers, VOC detection head.
    NetBuilder b(224, 224, 3);
    b.conv("conv1", 16, 3, 1, 1)
        .pool("pool1", 2, 2)
        .conv("conv2", 32, 3, 1, 1)
        .pool("pool2", 2, 2)
        .conv("conv3", 64, 3, 1, 1)
        .pool("pool3", 2, 2)
        .conv("conv4", 128, 3, 1, 1)
        .pool("pool4", 2, 2)
        .conv("conv5", 128, 3, 1, 1)
        .pool("pool5", 2, 2)
        .conv("conv6", 256, 3, 1, 1)
        .conv("conv7", 125, 1, 1, 0);
    return Model("yolo-lite", ModelSize::Light, b.take());
}

Model
makeKws()
{
    // res8 keyword-spotting network [51]: first conv, 4x3 average
    // pool, three residual blocks at width 45, global pool, 12-way
    // classifier.
    NetBuilder b(101, 40, 1);
    b.conv("conv0", 45, 3, 1, 1)
        .pool("avgpool", 4, 4) // 4x3 pool modelled as stride-4 square
        .res8Block("res1", 45)
        .res8Block("res2", 45)
        .res8Block("res3", 45)
        .globalPool("gap")
        .dense("fc", 12);
    return Model("kws", ModelSize::Light, b.take());
}

Model
makeGoogleNet()
{
    NetBuilder b(224, 224, 3);
    b.conv("conv1/7x7_s2", 64, 7, 2, 3)
        .pool("pool1/3x3_s2", 3, 2)
        .lrn("pool1/norm1")
        .conv("conv2/3x3_reduce", 64, 1, 1, 0)
        .conv("conv2/3x3", 192, 3, 1, 1)
        .lrn("conv2/norm2")
        .pool("pool2/3x3_s2", 3, 2)
        .inception("inception_3a", 64, 96, 128, 16, 32, 32)
        .inception("inception_3b", 128, 128, 192, 32, 96, 64)
        .pool("pool3/3x3_s2", 3, 2)
        .inception("inception_4a", 192, 96, 208, 16, 48, 64)
        .inception("inception_4b", 160, 112, 224, 24, 64, 64)
        .inception("inception_4c", 128, 128, 256, 24, 64, 64)
        .inception("inception_4d", 112, 144, 288, 32, 64, 64)
        .inception("inception_4e", 256, 160, 320, 32, 128, 128)
        .pool("pool4/3x3_s2", 3, 2)
        .inception("inception_5a", 256, 160, 320, 32, 128, 128)
        .inception("inception_5b", 384, 192, 384, 48, 128, 128)
        .globalPool("pool5/gap")
        .dense("loss3/classifier", 1000);
    return Model("googlenet", ModelSize::Heavy, b.take());
}

Model
makeAlexNet()
{
    NetBuilder b(227, 227, 3);
    b.conv("conv1", 96, 11, 4, 0)
        .lrn("norm1")
        .pool("pool1", 3, 2)
        .conv("conv2", 256, 5, 1, 2, 2)
        .lrn("norm2")
        .pool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1, 1)
        .conv("conv4", 384, 3, 1, 1, 2)
        .conv("conv5", 256, 3, 1, 1, 2)
        .pool("pool5", 3, 2)
        .dense("fc6", 4096)
        .dense("fc7", 4096)
        .dense("fc8", 1000);
    return Model("alexnet", ModelSize::Heavy, b.take());
}

Model
makeResNet50()
{
    NetBuilder b(224, 224, 3);
    b.conv("conv1", 64, 7, 2, 3)
        .pool("pool1", 3, 2, 1);
    // Stage 2: 3 bottlenecks at width 64, stride 1.
    b.bottleneck("res2a", 64, 1, true)
        .bottleneck("res2b", 64, 1, false)
        .bottleneck("res2c", 64, 1, false);
    // Stage 3: 4 bottlenecks at width 128, first strided.
    b.bottleneck("res3a", 128, 2, true)
        .bottleneck("res3b", 128, 1, false)
        .bottleneck("res3c", 128, 1, false)
        .bottleneck("res3d", 128, 1, false);
    // Stage 4: 6 bottlenecks at width 256, first strided.
    b.bottleneck("res4a", 256, 2, true)
        .bottleneck("res4b", 256, 1, false)
        .bottleneck("res4c", 256, 1, false)
        .bottleneck("res4d", 256, 1, false)
        .bottleneck("res4e", 256, 1, false)
        .bottleneck("res4f", 256, 1, false);
    // Stage 5: 3 bottlenecks at width 512, first strided.
    b.bottleneck("res5a", 512, 2, true)
        .bottleneck("res5b", 512, 1, false)
        .bottleneck("res5c", 512, 1, false);
    b.globalPool("pool5").dense("fc1000", 1000);
    return Model("resnet50", ModelSize::Heavy, b.take());
}

Model
makeYoloV2()
{
    // Darknet-19 backbone + detection head; the 26x26 passthrough is
    // linearized as its 1x1/64 conv (reorg is a data-layout move whose
    // traffic is folded into the following conv's input).
    NetBuilder b(416, 416, 3);
    b.conv("conv1", 32, 3, 1, 1)
        .pool("pool1", 2, 2)
        .conv("conv2", 64, 3, 1, 1)
        .pool("pool2", 2, 2)
        .conv("conv3", 128, 3, 1, 1)
        .conv("conv4", 64, 1, 1, 0)
        .conv("conv5", 128, 3, 1, 1)
        .pool("pool3", 2, 2)
        .conv("conv6", 256, 3, 1, 1)
        .conv("conv7", 128, 1, 1, 0)
        .conv("conv8", 256, 3, 1, 1)
        .pool("pool4", 2, 2)
        .conv("conv9", 512, 3, 1, 1)
        .conv("conv10", 256, 1, 1, 0)
        .conv("conv11", 512, 3, 1, 1)
        .conv("conv12", 256, 1, 1, 0)
        .conv("conv13", 512, 3, 1, 1)
        .pool("pool5", 2, 2)
        .conv("conv14", 1024, 3, 1, 1)
        .conv("conv15", 512, 1, 1, 0)
        .conv("conv16", 1024, 3, 1, 1)
        .conv("conv17", 512, 1, 1, 0)
        .conv("conv18", 1024, 3, 1, 1)
        .conv("conv19", 1024, 3, 1, 1)
        .conv("conv20", 1024, 3, 1, 1);
    // Passthrough branch on the 26x26x512 feature map.
    std::vector<Layer> layers = b.take();
    layers.push_back(
        Layer::conv("conv21_passthrough", 26, 26, 512, 64, 1, 1, 0));
    // After reorg (26x26x64 -> 13x13x256) and concat: 1024+256 = 1280.
    layers.push_back(
        Layer::conv("conv22", 13, 13, 1280, 1024, 3, 1, 1));
    layers.push_back(
        Layer::conv("conv23_det", 13, 13, 1024, 425, 1, 1, 0));
    return Model("yolov2", ModelSize::Heavy, std::move(layers));
}


Model
makeMobileNetV1()
{
    // MobileNetV1 1.0x: conv stem then 13 depthwise-separable pairs
    // (depthwise 3x3 with groups == channels, then pointwise 1x1).
    NetBuilder b(224, 224, 3);
    b.conv("conv1", 32, 3, 2, 1);
    auto dw_pw = [&b](const std::string &name, int in_c, int out_c,
                      int stride) {
        b.conv(name + "/dw", in_c, 3, stride, 1, in_c);
        b.conv(name + "/pw", out_c, 1, 1, 0);
    };
    dw_pw("sep1", 32, 64, 1);
    dw_pw("sep2", 64, 128, 2);
    dw_pw("sep3", 128, 128, 1);
    dw_pw("sep4", 128, 256, 2);
    dw_pw("sep5", 256, 256, 1);
    dw_pw("sep6", 256, 512, 2);
    dw_pw("sep7", 512, 512, 1);
    dw_pw("sep8", 512, 512, 1);
    dw_pw("sep9", 512, 512, 1);
    dw_pw("sep10", 512, 512, 1);
    dw_pw("sep11", 512, 512, 1);
    dw_pw("sep12", 512, 1024, 2);
    dw_pw("sep13", 1024, 1024, 1);
    b.globalPool("gap").dense("fc", 1000);
    return Model("mobilenetv1", ModelSize::Light, b.take());
}

Model
makeTransformerL()
{
    // Six encoder blocks at hidden width 768 with the 256-token
    // sequence as the spatial dimension: every projection is a 1x1
    // "conv" whose weights are reused across all tokens, so the
    // profile is compute-intense like large-batch transformer
    // serving.  Attention score/value products carry no weights and
    // are folded into the projections' activation traffic.
    NetBuilder b(256, 1, 768);
    for (int i = 1; i <= 6; ++i) {
        const std::string name = "enc" + std::to_string(i);
        b.conv(name + "/qkv", 2304, 1, 1, 0)
            .conv(name + "/attn_out", 768, 1, 1, 0)
            .add(name + "/attn_res")
            .conv(name + "/ffn1", 3072, 1, 1, 0)
            .conv(name + "/ffn2", 768, 1, 1, 0)
            .add(name + "/ffn_res");
    }
    b.globalPool("pool").dense("head", 1000);
    return Model("transformer-l", ModelSize::Heavy, b.take());
}

Model
makeKwsMicro()
{
    // DS-CNN-S-style micro keyword spotter on a 49x10 MFCC map: one
    // stem conv plus four depthwise-separable pairs at width 64 —
    // roughly an order of magnitude fewer MACs than the res8 KWS.
    NetBuilder b(49, 10, 1);
    b.conv("conv1", 64, 3, 2, 1);
    for (int i = 1; i <= 4; ++i) {
        const std::string name = "sep" + std::to_string(i);
        b.conv(name + "/dw", 64, 3, 1, 1, 64)
            .conv(name + "/pw", 64, 1, 1, 0);
    }
    b.globalPool("gap").dense("fc", 12);
    return Model("kws-micro", ModelSize::Light, b.take());
}

Model
makeDlrm()
{
    // DLRM-style MLP stack: the embedding gathers and interaction are
    // modelled as wide dense layers, so every weight byte is touched
    // exactly once per inference — arithmetic intensity ~1, the most
    // memory-bound profile in the zoo.
    NetBuilder b(1, 1, 2048);
    b.dense("emb1", 2048)
        .dense("emb2", 2048)
        .dense("emb3", 2048)
        .dense("top1", 1024)
        .dense("top2", 256)
        .dense("top3", 1);
    return Model("dlrm", ModelSize::Heavy, b.take());
}

const std::vector<ModelId> &
allModelIds()
{
    static const std::vector<ModelId> ids = {
        ModelId::SqueezeNet, ModelId::YoloLite, ModelId::Kws,
        ModelId::GoogleNet, ModelId::AlexNet, ModelId::ResNet50,
        ModelId::YoloV2,
    };
    return ids;
}

const std::vector<ModelId> &
extensionModelIds()
{
    static const std::vector<ModelId> ids = {
        ModelId::MobileNetV1, ModelId::TransformerL,
        ModelId::KwsMicro, ModelId::Dlrm,
    };
    return ids;
}

const std::vector<ModelId> &
workloadSetA()
{
    static const std::vector<ModelId> ids = {
        ModelId::SqueezeNet, ModelId::YoloLite, ModelId::Kws,
    };
    return ids;
}

const std::vector<ModelId> &
workloadSetB()
{
    static const std::vector<ModelId> ids = {
        ModelId::GoogleNet, ModelId::AlexNet, ModelId::ResNet50,
        ModelId::YoloV2,
    };
    return ids;
}

const std::vector<ModelId> &
workloadSetC()
{
    return allModelIds();
}

const Model &
getModel(ModelId id)
{
    // Memoized and shared across the sweep engine's worker threads;
    // std::map guarantees reference stability across insertions, so
    // callers may hold the returned reference without the lock.
    static std::mutex mutex;
    static std::map<ModelId, Model> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(id);
    if (it != cache.end())
        return it->second;

    Model m = [&]() {
        switch (id) {
          case ModelId::SqueezeNet: return makeSqueezeNet();
          case ModelId::YoloLite: return makeYoloLite();
          case ModelId::Kws: return makeKws();
          case ModelId::GoogleNet: return makeGoogleNet();
          case ModelId::AlexNet: return makeAlexNet();
          case ModelId::ResNet50: return makeResNet50();
          case ModelId::YoloV2: return makeYoloV2();
          case ModelId::MobileNetV1: return makeMobileNetV1();
          case ModelId::TransformerL: return makeTransformerL();
          case ModelId::KwsMicro: return makeKwsMicro();
          case ModelId::Dlrm: return makeDlrm();
        }
        panic("unknown model id");
    }();
    return cache.emplace(id, std::move(m)).first->second;
}

const char *
modelIdName(ModelId id)
{
    switch (id) {
      case ModelId::SqueezeNet: return "squeezenet";
      case ModelId::YoloLite: return "yolo-lite";
      case ModelId::Kws: return "kws";
      case ModelId::GoogleNet: return "googlenet";
      case ModelId::AlexNet: return "alexnet";
      case ModelId::ResNet50: return "resnet50";
      case ModelId::YoloV2: return "yolov2";
      case ModelId::MobileNetV1: return "mobilenetv1";
      case ModelId::TransformerL: return "transformer-l";
      case ModelId::KwsMicro: return "kws-micro";
      case ModelId::Dlrm: return "dlrm";
    }
    return "?";
}

ModelId
modelIdFromName(const std::string &name)
{
    for (ModelId id : allModelIds()) {
        if (name == modelIdName(id))
            return id;
    }
    for (ModelId id : extensionModelIds()) {
        if (name == modelIdName(id))
            return id;
    }
    // Derived variants keep the base name as a prefix followed by a
    // suffix (e.g. "resnet50-d25" from sparsifyModel); resolve them
    // to the base network, longest prefix first.
    const ModelId *best = nullptr;
    std::size_t best_len = 0;
    for (const ModelId &id : allModelIds()) {
        const std::string base = modelIdName(id);
        if (name.size() > base.size() &&
            name.compare(0, base.size(), base) == 0 &&
            name[base.size()] == '-' && base.size() > best_len) {
            best = &id;
            best_len = base.size();
        }
    }
    if (best != nullptr)
        return *best;
    fatal("unknown model name '%s'", name.c_str());
}

} // namespace moca::dnn
