#include "dnn/model.h"

#include <atomic>

#include "common/log.h"

namespace moca::dnn {

namespace {

std::uint32_t
nextModelUid()
{
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // anonymous namespace

Model::Model(std::string name, ModelSize size, std::vector<Layer> layers)
    : name_(std::move(name)), size_(size), uid_(nextModelUid()),
      layers_(std::move(layers))
{
    if (layers_.empty())
        fatal("model %s has no layers", name_.c_str());
    for (const auto &l : layers_) {
        total_macs_ += l.macCount();
        total_weight_bytes_ += l.weightBytes() + l.biasBytes();
    }
    formBlocks();
}

std::uint64_t
Model::inputBytes() const
{
    return layers_.front().inputBytes();
}

void
Model::formBlocks()
{
    LayerBlock cur;
    std::uint64_t cur_mem_traffic = 0;
    std::uint64_t cur_compute_traffic = 0;

    auto flush = [&]() {
        if (cur.count == 0)
            return;
        cur.memBound = cur_mem_traffic > cur_compute_traffic;
        blocks_.push_back(cur);
        cur = LayerBlock();
        cur.first = blocks_.back().first + blocks_.back().count;
        cur_mem_traffic = 0;
        cur_compute_traffic = 0;
    };

    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const Layer &l = layers_[i];
        const bool is_mem = l.layerClass() == LayerClass::Mem;
        const std::uint64_t traffic =
            l.inputBytes() + l.outputBytes() + l.weightBytes() +
            l.biasBytes();

        // Close the block when it already met the MAC target and the
        // next layer starts a compute region (MEM layers are folded
        // into the preceding block; see header comment).
        if (cur.count > 0 && !is_mem && cur.macs >= block_mac_target)
            flush();

        cur.count++;
        cur.macs += l.macCount();
        cur.weightBytes += l.weightBytes() + l.biasBytes();
        cur.activationBytes += l.inputBytes() + l.outputBytes();
        if (is_mem)
            cur_mem_traffic += traffic;
        else
            cur_compute_traffic += traffic;
    }
    flush();

    // Sanity: the blocks must tile the layer list exactly.
    std::size_t covered = 0;
    for (const auto &b : blocks_)
        covered += b.count;
    if (covered != layers_.size())
        panic("block formation covered %zu of %zu layers in %s",
              covered, layers_.size(), name_.c_str());
}

Model
sparsifyModel(const Model &model, double density)
{
    if (density <= 0.0 || density > 1.0)
        fatal("sparsifyModel: density must be in (0, 1], got %f",
              density);
    std::vector<Layer> layers = model.layers();
    for (auto &l : layers) {
        if (l.layerClass() == LayerClass::Compute)
            l.weightDensity = density;
    }
    return Model(model.name() + strprintf("-d%02d",
                     static_cast<int>(density * 100)),
                 model.size(), std::move(layers));
}

} // namespace moca::dnn
