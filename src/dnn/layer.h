/**
 * @file
 * DNN layer description.  MoCA never inspects tensor values; the whole
 * stack (latency model, runtime, scheduler, simulator) consumes layer
 * *shapes* and the footprints/MAC counts derived from them, so a layer
 * here is a shape record plus derived-quantity accessors.
 *
 * Following the paper (Sec. III-C), layers are classified as COMPUTE
 * (high arithmetic intensity: convolutions, fully-connected) or MEM
 * (little reuse: residual additions, poolings, LRN, global pooling).
 * Data types follow Gemmini's defaults: int8 weights/activations
 * (1 byte per element) and 32-bit biases/accumulators.
 */

#ifndef MOCA_DNN_LAYER_H
#define MOCA_DNN_LAYER_H

#include <cstdint>
#include <string>

namespace moca::dnn {

/** Operator type of a layer. */
enum class LayerKind
{
    Conv,       ///< 2-D convolution (optionally grouped).
    Dense,      ///< Fully-connected / matrix-vector layer.
    Pool,       ///< Max or average pooling window.
    GlobalPool, ///< Global average pooling.
    Add,        ///< Element-wise residual addition.
    Lrn,        ///< Local response normalization (memory-bound).
};

/** Paper-style two-way classification used by Algorithm 1. */
enum class LayerClass
{
    Compute, ///< CONV / FC: latency set by max(compute, memory).
    Mem,     ///< Bandwidth-bound operator with little data reuse.
};

/** Bytes per activation/weight element (int8 datapath). */
constexpr std::uint64_t kElemBytes = 1;
/** Bytes per bias/accumulator element (int32). */
constexpr std::uint64_t kAccBytes = 4;

/**
 * One DNN layer: a shape record with derived footprint and MAC-count
 * accessors.  Construct via the named factory functions.
 */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;

    // Input tensor shape (H x W x C).  Dense layers use inC as the
    // flattened input feature count with inH = inW = 1.
    int inH = 1;
    int inW = 1;
    int inC = 1;

    // Convolution / pooling parameters.
    int outC = 1;   ///< Output channels (Dense: output features).
    int kernel = 1; ///< Square kernel size.
    int stride = 1;
    int pad = 0;
    int groups = 1; ///< Grouped convolution (AlexNet conv2/4/5).
    bool hasBias = false;

    /**
     * Fraction of non-zero weights in (0, 1]; 1.0 = dense.  Sparse
     * layers store weights compressed (non-zeros plus index overhead)
     * and a sparsity-capable tile skips zero MACs.  This is the
     * extension the paper's Limitations section sketches: MoCA
     * "can be augmented with an accurate performance and memory
     * resource predictor of sparse DNNs".
     */
    double weightDensity = 1.0;

    /** Output spatial height. */
    int outH() const;
    /** Output spatial width. */
    int outW() const;

    /**
     * Effective multiply-accumulate count: dense MACs scaled by
     * weightDensity (zero MACs are skipped by the sparse datapath).
     */
    std::uint64_t macCount() const;

    /** MAC count of the dense (uncompressed) layer. */
    std::uint64_t denseMacCount() const;

    /**
     * Stored weight footprint in bytes (excluding bias): the dense
     * footprint for density 1.0, otherwise the compressed form
     * (non-zeros plus ~12.5% index overhead).
     */
    std::uint64_t weightBytes() const;

    /** Weight footprint of the dense (uncompressed) layer. */
    std::uint64_t denseWeightBytes() const;
    /** Bias footprint in bytes (0 when hasBias is false). */
    std::uint64_t biasBytes() const;
    /** Input activation footprint in bytes (all operands for Add). */
    std::uint64_t inputBytes() const;
    /** Output activation footprint in bytes. */
    std::uint64_t outputBytes() const;

    /** COMPUTE vs MEM classification per the paper. */
    LayerClass layerClass() const;

    /**
     * Arithmetic intensity: MACs per byte moved (weights + input +
     * output).  Used by tests and the scheduler's diagnostics.
     */
    double arithmeticIntensity() const;

    // --- Named constructors -------------------------------------------

    /** 2-D convolution. */
    static Layer conv(std::string name, int in_h, int in_w, int in_c,
                      int out_c, int kernel, int stride, int pad,
                      int groups = 1);

    /** Fully-connected layer. */
    static Layer dense(std::string name, int in_features,
                       int out_features);

    /** Max/avg pooling (modelled identically: MEM traffic). */
    static Layer pool(std::string name, int in_h, int in_w, int in_c,
                      int kernel, int stride, int pad = 0);

    /** Global average pooling down to 1x1xC. */
    static Layer globalPool(std::string name, int in_h, int in_w,
                            int in_c);

    /** Element-wise residual addition over an HxWxC tensor. */
    static Layer add(std::string name, int h, int w, int c);

    /** Local response normalization over an HxWxC tensor. */
    static Layer lrn(std::string name, int h, int w, int c);
};

/** Human-readable kind name ("conv", "dense", ...). */
const char *layerKindName(LayerKind kind);

} // namespace moca::dnn

#endif // MOCA_DNN_LAYER_H
