/**
 * @file
 * A DNN inference model: an ordered list of layers plus the
 * layer-block grouping the schedulers reconfigure at (Sec. IV-D of the
 * paper: "we break down DNN networks into layer blocks, which consist
 * of multiple layers, and reconfigure at the layer-block granularity").
 */

#ifndef MOCA_DNN_MODEL_H
#define MOCA_DNN_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.h"

namespace moca::dnn {

/** Model-size class used to form the paper's workload sets. */
enum class ModelSize
{
    Light, ///< Workload set A members.
    Heavy, ///< Workload set B members.
};

/**
 * A contiguous group of layers executed under one resource
 * configuration.  Blocks are formed so that layers inside a block have
 * similar compute-to-memory character and the block is long enough to
 * amortize a reconfiguration.
 */
struct LayerBlock
{
    std::size_t first = 0; ///< Index of the first layer in the block.
    std::size_t count = 0; ///< Number of layers.

    /** Aggregate MACs of the block's layers. */
    std::uint64_t macs = 0;
    /** Aggregate weight+bias bytes. */
    std::uint64_t weightBytes = 0;
    /** Aggregate input+output activation bytes. */
    std::uint64_t activationBytes = 0;
    /** True when MEM-class traffic dominates the block. */
    bool memBound = false;
};

/** An inference network. */
class Model
{
  public:
    Model(std::string name, ModelSize size, std::vector<Layer> layers);

    /**
     * Process-unique identity of this model's (immutable) layer list,
     * assigned at construction and shared by copies.  Estimator-side
     * memoization keys on it instead of the object address, which a
     * later allocation could reuse.
     */
    std::uint32_t uid() const { return uid_; }

    const std::string &name() const { return name_; }
    ModelSize size() const { return size_; }
    const std::vector<Layer> &layers() const { return layers_; }
    std::size_t numLayers() const { return layers_.size(); }
    const Layer &layer(std::size_t i) const { return layers_.at(i); }

    /** Total MAC count over all layers. */
    std::uint64_t totalMacs() const { return total_macs_; }
    /** Total parameter (weight+bias) bytes. */
    std::uint64_t totalWeightBytes() const { return total_weight_bytes_; }
    /** Input image/tensor footprint in bytes (first layer's input). */
    std::uint64_t inputBytes() const;

    /**
     * Layer blocks formed by the greedy grouping below.  Computed in
     * the constructor: const Models are shared read-only across sweep
     * worker threads, so block formation must not be lazy (a
     * first-use write to a mutable cache would be a data race).
     *
     * Grouping rule: accumulate consecutive layers while (a) the
     * block's MAC total is below `block_mac_target` or the block would
     * otherwise be a single tiny layer, and (b) the layer class
     * (COMPUTE vs MEM) matches the block's dominant class, except that
     * short MEM layers (pool/add) are folded into the preceding
     * compute block since they cannot be fused but are too short to
     * schedule alone.
     */
    const std::vector<LayerBlock> &blocks() const { return blocks_; }

    /** Number of blocks (forces block formation). */
    std::size_t numBlocks() const { return blocks().size(); }

  private:
    std::string name_;
    ModelSize size_;
    std::uint32_t uid_ = 0;
    std::vector<Layer> layers_;
    std::uint64_t total_macs_ = 0;
    std::uint64_t total_weight_bytes_ = 0;

    std::vector<LayerBlock> blocks_;

    /** Greedy block formation (constructor-time; see blocks()). */
    void formBlocks();

    /**
     * Block granularity: fine enough that memory-bound regions (e.g.
     * AlexNet's FC layers) form their own blocks — the runtime's
     * contention detection works on per-block bandwidth averages, so
     * over-coarse blocks would dilute bursty demand.
     */
    static constexpr std::uint64_t block_mac_target = 16'000'000;
};

/**
 * Sparse variant of a model: every conv/dense layer's weightDensity
 * is set to `density` (activations and MEM layers are untouched).
 * Models magnitude-pruned networks running on a sparsity-capable
 * tile; see Layer::weightDensity.
 */
Model sparsifyModel(const Model &model, double density);

} // namespace moca::dnn

#endif // MOCA_DNN_MODEL_H
