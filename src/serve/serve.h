/**
 * @file
 * The closed-loop serving driver: ties the client population
 * (serve/client.h), admission control (serve/admission.h), the
 * autoscaler (serve/autoscaler.h), and failure injection
 * (serve/failure.h) around the conservative-PDES fleet engine
 * (cluster/parallel.h) into one deterministic serving loop.
 *
 * Execution model.  The front end keeps a single event queue —
 * client issues, retries, per-attempt timeouts, admission re-tries
 * of deferred requests, autoscaler ticks, SoC fail/recover — ordered
 * by (cycle, kind, sequence).  Between events the fleet advances in
 * *control quanta*: the engine's epoch horizon is the earlier of the
 * next front-end event and now + controlQuantum, so completions are
 * harvested (in SoC index order) at deterministic boundaries and
 * client reactions — think time, then the next request — are
 * scheduled from them.  Arrivals are thus generated reactively from
 * completions, the defining property of a closed loop; every
 * front-end decision happens on the coordinator between epochs, so
 * the whole run is bit-identical for every ServeConfig::jobs value.
 *
 * Capacity churn.  A fleet slot is Up (taking placements), Draining
 * (autoscaled down: no new placements, running work finishes), or
 * Failed (frozen in the engine; its queue is lost).  Recovery swaps
 * a *fresh* SoC into the slot.  The dispatcher and admission policy
 * only ever see the Up slots.
 *
 * The open-loop synthesizer remains available as a degenerate pool
 * (openLoop = true): the request stream comes from
 * cluster::synthesizeTasks with fixed arrival cycles, no think time,
 * no timeouts, no retries — with always-admit, no autoscaler, no
 * failures, and an unbounded control quantum it replays
 * cluster::runCluster bit-identically.
 */

#ifndef MOCA_SERVE_SERVE_H
#define MOCA_SERVE_SERVE_H

#include <cstdint>
#include <string>

#include "cluster/cluster.h"
#include "serve/admission.h"
#include "serve/autoscaler.h"
#include "serve/client.h"
#include "serve/failure.h"

namespace moca::serve {

/** Configuration of one closed-loop serving run. */
struct ServeConfig
{
    /** Per-SoC hardware/kernel configuration (homogeneous fleet). */
    sim::SocConfig soc;
    int numSocs = 4;

    /** Per-SoC scheduling policy spec (exp::PolicyRegistry). */
    std::string policy = "moca";
    /** Front-end dispatcher spec (cluster::DispatcherRegistry). */
    std::string dispatcher = "rr";
    /** Admission-control spec (serve::AdmissionRegistry). */
    std::string admission = "always";

    std::uint64_t dispatcherSeed = 1;

    /** PDES worker threads; bit-identical for every value >= 1. */
    int jobs = 1;

    /**
     * Control quantum in cycles: the fleet never advances more than
     * this far without a harvest/reaction point.  0 = unbounded
     * (advance straight to the next front-end event — the open-loop
     * replay mode).  Smaller quanta react faster but cost more
     * barrier epochs.
     */
    Cycles controlQuantum = 50'000;

    /** Front-end deadlock bound; fatal when the serving clock passes
     *  it with requests unresolved.  0 uses soc.maxCycles. */
    Cycles maxCycles = 0;

    ClientPoolConfig clients;
    AutoscalerConfig autoscaler;
    FailureConfig failures;

    /** Degenerate open-loop pool: replay a synthesized fixed-arrival
     *  stream (`synth`) instead of the closed-loop clients. */
    bool openLoop = false;
    cluster::SynthConfig synth;

    /** Wall-clock phase profiling (see ClusterResult::phases);
     *  diagnostic only, keep off for timing=0 baselines. */
    bool profile = false;

    /**
     * Telemetry capture bag (obs/capture.h): when non-null the run
     * records front-end events (admission shed/defer, SoC
     * fail/recover, autoscale up/down), PDES epoch spans, per-SoC
     * trace events, and sampled timeseries.  Observational only;
     * single-coordinator-written like ClusterConfig::capture.
     */
    obs::Capture *capture = nullptr;
};

/** Outcome of one serving run. */
struct ServeResult
{
    /**
     * Fleet-level aggregates in the shared cluster shape.  Under the
     * closed loop the client-facing fields are response-based:
     * slaRate/latency/goodput count only client-observed responses
     * (an orphan completion is wasted work); numTasks is the number
     * of admitted placements (attempts); shedRate = shed /
     * (attempts + shed), retryRate = retries / requests, timeoutRate
     * = timeouts / requests.  Per-SoC shares aggregate every
     * completion (the fleet-utilization view), summed over a slot's
     * incarnations when failures replaced its SoC.
     */
    cluster::ClusterResult cluster;

    // --- Front-end counters -------------------------------------------

    std::uint64_t requests = 0;  ///< Requests ever issued.
    std::uint64_t attempts = 0;  ///< Admitted placements (jobs).
    std::uint64_t responses = 0; ///< Client-observed successes.
    std::uint64_t giveUps = 0;   ///< Requests resolved as failures.
    std::uint64_t timeouts = 0;  ///< Per-attempt client timeouts.
    std::uint64_t retries = 0;   ///< Backoff re-issues (timeout/shed).
    std::uint64_t shed = 0;      ///< Admission rejections.
    std::uint64_t deferrals = 0; ///< Admission/capacity deferrals.
    std::uint64_t orphans = 0;   ///< Completions nobody waited for.
    std::uint64_t requeued = 0;  ///< Failure-lost attempts re-placed.
    std::uint64_t lostJobs = 0;  ///< Uncompleted jobs on failed SoCs.

    std::uint64_t failEvents = 0;
    std::uint64_t recoverEvents = 0;
    std::uint64_t scaleUps = 0;
    std::uint64_t scaleDowns = 0;

    /** Client-observed latency (first issue -> completion, backoff
     *  and retries included) of successful requests, in cycles. */
    PercentileSummary clientLatency;

    /** responses / requests. */
    double successRate = 0.0;

    /** Time-averaged Up-SoC count over the serving interval. */
    double meanUpSocs = 0.0;

    /** Front-end clock when the last request resolved. */
    Cycles endCycle = 0;
};

/**
 * Run one closed-loop (or degenerate open-loop) serving experiment.
 * Deterministic: a pure function of `cfg`, bit-identical for every
 * `jobs` value.  Fatal on invalid configuration or an unresolvable
 * stall (maxCycles).
 */
ServeResult runServe(const ServeConfig &cfg);

} // namespace moca::serve

#endif // MOCA_SERVE_SERVE_H
