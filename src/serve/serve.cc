#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "cluster/parallel.h"
#include "common/log.h"
#include "common/walltime.h"
#include "exp/oracle.h"
#include "exp/registry.h"
#include "obs/capture.h"
#include "sim/soc.h"

namespace moca::serve {

namespace {

/**
 * Front-end event kinds, in the order they are processed at a tied
 * cycle: capacity changes first (so same-cycle placements see the
 * new world), then the control tick, then timeouts (a freed retry
 * budget may matter to a same-cycle issue), then issues.  The fixed
 * rank plus a scheduling sequence number makes the queue order — and
 * with it the whole run — deterministic.
 */
enum class EvKind : int
{
    Fail = 0,
    Recover = 1,
    ScaleTick = 2,
    Timeout = 3,
    Issue = 4,
};

struct Event
{
    Cycles at = 0;
    EvKind kind = EvKind::Issue;
    std::uint64_t seq = 0;
    int req = -1;            ///< Request id (Issue/Timeout).
    int slot = -1;           ///< Slot index (Recover).
    std::uint64_t token = 0; ///< Attempt token (Timeout staleness).
};

struct EventLater
{
    bool
    operator()(const Event &x, const Event &y) const
    {
        if (x.at != y.at)
            return x.at > y.at;
        if (x.kind != y.kind)
            return static_cast<int>(x.kind) >
                static_cast<int>(y.kind);
        return x.seq > y.seq;
    }
};

/** Lifecycle of one fleet slot. */
enum class SlotState
{
    Up,       ///< Accepting placements.
    Draining, ///< Autoscaled down: finishing, not accepting.
    Failed,   ///< Frozen in the engine; queue lost.
};

/** One fleet slot and its SoC incarnations (failures swap in fresh
 *  SoCs; old incarnations stay frozen but keep their results). */
struct Slot
{
    SlotState state = SlotState::Up;
    std::vector<std::unique_ptr<sim::Policy>> policies;
    std::vector<std::unique_ptr<sim::Soc>> socs;
    /** Per incarnation: dense job id -> request id. */
    std::vector<std::vector<int>> jobReq;
    /** Per incarnation: harvested-results cursor. */
    std::vector<std::size_t> seen;
    int placed = 0;
    double outstandingMacs = 0.0;

    sim::Soc &live() { return *socs.back(); }
    int incarnation() const
    {
        return static_cast<int>(socs.size()) - 1;
    }
};

/** Front-end progress of one request. */
struct ReqProgress
{
    bool issued = false;
    Cycles firstIssue = 0;
    int retriesUsed = 0;
    int requeues = 0; ///< Failure re-placements consumed.
    std::uint64_t token = 0; ///< Bumped per (re-)issue decision.

    /** Current in-flight attempt, valid only while inFlight. */
    bool inFlight = false;
    int slot = -1;
    int incarnation = -1;
    int job = -1;

    bool resolved = false;
    bool success = false;
};

/** Per-client issue window. */
struct ClientState
{
    int nextSeq = 0;
    int inFlight = 0;
    bool issueScheduled = false;
};

class ServeDriver
{
  public:
    explicit ServeDriver(const ServeConfig &cfg);
    ServeResult run();

  private:
    const ServeConfig &cfg_;
    Cycles hardCap_;

    std::function<Cycles(dnn::ModelId)> isoCal_; ///< Single-tile.
    std::function<Cycles(dnn::ModelId)> iso_;    ///< Full-SoC.
    std::unique_ptr<ClientPool> pool_; ///< Closed loop only.
    std::unique_ptr<AdmissionPolicy> admission_;
    std::unique_ptr<cluster::Dispatcher> dispatcher_;
    Autoscaler autoscaler_;
    FailureInjector injector_;

    /** The request population (attributes + per-attempt timeout);
     *  closed loop from the pool, open loop from the synthesizer. */
    std::vector<cluster::ClusterTask> reqTasks_;
    std::vector<Cycles> reqTimeout_;
    std::vector<ReqProgress> progress_;
    std::vector<ClientState> clients_;

    std::vector<Slot> slots_;
    std::unique_ptr<cluster::ParallelEngine> engine_;

    std::priority_queue<Event, std::vector<Event>, EventLater>
        queue_;
    std::uint64_t nextSeq_ = 0;

    Cycles now_ = 0;
    std::uint64_t resolvedCount_ = 0;

    int upCount_ = 0;
    Cycles lastUpChange_ = 0;
    double upIntegral_ = 0.0;

    /** Coordinator wall-clock (profile mode; see finalize()). */
    WallTimer coordTimer_;
    double dispatchSec_ = 0.0;

    ServeResult res_;

    // Response-based fleet samples (client-observed only).
    std::vector<double> respLatency_, respNormLatency_;
    std::vector<double> clientLatency_;
    std::uint64_t respMet_ = 0, respHigh_ = 0, respHighMet_ = 0;

    void push(Cycles at, EvKind kind, int req = -1, int slot = -1,
              std::uint64_t token = 0)
    {
        queue_.push(Event{at, kind, nextSeq_++, req, slot, token});
    }

    void noteUpChange(int delta)
    {
        upIntegral_ += static_cast<double>(now_ - lastUpChange_) *
            static_cast<double>(upCount_);
        lastUpChange_ = now_;
        upCount_ += delta;
    }

    /** Record a front-end event into the capture bag (no-op when
     *  capture is off; observational only). */
    void captureEvent(sim::TraceEventKind kind, int id)
    {
        if (cfg_.capture)
            cfg_.capture->frontend.record(now_, kind, id);
    }

    /** Per-slot SoC configuration: the slot index becomes the SoC's
     *  trace/telemetry identity. */
    sim::SocConfig socCfgFor(std::size_t slot_idx) const
    {
        sim::SocConfig soc_cfg = cfg_.soc;
        soc_cfg.socId = static_cast<int>(slot_idx);
        return soc_cfg;
    }

    Cycles chunkTarget(Cycles limit) const;
    Cycles deferDelay() const
    {
        // Deferred/capacity-held requests re-try at the control
        // cadence; with an unbounded quantum (open-loop replay) the
        // scheduler period stands in as the polling interval.
        return cfg_.controlQuantum > 0 ? cfg_.controlQuantum
                                       : cfg_.soc.schedPeriod;
    }
    void advanceTo(Cycles target);
    void harvest();

    std::vector<cluster::SocLoad> upLoads() const;
    void maybeScheduleIssue(int client, Cycles trigger);
    void handleIssue(int req);
    void placeRequest(int req, const std::vector<cluster::SocLoad> &up);
    void failAttempt(int req);
    void resolveRequest(int req, bool success, Cycles finish);
    void handleTimeout(int req, std::uint64_t token);
    void handleFail();
    void handleRecover(int slot);
    void handleScaleTick();

    void finalize();
};

ServeDriver::ServeDriver(const ServeConfig &cfg)
    : cfg_(cfg),
      hardCap_(cfg.maxCycles != 0 ? cfg.maxCycles
                                  : cfg.soc.maxCycles),
      autoscaler_(cfg.autoscaler), injector_(cfg.failures)
{
    if (cfg_.numSocs < 1)
        fatal("serving fleet needs at least one SoC (got %d)",
              cfg_.numSocs);
    if (cfg_.autoscaler.enabled &&
        cfg_.autoscaler.maxSocs > cfg_.numSocs)
        fatal("autoscaler maxSocs %d exceeds the fleet size %d",
              cfg_.autoscaler.maxSocs, cfg_.numSocs);
    if (cfg_.autoscaler.enabled &&
        cfg_.autoscaler.minSocs > cfg_.numSocs)
        fatal("autoscaler minSocs %d exceeds the fleet size %d",
              cfg_.autoscaler.minSocs, cfg_.numSocs);

    // Two oracle flavors, matching the open-loop cluster path:
    // workload calibration (SLA targets, arrival spacing, think
    // time) uses the *single-tile* isolated latency, while metric
    // normalization uses the *full-SoC* isolated latency.
    isoCal_ = [this](dnn::ModelId id) {
        return exp::isolatedLatency(id, 1, cfg_.soc);
    };
    iso_ = [this](dnn::ModelId id) {
        return exp::isolatedLatency(id, cfg_.soc.numTiles, cfg_.soc);
    };

    admission_ = AdmissionRegistry::instance().make(cfg_.admission);
    dispatcher_ = cluster::DispatcherRegistry::instance().make(
        cfg_.dispatcher, cfg_.numSocs, cfg_.dispatcherSeed);

    // The request population: pre-generated, policy-independent.
    if (cfg_.openLoop) {
        cluster::SynthConfig synth = cfg_.synth;
        synth.fleetTiles = cfg_.numSocs * cfg_.soc.numTiles;
        reqTasks_ = cluster::synthesizeTasks(synth, isoCal_);
        reqTimeout_.assign(reqTasks_.size(), 0);
        for (std::size_t i = 0; i < reqTasks_.size(); ++i) {
            // Dense ids double as queue indices; synthesizeTasks
            // already assigns them in arrival order.
            push(reqTasks_[i].arrival, EvKind::Issue,
                 static_cast<int>(i));
        }
    } else {
        pool_ = std::make_unique<ClientPool>(cfg_.clients, isoCal_);
        reqTasks_.reserve(
            static_cast<std::size_t>(pool_->totalRequests()));
        reqTimeout_.reserve(reqTasks_.capacity());
        for (int i = 0; i < pool_->totalRequests(); ++i) {
            reqTasks_.push_back(pool_->request(i).task);
            reqTimeout_.push_back(pool_->request(i).timeout);
        }
        clients_.resize(
            static_cast<std::size_t>(pool_->numClients()));
    }
    progress_.resize(reqTasks_.size());

    // The fleet: every slot starts Up with one incarnation.
    slots_.resize(static_cast<std::size_t>(cfg_.numSocs));
    std::vector<sim::Soc *> fleet;
    fleet.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        const sim::SocConfig soc_cfg = socCfgFor(i);
        slot.policies.push_back(exp::PolicyRegistry::instance().make(
            cfg_.policy, soc_cfg));
        slot.socs.push_back(std::make_unique<sim::Soc>(
            soc_cfg, *slot.policies.back()));
        if (cfg_.capture)
            slot.socs.back()->trace().enable();
        slot.socs.back()->beginRun(cfg_.soc.maxCycles);
        slot.jobReq.emplace_back();
        slot.seen.push_back(0);
        fleet.push_back(slot.socs.back().get());
    }
    upCount_ = cfg_.numSocs;
    if (cfg_.capture)
        cfg_.capture->frontend.enable();

    // Completion *reactions* must run on the coordinator, so the
    // engine gets no per-advance callback; harvest() walks the slots
    // in index order after every epoch instead.
    engine_ = std::make_unique<cluster::ParallelEngine>(
        std::move(fleet), cfg_.jobs, nullptr, cfg_.profile);

    if (!cfg_.openLoop)
        for (int c = 0; c < pool_->numClients(); ++c)
            maybeScheduleIssue(c, 0);
    if (injector_.enabled())
        push(injector_.firstFailure(), EvKind::Fail);
    if (cfg_.autoscaler.enabled)
        push(cfg_.autoscaler.interval, EvKind::ScaleTick);
}

Cycles
ServeDriver::chunkTarget(Cycles limit) const
{
    if (cfg_.controlQuantum == 0)
        return limit;
    const Cycles headroom = sim::kNoHorizon - now_;
    if (cfg_.controlQuantum >= headroom)
        return limit;
    return std::min(limit, now_ + cfg_.controlQuantum);
}

void
ServeDriver::advanceTo(Cycles target)
{
    const Cycles begin = now_;
    const cluster::EpochStats before = engine_->stats();
    engine_->advanceFleet(target);
    if (target == sim::kNoHorizon) {
        // Unbounded drain: the front-end clock lands on the latest
        // live-SoC clock, so post-drain reactions get sane cycles.
        Cycles latest = now_;
        for (Slot &slot : slots_)
            latest = std::max(latest, slot.live().now());
        now_ = latest;
    } else {
        now_ = target;
    }
    if (cfg_.capture) {
        // Epoch/stall spans on the front-end clock, delta'd from the
        // engine's counters (see the cluster-run equivalent).
        const cluster::EpochStats &after = engine_->stats();
        if (after.epochs > before.epochs)
            cfg_.capture->epochs.push_back(
                {begin, now_,
                 after.socsStepped - before.socsStepped, false});
        else if (after.horizonStalls > before.horizonStalls)
            cfg_.capture->epochs.push_back({begin, now_, 0, true});
    }
    harvest();
}

void
ServeDriver::harvest()
{
    // Completions are consumed in slot-index order from each slot's
    // *live* incarnation (frozen pre-failure incarnations can never
    // produce new results), so reaction order is a pure function of
    // fleet state — never of PDES worker timing.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        const auto &results = slot.live().results();
        const auto incar =
            static_cast<std::size_t>(slot.incarnation());
        for (std::size_t r = slot.seen[incar]; r < results.size();
             ++r) {
            const sim::JobResult &jr = results[r];
            slot.outstandingMacs -=
                static_cast<double>(jr.spec.model->totalMacs());
            const int req =
                slot.jobReq[incar][static_cast<std::size_t>(
                    jr.spec.id)];
            ReqProgress &p =
                progress_[static_cast<std::size_t>(req)];
            const bool current = p.inFlight && !p.resolved &&
                p.slot == static_cast<int>(i) &&
                p.incarnation == static_cast<int>(incar) &&
                p.job == jr.spec.id;
            if (!current) {
                // A completion nobody is waiting for: the client
                // timed out (or the attempt was requeued) before the
                // fleet delivered.  Wasted work, not goodput.
                res_.orphans++;
                continue;
            }
            p.inFlight = false;
            res_.responses++;
            const auto latency = static_cast<double>(jr.latency());
            respLatency_.push_back(latency);
            respNormLatency_.push_back(
                latency /
                static_cast<double>(iso_(reqTasks_[static_cast<
                                             std::size_t>(req)]
                                             .model)));
            if (jr.slaMet())
                ++respMet_;
            if (workload::priorityGroup(jr.spec.priority) ==
                workload::PriorityGroup::High) {
                ++respHigh_;
                if (jr.slaMet())
                    ++respHighMet_;
            }
            if (jr.spec.slaLatency > 0)
                autoscaler_.recordResponse(
                    latency /
                    static_cast<double>(jr.spec.slaLatency));
            clientLatency_.push_back(static_cast<double>(
                jr.finish - p.firstIssue));
            resolveRequest(req, true, jr.finish);
        }
        slot.seen[incar] = results.size();
    }
}

std::vector<cluster::SocLoad>
ServeDriver::upLoads() const
{
    std::vector<cluster::SocLoad> loads;
    loads.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot &slot = slots_[i];
        if (slot.state != SlotState::Up)
            continue;
        const sim::Soc &soc = *slot.socs.back();
        cluster::SocLoad l;
        l.socIdx = static_cast<int>(i);
        l.now = soc.now();
        l.waiting = static_cast<int>(soc.waitingCount());
        l.running = static_cast<int>(soc.runningCount());
        l.freeTiles = soc.freeTiles();
        l.numTiles = soc.config().numTiles;
        l.tasksAssigned = slot.placed;
        l.outstandingMacs = slot.outstandingMacs;
        loads.push_back(l);
    }
    return loads;
}

void
ServeDriver::maybeScheduleIssue(int client, Cycles trigger)
{
    ClientState &c = clients_[static_cast<std::size_t>(client)];
    if (c.issueScheduled ||
        c.nextSeq >= cfg_.clients.requestsPerClient ||
        c.inFlight >= cfg_.clients.maxOutstanding)
        return;
    const int req = client * cfg_.clients.requestsPerClient +
        c.nextSeq;
    c.issueScheduled = true;
    push(trigger + pool_->request(req).think, EvKind::Issue, req);
}

void
ServeDriver::handleIssue(int req)
{
    ReqProgress &p = progress_[static_cast<std::size_t>(req)];
    if (p.resolved)
        return;
    if (!p.issued) {
        p.issued = true;
        p.firstIssue = now_;
        res_.requests++;
        if (!cfg_.openLoop) {
            const ClientRequest &cr = pool_->request(req);
            ClientState &c =
                clients_[static_cast<std::size_t>(cr.client)];
            c.issueScheduled = false;
            c.nextSeq++;
            c.inFlight++;
            // The window may still have room: the next request
            // thinks from this issue, not from a completion.
            maybeScheduleIssue(cr.client, now_);
        }
    }

    const std::vector<cluster::SocLoad> up = upLoads();
    if (up.empty()) {
        // No capacity at all (everything failed or draining): hold
        // the request at the front door and re-try at the next
        // control tick.
        res_.deferrals++;
        captureEvent(sim::TraceEventKind::AdmissionDefer, req);
        push(now_ + deferDelay(), EvKind::Issue, req);
        return;
    }

    switch (admission_->decide(
        reqTasks_[static_cast<std::size_t>(req)], now_, up)) {
      case AdmissionDecision::Admit:
        placeRequest(req, up);
        break;
      case AdmissionDecision::Shed:
        res_.shed++;
        captureEvent(sim::TraceEventKind::AdmissionShed, req);
        failAttempt(req);
        break;
      case AdmissionDecision::Defer:
        res_.deferrals++;
        captureEvent(sim::TraceEventKind::AdmissionDefer, req);
        push(now_ + deferDelay(), EvKind::Issue, req);
        break;
    }
}

void
ServeDriver::placeRequest(int req,
                          const std::vector<cluster::SocLoad> &up)
{
    ReqProgress &p = progress_[static_cast<std::size_t>(req)];
    cluster::ClusterTask task =
        reqTasks_[static_cast<std::size_t>(req)];
    task.arrival = now_;

    const int k = dispatcher_->place(task, up);
    if (k < 0 || k >= static_cast<int>(up.size()))
        fatal("dispatcher '%s' placed request %d on Up slot %d of "
              "%zu", cfg_.dispatcher.c_str(), req, k, up.size());
    const auto slot_idx = static_cast<std::size_t>(
        up[static_cast<std::size_t>(k)].socIdx);
    Slot &slot = slots_[slot_idx];
    sim::Soc &soc = slot.live();

    sim::JobSpec spec;
    spec.id = static_cast<int>(soc.jobs().size());
    spec.model = &dnn::getModel(task.model);
    spec.dispatch = now_;
    spec.priority = task.priority;
    spec.slaLatency = task.slaLatency;
    soc.injectJob(spec);
    engine_->noteInjected(slot_idx);
    slot.placed++;
    slot.outstandingMacs +=
        static_cast<double>(spec.model->totalMacs());
    slot.jobReq.back().push_back(req);

    res_.attempts++;
    p.token++;
    p.inFlight = true;
    p.slot = static_cast<int>(slot_idx);
    p.incarnation = slot.incarnation();
    p.job = spec.id;

    const Cycles timeout =
        reqTimeout_[static_cast<std::size_t>(req)];
    if (timeout > 0)
        push(now_ + timeout, EvKind::Timeout, req, -1, p.token);
}

void
ServeDriver::failAttempt(int req)
{
    ReqProgress &p = progress_[static_cast<std::size_t>(req)];
    p.token++; // Invalidate any pending timeout of the old attempt.
    p.inFlight = false;
    if (!cfg_.openLoop && p.retriesUsed < cfg_.clients.maxRetries) {
        p.retriesUsed++;
        res_.retries++;
        push(now_ + pool_->backoff(p.retriesUsed), EvKind::Issue,
             req);
        return;
    }
    resolveRequest(req, false, now_);
}

void
ServeDriver::resolveRequest(int req, bool success, Cycles finish)
{
    ReqProgress &p = progress_[static_cast<std::size_t>(req)];
    if (p.resolved)
        panic("request %d resolved twice", req);
    p.resolved = true;
    p.success = success;
    p.token++;
    resolvedCount_++;
    if (!success)
        res_.giveUps++;
    res_.endCycle = std::max(res_.endCycle, finish);
    if (!cfg_.openLoop) {
        const ClientRequest &cr = pool_->request(req);
        ClientState &c =
            clients_[static_cast<std::size_t>(cr.client)];
        c.inFlight--;
        // The client thinks from the moment it observed the
        // response; reactions discovered at an epoch boundary never
        // schedule into the past.
        maybeScheduleIssue(cr.client, std::max(now_, finish));
    }
}

void
ServeDriver::handleTimeout(int req, std::uint64_t token)
{
    ReqProgress &p = progress_[static_cast<std::size_t>(req)];
    if (p.resolved || p.token != token)
        return; // Stale: the attempt resolved or was superseded.
    res_.timeouts++;
    // The in-flight job keeps running (there is no cancellation in
    // the fleet) — if it ever completes, it is an orphan.
    failAttempt(req);
}

void
ServeDriver::handleFail()
{
    // Victims come from the powered slots (Up or Draining), chosen
    // by the injector's dedicated stream; the minUp guard may veto.
    std::vector<int> candidates;
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i].state != SlotState::Failed)
            candidates.push_back(static_cast<int>(i));
    const FailureInjector::FailPlan plan = injector_.plan(
        now_, static_cast<int>(candidates.size()));
    push(plan.nextFailAt, EvKind::Fail);
    if (plan.victim < 0)
        return;

    const auto idx = static_cast<std::size_t>(
        candidates[static_cast<std::size_t>(plan.victim)]);
    Slot &slot = slots_[idx];
    res_.failEvents++;
    captureEvent(sim::TraceEventKind::SocFail,
                 static_cast<int>(idx));
    if (slot.state == SlotState::Up)
        noteUpChange(-1);
    slot.state = SlotState::Failed;
    engine_->setActive(idx, false);
    push(plan.recoverAt, EvKind::Recover, -1,
         static_cast<int>(idx));

    // Every job the frozen SoC had not completed is gone with its
    // queue; what happens to the *requests* behind the current
    // attempts is the configured in-flight policy.
    const sim::Soc &soc = slot.live();
    res_.lostJobs += soc.jobs().size() - soc.results().size();
    slot.outstandingMacs = 0.0;
    const auto &job_req = slot.jobReq.back();
    for (std::size_t j = 0; j < job_req.size(); ++j) {
        ReqProgress &p =
            progress_[static_cast<std::size_t>(job_req[j])];
        if (!(p.inFlight && !p.resolved &&
              p.slot == static_cast<int>(idx) &&
              p.incarnation == slot.incarnation() &&
              p.job == static_cast<int>(j)))
            continue;
        p.inFlight = false;
        switch (cfg_.failures.inflight) {
          case InflightPolicy::Requeue:
            // A free re-placement: the machine died, the client did
            // not time out, so the *timeout* retry budget stays
            // untouched — but the re-placements have their own
            // budget (the same maxRetries knob).  Without a bound, a
            // job longer than the fleet's typical failure gap
            // requeues forever: a deterministic retry storm.  Past
            // the budget the loss falls through to the normal
            // failed-attempt path.
            if (p.requeues < cfg_.clients.maxRetries) {
                p.requeues++;
                res_.requeued++;
                p.token++;
                push(now_, EvKind::Issue, job_req[j]);
            } else {
                failAttempt(job_req[j]);
            }
            break;
          case InflightPolicy::Drop:
            // The client discovers the loss via its timeout; with
            // timeouts disabled nobody ever would, so the attempt
            // fails (and retries/burns budget) immediately.
            if (reqTimeout_[static_cast<std::size_t>(
                    job_req[j])] == 0)
                failAttempt(job_req[j]);
            break;
        }
    }
}

void
ServeDriver::handleRecover(int slot_idx)
{
    Slot &slot = slots_[static_cast<std::size_t>(slot_idx)];
    if (slot.state != SlotState::Failed)
        panic("recovering slot %d that is not Failed", slot_idx);
    res_.recoverEvents++;
    captureEvent(sim::TraceEventKind::SocRecover, slot_idx);
    // Reboot: a fresh SoC (and fresh policy state) joins the slot.
    // Its clock starts at 0 with nothing queued, so it reports
    // kNoEvent and costs the engine nothing until placed on.
    const sim::SocConfig soc_cfg =
        socCfgFor(static_cast<std::size_t>(slot_idx));
    slot.policies.push_back(
        exp::PolicyRegistry::instance().make(cfg_.policy, soc_cfg));
    slot.socs.push_back(std::make_unique<sim::Soc>(
        soc_cfg, *slot.policies.back()));
    if (cfg_.capture)
        slot.socs.back()->trace().enable();
    slot.socs.back()->beginRun(cfg_.soc.maxCycles);
    slot.jobReq.emplace_back();
    slot.seen.push_back(0);
    engine_->replaceSoc(static_cast<std::size_t>(slot_idx),
                        slot.socs.back().get());
    engine_->setActive(static_cast<std::size_t>(slot_idx), true);
    slot.state = SlotState::Up;
    noteUpChange(+1);
}

void
ServeDriver::handleScaleTick()
{
    push(now_ + cfg_.autoscaler.interval, EvKind::ScaleTick);
    long outstanding = 0;
    for (const Slot &slot : slots_)
        if (slot.state == SlotState::Up)
            outstanding += static_cast<long>(
                slot.socs.back()->waitingCount() +
                slot.socs.back()->runningCount());
    switch (autoscaler_.evaluate(upCount_, outstanding)) {
      case ScaleAction::None:
        break;
      case ScaleAction::Up:
        // Lowest-index Draining slot rejoins (a drained SoC keeps
        // its finished history and simply starts accepting again).
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].state == SlotState::Draining) {
                slots_[i].state = SlotState::Up;
                res_.scaleUps++;
                captureEvent(sim::TraceEventKind::ScaleUp,
                             static_cast<int>(i));
                noteUpChange(+1);
                break;
            }
        }
        break;
      case ScaleAction::Down:
        // Highest-index Up slot drains: placements stop, running
        // work finishes — a scaling decision never loses a task.
        for (std::size_t i = slots_.size(); i-- > 0;) {
            if (slots_[i].state == SlotState::Up) {
                slots_[i].state = SlotState::Draining;
                res_.scaleDowns++;
                captureEvent(sim::TraceEventKind::ScaleDown,
                             static_cast<int>(i));
                noteUpChange(-1);
                break;
            }
        }
        break;
    }
}

ServeResult
ServeDriver::run()
{
    const auto total =
        static_cast<std::uint64_t>(reqTasks_.size());
    while (resolvedCount_ < total) {
        if (now_ > hardCap_)
            fatal("serving loop passed %llu cycles with %llu of "
                  "%llu requests unresolved (deadlock?)",
                  static_cast<unsigned long long>(hardCap_),
                  static_cast<unsigned long long>(
                      total - resolvedCount_),
                  static_cast<unsigned long long>(total));
        if (queue_.empty()) {
            // Nothing scheduled: only in-flight fleet work remains.
            advanceTo(chunkTarget(sim::kNoHorizon));
            continue;
        }
        const Event ev = queue_.top();
        if (ev.at > now_) {
            advanceTo(chunkTarget(ev.at));
            continue; // Harvest may have scheduled earlier events.
        }
        queue_.pop();
        if (cfg_.profile)
            coordTimer_.restart();
        switch (ev.kind) {
          case EvKind::Fail: handleFail(); break;
          case EvKind::Recover: handleRecover(ev.slot); break;
          case EvKind::ScaleTick: handleScaleTick(); break;
          case EvKind::Timeout: handleTimeout(ev.req, ev.token); break;
          case EvKind::Issue: handleIssue(ev.req); break;
        }
        if (cfg_.profile)
            dispatchSec_ += coordTimer_.restart();
    }

    // Drain the orphans (and draining slots); failed slots stay
    // frozen.  Leftover control events are dead — every request is
    // resolved.
    advanceTo(sim::kNoHorizon);
    finalize();
    return res_;
}

void
ServeDriver::finalize()
{
    cluster::ClusterResult &out = res_.cluster;
    out.dispatcher = cfg_.dispatcher;
    out.policy = cfg_.policy;
    out.numSocs = cfg_.numSocs;
    out.numTasks = res_.attempts;
    out.epochs = engine_->stats().epochs;
    out.horizonStalls = engine_->stats().horizonStalls;
    out.meanSocsStepped = engine_->stats().meanSocsStepped();
    if (cfg_.profile) {
        engine_->phaseTotals(out.phases.shardAdvanceSec,
                             out.phases.barrierWaitSec);
        out.phases.dispatchSec = dispatchSec_;
    }
    out.perSoc.resize(slots_.size());

    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        cluster::SocShare &share = out.perSoc[i];
        share.tasks = slot.placed;

        // Aggregate the slot across its incarnations: every
        // completion ran on real fleet capacity, orphan or not.
        std::vector<sim::JobResult> all;
        double busy_weighted = 0.0;
        Cycles cycles = 0;
        for (auto &soc : slot.socs) {
            soc->finishRun();
            all.insert(all.end(), soc->results().begin(),
                       soc->results().end());
            share.simSteps += soc->stats().quanta;
            busy_weighted += soc->stats().dramBusyFraction *
                static_cast<double>(soc->stats().cyclesSimulated);
            cycles += soc->stats().cyclesSimulated;
            if (cfg_.capture) {
                // Every incarnation's events carry the slot's socId;
                // the exporter merges them onto one slot track.
                const auto &events = soc->trace().events();
                cfg_.capture->socEvents.insert(
                    cfg_.capture->socEvents.end(), events.begin(),
                    events.end());
            }
        }
        if (cfg_.capture && slot.live().sampler())
            cfg_.capture->socSeries.push_back(
                slot.live().sampler()->series());
        share.metrics = metrics::computeMetrics(all, iso_);
        share.dramBusyFraction = cycles > 0
            ? busy_weighted / static_cast<double>(cycles)
            : 0.0;
        for (const auto &jr : all)
            share.makespan = std::max(share.makespan, jr.finish);
        out.simSteps += share.simSteps;
        out.stp += share.metrics.stp;
        out.makespan = std::max(out.makespan, share.makespan);
    }

    // Client-facing fleet aggregates: responses only.
    out.slaRate = res_.responses > 0
        ? static_cast<double>(respMet_) /
            static_cast<double>(res_.responses)
        : 0.0;
    out.slaRateHigh = respHigh_ > 0
        ? static_cast<double>(respHighMet_) /
            static_cast<double>(respHigh_)
        : 0.0;
    out.latency = percentileSummary(respLatency_);
    out.normLatency = percentileSummary(respNormLatency_);
    if (out.makespan > 0)
        out.goodput = static_cast<double>(respMet_) * 1e9 /
            static_cast<double>(out.makespan);

    out.shedTasks = res_.shed;
    out.deferredTasks = res_.deferrals;
    out.retryTasks = res_.retries;
    out.timeoutTasks = res_.timeouts;
    const std::uint64_t verdicts = res_.attempts + res_.shed;
    if (verdicts > 0)
        out.shedRate = static_cast<double>(res_.shed) /
            static_cast<double>(verdicts);
    if (res_.requests > 0) {
        out.retryRate = static_cast<double>(res_.retries) /
            static_cast<double>(res_.requests);
        out.timeoutRate = static_cast<double>(res_.timeouts) /
            static_cast<double>(res_.requests);
        res_.successRate = static_cast<double>(res_.responses) /
            static_cast<double>(res_.requests);
    }

    double mean_tasks = 0.0;
    for (const Slot &slot : slots_)
        mean_tasks += static_cast<double>(slot.placed);
    mean_tasks /= static_cast<double>(slots_.size());
    if (mean_tasks > 0.0) {
        double var = 0.0;
        for (const Slot &slot : slots_) {
            const double d =
                static_cast<double>(slot.placed) - mean_tasks;
            var += d * d;
        }
        out.balanceCv =
            std::sqrt(var / static_cast<double>(slots_.size())) /
            mean_tasks;
    }

    res_.clientLatency = percentileSummary(clientLatency_);
    if (res_.endCycle > 0) {
        upIntegral_ +=
            static_cast<double>(
                std::max(res_.endCycle, lastUpChange_) -
                lastUpChange_) *
            static_cast<double>(upCount_);
        res_.meanUpSocs =
            upIntegral_ / static_cast<double>(res_.endCycle);
    }
}

} // anonymous namespace

ServeResult
runServe(const ServeConfig &cfg)
{
    ServeDriver driver(cfg);
    return driver.run();
}

} // namespace moca::serve
