/**
 * @file
 * Reactive fleet autoscaler for the serving subsystem: at fixed
 * control-epoch boundaries it reads one load signal — mean queue
 * depth per Up SoC, or the p99 of SLA-normalized client latency over
 * a sliding completion window — and recommends growing or shrinking
 * the Up capacity by one SoC, with hysteresis between the two
 * thresholds so the fleet does not flap.
 *
 * The scaler only *recommends*; the serve driver owns the mechanics:
 * scale-up re-activates a drained slot (failed slots are not
 * eligible — they come back via recovery, not scaling), scale-down
 * puts the highest-indexed Up slot into Draining — it stops taking
 * new placements but keeps running until its queue empties, so no
 * accepted work is ever lost to a scaling decision.  All choices are
 * index-deterministic, keeping the closed loop bit-reproducible.
 */

#ifndef MOCA_SERVE_AUTOSCALER_H
#define MOCA_SERVE_AUTOSCALER_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"

namespace moca::serve {

/** Load signal the autoscaler reacts to. */
enum class ScaleSignal
{
    Depth, ///< Mean outstanding (queued+running) tasks per Up SoC.
    P99,   ///< p99 of SLA-normalized client latency, sliding window.
};

/** Printable signal name ("depth", "p99"). */
const char *scaleSignalName(ScaleSignal signal);

/** Parse a signal name; fatal (listing the options) when unknown. */
ScaleSignal scaleSignalFromName(const std::string &name);

/** Autoscaler parameters. */
struct AutoscalerConfig
{
    bool enabled = false;

    int minSocs = 1; ///< Never drain below this many Up SoCs.
    int maxSocs = 0; ///< Never grow above this; 0 = full fleet.

    ScaleSignal signal = ScaleSignal::Depth;

    /**
     * Hysteresis band: scale up (one SoC) when the signal exceeds
     * `upThreshold`, down when it drops below `downThreshold`, hold
     * in between.  Units: tasks per Up SoC for `depth`; multiples of
     * the SLA target for `p99` (1.0 = tail exactly at the SLO).
     */
    double upThreshold = 8.0;
    double downThreshold = 2.0;

    /** Evaluation period in cycles (one decision per tick). */
    Cycles interval = 500'000;

    /** Responses in the sliding p99 window. */
    int window = 64;
};

/** One scaling recommendation. */
enum class ScaleAction
{
    None,
    Up,   ///< Activate one drained SoC.
    Down, ///< Drain one Up SoC.
};

/**
 * The decision logic: feed it every client-observed response, ask it
 * at each control tick.  Pure bookkeeping — no engine access.
 */
class Autoscaler
{
  public:
    explicit Autoscaler(const AutoscalerConfig &cfg);

    const AutoscalerConfig &config() const { return cfg_; }

    /** Record a client-observed response's SLA-normalized latency
     *  (latency / SLA target) into the sliding p99 window. */
    void recordResponse(double norm_latency);

    /**
     * Evaluate the signal at a control tick.
     * @param up_socs        SoCs currently accepting placements.
     * @param outstanding    total queued+running tasks on them.
     * @return the recommendation; Up is only returned below the max,
     *         Down only above the min, and never before the p99
     *         window has filled (for the `p99` signal).
     */
    ScaleAction evaluate(int up_socs, long outstanding);

    /** Current signal value (last evaluate; for logging/tests). */
    double lastSignal() const { return lastSignal_; }

  private:
    AutoscalerConfig cfg_;
    std::vector<double> window_; ///< Ring buffer of norm latencies.
    std::size_t windowAt_ = 0;
    std::size_t windowFill_ = 0;
    double lastSignal_ = 0.0;
};

} // namespace moca::serve

#endif // MOCA_SERVE_AUTOSCALER_H
