/**
 * @file
 * Closed-loop client population for the serving subsystem: K users,
 * each holding a bounded window of outstanding requests, thinking for
 * a seeded exponential delay between a response and the next issue,
 * and retrying timed-out requests with capped exponential backoff.
 * Arrivals are generated *reactively* from completions — when the
 * fleet slows down, the offered load slows with it, which is the
 * feedback loop the open-loop synthesizer (cluster/workload.h) by
 * design does not have.
 *
 * The pool itself is passive, pre-generated state: every request's
 * attributes (model, priority, QoS class, SLA target — drawn by the
 * same cluster::drawTaskAttributes the open-loop synthesizer uses),
 * think delay, and per-attempt timeout come from a per-request RNG
 * stream derived from (seed, request id).  Attributes therefore never
 * depend on the policy, dispatcher, failure history, or issue order —
 * two serve runs differing only in control knobs sample the identical
 * request population, and the closed loop stays a pure function of
 * its configuration.  The serve driver (serve/serve.h) owns the event
 * loop and the per-request progress state.
 */

#ifndef MOCA_SERVE_CLIENT_H
#define MOCA_SERVE_CLIENT_H

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/workload.h"
#include "common/units.h"
#include "dnn/model_zoo.h"
#include "workload/workload.h"

namespace moca::serve {

/** Parameters of the client population. */
struct ClientPoolConfig
{
    int numClients = 8;       ///< K concurrent users.
    int maxOutstanding = 1;   ///< Per-client in-flight window.
    int requestsPerClient = 64; ///< Requests each client issues.

    /** Mean think time = thinkFactor x mean isolated single-tile
     *  latency of the mix (exponentially distributed per request). */
    double thinkFactor = 4.0;

    /** Per-attempt timeout = timeoutScale x the request's SLA
     *  target; 0 disables client-side timeouts entirely. */
    double timeoutScale = 0.0;

    /** Retries after the first attempt before the client gives up. */
    int maxRetries = 3;

    // Capped exponential backoff before retry r (r = 1, 2, ...):
    //     min(backoffCap, backoffBase * backoffFactor^(r-1))
    // in units of the mix's mean isolated single-tile latency.
    double backoffBase = 1.0;
    double backoffFactor = 2.0;
    double backoffCap = 8.0;

    /** Model mix: explicit ids, or (when empty) the models of `set`. */
    std::vector<dnn::ModelId> mix;
    workload::WorkloadSet set = workload::WorkloadSet::C;

    /** QoS class ratio over L/M/H (normalized internally). */
    double qosLightShare = 0.25;
    double qosMediumShare = 0.50;
    double qosHardShare = 0.25;

    /** QoS-M target = qosScale x isolated single-tile latency. */
    double qosScale = 4.0;

    std::uint64_t seed = 1;
};

/**
 * Backoff delay before retry `attempt` (1-based): the capped
 * exponential min(cap, base * factor^(attempt-1)) in units of
 * `unit` cycles.  Pure function — the retry cadence of a request
 * depends only on the config and the attempt number.
 */
Cycles retryBackoff(const ClientPoolConfig &cfg, Cycles unit,
                    int attempt);

/** One pre-generated client request. */
struct ClientRequest
{
    int id = -1;     ///< Dense pool-wide id (== task.id).
    int client = -1; ///< Owning client, 0..numClients-1.
    int seq = -1;    ///< Position in the client's sequence.

    /** Attributes (model/priority/qos/slaLatency); `arrival` is set
     *  by the serve driver at each issue. */
    cluster::ClusterTask task;

    Cycles think = 0;   ///< Delay before issue (from its trigger).
    Cycles timeout = 0; ///< Per-attempt budget; 0 = never times out.
};

/**
 * The pre-generated request population.  Construction draws every
 * request up front from its derived stream; the pool is read-only
 * afterwards.
 */
class ClientPool
{
  public:
    /**
     * @param isolated_latency oracle returning each model's isolated
     *        single-tile latency in cycles (SLA targets, think-time
     *        and backoff calibration), as synthesizeTasks takes.
     */
    ClientPool(const ClientPoolConfig &cfg,
               const std::function<Cycles(dnn::ModelId)>
                   &isolated_latency);

    const ClientPoolConfig &config() const { return cfg_; }
    int numClients() const { return cfg_.numClients; }
    int totalRequests() const
    {
        return static_cast<int>(requests_.size());
    }

    const ClientRequest &request(int id) const
    {
        return requests_[static_cast<std::size_t>(id)];
    }

    /** Mean isolated single-tile latency of the mix (cycles) — the
     *  unit of think-time and backoff calibration. */
    Cycles meanIsolated() const { return meanIso_; }

    /** Backoff before retry `attempt` (1-based) of any request. */
    Cycles backoff(int attempt) const
    {
        return retryBackoff(cfg_, meanIso_, attempt);
    }

  private:
    ClientPoolConfig cfg_;
    Cycles meanIso_ = 0;
    std::vector<ClientRequest> requests_;
};

} // namespace moca::serve

#endif // MOCA_SERVE_CLIENT_H
