#include "serve/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace moca::serve {

const char *
scaleSignalName(ScaleSignal signal)
{
    switch (signal) {
      case ScaleSignal::Depth: return "depth";
      case ScaleSignal::P99: return "p99";
    }
    return "?";
}

ScaleSignal
scaleSignalFromName(const std::string &name)
{
    if (name == "depth")
        return ScaleSignal::Depth;
    if (name == "p99")
        return ScaleSignal::P99;
    fatal("unknown autoscaler signal '%s'; expected depth or p99",
          name.c_str());
}

Autoscaler::Autoscaler(const AutoscalerConfig &cfg) : cfg_(cfg)
{
    if (cfg_.minSocs < 1)
        fatal("autoscaler minSocs must be >= 1 (got %d)",
              cfg_.minSocs);
    if (cfg_.maxSocs != 0 && cfg_.maxSocs < cfg_.minSocs)
        fatal("autoscaler maxSocs %d below minSocs %d", cfg_.maxSocs,
              cfg_.minSocs);
    if (cfg_.downThreshold > cfg_.upThreshold)
        fatal("autoscaler hysteresis band inverted: down %g > up %g",
              cfg_.downThreshold, cfg_.upThreshold);
    if (cfg_.interval < 1)
        fatal("autoscaler interval must be >= 1 cycle");
    if (cfg_.window < 1)
        fatal("autoscaler p99 window must be >= 1 response");
    window_.assign(static_cast<std::size_t>(cfg_.window), 0.0);
}

void
Autoscaler::recordResponse(double norm_latency)
{
    window_[windowAt_] = norm_latency;
    windowAt_ = (windowAt_ + 1) % window_.size();
    windowFill_ = std::min(windowFill_ + 1, window_.size());
}

ScaleAction
Autoscaler::evaluate(int up_socs, long outstanding)
{
    if (up_socs < 1)
        return ScaleAction::None;

    switch (cfg_.signal) {
      case ScaleSignal::Depth:
        lastSignal_ = static_cast<double>(outstanding) /
            static_cast<double>(up_socs);
        break;
      case ScaleSignal::P99: {
        // Hold until the window fills: a handful of early responses
        // is not a tail.
        if (windowFill_ < window_.size())
            return ScaleAction::None;
        std::vector<double> sorted(window_.begin(), window_.end());
        std::sort(sorted.begin(), sorted.end());
        const auto idx = static_cast<std::size_t>(std::min<double>(
            static_cast<double>(sorted.size() - 1),
            std::ceil(0.99 * static_cast<double>(sorted.size())) -
                1.0));
        lastSignal_ = sorted[idx];
        break;
      }
    }

    if (lastSignal_ > cfg_.upThreshold &&
        (cfg_.maxSocs == 0 || up_socs < cfg_.maxSocs))
        return ScaleAction::Up;
    if (lastSignal_ < cfg_.downThreshold && up_socs > cfg_.minSocs)
        return ScaleAction::Down;
    return ScaleAction::None;
}

} // namespace moca::serve
