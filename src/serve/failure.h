/**
 * @file
 * Seeded failure injection for the serving subsystem: SoCs fail
 * mid-run at exponentially-distributed fleet-wide intervals, stay
 * down for an exponentially-distributed downtime, and come back as a
 * *fresh* SoC (a machine reboot loses its queue).  What happens to
 * the in-flight work is the configurable part: `requeue` re-places
 * each lost attempt through admission+dispatch without touching the
 * client's timeout-retry budget (the request did not time out, the
 * machine died) — but re-placements have their own budget (the same
 * maxRetries knob), since an unbounded requeue of a job longer than
 * the fleet's typical failure gap is a forever retry storm; `drop`
 * loses the attempts and lets the owning clients discover it via
 * their timeout.
 *
 * The injector is the decision logic only — victim choice, downtime,
 * and the next failure time — consuming one seeded stream dedicated
 * to failures, so failure schedules are reproducible and independent
 * of the request stream.  The serve driver owns the mechanics
 * (freezing the slot in the ParallelEngine, swapping in the fresh
 * SoC at recovery).
 */

#ifndef MOCA_SERVE_FAILURE_H
#define MOCA_SERVE_FAILURE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace moca::serve {

/** Fate of the attempts in flight on a failed SoC. */
enum class InflightPolicy
{
    Requeue, ///< Re-place each lost attempt (free retry).
    Drop,    ///< Lose them; clients find out via their timeouts.
};

/** Printable policy name ("requeue", "drop"). */
const char *inflightPolicyName(InflightPolicy policy);

/** Parse a policy name; fatal (listing the options) when unknown. */
InflightPolicy inflightPolicyFromName(const std::string &name);

/** Failure-injection parameters. */
struct FailureConfig
{
    /** Expected fleet-wide failures per Gcycle; 0 disables. */
    double rate = 0.0;

    /** Mean downtime in cycles (exponential). */
    double meanDowntime = 2e6;

    InflightPolicy inflight = InflightPolicy::Requeue;

    /** Never fail a SoC while at most this many are not Down —
     *  guards against a fully-dark fleet that can serve nothing. */
    int minUp = 1;

    std::uint64_t seed = 7;
};

/**
 * The seeded failure schedule.  Draw order is fixed — next-gap at
 * construction, then (victim, downtime, next-gap) per failure — so
 * the schedule is a pure function of (config, the deterministic
 * up-set history it is asked about).
 */
class FailureInjector
{
  public:
    explicit FailureInjector(const FailureConfig &cfg);

    const FailureConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.rate > 0.0; }

    /** Cycle of the first failure (drawn at construction). */
    Cycles firstFailure() const { return firstFailure_; }

    /** Outcome of one failure event. */
    struct FailPlan
    {
        int victim = -1;      ///< Index into `candidates`, or -1
                              ///< when the minUp guard vetoed.
        Cycles recoverAt = 0; ///< Recovery cycle (victim >= 0 only).
        Cycles nextFailAt = 0; ///< Next failure event cycle.
    };

    /**
     * Decide the failure firing at `now`: pick a victim uniformly
     * from `num_candidates` eligible (non-Down) slots — vetoed when
     * that would leave fewer than minUp — and draw the downtime and
     * the next failure gap.  Consumes RNG draws only for the parts
     * that happen, in a fixed order.
     */
    FailPlan plan(Cycles now, int num_candidates);

  private:
    FailureConfig cfg_;
    Rng rng_;
    Cycles firstFailure_ = 0;

    Cycles drawGap();
};

} // namespace moca::serve

#endif // MOCA_SERVE_FAILURE_H
