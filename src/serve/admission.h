/**
 * @file
 * Admission control for the closed-loop serving front-end: the
 * pluggable policy consulted *before* placement that decides whether
 * an arriving request enters the fleet at all.  Shedding at the door
 * is the classic serving-system defense against overload collapse —
 * a request the fleet cannot finish inside its SLO only steals
 * capacity from the ones it could.
 *
 * Admission policies are string-keyed self-registering factories
 * mirroring cluster::DispatcherRegistry, with the shared spec grammar
 *
 *     name[:key=value[,key=value...]]
 *
 * and the same error discipline (did-you-mean on unknown names,
 * declared-parameter validation, `--list-admission` catalogue).
 * Built-ins:
 *
 *  - `always`     admit everything (the open-loop baseline)
 *  - `queue-cap`  shed (or defer) when mean outstanding work per Up
 *                 SoC exceeds a depth cap
 *  - `slo-budget` token bucket metering admissions to a sustainable
 *                 rate with bounded burst
 *
 * A policy sees the arriving task, the front-end clock, and the load
 * snapshot of the *Up* SoCs only — failed and draining capacity is
 * invisible, exactly as it is to the dispatcher.  `Defer` asks the
 * front-end to retry admission later (the client keeps waiting);
 * `Shed` rejects outright (the client backs off and retries, or gives
 * up).  One instance per serve run; implementations may keep state
 * (token buckets) and are only called from the single-threaded
 * front-end loop, so the closed loop stays deterministic.
 */

#ifndef MOCA_SERVE_ADMISSION_H
#define MOCA_SERVE_ADMISSION_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/workload.h"
#include "common/spec.h"
#include "common/spec_registry.h"
#include "common/units.h"

namespace moca::serve {

/** Outcome of one admission decision. */
enum class AdmissionDecision
{
    Admit, ///< Place the request now.
    Shed,  ///< Reject; the client sees an error and backs off.
    Defer, ///< Hold at the front door; re-decide next control tick.
};

/** Printable decision name ("admit", "shed", "defer"). */
const char *admissionDecisionName(AdmissionDecision decision);

/** A serving admission-control policy (one instance per run). */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Decide the fate of `task` arriving at front-end cycle `now`.
     * `up_socs` snapshots the load of the currently-Up SoCs only
     * (never empty: the front-end holds requests while no capacity
     * is Up rather than consulting admission).
     */
    virtual AdmissionDecision
    decide(const cluster::ClusterTask &task, Cycles now,
           const std::vector<cluster::SocLoad> &up_socs) = 0;
};

/** Admission specs reuse the shared spec grammar and parser. */
using AdmissionSpec = moca::Spec;
/** ... and the shared parameter-schema entry type. */
using AdmissionParam = moca::SpecParam;

/** Everything the registry knows about one admission policy. */
struct AdmissionInfo
{
    std::string name;
    std::string description;
    std::vector<AdmissionParam> params;

    /** Build the policy from an already-validated spec. */
    std::function<std::unique_ptr<AdmissionPolicy>(
        const AdmissionSpec &spec)>
        factory;
};

/**
 * The process-wide admission-policy registry (iteration order is
 * registration order, built-ins first).  The shared machinery lives
 * in the moca::SpecRegistry base.
 */
class AdmissionRegistry : public moca::SpecRegistry<AdmissionInfo>
{
  public:
    static AdmissionRegistry &instance();

    /** Parse, validate, and build a policy from a spec string. */
    std::unique_ptr<AdmissionPolicy>
    make(const std::string &spec) const;
    std::unique_ptr<AdmissionPolicy>
    make(const AdmissionSpec &spec) const;

    /**
     * Full spec validation: grammar, name, parameter keys, and
     * parameter *values* by trial-building (admission parameters
     * carry no SoC-configuration dependence, like dispatchers).
     * Fatal with actionable messages before any simulation work.
     */
    void validate(const std::string &spec) const;

  private:
    AdmissionRegistry()
        : SpecRegistry("admission policy", "admission policies",
                       "--list-admission")
    {
    }
};

/**
 * Link-time self-registration hook:
 *
 *     static serve::AdmissionRegistrar reg({"mine", "...", {...},
 *                                           factory});
 */
struct AdmissionRegistrar
{
    explicit AdmissionRegistrar(AdmissionInfo info)
    {
        AdmissionRegistry::instance().add(std::move(info));
    }
};

} // namespace moca::serve

#endif // MOCA_SERVE_ADMISSION_H
