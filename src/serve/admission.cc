#include "serve/admission.h"

#include <algorithm>

#include "common/argparse.h"
#include "common/log.h"

namespace moca::serve {

namespace {

class AlwaysAdmit : public AdmissionPolicy
{
  public:
    const char *name() const override { return "always"; }

    AdmissionDecision
    decide(const cluster::ClusterTask &, Cycles,
           const std::vector<cluster::SocLoad> &) override
    {
        return AdmissionDecision::Admit;
    }
};

class QueueCapAdmit : public AdmissionPolicy
{
  public:
    QueueCapAdmit(int depth, bool defer)
        : depth_(depth), defer_(defer)
    {
    }

    const char *name() const override { return "queue-cap"; }

    AdmissionDecision
    decide(const cluster::ClusterTask &, Cycles,
           const std::vector<cluster::SocLoad> &up_socs) override
    {
        // Fleet-mean backlog: the cap scales with Up capacity, so a
        // fleet that lost half its SoCs to failures also halves the
        // work it lets in.
        long outstanding = 0;
        for (const auto &s : up_socs)
            outstanding += s.outstanding();
        if (outstanding <
            static_cast<long>(depth_) *
                static_cast<long>(up_socs.size()))
            return AdmissionDecision::Admit;
        return defer_ ? AdmissionDecision::Defer
                      : AdmissionDecision::Shed;
    }

  private:
    int depth_;
    bool defer_;
};

class SloBudgetAdmit : public AdmissionPolicy
{
  public:
    SloBudgetAdmit(double rate, double burst, bool per_soc)
        : rate_(rate), burst_(burst), perSoc_(per_soc),
          tokens_(burst)
    {
    }

    const char *name() const override { return "slo-budget"; }

    AdmissionDecision
    decide(const cluster::ClusterTask &, Cycles now,
           const std::vector<cluster::SocLoad> &up_socs) override
    {
        // Token bucket over the front-end clock: `rate` admissions
        // per Mcycle sustained (scaled by Up-SoC count when per_soc),
        // `burst` admissions of headroom.  The clock never runs
        // backwards — admission is consulted in arrival order.
        if (now > lastRefill_) {
            const double scale = perSoc_
                ? static_cast<double>(up_socs.size())
                : 1.0;
            tokens_ = std::min(
                burst_,
                tokens_ +
                    static_cast<double>(now - lastRefill_) * 1e-6 *
                        rate_ * scale);
            lastRefill_ = now;
        }
        if (tokens_ >= 1.0) {
            tokens_ -= 1.0;
            return AdmissionDecision::Admit;
        }
        return AdmissionDecision::Shed;
    }

  private:
    double rate_;
    double burst_;
    bool perSoc_;
    double tokens_;
    Cycles lastRefill_ = 0;
};

void
registerBuiltins(AdmissionRegistry &reg)
{
    reg.add({
        "always",
        "admit every request (open-loop baseline)",
        {},
        [](const AdmissionSpec &) {
            return std::make_unique<AlwaysAdmit>();
        },
    });
    reg.add({
        "queue-cap",
        "shed (or defer) when mean outstanding tasks per Up SoC "
        "reach a depth cap",
        {{"depth", "int", "8",
          "max mean outstanding (queued+running) tasks per Up SoC"},
         {"defer", "bool", "0",
          "defer at the front door instead of shedding"}},
        [](const AdmissionSpec &spec) {
            const int depth = static_cast<int>(parseIntValue(
                "queue-cap:depth", spec.param("depth", "8")));
            if (depth < 1)
                fatal("queue-cap: depth=%d (must be >= 1)", depth);
            const bool defer = parseBoolValue(
                "queue-cap:defer", spec.param("defer", "0"));
            return std::make_unique<QueueCapAdmit>(depth, defer);
        },
    });
    reg.add({
        "slo-budget",
        "token bucket: sustained admission rate with bounded burst",
        {{"rate", "double", "50",
          "sustained admissions per Mcycle (per Up SoC if per_soc)"},
         {"burst", "double", "100",
          "bucket capacity: max admissions above the sustained rate"},
         {"per_soc", "bool", "1",
          "scale the refill rate by the current Up-SoC count"}},
        [](const AdmissionSpec &spec) {
            const double rate = parseDoubleValue(
                "slo-budget:rate", spec.param("rate", "50"));
            if (rate <= 0.0)
                fatal("slo-budget: rate=%g (must be > 0)", rate);
            const double burst = parseDoubleValue(
                "slo-budget:burst", spec.param("burst", "100"));
            if (burst < 1.0)
                fatal("slo-budget: burst=%g (must be >= 1)", burst);
            const bool per_soc = parseBoolValue(
                "slo-budget:per_soc", spec.param("per_soc", "1"));
            return std::make_unique<SloBudgetAdmit>(rate, burst,
                                                    per_soc);
        },
    });
}

} // anonymous namespace

const char *
admissionDecisionName(AdmissionDecision decision)
{
    switch (decision) {
      case AdmissionDecision::Admit: return "admit";
      case AdmissionDecision::Shed: return "shed";
      case AdmissionDecision::Defer: return "defer";
    }
    return "?";
}

AdmissionRegistry &
AdmissionRegistry::instance()
{
    // detlint: allow(R4) magic-static init; read-only after startup
    static AdmissionRegistry reg = [] {
        AdmissionRegistry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

std::unique_ptr<AdmissionPolicy>
AdmissionRegistry::make(const AdmissionSpec &spec) const
{
    return checkSpec(spec).factory(spec);
}

std::unique_ptr<AdmissionPolicy>
AdmissionRegistry::make(const std::string &spec) const
{
    return make(AdmissionSpec::parse(spec, "admission policy"));
}

void
AdmissionRegistry::validate(const std::string &spec) const
{
    // Admission parameters carry no SoC-configuration dependence, so
    // a trial build catches bad values up front too.
    (void)make(spec);
}

} // namespace moca::serve
