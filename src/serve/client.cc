#include "serve/client.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "exp/sweep/sweep.h"

namespace moca::serve {

Cycles
retryBackoff(const ClientPoolConfig &cfg, Cycles unit, int attempt)
{
    if (attempt < 1)
        fatal("retryBackoff: attempt numbers are 1-based (got %d)",
              attempt);
    const double units = std::min(
        cfg.backoffCap,
        cfg.backoffBase * std::pow(cfg.backoffFactor, attempt - 1));
    return static_cast<Cycles>(units * static_cast<double>(unit));
}

ClientPool::ClientPool(
    const ClientPoolConfig &cfg,
    const std::function<Cycles(dnn::ModelId)> &isolated_latency)
    : cfg_(cfg)
{
    if (cfg_.numClients < 1)
        fatal("client pool needs at least one client (got %d)",
              cfg_.numClients);
    if (cfg_.maxOutstanding < 1)
        fatal("client window must be >= 1 (got %d)",
              cfg_.maxOutstanding);
    if (cfg_.requestsPerClient < 1)
        fatal("clients need at least one request each (got %d)",
              cfg_.requestsPerClient);
    if (cfg_.thinkFactor < 0.0 || cfg_.timeoutScale < 0.0)
        fatal("think factor and timeout scale must be >= 0");
    if (cfg_.maxRetries < 0)
        fatal("maxRetries must be >= 0 (got %d)", cfg_.maxRetries);
    if (cfg_.backoffBase < 0.0 || cfg_.backoffFactor < 1.0 ||
        cfg_.backoffCap < cfg_.backoffBase)
        fatal("backoff needs base >= 0, factor >= 1, cap >= base");

    const std::vector<dnn::ModelId> &models =
        cfg_.mix.empty() ? workload::workloadSetModels(cfg_.set)
                         : cfg_.mix;
    if (models.empty())
        fatal("client pool needs a non-empty model mix");

    const std::vector<double> qos_shares = {cfg_.qosLightShare,
                                            cfg_.qosMediumShare,
                                            cfg_.qosHardShare};
    if (qos_shares[0] < 0 || qos_shares[1] < 0 || qos_shares[2] < 0 ||
        qos_shares[0] + qos_shares[1] + qos_shares[2] <= 0.0)
        fatal("QoS class shares must be non-negative and sum > 0");

    double mean_iso = 0.0;
    for (dnn::ModelId id : models)
        mean_iso += static_cast<double>(isolated_latency(id));
    mean_iso /= static_cast<double>(models.size());
    meanIso_ = static_cast<Cycles>(mean_iso);
    const double think_mean = cfg_.thinkFactor * mean_iso;

    // Every request draws from its own (seed, id)-derived stream:
    // think delay first, then the shared attribute draw.  Request
    // attributes are thus independent of every control knob and of
    // the order the closed loop ends up issuing them in.
    requests_.reserve(static_cast<std::size_t>(cfg_.numClients) *
                      static_cast<std::size_t>(
                          cfg_.requestsPerClient));
    for (int c = 0; c < cfg_.numClients; ++c) {
        for (int s = 0; s < cfg_.requestsPerClient; ++s) {
            const int id = c * cfg_.requestsPerClient + s;
            Rng rng(exp::deriveCellSeed(
                cfg_.seed, static_cast<std::size_t>(id)));
            ClientRequest req;
            req.id = id;
            req.client = c;
            req.seq = s;
            req.think = static_cast<Cycles>(
                rng.exponential(std::max(1.0, think_mean)));
            req.task = cluster::drawTaskAttributes(
                rng, models, qos_shares, cfg_.qosScale,
                isolated_latency);
            req.task.id = id;
            if (cfg_.timeoutScale > 0.0)
                req.timeout = std::max<Cycles>(
                    1, static_cast<Cycles>(
                           cfg_.timeoutScale *
                           static_cast<double>(req.task.slaLatency)));
            requests_.push_back(req);
        }
    }
}

} // namespace moca::serve
