#include "serve/failure.h"

#include <algorithm>

#include "common/log.h"

namespace moca::serve {

const char *
inflightPolicyName(InflightPolicy policy)
{
    switch (policy) {
      case InflightPolicy::Requeue: return "requeue";
      case InflightPolicy::Drop: return "drop";
    }
    return "?";
}

InflightPolicy
inflightPolicyFromName(const std::string &name)
{
    if (name == "requeue")
        return InflightPolicy::Requeue;
    if (name == "drop")
        return InflightPolicy::Drop;
    fatal("unknown in-flight failure policy '%s'; expected requeue "
          "or drop", name.c_str());
}

FailureInjector::FailureInjector(const FailureConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    if (cfg_.rate < 0.0)
        fatal("failure rate must be >= 0 (got %g)", cfg_.rate);
    if (cfg_.meanDowntime <= 0.0)
        fatal("mean downtime must be > 0 cycles (got %g)",
              cfg_.meanDowntime);
    if (cfg_.minUp < 1)
        fatal("failure minUp must be >= 1 (got %d)", cfg_.minUp);
    if (enabled())
        firstFailure_ = drawGap();
}

Cycles
FailureInjector::drawGap()
{
    // Fleet-wide MTBF: rate failures per Gcycle.
    const double mean = 1e9 / cfg_.rate;
    return std::max<Cycles>(1,
                            static_cast<Cycles>(
                                rng_.exponential(mean)));
}

FailureInjector::FailPlan
FailureInjector::plan(Cycles now, int num_candidates)
{
    FailPlan out;
    if (num_candidates > cfg_.minUp) {
        out.victim = static_cast<int>(rng_.uniformInt(
            0, static_cast<std::int64_t>(num_candidates) - 1));
        out.recoverAt = now +
            std::max<Cycles>(1, static_cast<Cycles>(rng_.exponential(
                                    cfg_.meanDowntime)));
    }
    out.nextFailAt = now + drawGap();
    return out;
}

} // namespace moca::serve
