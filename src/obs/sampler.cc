#include "obs/sampler.h"

#include <fstream>

#include "common/log.h"
#include "common/table.h"

namespace moca::obs {

Sampler::Sampler(const Registry &reg, Cycles every)
    : reg_(reg), every_(every), next_(every)
{
    if (every_ == 0)
        fatal("sampler interval must be nonzero");
    series_.columns = reg_.columns();
}

void
Sampler::tick(Cycles now)
{
    while (next_ <= now) {
        series_.rows.push_back({next_, reg_.snapshot()});
        next_ += every_;
    }
}

std::string
timeseriesCsv(const Timeseries &ts)
{
    std::vector<std::string> headers;
    headers.reserve(ts.columns.size() + 1);
    headers.push_back("cycle");
    headers.insert(headers.end(), ts.columns.begin(),
                   ts.columns.end());
    Table table(std::move(headers));
    for (const auto &row : ts.rows) {
        table.row().cell(static_cast<long long>(row.at));
        for (double v : row.values)
            table.cell(v, 6);
    }
    return table.csv();
}

std::string
timeseriesJson(const Timeseries &ts)
{
    std::string out = "{\n  \"columns\": [\"cycle\"";
    for (const auto &c : ts.columns)
        out += ", \"" + c + "\"";
    out += "],\n  \"rows\": [\n";
    for (std::size_t i = 0; i < ts.rows.size(); i++) {
        const auto &row = ts.rows[i];
        out += strprintf("    [%llu",
                         static_cast<unsigned long long>(row.at));
        for (double v : row.values)
            out += strprintf(", %.6f", v);
        out += i + 1 < ts.rows.size() ? "],\n" : "]\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
writeTimeseries(const Timeseries &ts, const std::string &path)
{
    const bool json = path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0;
    std::ofstream out(path);
    if (!out) {
        warn("cannot write timeseries to %s", path.c_str());
        return;
    }
    out << (json ? timeseriesJson(ts) : timeseriesCsv(ts));
    inform("wrote %zu telemetry samples to %s", ts.rows.size(),
           path.c_str());
}

} // namespace moca::obs
