#include "obs/telemetry.h"

#include <algorithm>

#include "common/log.h"

namespace moca::obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    if (edges_.empty())
        fatal("histogram needs at least one bucket edge");
    for (std::size_t i = 1; i < edges_.size(); i++)
        if (edges_[i] <= edges_[i - 1])
            fatal("histogram edges must be strictly ascending "
                  "(edge[%zu]=%g <= edge[%zu]=%g)",
                  i, edges_[i], i - 1, edges_[i - 1]);
    counts_.assign(edges_.size() + 1, 0);
}

void
Histogram::observe(double v)
{
    auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    counts_[static_cast<std::size_t>(it - edges_.begin())]++;
    total_++;
    sum_ += v;
}

const Registry::Entry *
Registry::find(const std::string &name) const
{
    for (const auto &e : order_)
        if (e.name == name)
            return &e;
    return nullptr;
}

void
Registry::checkFresh(const std::string &name) const
{
    if (name.empty())
        fatal("telemetry instrument needs a non-empty name");
    if (find(name))
        fatal("duplicate telemetry instrument '%s'", name.c_str());
}

Counter &
Registry::counter(const std::string &name)
{
    checkFresh(name);
    counters_.emplace_back();
    order_.push_back({name, InstrumentKind::Counter,
                      counters_.size() - 1});
    return counters_.back();
}

Gauge &
Registry::gauge(const std::string &name)
{
    checkFresh(name);
    gauges_.emplace_back();
    order_.push_back({name, InstrumentKind::Gauge, gauges_.size() - 1});
    return gauges_.back();
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> edges)
{
    checkFresh(name);
    histograms_.emplace_back(std::move(edges));
    order_.push_back({name, InstrumentKind::Histogram,
                      histograms_.size() - 1});
    return histograms_.back();
}

std::vector<std::string>
Registry::columns() const
{
    std::vector<std::string> cols;
    cols.reserve(order_.size());
    for (const auto &e : order_) {
        if (e.kind == InstrumentKind::Histogram) {
            cols.push_back(e.name + ".count");
            cols.push_back(e.name + ".sum");
        } else {
            cols.push_back(e.name);
        }
    }
    return cols;
}

std::vector<double>
Registry::snapshot() const
{
    std::vector<double> vals;
    vals.reserve(order_.size());
    for (const auto &e : order_) {
        switch (e.kind) {
          case InstrumentKind::Counter:
            vals.push_back(
                static_cast<double>(counters_[e.index].value()));
            break;
          case InstrumentKind::Gauge:
            vals.push_back(gauges_[e.index].value());
            break;
          case InstrumentKind::Histogram:
            vals.push_back(static_cast<double>(
                histograms_[e.index].totalCount()));
            vals.push_back(histograms_[e.index].sum());
            break;
        }
    }
    return vals;
}

} // namespace moca::obs
