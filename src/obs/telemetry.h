/**
 * @file
 * Deterministic telemetry instruments: string-keyed counters, gauges,
 * and fixed-bucket histograms collected in a per-run Registry.
 *
 * Design constraints (the observability contract, see README):
 *  - *Observational only.*  Instruments are written from simulation
 *    code but never read back into simulation decisions, so enabling
 *    telemetry cannot perturb `timing=0` outputs.
 *  - *Zero overhead when disabled.*  Owners hold instruments behind a
 *    single pointer (e.g. sim::Soc's telemetry block) that is null
 *    unless sampling was requested.
 *  - *Deterministic iteration.*  The registry preserves registration
 *    order and uses no unordered containers, so every exporter emits
 *    instruments in the same order on every run.
 */

#ifndef MOCA_OBS_TELEMETRY_H
#define MOCA_OBS_TELEMETRY_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace moca::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { v_ += n; }
    std::uint64_t value() const { return v_; }

  private:
    std::uint64_t v_ = 0;
};

/** Point-in-time value, overwritten on every set(). */
class Gauge
{
  public:
    void set(double v) { v_ = v; }
    double value() const { return v_; }

  private:
    double v_ = 0.0;
};

/**
 * Fixed-bucket histogram with inclusive upper bounds (Prometheus
 * "le" semantics): bucket i counts observations v with
 * edges[i-1] < v <= edges[i]; one extra overflow bucket counts
 * v > edges.back().  Edges must be strictly ascending (fatal
 * otherwise).
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> edges);

    void observe(double v);

    /** edges().size() + 1 (the last bucket is the overflow bucket). */
    std::size_t numBuckets() const { return counts_.size(); }
    const std::vector<double> &edges() const { return edges_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t totalCount() const { return total_; }
    double sum() const { return sum_; }

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/** Instrument kinds, in the order columns() expands them. */
enum class InstrumentKind { Counter, Gauge, Histogram };

/**
 * A per-run set of named instruments.  Not a global singleton: each
 * Soc (or coordinator) owns its own Registry, so share-nothing sweep
 * cells never contend.  Duplicate names are a caller bug (fatal).
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges);

    std::size_t size() const { return order_.size(); }

    /**
     * Column names of snapshot(), in registration order.  Counters
     * and gauges contribute their name; a histogram contributes
     * "<name>.count" and "<name>.sum" (per-bucket detail is exported
     * by the trace/report writers, not the sampler).
     */
    std::vector<std::string> columns() const;

    /** Current values aligned with columns(). */
    std::vector<double> snapshot() const;

  private:
    struct Entry
    {
        std::string name;
        InstrumentKind kind;
        std::size_t index; ///< Into the kind's deque.
    };

    const Entry *find(const std::string &name) const;
    void checkFresh(const std::string &name) const;

    /** Registration order; drives columns()/snapshot(). */
    std::vector<Entry> order_;
    // Deques keep instrument references stable as more register.
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
};

} // namespace moca::obs

#endif // MOCA_OBS_TELEMETRY_H
