/**
 * @file
 * Sim-time sampling of a telemetry Registry into an in-memory
 * timeseries, plus CSV/JSON flushers (the CSV path reuses the
 * common/table machinery every other sink is built on).
 *
 * Samples land on the fixed grid k * every (k = 1, 2, ...) in
 * *simulated* cycles, stamped at the grid point even when the kernel
 * stepped past it: state is piecewise-constant between steps, so the
 * value at the grid point is the value after the step that crossed
 * it.  Cadence therefore depends only on `every` and the simulated
 * span — not on the kernel (quantum vs event) step pattern.
 */

#ifndef MOCA_OBS_SAMPLER_H
#define MOCA_OBS_SAMPLER_H

#include <string>
#include <vector>

#include "common/units.h"
#include "obs/telemetry.h"

namespace moca::obs {

/** A sampled instrument matrix: one row per grid point. */
struct Timeseries
{
    std::vector<std::string> columns; ///< Instrument column names.

    struct Row
    {
        Cycles at = 0; ///< Grid point the row is stamped at.
        std::vector<double> values; ///< Aligned with columns.
    };

    std::vector<Row> rows;
};

/**
 * Snapshots a Registry at every crossed grid point.  The owner calls
 * tick(now) after each simulation step (having refreshed its gauges
 * first); the sampler emits one row per grid point in
 * (previous now, now].
 */
class Sampler
{
  public:
    /** `every` must be nonzero (fatal otherwise). */
    Sampler(const Registry &reg, Cycles every);

    /** The next grid point a tick() would sample at. */
    Cycles pending() const { return next_; }

    Cycles every() const { return every_; }

    /** Sample all grid points up to and including `now`. */
    void tick(Cycles now);

    const Timeseries &series() const { return series_; }

  private:
    const Registry &reg_;
    Cycles every_;
    Cycles next_;
    Timeseries series_;
};

/** Render a timeseries as CSV (via common/table, like every sink). */
std::string timeseriesCsv(const Timeseries &ts);

/** Render a timeseries as a JSON object {columns, rows}. */
std::string timeseriesJson(const Timeseries &ts);

/**
 * Write a timeseries to `path`: JSON when the path ends in ".json",
 * CSV otherwise.  Warns (does not die) on I/O failure.
 */
void writeTimeseries(const Timeseries &ts, const std::string &path);

} // namespace moca::obs

#endif // MOCA_OBS_SAMPLER_H
