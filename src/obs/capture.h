/**
 * @file
 * Cross-layer telemetry capture: the coordinator-side bag a cluster
 * or serve run fills when a caller wants a unified timeline.  Holds
 * the three layers the Chrome-trace exporter aligns:
 *
 *  - per-SoC TraceRecorder events (merged, stamped with socId),
 *  - PDES epoch / horizon-stall spans from cluster::ParallelEngine,
 *  - serve front-end events (admission shed/defer, SoC fail/recover,
 *    autoscale) recorded by the coordinator,
 *
 * plus any per-SoC sampled timeseries.  A null Capture pointer in
 * ClusterConfig/ServeConfig disables all of it (the default); the
 * capture is written single-threaded by the coordinator, so one
 * capture must not be shared across concurrently running cells.
 */

#ifndef MOCA_OBS_CAPTURE_H
#define MOCA_OBS_CAPTURE_H

#include <vector>

#include "common/units.h"
#include "obs/sampler.h"
#include "sim/trace.h"

namespace moca::obs {

/** One PDES epoch (or horizon stall) on the coordinator clock. */
struct EpochSpan
{
    Cycles begin = 0;
    Cycles end = 0;
    /** SoCs that actually stepped this epoch (0 for a stall). */
    std::uint64_t socsStepped = 0;
    /** True when the horizon was already reached (no epoch ran). */
    bool stall = false;
};

/** Everything one cluster/serve run recorded for export. */
struct Capture
{
    /** Serve front-end events (empty in plain cluster runs). */
    sim::TraceRecorder frontend;

    /** Merged per-SoC trace events, each stamped with its socId. */
    std::vector<sim::TraceEvent> socEvents;

    std::vector<EpochSpan> epochs;

    /** Per-SoC sampled instrument series (socId-indexed order);
     *  empty unless SocConfig::sampleEvery was set. */
    std::vector<Timeseries> socSeries;
};

} // namespace moca::obs

#endif // MOCA_OBS_CAPTURE_H
