#include "obs/profile.h"

#include "common/log.h"

namespace moca::obs {

void
PhaseProfiler::add(const std::string &phase, double seconds)
{
    if (!enabled_)
        return;
    for (auto &[name, total] : phases_) {
        if (name == phase) {
            total += seconds;
            return;
        }
    }
    phases_.emplace_back(phase, seconds);
}

double
PhaseProfiler::seconds(const std::string &phase) const
{
    for (const auto &[name, total] : phases_)
        if (name == phase)
            return total;
    return 0.0;
}

std::string
PhaseProfiler::summary() const
{
    std::string out;
    for (const auto &[name, total] : phases_) {
        if (!out.empty())
            out += "  ";
        out += strprintf("%s %.3fs", name.c_str(), total);
    }
    return out;
}

std::string
PhaseProfiler::render(const std::string &title) const
{
    double sum = 0.0;
    for (const auto &[name, total] : phases_)
        sum += total;
    std::string out = title.empty() ? std::string() : title + "\n";
    for (const auto &[name, total] : phases_)
        out += strprintf("  %-16s %9.3f s  %5.1f%%\n", name.c_str(),
                         total, sum > 0.0 ? 100.0 * total / sum : 0.0);
    return out;
}

} // namespace moca::obs
