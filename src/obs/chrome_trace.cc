#include "obs/chrome_trace.h"

#include <algorithm>
#include <fstream>

#include "common/log.h"

namespace moca::obs {

namespace {

/** Escape a string for a JSON literal (names are simple, but be
 *  safe about quotes/backslashes/control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Cycles -> trace microseconds at the 1 GHz simulated clock. */
double
cyclesToUs(Cycles c)
{
    return static_cast<double>(c) / 1e3;
}

} // namespace

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    events_.push_back({'M', pid, 0, name, 0, 0, 0.0});
}

void
ChromeTraceWriter::span(int pid, int tid, const std::string &name,
                        Cycles begin, Cycles end)
{
    events_.push_back({'X', pid, tid, name, begin,
                       end >= begin ? end - begin : 0, 0.0});
}

void
ChromeTraceWriter::instant(int pid, int tid, const std::string &name,
                           Cycles at)
{
    events_.push_back({'i', pid, tid, name, at, 0, 0.0});
}

void
ChromeTraceWriter::counter(int pid, const std::string &name, Cycles at,
                           double value)
{
    events_.push_back({'C', pid, 0, name, at, 0, value});
}

void
ChromeTraceWriter::addSocEvents(
    const std::vector<sim::TraceEvent> &events)
{
    // Open spans per (socId, jobId): start/resume opens, pause/
    // complete closes.  Events arrive per-SoC in time order.
    struct Open
    {
        int socId;
        int jobId;
        Cycles since;
    };
    std::vector<Open> open;
    Cycles last_cycle = 0;

    auto find = [&](int soc, int job) -> std::size_t {
        for (std::size_t i = 0; i < open.size(); i++)
            if (open[i].socId == soc && open[i].jobId == job)
                return i;
        return open.size();
    };

    for (const auto &e : events) {
        const int pid = e.socId + 1;
        last_cycle = std::max(last_cycle, e.cycle);
        switch (e.kind) {
          case sim::TraceEventKind::JobStarted:
          case sim::TraceEventKind::JobResumed:
            if (find(e.socId, e.jobId) == open.size())
                open.push_back({e.socId, e.jobId, e.cycle});
            break;
          case sim::TraceEventKind::JobPaused:
          case sim::TraceEventKind::JobCompleted: {
            std::size_t i = find(e.socId, e.jobId);
            if (i < open.size()) {
                span(pid, e.jobId,
                     strprintf("job %d", e.jobId), open[i].since,
                     e.cycle);
                open.erase(open.begin() +
                           static_cast<std::ptrdiff_t>(i));
            }
            if (e.kind == sim::TraceEventKind::JobCompleted)
                instant(pid, e.jobId, "complete", e.cycle);
            break;
          }
          default:
            instant(pid, e.jobId,
                    sim::traceEventKindName(e.kind), e.cycle);
        }
    }
    // Jobs still running when the capture ended: close at the last
    // seen cycle so the span is visible rather than dropped.
    for (const auto &o : open)
        span(o.socId + 1, o.jobId, strprintf("job %d (open)", o.jobId),
             o.since, last_cycle);
}

void
ChromeTraceWriter::addTimeseries(int pid, const std::string &prefix,
                                 const Timeseries &ts)
{
    for (const auto &row : ts.rows)
        for (std::size_t c = 0; c < ts.columns.size(); c++)
            counter(pid, prefix + ts.columns[c], row.at,
                    row.values[c]);
}

void
ChromeTraceWriter::addCapture(const Capture &capture)
{
    processName(0, "coordinator");

    int max_soc = -1;
    for (const auto &e : capture.socEvents)
        max_soc = std::max(max_soc, e.socId);
    max_soc = std::max(max_soc,
                       static_cast<int>(capture.socSeries.size()) - 1);
    for (int s = 0; s <= max_soc; s++)
        processName(s + 1, strprintf("soc %d", s));

    for (const auto &ep : capture.epochs) {
        if (ep.stall)
            instant(0, 0, "horizon-stall", ep.end);
        else
            span(0, 0,
                 strprintf("epoch (%llu socs)",
                           static_cast<unsigned long long>(
                               ep.socsStepped)),
                 ep.begin, ep.end);
    }

    for (const auto &e : capture.frontend.events())
        instant(0, 0,
                strprintf("%s %d", sim::traceEventKindName(e.kind),
                          e.jobId),
                e.cycle);

    addSocEvents(capture.socEvents);

    for (std::size_t s = 0; s < capture.socSeries.size(); s++)
        addTimeseries(static_cast<int>(s) + 1, "",
                      capture.socSeries[s]);
}

std::string
ChromeTraceWriter::render() const
{
    std::string out = "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); i++) {
        const auto &e = events_[i];
        switch (e.ph) {
          case 'M':
            out += strprintf(
                "{\"ph\": \"M\", \"pid\": %d, \"name\": "
                "\"process_name\", \"args\": {\"name\": \"%s\"}}",
                e.pid, jsonEscape(e.name).c_str());
            break;
          case 'X':
            out += strprintf(
                "{\"ph\": \"X\", \"pid\": %d, \"tid\": %d, "
                "\"name\": \"%s\", \"ts\": %.3f, \"dur\": %.3f}",
                e.pid, e.tid, jsonEscape(e.name).c_str(),
                cyclesToUs(e.ts), cyclesToUs(e.dur));
            break;
          case 'i':
            out += strprintf(
                "{\"ph\": \"i\", \"s\": \"t\", \"pid\": %d, "
                "\"tid\": %d, \"name\": \"%s\", \"ts\": %.3f}",
                e.pid, e.tid, jsonEscape(e.name).c_str(),
                cyclesToUs(e.ts));
            break;
          case 'C':
            out += strprintf(
                "{\"ph\": \"C\", \"pid\": %d, \"name\": \"%s\", "
                "\"ts\": %.3f, \"args\": {\"value\": %.6f}}",
                e.pid, jsonEscape(e.name).c_str(), cyclesToUs(e.ts),
                e.value);
            break;
          default:
            panic("unknown chrome trace phase '%c'", e.ph);
        }
        out += i + 1 < events_.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

void
ChromeTraceWriter::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write chrome trace to %s", path.c_str());
        return;
    }
    out << render();
    inform("wrote %zu trace events to %s (load in chrome://tracing "
           "or https://ui.perfetto.dev)",
           events_.size(), path.c_str());
}

} // namespace moca::obs
