/**
 * @file
 * Chrome trace_event JSON exporter: unifies per-SoC job activity,
 * PDES epoch/stall spans, serve front-end events, and sampled
 * counters on one timeline loadable in chrome://tracing or Perfetto.
 *
 * Layout: pid 0 is the coordinator (cluster epochs + serve
 * front-end), pid i+1 is SoC i, tid is the job id within a SoC
 * (tid 0 on the coordinator).  Timestamps are microseconds at the
 * 1 GHz simulated clock (cycle / 1000).
 */

#ifndef MOCA_OBS_CHROME_TRACE_H
#define MOCA_OBS_CHROME_TRACE_H

#include <string>
#include <vector>

#include "common/units.h"
#include "obs/capture.h"
#include "obs/sampler.h"
#include "sim/trace.h"

namespace moca::obs {

/** Accumulates trace_event records; render()/write() emit the JSON. */
class ChromeTraceWriter
{
  public:
    /** Name a process row ("SoC 3", "coordinator"). */
    void processName(int pid, const std::string &name);

    /** Complete ("X") span [begin, end] in cycles. */
    void span(int pid, int tid, const std::string &name, Cycles begin,
              Cycles end);

    /** Instant ("i") event at `at` cycles. */
    void instant(int pid, int tid, const std::string &name, Cycles at);

    /** Counter ("C") sample at `at` cycles. */
    void counter(int pid, const std::string &name, Cycles at,
                 double value);

    /**
     * Expand raw SoC trace events: start/resume..pause/complete pairs
     * become per-job spans, everything else instants.  Events go to
     * pid socId + 1; open spans are closed at the last event cycle.
     */
    void addSocEvents(const std::vector<sim::TraceEvent> &events);

    /** One counter track per column, on `pid`, prefixed `prefix`. */
    void addTimeseries(int pid, const std::string &prefix,
                       const Timeseries &ts);

    /** Everything a cluster/serve run captured (all three layers). */
    void addCapture(const Capture &capture);

    std::size_t numEvents() const { return events_.size(); }

    /** The {"traceEvents": [...]} JSON document. */
    std::string render() const;

    /** Write render() to `path`; warns (not fatal) on I/O failure. */
    void write(const std::string &path) const;

  private:
    struct Event
    {
        char ph; ///< 'X', 'i', 'C', or 'M' (metadata).
        int pid = 0;
        int tid = 0;
        std::string name;
        Cycles ts = 0;
        Cycles dur = 0;     ///< 'X' only.
        double value = 0.0; ///< 'C' only.
    };

    std::vector<Event> events_;
};

} // namespace moca::obs

#endif // MOCA_OBS_CHROME_TRACE_H
