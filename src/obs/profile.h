/**
 * @file
 * Wall-clock phase profiling scopes.  All timing goes through the
 * detlint-sanctioned moca::WallTimer shim (common/walltime.h) — no
 * raw std::chrono — and is purely diagnostic: phase totals feed
 * reports and bench tables, never simulation decisions.
 *
 * This is the one code path every bench reports phase timings
 * through: accumulate with ScopedPhase (or add()), then print
 * summary() / render().
 */

#ifndef MOCA_OBS_PROFILE_H
#define MOCA_OBS_PROFILE_H

#include <string>
#include <utility>
#include <vector>

#include "common/walltime.h"

namespace moca::obs {

/**
 * Accumulated wall-clock seconds per named phase, in first-seen
 * order.  Construction with enabled=false turns add() into a no-op
 * so callers can leave scopes in place unconditionally.
 */
class PhaseProfiler
{
  public:
    explicit PhaseProfiler(bool enabled = true) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** Accumulate `seconds` into `phase` (creates it on first use). */
    void add(const std::string &phase, double seconds);

    /** Total seconds recorded for `phase` (0 if never seen). */
    double seconds(const std::string &phase) const;

    /** (phase, seconds) pairs in first-seen order. */
    const std::vector<std::pair<std::string, double>> &
    entries() const { return phases_; }

    /** One-line "phase 0.123s  phase2 0.045s" summary ("" if empty). */
    std::string summary() const;

    /** Multi-line breakdown table with per-phase share of total. */
    std::string render(const std::string &title) const;

  private:
    bool enabled_;
    std::vector<std::pair<std::string, double>> phases_;
};

/** RAII scope: adds its WallTimer lap to a phase on destruction. */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseProfiler &profiler, std::string phase)
        : profiler_(profiler), phase_(std::move(phase))
    {
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase() { profiler_.add(phase_, timer_.seconds()); }

  private:
    PhaseProfiler &profiler_;
    std::string phase_;
    WallTimer timer_;
};

} // namespace moca::obs

#endif // MOCA_OBS_PROFILE_H
