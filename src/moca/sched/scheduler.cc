#include "moca/sched/scheduler.h"

#include <algorithm>

#include "common/log.h"

namespace moca::sched {

double
MocaScheduler::score(const SchedTask &task, Cycles now)
{
    const double waiting = now >= task.dispatched
        ? static_cast<double>(now - task.dispatched) : 0.0;
    const double est = std::max(1.0, task.estimatedTime);
    return static_cast<double>(task.priority) + waiting / est;
}

bool
MocaScheduler::isMemIntensive(const SchedTask &task) const
{
    return task.estimatedAvgBw >
        cfg_.memIntensiveFraction * dram_bw_;
}

std::vector<int>
MocaScheduler::selectGroup(const std::vector<SchedTask> &queue,
                           Cycles now, int max_slots,
                           MixBias bias) const
{
    std::vector<int> group;
    if (max_slots <= 0 || queue.empty())
        return group;

    // Lines 13-15: populate the ExQueue with above-threshold tasks
    // sorted by descending score (stable on id for determinism).
    struct Scored
    {
        const SchedTask *task;
        double score;
        bool taken = false;
    };
    std::vector<Scored> ex;
    ex.reserve(queue.size());
    for (const auto &t : queue) {
        const double s = score(t, now);
        // ">=" so that freshly dispatched priority-0 tasks (score
        // exactly 0) pass the default threshold of 0.
        if (s >= cfg_.scoreThreshold)
            ex.push_back({&t, s});
    }
    std::stable_sort(ex.begin(), ex.end(),
                     [](const Scored &a, const Scored &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.task->id < b.task->id;
                     });

    // Lines 17-25: form the co-running group; pair memory-intensive
    // picks with the next non-memory-intensive task in the queue.
    auto pop_first = [&](auto &&pred) -> const SchedTask * {
        for (auto &s : ex) {
            if (!s.taken && pred(*s.task)) {
                s.taken = true;
                return s.task;
            }
        }
        return nullptr;
    };

    bool first_pick = true;
    while (static_cast<int>(group.size()) < max_slots) {
        const SchedTask *curr = nullptr;
        if (first_pick && cfg_.memAwarePairing &&
            bias != MixBias::None) {
            // Rebalance against the running mix: prefer the
            // highest-scored task of the under-represented kind.
            const bool want_mem = bias == MixBias::PreferMem;
            curr = pop_first([&](const SchedTask &t) {
                return isMemIntensive(t) == want_mem;
            });
        }
        first_pick = false;
        if (curr == nullptr)
            curr = pop_first([](const SchedTask &) { return true; });
        if (curr == nullptr)
            break;
        group.push_back(curr->id);

        if (cfg_.memAwarePairing && isMemIntensive(*curr) &&
            static_cast<int>(group.size()) < max_slots) {
            const SchedTask *co = pop_first(
                [&](const SchedTask &t) { return !isMemIntensive(t); });
            if (co != nullptr)
                group.push_back(co->id);
        }
    }
    return group;
}

} // namespace moca::sched
