#include "moca/sched/scheduler.h"

#include <algorithm>
#include <iterator>

#include "common/log.h"

namespace moca::sched {

double
MocaScheduler::score(const SchedTask &task, Cycles now)
{
    const double waiting = now >= task.dispatched
        ? static_cast<double>(now - task.dispatched) : 0.0;
    const double est = std::max(1.0, task.estimatedTime);
    return static_cast<double>(task.priority) + waiting / est;
}

bool
MocaScheduler::isMemIntensive(const SchedTask &task) const
{
    return task.estimatedAvgBw >
        cfg_.memIntensiveFraction * dram_bw_;
}

void
MocaScheduler::beginRound() const
{
    mem_top_.clear();
    cpu_top_.clear();
    ex_.clear();
}

void
MocaScheduler::considerTask(const SchedTask &t, Cycles now,
                            std::size_t cap) const
{
    const double s = score(t, now);
    // ">=" so that freshly dispatched priority-0 tasks (score
    // exactly 0) pass the default threshold of 0 (line 14).
    if (s < cfg_.scoreThreshold)
        return;
    std::vector<Scored> &top = isMemIntensive(t) ? mem_top_ : cpu_top_;
    const Scored cand{t, s};
    if (top.size() == cap && !better(cand, top.back()))
        return;
    top.push_back(cand);
    for (std::size_t i = top.size() - 1;
         i > 0 && better(top[i], top[i - 1]); --i)
        std::swap(top[i], top[i - 1]);
    if (top.size() > cap)
        top.pop_back();
}

void
MocaScheduler::formGroup(int max_slots, MixBias bias,
                         std::vector<int> &group) const
{
    // Merge the two class lists into the (truncated) ExQueue in
    // descending-score order — identical order to the full sort,
    // restricted to the candidates the formation loop can reach.
    std::vector<Scored> &ex = ex_;
    std::merge(mem_top_.begin(), mem_top_.end(),
               cpu_top_.begin(), cpu_top_.end(),
               std::back_inserter(ex), better);

    // Lines 17-25: form the co-running group; pair memory-intensive
    // picks with the next non-memory-intensive task in the queue.
    auto pop_first = [&](auto &&pred) -> const SchedTask * {
        for (auto &s : ex) {
            if (!s.taken && pred(s.task)) {
                s.taken = true;
                return &s.task;
            }
        }
        return nullptr;
    };

    bool first_pick = true;
    while (static_cast<int>(group.size()) < max_slots) {
        const SchedTask *curr = nullptr;
        if (first_pick && cfg_.memAwarePairing &&
            bias != MixBias::None) {
            // Rebalance against the running mix: prefer the
            // highest-scored task of the under-represented kind.
            const bool want_mem = bias == MixBias::PreferMem;
            curr = pop_first([&](const SchedTask &t) {
                return isMemIntensive(t) == want_mem;
            });
        }
        first_pick = false;
        if (curr == nullptr)
            curr = pop_first([](const SchedTask &) { return true; });
        if (curr == nullptr)
            break;
        group.push_back(curr->id);

        if (cfg_.memAwarePairing && isMemIntensive(*curr) &&
            static_cast<int>(group.size()) < max_slots) {
            const SchedTask *co = pop_first(
                [&](const SchedTask &t) { return !isMemIntensive(t); });
            if (co != nullptr)
                group.push_back(co->id);
        }
    }
}

std::vector<int>
MocaScheduler::selectGroup(const std::vector<SchedTask> &queue,
                           Cycles now, int max_slots,
                           MixBias bias) const
{
    std::vector<int> group;
    if (max_slots <= 0 || queue.empty())
        return group;
    beginRound();
    for (const auto &t : queue)
        considerTask(t, now, static_cast<std::size_t>(max_slots));
    formGroup(max_slots, bias, group);
    return group;
}

} // namespace moca::sched
