/**
 * @file
 * Algorithm 3 of the paper: the MoCA scheduler.  At each scheduling
 * round it scores every task in the TaskQueue as
 *
 *   Score_i = user_given_priority_i + Slowdown_i,
 *   Slowdown_i = WaitingTime_i / EstimatedTime(Task_i),
 *
 * flags tasks whose estimated average DRAM bandwidth demand exceeds
 * half the DRAM bandwidth as memory-intensive, populates an execution
 * queue with tasks above the score threshold (sorted by score), and
 * forms the co-running group by popping the highest-scored task and,
 * whenever that task is memory-intensive, pairing it with the best
 * non-memory-intensive task remaining in the queue.
 */

#ifndef MOCA_SCHED_SCHEDULER_H
#define MOCA_SCHED_SCHEDULER_H

#include <vector>

#include "common/units.h"

namespace moca::sched {

/** A TaskQueue entry as the scheduler sees it. */
struct SchedTask
{
    int id = -1;
    int priority = 0;            ///< user_given_priority, 0..11.
    Cycles dispatched = 0;       ///< Time entered into the TaskQueue.
    double estimatedTime = 1.0;  ///< Isolated latency estimate.
    double estimatedAvgBw = 0.0; ///< Mean DRAM demand, bytes/cycle.
};

/** Scheduler tuning knobs. */
struct SchedulerConfig
{
    /** ExQueue admission threshold on the score (Algorithm 3
     *  line 14); 0 admits every dispatched task. */
    double scoreThreshold = 0.0;

    /** Memory-intensive flag cutoff as a fraction of DRAM bandwidth
     *  (Algorithm 3 line 7 uses 0.5). */
    double memIntensiveFraction = 0.5;

    /** Disable the memory-aware pairing (ablation knob); selection
     *  then degenerates to pure score order. */
    bool memAwarePairing = true;
};

/** The MoCA scheduler. */
class MocaScheduler
{
  public:
    MocaScheduler(const SchedulerConfig &cfg, double dram_bw)
        : cfg_(cfg), dram_bw_(dram_bw)
    {
    }

    /** Score of a task at time `now` (Algorithm 3 lines 3-6). */
    static double score(const SchedTask &task, Cycles now);

    /** Memory-intensiveness flag (Algorithm 3 lines 7-11). */
    bool isMemIntensive(const SchedTask &task) const;

    /** Bias applied when filling slots next to already-running jobs:
     *  steer the mix toward a memory/compute balance. */
    enum class MixBias { None, PreferNonMem, PreferMem };

    /**
     * One scheduling round: select up to `max_slots` tasks to run
     * concurrently (Algorithm 3 lines 13-26).
     *
     * @param bias when the co-runner set is already skewed (e.g.
     *        mostly memory-intensive jobs running), the first pick
     *        prefers a task that rebalances the mix; Algorithm 3's
     *        pairing then applies within the selected group.
     * @return task ids in launch order.
     */
    std::vector<int> selectGroup(const std::vector<SchedTask> &queue,
                                 Cycles now, int max_slots,
                                 MixBias bias = MixBias::None) const;

    const SchedulerConfig &config() const { return cfg_; }

  private:
    SchedulerConfig cfg_;
    double dram_bw_;
};

} // namespace moca::sched

#endif // MOCA_SCHED_SCHEDULER_H
