/**
 * @file
 * Algorithm 3 of the paper: the MoCA scheduler.  At each scheduling
 * round it scores every task in the TaskQueue as
 *
 *   Score_i = user_given_priority_i + Slowdown_i,
 *   Slowdown_i = WaitingTime_i / EstimatedTime(Task_i),
 *
 * flags tasks whose estimated average DRAM bandwidth demand exceeds
 * half the DRAM bandwidth as memory-intensive, populates an execution
 * queue with tasks above the score threshold (sorted by score), and
 * forms the co-running group by popping the highest-scored task and,
 * whenever that task is memory-intensive, pairing it with the best
 * non-memory-intensive task remaining in the queue.
 */

#ifndef MOCA_SCHED_SCHEDULER_H
#define MOCA_SCHED_SCHEDULER_H

#include <vector>

#include "common/units.h"

namespace moca::sched {

/** A TaskQueue entry as the scheduler sees it. */
struct SchedTask
{
    int id = -1;
    int priority = 0;            ///< user_given_priority, 0..11.
    Cycles dispatched = 0;       ///< Time entered into the TaskQueue.
    double estimatedTime = 1.0;  ///< Isolated latency estimate.
    double estimatedAvgBw = 0.0; ///< Mean DRAM demand, bytes/cycle.
};

/** Scheduler tuning knobs. */
struct SchedulerConfig
{
    /** ExQueue admission threshold on the score (Algorithm 3
     *  line 14); 0 admits every dispatched task. */
    double scoreThreshold = 0.0;

    /** Memory-intensive flag cutoff as a fraction of DRAM bandwidth
     *  (Algorithm 3 line 7 uses 0.5). */
    double memIntensiveFraction = 0.5;

    /** Disable the memory-aware pairing (ablation knob); selection
     *  then degenerates to pure score order. */
    bool memAwarePairing = true;
};

/** The MoCA scheduler. */
class MocaScheduler
{
  public:
    MocaScheduler(const SchedulerConfig &cfg, double dram_bw)
        : cfg_(cfg), dram_bw_(dram_bw)
    {
    }

    /** Score of a task at time `now` (Algorithm 3 lines 3-6). */
    static double score(const SchedTask &task, Cycles now);

    /** Memory-intensiveness flag (Algorithm 3 lines 7-11). */
    bool isMemIntensive(const SchedTask &task) const;

    /** Bias applied when filling slots next to already-running jobs:
     *  steer the mix toward a memory/compute balance. */
    enum class MixBias { None, PreferNonMem, PreferMem };

    /**
     * One scheduling round: select up to `max_slots` tasks to run
     * concurrently (Algorithm 3 lines 13-26).
     *
     * The group formation only ever examines the `max_slots` best
     * tasks of each intensiveness class (every pick is either "best
     * remaining", "best remaining memory-intensive", or "best
     * remaining non-memory-intensive", and at most `max_slots` picks
     * happen), so the round runs a bounded top-k selection scan over
     * the queue instead of sorting it — O(queue) with a tiny
     * constant rather than O(queue log queue), and decision-identical
     * to the full ExQueue sort.
     *
     * @param bias when the co-runner set is already skewed (e.g.
     *        mostly memory-intensive jobs running), the first pick
     *        prefers a task that rebalances the mix; Algorithm 3's
     *        pairing then applies within the selected group.
     * @return task ids in launch order.
     */
    std::vector<int> selectGroup(const std::vector<SchedTask> &queue,
                                 Cycles now, int max_slots,
                                 MixBias bias = MixBias::None) const;

    /**
     * selectGroup over an id list with an external task lookup, so a
     * caller holding per-job SchedTask records (e.g. a policy's
     * per-job admit cache) can run a round without materializing a
     * queue vector first.  `task_at(id)` returns the job's entry, or
     * nullptr to skip the id.  Same selection as selectGroup.
     */
    template <class TaskAt>
    std::vector<int> selectGroupIds(const std::vector<int> &ids,
                                    TaskAt &&task_at, Cycles now,
                                    int max_slots,
                                    MixBias bias = MixBias::None) const
    {
        std::vector<int> group;
        if (max_slots <= 0 || ids.empty())
            return group;
        beginRound();
        for (int id : ids)
            if (const SchedTask *t = task_at(id))
                considerTask(*t, now,
                             static_cast<std::size_t>(max_slots));
        formGroup(max_slots, bias, group);
        return group;
    }

    const SchedulerConfig &config() const { return cfg_; }

  private:
    SchedulerConfig cfg_;
    double dram_bw_;

    /** ExQueue entry (selectGroup working state).  Holds the task by
     *  value: a caller's task storage may move while the round's scan
     *  is still inserting candidates (e.g. a policy growing its
     *  per-job cache), so pointers into it would dangle. */
    struct Scored
    {
        SchedTask task;
        double score;
        bool taken = false;
    };
    /** Bounded per-class top-k scratch plus the merged candidate
     *  list, reused across scheduling rounds (each holds at most
     *  max_slots entries, so no O(waiting) storage or allocation per
     *  scheduling point of a long-horizon run). */
    // detlint: allow(R4) per-instance scratch; never cross-thread
    mutable std::vector<Scored> mem_top_;
    mutable std::vector<Scored> cpu_top_;
    mutable std::vector<Scored> ex_;

    /** Strict-total-order for the ExQueue: descending score, id
     *  ascending on ties (ids are unique, so the old stable_sort and
     *  this comparator agree exactly). */
    static bool better(const Scored &a, const Scored &b)
    {
        if (a.score != b.score)
            return a.score > b.score;
        return a.task.id < b.task.id;
    }

    void beginRound() const;

    /** Score `t` and, if it passes the ExQueue threshold, insert it
     *  into its class's bounded top-`cap` list. */
    void considerTask(const SchedTask &t, Cycles now,
                      std::size_t cap) const;

    /** Merge the per-class candidates and run the Algorithm 3 group
     *  formation (lines 17-25) over them. */
    void formGroup(int max_slots, MixBias bias,
                   std::vector<int> &group) const;
};

} // namespace moca::sched

#endif // MOCA_SCHED_SCHEDULER_H
