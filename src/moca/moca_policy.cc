#include "moca/moca_policy.h"

#include <algorithm>

#include "common/argparse.h"
#include "common/log.h"

namespace moca {

bool
MocaPolicyConfig::applyParam(const std::string &key,
                             const std::string &value)
{
    const std::string what = "moca:" + key;
    if (key == "slots") {
        slots = static_cast<int>(parseIntValue(what, value));
    } else if (key == "throttle") {
        enableThrottling = parseBoolValue(what, value);
    } else if (key == "pairing") {
        enableMemAwarePairing = parseBoolValue(what, value);
    } else if (key == "dynamic_score") {
        enableDynamicScore = parseBoolValue(what, value);
    } else if (key == "repartition") {
        enableComputeRepartition = parseBoolValue(what, value);
    } else if (key == "score_threshold") {
        scoreThreshold = parseDoubleValue(what, value);
    } else if (key == "sparsity_aware") {
        sparsityAwarePredictor = parseBoolValue(what, value);
    } else if (key == "repartition_benefit") {
        repartitionBenefit = parseDoubleValue(what, value);
    } else if (key == "tick") {
        const auto tick = parseIntValue(what, value);
        if (tick < 0)
            fatal("%s: tick must be >= 0 cycles", what.c_str());
        throttleTickCycles = static_cast<Cycles>(tick);
    } else if (key == "threshold") {
        if (value == "scaled")
            fixedThreshold = false;
        else if (value == "fixed")
            fixedThreshold = true;
        else
            fatal("%s=%s: expected 'scaled' or 'fixed'",
                  what.c_str(), value.c_str());
    } else {
        return false;
    }
    return true;
}

MocaPolicy::MocaPolicy(const sim::SocConfig &soc_cfg,
                       const MocaPolicyConfig &cfg)
    : cfg_(cfg),
      cm_(soc_cfg, cfg.sparsityAwarePredictor,
          runtime::ContentionTuning{cfg.throttleTickCycles,
                                    cfg.fixedThreshold}),
      scheduler_(sched::SchedulerConfig{
          cfg.scoreThreshold, 0.5, cfg.enableMemAwarePairing},
          soc_cfg.dramBytesPerCycle),
      estimator_(soc_cfg, cfg.sparsityAwarePredictor)
{
    if (cfg_.slots < 1 || cfg_.slots > soc_cfg.numTiles)
        fatal("moca: slots must be in [1, numTiles]");
}

int
MocaPolicy::tilesPerSlot(const sim::Soc &soc) const
{
    return std::max(1, soc.config().numTiles / cfg_.slots);
}

const MocaPolicy::ModelEstimate &
MocaPolicy::modelEstimate(const dnn::Model &model, int num_tiles)
{
    const auto key = std::make_pair(&model, num_tiles);
    auto it = estimate_memo_.find(key);
    if (it == estimate_memo_.end()) {
        ModelEstimate e;
        e.time = estimator_.estimateModel(model, num_tiles);
        e.bw = estimator_.estimateAvgBw(model, num_tiles);
        it = estimate_memo_.emplace(key, e).first;
    }
    return it->second;
}

bool
MocaPolicy::reconfigure(sim::Soc &soc, const sim::Job &job)
{
    runtime::JobSnapshot snap;
    snap.appId = job.spec.id;
    snap.model = job.spec.model;
    snap.nextLayer = job.layerIdx;
    snap.numTiles = std::max(1, job.numTiles);
    snap.userPriority = job.spec.priority;
    if (cfg_.enableDynamicScore) {
        const double deadline = static_cast<double>(job.spec.dispatch) +
            static_cast<double>(job.spec.slaLatency);
        snap.slackCycles = deadline - static_cast<double>(soc.now());
    } else {
        // Ablation: static priority only (slack -> infinity kills the
        // remaining/slack term).
        snap.slackCycles = 1e18;
    }

    const runtime::ContentionDecision d = cm_.onBlockBoundary(snap);
    stats_.reconfigurations++;
    if (d.contention)
        stats_.contentionDetected++;
    if (cfg_.enableThrottling)
        soc.configureThrottle(job.spec.id, d.hwConfig);
    return d.contention;
}

void
MocaPolicy::reconfigureCorunners(sim::Soc &soc, int except_id)
{
    // "The MoCA hardware engine is reconfigured each time the dynamic
    // scores are updated" (Sec. III-C): once contention is detected,
    // every co-runner's allocation is refreshed so the aggregate
    // issue rate respects the DRAM bandwidth.
    for (int id : soc.runningJobs()) {
        if (id == except_id)
            continue;
        const sim::Job &j = soc.job(id);
        if (j.state == sim::JobState::Running)
            reconfigure(soc, j);
    }
}

void
MocaPolicy::admitJobs(sim::Soc &soc)
{
    const int per_slot = tilesPerSlot(soc);
    const int slots_free = soc.freeTiles() / per_slot;
    if (slots_free <= 0)
        return;

    std::vector<sched::SchedTask> queue;
    for (int id : soc.waitingJobs()) {
        const sim::Job &j = soc.job(id);
        if (j.state != sim::JobState::Waiting)
            continue; // MoCA never pauses jobs.
        const ModelEstimate &est =
            modelEstimate(*j.spec.model, per_slot);
        sched::SchedTask t;
        t.id = id;
        t.priority = j.spec.priority;
        t.dispatched = j.spec.dispatch;
        t.estimatedTime = est.time;
        t.estimatedAvgBw = est.bw;
        queue.push_back(t);
    }
    if (queue.empty())
        return;

    // Bias the pick against the running mix: if the current
    // co-runners are mostly memory-intensive, prefer a compute-bound
    // task (and vice versa) so the co-scheduled set stays balanced.
    auto bias = sched::MocaScheduler::MixBias::None;
    {
        int mem = 0, total = 0;
        for (int id : soc.runningJobs()) {
            const sim::Job &j = soc.job(id);
            const double bw = modelEstimate(
                *j.spec.model, std::max(1, j.numTiles)).bw;
            ++total;
            if (bw > 0.5 * soc.config().dramBytesPerCycle)
                ++mem;
        }
        if (total > 0 && 2 * mem >= total + 1)
            bias = sched::MocaScheduler::MixBias::PreferNonMem;
        else if (total > 1 && mem == 0)
            bias = sched::MocaScheduler::MixBias::PreferMem;
    }

    const std::vector<int> group =
        scheduler_.selectGroup(queue, soc.now(), slots_free, bias);
    for (int id : group) {
        if (soc.freeTiles() < per_slot)
            break;
        soc.startJob(id, per_slot);
        stats_.jobsAdmitted++;
        reconfigure(soc, soc.job(id));
    }
}

void
MocaPolicy::maybeRepartition(sim::Soc &soc, sim::SchedEvent event)
{
    if (!cfg_.enableComputeRepartition)
        return;
    const int per_slot = tilesPerSlot(soc);
    const auto running = soc.runningJobs();
    const auto waiting = soc.waitingJobs();
    const double migration =
        static_cast<double>(soc.config().migrationCycles);

    if (waiting.empty() && running.size() == 1 &&
        soc.freeTiles() > 0) {
        // Expand a lone job when the remaining work amortizes the
        // migration penalty.
        sim::Job &j = soc.job(running.front());
        if (j.stallUntil > soc.now())
            return;
        const double remain = estimator_
            .estimateRemaining(*j.spec.model, j.layerIdx, j.numTiles)
            .prediction;
        if (remain > cfg_.repartitionBenefit * migration) {
            soc.resizeJob(j.spec.id,
                          j.numTiles + soc.freeTiles());
            stats_.repartitions++;
            reconfigure(soc, j);
        }
        return;
    }

    if (event == sim::SchedEvent::JobArrival && !waiting.empty() &&
        soc.freeTiles() < per_slot) {
        // Shrink an expanded job back to one slot so new arrivals can
        // be admitted, when it still has enough work left to justify
        // paying the migration.
        for (int id : running) {
            sim::Job &j = soc.job(id);
            if (j.numTiles <= per_slot)
                continue;
            const double remain = estimator_
                .estimateRemaining(*j.spec.model, j.layerIdx,
                                   j.numTiles)
                .prediction;
            if (remain > cfg_.repartitionBenefit * migration) {
                soc.resizeJob(id, per_slot);
                stats_.repartitions++;
                reconfigure(soc, j);
                break;
            }
        }
    }
}

void
MocaPolicy::schedule(sim::Soc &soc, sim::SchedEvent event)
{
    maybeRepartition(soc, event);
    admitJobs(soc);

    // Fallback: if nothing could be admitted at slot granularity but
    // the machine is otherwise idle, run the best waiting job on
    // whatever tiles remain (avoids idling a nearly-free SoC).
    if (soc.runningJobs().empty() && !soc.waitingJobs().empty() &&
        soc.freeTiles() > 0) {
        const auto waiting = soc.waitingJobs();
        soc.startJob(waiting.front(),
                     std::min(soc.freeTiles(), tilesPerSlot(soc)));
        reconfigure(soc, soc.job(waiting.front()));
    }
}

void
MocaPolicy::onBlockBoundary(sim::Soc &soc, sim::Job &job)
{
    if (reconfigure(soc, job))
        reconfigureCorunners(soc, job.spec.id);
}

void
MocaPolicy::onJobComplete(sim::Soc &, sim::Job &job)
{
    cm_.onJobComplete(job.spec.id);
}

} // namespace moca
