#include "moca/moca_policy.h"

#include <algorithm>

#include "common/argparse.h"
#include "common/log.h"

namespace moca {

bool
MocaPolicyConfig::applyParam(const std::string &key,
                             const std::string &value)
{
    const std::string what = "moca:" + key;
    if (key == "slots") {
        slots = static_cast<int>(parseIntValue(what, value));
    } else if (key == "throttle") {
        enableThrottling = parseBoolValue(what, value);
    } else if (key == "pairing") {
        enableMemAwarePairing = parseBoolValue(what, value);
    } else if (key == "dynamic_score") {
        enableDynamicScore = parseBoolValue(what, value);
    } else if (key == "repartition") {
        enableComputeRepartition = parseBoolValue(what, value);
    } else if (key == "score_threshold") {
        scoreThreshold = parseDoubleValue(what, value);
    } else if (key == "sparsity_aware") {
        sparsityAwarePredictor = parseBoolValue(what, value);
    } else if (key == "repartition_benefit") {
        repartitionBenefit = parseDoubleValue(what, value);
    } else if (key == "tick") {
        const auto tick = parseIntValue(what, value);
        if (tick < 0)
            fatal("%s: tick must be >= 0 cycles", what.c_str());
        throttleTickCycles = static_cast<Cycles>(tick);
    } else if (key == "threshold") {
        if (value == "scaled")
            fixedThreshold = false;
        else if (value == "fixed")
            fixedThreshold = true;
        else
            fatal("%s=%s: expected 'scaled' or 'fixed'",
                  what.c_str(), value.c_str());
    } else {
        return false;
    }
    return true;
}

MocaPolicy::MocaPolicy(const sim::SocConfig &soc_cfg,
                       const MocaPolicyConfig &cfg)
    : cfg_(cfg),
      cm_(soc_cfg, cfg.sparsityAwarePredictor,
          runtime::ContentionTuning{cfg.throttleTickCycles,
                                    cfg.fixedThreshold}),
      scheduler_(sched::SchedulerConfig{
          cfg.scoreThreshold, 0.5, cfg.enableMemAwarePairing},
          soc_cfg.dramBytesPerCycle),
      estimator_(soc_cfg, cfg.sparsityAwarePredictor)
{
    if (cfg_.slots < 1 || cfg_.slots > soc_cfg.numTiles)
        fatal("moca: slots must be in [1, numTiles]");
}

int
MocaPolicy::tilesPerSlot(const sim::Soc &soc) const
{
    return std::max(1, soc.config().numTiles / cfg_.slots);
}

const MocaPolicy::ModelEstimate &
MocaPolicy::modelEstimate(const dnn::Model &model, int num_tiles)
{
    const std::uint64_t key =
        (model.uid() << 16) |
        (static_cast<std::uint64_t>(num_tiles) & 0xffff);
    auto it = estimate_memo_.find(key);
    if (it == estimate_memo_.end()) {
        ModelEstimate e;
        e.time = estimator_.estimateModel(model, num_tiles);
        e.bw = estimator_.estimateAvgBw(model, num_tiles);
        it = estimate_memo_.emplace(key, e).first;
    }
    return it->second;
}

bool
MocaPolicy::reconfigure(sim::Soc &soc, int id)
{
    const sim::JobSpec &spec = soc.job(id).spec;
    runtime::JobSnapshot snap;
    snap.appId = id;
    snap.model = spec.model;
    snap.nextLayer = soc.jobLayer(id);
    snap.numTiles = std::max(1, soc.jobTiles(id));
    snap.userPriority = spec.priority;
    if (cfg_.enableDynamicScore) {
        const double deadline = static_cast<double>(spec.dispatch) +
            static_cast<double>(spec.slaLatency);
        snap.slackCycles = deadline - static_cast<double>(soc.now());
    } else {
        // Ablation: static priority only (slack -> infinity kills the
        // remaining/slack term).
        snap.slackCycles = 1e18;
    }

    const runtime::ContentionDecision d = cm_.onBlockBoundary(snap);
    stats_.reconfigurations++;
    if (d.contention)
        stats_.contentionDetected++;
    if (cfg_.enableThrottling)
        soc.configureThrottle(id, d.hwConfig);
    return d.contention;
}

void
MocaPolicy::reconfigureCorunners(sim::Soc &soc, int except_id)
{
    // "The MoCA hardware engine is reconfigured each time the dynamic
    // scores are updated" (Sec. III-C): once contention is detected,
    // every co-runner's allocation is refreshed so the aggregate
    // issue rate respects the DRAM bandwidth.
    for (int id : soc.runningJobs()) {
        if (id == except_id)
            continue;
        if (soc.jobState(id) == sim::JobState::Running)
            reconfigure(soc, id);
    }
}

const sched::SchedTask &
MocaPolicy::cachedTask(const sim::Soc &soc, int id, int per_slot)
{
    if (per_slot != task_cache_per_slot_) {
        task_cache_.clear();
        task_cache_per_slot_ = per_slot;
    }
    if (static_cast<std::size_t>(id) >= task_cache_.size())
        task_cache_.resize(static_cast<std::size_t>(id) + 1);
    sched::SchedTask &t = task_cache_[static_cast<std::size_t>(id)];
    if (t.id != id) {
        const sim::JobSpec &spec = soc.job(id).spec;
        const ModelEstimate &est =
            modelEstimate(*spec.model, per_slot);
        t.id = id;
        t.priority = spec.priority;
        t.dispatched = spec.dispatch;
        t.estimatedTime = est.time;
        t.estimatedAvgBw = est.bw;
    }
    return t;
}

void
MocaPolicy::ingestArrivals(const sim::Soc &soc)
{
    if (bound_soc_ != &soc || soc.arrivedCount() < arrival_cursor_) {
        // New (or restarted) simulation: drop the incremental state.
        buckets_.clear();
        bucket_index_.clear();
        arrival_cursor_ = 0;
        task_cache_.clear();
        task_cache_per_slot_ = -1;
        bound_soc_ = &soc;
    }
    const std::vector<int> &order = soc.arrivalOrder();
    const std::size_t arrived = soc.arrivedCount();
    for (; arrival_cursor_ < arrived; ++arrival_cursor_) {
        const int id = order[arrival_cursor_];
        const sim::JobSpec &spec = soc.job(id).spec;
        const std::uint64_t key = (spec.model->uid() << 8) |
            (static_cast<std::uint64_t>(spec.priority) & 0xff);
        const auto [it, fresh] = bucket_index_.try_emplace(
            key, static_cast<int>(buckets_.size()));
        if (fresh)
            buckets_.emplace_back();
        buckets_[static_cast<std::size_t>(it->second)]
            .fifo.push_back(id);
    }
}

void
MocaPolicy::admitJobs(sim::Soc &soc)
{
    const int per_slot = tilesPerSlot(soc);
    const int slots_free = soc.freeTiles() / per_slot;
    if (slots_free <= 0)
        return;
    ingestArrivals(soc);
    if (soc.waitingJobs().empty())
        return;

    // Bias the pick against the running mix: if the current
    // co-runners are mostly memory-intensive, prefer a compute-bound
    // task (and vice versa) so the co-scheduled set stays balanced.
    // Depends only on the running set and its tile counts, so it is
    // recomputed only when the running epoch moves.
    if (soc.runningEpoch() != bias_epoch_) {
        auto bias = sched::MocaScheduler::MixBias::None;
        int mem = 0, total = 0;
        for (int id : soc.runningJobs()) {
            const double bw = modelEstimate(
                *soc.job(id).spec.model,
                std::max(1, soc.jobTiles(id))).bw;
            ++total;
            if (bw > 0.5 * soc.config().dramBytesPerCycle)
                ++mem;
        }
        if (total > 0 && 2 * mem >= total + 1)
            bias = sched::MocaScheduler::MixBias::PreferNonMem;
        else if (total > 1 && mem == 0)
            bias = sched::MocaScheduler::MixBias::PreferMem;
        bias_memo_ = bias;
        bias_epoch_ = soc.runningEpoch();
    }
    const auto bias = bias_memo_;

    // Candidate harvest: the first `slots_free` still-waiting entries
    // of each bucket cover every task the round's per-class top-k
    // selection can pick (see AdmitBucket); the selection itself then
    // applies the global (score, id) order over this small set,
    // decision-identical to scanning the full waiting backlog.
    admit_scratch_.clear();
    for (AdmitBucket &b : buckets_) {
        while (b.head < b.fifo.size() &&
               soc.jobState(b.fifo[b.head]) != sim::JobState::Waiting)
            ++b.head; // Admitted/finished: popped for good.
        int need = slots_free;
        for (std::size_t i = b.head;
             i < b.fifo.size() && need > 0; ++i) {
            const int id = b.fifo[i];
            if (soc.jobState(id) != sim::JobState::Waiting)
                continue; // Out-of-band admission hole.
            admit_scratch_.push_back(id);
            --need;
        }
    }

    const std::vector<int> group = scheduler_.selectGroupIds(
        admit_scratch_,
        [&](int id) -> const sched::SchedTask * {
            return &cachedTask(soc, id, per_slot);
        },
        soc.now(), slots_free, bias);
    for (int id : group) {
        if (soc.freeTiles() < per_slot)
            break;
        soc.startJob(id, per_slot);
        stats_.jobsAdmitted++;
        reconfigure(soc, id);
    }
}

void
MocaPolicy::maybeRepartition(sim::Soc &soc, sim::SchedEvent event)
{
    if (!cfg_.enableComputeRepartition)
        return;
    const int per_slot = tilesPerSlot(soc);
    const auto running = soc.runningJobs();
    const auto waiting = soc.waitingJobs();
    const double migration =
        static_cast<double>(soc.config().migrationCycles);

    if (waiting.empty() && running.size() == 1 &&
        soc.freeTiles() > 0) {
        // Expand a lone job when the remaining work amortizes the
        // migration penalty.
        const int id = running.front();
        if (soc.jobStallUntil(id) > soc.now())
            return;
        const double remain = estimator_
            .estimateRemaining(*soc.job(id).spec.model,
                               soc.jobLayer(id), soc.jobTiles(id))
            .prediction;
        if (remain > cfg_.repartitionBenefit * migration) {
            soc.resizeJob(id, soc.jobTiles(id) + soc.freeTiles());
            stats_.repartitions++;
            reconfigure(soc, id);
        }
        return;
    }

    if (event == sim::SchedEvent::JobArrival && !waiting.empty() &&
        soc.freeTiles() < per_slot) {
        // Shrink an expanded job back to one slot so new arrivals can
        // be admitted, when it still has enough work left to justify
        // paying the migration.
        for (int id : running) {
            if (soc.jobTiles(id) <= per_slot)
                continue;
            const double remain = estimator_
                .estimateRemaining(*soc.job(id).spec.model,
                                   soc.jobLayer(id), soc.jobTiles(id))
                .prediction;
            if (remain > cfg_.repartitionBenefit * migration) {
                soc.resizeJob(id, per_slot);
                stats_.repartitions++;
                reconfigure(soc, id);
                break;
            }
        }
    }
}

void
MocaPolicy::schedule(sim::Soc &soc, sim::SchedEvent event)
{
    maybeRepartition(soc, event);
    admitJobs(soc);

    // Fallback: if nothing could be admitted at slot granularity but
    // the machine is otherwise idle, run the best waiting job on
    // whatever tiles remain (avoids idling a nearly-free SoC).
    if (soc.runningJobs().empty() && !soc.waitingJobs().empty() &&
        soc.freeTiles() > 0) {
        // startJob invalidates the waitingJobs() view: grab the id
        // before mutating.
        const int id = soc.waitingJobs().front();
        soc.startJob(id,
                     std::min(soc.freeTiles(), tilesPerSlot(soc)));
        reconfigure(soc, id);
    }
}

void
MocaPolicy::onBlockBoundary(sim::Soc &soc, int id)
{
    if (reconfigure(soc, id))
        reconfigureCorunners(soc, id);
}

void
MocaPolicy::onJobComplete(sim::Soc &, int id)
{
    cm_.onJobComplete(id);
}

} // namespace moca
