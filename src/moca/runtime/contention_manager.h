/**
 * @file
 * Algorithm 2 of the paper: the MoCA runtime's contention detection
 * and hardware update.  Invoked per job at layer-block boundaries, it
 *
 *  1. estimates the upcoming block's latency and DRAM bandwidth
 *     demand with Algorithm 1;
 *  2. computes the job's *dynamic priority score*
 *       score = user_priority + remain_prediction / slack
 *     so that both the static priority and the time left to the SLA
 *     target shape the allocation;
 *  3. sums co-runners' bandwidth usage from the scoreboard and checks
 *     for overflow against the DRAM bandwidth;
 *  4. on contention, shaves the job's bandwidth allocation in
 *     proportion to the co-runners' score-weighted usage and programs
 *     the MoCA hardware throttle (window + threshold_load); without
 *     contention the throttle is disabled (window = 0).
 *
 * Note on units: the paper's listing sets
 *   threshold_load = Total_MEM / Num_tile, window = Prediction / Num_tile
 * which preserves the intended aggregate rate only for Num_tile = 1.
 * We keep the window = Prediction / Num_tile responsiveness and size
 * the per-window access budget so the per-tile byte rate equals
 * (Total_MEM / Num_tile) / Prediction, preserving the allocation for
 * any tile count.
 */

#ifndef MOCA_RUNTIME_CONTENTION_MANAGER_H
#define MOCA_RUNTIME_CONTENTION_MANAGER_H

#include "moca/hw/throttle_engine.h"
#include "moca/runtime/latency_model.h"
#include "moca/runtime/scoreboard.h"

namespace moca::runtime {

/** Inputs describing the job at a reconfiguration point. */
struct JobSnapshot
{
    int appId = -1;
    const dnn::Model *model = nullptr;
    std::size_t nextLayer = 0; ///< First layer still to execute.
    int numTiles = 1;
    int userPriority = 0;
    double slackCycles = 0.0;  ///< Time left to the SLA target.
};

/** Decision produced by one Algorithm 2 invocation. */
struct ContentionDecision
{
    bool contention = false;     ///< overflow > 0 detected.
    double bwRate = 0.0;         ///< Allocated DRAM rate, bytes/cycle.
    double score = 0.0;          ///< Dynamic priority score.
    double prediction = 0.0;     ///< (Re-)predicted block latency.
    hw::ThrottleConfig hwConfig; ///< Window/threshold for the engines.

    /**
     * Decision metadata for event-driven callers: cycles until the
     * *programmed* throttle state first changes on its own — one
     * monitoring window (0 when no throttle was scheduled).  Note
     * the live engine is the authority once programmed
     * (hw::ThrottleEngine::cyclesUntilNextChange additionally
     * reports the reconfiguration stall); the simulator's event
     * kernel bounds its steps on the engine, not on this field.
     */
    Cycles nextChangeCycles = 0;
};

/** Tuning of the Algorithm 2 hardware-update step. */
struct ContentionTuning
{
    /** Fixed monitoring-window length in cycles; 0 derives the
     *  window from the block prediction (the paper's listing). */
    Cycles windowOverrideCycles = 0;

    /** Size thresholds from the equal 1/N channel share instead of
     *  the score-weighted allocation (ablation). */
    bool fixedThreshold = false;
};

/** The MoCA runtime's contention detection + HW update module. */
class ContentionManager
{
  public:
    explicit ContentionManager(const sim::SocConfig &cfg,
                               bool sparsity_aware = true,
                               const ContentionTuning &tuning = {})
        : cfg_(cfg), tuning_(tuning), model_(cfg, sparsity_aware)
    {
    }

    /**
     * Run Algorithm 2 for one job at a block boundary.  Updates the
     * scoreboard with the job's new bandwidth usage and score and
     * returns the throttle configuration to program.
     */
    ContentionDecision onBlockBoundary(const JobSnapshot &snap);

    /** Remove a finished job from the scoreboard. */
    void onJobComplete(int app_id) { scoreboard_.remove(app_id); }

    const Scoreboard &scoreboard() const { return scoreboard_; }
    const LatencyModel &latencyModel() const { return model_; }

    /** Minimum slack used in the urgency ratio. */
    static constexpr double kMinSlack = 1000.0;

    /** Cap on the remaining/slack urgency boost (2x the 0..11
     *  static-priority range). */
    static constexpr double kMaxUrgency = 24.0;

    /** Fraction of DRAM bandwidth a block must demand before the
     *  throttle is worth programming — the same 0.5 x DRAM_BW
     *  memory-intensiveness cutoff Algorithm 3 uses. */
    static constexpr double kThrottleWorthyShare = 0.5;

  private:
    sim::SocConfig cfg_;
    ContentionTuning tuning_;
    LatencyModel model_;
    Scoreboard scoreboard_;
};

} // namespace moca::runtime

#endif // MOCA_RUNTIME_CONTENTION_MANAGER_H
