/**
 * @file
 * Algorithm 1 of the paper: the MoCA runtime's per-layer latency and
 * memory-requirement estimation.  Unlike compute-oriented estimators
 * in prior multi-tenant work, it models data movement across the full
 * memory system (shared L2 and DRAM):
 *
 *   COMPUTE layers (conv / FC):
 *     Compute_ideal = padded-MAC count / num_PEs
 *     Total_MEM     = total traffic to shared L2
 *     From_DRAM     = weights + outputs + bias
 *                     (+ input image when it exceeds the cache,
 *                      + tiling reloads when the working tile does)
 *     Memory_ideal  = From_DRAM / DRAM_BW + Total_MEM / L2_BW
 *     Prediction    = max(C, M) + min(C, M) * overlap_f
 *
 *   MEM layers (pool / add / LRN / global pool):
 *     Prediction    = From_DRAM / DRAM_BW + Total_MEM / L2_BW
 *
 * This implementation is deliberately independent of the simulator's
 * ground-truth traffic model so that the prediction-error validation
 * (paper: within 10% of measured runtimes) is meaningful.
 */

#ifndef MOCA_RUNTIME_LATENCY_MODEL_H
#define MOCA_RUNTIME_LATENCY_MODEL_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dnn/model.h"
#include "sim/config.h"

namespace moca::runtime {

/** Algorithm 1 outputs for one layer (or an aggregated block). */
struct LayerEstimate
{
    double computeIdeal = 0.0; ///< Compute-only cycles.
    double memoryIdeal = 0.0;  ///< Memory-only cycles (L2 + DRAM).
    double prediction = 0.0;   ///< Estimated isolated latency.
    std::uint64_t totalMem = 0; ///< Bytes to/from shared L2.
    std::uint64_t fromDram = 0; ///< Subset of totalMem hitting DRAM.

    /** Average DRAM bandwidth demand, From_DRAM / Prediction
     *  (Algorithm 2 line 4). */
    double bwRate() const
    {
        return prediction > 0.0
            ? static_cast<double>(fromDram) / prediction : 0.0;
    }

    /** Accumulate another estimate (for blocks/models). */
    LayerEstimate &operator+=(const LayerEstimate &other);
};

/** The MoCA runtime's analytical performance model. */
class LatencyModel
{
  public:
    /**
     * @param sparsity_aware when false, the model assumes dense
     *        weights even for pruned layers — the failure mode the
     *        paper's Limitations section warns about ("it can be
     *        challenging to estimate the memory requirements of
     *        [sparse] DNN layers during runtime").  The sparsity
     *        extension bench quantifies the resulting error.
     */
    explicit LatencyModel(const sim::SocConfig &cfg,
                          bool sparsity_aware = true)
        : cfg_(cfg), sparsityAware_(sparsity_aware)
    {
    }

    /** Algorithm 1 for a single layer on `num_tiles` tiles. */
    LayerEstimate estimateLayer(const dnn::Layer &layer,
                                int num_tiles) const;

    /** Aggregate estimate for one layer block. */
    LayerEstimate estimateBlock(const dnn::Model &model,
                                std::size_t block_idx,
                                int num_tiles) const;

    /** Aggregate estimate over layers [from_layer, end). */
    LayerEstimate estimateRemaining(const dnn::Model &model,
                                    std::size_t from_layer,
                                    int num_tiles) const;

    /** Whole-model isolated latency estimate in cycles. */
    double estimateModel(const dnn::Model &model, int num_tiles) const;

    /**
     * Average DRAM bandwidth demand of the whole model (bytes/cycle);
     * the scheduler's memory-intensiveness test (Algorithm 3 line 7).
     */
    double estimateAvgBw(const dnn::Model &model, int num_tiles) const;

    const sim::SocConfig &config() const { return cfg_; }
    bool sparsityAware() const { return sparsityAware_; }

  private:
    /**
     * Memoized per-(model, tile-count) estimates.  Algorithm 1 is
     * pure in (layer, num_tiles, cfg), so per-layer estimates — and
     * the aggregates the runtime asks for millions of times per
     * stress run — are computed once per model/tile pair.  Sums are
     * accumulated in the same forward layer order as the uncached
     * loops so results stay bit-identical.
     */
    struct ModelCache
    {
        std::vector<LayerEstimate> perLayer; ///< estimateLayer(i).
        /** suffix[i] = sum of perLayer[i..L-1], forward order
         *  (== the uncached estimateRemaining(i)); suffix[L] = {}. */
        std::vector<LayerEstimate> suffix;
        std::vector<LayerEstimate> perBlock; ///< estimateBlock(b).
    };

    const ModelCache &cacheFor(const dnn::Model &model,
                               int num_tiles) const;

    sim::SocConfig cfg_;
    bool sparsityAware_ = true;
    /** Audited for R1: keyed lookups only (find/emplace), never
     *  iterated — sums come from the ordered suffix vectors. */
    // detlint: allow(R4) per-worker instance; lookup-only memo
    mutable std::unordered_map<std::uint64_t, ModelCache> cache_;
};

/**
 * Overlap-factor tuning utility (Sec. III-C): pick the overlap_f that
 * minimizes prediction error against a handful of measured layer
 * runtimes collected before inference queries start.
 *
 * @param measured pairs of (layer, measured isolated cycles on
 *        `num_tiles` tiles).
 * @return the f in [0, 1] (granularity 0.01) minimizing mean absolute
 *         relative error.
 */
double tuneOverlapF(const sim::SocConfig &base_cfg,
                    const std::vector<std::pair<const dnn::Layer *,
                                                double>> &measured,
                    int num_tiles);

} // namespace moca::runtime

#endif // MOCA_RUNTIME_LATENCY_MODEL_H
