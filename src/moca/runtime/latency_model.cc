#include "moca/runtime/latency_model.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace moca::runtime {

LayerEstimate &
LayerEstimate::operator+=(const LayerEstimate &other)
{
    computeIdeal += other.computeIdeal;
    memoryIdeal += other.memoryIdeal;
    prediction += other.prediction;
    totalMem += other.totalMem;
    fromDram += other.fromDram;
    return *this;
}

LayerEstimate
LatencyModel::estimateLayer(const dnn::Layer &layer, int num_tiles) const
{
    if (num_tiles < 1)
        panic("estimateLayer with %d tiles", num_tiles);

    LayerEstimate est;
    // Attainable per-job rates: the shared-resource bandwidth capped
    // by the job's own DMA issue width (num_tiles engines).
    const double dma = cfg_.tileDmaBytesPerCycle * num_tiles;
    const double dram_bw = std::min(cfg_.dramBytesPerCycle, dma);
    const double l2_bw = std::min(cfg_.l2BytesPerCycle(), dma);

    const std::uint64_t in = layer.inputBytes();
    const std::uint64_t out = layer.outputBytes();
    const std::uint64_t w = sparsityAware_
        ? layer.weightBytes() : layer.denseWeightBytes();
    const std::uint64_t bias = layer.biasBytes();
    const std::uint64_t cache = cfg_.l2Bytes;

    // The runtime is co-designed with the dispatch software: it knows
    // the per-layer multi-tile coordination cost and folds it into
    // the compute-side estimate.
    double sync = 0.0;
    for (int t = 1; t < num_tiles; t *= 2)
        sync += static_cast<double>(cfg_.interTileSyncCycles);

    if (layer.layerClass() == dnn::LayerClass::Mem) {
        // Algorithm 1, MEM branch (lines 19-23).
        est.totalMem = in + out;
        // InputB (the operand without a fresh on-chip producer) and
        // the output move through DRAM.
        const std::uint64_t input_b =
            layer.kind == dnn::LayerKind::Add ? in / 2 : 0;
        est.fromDram = input_b + out;
        est.memoryIdeal = std::max(
            static_cast<double>(est.fromDram) / dram_bw,
            static_cast<double>(est.totalMem) / l2_bw);
        est.computeIdeal = sync;
        est.prediction = est.memoryIdeal + sync;
        return est;
    }

    // --- COMPUTE branch (lines 1-17) -----------------------------------

    // calc_MAC_count: MACs padded to the systolic-array dimensions
    // (the array processes full 16x16 tiles regardless of ragged
    // edges), split across the job's tiles.
    const auto a = static_cast<std::uint64_t>(cfg_.arrayDim);
    std::uint64_t m, k, n, groups;
    if (layer.kind == dnn::LayerKind::Dense) {
        m = 1;
        k = static_cast<std::uint64_t>(layer.inC);
        n = static_cast<std::uint64_t>(layer.outC);
        groups = 1;
    } else {
        m = static_cast<std::uint64_t>(layer.outH()) * layer.outW();
        k = static_cast<std::uint64_t>(layer.kernel) * layer.kernel *
            (static_cast<std::uint64_t>(layer.inC) / layer.groups);
        n = static_cast<std::uint64_t>(layer.outC) / layer.groups;
        groups = static_cast<std::uint64_t>(layer.groups);
    }
    const std::uint64_t tiles_k = ceilDiv(k, a);
    const std::uint64_t tiles_n = ceilDiv(n, a);
    const auto t = static_cast<std::uint64_t>(num_tiles);
    std::uint64_t per_group_cycles;
    if (m >= t) {
        per_group_cycles =
            tiles_k * tiles_n * std::max<std::uint64_t>(ceilDiv(m, t), a);
    } else {
        per_group_cycles =
            tiles_k * ceilDiv(tiles_n, t) * std::max<std::uint64_t>(m, a);
    }
    const double density = sparsityAware_
        ? std::max(0.1, std::min(1.0, layer.weightDensity))
        : 1.0;
    est.computeIdeal =
        static_cast<double>(per_group_cycles * groups) * density *
        (1.0 + cfg_.multiTileSerialFraction * (num_tiles - 1)) +
        sync;

    // Total traffic to the shared L2 (loads + stores), including the
    // streaming reloads chosen by the tiling (lines 5, 10-11).
    const std::uint64_t sp_half = cfg_.scratchpadBytes / 2;
    const std::uint64_t w_chunks =
        std::max<std::uint64_t>(1, ceilDiv(w, sp_half));
    const std::uint64_t i_chunks =
        std::max<std::uint64_t>(1, ceilDiv(in, sp_half));
    const std::uint64_t opt_w_resident = w + in * w_chunks;
    const std::uint64_t opt_i_resident = in + w * i_chunks;

    std::uint64_t stream;
    std::uint64_t reloaded;       // bytes fetched more than once
    std::uint64_t streamed_operand; // which operand is re-streamed
    if (opt_w_resident <= opt_i_resident) {
        stream = opt_w_resident;
        reloaded = in * (w_chunks - 1);
        streamed_operand = in;
    } else {
        stream = opt_i_resident;
        reloaded = w * (i_chunks - 1);
        streamed_operand = w;
    }
    est.totalMem = stream + out + bias;

    // From_DRAM (lines 6-12).
    est.fromDram = w + bias + out;
    if (in > cache)
        est.fromDram += in; // input activation got evicted
    if (reloaded > 0 && streamed_operand > cache)
        est.fromDram += reloaded; // tile got evicted between passes

    // Memory_ideal considers both DRAM and L2 transaction time
    // (line 13).  The paper's listing adds the two terms; on our
    // memory system DRAM refills stream through the L2 concurrently,
    // so the binding channel (max) is the physically consistent
    // composition — see DESIGN.md.
    est.memoryIdeal = std::max(
        static_cast<double>(est.fromDram) / dram_bw,
        static_cast<double>(est.totalMem) / l2_bw);

    // Overall latency from compute & memory time with the
    // compute-to-memory overlap factor (lines 15-16).
    est.prediction =
        std::max(est.computeIdeal, est.memoryIdeal) +
        std::min(est.computeIdeal, est.memoryIdeal) * cfg_.overlapF;
    return est;
}

const LatencyModel::ModelCache &
LatencyModel::cacheFor(const dnn::Model &model, int num_tiles) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(model.uid()) << 16) |
        static_cast<std::uint64_t>(num_tiles & 0xffff);
    const auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    ModelCache c;
    const std::size_t n = model.numLayers();
    c.perLayer.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        c.perLayer.push_back(
            estimateLayer(model.layer(i), num_tiles));

    // Each suffix is its own forward-order sum (not built back to
    // front), so every entry reproduces the uncached loop's floating
    // point rounding exactly.
    c.suffix.resize(n + 1);
    for (std::size_t from = 0; from < n; ++from) {
        LayerEstimate est;
        for (std::size_t i = from; i < n; ++i)
            est += c.perLayer[i];
        c.suffix[from] = est;
    }

    const auto &blocks = model.blocks();
    c.perBlock.reserve(blocks.size());
    for (const auto &b : blocks) {
        LayerEstimate est;
        for (std::size_t i = b.first; i < b.first + b.count; ++i)
            est += c.perLayer[i];
        c.perBlock.push_back(est);
    }
    return cache_.emplace(key, std::move(c)).first->second;
}

LayerEstimate
LatencyModel::estimateBlock(const dnn::Model &model,
                            std::size_t block_idx, int num_tiles) const
{
    if (block_idx >= model.blocks().size())
        panic("estimateBlock: block %zu of %zu", block_idx,
              model.blocks().size());
    return cacheFor(model, num_tiles).perBlock[block_idx];
}

LayerEstimate
LatencyModel::estimateRemaining(const dnn::Model &model,
                                std::size_t from_layer,
                                int num_tiles) const
{
    const ModelCache &c = cacheFor(model, num_tiles);
    if (from_layer >= c.suffix.size())
        return LayerEstimate{};
    return c.suffix[from_layer];
}

double
LatencyModel::estimateModel(const dnn::Model &model, int num_tiles) const
{
    return estimateRemaining(model, 0, num_tiles).prediction;
}

double
LatencyModel::estimateAvgBw(const dnn::Model &model, int num_tiles) const
{
    const LayerEstimate est = estimateRemaining(model, 0, num_tiles);
    return est.bwRate();
}

double
tuneOverlapF(const sim::SocConfig &base_cfg,
             const std::vector<std::pair<const dnn::Layer *,
                                         double>> &measured,
             int num_tiles)
{
    if (measured.empty())
        fatal("tuneOverlapF needs at least one measurement");

    double best_f = 0.0;
    double best_err = -1.0;
    for (int step = 0; step <= 100; ++step) {
        sim::SocConfig cfg = base_cfg;
        cfg.overlapF = step / 100.0;
        LatencyModel model(cfg);
        double err = 0.0;
        for (const auto &[layer, cycles] : measured) {
            const double pred =
                model.estimateLayer(*layer, num_tiles).prediction;
            err += std::abs(pred - cycles) / cycles;
        }
        err /= static_cast<double>(measured.size());
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            best_f = cfg.overlapF;
        }
    }
    return best_f;
}

} // namespace moca::runtime
