#include "moca/runtime/contention_manager.h"

#include <algorithm>

#include "common/log.h"
#include "sim/arbiter.h"

namespace moca::runtime {

ContentionDecision
ContentionManager::onBlockBoundary(const JobSnapshot &snap)
{
    if (snap.model == nullptr)
        panic("contention manager: snapshot without model");

    ContentionDecision d;

    // Algorithm 2 lines 1-4: estimate the upcoming block and the
    // remaining network with Algorithm 1.
    const auto &blocks = snap.model->blocks();
    std::size_t block_idx = 0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (snap.nextLayer >= blocks[b].first &&
            snap.nextLayer < blocks[b].first + blocks[b].count) {
            block_idx = b;
            break;
        }
    }
    const LayerEstimate block =
        model_.estimateBlock(*snap.model, block_idx, snap.numTiles);
    const LayerEstimate remain =
        model_.estimateRemaining(*snap.model, snap.nextLayer,
                                 snap.numTiles);

    // Unthrottled bandwidth demand of the upcoming block (line 4).
    const double demand = block.bwRate();

    // Lines 5-6: dynamic priority score from the static priority and
    // the remaining-work-to-slack ratio.  Two guards keep the urgency
    // term meaningful: a job whose deadline has already passed cannot
    // be saved and falls back to its static priority (no inversion by
    // hopeless jobs), and the urgency boost is capped at twice the
    // static-priority range.
    if (snap.slackCycles <= 0.0) {
        d.score = static_cast<double>(snap.userPriority);
    } else {
        const double slack = std::max(kMinSlack, snap.slackCycles);
        const double urgency =
            std::min(kMaxUrgency, remain.prediction / slack);
        d.score = static_cast<double>(snap.userPriority) + urgency;
    }

    // Lines 9-14: publish this job's demand, then compare the
    // system's total demand against the DRAM bandwidth ceiling.
    scoreboard_.update(snap.appId, demand, d.score);
    double total_demand = 0.0;
    for (const auto &[id, e] : scoreboard_.entries())
        total_demand += e.bwRate;
    const double overflow = total_demand - cfg_.dramBytesPerCycle;

    // Only memory-bounded execution is worth regulating: the paper
    // resolves contention "by throttling excessive memory accesses
    // from memory-bounded layers up to a limit" (Sec. V-C).  A
    // compute-bound block's issue rate is low anyway, and capping it
    // would only forfeit work-conservation.
    const bool mem_hungry =
        demand > kThrottleWorthyShare * cfg_.dramBytesPerCycle;

    if (overflow > 0.0 && mem_hungry) {
        // Lines 15-18: contention detected.  Allocate the channel in
        // proportion to score-weighted demand, capped at each job's
        // own demand (leftover redistributes).  This is the stable
        // fixed point of the listing's sequential overflow shaving:
        // every job computing it from the same scoreboard arrives at
        // the same allocation, so co-runner sweeps cannot oscillate.
        std::vector<sim::BwDemand> req;
        std::size_t self_idx = 0, i = 0;
        for (const auto &[id, e] : scoreboard_.entries()) {
            if (id == snap.appId)
                self_idx = i;
            req.push_back({e.bwRate, e.score + 1.0});
            ++i;
        }
        const auto grants = sim::allocateBandwidthProportional(
            req, cfg_.dramBytesPerCycle);
        d.contention = true;
        d.bwRate = std::max(grants[self_idx],
                            0.05 * cfg_.dramBytesPerCycle);
        if (tuning_.fixedThreshold) {
            // Score-oblivious ablation: every throttled job gets the
            // equal 1/N slice of the channel, capped at its demand.
            d.bwRate = std::min(
                demand,
                cfg_.dramBytesPerCycle /
                    static_cast<double>(scoreboard_.entries().size()));
            d.bwRate = std::max(d.bwRate,
                                0.05 * cfg_.dramBytesPerCycle);
        }

        // Line 18: update the prediction for the allocated rate.
        d.prediction = static_cast<double>(block.fromDram) / d.bwRate;

        // Lines 20-21 (see header comment on units): window =
        // Prediction / Num_tile, clamped so pacing stays smooth
        // relative to layer lengths; the per-window access budget is
        // sized so the per-tile byte rate matches the allocation,
        // with a modest burst margin (Algorithm 1's estimates are
        // conservative) that keeps the channel work-conserving when
        // co-runners are in compute phases.
        const double window_d = tuning_.windowOverrideCycles > 0
            ? static_cast<double>(tuning_.windowOverrideCycles)
            : std::clamp(
                  d.prediction / static_cast<double>(snap.numTiles),
                  64.0, 65536.0);
        const double headroom = 1.15;
        const double per_tile_rate = headroom *
            (static_cast<double>(block.totalMem) / snap.numTiles) /
            d.prediction;
        const double thr_bytes = per_tile_rate * window_d;
        d.hwConfig.windowCycles = static_cast<Cycles>(window_d);
        d.hwConfig.thresholdLoad = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                thr_bytes / static_cast<double>(cfg_.dmaBeatBytes)));
        d.nextChangeCycles = d.hwConfig.windowCycles;
    } else {
        // Lines 22-24: no contention (or not memory-bounded enough
        // to regulate): no throttling.
        d.contention = overflow > 0.0;
        d.bwRate = demand;
        d.prediction = block.prediction;
        d.hwConfig = hw::ThrottleConfig{}; // window = 0, threshold = 0
    }
    return d;
}

} // namespace moca::runtime
