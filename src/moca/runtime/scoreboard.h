/**
 * @file
 * The MoCA runtime's scoreboard (Sec. IV-A: "a lightweight software
 * look-up table ... used to manage the bandwidth usage of each
 * application").  Each running application records its current DRAM
 * bandwidth usage (BW_rate, bytes/cycle) and its dynamic priority
 * score; Algorithm 2 reads co-runners' entries to detect contention
 * and compute the weighted reallocation.
 */

#ifndef MOCA_RUNTIME_SCOREBOARD_H
#define MOCA_RUNTIME_SCOREBOARD_H

#include <map>

namespace moca::runtime {

/** One application's scoreboard entry. */
struct ScoreboardEntry
{
    /** Current-block DRAM bandwidth demand, bytes/cycle (the
     *  unthrottled rate Algorithm 1 predicts). */
    double bwRate = 0.0;
    double score = 0.0; ///< Dynamic priority score (Algorithm 2).
};

/** Bandwidth-usage lookup table keyed by application (job) id. */
class Scoreboard
{
  public:
    /** Insert or update an application's entry. */
    void update(int app_id, double bw_rate, double score);

    /** Remove a finished application. */
    void remove(int app_id);

    bool contains(int app_id) const { return entries_.count(app_id); }

    const ScoreboardEntry &entry(int app_id) const;

    /** Sum of co-runners' bandwidth usage, excluding `app_id`
     *  (Algorithm 2 line 10). */
    double otherBwRate(int app_id) const;

    /** Weighted sum of co-runners' score x BW usage, excluding
     *  `app_id` (Algorithm 2 line 11). */
    double otherWeightSum(int app_id) const;

    std::size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    const std::map<int, ScoreboardEntry> &entries() const
    {
        return entries_;
    }

  private:
    std::map<int, ScoreboardEntry> entries_;
};

} // namespace moca::runtime

#endif // MOCA_RUNTIME_SCOREBOARD_H
