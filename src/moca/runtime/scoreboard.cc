#include "moca/runtime/scoreboard.h"

#include "common/log.h"

namespace moca::runtime {

void
Scoreboard::update(int app_id, double bw_rate, double score)
{
    entries_[app_id] = ScoreboardEntry{bw_rate, score};
}

void
Scoreboard::remove(int app_id)
{
    entries_.erase(app_id);
}

const ScoreboardEntry &
Scoreboard::entry(int app_id) const
{
    auto it = entries_.find(app_id);
    if (it == entries_.end())
        panic("scoreboard has no entry for app %d", app_id);
    return it->second;
}

double
Scoreboard::otherBwRate(int app_id) const
{
    double total = 0.0;
    for (const auto &[id, e] : entries_)
        if (id != app_id)
            total += e.bwRate;
    return total;
}

double
Scoreboard::otherWeightSum(int app_id) const
{
    double total = 0.0;
    for (const auto &[id, e] : entries_)
        if (id != app_id)
            total += e.score * e.bwRate;
    return total;
}

} // namespace moca::runtime
