#include "moca/hw/throttle_engine.h"

#include <algorithm>

namespace moca::hw {

void
ThrottleEngine::configure(const ThrottleConfig &cfg)
{
    cfg_ = cfg;
    window_pos_ = 0;
    window_count_ = 0;
    reconfig_stall_ = kReconfigCycles;
    stats_.reconfigurations++;
}

void
ThrottleEngine::rollWindowIfNeeded()
{
    if (!cfg_.enabled())
        return;
    while (window_pos_ >= cfg_.windowCycles) {
        window_pos_ -= cfg_.windowCycles;
        window_count_ = 0;
        stats_.windowsElapsed++;
    }
}

bool
ThrottleEngine::throttled() const
{
    if (reconfig_stall_ > 0)
        return true;
    if (!cfg_.enabled())
        return false;
    return window_count_ >= cfg_.thresholdLoad;
}

Cycles
ThrottleEngine::cyclesUntilWindowEnd() const
{
    if (!cfg_.enabled())
        return 0;
    return cfg_.windowCycles - window_pos_;
}

Cycles
ThrottleEngine::cyclesUntilNextChange() const
{
    if (reconfig_stall_ > 0)
        return reconfig_stall_;
    return cyclesUntilWindowEnd();
}

bool
ThrottleEngine::step(bool wants_issue)
{
    bool granted = false;
    if (reconfig_stall_ > 0) {
        reconfig_stall_--;
        if (wants_issue)
            stats_.bubblesInserted++;
    } else if (!wants_issue) {
        // Nothing pending; window time still elapses.
    } else if (!cfg_.enabled() || window_count_ < cfg_.thresholdLoad) {
        window_count_++;
        stats_.accessesGranted++;
        granted = true;
    } else {
        // Threshold exceeded: insert a bubble (stall memory issue
        // until the runtime updates us or the window rolls over).
        stats_.bubblesInserted++;
    }

    if (cfg_.enabled()) {
        window_pos_++;
        rollWindowIfNeeded();
    }
    return granted;
}

std::uint64_t
ThrottleEngine::advance(Cycles cycles, std::uint64_t max_requests)
{
    std::uint64_t granted = 0;

    // Burn reconfiguration dead time first.
    const Cycles dead = std::min<Cycles>(reconfig_stall_, cycles);
    reconfig_stall_ -= dead;
    cycles -= dead;
    if (max_requests > 0)
        stats_.bubblesInserted += dead;
    if (cfg_.enabled()) {
        window_pos_ += dead;
        rollWindowIfNeeded();
    }

    if (!cfg_.enabled()) {
        // Unthrottled: one access per cycle up to demand.
        granted = std::min<std::uint64_t>(cycles, max_requests);
        stats_.accessesGranted += granted;
        return granted;
    }

    while (cycles > 0 && granted < max_requests) {
        const Cycles to_window_end = cfg_.windowCycles - window_pos_;
        const Cycles span = std::min<Cycles>(cycles, to_window_end);

        const std::uint64_t window_budget =
            window_count_ >= cfg_.thresholdLoad
                ? 0
                : cfg_.thresholdLoad - window_count_;
        const std::uint64_t want = max_requests - granted;
        const std::uint64_t grant_now =
            std::min<std::uint64_t>({span, window_budget, want});

        granted += grant_now;
        window_count_ += grant_now;
        stats_.accessesGranted += grant_now;

        // Remaining cycles in this span are bubbles if demand remains.
        if (grant_now < span && granted < max_requests)
            stats_.bubblesInserted += span - grant_now;

        window_pos_ += span;
        cycles -= span;
        rollWindowIfNeeded();
    }

    // Demand satisfied; let remaining cycles elapse without issue.
    if (cycles > 0 && cfg_.enabled()) {
        window_pos_ += cycles;
        rollWindowIfNeeded();
    }
    return granted;
}

std::uint64_t
ThrottleEngine::peekAllowance(Cycles cycles) const
{
    const Cycles dead = std::min<Cycles>(reconfig_stall_, cycles);
    Cycles left = cycles - dead;

    if (!cfg_.enabled())
        return left;

    Cycles pos = window_pos_ + dead;
    std::uint64_t count = window_count_;
    while (pos >= cfg_.windowCycles) {
        pos -= cfg_.windowCycles;
        count = 0;
    }

    std::uint64_t allowance = 0;
    while (left > 0) {
        const Cycles span =
            std::min<Cycles>(left, cfg_.windowCycles - pos);
        const std::uint64_t budget =
            count >= cfg_.thresholdLoad ? 0 : cfg_.thresholdLoad - count;
        allowance += std::min<std::uint64_t>(span, budget);
        left -= span;
        pos += span;
        if (pos >= cfg_.windowCycles) {
            pos = 0;
            count = 0;
        } else {
            count += std::min<std::uint64_t>(span, budget);
        }
    }
    return allowance;
}

void
ThrottleEngine::reset()
{
    window_pos_ = 0;
    window_count_ = 0;
    reconfig_stall_ = 0;
    stats_ = ThrottleStats();
}

} // namespace moca::hw
