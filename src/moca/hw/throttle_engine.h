/**
 * @file
 * The MoCA hardware engine (paper Sec. III-B, Fig. 4): a per-tile
 * *Access Counter* that tracks memory accesses issued during a
 * monitored time window, and a *Thresholding Module* that inserts
 * "bubbles" (blocks further memory request issue) once the counter
 * exceeds the threshold configured by the MoCA runtime.  Both are
 * lightweight FSMs + counters sitting between the accelerator's
 * load/store queues and its memory request generator.
 *
 * The model is cycle-accurate: step() advances one cycle and decides
 * whether a memory request may issue.  A batched advance() covers many
 * cycles at once for the quantum-stepped system simulator; property
 * tests assert the two paths agree.
 *
 * Reconfiguration costs a handful of cycles (the paper reports 5-10
 * cycles to reconfigure the DMA's issue rate); configure() models this
 * by blocking issue for `kReconfigCycles`.
 */

#ifndef MOCA_HW_THROTTLE_ENGINE_H
#define MOCA_HW_THROTTLE_ENGINE_H

#include <cstdint>

#include "common/units.h"

namespace moca::hw {

/** Runtime-programmed throttle parameters (Algorithm 2 outputs). */
struct ThrottleConfig
{
    /**
     * Monitored window length in cycles.  0 disables throttling
     * (Algorithm 2 line 23: no contention -> window = 0).
     */
    Cycles windowCycles = 0;

    /**
     * Maximum number of memory accesses permitted per window.
     * Meaningful only when windowCycles > 0.
     */
    std::uint64_t thresholdLoad = 0;

    bool enabled() const { return windowCycles > 0; }
};

/** Counters exposed for area/energy accounting and tests. */
struct ThrottleStats
{
    std::uint64_t accessesGranted = 0;
    std::uint64_t bubblesInserted = 0; ///< Cycles blocked by threshold.
    std::uint64_t windowsElapsed = 0;
    std::uint64_t reconfigurations = 0;
};

/**
 * Access Counter + Thresholding Module for one accelerator tile.
 */
class ThrottleEngine
{
  public:
    /** DMA reconfiguration latency in cycles (paper: 5-10). */
    static constexpr Cycles kReconfigCycles = 8;

    /**
     * Program a new window/threshold.  Takes effect immediately; the
     * engine blocks issue for kReconfigCycles to model the
     * configuration command latency.
     */
    void configure(const ThrottleConfig &cfg);

    /** Currently programmed configuration. */
    const ThrottleConfig &config() const { return cfg_; }

    /**
     * Advance one cycle.
     *
     * @param wants_issue the DMA has a memory request ready this cycle.
     * @return true when the request may issue (access granted and
     *         counted); false when a bubble is inserted or no request
     *         was pending.
     */
    bool step(bool wants_issue);

    /**
     * Batched equivalent of calling step(true) for `cycles` cycles
     * with at most `max_requests` requests pending.
     *
     * @return number of accesses granted during the span.
     */
    std::uint64_t advance(Cycles cycles, std::uint64_t max_requests);

    /**
     * Non-mutating version of advance(): how many accesses *could* be
     * granted over the next `cycles` cycles given the current window
     * state, assuming a request is pending every cycle.  Used by the
     * simulator's demand phase before bandwidth arbitration.
     */
    std::uint64_t peekAllowance(Cycles cycles) const;

    /** Accesses already counted in the current window. */
    std::uint64_t windowCount() const { return window_count_; }

    /** Cycles remaining until the current window rolls over. */
    Cycles cyclesUntilWindowEnd() const;

    /**
     * Cycles until the engine's issue-gating state next changes on
     * its own: the reconfiguration stall ends, or the monitored
     * window rolls over and the access budget refreshes.  0 means no
     * scheduled change (disabled and idle).  The event-driven
     * simulation kernel uses this to bound a time step instead of
     * polling the engine every quantum.
     */
    Cycles cyclesUntilNextChange() const;

    /** True when the engine is currently inserting bubbles. */
    bool throttled() const;

    const ThrottleStats &stats() const { return stats_; }

    /** Reset counters and window phase (e.g. at job start). */
    void reset();

  private:
    ThrottleConfig cfg_;
    Cycles window_pos_ = 0;       ///< Cycle offset within the window.
    std::uint64_t window_count_ = 0;
    Cycles reconfig_stall_ = 0;   ///< Remaining reconfig dead cycles.
    ThrottleStats stats_;

    void rollWindowIfNeeded();
};

} // namespace moca::hw

#endif // MOCA_HW_THROTTLE_ENGINE_H
