/**
 * @file
 * The full-stack MoCA execution policy: Algorithm 3 scheduling of
 * co-running jobs, Algorithm 2 contention detection + throttle
 * programming at layer-block boundaries, and infrequent compute-tile
 * repartitioning (the paper triggers compute repartition "much less
 * frequently to avoid its high overhead"; memory repartition costs
 * only the DMA reconfiguration).
 *
 * Ablation knobs expose each design choice (throttling, memory-aware
 * pairing, dynamic priority score, compute repartition) for the
 * component-ablation bench.
 */

#ifndef MOCA_MOCA_POLICY_H
#define MOCA_MOCA_POLICY_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "moca/runtime/contention_manager.h"
#include "moca/sched/scheduler.h"
#include "sim/policy.h"
#include "sim/soc.h"

namespace moca {

/** MoCA policy configuration + ablation knobs. */
struct MocaPolicyConfig
{
    /** Concurrent job slots; tiles per slot = numTiles / slots. */
    int slots = 4;

    /** Program the MoCA throttle engines (core mechanism). */
    bool enableThrottling = true;

    /** Algorithm 3's memory-intensive pairing. */
    bool enableMemAwarePairing = true;

    /** Dynamic priority score (remaining/slack term) in Algorithm 2;
     *  disabled -> static user priority only. */
    bool enableDynamicScore = true;

    /** Allow the rare compute-tile repartitioning. */
    bool enableComputeRepartition = true;

    /** Scheduler score threshold (Algorithm 3 line 14). */
    double scoreThreshold = 0.0;

    /** Use the sparsity-aware performance predictor (the paper's
     *  Limitations-section extension); false models a dense-only
     *  runtime mis-estimating pruned workloads. */
    bool sparsityAwarePredictor = true;

    /** Expand a lone job only when the estimated remaining work on
     *  its current tiles exceeds this many migration penalties
     *  (compute repartition is deliberately rare, Sec. III-C). */
    double repartitionBenefit = 6.0;

    /**
     * Fixed throttle-monitoring window ("tick") in cycles.  0 keeps
     * the paper's prediction-derived windows (window = Prediction /
     * Num_tile); > 0 programs every engine with this window length,
     * trading Algorithm 2's adaptivity for a uniform pacing
     * granularity (sensitivity knob).
     */
    Cycles throttleTickCycles = 0;

    /**
     * Threshold sizing mode: false ("scaled", the paper) sizes each
     * job's per-window budget from its score-weighted bandwidth
     * allocation; true ("fixed") gives every throttled job the equal
     * 1/N share of the channel, ignoring the dynamic scores
     * (ablation of the score-proportional shaving).
     */
    bool fixedThreshold = false;

    /**
     * Uniform spec-string parameter surface (see exp::PolicyRegistry):
     * apply one `key=value` setting.  Understands slots, throttle,
     * pairing, dynamic_score, repartition, score_threshold,
     * sparsity_aware, repartition_benefit, tick, and threshold
     * (scaled|fixed).
     * @return false when `key` is unknown; fatal on malformed values.
     */
    bool applyParam(const std::string &key, const std::string &value);
};

/** MoCA as a pluggable execution policy for the SoC simulator. */
class MocaPolicy : public sim::Policy
{
  public:
    MocaPolicy(const sim::SocConfig &soc_cfg,
               const MocaPolicyConfig &cfg = MocaPolicyConfig());

    const char *name() const override { return "moca"; }

    void schedule(sim::Soc &soc, sim::SchedEvent event) override;
    void onBlockBoundary(sim::Soc &soc, int id) override;
    void onJobComplete(sim::Soc &soc, int id) override;

    const runtime::ContentionManager &contentionManager() const
    {
        return cm_;
    }

    /** Diagnostics for benches/tests. */
    struct PolicyStats
    {
        long reconfigurations = 0;   ///< Algorithm 2 invocations.
        long contentionDetected = 0; ///< ... that found overflow > 0.
        long jobsAdmitted = 0;
        long repartitions = 0;       ///< Compute-tile resizes.
    };
    const PolicyStats &policyStats() const { return stats_; }

  private:
    MocaPolicyConfig cfg_;
    runtime::ContentionManager cm_;
    sched::MocaScheduler scheduler_;
    runtime::LatencyModel estimator_;
    PolicyStats stats_;

    /** Whole-model Algorithm 1 aggregates for one tile count. */
    struct ModelEstimate
    {
        double time = 0.0; ///< Isolated latency estimate, cycles.
        double bw = 0.0;   ///< Average DRAM bandwidth, bytes/cycle.
    };

    /**
     * Memoized whole-model estimates.  Algorithm 3 re-scores every
     * waiting task at each scheduling point; the per-(model, tiles)
     * estimates it needs are invariant, and without the memo each
     * scheduling point would walk every layer of every queued task —
     * quadratic in trace length on long-horizon stress runs.  Keyed
     * on the model's stable uid (not its address, which an allocator
     * may reuse) packed with the tile count.  Audited for detlint
     * R1: keyed lookups only (find/emplace), never iterated, so the
     * unordered layout cannot influence any scheduling decision.
     */
    std::unordered_map<std::uint64_t, ModelEstimate> estimate_memo_;

    const ModelEstimate &modelEstimate(const dnn::Model &model,
                                       int num_tiles);

    /**
     * Algorithm-3 re-scoring memo across scheduling points.  A job's
     * admit-queue entry (priority, dispatch time, per-slot estimates)
     * is a pure function of its spec and the slot width — both
     * time-independent — so it is computed once per job, cached here
     * indexed by job id, and each scheduling round scans the waiting
     * ids directly against the cache (no O(waiting) queue rebuild
     * when the waiting set changes).  Likewise the mix bias depends
     * only on the running set and its tile allocations, tracked by
     * the running epoch (resizeJob bumps it too).
     */
    std::vector<sched::SchedTask> task_cache_; ///< id == -1: unfilled.
    int task_cache_per_slot_ = -1;
    sched::MocaScheduler::MixBias bias_memo_ =
        sched::MocaScheduler::MixBias::None;
    std::uint64_t bias_epoch_ = ~0ull;

    /** The job's cached admit-queue entry (filled on first sight). */
    const sched::SchedTask &cachedTask(const sim::Soc &soc, int id,
                                       int per_slot);

    /**
     * Waiting jobs bucketed by (model, priority).  All members of a
     * bucket share the same per-slot estimate, so their Algorithm 3
     * score order is their arrival order (earlier dispatch -> longer
     * wait -> higher score; dispatch ties fall to ascending id, the
     * arrival order's own tie-break) for every `now`.  A scheduling
     * round therefore only needs the first `max_slots` still-waiting
     * entries of each bucket as candidates — O(buckets x slots) per
     * round instead of a scan of the whole (possibly huge) backlog.
     * Buckets are filled from a cursor over Soc::arrivalOrder() and
     * popped lazily at the head; entries admitted out of band (the
     * idle-machine fallback) become holes that the head skips over.
     */
    struct AdmitBucket
    {
        std::vector<int> fifo; ///< Ids in arrival order.
        std::size_t head = 0;  ///< First possibly-waiting entry.
    };
    std::vector<AdmitBucket> buckets_;
    std::unordered_map<std::uint64_t, int> bucket_index_;
    std::size_t arrival_cursor_ = 0;
    std::vector<int> admit_scratch_; ///< Candidate ids per round.
    /** Identity of the Soc the incremental state above tracks; a
     *  different Soc (or a restarted run) resets it. */
    const sim::Soc *bound_soc_ = nullptr;

    /** Pull newly arrived jobs into their admit buckets. */
    void ingestArrivals(const sim::Soc &soc);

    int tilesPerSlot(const sim::Soc &soc) const;

    /**
     * Run Algorithm 2 for a job and program its throttle engines.
     * @return true when contention (overflow) was detected.
     */
    bool reconfigure(sim::Soc &soc, int id);

    /** Refresh every co-runner's allocation (on contention). */
    void reconfigureCorunners(sim::Soc &soc, int except_id);

    /** Start jobs selected by Algorithm 3 while slots are free. */
    void admitJobs(sim::Soc &soc);

    /** The rare compute repartition (expand a lone long job / shrink
     *  an expanded job when new work arrives). */
    void maybeRepartition(sim::Soc &soc, sim::SchedEvent event);
};

} // namespace moca

#endif // MOCA_MOCA_POLICY_H
