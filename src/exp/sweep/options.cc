#include "exp/sweep/options.h"

#include <cstdio>
#include <cstdlib>

#include "cluster/dispatcher.h"
#include "common/log.h"
#include "common/units.h"
#include "exp/registry.h"
#include "mem/memory_model.h"
#include "serve/admission.h"

namespace moca::exp {

sim::SocConfig
socConfigFromArgs(const ArgMap &args)
{
    if (args.has("list-mem-models")) {
        std::fputs(
            mem::MemoryModelRegistry::instance().listText().c_str(),
            stdout);
        std::exit(0);
    }
    sim::SocConfig cfg;
    cfg.numTiles = static_cast<int>(args.getInt("tiles", cfg.numTiles));
    cfg.dramBytesPerCycle =
        args.getDouble("dram_bw", cfg.dramBytesPerCycle);
    cfg.l2Bytes = static_cast<std::uint64_t>(
        args.getInt("l2_kib",
                    static_cast<std::int64_t>(cfg.l2Bytes / KiB))) *
        KiB;
    cfg.overlapF = args.getDouble("overlap_f", cfg.overlapF);
    cfg.quantum = static_cast<Cycles>(
        args.getInt("quantum", static_cast<std::int64_t>(cfg.quantum)));
    cfg.kernel = parseSimKernel(
        args.getString("kernel", simKernelName(cfg.kernel)));
    const std::int64_t max_cycles = args.getInt(
        "max-cycles",
        args.getInt("max_cycles",
                    static_cast<std::int64_t>(cfg.maxCycles)));
    if (max_cycles < 1)
        fatal("max-cycles must be >= 1 (got %lld)",
              static_cast<long long>(max_cycles));
    cfg.maxCycles = static_cast<Cycles>(max_cycles);
    const std::int64_t sample_every = args.getInt(
        "sample-every", static_cast<std::int64_t>(cfg.sampleEvery));
    if (sample_every < 0)
        fatal("sample-every must be >= 0 (got %lld; 0 disables "
              "telemetry sampling)",
              static_cast<long long>(sample_every));
    cfg.sampleEvery = static_cast<Cycles>(sample_every);
    cfg.memModel = args.getString("mem", cfg.memModel);
    // Trial-build against the actual configuration so a bad --mem
    // spec fails before any sweep work starts.
    mem::MemoryModelRegistry::instance().validate(cfg.memModel, cfg);
    return cfg;
}

sim::SimKernel
parseSimKernel(const std::string &name)
{
    if (name == "quantum")
        return sim::SimKernel::Quantum;
    if (name == "event")
        return sim::SimKernel::Event;
    fatal("kernel=%s: expected 'quantum' or 'event'", name.c_str());
}

void
printSocBanner(const sim::SocConfig &cfg)
{
    std::printf("SoC configuration (paper Table II):\n");
    std::printf("  systolic array (per tile)  %dx%d\n", cfg.arrayDim,
                cfg.arrayDim);
    std::printf("  scratchpad (per tile)      %llu KiB\n",
                static_cast<unsigned long long>(
                    cfg.scratchpadBytes / KiB));
    std::printf("  accumulator (per tile)     %llu KiB\n",
                static_cast<unsigned long long>(
                    cfg.accumulatorBytes / KiB));
    std::printf("  accelerator tiles          %d\n", cfg.numTiles);
    std::printf("  shared L2                  %llu MB, %d banks\n",
                static_cast<unsigned long long>(cfg.l2Bytes / MiB),
                cfg.l2Banks);
    std::printf("  DRAM bandwidth             %.0f GB/s @ 1 GHz\n",
                cfg.dramBytesPerCycle);
    std::printf("  simulation kernel          %s\n",
                sim::simKernelName(cfg.kernel));
    std::printf("  memory model               %s\n",
                cfg.memModel.c_str());
    std::printf("\n");
}

SweepOptions
sweepOptionsFromArgs(const ArgMap &args)
{
    SweepOptions opts;
    opts.jobs = static_cast<int>(args.getInt("jobs", 1));
    opts.verbose = args.getBool("verbose", false);
    return opts;
}

std::vector<std::string>
policiesFromArgs(const ArgMap &args,
                 const std::vector<std::string> &def)
{
    if (args.has("list-policies")) {
        std::fputs(PolicyRegistry::instance().listText().c_str(),
                   stdout);
        std::exit(0);
    }
    std::vector<std::string> specs =
        def.empty() ? allPolicySpecs() : def;
    if (args.has("policy"))
        specs = splitPolicyList(args.getString("policy", ""));
    for (const auto &spec : specs)
        PolicyRegistry::instance().validate(spec);
    return specs;
}

std::vector<std::string>
dispatchersFromArgs(const ArgMap &args,
                    const std::vector<std::string> &def)
{
    auto &registry = cluster::DispatcherRegistry::instance();
    if (args.has("list-dispatchers")) {
        std::fputs(registry.listText().c_str(), stdout);
        std::exit(0);
    }
    std::vector<std::string> specs =
        def.empty() ? std::vector<std::string>{"rr"} : def;
    if (args.has("dispatcher"))
        specs = splitPolicyList(args.getString("dispatcher", ""),
                                "--dispatcher");
    for (const auto &spec : specs)
        registry.validate(spec);
    return specs;
}

std::vector<std::string>
admissionFromArgs(const ArgMap &args,
                  const std::vector<std::string> &def)
{
    auto &registry = serve::AdmissionRegistry::instance();
    if (args.has("list-admission")) {
        std::fputs(registry.listText().c_str(), stdout);
        std::exit(0);
    }
    std::vector<std::string> specs =
        def.empty() ? std::vector<std::string>{"always"} : def;
    if (args.has("admission"))
        specs = splitPolicyList(args.getString("admission", ""),
                                "--admission");
    for (const auto &spec : specs)
        registry.validate(spec);
    return specs;
}

ResultSink *
SinkSet::add(std::unique_ptr<ResultSink> sink)
{
    sinks_.push_back(std::move(sink));
    return sinks_.back().get();
}

std::vector<ResultSink *>
SinkSet::pointers() const
{
    std::vector<ResultSink *> out;
    out.reserve(sinks_.size());
    for (const auto &s : sinks_)
        out.push_back(s.get());
    return out;
}

SinkSet
fileSinksFromArgs(const ArgMap &args)
{
    SinkSet sinks;
    const std::string csv = args.getString("csv", "");
    if (!csv.empty())
        sinks.add(std::make_unique<CsvSink>(csv));
    const std::string json = args.getString("json", "");
    if (!json.empty())
        sinks.add(std::make_unique<JsonSink>(json));
    return sinks;
}

} // namespace moca::exp
