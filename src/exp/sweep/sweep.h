/**
 * @file
 * Parallel experiment engine: a declarative grid of scenario cells
 * (policy x TraceConfig x SocConfig) executed on a fixed-size worker
 * pool.  Every figure in the paper is a grid of independent,
 * deterministic `Scenario` runs; `SweepRunner` hoists the sweep loop
 * that the bench binaries used to copy-paste into one shared engine.
 *
 * Determinism contract: a cell's result depends only on the cell
 * itself (its trace seed, policy, and SoC configuration), never on
 * which worker ran it or in what order.  Parallel (`jobs > 1`) and
 * serial (`jobs == 1`) sweeps therefore produce bit-identical
 * `ScenarioResult`s, and sinks observe results in cell-index order
 * regardless of completion order.
 */

#ifndef MOCA_EXP_SWEEP_SWEEP_H
#define MOCA_EXP_SWEEP_SWEEP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.h"

namespace moca::exp {

/** One cell of a sweep grid: everything needed to run one scenario. */
struct SweepCell
{
    /** Row label for sinks, e.g. "Workload-A QoS-L". */
    std::string label;

    /** Policy spec string resolved through exp::PolicyRegistry,
     *  e.g. "moca" or "moca:tick=2048,threshold=fixed". */
    std::string policy = "moca";

    workload::TraceConfig trace;
    sim::SocConfig soc;

    /**
     * Optional policy factory overriding `policy` (for policies that
     * cannot be expressed as a registry spec, e.g. stateful test
     * doubles).  Must be thread-safe: it is invoked from worker
     * threads.
     */
    std::function<std::unique_ptr<sim::Policy>(const sim::SocConfig &)>
        policyFactory;

    /**
     * Optional pre-generated job stream shared read-only between
     * cells (e.g. several policies replaying the identical trace).
     * When null the cell generates its own trace from `trace`, which
     * is deterministic given `trace.seed`.
     */
    std::shared_ptr<const std::vector<sim::JobSpec>> specs;
};

/**
 * Deterministic per-cell seed: splitmix64 of (base, index).  Grid
 * builders use this so every cell owns an independent RNG stream that
 * depends only on the cell's index, never on execution order.
 */
std::uint64_t deriveCellSeed(std::uint64_t base, std::size_t index);

/** Run one cell (generate or replay its trace, execute, compute
 *  metrics).  This is the unit of work the pool executes. */
ScenarioResult runCell(const SweepCell &cell);

/**
 * Append one cell per policy spec in `specs`, all replaying the
 * identical trace (generated once from `trace` + `soc` and shared
 * read-only).  The standard way grids compare policies on the same
 * job stream.
 */
void appendPolicyCells(std::vector<SweepCell> &grid,
                       const std::string &label,
                       const std::vector<std::string> &specs,
                       const workload::TraceConfig &trace,
                       const sim::SocConfig &soc);

/**
 * Streaming consumer of sweep results.  `onResult` is called in cell
 * order (0, 1, 2, ...) from whichever worker completed the barrier
 * cell; implementations need no internal locking.  `finish` is called
 * once after the last cell.
 */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void onResult(std::size_t index, const SweepCell &cell,
                          const ScenarioResult &result) = 0;
    virtual void finish() {}
};

/** Execution options of a sweep. */
struct SweepOptions
{
    /** Worker count; 0 means hardware concurrency. */
    int jobs = 1;

    /** Print a progress line as each cell completes. */
    bool verbose = false;
};

/** Resolve `jobs` (0 -> hardware concurrency, floor 1). */
int resolveJobs(int jobs);

/**
 * The parallel sweep engine.  Cells are share-nothing (each owns its
 * Soc, Policy, and RNG), so the pool simply pulls cell indices from a
 * work queue.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

    /**
     * Run all cells and return their results in cell order.  Sinks
     * receive every result in cell order while the sweep is still
     * running (streamed as soon as the next-in-order cell is done).
     */
    std::vector<ScenarioResult>
    run(const std::vector<SweepCell> &cells,
        const std::vector<ResultSink *> &sinks = {}) const;

    /**
     * Low-level engine used by non-scenario grids (co-location
     * repetitions, per-model validation points): execute task(i) for
     * i in [0, n) on a pool of `jobs` workers.  task(i) must depend
     * only on i.
     */
    static void runIndexed(std::size_t n, int jobs,
                           const std::function<void(std::size_t)> &task);

    const SweepOptions &options() const { return opts_; }

  private:
    SweepOptions opts_;
};

} // namespace moca::exp

#endif // MOCA_EXP_SWEEP_SWEEP_H
