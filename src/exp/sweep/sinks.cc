#include "exp/sweep/sinks.h"

#include <cstdio>

#include "common/log.h"

namespace moca::exp {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write %s", path.c_str());
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace

namespace {

/** The per-cell record schema: field name + whether JSON emits it
 *  unquoted.  Typing is by field semantics, not value shape, so the
 *  schema is stable: a label that happens to look like "8" still
 *  serializes as a string.  Keep in sync with sweepRecordValues(). */
struct SweepField
{
    const char *name;
    bool numeric;
};

const SweepField kSweepFields[] = {
    {"index", true},
    {"label", false},
    {"policy", false},
    {"workload_set", false},
    {"qos", false},
    {"arrivals", false},
    {"tasks", true},
    {"seed", true},
    {"load_factor", true},
    {"qos_scale", true},
    {"sla_rate", true},
    {"sla_low", true},
    {"sla_mid", true},
    {"sla_high", true},
    {"stp", true},
    {"fairness", true},
    {"mean_norm_latency", true},
    {"worst_norm_latency", true},
    {"num_jobs", true},
    {"makespan", true},
    {"goodput", true},
    {"dram_busy", true},
    {"migrations", true},
    {"preemptions", true},
    {"throttle_reconfigs", true},
    {"mem", false},
    {"row_hits", true},
    {"row_misses", true},
    {"bank_bytes_cv", true},
    {"l2_conflict_bytes", true},
};

} // namespace

const std::vector<std::string> &
sweepRecordFields()
{
    static const std::vector<std::string> fields = [] {
        std::vector<std::string> out;
        for (const auto &f : kSweepFields)
            out.push_back(f.name);
        return out;
    }();
    return fields;
}

std::vector<std::string>
sweepRecordValues(std::size_t index, const SweepCell &cell,
                  const ScenarioResult &r)
{
    const auto &t = r.trace;
    return {
        strprintf("%zu", index),
        cell.label,
        r.policy,
        workload::workloadSetName(t.set),
        workload::qosLevelName(t.qos),
        workload::arrivalPatternName(t.arrivals),
        strprintf("%d", t.numTasks),
        strprintf("%llu", static_cast<unsigned long long>(t.seed)),
        strprintf("%.6g", t.loadFactor),
        strprintf("%.6g", t.qosScale),
        strprintf("%.6f", r.metrics.slaRate),
        strprintf("%.6f", r.metrics.slaRateLow),
        strprintf("%.6f", r.metrics.slaRateMid),
        strprintf("%.6f", r.metrics.slaRateHigh),
        strprintf("%.6f", r.metrics.stp),
        strprintf("%.6f", r.metrics.fairness),
        strprintf("%.6f", r.metrics.meanNormLatency),
        strprintf("%.6f", r.metrics.worstNormLatency),
        strprintf("%d", r.metrics.numJobs),
        strprintf("%llu", static_cast<unsigned long long>(r.makespan)),
        strprintf("%.6f", r.makespan > 0
                              ? r.metrics.slaRate * r.metrics.numJobs *
                                    1e9 / static_cast<double>(r.makespan)
                              : 0.0),
        strprintf("%.6f", r.dramBusyFraction),
        strprintf("%d", r.totalMigrations),
        strprintf("%d", r.totalPreemptions),
        strprintf("%d", r.totalThrottleReconfigs),
        cell.soc.memModel,
        strprintf("%llu", static_cast<unsigned long long>(
                              r.memTraffic.dramRowHits)),
        strprintf("%llu", static_cast<unsigned long long>(
                              r.memTraffic.dramRowMisses)),
        strprintf("%.6f", r.memTraffic.bankBytesCv()),
        strprintf("%.0f", r.memTraffic.l2ConflictLostBytes),
    };
}

// ---- TableSink -------------------------------------------------------

TableSink::TableSink(std::string title)
    : title_(std::move(title)),
      table_({"Cell", "Policy", "SLA", "p-Low", "p-Mid", "p-High",
              "STP", "Fairness", "Makespan (Mcyc)", "DRAM busy"})
{
}

void
TableSink::onResult(std::size_t, const SweepCell &cell,
                    const ScenarioResult &r)
{
    table_.row()
        .cell(cell.label)
        .cell(r.policy)
        .cell(r.metrics.slaRate, 3)
        .cell(r.metrics.slaRateLow, 3)
        .cell(r.metrics.slaRateMid, 3)
        .cell(r.metrics.slaRateHigh, 3)
        .cell(r.metrics.stp, 2)
        .cell(r.metrics.fairness, 4)
        .cell(static_cast<double>(r.makespan) / 1e6, 1)
        .cell(r.dramBusyFraction, 3);
}

void
TableSink::finish()
{
    table_.print(title_);
}

// ---- CsvSink ---------------------------------------------------------

CsvSink::CsvSink(std::string path)
    : path_(std::move(path)), table_(sweepRecordFields())
{
}

void
CsvSink::onResult(std::size_t index, const SweepCell &cell,
                  const ScenarioResult &r)
{
    table_.row();
    for (const auto &value : sweepRecordValues(index, cell, r))
        table_.cell(value);
}

std::string
CsvSink::text() const
{
    return table_.csv();
}

void
CsvSink::finish()
{
    if (!path_.empty())
        table_.writeCsv(path_);
}

// ---- JsonSink --------------------------------------------------------

JsonSink::JsonSink(std::string path) : path_(std::move(path)) {}

void
JsonSink::onResult(std::size_t index, const SweepCell &cell,
                   const ScenarioResult &r)
{
    records_.push_back(sweepRecordValues(index, cell, r));
}

std::string
JsonSink::text() const
{
    const auto &fields = sweepRecordFields();
    std::string out = "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        out += "  {";
        for (std::size_t f = 0; f < fields.size(); ++f) {
            const std::string &v = records_[i][f];
            out += "\"" + fields[f] + "\": ";
            if (kSweepFields[f].numeric)
                out += v;
            else
                out += "\"" + jsonEscape(v) + "\"";
            if (f + 1 < fields.size())
                out += ", ";
        }
        out += i + 1 < records_.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

void
JsonSink::finish()
{
    if (!path_.empty())
        writeTextFile(path_, text());
}

} // namespace moca::exp
