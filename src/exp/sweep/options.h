/**
 * @file
 * Command-line plumbing shared by every bench and example binary:
 * SoC-configuration overrides, the Table II banner, sweep-engine
 * options (`--jobs N`), and file sinks (`--csv PATH`, `--json PATH`).
 * This replaces the per-binary boilerplate that used to live in
 * bench/bench_common.h.
 */

#ifndef MOCA_EXP_SWEEP_OPTIONS_H
#define MOCA_EXP_SWEEP_OPTIONS_H

#include <memory>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "exp/sweep/sinks.h"
#include "exp/sweep/sweep.h"

namespace moca::exp {

/** Apply common key=value overrides (tiles, dram_bw, l2_kib,
 *  overlap_f, quantum, kernel=quantum|event, max-cycles, mem=SPEC)
 *  to the SoC configuration.  `--mem SPEC` selects (and
 *  trial-validates) the memory-hierarchy model;
 *  `--list-mem-models` prints the mem::MemoryModelRegistry
 *  catalogue and exits. */
sim::SocConfig socConfigFromArgs(const ArgMap &args);

/** Parse a simulation-kernel name ("quantum" / "event"); fatal on
 *  anything else. */
sim::SimKernel parseSimKernel(const std::string &name);

/** Print the Table II SoC configuration banner. */
void printSocBanner(const sim::SocConfig &cfg);

/** Sweep-engine options from `--jobs N` (0 = hardware concurrency)
 *  and `verbose=0/1`. */
SweepOptions sweepOptionsFromArgs(const ArgMap &args);

/**
 * Shared `--policy <spec>[,<spec>...]` / `--list-policies` handling
 * for every bench binary.  `--list-policies` prints the registry
 * catalogue and exits; `--policy` selects (and validates) the policy
 * specs to run, defaulting to `def` (or the four built-in policies
 * when `def` is empty).  Unknown specs are fatal with a did-you-mean
 * suggestion.
 */
std::vector<std::string>
policiesFromArgs(const ArgMap &args,
                 const std::vector<std::string> &def = {});

/**
 * Shared `--dispatcher <spec>[,<spec>...]` / `--list-dispatchers`
 * handling for cluster-aware binaries, mirroring policiesFromArgs:
 * `--list-dispatchers` prints the cluster::DispatcherRegistry
 * catalogue and exits; `--dispatcher` selects (and validates) the
 * dispatcher specs, defaulting to `def` (or plain "rr" when `def` is
 * empty).  Unknown specs are fatal with a did-you-mean suggestion.
 */
std::vector<std::string>
dispatchersFromArgs(const ArgMap &args,
                    const std::vector<std::string> &def = {});

/**
 * Shared `--admission <spec>[,<spec>...]` / `--list-admission`
 * handling for serving-aware binaries, mirroring dispatchersFromArgs
 * over the serve::AdmissionRegistry; defaults to `def` (or plain
 * "always" when `def` is empty).
 */
std::vector<std::string>
admissionFromArgs(const ArgMap &args,
                  const std::vector<std::string> &def = {});

/**
 * Owning bundle of result sinks, so binaries can hold console and
 * file sinks together and hand the engine a raw-pointer view.
 */
class SinkSet
{
  public:
    SinkSet() = default;

    /** Add a sink; returns it for further configuration. */
    ResultSink *add(std::unique_ptr<ResultSink> sink);

    /** Non-owning view, as SweepRunner::run expects. */
    std::vector<ResultSink *> pointers() const;

  private:
    std::vector<std::unique_ptr<ResultSink>> sinks_;
};

/**
 * Build file sinks from `--csv PATH` and `--json PATH` arguments.
 * Returns an empty set when neither is given.
 */
SinkSet fileSinksFromArgs(const ArgMap &args);

} // namespace moca::exp

#endif // MOCA_EXP_SWEEP_OPTIONS_H
