/**
 * @file
 * Pluggable result sinks for the sweep engine: an aligned console
 * table (on top of common/table), a CSV writer, and a JSON writer.
 * All three emit the same per-cell record — the scenario identity
 * (label, policy, trace parameters) plus the paper's metrics — so a
 * figure sweep can stream to the console and to machine-readable
 * files in one run.
 */

#ifndef MOCA_EXP_SWEEP_SINKS_H
#define MOCA_EXP_SWEEP_SINKS_H

#include <string>
#include <vector>

#include "common/table.h"
#include "exp/sweep/sweep.h"

namespace moca::exp {

/** Column names of the per-cell record (CSV header / JSON keys). */
const std::vector<std::string> &sweepRecordFields();

/** One cell's record as strings, aligned with sweepRecordFields(). */
std::vector<std::string> sweepRecordValues(std::size_t index,
                                           const SweepCell &cell,
                                           const ScenarioResult &r);

/**
 * Console sink: accumulates a compact metrics table and prints it
 * (with an optional title) when the sweep finishes.
 */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::string title = "");

    void onResult(std::size_t index, const SweepCell &cell,
                  const ScenarioResult &result) override;
    void finish() override;

    const Table &table() const { return table_; }

  private:
    std::string title_;
    Table table_;
};

/** CSV sink: streams one record per cell, writes the file on finish. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::string path);

    void onResult(std::size_t index, const SweepCell &cell,
                  const ScenarioResult &result) override;
    void finish() override;

    /** The CSV text (also written to the path on finish). */
    std::string text() const;

  private:
    std::string path_;
    Table table_;
};

/** JSON sink: an array of per-cell objects, written on finish. */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::string path);

    void onResult(std::size_t index, const SweepCell &cell,
                  const ScenarioResult &result) override;
    void finish() override;

    /** The JSON text (also written to the path on finish). */
    std::string text() const;

  private:
    std::string path_;
    std::vector<std::vector<std::string>> records_;
};

} // namespace moca::exp

#endif // MOCA_EXP_SWEEP_SINKS_H
