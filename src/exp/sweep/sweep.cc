#include "exp/sweep/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.h"

namespace moca::exp {

std::uint64_t
deriveCellSeed(std::uint64_t base, std::size_t index)
{
    // splitmix64: well-distributed, cheap, and stable across
    // platforms — adjacent cell indices yield uncorrelated streams.
    std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

ScenarioResult
runCell(const SweepCell &cell)
{
    if (!cell.policyFactory) {
        if (cell.specs)
            return runTrace(cell.policy, *cell.specs, cell.trace,
                            cell.soc);
        return runScenario(cell.policy, cell.trace, cell.soc);
    }

    // Custom-policy cell: the caller's factory instead of the spec
    // registry, then the shared runTrace assembly.
    std::vector<sim::JobSpec> generated;
    const std::vector<sim::JobSpec> *specs = cell.specs.get();
    if (specs == nullptr) {
        generated = makeTrace(cell.trace, cell.soc);
        specs = &generated;
    }
    auto policy = cell.policyFactory(cell.soc);
    return runTrace(*policy, cell.policy, *specs, cell.trace,
                    cell.soc);
}

void
appendPolicyCells(std::vector<SweepCell> &grid,
                  const std::string &label,
                  const std::vector<std::string> &specs,
                  const workload::TraceConfig &trace,
                  const sim::SocConfig &soc)
{
    auto stream = std::make_shared<const std::vector<sim::JobSpec>>(
        makeTrace(trace, soc));
    for (const std::string &spec : specs) {
        SweepCell cell;
        cell.label = label;
        cell.policy = spec;
        cell.trace = trace;
        cell.soc = soc;
        cell.specs = stream;
        grid.push_back(std::move(cell));
    }
}

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
SweepRunner::runIndexed(std::size_t n, int jobs,
                        const std::function<void(std::size_t)> &task)
{
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            n, static_cast<std::size_t>(resolveJobs(jobs))));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mutex;
    std::exception_ptr first_error;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                next.store(n); // Drain remaining work.
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<ScenarioResult>
SweepRunner::run(const std::vector<SweepCell> &cells,
                 const std::vector<ResultSink *> &sinks) const
{
    const std::size_t n = cells.size();
    std::vector<ScenarioResult> results(n);

    // In-order streaming: workers park finished cells here and the
    // one holding the next-needed index flushes the run of ready
    // results to every sink.
    std::mutex emit_mutex;
    std::vector<bool> ready(n, false);
    std::size_t next_emit = 0;

    runIndexed(n, opts_.jobs, [&](std::size_t i) {
        if (opts_.verbose)
            inform("sweep: running cell %zu/%zu (%s / %s)...", i + 1,
                   n, cells[i].label.c_str(),
                   cells[i].policy.c_str());
        results[i] = runCell(cells[i]);

        std::lock_guard<std::mutex> lock(emit_mutex);
        ready[i] = true;
        while (next_emit < n && ready[next_emit]) {
            for (ResultSink *sink : sinks)
                sink->onResult(next_emit, cells[next_emit],
                               results[next_emit]);
            ++next_emit;
        }
    });

    for (ResultSink *sink : sinks)
        sink->finish();
    return results;
}

} // namespace moca::exp
