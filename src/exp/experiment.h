/**
 * @file
 * Fluent experiment builder — the user-facing front end of the
 * experiment layer.  One `Experiment` describes a set of policies
 * replaying the identical job stream on one SoC configuration:
 *
 *     const auto res = exp::Experiment()
 *                          .soc(cfg)
 *                          .trace(tc)
 *                          .policies({"moca", "prema",
 *                                     "moca:tick=2048"})
 *                          .jobs(4)
 *                          .run();
 *     double sla = res["moca"].metrics.slaRate;
 *
 * Policies are named by registry spec strings (registry.h); results
 * come back keyed by exactly the spec strings given.  This subsumes
 * the old runScenario/runTrace free-function triple: a default-built
 * Experiment with one policy is runScenario, withTrace() replaces the
 * pre-generated-trace overloads.  Execution goes through the parallel
 * sweep engine, so `jobs(N)` and `sink()` streaming come for free.
 */

#ifndef MOCA_EXP_EXPERIMENT_H
#define MOCA_EXP_EXPERIMENT_H

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/log.h"
#include "common/text.h"
#include "exp/sweep/sweep.h"

namespace moca::exp {

/**
 * Results keyed by the policy spec strings that produced them — the
 * shared shape of the single-SoC (ScenarioResult) and fleet
 * (cluster::ClusterResult) experiment outcomes.
 */
template <typename Result>
class SpecKeyedResults
{
  public:
    SpecKeyedResults(std::vector<std::string> specs,
                     std::vector<Result> results)
        : specs_(std::move(specs)), results_(std::move(results))
    {
    }

    /** Result of one policy spec; fatal when the spec was not run. */
    const Result &operator[](const std::string &spec) const
    {
        for (std::size_t i = 0; i < specs_.size(); ++i)
            if (specs_[i] == spec)
                return results_[i];
        fatal("experiment has no result for policy '%s'; ran: %s",
              spec.c_str(), joinNames(specs_).c_str());
    }

    bool has(const std::string &spec) const
    {
        for (const auto &s : specs_)
            if (s == spec)
                return true;
        return false;
    }

    /** All results in the order the policies were given. */
    const std::vector<Result> &all() const { return results_; }

    std::size_t size() const { return results_.size(); }
    auto begin() const { return results_.begin(); }
    auto end() const { return results_.end(); }

  private:
    std::vector<std::string> specs_;
    std::vector<Result> results_;
};

/** Results of an Experiment, keyed by policy spec string. */
using ExperimentResults = SpecKeyedResults<ScenarioResult>;

/** Results of a fleet experiment, keyed by policy spec string. */
using FleetResults = SpecKeyedResults<cluster::ClusterResult>;

/** Fluent builder for one multi-policy experiment. */
class Experiment
{
  public:
    Experiment() = default;

    /** SoC configuration (default: Table II). */
    Experiment &soc(const sim::SocConfig &cfg);

    /** Time-advance kernel of the configured SoC (shorthand for
     *  mutating soc().kernel; composes with a prior soc() call). */
    Experiment &kernel(sim::SimKernel k);

    /** Memory-hierarchy model spec of the configured SoC
     *  (mem::MemoryModelRegistry grammar, e.g. "flat" or
     *  "banked:banks=16,remap=mod"; shorthand for mutating
     *  soc().memModel, composes with a prior soc() call). */
    Experiment &mem(std::string spec);

    /** Telemetry sampling cadence in cycles (shorthand for mutating
     *  soc().sampleEvery; 0 disables).  Each run's sampled
     *  timeseries comes back in ScenarioResult::telemetry.
     *  Observational only — metrics are bit-identical either way. */
    Experiment &sampleEvery(Cycles every);

    /** Trace-generation parameters (workload set, QoS, tasks, seed). */
    Experiment &trace(const workload::TraceConfig &tc);

    /** Replace the policy list (registry spec strings). */
    Experiment &policies(std::vector<std::string> specs);

    /** Append one policy spec. */
    Experiment &policy(std::string spec);

    /**
     * Replay this pre-generated job stream instead of generating one
     * from trace() — e.g. a stream mutated by the caller, or one
     * shared with other experiments.
     */
    Experiment &
    withTrace(std::shared_ptr<const std::vector<sim::JobSpec>> specs);
    Experiment &withTrace(std::vector<sim::JobSpec> specs);

    /** Row label recorded in streamed sink records. */
    Experiment &label(std::string text);

    /** Worker threads (0 = hardware concurrency; default 1). */
    Experiment &jobs(int n);

    /** Per-cell progress lines while running. */
    Experiment &verbose(bool on);

    /** Attach a streaming result sink (not owned; repeatable). */
    Experiment &sink(ResultSink *s);

    // --- Fleet (cluster) mode -----------------------------------------

    /**
     * Co-simulate `n` copies of the configured SoC instead of one
     * (cluster fleet mode; see cluster/cluster.h).  Results come from
     * runFleet(); run() is the single-SoC path and rejects a cluster
     * configuration.
     */
    Experiment &cluster(int n);

    /** Front-end dispatcher spec (DispatcherRegistry grammar,
     *  default "rr"); implies cluster mode. */
    Experiment &dispatcher(std::string spec);

    /**
     * Worker threads of each fleet run's conservative-PDES engine
     * (ClusterConfig::jobs; see cluster/parallel.h): shards the SoCs
     * *inside* one cluster co-simulation, whereas jobs(N)
     * parallelizes *across* policy specs — the two compose.  Results
     * are bit-identical for every value; must be >= 1 (fatal
     * otherwise).  Implies cluster mode.
     */
    Experiment &clusterJobs(int n);

    /**
     * Synthesize the fleet's task stream open-loop (cluster/workload.h)
     * instead of replaying trace()/withTrace().  fleetTiles == 0 is
     * auto-filled with cluster-size x SoC tiles.  The synth's own
     * seed drives both the stream and the dispatcher; without a
     * synth config, the trace() seed does.
     */
    Experiment &fleetWorkload(const cluster::SynthConfig &synth);

    /**
     * Validate every spec, run all policies on the identical job
     * stream, and return the results keyed by spec string.  Fatal on
     * unknown specs or an empty policy list.
     */
    ExperimentResults run() const;

    /**
     * Run the cluster fleet once per policy spec — every policy sees
     * the identical task stream and dispatcher configuration — and
     * return the ClusterResults keyed by spec string.  jobs(N)
     * parallelizes across policies; each fleet co-simulation itself
     * runs on clusterJobs(N) PDES shards and is bit-identically
     * deterministic for every shard count.
     */
    FleetResults runFleet() const;

  private:
    sim::SocConfig soc_;
    workload::TraceConfig trace_;
    std::vector<std::string> policies_;
    std::shared_ptr<const std::vector<sim::JobSpec>> stream_;
    std::string label_ = "experiment";
    SweepOptions opts_;
    std::vector<ResultSink *> sinks_;
    int cluster_ = 0; ///< Fleet size; 0 = single-SoC mode.
    int cluster_jobs_ = 1; ///< PDES shards per fleet run.
    std::string dispatcher_ = "rr";
    cluster::SynthConfig synth_;
    bool synthSet_ = false;
};

} // namespace moca::exp

#endif // MOCA_EXP_EXPERIMENT_H
