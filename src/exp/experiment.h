/**
 * @file
 * Fluent experiment builder — the user-facing front end of the
 * experiment layer.  One `Experiment` describes a set of policies
 * replaying the identical job stream on one SoC configuration:
 *
 *     const auto res = exp::Experiment()
 *                          .soc(cfg)
 *                          .trace(tc)
 *                          .policies({"moca", "prema",
 *                                     "moca:tick=2048"})
 *                          .jobs(4)
 *                          .run();
 *     double sla = res["moca"].metrics.slaRate;
 *
 * Policies are named by registry spec strings (registry.h); results
 * come back keyed by exactly the spec strings given.  This subsumes
 * the old runScenario/runTrace free-function triple: a default-built
 * Experiment with one policy is runScenario, withTrace() replaces the
 * pre-generated-trace overloads.  Execution goes through the parallel
 * sweep engine, so `jobs(N)` and `sink()` streaming come for free.
 */

#ifndef MOCA_EXP_EXPERIMENT_H
#define MOCA_EXP_EXPERIMENT_H

#include <memory>
#include <string>
#include <vector>

#include "exp/sweep/sweep.h"

namespace moca::exp {

/** Results of an Experiment, keyed by policy spec string. */
class ExperimentResults
{
  public:
    ExperimentResults(std::vector<std::string> specs,
                      std::vector<ScenarioResult> results);

    /** Result of one policy spec; fatal when the spec was not run. */
    const ScenarioResult &operator[](const std::string &spec) const;

    bool has(const std::string &spec) const;

    /** All results in the order the policies were given. */
    const std::vector<ScenarioResult> &all() const { return results_; }

    std::size_t size() const { return results_.size(); }
    auto begin() const { return results_.begin(); }
    auto end() const { return results_.end(); }

  private:
    std::vector<std::string> specs_;
    std::vector<ScenarioResult> results_;
};

/** Fluent builder for one multi-policy experiment. */
class Experiment
{
  public:
    Experiment() = default;

    /** SoC configuration (default: Table II). */
    Experiment &soc(const sim::SocConfig &cfg);

    /** Time-advance kernel of the configured SoC (shorthand for
     *  mutating soc().kernel; composes with a prior soc() call). */
    Experiment &kernel(sim::SimKernel k);

    /** Trace-generation parameters (workload set, QoS, tasks, seed). */
    Experiment &trace(const workload::TraceConfig &tc);

    /** Replace the policy list (registry spec strings). */
    Experiment &policies(std::vector<std::string> specs);

    /** Append one policy spec. */
    Experiment &policy(std::string spec);

    /**
     * Replay this pre-generated job stream instead of generating one
     * from trace() — e.g. a stream mutated by the caller, or one
     * shared with other experiments.
     */
    Experiment &
    withTrace(std::shared_ptr<const std::vector<sim::JobSpec>> specs);
    Experiment &withTrace(std::vector<sim::JobSpec> specs);

    /** Row label recorded in streamed sink records. */
    Experiment &label(std::string text);

    /** Worker threads (0 = hardware concurrency; default 1). */
    Experiment &jobs(int n);

    /** Per-cell progress lines while running. */
    Experiment &verbose(bool on);

    /** Attach a streaming result sink (not owned; repeatable). */
    Experiment &sink(ResultSink *s);

    /**
     * Validate every spec, run all policies on the identical job
     * stream, and return the results keyed by spec string.  Fatal on
     * unknown specs or an empty policy list.
     */
    ExperimentResults run() const;

  private:
    sim::SocConfig soc_;
    workload::TraceConfig trace_;
    std::vector<std::string> policies_;
    std::shared_ptr<const std::vector<sim::JobSpec>> stream_;
    std::string label_ = "experiment";
    SweepOptions opts_;
    std::vector<ResultSink *> sinks_;
};

} // namespace moca::exp

#endif // MOCA_EXP_EXPERIMENT_H
