/**
 * @file
 * Isolated-execution oracle: the C_single reference latencies used by
 * the QoS-target computation and the STP/fairness metrics.  A model's
 * isolated latency is measured by simulating it alone on the SoC (no
 * co-runners, no queueing) on a given tile count; results are
 * memoized per (model, tiles, config) since they are deterministic.
 */

#ifndef MOCA_EXP_ORACLE_H
#define MOCA_EXP_ORACLE_H

#include "common/units.h"
#include "dnn/model_zoo.h"
#include "sim/policy.h"
#include "sim/soc.h"

namespace moca::exp {

/**
 * Trivial policy that runs each waiting job as soon as enough tiles
 * are free, FCFS, on a fixed tile count.  Used by the oracle and as
 * the no-management policy of the Fig. 1 co-location study.
 */
class SoloPolicy : public sim::Policy
{
  public:
    explicit SoloPolicy(int tiles_per_job)
        : tilesPerJob_(tiles_per_job)
    {
    }

    const char *name() const override { return "solo"; }

    void schedule(sim::Soc &soc, sim::SchedEvent event) override;

  private:
    int tilesPerJob_;
};

/**
 * Isolated latency of `model` running alone on `num_tiles` tiles
 * under `cfg` (memoized).
 */
Cycles isolatedLatency(dnn::ModelId id, int num_tiles,
                       const sim::SocConfig &cfg);

/** Clear the memoization cache (tests that vary configs). */
void clearOracleCache();

} // namespace moca::exp

#endif // MOCA_EXP_ORACLE_H
