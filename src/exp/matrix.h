/**
 * @file
 * The 9-scenario evaluation matrix of the paper (Sec. V): three
 * workload sets {A, B, C} x three QoS levels {L, M, H}, each run
 * under the four policies on identical traces.  Shared by the
 * Fig. 5-8 benches.
 */

#ifndef MOCA_EXP_MATRIX_H
#define MOCA_EXP_MATRIX_H

#include <vector>

#include "exp/sweep/sweep.h"

namespace moca::exp {

/** One (set, qos) cell with the selected policies' results. */
struct MatrixCell
{
    workload::WorkloadSet set;
    workload::QosLevel qos;
    std::vector<ScenarioResult> byPolicy; ///< MatrixConfig::policies order.

    /** Result of the given policy spec; fatal when absent. */
    const ScenarioResult &result(const std::string &spec) const;

    /** Whether this cell holds a result for the spec. */
    bool has(const std::string &spec) const;
};

/** Parameters of a matrix sweep. */
struct MatrixConfig
{
    int numTasks = 250;
    double loadFactor = 0.8;
    double qosScale = 4.0;
    std::uint64_t seed = 1;
    bool verbose = true; ///< Print progress lines while running.
    int jobs = 1;        ///< Worker threads (0 = hw concurrency).

    /** Policy specs each scenario runs under; empty selects the four
     *  built-in policies (allPolicySpecs()). */
    std::vector<std::string> policies;

    /** `policies` with the default applied. */
    const std::vector<std::string> &policyList() const;
};

/** The 36 (set, qos, policy) cells of the matrix as a sweep grid;
 *  traces are generated once per (set, qos) and shared read-only. */
std::vector<SweepCell> matrixGrid(const MatrixConfig &mcfg,
                                  const sim::SocConfig &cfg);

/**
 * Run the full 3x3x4 matrix on the sweep engine.  Traces are
 * generated once per (set, qos) cell and replayed identically under
 * every policy; `sinks` (if any) observe all 36 cells in grid order.
 */
std::vector<MatrixCell>
runMatrix(const MatrixConfig &mcfg, const sim::SocConfig &cfg,
          const std::vector<ResultSink *> &sinks = {});

/** All (set, qos) pairs in presentation order (A/B/C x L/M/H). */
const std::vector<std::pair<workload::WorkloadSet,
                            workload::QosLevel>> &matrixCells();

} // namespace moca::exp

#endif // MOCA_EXP_MATRIX_H
