#include "exp/oracle.h"

#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "common/log.h"

namespace moca::exp {

void
SoloPolicy::schedule(sim::Soc &soc, sim::SchedEvent)
{
    while (soc.freeTiles() >= tilesPerJob_) {
        const auto waiting = soc.waitingJobs();
        if (waiting.empty())
            break;
        soc.startJob(waiting.front(), tilesPerJob_);
    }
}

namespace {

/** FNV-1a over every SocConfig field, so cells with different SoC
 *  configurations can share the cache concurrently (sensitivity and
 *  ablation sweeps) without poisoning each other. */
std::uint64_t
configFingerprint(const sim::SocConfig &cfg)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001B3ULL;
        }
    };
    auto mixd = [&](double d) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    };
    mix(static_cast<std::uint64_t>(cfg.numTiles));
    mix(static_cast<std::uint64_t>(cfg.arrayDim));
    mix(cfg.scratchpadBytes);
    mix(cfg.accumulatorBytes);
    mix(cfg.l2Bytes);
    mix(static_cast<std::uint64_t>(cfg.l2Banks));
    mixd(cfg.l2BankBytesPerCycle);
    mixd(cfg.dramBytesPerCycle);
    mixd(cfg.tileDmaBytesPerCycle);
    mixd(cfg.dmaRunAhead);
    mix(cfg.dmaBeatBytes);
    mixd(cfg.overlapF);
    mix(cfg.quantum);
    mix(static_cast<std::uint64_t>(cfg.kernel));
    mix(cfg.schedPeriod);
    mix(cfg.maxCycles);
    mix(cfg.layerBoundaryEvents ? 1 : 0);
    mix(cfg.migrationCycles);
    mix(cfg.interTileSyncCycles);
    mixd(cfg.multiTileSerialFraction);
    mix(cfg.dramProportionalArbitration ? 1 : 0);
    mixd(cfg.dramThrashFactor);
    mixd(cfg.dramThrashOnset);
    // The memory-model spec changes isolated latencies like any
    // other SoC parameter, so it is part of the cache identity.
    for (const char c : cfg.memModel)
        mix(static_cast<std::uint64_t>(
            static_cast<unsigned char>(c)));
    return h;
}

/** Cache key: model, tiles, and the full SoC configuration. */
using OracleKey = std::tuple<int, int, std::uint64_t>;

OracleKey
makeKey(dnn::ModelId id, int num_tiles, const sim::SocConfig &cfg)
{
    return {static_cast<int>(id), num_tiles, configFingerprint(cfg)};
}

std::mutex &
cacheMutex()
{
    static std::mutex m;
    return m;
}

std::map<OracleKey, Cycles> &
cache()
{
    // detlint: allow(R4) all access guarded by cacheMutex()
    static std::map<OracleKey, Cycles> c;
    return c;
}

} // anonymous namespace

Cycles
isolatedLatency(dnn::ModelId id, int num_tiles,
                const sim::SocConfig &cfg)
{
    const OracleKey key = makeKey(id, num_tiles, cfg);
    {
        std::lock_guard<std::mutex> lock(cacheMutex());
        auto it = cache().find(key);
        if (it != cache().end())
            return it->second;
    }

    // Simulate outside the lock; a racing duplicate computes the
    // identical deterministic value, so last-writer-wins is harmless.
    SoloPolicy policy(num_tiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &dnn::getModel(id);
    spec.dispatch = 0;
    spec.priority = 0;
    spec.slaLatency = 0;
    soc.addJob(spec);
    soc.run();

    const Cycles latency = soc.results().front().latency();
    std::lock_guard<std::mutex> lock(cacheMutex());
    cache()[key] = latency;
    return latency;
}

void
clearOracleCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex());
    cache().clear();
}

} // namespace moca::exp
