#include "exp/oracle.h"

#include <map>
#include <tuple>

#include "common/log.h"

namespace moca::exp {

void
SoloPolicy::schedule(sim::Soc &soc, sim::SchedEvent)
{
    while (soc.freeTiles() >= tilesPerJob_) {
        const auto waiting = soc.waitingJobs();
        if (waiting.empty())
            break;
        soc.startJob(waiting.front(), tilesPerJob_);
    }
}

namespace {

/** Cache key: model, tiles, and the config fields that affect
 *  isolated latency. */
using OracleKey = std::tuple<int, int, std::uint64_t, std::uint64_t,
                             int, long, long, long>;

OracleKey
makeKey(dnn::ModelId id, int num_tiles, const sim::SocConfig &cfg)
{
    return {static_cast<int>(id), num_tiles, cfg.scratchpadBytes,
            cfg.l2Bytes, cfg.arrayDim,
            static_cast<long>(cfg.dramBytesPerCycle * 1000),
            static_cast<long>(cfg.l2BytesPerCycle() * 1000),
            static_cast<long>(cfg.overlapF * 1000)};
}

std::map<OracleKey, Cycles> &
cache()
{
    static std::map<OracleKey, Cycles> c;
    return c;
}

} // anonymous namespace

Cycles
isolatedLatency(dnn::ModelId id, int num_tiles,
                const sim::SocConfig &cfg)
{
    const OracleKey key = makeKey(id, num_tiles, cfg);
    auto it = cache().find(key);
    if (it != cache().end())
        return it->second;

    SoloPolicy policy(num_tiles);
    sim::Soc soc(cfg, policy);
    sim::JobSpec spec;
    spec.id = 0;
    spec.model = &dnn::getModel(id);
    spec.dispatch = 0;
    spec.priority = 0;
    spec.slaLatency = 0;
    soc.addJob(spec);
    soc.run();

    const Cycles latency = soc.results().front().latency();
    cache()[key] = latency;
    return latency;
}

void
clearOracleCache()
{
    cache().clear();
}

} // namespace moca::exp
