#include "exp/matrix.h"

#include "common/log.h"

namespace moca::exp {

const ScenarioResult &
MatrixCell::result(PolicyKind kind) const
{
    for (const auto &r : byPolicy)
        if (r.policy == kind)
            return r;
    panic("matrix cell has no result for policy %s",
          policyKindName(kind));
}

const std::vector<std::pair<workload::WorkloadSet,
                            workload::QosLevel>> &
matrixCells()
{
    using workload::QosLevel;
    using workload::WorkloadSet;
    static const std::vector<std::pair<WorkloadSet, QosLevel>> cells = {
        {WorkloadSet::A, QosLevel::Light},
        {WorkloadSet::A, QosLevel::Medium},
        {WorkloadSet::A, QosLevel::Hard},
        {WorkloadSet::B, QosLevel::Light},
        {WorkloadSet::B, QosLevel::Medium},
        {WorkloadSet::B, QosLevel::Hard},
        {WorkloadSet::C, QosLevel::Light},
        {WorkloadSet::C, QosLevel::Medium},
        {WorkloadSet::C, QosLevel::Hard},
    };
    return cells;
}

std::vector<MatrixCell>
runMatrix(const MatrixConfig &mcfg, const sim::SocConfig &cfg)
{
    std::vector<MatrixCell> out;
    for (const auto &[set, qos] : matrixCells()) {
        workload::TraceConfig trace;
        trace.set = set;
        trace.qos = qos;
        trace.numTasks = mcfg.numTasks;
        trace.loadFactor = mcfg.loadFactor;
        trace.qosScale = mcfg.qosScale;
        trace.seed = mcfg.seed;

        const auto specs = makeTrace(trace, cfg);

        MatrixCell cell;
        cell.set = set;
        cell.qos = qos;
        for (PolicyKind kind : allPolicies()) {
            if (mcfg.verbose)
                inform("running %s / %s / %s (%d tasks)...",
                       workload::workloadSetName(set),
                       workload::qosLevelName(qos),
                       policyKindName(kind), mcfg.numTasks);
            cell.byPolicy.push_back(
                runTrace(kind, specs, trace, cfg));
        }
        out.push_back(std::move(cell));
    }
    return out;
}

} // namespace moca::exp
