#include "exp/matrix.h"

#include "common/log.h"

namespace moca::exp {

const ScenarioResult &
MatrixCell::result(const std::string &spec) const
{
    for (const auto &r : byPolicy)
        if (r.policy == spec)
            return r;
    fatal("matrix cell has no result for policy '%s'", spec.c_str());
}

bool
MatrixCell::has(const std::string &spec) const
{
    for (const auto &r : byPolicy)
        if (r.policy == spec)
            return true;
    return false;
}

const std::vector<std::string> &
MatrixConfig::policyList() const
{
    return policies.empty() ? allPolicySpecs() : policies;
}

const std::vector<std::pair<workload::WorkloadSet,
                            workload::QosLevel>> &
matrixCells()
{
    using workload::QosLevel;
    using workload::WorkloadSet;
    static const std::vector<std::pair<WorkloadSet, QosLevel>> cells = {
        {WorkloadSet::A, QosLevel::Light},
        {WorkloadSet::A, QosLevel::Medium},
        {WorkloadSet::A, QosLevel::Hard},
        {WorkloadSet::B, QosLevel::Light},
        {WorkloadSet::B, QosLevel::Medium},
        {WorkloadSet::B, QosLevel::Hard},
        {WorkloadSet::C, QosLevel::Light},
        {WorkloadSet::C, QosLevel::Medium},
        {WorkloadSet::C, QosLevel::Hard},
    };
    return cells;
}

std::vector<SweepCell>
matrixGrid(const MatrixConfig &mcfg, const sim::SocConfig &cfg)
{
    std::vector<SweepCell> grid;
    grid.reserve(matrixCells().size() * mcfg.policyList().size());
    for (const auto &[set, qos] : matrixCells()) {
        workload::TraceConfig trace;
        trace.set = set;
        trace.qos = qos;
        trace.numTasks = mcfg.numTasks;
        trace.loadFactor = mcfg.loadFactor;
        trace.qosScale = mcfg.qosScale;
        trace.seed = mcfg.seed;

        // One trace per (set, qos), replayed identically under every
        // policy (shared read-only between the four cells).
        appendPolicyCells(
            grid,
            std::string(workload::workloadSetName(set)) + " " +
                workload::qosLevelName(qos),
            mcfg.policyList(), trace, cfg);
    }
    return grid;
}

std::vector<MatrixCell>
runMatrix(const MatrixConfig &mcfg, const sim::SocConfig &cfg,
          const std::vector<ResultSink *> &sinks)
{
    const auto grid = matrixGrid(mcfg, cfg);

    SweepOptions opts;
    opts.jobs = mcfg.jobs;
    opts.verbose = mcfg.verbose;
    const auto results = SweepRunner(opts).run(grid, sinks);

    // Reassemble the flat grid (policy-major within each scenario)
    // into the 9 MatrixCells the figure benches pivot on.
    std::vector<MatrixCell> out;
    const std::size_t per_cell = mcfg.policyList().size();
    for (std::size_t c = 0; c < matrixCells().size(); ++c) {
        MatrixCell cell;
        cell.set = matrixCells()[c].first;
        cell.qos = matrixCells()[c].second;
        for (std::size_t p = 0; p < per_cell; ++p)
            cell.byPolicy.push_back(results[c * per_cell + p]);
        out.push_back(std::move(cell));
    }
    return out;
}

} // namespace moca::exp
