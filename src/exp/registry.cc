#include "exp/registry.h"

#include <algorithm>

#include "baselines/planaria.h"
#include "baselines/prema.h"
#include "baselines/static_partition.h"
#include "common/argparse.h"
#include "common/log.h"
#include "common/text.h"
#include "exp/oracle.h"
#include "moca/moca_policy.h"

namespace moca::exp {

namespace {

/**
 * Apply a validated spec's parameters to a policy config struct via
 * its applyParam surface.  The registry has already checked every key
 * against the declared schema, so an unknown key here is a schema /
 * applyParam mismatch — a programming error in the registration.
 */
template <typename Config>
Config
configFromSpec(const PolicySpec &spec, Config cfg = Config())
{
    for (const auto &[key, value] : spec.params) {
        if (!cfg.applyParam(key, value))
            panic("policy %s declares parameter '%s' but its "
                  "applyParam does not handle it",
                  spec.name.c_str(), key.c_str());
    }
    return cfg;
}

void
registerBuiltins(PolicyRegistry &reg)
{
    // The paper's presentation order: the three baselines, then MoCA.
    reg.add({
        "prema",
        "PREMA [9]: time-multiplexed baseline, token-based "
        "priorities, checkpointing preemption",
        {{"preempt_margin", "double", "2.0",
          "token advantage a challenger needs to preempt"}},
        [](const sim::SocConfig &cfg, const PolicySpec &spec) {
            return std::make_unique<baselines::PremaPolicy>(
                cfg, configFromSpec<baselines::PremaConfig>(spec));
        },
    });
    reg.add({
        "static",
        "static spatial partitioning: fixed equal partitions, "
        "priority-plus-age admission, no runtime adaptation",
        {{"partitions", "int", "4",
          "number of fixed partitions of the tile array"}},
        [](const sim::SocConfig &cfg, const PolicySpec &spec) {
            return std::make_unique<baselines::StaticPartitionPolicy>(
                cfg,
                configFromSpec<baselines::StaticPartitionConfig>(
                    spec));
        },
    });
    reg.add({
        "planaria",
        "Planaria [18]: dynamic compute fission by deadline "
        "pressure, memory-oblivious",
        {{"min_tiles", "int", "1",
          "smallest pod a job can be fissioned down to"},
         {"max_concurrent", "int", "8",
          "cap on concurrently co-located jobs"}},
        [](const sim::SocConfig &cfg, const PolicySpec &spec) {
            return std::make_unique<baselines::PlanariaPolicy>(
                cfg, configFromSpec<baselines::PlanariaConfig>(spec));
        },
    });
    reg.add({
        "moca",
        "MoCA: memory-centric adaptive execution — Alg. 3 "
        "scheduling, Alg. 2 contention detection, HW throttling",
        {{"slots", "int", "4", "concurrent job slots"},
         {"throttle", "bool", "1",
          "program the MoCA throttle engines"},
         {"pairing", "bool", "1",
          "Algorithm 3 memory-aware pairing"},
         {"dynamic_score", "bool", "1",
          "dynamic priority score (remaining/slack term)"},
         {"repartition", "bool", "1",
          "allow the rare compute-tile repartitioning"},
         {"score_threshold", "double", "0",
          "ExQueue admission threshold (Alg. 3 line 14)"},
         {"sparsity_aware", "bool", "1",
          "sparsity-aware performance predictor"},
         {"repartition_benefit", "double", "6",
          "migration penalties a repartition must amortize"},
         {"tick", "int", "0",
          "fixed throttle window in cycles (0 = prediction-derived)"},
         {"threshold", "scaled|fixed", "scaled",
          "throttle budget from score-weighted allocation or the "
          "equal 1/N share"}},
        [](const sim::SocConfig &cfg, const PolicySpec &spec) {
            return std::make_unique<MocaPolicy>(
                cfg, configFromSpec<MocaPolicyConfig>(spec));
        },
    });
    reg.add({
        "solo",
        "no management: FCFS onto a fixed tile count per job (the "
        "Fig. 1 co-location baseline)",
        {{"tiles", "int", "0",
          "tiles per job (0 = the whole array)"}},
        [](const sim::SocConfig &cfg, const PolicySpec &spec) {
            int tiles = 0;
            for (const auto &[key, value] : spec.params)
                if (key == "tiles")
                    tiles = static_cast<int>(
                        parseIntValue("solo:tiles", value));
            if (tiles == 0)
                tiles = cfg.numTiles; // 0 = the whole array.
            if (tiles < 0 || tiles > cfg.numTiles)
                fatal("solo: tiles must be in [0, %d]", cfg.numTiles);
            return std::make_unique<SoloPolicy>(tiles);
        },
    });
}

} // namespace

PolicyRegistry &
PolicyRegistry::instance()
{
    // detlint: allow(R4) magic-static init; read-only after startup
    static PolicyRegistry reg = [] {
        PolicyRegistry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

std::unique_ptr<sim::Policy>
PolicyRegistry::make(const PolicySpec &spec,
                     const sim::SocConfig &cfg) const
{
    return checkSpec(spec).factory(cfg, spec);
}

std::unique_ptr<sim::Policy>
PolicyRegistry::make(const std::string &spec,
                     const sim::SocConfig &cfg) const
{
    return make(PolicySpec::parse(spec, "policy"), cfg);
}

void
PolicyRegistry::validate(const std::string &spec) const
{
    // Structural validation only: grammar, policy name (with
    // did-you-mean), and declared parameter keys.  Parameter
    // *values* are checked at construction time against the SoC
    // configuration the policy actually runs on — range checks like
    // "solo:tiles=16" depend on it, so validating them against a
    // default-constructed config would falsely reject specs.
    (void)checkSpec(PolicySpec::parse(spec, "policy"));
}

std::vector<std::string>
splitPolicyList(const std::string &list, const char *flag)
{
    std::vector<std::string> specs;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        auto comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string token = list.substr(pos, comma - pos);
        if (!token.empty() &&
            token.find('=') != std::string::npos &&
            token.find(':') == std::string::npos && !specs.empty()) {
            // A bare key=value continues the previous spec's
            // parameter list ("moca:tick=2048,threshold=fixed").
            specs.back() += "," + token;
        } else if (!token.empty()) {
            specs.push_back(token);
        }
        if (comma == list.size())
            break;
        pos = comma + 1;
    }
    if (specs.empty())
        fatal("%s: empty spec list", flag);
    return specs;
}

} // namespace moca::exp
