#include "exp/experiment.h"

#include "common/log.h"
#include "exp/registry.h"

namespace moca::exp {

ExperimentResults::ExperimentResults(
    std::vector<std::string> specs,
    std::vector<ScenarioResult> results)
    : specs_(std::move(specs)), results_(std::move(results))
{
}

bool
ExperimentResults::has(const std::string &spec) const
{
    for (const auto &s : specs_)
        if (s == spec)
            return true;
    return false;
}

const ScenarioResult &
ExperimentResults::operator[](const std::string &spec) const
{
    for (std::size_t i = 0; i < specs_.size(); ++i)
        if (specs_[i] == spec)
            return results_[i];
    std::string known;
    for (const auto &s : specs_) {
        if (!known.empty())
            known += ", ";
        known += s;
    }
    fatal("experiment has no result for policy '%s'; ran: %s",
          spec.c_str(), known.c_str());
}

Experiment &
Experiment::soc(const sim::SocConfig &cfg)
{
    soc_ = cfg;
    return *this;
}

Experiment &
Experiment::kernel(sim::SimKernel k)
{
    soc_.kernel = k;
    return *this;
}

Experiment &
Experiment::trace(const workload::TraceConfig &tc)
{
    trace_ = tc;
    return *this;
}

Experiment &
Experiment::policies(std::vector<std::string> specs)
{
    policies_ = std::move(specs);
    return *this;
}

Experiment &
Experiment::policy(std::string spec)
{
    policies_.push_back(std::move(spec));
    return *this;
}

Experiment &
Experiment::withTrace(
    std::shared_ptr<const std::vector<sim::JobSpec>> specs)
{
    stream_ = std::move(specs);
    return *this;
}

Experiment &
Experiment::withTrace(std::vector<sim::JobSpec> specs)
{
    stream_ = std::make_shared<const std::vector<sim::JobSpec>>(
        std::move(specs));
    return *this;
}

Experiment &
Experiment::label(std::string text)
{
    label_ = std::move(text);
    return *this;
}

Experiment &
Experiment::jobs(int n)
{
    opts_.jobs = n;
    return *this;
}

Experiment &
Experiment::verbose(bool on)
{
    opts_.verbose = on;
    return *this;
}

Experiment &
Experiment::sink(ResultSink *s)
{
    sinks_.push_back(s);
    return *this;
}

ExperimentResults
Experiment::run() const
{
    if (policies_.empty())
        fatal("experiment: no policies given (use .policy(\"moca\") "
              "or .policies({...}))");
    for (const auto &spec : policies_)
        PolicyRegistry::instance().validate(spec);

    // All policies replay the identical job stream: the caller's
    // pre-generated stream, or one generated once here and shared.
    auto stream = stream_;
    if (!stream)
        stream = std::make_shared<const std::vector<sim::JobSpec>>(
            makeTrace(trace_, soc_));

    std::vector<SweepCell> grid;
    grid.reserve(policies_.size());
    for (const auto &spec : policies_) {
        SweepCell cell;
        cell.label = label_;
        cell.policy = spec;
        cell.trace = trace_;
        cell.soc = soc_;
        cell.specs = stream;
        grid.push_back(std::move(cell));
    }

    auto results = SweepRunner(opts_).run(grid, sinks_);
    return ExperimentResults(policies_, std::move(results));
}

} // namespace moca::exp
