#include "exp/experiment.h"

#include "common/log.h"
#include "common/text.h"
#include "exp/oracle.h"
#include "exp/registry.h"
#include "mem/memory_model.h"

namespace moca::exp {

Experiment &
Experiment::soc(const sim::SocConfig &cfg)
{
    soc_ = cfg;
    return *this;
}

Experiment &
Experiment::kernel(sim::SimKernel k)
{
    soc_.kernel = k;
    return *this;
}

Experiment &
Experiment::mem(std::string spec)
{
    soc_.memModel = std::move(spec);
    return *this;
}

Experiment &
Experiment::sampleEvery(Cycles every)
{
    soc_.sampleEvery = every;
    return *this;
}

Experiment &
Experiment::trace(const workload::TraceConfig &tc)
{
    trace_ = tc;
    return *this;
}

Experiment &
Experiment::policies(std::vector<std::string> specs)
{
    policies_ = std::move(specs);
    return *this;
}

Experiment &
Experiment::policy(std::string spec)
{
    policies_.push_back(std::move(spec));
    return *this;
}

Experiment &
Experiment::withTrace(
    std::shared_ptr<const std::vector<sim::JobSpec>> specs)
{
    stream_ = std::move(specs);
    return *this;
}

Experiment &
Experiment::withTrace(std::vector<sim::JobSpec> specs)
{
    stream_ = std::make_shared<const std::vector<sim::JobSpec>>(
        std::move(specs));
    return *this;
}

Experiment &
Experiment::label(std::string text)
{
    label_ = std::move(text);
    return *this;
}

Experiment &
Experiment::jobs(int n)
{
    opts_.jobs = n;
    return *this;
}

Experiment &
Experiment::verbose(bool on)
{
    opts_.verbose = on;
    return *this;
}

Experiment &
Experiment::sink(ResultSink *s)
{
    sinks_.push_back(s);
    return *this;
}

Experiment &
Experiment::cluster(int n)
{
    if (n < 1)
        fatal("cluster(%d): fleet needs at least one SoC", n);
    cluster_ = n;
    return *this;
}

Experiment &
Experiment::dispatcher(std::string spec)
{
    dispatcher_ = std::move(spec);
    if (cluster_ == 0)
        cluster_ = 1;
    return *this;
}

Experiment &
Experiment::clusterJobs(int n)
{
    if (n < 1)
        fatal("clusterJobs(%d): the fleet engine needs at least one "
              "worker", n);
    cluster_jobs_ = n;
    if (cluster_ == 0)
        cluster_ = 1;
    return *this;
}

Experiment &
Experiment::fleetWorkload(const cluster::SynthConfig &synth)
{
    synth_ = synth;
    synthSet_ = true;
    if (cluster_ == 0)
        cluster_ = 1;
    return *this;
}

FleetResults
Experiment::runFleet() const
{
    if (policies_.empty())
        fatal("fleet experiment: no policies given (use "
              ".policy(\"moca\") or .policies({...}))");
    if (!sinks_.empty())
        fatal("fleet experiment: streaming sinks are not supported "
              "(ClusterResults are not per-scenario rows); drop the "
              "sink() call");
    const int n = cluster_ == 0 ? 1 : cluster_;
    for (const auto &spec : policies_)
        PolicyRegistry::instance().validate(spec);
    cluster::DispatcherRegistry::instance().validate(dispatcher_);
    mem::MemoryModelRegistry::instance().validate(soc_.memModel,
                                                  soc_);

    // Every policy replays the identical task stream: synthesized
    // open-loop, or the (possibly pre-generated) single-SoC trace
    // replayed at cluster scale.
    std::vector<cluster::ClusterTask> tasks;
    std::uint64_t dispatch_seed = trace_.seed;
    if (synthSet_) {
        cluster::SynthConfig synth = synth_;
        if (synth.fleetTiles == 0)
            synth.fleetTiles = n * soc_.numTiles;
        dispatch_seed = synth.seed;
        tasks = cluster::synthesizeTasks(synth, [&](dnn::ModelId id) {
            return isolatedLatency(id, 1, soc_);
        });
    } else if (stream_) {
        tasks = cluster::tasksFromJobSpecs(*stream_);
    } else {
        tasks = cluster::tasksFromJobSpecs(makeTrace(trace_, soc_));
    }

    std::vector<cluster::ClusterResult> results(policies_.size());
    SweepRunner::runIndexed(
        policies_.size(), opts_.jobs, [&](std::size_t i) {
            cluster::ClusterConfig cc =
                cluster::ClusterConfig::homogeneous(n, soc_);
            cc.policy = policies_[i];
            cc.dispatcher = dispatcher_;
            cc.dispatcherSeed = dispatch_seed;
            cc.jobs = cluster_jobs_;
            results[i] = cluster::runCluster(cc, tasks);
        });
    return FleetResults(policies_, std::move(results));
}

ExperimentResults
Experiment::run() const
{
    if (cluster_ != 0)
        fatal("experiment: cluster(%d)/dispatcher() configured; use "
              "runFleet() for fleet co-simulation", cluster_);
    if (policies_.empty())
        fatal("experiment: no policies given (use .policy(\"moca\") "
              "or .policies({...}))");
    for (const auto &spec : policies_)
        PolicyRegistry::instance().validate(spec);
    mem::MemoryModelRegistry::instance().validate(soc_.memModel,
                                                  soc_);

    // All policies replay the identical job stream: the caller's
    // pre-generated stream, or one generated once here and shared.
    auto stream = stream_;
    if (!stream)
        stream = std::make_shared<const std::vector<sim::JobSpec>>(
            makeTrace(trace_, soc_));

    std::vector<SweepCell> grid;
    grid.reserve(policies_.size());
    for (const auto &spec : policies_) {
        SweepCell cell;
        cell.label = label_;
        cell.policy = spec;
        cell.trace = trace_;
        cell.soc = soc_;
        cell.specs = stream;
        grid.push_back(std::move(cell));
    }

    auto results = SweepRunner(opts_).run(grid, sinks_);
    return ExperimentResults(policies_, std::move(results));
}

} // namespace moca::exp
