/**
 * @file
 * Open, string-keyed policy registry: the seam through which every
 * multi-tenancy mechanism — the paper's four plus any user-defined
 * policy — is named, parameterized, and instantiated.
 *
 * A *policy spec* is a string of the form
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. "moca", "moca:tick=2048,threshold=fixed", or
 * "prema:preempt_margin=1.5".  Each registered policy declares a
 * factory, a one-line description, and a parameter schema; the
 * registry validates specs against the schema and fails loudly with
 * actionable errors (unknown names get a did-you-mean suggestion,
 * unknown parameters get the declared parameter list).
 *
 * Registration is open: link-time self-registration through
 * `PolicyRegistrar` lets examples and downstream users plug in new
 * policies without touching this file (see
 * examples/scheduler_playground.cpp).  The four built-in policies are
 * registered by the registry itself so they are always available.
 */

#ifndef MOCA_EXP_REGISTRY_H
#define MOCA_EXP_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/policy.h"

namespace moca::exp {

/** A parsed policy spec: base name + key=value parameters in the
 *  order given. */
struct PolicySpec
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;

    /** Parse "name:key=value,..."; fatal on syntax errors. */
    static PolicySpec parse(const std::string &spec);

    /** Re-serialize to the canonical "name:key=value,..." form. */
    std::string canonical() const;
};

/** One declared parameter of a registered policy (schema entry used
 *  by --list-policies and spec validation). */
struct PolicyParam
{
    std::string key;
    std::string type; ///< "int", "double", "bool", or an enum list.
    std::string defaultValue;
    std::string description;
};

/** Everything the registry knows about one policy. */
struct PolicyInfo
{
    std::string name;
    std::string description;
    std::vector<PolicyParam> params;

    /**
     * Build the policy for `cfg` with `spec`'s parameters applied.
     * Called with an already-validated spec (name matches, every
     * param key is declared); factories apply values through the
     * config structs' applyParam surface, which is fatal on
     * malformed values.  Must be thread-safe: sweep workers invoke
     * it concurrently.
     */
    std::function<std::unique_ptr<sim::Policy>(
        const sim::SocConfig &cfg, const PolicySpec &spec)>
        factory;
};

/**
 * The process-wide policy registry.  All lookups go through spec
 * strings; iteration order is registration order (built-ins first, in
 * the paper's presentation order).
 */
class PolicyRegistry
{
  public:
    /** The singleton (built-ins are registered on first use). */
    static PolicyRegistry &instance();

    /** Register a policy; fatal on a duplicate name. */
    void add(PolicyInfo info);

    bool contains(const std::string &name) const;

    /** Registered names in registration order. */
    std::vector<std::string> names() const;

    /** Metadata for `name`; fatal (with did-you-mean) when unknown. */
    const PolicyInfo &info(const std::string &name) const;

    /**
     * Parse, validate, and build a policy from a spec string.  This
     * is the one entry point scenario/sweep/Experiment use; unknown
     * names and undeclared parameters are fatal with actionable
     * messages.
     */
    std::unique_ptr<sim::Policy> make(const std::string &spec,
                                      const sim::SocConfig &cfg) const;
    std::unique_ptr<sim::Policy> make(const PolicySpec &spec,
                                      const sim::SocConfig &cfg) const;

    /**
     * Structurally validate a spec string without building the
     * policy: grammar, name (did-you-mean on typos), and declared
     * parameter keys.  Parameter values are checked when the policy
     * is built against its actual SoC configuration.
     */
    void validate(const std::string &spec) const;

    /** Human-readable catalogue (--list-policies output). */
    std::string listText() const;

  private:
    PolicyRegistry() = default;

    std::vector<PolicyInfo> policies_;
    std::map<std::string, std::size_t> byName_;

    const PolicyInfo *find(const std::string &name) const;
    [[noreturn]] void unknownPolicy(const std::string &name) const;

    /** Name + declared-parameter-key validation shared by make() and
     *  validate(); fatal with actionable messages. */
    const PolicyInfo &checkSpec(const PolicySpec &spec) const;
};

/**
 * Link-time self-registration hook:
 *
 *     static exp::PolicyRegistrar reg({"mine", "...", {...}, factory});
 */
struct PolicyRegistrar
{
    explicit PolicyRegistrar(PolicyInfo info)
    {
        PolicyRegistry::instance().add(std::move(info));
    }
};

/**
 * Split a `--policy`-style list into individual specs.  Commas
 * separate both specs and parameters; a token containing '=' extends
 * the previous spec's parameter list, any other token starts a new
 * spec: "moca:tick=2048,threshold=fixed,prema" is the parameterized
 * moca spec followed by plain prema.  `flag` names the option in the
 * empty-list error ("--policy", "--dispatcher").
 */
std::vector<std::string> splitPolicyList(const std::string &list,
                                         const char *flag = "--policy");

} // namespace moca::exp

#endif // MOCA_EXP_REGISTRY_H
