/**
 * @file
 * Open, string-keyed policy registry: the seam through which every
 * multi-tenancy mechanism — the paper's four plus any user-defined
 * policy — is named, parameterized, and instantiated.
 *
 * A *policy spec* is a string of the form
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. "moca", "moca:tick=2048,threshold=fixed", or
 * "prema:preempt_margin=1.5".  Each registered policy declares a
 * factory, a one-line description, and a parameter schema; the
 * registry validates specs against the schema and fails loudly with
 * actionable errors (unknown names get a did-you-mean suggestion,
 * unknown parameters get the declared parameter list).
 *
 * Registration is open: link-time self-registration through
 * `PolicyRegistrar` lets examples and downstream users plug in new
 * policies without touching this file (see
 * examples/scheduler_playground.cpp).  The four built-in policies are
 * registered by the registry itself so they are always available.
 */

#ifndef MOCA_EXP_REGISTRY_H
#define MOCA_EXP_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec.h"
#include "common/spec_registry.h"
#include "sim/config.h"
#include "sim/policy.h"

namespace moca::exp {

/** A parsed policy spec: base name + key=value parameters in the
 *  order given (the shared registry grammar of common/spec.h). */
using PolicySpec = moca::Spec;

/** One declared parameter of a registered policy (schema entry used
 *  by --list-policies and spec validation). */
using PolicyParam = moca::SpecParam;

/** Everything the registry knows about one policy. */
struct PolicyInfo
{
    std::string name;
    std::string description;
    std::vector<PolicyParam> params;

    /**
     * Build the policy for `cfg` with `spec`'s parameters applied.
     * Called with an already-validated spec (name matches, every
     * param key is declared); factories apply values through the
     * config structs' applyParam surface, which is fatal on
     * malformed values.  Must be thread-safe: sweep workers invoke
     * it concurrently.
     */
    std::function<std::unique_ptr<sim::Policy>(
        const sim::SocConfig &cfg, const PolicySpec &spec)>
        factory;
};

/**
 * The process-wide policy registry.  All lookups go through spec
 * strings; iteration order is registration order (built-ins first, in
 * the paper's presentation order).  Registration, name lookup with
 * did-you-mean, parameter-key validation, and the catalogue come from
 * the shared moca::SpecRegistry base.
 */
class PolicyRegistry : public moca::SpecRegistry<PolicyInfo>
{
  public:
    /** The singleton (built-ins are registered on first use). */
    static PolicyRegistry &instance();

    /**
     * Parse, validate, and build a policy from a spec string.  This
     * is the one entry point scenario/sweep/Experiment use; unknown
     * names and undeclared parameters are fatal with actionable
     * messages.
     */
    std::unique_ptr<sim::Policy> make(const std::string &spec,
                                      const sim::SocConfig &cfg) const;
    std::unique_ptr<sim::Policy> make(const PolicySpec &spec,
                                      const sim::SocConfig &cfg) const;

    /**
     * Structurally validate a spec string without building the
     * policy: grammar, name (did-you-mean on typos), and declared
     * parameter keys.  Parameter values are checked when the policy
     * is built against its actual SoC configuration.
     */
    void validate(const std::string &spec) const;

  private:
    PolicyRegistry()
        : SpecRegistry("policy", "policies", "--list-policies")
    {
    }
};

/**
 * Link-time self-registration hook:
 *
 *     static exp::PolicyRegistrar reg({"mine", "...", {...}, factory});
 */
struct PolicyRegistrar
{
    explicit PolicyRegistrar(PolicyInfo info)
    {
        PolicyRegistry::instance().add(std::move(info));
    }
};

/**
 * Split a `--policy`-style list into individual specs.  Commas
 * separate both specs and parameters; a token containing '=' extends
 * the previous spec's parameter list, any other token starts a new
 * spec: "moca:tick=2048,threshold=fixed,prema" is the parameterized
 * moca spec followed by plain prema.  `flag` names the option in the
 * empty-list error ("--policy", "--dispatcher").
 */
std::vector<std::string> splitPolicyList(const std::string &list,
                                         const char *flag = "--policy");

} // namespace moca::exp

#endif // MOCA_EXP_REGISTRY_H
