/**
 * @file
 * Scenario runner shared by the benchmark binaries and examples: it
 * builds an SoC + policy, replays a generated multi-tenant trace, and
 * computes the paper's metrics.  One `Scenario` corresponds to one
 * cell of Figures 5-8 (a workload set x QoS level x policy).
 */

#ifndef MOCA_EXP_SCENARIO_H
#define MOCA_EXP_SCENARIO_H

#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "sim/config.h"
#include "sim/job.h"
#include "sim/policy.h"
#include "workload/workload.h"

namespace moca::exp {

/** The four multi-tenancy mechanisms under comparison. */
enum class PolicyKind
{
    Prema,
    StaticPartition,
    Planaria,
    Moca,
};

/** All policies in the paper's presentation order. */
const std::vector<PolicyKind> &allPolicies();

/** Printable name ("prema", "static", "planaria", "moca"). */
const char *policyKindName(PolicyKind kind);

/** Instantiate a policy for the given SoC configuration. */
std::unique_ptr<sim::Policy> makePolicy(PolicyKind kind,
                                        const sim::SocConfig &cfg);

/** Outcome of one scenario run. */
struct ScenarioResult
{
    PolicyKind policy;
    workload::TraceConfig trace;
    metrics::RunMetrics metrics;
    std::vector<sim::JobResult> jobs;
    Cycles makespan = 0;         ///< Cycle the last job finished.
    double dramBusyFraction = 0.0;
    double thrashLostBytes = 0.0; ///< DRAM bandwidth lost to thrash.
    int totalMigrations = 0;
    int totalPreemptions = 0;
    int totalThrottleReconfigs = 0;
};

/**
 * Run one scenario: generate the trace for `trace`, execute it under
 * `kind`, and compute metrics against the full-SoC isolated-latency
 * oracle.
 */
ScenarioResult runScenario(PolicyKind kind,
                           const workload::TraceConfig &trace,
                           const sim::SocConfig &cfg);

/**
 * Run a pre-generated trace (used when several policies must see the
 * identical job stream).
 */
ScenarioResult runTrace(PolicyKind kind,
                        const std::vector<sim::JobSpec> &specs,
                        const workload::TraceConfig &trace,
                        const sim::SocConfig &cfg);

/**
 * Run a pre-generated trace under an already-built policy (custom
 * policy configurations outside the PolicyKind registry).  `kind` is
 * recorded in the result for reporting only.
 */
ScenarioResult runTrace(sim::Policy &policy, PolicyKind kind,
                        const std::vector<sim::JobSpec> &specs,
                        const workload::TraceConfig &trace,
                        const sim::SocConfig &cfg);

/** Generate the trace for a TraceConfig (oracle-backed QoS targets). */
std::vector<sim::JobSpec>
makeTrace(const workload::TraceConfig &trace, const sim::SocConfig &cfg);

} // namespace moca::exp

#endif // MOCA_EXP_SCENARIO_H
