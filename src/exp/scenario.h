/**
 * @file
 * Scenario runner shared by the benchmark binaries and examples: it
 * builds an SoC + policy, replays a generated multi-tenant trace, and
 * computes the paper's metrics.  One `Scenario` corresponds to one
 * cell of Figures 5-8 (a workload set x QoS level x policy).
 *
 * Policies are identified by *spec strings* resolved through
 * exp::PolicyRegistry ("moca", "prema", "moca:tick=2048", ...); see
 * registry.h for the grammar.  The fluent exp::Experiment builder
 * (experiment.h) is the preferred front end; the free functions here
 * are the single-run primitives it (and the sweep engine) compose.
 */

#ifndef MOCA_EXP_SCENARIO_H
#define MOCA_EXP_SCENARIO_H

#include <memory>
#include <string>
#include <vector>

#include "mem/memory_model.h"
#include "metrics/metrics.h"
#include "obs/sampler.h"
#include "sim/config.h"
#include "sim/job.h"
#include "sim/policy.h"
#include "workload/workload.h"

namespace moca::exp {

/** The four built-in policy specs in the paper's presentation order
 *  ("prema", "static", "planaria", "moca"). */
const std::vector<std::string> &allPolicySpecs();

/** Instantiate a policy from a spec string via the registry; fatal
 *  (with did-you-mean) on unknown names or parameters. */
std::unique_ptr<sim::Policy> makePolicy(const std::string &spec,
                                        const sim::SocConfig &cfg);

/** Outcome of one scenario run. */
struct ScenarioResult
{
    /** The policy spec string the scenario ran under. */
    std::string policy;
    workload::TraceConfig trace;
    metrics::RunMetrics metrics;
    std::vector<sim::JobResult> jobs;
    Cycles makespan = 0;         ///< Cycle the last job finished.
    double dramBusyFraction = 0.0;
    double thrashLostBytes = 0.0; ///< DRAM bandwidth lost to thrash.
    /** Demand/arbitrate/advance rounds the kernel executed (fixed
     *  quanta or event steps; see SocStats::quanta). */
    std::uint64_t simSteps = 0;
    Cycles cyclesSimulated = 0;  ///< Simulated time of the run.
    /** The memory model's per-level traffic counters (row hits and
     *  misses, per-bank bytes, L2 bank-conflict loss); all zero
     *  under the bank-less `flat` model. */
    mem::MemTraffic memTraffic;
    int totalMigrations = 0;
    int totalPreemptions = 0;
    int totalThrottleReconfigs = 0;
    /** Sampled telemetry timeseries (obs/sampler.h); null unless the
     *  run's SocConfig::sampleEvery was nonzero.  Shared so copies of
     *  the result stay cheap in sweep pipelines. */
    std::shared_ptr<const obs::Timeseries> telemetry;
};

/**
 * Run one scenario: generate the trace for `trace`, execute it under
 * the policy named by `spec`, and compute metrics against the
 * full-SoC isolated-latency oracle.
 */
ScenarioResult runScenario(const std::string &spec,
                           const workload::TraceConfig &trace,
                           const sim::SocConfig &cfg);

/**
 * Run a pre-generated trace (used when several policies must see the
 * identical job stream).
 */
ScenarioResult runTrace(const std::string &spec,
                        const std::vector<sim::JobSpec> &specs,
                        const workload::TraceConfig &trace,
                        const sim::SocConfig &cfg);

/**
 * Run a pre-generated trace under an already-built policy (policies
 * constructed outside the registry).  `label` is recorded as the
 * result's policy string for reporting only.
 */
ScenarioResult runTrace(sim::Policy &policy, const std::string &label,
                        const std::vector<sim::JobSpec> &specs,
                        const workload::TraceConfig &trace,
                        const sim::SocConfig &cfg);

/** Generate the trace for a TraceConfig (oracle-backed QoS targets). */
std::vector<sim::JobSpec>
makeTrace(const workload::TraceConfig &trace, const sim::SocConfig &cfg);

} // namespace moca::exp

#endif // MOCA_EXP_SCENARIO_H
