#include "exp/scenario.h"

#include "baselines/planaria.h"
#include "baselines/prema.h"
#include "baselines/static_partition.h"
#include "common/log.h"
#include "exp/oracle.h"
#include "moca/moca_policy.h"
#include "sim/soc.h"

namespace moca::exp {

const std::vector<PolicyKind> &
allPolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Prema,
        PolicyKind::StaticPartition,
        PolicyKind::Planaria,
        PolicyKind::Moca,
    };
    return kinds;
}

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Prema: return "prema";
      case PolicyKind::StaticPartition: return "static";
      case PolicyKind::Planaria: return "planaria";
      case PolicyKind::Moca: return "moca";
    }
    return "?";
}

std::unique_ptr<sim::Policy>
makePolicy(PolicyKind kind, const sim::SocConfig &cfg)
{
    switch (kind) {
      case PolicyKind::Prema:
        return std::make_unique<baselines::PremaPolicy>(cfg);
      case PolicyKind::StaticPartition:
        return std::make_unique<baselines::StaticPartitionPolicy>(cfg);
      case PolicyKind::Planaria:
        return std::make_unique<baselines::PlanariaPolicy>(cfg);
      case PolicyKind::Moca:
        return std::make_unique<MocaPolicy>(cfg);
    }
    panic("bad policy kind");
}

std::vector<sim::JobSpec>
makeTrace(const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    workload::TraceConfig t = trace;
    t.numTiles = cfg.numTiles;
    return workload::generateTrace(t, [&](dnn::ModelId id) {
        // QoS targets reference the isolated single-tile latency
        // ("each tile is close to an edge device", Sec. IV-B).
        return isolatedLatency(id, 1, cfg);
    });
}

ScenarioResult
runTrace(PolicyKind kind, const std::vector<sim::JobSpec> &specs,
         const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    auto policy = makePolicy(kind, cfg);
    return runTrace(*policy, kind, specs, trace, cfg);
}

ScenarioResult
runTrace(sim::Policy &policy, PolicyKind kind,
         const std::vector<sim::JobSpec> &specs,
         const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    sim::Soc soc(cfg, policy);
    for (const auto &spec : specs)
        soc.addJob(spec);
    soc.run();

    ScenarioResult r;
    r.policy = kind;
    r.trace = trace;
    r.jobs = soc.results();
    r.metrics = metrics::computeMetrics(r.jobs, [&](dnn::ModelId id) {
        // C_single: the no-contention full-SoC reference, identical
        // across policies.
        return isolatedLatency(id, cfg.numTiles, cfg);
    });
    for (const auto &j : r.jobs) {
        r.makespan = std::max(r.makespan, j.finish);
        r.totalMigrations += j.migrations;
        r.totalPreemptions += j.preemptions;
        r.totalThrottleReconfigs += j.throttleReconfigs;
    }
    r.dramBusyFraction = soc.stats().dramBusyFraction;
    r.thrashLostBytes = soc.stats().thrashLostBytes;
    return r;
}

ScenarioResult
runScenario(PolicyKind kind, const workload::TraceConfig &trace,
            const sim::SocConfig &cfg)
{
    return runTrace(kind, makeTrace(trace, cfg), trace, cfg);
}

} // namespace moca::exp
