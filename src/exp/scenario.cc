#include "exp/scenario.h"

#include "common/log.h"
#include "exp/oracle.h"
#include "exp/registry.h"
#include "sim/soc.h"

namespace moca::exp {

const std::vector<std::string> &
allPolicySpecs()
{
    static const std::vector<std::string> specs = {
        "prema",
        "static",
        "planaria",
        "moca",
    };
    return specs;
}

std::unique_ptr<sim::Policy>
makePolicy(const std::string &spec, const sim::SocConfig &cfg)
{
    return PolicyRegistry::instance().make(spec, cfg);
}

std::vector<sim::JobSpec>
makeTrace(const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    workload::TraceConfig t = trace;
    t.numTiles = cfg.numTiles;
    return workload::generateTrace(t, [&](dnn::ModelId id) {
        // QoS targets reference the isolated single-tile latency
        // ("each tile is close to an edge device", Sec. IV-B).
        return isolatedLatency(id, 1, cfg);
    });
}

ScenarioResult
runTrace(const std::string &spec,
         const std::vector<sim::JobSpec> &specs,
         const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    auto policy = makePolicy(spec, cfg);
    return runTrace(*policy, spec, specs, trace, cfg);
}

ScenarioResult
runTrace(sim::Policy &policy, const std::string &label,
         const std::vector<sim::JobSpec> &specs,
         const workload::TraceConfig &trace, const sim::SocConfig &cfg)
{
    sim::Soc soc(cfg, policy);
    for (const auto &spec : specs)
        soc.addJob(spec);
    soc.run();

    ScenarioResult r;
    r.policy = label;
    r.trace = trace;
    r.jobs = soc.results();
    r.metrics = metrics::computeMetrics(r.jobs, [&](dnn::ModelId id) {
        // C_single: the no-contention full-SoC reference, identical
        // across policies.
        return isolatedLatency(id, cfg.numTiles, cfg);
    });
    for (const auto &j : r.jobs) {
        r.makespan = std::max(r.makespan, j.finish);
        r.totalMigrations += j.migrations;
        r.totalPreemptions += j.preemptions;
        r.totalThrottleReconfigs += j.throttleReconfigs;
    }
    r.dramBusyFraction = soc.stats().dramBusyFraction;
    r.thrashLostBytes = soc.stats().thrashLostBytes;
    r.simSteps = soc.stats().quanta;
    r.cyclesSimulated = soc.stats().cyclesSimulated;
    r.memTraffic = soc.stats().memTraffic;
    if (soc.sampler())
        r.telemetry = std::make_shared<obs::Timeseries>(
            soc.sampler()->series());
    return r;
}

ScenarioResult
runScenario(const std::string &spec, const workload::TraceConfig &trace,
            const sim::SocConfig &cfg)
{
    return runTrace(spec, makeTrace(trace, cfg), trace, cfg);
}

} // namespace moca::exp
