#include "metrics/metrics.h"

#include <algorithm>

#include "common/log.h"

namespace moca::metrics {

namespace {

Cycles
isolatedFor(const sim::JobResult &r,
            const std::function<Cycles(dnn::ModelId)> &isolated_latency)
{
    const dnn::ModelId id = dnn::modelIdFromName(r.spec.model->name());
    const Cycles iso = isolated_latency(id);
    if (iso == 0)
        panic("isolated latency oracle returned 0 for %s",
              r.spec.model->name().c_str());
    return iso;
}

} // anonymous namespace

RunMetrics
computeMetrics(const std::vector<sim::JobResult> &results,
               const std::function<Cycles(dnn::ModelId)> &isolated_latency)
{
    RunMetrics m;
    m.numJobs = static_cast<int>(results.size());
    if (results.empty())
        return m;

    int met = 0;
    int group_total[3] = {0, 0, 0};
    int group_met[3] = {0, 0, 0};

    double prio_sum = 0.0;
    for (const auto &r : results)
        prio_sum += static_cast<double>(r.spec.priority + 1);

    double pp_min = 0.0, pp_max = 0.0;
    bool first = true;
    double norm_sum = 0.0, norm_worst = 0.0;

    for (const auto &r : results) {
        const Cycles iso = isolatedFor(r, isolated_latency);
        const double progress = static_cast<double>(iso) /
            static_cast<double>(r.latency());
        m.stp += progress;

        const double norm = static_cast<double>(r.latency()) /
            static_cast<double>(iso);
        norm_sum += norm;
        norm_worst = std::max(norm_worst, norm);

        const double prio_share =
            static_cast<double>(r.spec.priority + 1) / prio_sum;
        const double pp = progress / prio_share;
        if (first) {
            pp_min = pp_max = pp;
            first = false;
        } else {
            pp_min = std::min(pp_min, pp);
            pp_max = std::max(pp_max, pp);
        }

        const bool ok = r.slaMet();
        if (ok)
            ++met;
        const auto g = static_cast<int>(
            workload::priorityGroup(r.spec.priority));
        group_total[g]++;
        if (ok)
            group_met[g]++;
    }

    const auto n = static_cast<double>(results.size());
    m.slaRate = static_cast<double>(met) / n;
    m.slaRateLow = group_total[0]
        ? static_cast<double>(group_met[0]) / group_total[0] : 0.0;
    m.slaRateMid = group_total[1]
        ? static_cast<double>(group_met[1]) / group_total[1] : 0.0;
    m.slaRateHigh = group_total[2]
        ? static_cast<double>(group_met[2]) / group_total[2] : 0.0;
    m.fairness = pp_max > 0.0 ? pp_min / pp_max : 0.0;
    m.meanNormLatency = norm_sum / n;
    m.worstNormLatency = norm_worst;
    return m;
}

double
slaRateWhere(const std::vector<sim::JobResult> &results,
             const std::function<bool(const sim::JobResult &)> &pred)
{
    int total = 0, met = 0;
    for (const auto &r : results) {
        if (!pred(r))
            continue;
        ++total;
        if (r.slaMet())
            ++met;
    }
    return total ? static_cast<double>(met) / total : 0.0;
}

} // namespace moca::metrics
