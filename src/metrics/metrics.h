/**
 * @file
 * System-level multi-program metrics (paper Sec. IV-C, after Eyerman &
 * Eeckhout [16]):
 *
 *  - SLA satisfaction rate: fraction of jobs whose end-to-end latency
 *    (queue wait + runtime) meets the QoS target; also broken down by
 *    priority group.
 *  - STP (system throughput): sum of per-job normalized progress
 *    C_single / C_MT  (Eq. 2).
 *  - Fairness: min-over-pairs ratio of priority-weighted proportional
 *    progress PP_i (Eq. 1).
 */

#ifndef MOCA_METRICS_METRICS_H
#define MOCA_METRICS_METRICS_H

#include <functional>
#include <vector>

#include "common/units.h"
#include "dnn/model_zoo.h"
#include "sim/job.h"
#include "workload/workload.h"

namespace moca::metrics {

/** Metrics for one multi-tenant run. */
struct RunMetrics
{
    double slaRate = 0.0; ///< Overall SLA satisfaction rate in [0, 1].

    /** SLA satisfaction per priority group (Low, Mid, High). */
    double slaRateLow = 0.0;
    double slaRateMid = 0.0;
    double slaRateHigh = 0.0;

    double stp = 0.0;      ///< System throughput (Eq. 2).
    double fairness = 0.0; ///< min_ij PP_i / PP_j (Eq. 1).

    /** Mean end-to-end latency normalized to isolated latency. */
    double meanNormLatency = 0.0;
    /** Worst-case normalized latency. */
    double worstNormLatency = 0.0;

    int numJobs = 0;
};

/**
 * Compute run metrics.
 *
 * @param results completed-job records from the simulator.
 * @param isolated_latency per-model isolated latency C_single on the
 *        full SoC (the no-contention reference, identical across
 *        policies).
 *
 * Fairness uses (priority + 1) as the weight so that priority level 0
 * remains well-defined in Eq. 1's Priority_i denominator.
 */
RunMetrics
computeMetrics(const std::vector<sim::JobResult> &results,
               const std::function<Cycles(dnn::ModelId)> &isolated_latency);

/** SLA satisfaction rate of an arbitrary subset (predicate). */
double
slaRateWhere(const std::vector<sim::JobResult> &results,
             const std::function<bool(const sim::JobResult &)> &pred);

} // namespace moca::metrics

#endif // MOCA_METRICS_METRICS_H
