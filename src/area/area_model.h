/**
 * @file
 * Analytical area model for a MoCA-enabled accelerator tile in a
 * 12 nm process (paper Sec. V-E, Table IV).  The fixed component
 * areas reproduce the paper's published breakdown; the MoCA hardware
 * area is additionally derived from a gate-count model of its
 * counters, configuration registers, comparators and FSM, calibrated
 * to the process's flop/NAND2 footprints, so that configuration
 * changes (counter widths, per-tile engine counts) update the
 * overhead estimate.
 */

#ifndef MOCA_AREA_AREA_MODEL_H
#define MOCA_AREA_AREA_MODEL_H

#include <string>
#include <vector>

namespace moca::area {

/** One row of the tile area breakdown. */
struct AreaComponent
{
    std::string name;
    double areaUm2 = 0.0; ///< Component area in um^2.
};

/** Gate-count model parameters for the MoCA hardware engine. */
struct MocaHwModel
{
    int accessCounterBits = 32;  ///< Access Counter width.
    int thresholdRegBits = 32;   ///< threshold_load config register.
    int windowCounterBits = 32;  ///< Window position counter.
    int windowRegBits = 32;      ///< window config register.
    int fsmStateBits = 2;        ///< Thresholding-module FSM state.
    int comparators = 2;         ///< counter>=threshold, window roll.

    /** 12 nm standard-cell footprints. */
    double um2PerFlop = 0.55;
    double um2PerNand2 = 0.12;
    /** NAND2-equivalents per comparator bit. */
    double nand2PerComparatorBit = 4.5;
    /** Wiring/overhead multiplier after place-and-route. */
    double prOverhead = 1.25;

    /** Estimated engine area in um^2. */
    double areaUm2() const;
};

/** Tile area breakdown (Table IV). */
struct TileAreaBreakdown
{
    std::vector<AreaComponent> components;
    double tileTotalUm2 = 0.0;

    /** MoCA hardware area in um^2. */
    double mocaHwUm2 = 0.0;
    /** Memory interface area without MoCA. */
    double memIfUm2 = 0.0;

    /** MoCA overhead as a fraction of the memory interface. */
    double mocaVsMemIf() const { return mocaHwUm2 / memIfUm2; }
    /** MoCA overhead as a fraction of the whole tile. */
    double mocaVsTile() const { return mocaHwUm2 / tileTotalUm2; }
};

/**
 * Build the Table IV breakdown.  Fixed component areas come from the
 * paper's GlobalFoundries 12 nm synthesis; the MoCA hardware entry
 * uses the gate-count model.
 */
TileAreaBreakdown tileAreaBreakdown(const MocaHwModel &hw = MocaHwModel());

} // namespace moca::area

#endif // MOCA_AREA_AREA_MODEL_H
