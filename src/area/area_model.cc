#include "area/area_model.h"

namespace moca::area {

double
MocaHwModel::areaUm2() const
{
    const int flops = accessCounterBits + thresholdRegBits +
        windowCounterBits + windowRegBits + fsmStateBits;
    const double flop_area = flops * um2PerFlop;

    // Comparator logic: one magnitude comparator per comparison,
    // sized by the wider operand (use the counter width).
    const double cmp_nand2 =
        comparators * nand2PerComparatorBit * accessCounterBits;
    // Increment logic for the two counters (~3 NAND2 per bit).
    const double inc_nand2 =
        3.0 * (accessCounterBits + windowCounterBits);
    const double logic_area = (cmp_nand2 + inc_nand2) * um2PerNand2;

    return (flop_area + logic_area) * prOverhead;
}

TileAreaBreakdown
tileAreaBreakdown(const MocaHwModel &hw)
{
    TileAreaBreakdown b;
    // Paper Table IV, GlobalFoundries 12 nm synthesis + P&R.
    b.components = {
        {"Rocket CPU", 101'000.0},
        {"Scratchpad", 58'000.0},
        {"Accumulator", 75'000.0},
        {"Systolic Array", 78'000.0},
        {"Instruction Queues", 14'000.0},
        {"Memory Interface w/o MoCA", 8'600.0},
    };
    b.memIfUm2 = 8'600.0;
    b.mocaHwUm2 = hw.areaUm2();
    b.components.push_back({"MoCA hardware", b.mocaHwUm2});
    b.tileTotalUm2 = 493'000.0 + b.mocaHwUm2;
    return b;
}

} // namespace moca::area
