/**
 * @file
 * Max-min fair bandwidth arbitration for the shared DRAM channel and
 * L2 banks.  Requesters present byte demands for the current quantum;
 * the arbiter grants each the minimum of its demand and a fair share,
 * redistributing leftover capacity (water-filling).  Weights model a
 * job's DMA-engine count: a job running on k tiles has k request
 * streams and therefore receives a k-proportional share under
 * round-robin service, which is what the weight captures.
 */

#ifndef MOCA_SIM_ARBITER_H
#define MOCA_SIM_ARBITER_H

#include <vector>

namespace moca::sim {

/** One requester's demand for a quantum. */
struct BwDemand
{
    double bytes = 0.0;  ///< Bytes wanted this quantum.
    double weight = 1.0; ///< Fair-share weight (number of DMA engines).
};

/**
 * Weighted max-min fair allocation.
 *
 * @param demands   per-requester demands (bytes >= 0, weight > 0).
 * @param capacity  total bytes available this quantum.
 * @return per-requester grants; sum(grants) <= capacity and
 *         grants[i] <= demands[i].bytes.
 */
std::vector<double> allocateBandwidth(const std::vector<BwDemand> &demands,
                                      double capacity);

/** As above, writing grants into a caller-owned buffer (resized to
 *  demands.size()); the arbiter runs once per simulation step, so
 *  per-call allocations would dominate long-horizon runs. */
void allocateBandwidth(const std::vector<BwDemand> &demands,
                       double capacity, std::vector<double> &grants);

/**
 * Demand-proportional allocation: models an unregulated FCFS-style
 * DRAM controller, where a requester's service share is proportional
 * to the requests it has in flight (demand x weight).  This is what
 * makes memory hogs harmful to co-runners — and what MoCA's throttle
 * regulates by capping the hog's issued demand.  Work-conserving:
 * grants capped at demand redistribute their leftover.
 */
std::vector<double>
allocateBandwidthProportional(const std::vector<BwDemand> &demands,
                              double capacity);

/** Out-parameter variant (see allocateBandwidth). */
void allocateBandwidthProportional(const std::vector<BwDemand> &demands,
                                   double capacity,
                                   std::vector<double> &grants);

/** Outcome of the DRAM oversubscription-thrash derate. */
struct ThrashOutcome
{
    double capacity = 0.0;  ///< Derated channel capacity in bytes.
    double lostBytes = 0.0; ///< Bytes not servable due to thrash.
    bool thrashed = false;
};

/**
 * Row-buffer-locality loss under oversubscription: when the aggregate
 * issued demand exceeds `onset` x the channel capacity *and* the
 * excess comes from interleaved streams of different requesters (a
 * lone streamer keeps locality), the effective capacity drops by up
 * to `factor`.  The loss ratio depends only on demand/capacity
 * ratios, so the derate is step-length invariant — both simulation
 * kernels apply it to whatever horizon they arbitrate over.
 *
 * @param total_demand sum of issued demands over the horizon.
 * @param max_demand   largest single requester's demand.
 * @param capacity     channel capacity over the horizon (bytes).
 */
ThrashOutcome applyDramThrash(double total_demand, double max_demand,
                              double capacity, double onset,
                              double factor);

} // namespace moca::sim

#endif // MOCA_SIM_ARBITER_H
