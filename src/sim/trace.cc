#include "sim/trace.h"

#include "common/log.h"

namespace moca::sim {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::JobDispatched: return "dispatch";
      case TraceEventKind::JobStarted: return "start";
      case TraceEventKind::JobResumed: return "resume";
      case TraceEventKind::JobPaused: return "pause";
      case TraceEventKind::JobResized: return "resize";
      case TraceEventKind::JobCompleted: return "complete";
      case TraceEventKind::BlockBoundary: return "block";
      case TraceEventKind::ThrottleConfig: return "throttle";
      case TraceEventKind::SchedTick: return "tick";
      case TraceEventKind::AdmissionShed: return "shed";
      case TraceEventKind::AdmissionDefer: return "defer";
      case TraceEventKind::SocFail: return "fail";
      case TraceEventKind::SocRecover: return "recover";
      case TraceEventKind::ScaleUp: return "scale-up";
      case TraceEventKind::ScaleDown: return "scale-down";
    }
    return "?";
}

std::vector<TraceEvent>
TraceRecorder::forJob(int job_id) const
{
    std::vector<TraceEvent> out;
    for (const auto &e : events_)
        if (e.jobId == job_id)
            out.push_back(e);
    return out;
}

std::size_t
TraceRecorder::count(TraceEventKind kind, int job_id) const
{
    std::size_t n = 0;
    for (const auto &e : events_)
        if (e.kind == kind && (job_id < 0 || e.jobId == job_id))
            ++n;
    return n;
}

std::string
TraceRecorder::render(std::size_t max_events) const
{
    std::string out;
    std::size_t shown = 0;
    for (const auto &e : events_) {
        if (shown++ >= max_events) {
            out += strprintf("... (%zu more events)\n",
                             events_.size() - max_events);
            break;
        }
        out += strprintf("%10.1fK  job %-3d %-9s %lld\n",
                         static_cast<double>(e.cycle) / 1e3, e.jobId,
                         traceEventKindName(e.kind), e.value);
    }
    return out;
}

} // namespace moca::sim
