/**
 * @file
 * Memory-traffic model: how many bytes a layer moves through the
 * shared L2 and how many of those reach DRAM, as a function of the
 * scratchpad-constrained tiling and the *effective* L2 capacity the
 * job sees (total capacity divided among co-running jobs, which is the
 * capacity-contention effect that hurts e.g. AlexNet's FC layers when
 * co-located — Fig. 1 of the paper).
 *
 * This is the simulator's ground truth.  The MoCA runtime's Algorithm
 * 1 (src/moca/runtime/latency_model.*) computes its own estimate from
 * the paper's coarser rules; the two are deliberately independent so
 * the prediction-error validation (paper: within 10%) is meaningful.
 */

#ifndef MOCA_SIM_TRAFFIC_MODEL_H
#define MOCA_SIM_TRAFFIC_MODEL_H

#include <cstdint>

#include "dnn/layer.h"
#include "sim/config.h"

namespace moca::sim {

/** Bytes a layer moves at each level of the shared memory system. */
struct LayerTraffic
{
    /** Total bytes transferred between the tiles and the L2. */
    std::uint64_t l2Bytes = 0;
    /** Subset of l2Bytes that misses L2 and reaches DRAM. */
    std::uint64_t dramBytes = 0;
};

/**
 * Traffic for executing `layer` on `num_tiles` tiles when the job's
 * effective L2 share is `effective_cache_bytes`.
 *
 * Tiling: the per-tile scratchpad is double-buffered; the smaller
 * GEMM operand is held resident when possible and the other streamed.
 * When neither operand fits, the streamed operand is re-fetched once
 * per resident-operand chunk (the reload factor).
 */
LayerTraffic layerTraffic(const dnn::Layer &layer, int num_tiles,
                          const SocConfig &cfg,
                          std::uint64_t effective_cache_bytes);

/** Reload factor (>= 1) of the streamed GEMM operand for the layer. */
std::uint64_t streamReloadFactor(const dnn::Layer &layer,
                                 const SocConfig &cfg);

} // namespace moca::sim

#endif // MOCA_SIM_TRAFFIC_MODEL_H
