#include "sim/arbiter.h"

#include <algorithm>

#include "common/log.h"

namespace moca::sim {

namespace {

/** Per-thread saturation-flag scratch: arbitration runs once per
 *  simulation step per channel, and sweeps arbitrate from worker
 *  threads concurrently. */
std::vector<char> &
doneScratch(std::size_t n)
{
    static thread_local std::vector<char> done;
    done.assign(n, 0);
    return done;
}

} // anonymous namespace

std::vector<double>
allocateBandwidth(const std::vector<BwDemand> &demands, double capacity)
{
    std::vector<double> grants;
    allocateBandwidth(demands, capacity, grants);
    return grants;
}

void
allocateBandwidth(const std::vector<BwDemand> &demands, double capacity,
                  std::vector<double> &grants)
{
    const std::size_t n = demands.size();
    grants.assign(n, 0.0);
    if (n == 0 || capacity <= 0.0)
        return;

    for (const auto &d : demands) {
        if (d.bytes < 0.0)
            panic("negative bandwidth demand %f", d.bytes);
        if (d.weight <= 0.0)
            panic("non-positive arbiter weight %f", d.weight);
    }

    // Water-filling: repeatedly hand every unsatisfied requester its
    // weighted share of the remaining capacity; requesters whose
    // demand is met drop out and their leftover is redistributed.
    std::vector<char> &done = doneScratch(n);
    double remaining = capacity;
    std::size_t active = n;

    while (active > 0 && remaining > 1e-9) {
        double weight_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            if (!done[i])
                weight_sum += demands[i].weight;

        bool any_capped = false;
        double distributed = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i])
                continue;
            const double share =
                remaining * demands[i].weight / weight_sum;
            const double want = demands[i].bytes - grants[i];
            if (want <= share) {
                grants[i] += want;
                distributed += want;
                done[i] = true;
                --active;
                any_capped = true;
            }
        }
        if (!any_capped) {
            // Everyone can absorb a full share: final round.
            for (std::size_t i = 0; i < n; ++i) {
                if (done[i])
                    continue;
                const double share =
                    remaining * demands[i].weight / weight_sum;
                grants[i] += share;
                distributed += share;
            }
            remaining -= distributed;
            break;
        }
        remaining -= distributed;
    }
}

std::vector<double>
allocateBandwidthProportional(const std::vector<BwDemand> &demands,
                              double capacity)
{
    std::vector<double> grants;
    allocateBandwidthProportional(demands, capacity, grants);
    return grants;
}

void
allocateBandwidthProportional(const std::vector<BwDemand> &demands,
                              double capacity,
                              std::vector<double> &grants)
{
    const std::size_t n = demands.size();
    grants.assign(n, 0.0);
    if (n == 0 || capacity <= 0.0)
        return;

    for (const auto &d : demands) {
        if (d.bytes < 0.0)
            panic("negative bandwidth demand %f", d.bytes);
        if (d.weight <= 0.0)
            panic("non-positive arbiter weight %f", d.weight);
    }

    // Shares proportional to outstanding demand x weight; requesters
    // whose full demand fits drop out and free their slice.
    std::vector<char> &done = doneScratch(n);
    double remaining = capacity;
    std::size_t active = n;

    while (active > 0 && remaining > 1e-9) {
        double denom = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!done[i])
                denom += (demands[i].bytes - grants[i]) *
                    demands[i].weight;
        }
        if (denom <= 1e-12)
            break;

        bool any_capped = false;
        double distributed = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i])
                continue;
            const double want = demands[i].bytes - grants[i];
            const double share =
                remaining * want * demands[i].weight / denom;
            if (want <= share) {
                grants[i] += want;
                distributed += want;
                done[i] = true;
                --active;
                any_capped = true;
            }
        }
        if (!any_capped) {
            for (std::size_t i = 0; i < n; ++i) {
                if (done[i])
                    continue;
                const double want = demands[i].bytes - grants[i];
                const double share =
                    remaining * want * demands[i].weight / denom;
                grants[i] += share;
                distributed += share;
            }
            remaining -= distributed;
            break;
        }
        remaining -= distributed;
    }
}

ThrashOutcome
applyDramThrash(double total_demand, double max_demand, double capacity,
                double onset, double factor)
{
    ThrashOutcome out;
    out.capacity = capacity;
    if (capacity <= 0.0 || total_demand <= capacity * onset)
        return out;

    const double over =
        std::min(1.0, (total_demand / capacity - onset) / 2.0);
    const double interleave =
        total_demand > 0.0 ? 1.0 - max_demand / total_demand : 0.0;
    const double loss = factor * over * 2.0 * std::min(0.5, interleave);
    if (loss > 0.0) {
        out.thrashed = true;
        out.lostBytes = capacity * loss;
        out.capacity = capacity * (1.0 - loss);
    }
    return out;
}

} // namespace moca::sim
