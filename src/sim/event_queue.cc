#include "sim/event_queue.h"

#include <algorithm>

#include "common/log.h"

namespace moca::sim {

namespace {

/** Initial bucket count (power of two). */
constexpr std::size_t kInitialBuckets = 16;

} // anonymous namespace

const char *
simEventKindName(SimEventKind kind)
{
    switch (kind) {
      case SimEventKind::Arrival: return "arrival";
      case SimEventKind::SchedTick: return "sched-tick";
      case SimEventKind::StallExpiry: return "stall-expiry";
      case SimEventKind::LayerCompletion: return "layer-completion";
      case SimEventKind::ThrottleWindow: return "throttle-window";
      case SimEventKind::MemStateChange: return "mem-state-change";
    }
    return "?";
}

bool
operator<(const SimEvent &a, const SimEvent &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.kind != b.kind)
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    return a.jobId < b.jobId;
}

EventQueue::EventQueue(Cycles bucket_width)
    : width_(bucket_width), buckets_(kInitialBuckets)
{
    if (width_ == 0)
        panic("EventQueue: bucket width must be nonzero");
}

std::size_t
EventQueue::bucketOf(Cycles at) const
{
    // Power-of-two bucket count: day mod nbuckets is a mask.
    return static_cast<std::size_t>(at / width_) &
        (buckets_.size() - 1);
}

EventQueue::SlotState &
EventQueue::slot(int job_id)
{
    if (job_id < -1)
        panic("EventQueue: job id %d out of range", job_id);
    const std::size_t idx = static_cast<std::size_t>(job_id + 1);
    if (idx >= slots_.size())
        slots_.resize(idx + 1);
    return slots_[idx];
}

bool
EventQueue::isStale(const Entry &e) const
{
    const std::size_t idx = static_cast<std::size_t>(e.ev.jobId + 1);
    const std::size_t k = static_cast<std::size_t>(e.ev.kind);
    return e.gen != slots_[idx].gen[k];
}

void
EventQueue::clear()
{
    for (auto &b : buckets_)
        b.clear();
    for (auto &s : slots_)
        s.pending.fill(0);
    live_ = 0;
    cur_day_ = 0;
    top_valid_ = false;
}

void
EventQueue::push(Cycles at, SimEventKind kind, int job_id)
{
    // Keep the calendar dense: roughly two live events per bucket.
    if (live_ > 2 * buckets_.size())
        grow();

    SlotState &s = slot(job_id);
    const std::size_t k = static_cast<std::size_t>(kind);
    buckets_[bucketOf(at)].push_back({{at, kind, job_id}, s.gen[k]});
    s.pending[k]++;
    ++live_;

    const std::uint64_t day = at / width_;
    if (live_ == 1 || day < cur_day_)
        cur_day_ = day;
    top_valid_ = false;
}

void
EventQueue::invalidate(SimEventKind kind, int job_id)
{
    SlotState &s = slot(job_id);
    const std::size_t k = static_cast<std::size_t>(kind);
    live_ -= s.pending[k];
    s.pending[k] = 0;
    ++s.gen[k]; // Pending copies with the old generation are stale.
    top_valid_ = false;
}

void
EventQueue::settle() const
{
    if (top_valid_)
        return;

    // Scan day by day from the current one.  Within a day, the
    // minimum is selected by full (at, kind, jobId) order, so pop
    // order matches the reference heap exactly; stale entries are
    // reclaimed (swap-erase) as they are encountered.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    const std::size_t nbuckets = buckets_.size();
    for (std::size_t empty_days = 0; empty_days < nbuckets;
         ++empty_days, ++cur_day_) {
        auto &bucket =
            buckets_[static_cast<std::size_t>(cur_day_) &
                     (nbuckets - 1)];
        std::size_t best = kNone;
        for (std::size_t i = 0; i < bucket.size();) {
            if (isStale(bucket[i])) {
                bucket[i] = bucket.back();
                bucket.pop_back();
                if (best == bucket.size())
                    best = i; // The old best moved into slot i.
                continue;
            }
            if (bucket[i].ev.at / width_ == cur_day_ &&
                (best == kNone || bucket[i].ev < bucket[best].ev))
                best = i;
            ++i;
        }
        if (best != kNone) {
            top_bucket_ = static_cast<std::size_t>(cur_day_) &
                (nbuckets - 1);
            top_pos_ = best;
            top_valid_ = true;
            return;
        }
    }

    // A whole calendar year of empty days: the next event is far in
    // the future.  Direct min-scan, then jump the calendar there.
    std::size_t bb = nbuckets, bp = 0;
    for (std::size_t b = 0; b < nbuckets; ++b) {
        auto &bucket = buckets_[b];
        for (std::size_t i = 0; i < bucket.size();) {
            if (isStale(bucket[i])) {
                bucket[i] = bucket.back();
                bucket.pop_back();
                if (bb == b && bp == bucket.size())
                    bp = i; // The tracked best moved into slot i.
                continue;
            }
            if (bb == nbuckets ||
                bucket[i].ev < buckets_[bb][bp].ev) {
                bb = b;
                bp = i;
            }
            ++i;
        }
    }
    if (bb == nbuckets)
        panic("EventQueue::settle: no live event (size %zu)", live_);
    cur_day_ = buckets_[bb][bp].ev.at / width_;
    top_bucket_ = bb;
    top_pos_ = bp;
    top_valid_ = true;
}

const SimEvent &
EventQueue::top() const
{
    if (empty())
        panic("EventQueue::top on an empty queue");
    settle();
    return buckets_[top_bucket_][top_pos_].ev;
}

SimEvent
EventQueue::pop()
{
    if (empty())
        panic("EventQueue::pop on an empty queue");
    settle();

    auto &bucket = buckets_[top_bucket_];
    const SimEvent ev = bucket[top_pos_].ev;
    bucket[top_pos_] = bucket.back();
    bucket.pop_back();

    SlotState &s = slot(ev.jobId);
    s.pending[static_cast<std::size_t>(ev.kind)]--;
    --live_;
    top_valid_ = false;
    return ev;
}

void
EventQueue::grow()
{
    std::vector<Entry> all;
    all.reserve(live_);
    for (auto &b : buckets_) {
        for (auto &e : b)
            if (!isStale(e))
                all.push_back(e);
        b.clear();
    }
    buckets_.resize(buckets_.size() * 2);
    for (const auto &e : all)
        buckets_[bucketOf(e.ev.at)].push_back(e);
    top_valid_ = false;
}

} // namespace moca::sim
