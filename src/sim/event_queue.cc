#include "sim/event_queue.h"

#include <algorithm>

#include "common/log.h"

namespace moca::sim {

const char *
simEventKindName(SimEventKind kind)
{
    switch (kind) {
      case SimEventKind::Arrival: return "arrival";
      case SimEventKind::SchedTick: return "sched-tick";
      case SimEventKind::StallExpiry: return "stall-expiry";
      case SimEventKind::LayerCompletion: return "layer-completion";
      case SimEventKind::ThrottleWindow: return "throttle-window";
      case SimEventKind::MemStateChange: return "mem-state-change";
    }
    return "?";
}

bool
operator<(const SimEvent &a, const SimEvent &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.kind != b.kind)
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    return a.jobId < b.jobId;
}

namespace {

/** std::*_heap builds a max-heap; invert to get the min-heap. */
bool
later(const SimEvent &a, const SimEvent &b)
{
    return b < a;
}

} // anonymous namespace

void
EventQueue::push(Cycles at, SimEventKind kind, int job_id)
{
    heap_.push_back({at, kind, job_id});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

const SimEvent &
EventQueue::top() const
{
    if (heap_.empty())
        panic("EventQueue::top on an empty queue");
    return heap_.front();
}

SimEvent
EventQueue::pop()
{
    if (heap_.empty())
        panic("EventQueue::pop on an empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const SimEvent e = heap_.back();
    heap_.pop_back();
    return e;
}

} // namespace moca::sim
