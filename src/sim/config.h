/**
 * @file
 * SoC configuration (paper Table II defaults): eight Gemmini-style
 * accelerator tiles with 16x16 weight-stationary systolic arrays and
 * private scratchpads, a shared 2 MB / 8-bank L2, and 16 GB/s DRAM at
 * a 1 GHz clock.
 */

#ifndef MOCA_SIM_CONFIG_H
#define MOCA_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "common/units.h"

namespace moca::sim {

using moca::Cycles;

/**
 * Time-advance strategy of Soc::run.  Both kernels share the demand /
 * arbitrate / advance phases; they differ only in how far each step
 * moves simulated time.
 */
enum class SimKernel
{
    /** Fixed cfg.quantum steps (the original kernel): cost scales
     *  with simulated cycles. */
    Quantum,

    /**
     * Next-event time advance: each step extends to the earliest
     * upcoming state change (arrival, scheduler tick, stall expiry,
     * layer completion, binding throttle-window rollover), rounded up
     * to the quantum grid so the two kernels stay comparable.  Cost
     * scales with scheduling activity instead of cycles.
     */
    Event,
};

/** Printable kernel name ("quantum" / "event"). */
inline const char *
simKernelName(SimKernel kernel)
{
    return kernel == SimKernel::Event ? "event" : "quantum";
}

/** Static SoC parameters; see Table II of the paper. */
struct SocConfig
{
    /** Number of homogeneous accelerator tiles. */
    int numTiles = 8;

    /** Systolic array dimension per tile (16x16 -> 256 MACs/cycle). */
    int arrayDim = 16;

    /** Private scratchpad bytes per tile (weights + activations). */
    std::uint64_t scratchpadBytes = 128 * KiB;

    /** Private accumulator bytes per tile. */
    std::uint64_t accumulatorBytes = 64 * KiB;

    /** Shared L2 capacity. */
    std::uint64_t l2Bytes = 2 * MiB;

    /** Shared L2 bank count. */
    int l2Banks = 8;

    /** L2 bandwidth per bank in bytes/cycle. */
    double l2BankBytesPerCycle = 16.0;

    /** DRAM bandwidth in bytes/cycle (16 GB/s at 1 GHz). */
    double dramBytesPerCycle = 16.0;

    /** Per-tile DMA issue width in bytes/cycle. */
    double tileDmaBytesPerCycle = 16.0;

    /**
     * Decoupled access/execute run-ahead: the DMA prefetches up to
     * this multiple of the balanced (compute-matched) rate before
     * the scratchpad double-buffer fills.  >1 makes unregulated
     * demand bursty — the in-flight-request pressure the MoCA
     * throttle paces.  1.0 issues exactly the balanced rate.
     */
    double dmaRunAhead = 1.25;

    /** DMA access (beat) granularity in bytes; the unit the MoCA
     *  access counter counts. */
    std::uint64_t dmaBeatBytes = 16;

    /**
     * Compute/memory overlap factor f in [0, 1] with the paper's
     * Algorithm 1 semantics: latency = max(C, M) + min(C, M) * f,
     * i.e. f = 0 is perfect overlap and f = 1 fully serializes the
     * shorter phase.  Tuned per SoC by the overlap-tuning utility;
     * 0.2 reflects Gemmini's decoupled access/execute with double
     * buffering.
     */
    double overlapF = 0.2;

    /** Simulation quantum in cycles. */
    Cycles quantum = 512;

    /** Time-advance strategy (see SimKernel). */
    SimKernel kernel = SimKernel::Quantum;

    /**
     * Shared-memory-hierarchy model spec resolved through
     * mem::MemoryModelRegistry (grammar: name[:key=value,...]).
     * "flat" is the original single-bandwidth + thrash-derate model
     * and is metric-identical to the pre-mem-subsystem simulator;
     * "banked[:banks=N,remap=xor|mod,...]" adds bank-level DRAM/L2
     * contention with emergent row-locality loss.
     */
    std::string memModel = "flat";

    /** Scheduler tick period in cycles (policy onSchedule cadence). */
    Cycles schedPeriod = 100'000;

    /**
     * Deadlock bound: Soc::run(0) aborts once simulated time exceeds
     * this many cycles (a stuck policy would otherwise spin forever).
     * Long-horizon stress sweeps raise it to an honest bound via the
     * shared `max_cycles=` bench option.
     */
    Cycles maxCycles = 1'000'000'000'000ULL;

    /**
     * Fire the policy's boundary hook after *every* layer instead of
     * only at layer-block boundaries.  The paper adopts layer-block
     * granularity following Veltair ("layer-block granularity
     * delivers supreme performance"); this knob exists for the
     * granularity ablation.
     */
    bool layerBoundaryEvents = false;

    /**
     * Thread-migration penalty in cycles charged to a job whose
     * compute-tile allocation changes at runtime (paper Sec. V-A:
     * ~1 M cycles for thread spawning and synchronization).
     */
    Cycles migrationCycles = 1'000'000;

    /**
     * Per-layer inter-tile coordination cost when one job spans
     * multiple tiles: the managing core splits the layer, dispatches
     * per-tile work, and barriers at the end.  Charged as
     * interTileSyncCycles x ceil(log2(tiles)) per layer; this is the
     * multi-tile efficiency loss that makes monolithic full-array
     * execution (PREMA-style) unattractive for small layers.
     */
    Cycles interTileSyncCycles = 3000;

    /**
     * Amdahl-style serial fraction of intra-layer multi-tile
     * parallelization (work splitting, halo exchange, load
     * imbalance): compute cycles on T tiles are inflated by
     * (1 + f * (T - 1)).  Makes single-job scaling across many tiles
     * sub-linear, as observed on real spatial accelerators.
     */
    double multiTileSerialFraction = 0.15;

    /**
     * DRAM arbitration of unregulated traffic.  True (default)
     * models an FCFS-style controller whose service is proportional
     * to in-flight demand — memory hogs win, which is the contention
     * pathology MoCA regulates.  False uses idealized max-min
     * fairness (for ablation).
     */
    bool dramProportionalArbitration = true;

    /**
     * DRAM efficiency loss under oversubscription: when aggregate
     * issued demand exceeds the channel bandwidth, interleaved
     * streams destroy row-buffer locality and effective bandwidth
     * drops by up to this fraction ("execution latency is highly
     * correlated with the number of in-flight memory requests",
     * Sec. I).  Regulating issue rates to the available bandwidth —
     * what the MoCA throttle does — avoids the loss.  0 disables
     * (ablation).
     */
    double dramThrashFactor = 0.50;

    /**
     * Oversubscription level (multiple of channel bandwidth) where
     * thrash begins: a shallow request queue keeps the controller
     * busy without destroying locality; loss ramps from zero at the
     * onset to dramThrashFactor at (onset + 2)x oversubscription.
     */
    double dramThrashOnset = 1.3;

    /**
     * Identity of this SoC within a fleet (stamped on trace events
     * and telemetry series).  0 for standalone runs; runCluster and
     * the serve driver assign slot indices.
     */
    int socId = 0;

    /**
     * Telemetry sampling interval in simulated cycles; 0 (default)
     * disables sampling entirely — the Soc then allocates no
     * telemetry state and the hot path pays one null-pointer test.
     * Sampling is observational only: enabling it never changes
     * simulation results (see README "Observability").
     */
    Cycles sampleEvery = 0;

    /** Aggregate L2 bandwidth in bytes/cycle. */
    double l2BytesPerCycle() const
    {
        return l2BankBytesPerCycle * l2Banks;
    }

    /** Peak MACs/cycle of one tile. */
    std::uint64_t tileMacsPerCycle() const
    {
        return static_cast<std::uint64_t>(arrayDim) * arrayDim;
    }
};

} // namespace moca::sim

#endif // MOCA_SIM_CONFIG_H
