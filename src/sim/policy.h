/**
 * @file
 * Execution-policy interface: the seam where MoCA and the baseline
 * multi-tenancy mechanisms (PREMA, static partitioning, Planaria)
 * plug into the SoC simulator.  The simulator invokes the policy at
 * scheduling points (arrivals, completions, periodic ticks) and at
 * layer-block boundaries; the policy reacts by starting, resizing,
 * pausing, or throttling jobs through the Soc's control interface.
 */

#ifndef MOCA_SIM_POLICY_H
#define MOCA_SIM_POLICY_H

#include "sim/job.h"

namespace moca::sim {

class Soc;

/** Why the policy's schedule() hook is being invoked. */
enum class SchedEvent
{
    JobArrival,
    JobCompletion,
    PeriodicTick,
    BlockBoundary,
};

/** Base class for multi-tenancy execution policies. */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Short policy name for reports ("moca", "prema", ...). */
    virtual const char *name() const = 0;

    /**
     * Main scheduling hook.  Inspect the Soc's job queues and issue
     * control calls (startJob / resizeJob / pauseJob /
     * configureThrottle).  Invoked whenever `event` occurs.
     */
    virtual void schedule(Soc &soc, SchedEvent event) = 0;

    /**
     * Job `id` crossed a layer-block boundary (it is about to begin
     * its next block).  Policies reconfigure resources at this
     * granularity (Sec. IV-D).  Default: no action.
     */
    virtual void onBlockBoundary(Soc &soc, int id);

    /** Job `id` finished; called before the follow-up schedule(). */
    virtual void onJobComplete(Soc &soc, int id);
};

} // namespace moca::sim

#endif // MOCA_SIM_POLICY_H
