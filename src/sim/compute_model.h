/**
 * @file
 * Mapping-aware compute-cycle model for a Gemmini-style 16x16
 * weight-stationary systolic array.  Convolutions and dense layers
 * lower to GEMM (im2col); the array processes one KxN weight tile at a
 * time, streaming M input rows through it, with fill/drain overhead
 * per weight tile.  MEM-class layers run through the tile's vector
 * path at one element per PE per cycle.
 *
 * Multi-tile jobs split the GEMM across tiles: over output rows (M)
 * when M is large enough, otherwise over output-channel tiles (N).
 */

#ifndef MOCA_SIM_COMPUTE_MODEL_H
#define MOCA_SIM_COMPUTE_MODEL_H

#include <cstdint>

#include "common/units.h"
#include "dnn/layer.h"
#include "sim/config.h"

namespace moca::sim {

/** GEMM dimensions a layer lowers to (per group). */
struct GemmShape
{
    std::uint64_t m = 0; ///< Output spatial positions (rows streamed).
    std::uint64_t k = 0; ///< Reduction dimension.
    std::uint64_t n = 0; ///< Output channels.
    std::uint64_t groups = 1;
};

/** Lower a layer to its GEMM shape (MEM layers return m=k=n=0). */
GemmShape gemmShape(const dnn::Layer &layer);

/**
 * Cycles to execute `layer` on `num_tiles` cooperating tiles,
 * counting array fill/drain and dimension-padding under-utilization.
 */
Cycles computeCycles(const dnn::Layer &layer, int num_tiles,
                     const SocConfig &cfg);

/**
 * Achieved array utilization for the layer on one tile: ideal MACs /
 * (cycles * peak MACs/cycle).  1.0 for perfectly aligned shapes; used
 * by tests and the model-zoo characterization example.
 */
double arrayUtilization(const dnn::Layer &layer, const SocConfig &cfg);

} // namespace moca::sim

#endif // MOCA_SIM_COMPUTE_MODEL_H
