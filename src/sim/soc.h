/**
 * @file
 * Cycle-level SoC simulator with two interchangeable time-advance
 * kernels (SocConfig::kernel).
 *
 * Execution model (shared by both kernels): each step, every running
 * job computes the byte demand its DMA engines would issue over the
 * step, capped by its MoCA throttle allowance; the pluggable
 * mem::MemoryModel (cfg.memModel: the flat channel+thrash model, or
 * the bank-aware `banked` model) arbitrates the shared DRAM channel
 * and L2 demands; each
 * job then advances its current layer using the granted rates,
 * combining compute and memory progress with the overlap factor
 * (latency = max(C, M) + f * min(C, M), Algorithm 1 semantics).
 *
 * The *quantum* kernel steps fixed cfg.quantum chunks, so cost scales
 * with simulated cycles.  The *event* kernel (sim/event_queue.h)
 * advances time directly to the earliest upcoming state change — next
 * arrival, periodic scheduler tick, stall expiry, layer completion,
 * binding throttle-window rollover — rounded up to the quantum grid;
 * demands, grants, and per-layer rates are piecewise-constant between
 * those events, so cost scales with scheduling activity instead.
 * Both kernels fire the periodic tick at the exact schedPeriod
 * cadence and admit arrivals at their exact dispatch cycle.
 *
 * Layer DRAM traffic is determined at layer start from the job's
 * *effective* L2 share (capacity divided among co-runners), which
 * models shared-cache capacity contention.  Scheduling points invoke
 * the pluggable Policy (MoCA or a baseline).
 */

#ifndef MOCA_SIM_SOC_H
#define MOCA_SIM_SOC_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_model.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/job.h"
#include "sim/policy.h"
#include "sim/trace.h"

namespace moca::sim {

/** Aggregate SoC-level statistics for a run. */
struct SocStats
{
    Cycles cyclesSimulated = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t l2Bytes = 0;
    double dramBusyFraction = 0.0; ///< Time-averaged DRAM utilization.
    /** Demand/arbitrate/advance rounds executed: fixed quanta under
     *  the quantum kernel, variable-length steps under the event
     *  kernel (the kernel-speedup ratio is quanta_q / quanta_e). */
    std::uint64_t quanta = 0;
    std::uint64_t schedInvocations = 0;
    /** Steps where oversubscribed interleaved demand degraded the
     *  effective DRAM bandwidth. */
    std::uint64_t thrashQuanta = 0;
    /** Bandwidth-cycles lost to thrash (bytes not servable). */
    double thrashLostBytes = 0.0;
    /** Per-level traffic counters of the run's memory model (row
     *  hits/misses, per-bank bytes, L2 conflict loss); all zero under
     *  the bank-less `flat` model. */
    mem::MemTraffic memTraffic;
};

/** The simulated SoC. */
class Soc
{
  public:
    Soc(const SocConfig &cfg, Policy &policy);

    /** Queue a job for dispatch at spec.dispatch. */
    void addJob(const JobSpec &spec);

    /**
     * Run until every job has completed.
     * @param max_cycles safety limit; fatal when exceeded (deadlock
     *        in a policy).  0 uses cfg.maxCycles.
     */
    void run(Cycles max_cycles = 0);

    // --- Resumable stepping (cluster co-simulation) -------------------
    //
    // run() is equivalent to beginRun(); while (stepOnce()) {};
    // finishRun().  A co-simulator (cluster::Cluster) instead steps
    // each SoC up to a *horizon* — the next cluster-level event, e.g.
    // the arrival of a task the front-end dispatcher has not placed
    // yet — injects the task into the chosen SoC at its exact
    // dispatch cycle, and resumes stepping.  Because stepOnce(h)
    // clamps exactly like the kernels clamp to the next in-SoC
    // arrival, a 1-SoC cluster replays the single-SoC simulation
    // bit-identically.

    /** Prepare for stepping: sort arrivals, arm the scheduler tick.
     *  @param max_cycles as for run(); 0 uses cfg.maxCycles. */
    void beginRun(Cycles max_cycles = 0);

    /**
     * Execute one kernel iteration (one demand/arbitrate/advance
     * round, or one idle/scheduling advance), never moving now()
     * past `horizon` (0 = unbounded).  Requires now() < horizon.
     * @return true while unfinished jobs remain.
     */
    bool stepOnce(Cycles horizon = 0);

    /**
     * Append a job mid-run (between stepOnce calls).  Dispatch cycles
     * must be injected in nondecreasing order and must not precede
     * now(); the id must be dense like addJob's.
     */
    void injectJob(const JobSpec &spec);

    /** True once every added/injected job has completed. */
    bool done() const { return allDone(); }

    /** Finalize stats() after stepping (run() calls it itself). */
    void finishRun();

    Cycles now() const { return now_; }
    const SocConfig &config() const { return cfg_; }
    const SocStats &stats() const { return stats_; }

    /** The shared-memory-hierarchy model this SoC arbitrates
     *  through (built from cfg.memModel; see mem/memory_model.h). */
    const mem::MemoryModel &memoryModel() const { return *mem_; }

    // --- Policy-facing state inspection ------------------------------

    /** All jobs, indexed by id (ids are dense, assigned by addJob). */
    const std::vector<Job> &jobs() const { return jobs_; }
    Job &job(int id);
    const Job &job(int id) const;

    /** Ids of jobs waiting (or paused) and visible at `now`. */
    std::vector<int> waitingJobs() const;
    /** Ids of running jobs. */
    std::vector<int> runningJobs() const;
    /** Waiting/paused job count (no copy; dispatcher feedback). */
    std::size_t waitingCount() const { return waiting_ids_.size(); }
    /** Running job count (no copy; dispatcher feedback). */
    std::size_t runningCount() const { return running_ids_.size(); }
    /** Tiles not allocated to any running job. */
    int freeTiles() const;

    // --- Policy-facing control ----------------------------------------

    /**
     * Move a Waiting/Paused job onto `num_tiles` tiles.
     * @param resume_penalty stall charged before execution begins
     *        (e.g. PREMA scratchpad restore); 0 for a fresh start.
     */
    void startJob(int id, int num_tiles, Cycles resume_penalty = 0);

    /**
     * Change a running job's tile allocation.  Charges the
     * thread-migration penalty (cfg.migrationCycles) unless
     * `charge_migration` is false.
     */
    void resizeJob(int id, int num_tiles, bool charge_migration = true);

    /**
     * Preempt a running job at its current layer boundary, saving
     * progress (PREMA).  Frees the job's tiles.
     */
    void pauseJob(int id);

    /** Program the job's MoCA throttle engines (Algorithm 2 output). */
    void configureThrottle(int id, const hw::ThrottleConfig &cfg);

    /** Results of completed jobs (valid after run()). */
    const std::vector<JobResult> &results() const { return results_; }

    /**
     * Effective L2 capacity a job sees right now: total capacity
     * divided by the number of running jobs (capacity contention).
     */
    std::uint64_t effectiveCacheBytes() const;

    /** Event log; call trace().enable() before run() to record. */
    TraceRecorder &trace() { return trace_; }
    const TraceRecorder &trace() const { return trace_; }

  private:
    SocConfig cfg_;
    Policy &policy_;
    std::unique_ptr<mem::MemoryModel> mem_;
    Cycles now_ = 0;

    std::vector<Job> jobs_;
    std::vector<int> arrival_order_; ///< Job ids sorted by dispatch.
    std::size_t next_arrival_ = 0;   ///< Index into arrival_order_.

    std::vector<JobResult> results_;
    SocStats stats_;
    TraceRecorder trace_;
    EventQueue events_; ///< Scratch queue of the event kernel.
    /**
     * Ids of jobs in JobState::Running, kept sorted ascending (the
     * order the old jobs_ scan produced) and maintained by
     * startJob/pauseJob/completeJob.  With multi-thousand-task stress
     * traces, per-step jobs_ scans would make every step O(total
     * jobs); these counters keep the hot queries O(running jobs).
     */
    std::vector<int> running_ids_;
    /** Ids of Waiting/Paused jobs, sorted ascending (see
     *  running_ids_); maintained by admitArrivals/startJob/pauseJob. */
    std::vector<int> waiting_ids_;
    int used_tiles_ = 0;       ///< Tiles of all running jobs.
    std::size_t done_jobs_ = 0;
    double dram_busy_cycles_ = 0.0;
    Cycles next_sched_tick_ = 0;
    bool sorted_ = false;
    bool began_ = false;       ///< beginRun() has armed the stepping.
    Cycles run_max_cycles_ = 0; ///< Deadlock bound of the current run.

    void sortArrivals();
    bool allDone() const { return done_jobs_ == jobs_.size(); }
    Cycles nextArrivalCycle() const;

    /** Insert/remove an id in a sorted id vector. */
    static void insertSorted(std::vector<int> &ids, int id);
    static void eraseSorted(std::vector<int> &ids, int id);

    /** Track a job entering/leaving the running set. */
    void addRunning(int id, int tiles);
    void dropRunning(int id, int tiles);

    /** Debug-only: verify the counters against a full jobs_ scan. */
    void debugCheckCounters() const;

    /** Admit arrivals with dispatch <= now; returns true if any. */
    bool admitArrivals();

    /** Initialize exec state for the job's current layer. */
    void beginLayer(Job &job);

    // --- Shared step phases (both kernels) ----------------------------

    /** One running job's byte demand for a step. */
    struct DemandEntry
    {
        int id;
        double dramDemand = 0.0;
        double l2Demand = 0.0;
        bool stalled = false;
        /** The MoCA throttle allowance clamped the demand, so the
         *  engine's next window rollover is a scheduling event. */
        bool throttleBound = false;
    };

    /** Arbitrated per-entry grants for a step. */
    struct ChannelGrants
    {
        std::vector<double> dram;
        std::vector<double> l2;
    };

    /** A job-level event produced by a step's advance phase. */
    struct BoundaryEvent
    {
        int id;
        bool blockBoundary;
        bool complete;
    };

    /** What one step did (advance-phase summary). */
    struct StepOutcome
    {
        std::vector<BoundaryEvent> events;
        double dramUsed = 0.0;
    };

    /**
     * Handle the scheduling points at `now_`: admit due arrivals,
     * fire the periodic tick, and — when nothing is running — advance
     * idle time to the next arrival or tick (or invoke the policy one
     * last time before declaring deadlock), clamped to `horizon`
     * (0 = unbounded).  Returns the running set; when empty the
     * caller re-enters its loop.
     */
    std::vector<int> schedulingPoints(Cycles horizon);

    /**
     * Demand phase: each running job's DMA byte demand over `horizon`
     * cycles, capped by its private rate and throttle allowance.
     * Initializes layer exec state as needed; no time accounting.
     */
    std::vector<DemandEntry>
    computeDemands(const std::vector<int> &running, Cycles horizon);

    /**
     * Arbitration phase: grant the shared DRAM channel (with the
     * oversubscription-thrash derate, accumulated into stats_) and
     * L2 banks over `horizon`.
     */
    ChannelGrants arbitrate(const std::vector<DemandEntry> &entries,
                            Cycles horizon);

    /** Grant/demand service ratio in (0, 1] for one entry. */
    double serviceRatio(const DemandEntry &e, double dram_grant,
                        double l2_grant) const;

    /**
     * Advance phase: move every entry forward by `horizon` cycles
     * (stalled jobs accrue stall time), consuming granted bytes.
     * Does not advance now_.
     */
    StepOutcome advanceEntries(const std::vector<DemandEntry> &entries,
                               const ChannelGrants &grants,
                               Cycles horizon);

    /** Close a step: advance now_, update stats. */
    void accountStep(Cycles step, const StepOutcome &out);

    /** Fire block-boundary/completion hooks recorded by a step. */
    void dispatchBoundaries(const std::vector<BoundaryEvent> &events);

    // --- Kernels ------------------------------------------------------

    /** One fixed-quantum kernel iteration, bounded by `horizon`. */
    void stepQuantum(Cycles horizon);

    /** One next-event kernel iteration, bounded by `horizon`. */
    void stepEvent(Cycles horizon);

    /**
     * Smallest quantum-grid point at or after `t`, strictly after
     * now_: the event kernel lands on the same time grid the quantum
     * kernel would, so per-job timing matches it to within a quantum.
     */
    Cycles gridCeil(Cycles t) const;

    /**
     * Advance a running job by up to `quantum` cycles.
     *
     * @param service grant/demand service ratio in (0, 1]: the memory
     *        pipeline runs 1/service times slower than at the job's
     *        private DMA caps.
     * @param dram_budget,l2_budget granted bytes this step (hard
     *        consumption clamps).
     */
    struct AdvanceOutcome
    {
        double dramConsumed = 0.0;
        double l2Consumed = 0.0;
        bool blockBoundary = false;
        bool jobComplete = false;
    };
    AdvanceOutcome advanceJob(Job &job, Cycles quantum, double service,
                              double dram_budget, double l2_budget);

    /**
     * Remaining time of the current layer when the memory pipeline
     * runs at `service` x the job's private cap rates.
     */
    double layerRemainingTime(const Job &job, double service) const;

    void completeJob(Job &job);
    void invokePolicy(SchedEvent event);
};

} // namespace moca::sim

#endif // MOCA_SIM_SOC_H
