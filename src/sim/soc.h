/**
 * @file
 * Cycle-level SoC simulator with two interchangeable time-advance
 * kernels (SocConfig::kernel).
 *
 * Execution model (shared by both kernels): each step, every running
 * job computes the byte demand its DMA engines would issue over the
 * step, capped by its MoCA throttle allowance; the pluggable
 * mem::MemoryModel (cfg.memModel: the flat channel+thrash model, or
 * the bank-aware `banked` model) arbitrates the shared DRAM channel
 * and L2 demands; each
 * job then advances its current layer using the granted rates,
 * combining compute and memory progress with the overlap factor
 * (latency = max(C, M) + f * min(C, M), Algorithm 1 semantics).
 *
 * The *quantum* kernel steps fixed cfg.quantum chunks, so cost scales
 * with simulated cycles.  The *event* kernel (sim/event_queue.h)
 * advances time directly to the earliest upcoming state change — next
 * arrival, periodic scheduler tick, stall expiry, layer completion,
 * binding throttle-window rollover — rounded up to the quantum grid;
 * demands, grants, and per-layer rates are piecewise-constant between
 * those events, so cost scales with scheduling activity instead.
 * Both kernels fire the periodic tick at the exact schedPeriod
 * cadence and admit arrivals at their exact dispatch cycle.
 *
 * Layer DRAM traffic is determined at layer start from the job's
 * *effective* L2 share (capacity divided among co-runners), which
 * models shared-cache capacity contention.  Scheduling points invoke
 * the pluggable Policy (MoCA or a baseline).
 */

#ifndef MOCA_SIM_SOC_H
#define MOCA_SIM_SOC_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_model.h"
#include "obs/sampler.h"
#include "sim/config.h"
#include "sim/job.h"
#include "sim/policy.h"
#include "sim/trace.h"

namespace moca::sim {

/**
 * Horizon value meaning "no bound": advanceTo(kNoHorizon) drains to
 * completion through the very same loop the bounded mode uses (the
 * clamp arithmetic never binds at 2^64-1).
 */
inline constexpr Cycles kNoHorizon = ~Cycles{0};

/** nextEventTime() of a SoC whose every job has completed: stepping
 *  it can never change state again. */
inline constexpr Cycles kNoEvent = ~Cycles{0};

/** Aggregate SoC-level statistics for a run. */
struct SocStats
{
    Cycles cyclesSimulated = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t l2Bytes = 0;
    double dramBusyFraction = 0.0; ///< Time-averaged DRAM utilization.
    /** Demand/arbitrate/advance rounds executed: fixed quanta under
     *  the quantum kernel, variable-length steps under the event
     *  kernel (the kernel-speedup ratio is quanta_q / quanta_e). */
    std::uint64_t quanta = 0;
    std::uint64_t schedInvocations = 0;
    /** Steps where oversubscribed interleaved demand degraded the
     *  effective DRAM bandwidth. */
    std::uint64_t thrashQuanta = 0;
    /** Bandwidth-cycles lost to thrash (bytes not servable). */
    double thrashLostBytes = 0.0;
    /** Per-level traffic counters of the run's memory model (row
     *  hits/misses, per-bank bytes, L2 conflict loss); all zero under
     *  the bank-less `flat` model. */
    mem::MemTraffic memTraffic;
};

/** The simulated SoC. */
class Soc
{
  public:
    Soc(const SocConfig &cfg, Policy &policy);

    /** Queue a job for dispatch at spec.dispatch. */
    void addJob(const JobSpec &spec);

    /**
     * Run until every job has completed.
     * @param max_cycles safety limit; fatal when exceeded (deadlock
     *        in a policy).  0 uses cfg.maxCycles.
     */
    void run(Cycles max_cycles = 0);

    // --- Resumable stepping (cluster co-simulation) -------------------
    //
    // run() is equivalent to beginRun(); while (stepOnce()) {};
    // finishRun().  A co-simulator (cluster::Cluster) instead steps
    // each SoC up to a *horizon* — the next cluster-level event, e.g.
    // the arrival of a task the front-end dispatcher has not placed
    // yet — injects the task into the chosen SoC at its exact
    // dispatch cycle, and resumes stepping.  Because stepOnce(h)
    // clamps exactly like the kernels clamp to the next in-SoC
    // arrival, a 1-SoC cluster replays the single-SoC simulation
    // bit-identically.

    /** Prepare for stepping: sort arrivals, arm the scheduler tick.
     *  @param max_cycles as for run(); 0 uses cfg.maxCycles. */
    void beginRun(Cycles max_cycles = 0);

    /**
     * Execute one kernel iteration (one demand/arbitrate/advance
     * round, or one idle/scheduling advance), never moving now()
     * past `horizon` (0 = unbounded).  Requires now() < horizon.
     * @return true while unfinished jobs remain.
     */
    bool stepOnce(Cycles horizon = 0);

    /**
     * Step until done() or now() >= horizon — the hoisted body of the
     * cluster loop's per-SoC advance, shared by the serial and
     * sharded (cluster::ParallelEngine) fleet paths.  One loop serves
     * both modes: kNoHorizon never clamps a step, so draining to
     * completion takes exactly the bounded code path.  A horizon of 0
     * is a no-op (now() starts at 0), matching "advance to an arrival
     * at cycle 0".
     */
    void advanceTo(Cycles horizon);

    /**
     * Conservative next-event bound for a co-simulator: the earliest
     * cycle at/after which stepping this SoC changes state.  kNoEvent
     * once every job has completed; otherwise now() — an unfinished
     * SoC always has pending activity as soon as the horizon moves
     * past its clock (real work, or idle clock/tick bookkeeping that
     * load snapshots observe).  A cluster-level epoch whose horizon
     * is at or below the fleet-wide minimum of this bound is provably
     * a no-op (see cluster/parallel.h).
     */
    Cycles nextEventTime() const
    {
        return allDone() ? kNoEvent : now_;
    }

    /**
     * Append a job mid-run (between stepOnce calls).  Dispatch cycles
     * must be injected in nondecreasing order and must not precede
     * now(); the id must be dense like addJob's.
     */
    void injectJob(const JobSpec &spec);

    /** True once every added/injected job has completed. */
    bool done() const { return allDone(); }

    /** Finalize stats() after stepping (run() calls it itself). */
    void finishRun();

    Cycles now() const { return now_; }
    const SocConfig &config() const { return cfg_; }
    const SocStats &stats() const { return stats_; }

    /** The shared-memory-hierarchy model this SoC arbitrates
     *  through (built from cfg.memModel; see mem/memory_model.h). */
    const mem::MemoryModel &memoryModel() const { return *mem_; }

    // --- Policy-facing state inspection ------------------------------

    /** All cold job records, indexed by id (ids are dense, assigned
     *  by addJob).  Per-step execution state lives in the hot array;
     *  read it through jobState/jobTiles/jobLayer/jobStallUntil. */
    const std::vector<Job> &jobs() const { return jobs_; }
    /** Cold record (spec, throttle engine, statistics) of one job. */
    Job &job(int id);
    const Job &job(int id) const;

    /** Lifecycle state of job `id` (hot array). */
    JobState jobState(int id) const { return hot(id).state; }
    /** Tiles currently allocated to job `id` (hot array). */
    int jobTiles(int id) const { return hot(id).numTiles; }
    /** Next layer index of job `id` (hot array). */
    std::size_t jobLayer(int id) const { return hot(id).layerIdx; }
    /** Current layer-block index of job `id` (hot array). */
    std::size_t jobBlock(int id) const { return hot(id).blockIdx; }
    /** Migration/preemption stall deadline of job `id` (hot array). */
    Cycles jobStallUntil(int id) const { return hot(id).stallUntil; }

    /**
     * Ids of jobs waiting (or paused) and visible at `now`, sorted
     * ascending.  The reference aliases live Soc state: it is
     * invalidated by startJob/pauseJob — policies that start jobs
     * while iterating must copy first.
     */
    const std::vector<int> &waitingJobs() const
    {
        // The set is mutated with O(1) append/swap-remove (keeping a
        // sorted vector costs O(waiting) per arrival — quadratic on
        // backlogged long-horizon runs) and only sorted back to the
        // canonical ascending-id order when a reader actually looks.
        sortWaitingView();
        return waiting_ids_;
    }
    /**
     * All job ids in dispatch order (sorted at beginRun; append-only
     * afterwards — injectJob enforces nondecreasing dispatch).  The
     * prefix [0, arrivedCount()) is exactly the set of jobs that have
     * entered the waiting set, in the order they arrived (dispatch
     * ascending, ids ascending on ties).  Policies can consume this
     * with a cursor to track arrivals incrementally instead of
     * re-scanning the waiting set.
     */
    const std::vector<int> &arrivalOrder() const
    {
        return arrival_order_;
    }
    /** Number of jobs that have arrived (see arrivalOrder()). */
    std::size_t arrivedCount() const { return next_arrival_; }
    /** Ids of running jobs, sorted ascending (aliases live state like
     *  waitingJobs()). */
    const std::vector<int> &runningJobs() const { return running_ids_; }
    /** Waiting/paused job count (no copy; dispatcher feedback). */
    std::size_t waitingCount() const { return waiting_ids_.size(); }
    /** Running job count (no copy; dispatcher feedback). */
    std::size_t runningCount() const { return running_ids_.size(); }
    /**
     * Change epoch of the waiting set: bumped whenever membership
     * changes.  Policies can memoize derived per-waiting-set state
     * across scheduling points whose epoch is unchanged (MoCA's
     * running-set mix bias uses the running twin below; its admit
     * queue is cached per job id instead, so it needs no epoch).
     */
    std::uint64_t waitingEpoch() const { return waiting_epoch_; }
    /** Change epoch of the running set; also bumped when a running
     *  job's tile allocation changes (resizeJob). */
    std::uint64_t runningEpoch() const { return running_epoch_; }
    /** Tiles not allocated to any running job. */
    int freeTiles() const;

    // --- Policy-facing control ----------------------------------------

    /**
     * Move a Waiting/Paused job onto `num_tiles` tiles.
     * @param resume_penalty stall charged before execution begins
     *        (e.g. PREMA scratchpad restore); 0 for a fresh start.
     */
    void startJob(int id, int num_tiles, Cycles resume_penalty = 0);

    /**
     * Change a running job's tile allocation.  Charges the
     * thread-migration penalty (cfg.migrationCycles) unless
     * `charge_migration` is false.
     */
    void resizeJob(int id, int num_tiles, bool charge_migration = true);

    /**
     * Preempt a running job at its current layer boundary, saving
     * progress (PREMA).  Frees the job's tiles.
     */
    void pauseJob(int id);

    /** Program the job's MoCA throttle engines (Algorithm 2 output). */
    void configureThrottle(int id, const hw::ThrottleConfig &cfg);

    /** Results of completed jobs (valid after run()). */
    const std::vector<JobResult> &results() const { return results_; }

    /**
     * Effective L2 capacity a job sees right now: total capacity
     * divided by the number of running jobs (capacity contention).
     */
    std::uint64_t effectiveCacheBytes() const;

    /** Event log; call trace().enable() before run() to record. */
    TraceRecorder &trace() { return trace_; }
    const TraceRecorder &trace() const { return trace_; }

    /**
     * Sampled telemetry of this run (null unless cfg.sampleEvery > 0).
     * Purely observational: instruments mirror state the simulator
     * already computes, so enabling sampling never changes results.
     */
    const obs::Sampler *sampler() const { return tele_sampler_.get(); }

  private:
    SocConfig cfg_;
    Policy &policy_;
    std::unique_ptr<mem::MemoryModel> mem_;
    Cycles now_ = 0;

    /**
     * Hot/cold job-state split: hot_ holds the per-step execution
     * state (state, tiles, layer/block cursor, layer exec remnants,
     * stall deadline) in a dense array the demand/advance scans walk;
     * jobs_ holds everything else (spec, throttle engine, lifetime
     * statistics), touched only at lifecycle events, reconfigurations
     * and window accounting.  hot_[i] and jobs_[i] describe job i.
     */
    std::vector<JobHot> hot_;
    std::vector<Job> jobs_;
    std::vector<int> arrival_order_; ///< Job ids sorted by dispatch.
    std::size_t next_arrival_ = 0;   ///< Index into arrival_order_.

    std::vector<JobResult> results_;
    SocStats stats_;
    TraceRecorder trace_;
    /**
     * Ids of jobs in JobState::Running, kept sorted ascending (the
     * order the old jobs_ scan produced) and maintained by
     * startJob/pauseJob/completeJob.  With multi-thousand-task stress
     * traces, per-step jobs_ scans would make every step O(total
     * jobs); these counters keep the hot queries O(running jobs).
     */
    std::vector<int> running_ids_;
    /** Ids of Waiting/Paused jobs; maintained unsorted with O(1)
     *  append/swap-remove by admitArrivals/startJob/pauseJob, sorted
     *  back to ascending-id order on read (waitingJobs()).  `mutable`
     *  because the sort is a view-only canonicalization. */
    // detlint: allow(R4) per-Soc view cache; a Soc runs on one thread
    mutable std::vector<int> waiting_ids_;
    /** waiting_ids_ position by job id (-1: not waiting); rebuilt by
     *  the view sort. */
    // detlint: allow(R4) per-Soc view cache; a Soc runs on one thread
    mutable std::vector<int> waiting_pos_;
    mutable bool waiting_view_sorted_ = true;
    int used_tiles_ = 0;       ///< Tiles of all running jobs.
    std::size_t done_jobs_ = 0;
    double dram_busy_cycles_ = 0.0;
    Cycles next_sched_tick_ = 0;
    bool sorted_ = false;
    bool began_ = false;       ///< beginRun() has armed the stepping.
    Cycles run_max_cycles_ = 0; ///< Deadlock bound of the current run.
    std::uint64_t waiting_epoch_ = 0; ///< See waitingEpoch().
    std::uint64_t running_epoch_ = 0; ///< See runningEpoch().

    void sortArrivals();
    bool allDone() const { return done_jobs_ == jobs_.size(); }
    Cycles nextArrivalCycle() const;

    /** Insert/remove an id in a sorted id vector. */
    static void insertSorted(std::vector<int> &ids, int id);
    static void eraseSorted(std::vector<int> &ids, int id);

    /** O(1) waiting-set mutation (see waiting_ids_). */
    void waitingAdd(int id);
    void waitingRemove(int id);
    /** Restore the canonical ascending-id order of waiting_ids_. */
    void sortWaitingView() const;

    /** Track a job entering/leaving the running set. */
    void addRunning(int id, int tiles);
    void dropRunning(int id, int tiles);

    /** Debug-only: verify the counters against a full jobs_ scan. */
    void debugCheckCounters() const;

    /** Admit arrivals with dispatch <= now; returns true if any. */
    bool admitArrivals();

    /** Hot execution state of one job (bounds-checked like job()). */
    JobHot &hotRef(int id);
    const JobHot &hot(int id) const;

    /** Initialize exec state for job `id`'s current layer. */
    void beginLayer(int id);

    // --- Shared step phases (both kernels) ----------------------------

    /** One running job's byte demand for a step. */
    struct DemandEntry
    {
        int id;
        double dramDemand = 0.0;
        double l2Demand = 0.0;
        bool stalled = false;
        /** The MoCA throttle allowance clamped the demand, so the
         *  engine's next window rollover is a scheduling event. */
        bool throttleBound = false;
    };

    /** Arbitrated per-entry grants for a step. */
    struct ChannelGrants
    {
        std::vector<double> dram;
        std::vector<double> l2;
    };

    /** A job-level event produced by a step's advance phase. */
    struct BoundaryEvent
    {
        int id;
        bool blockBoundary;
        bool complete;
    };

    /**
     * Handle the scheduling points at `now_`: admit due arrivals,
     * fire the periodic tick, and — when nothing is running — advance
     * idle time to the next arrival or tick (or invoke the policy one
     * last time before declaring deadlock), clamped to `horizon`
     * (0 = unbounded).  Returns true when jobs are running (the
     * caller may step); false re-enters the caller's loop.
     */
    bool schedulingPoints(Cycles horizon);

    /**
     * Demand phase: each running job's DMA byte demand over `horizon`
     * cycles, capped by its private rate and throttle allowance,
     * written into `out` (a per-step scratch buffer).  Initializes
     * layer exec state as needed; no time accounting.
     */
    void computeDemands(const std::vector<int> &running, Cycles horizon,
                        std::vector<DemandEntry> &out);

    /**
     * Arbitration phase: grant the shared DRAM channel (with the
     * oversubscription-thrash derate, accumulated into stats_) and
     * L2 banks over `horizon`, written into `out`.
     */
    void arbitrate(const std::vector<DemandEntry> &entries,
                   Cycles horizon, ChannelGrants &out);

    /** Grant/demand service ratio in (0, 1] for one entry. */
    double serviceRatio(const DemandEntry &e, double dram_grant,
                        double l2_grant) const;

    /**
     * Advance phase: move every entry forward by `horizon` cycles
     * (stalled jobs accrue stall time), consuming granted bytes.
     * Records boundary/completion events in boundary_scratch_; does
     * not advance now_.  Returns the step's consumed DRAM bytes.
     */
    double advanceEntries(const std::vector<DemandEntry> &entries,
                          const ChannelGrants &grants, Cycles horizon);

    /** Close a step: advance now_, update stats. */
    void accountStep(Cycles step, double dram_used);

    /** Fire the block-boundary/completion hooks recorded in
     *  boundary_scratch_ by the step's advance phase. */
    void dispatchBoundaries();

    // --- Kernels ------------------------------------------------------

    /** One fixed-quantum kernel iteration, bounded by `horizon`. */
    void stepQuantum(Cycles horizon);

    /** One next-event kernel iteration, bounded by `horizon`. */
    void stepEvent(Cycles horizon);

    /**
     * Smallest quantum-grid point at or after `t`, strictly after
     * now_: the event kernel lands on the same time grid the quantum
     * kernel would, so per-job timing matches it to within a quantum.
     */
    Cycles gridCeil(Cycles t) const;

    /**
     * Advance a running job by up to `quantum` cycles.
     *
     * @param service grant/demand service ratio in (0, 1]: the memory
     *        pipeline runs 1/service times slower than at the job's
     *        private DMA caps.
     * @param dram_budget,l2_budget granted bytes this step (hard
     *        consumption clamps).
     */
    struct AdvanceOutcome
    {
        double dramConsumed = 0.0;
        double l2Consumed = 0.0;
        bool blockBoundary = false;
        bool jobComplete = false;
    };
    AdvanceOutcome advanceJob(int id, Cycles quantum, double service,
                              double dram_budget, double l2_budget);

    /**
     * Remaining time of the current layer when the memory pipeline
     * runs at `service` x the job's private cap rates.
     */
    double layerRemainingTime(const JobHot &hot, double service) const;

    void completeJob(int id);
    void invokePolicy(SchedEvent event);

    // --- Telemetry (observational only; all null when disabled) -------
    //
    // Built by beginRun() when cfg.sampleEvery > 0; the hot path
    // (accountStep) pays one null-pointer test when sampling is off.
    std::unique_ptr<obs::Registry> tele_reg_;
    std::unique_ptr<obs::Sampler> tele_sampler_;
    obs::Gauge *tele_running_ = nullptr;
    obs::Gauge *tele_waiting_ = nullptr;
    obs::Gauge *tele_free_tiles_ = nullptr;
    obs::Gauge *tele_dram_mb_ = nullptr;
    obs::Counter *tele_done_ = nullptr;
    obs::Histogram *tele_latency_ = nullptr;

    /** Register the instrument set and arm the sampler. */
    void setupTelemetry();
    /** Refresh gauges and emit rows for all crossed grid points. */
    void sampleTelemetry();

    // --- Per-step scratch ---------------------------------------------
    //
    // The demand/arbitrate/advance phases run tens of millions of
    // times on long-horizon stress traces; these buffers are reserved
    // once in beginRun() (running jobs are bounded by numTiles) so
    // the hot loop never allocates.  Debug builds verify that no
    // buffer reallocated during the run (debugCheckNoRealloc).
    std::vector<DemandEntry> probe_scratch_;   ///< Event-kernel probe.
    std::vector<DemandEntry> entries_scratch_; ///< Step demands.
    std::vector<mem::MemRequest> requests_scratch_;
    ChannelGrants grants_scratch_;
    std::vector<BoundaryEvent> boundary_scratch_;

#ifndef NDEBUG
    /** Scratch/state capacities captured after beginRun's reserves. */
    std::vector<std::size_t> debug_caps_;
#endif
    /** Reserve id sets, results, and per-step scratch from the job
     *  count and tile count so the hot loop never grows a vector. */
    void reserveRunState();
    void debugCaptureCapacities();
    void debugCheckNoRealloc() const;
};

} // namespace moca::sim

#endif // MOCA_SIM_SOC_H
