/**
 * @file
 * Quantum-stepped cycle-level SoC simulator.
 *
 * Execution model: every quantum (default 512 cycles) each running
 * job computes the byte demand its DMA engines would issue, capped by
 * its MoCA throttle allowance; the shared DRAM channel and L2 banks
 * arbitrate demands with weighted max-min fairness; each job then
 * advances its current layer using the granted rates, combining
 * compute and memory progress with the overlap factor
 * (latency = max(C, M) + f * min(C, M), Algorithm 1 semantics).
 *
 * Layer DRAM traffic is determined at layer start from the job's
 * *effective* L2 share (capacity divided among co-runners), which
 * models shared-cache capacity contention.  Scheduling points invoke
 * the pluggable Policy (MoCA or a baseline).
 */

#ifndef MOCA_SIM_SOC_H
#define MOCA_SIM_SOC_H

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/job.h"
#include "sim/policy.h"
#include "sim/trace.h"

namespace moca::sim {

/** Aggregate SoC-level statistics for a run. */
struct SocStats
{
    Cycles cyclesSimulated = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t l2Bytes = 0;
    double dramBusyFraction = 0.0; ///< Time-averaged DRAM utilization.
    std::uint64_t quanta = 0;
    std::uint64_t schedInvocations = 0;
    /** Quanta where oversubscribed interleaved demand degraded the
     *  effective DRAM bandwidth. */
    std::uint64_t thrashQuanta = 0;
    /** Bandwidth-cycles lost to thrash (bytes not servable). */
    double thrashLostBytes = 0.0;
};

/** The simulated SoC. */
class Soc
{
  public:
    Soc(const SocConfig &cfg, Policy &policy);

    /** Queue a job for dispatch at spec.dispatch. */
    void addJob(const JobSpec &spec);

    /**
     * Run until every job has completed.
     * @param max_cycles safety limit; fatal when exceeded (deadlock
     *        in a policy).
     */
    void run(Cycles max_cycles = 0);

    Cycles now() const { return now_; }
    const SocConfig &config() const { return cfg_; }
    const SocStats &stats() const { return stats_; }

    // --- Policy-facing state inspection ------------------------------

    /** All jobs, indexed by id (ids are dense, assigned by addJob). */
    const std::vector<Job> &jobs() const { return jobs_; }
    Job &job(int id);
    const Job &job(int id) const;

    /** Ids of jobs waiting (or paused) and visible at `now`. */
    std::vector<int> waitingJobs() const;
    /** Ids of running jobs. */
    std::vector<int> runningJobs() const;
    /** Tiles not allocated to any running job. */
    int freeTiles() const;

    // --- Policy-facing control ----------------------------------------

    /**
     * Move a Waiting/Paused job onto `num_tiles` tiles.
     * @param resume_penalty stall charged before execution begins
     *        (e.g. PREMA scratchpad restore); 0 for a fresh start.
     */
    void startJob(int id, int num_tiles, Cycles resume_penalty = 0);

    /**
     * Change a running job's tile allocation.  Charges the
     * thread-migration penalty (cfg.migrationCycles) unless
     * `charge_migration` is false.
     */
    void resizeJob(int id, int num_tiles, bool charge_migration = true);

    /**
     * Preempt a running job at its current layer boundary, saving
     * progress (PREMA).  Frees the job's tiles.
     */
    void pauseJob(int id);

    /** Program the job's MoCA throttle engines (Algorithm 2 output). */
    void configureThrottle(int id, const hw::ThrottleConfig &cfg);

    /** Results of completed jobs (valid after run()). */
    const std::vector<JobResult> &results() const { return results_; }

    /**
     * Effective L2 capacity a job sees right now: total capacity
     * divided by the number of running jobs (capacity contention).
     */
    std::uint64_t effectiveCacheBytes() const;

    /** Event log; call trace().enable() before run() to record. */
    TraceRecorder &trace() { return trace_; }
    const TraceRecorder &trace() const { return trace_; }

  private:
    SocConfig cfg_;
    Policy &policy_;
    Cycles now_ = 0;

    std::vector<Job> jobs_;
    std::vector<int> arrival_order_; ///< Job ids sorted by dispatch.
    std::size_t next_arrival_ = 0;   ///< Index into arrival_order_.

    std::vector<JobResult> results_;
    SocStats stats_;
    TraceRecorder trace_;
    /** Jobs currently in JobState::Running, maintained by
     *  startJob/pauseJob/completeJob so the per-layer
     *  effectiveCacheBytes() lookup needs no jobs_ scan. */
    int running_jobs_ = 0;
    double dram_busy_cycles_ = 0.0;
    Cycles next_sched_tick_ = 0;
    bool sorted_ = false;

    void sortArrivals();
    bool allDone() const;
    Cycles nextArrivalCycle() const;

    /** Admit arrivals with dispatch <= now; returns true if any. */
    bool admitArrivals();

    /** Initialize exec state for the job's current layer. */
    void beginLayer(Job &job);

    /**
     * Advance a running job by up to `quantum` cycles.
     *
     * @param service grant/demand service ratio in (0, 1]: the memory
     *        pipeline runs 1/service times slower than at the job's
     *        private DMA caps.
     * @param dram_budget,l2_budget granted bytes this quantum (hard
     *        consumption clamps).
     */
    struct AdvanceOutcome
    {
        double dramConsumed = 0.0;
        double l2Consumed = 0.0;
        bool blockBoundary = false;
        bool jobComplete = false;
    };
    AdvanceOutcome advanceJob(Job &job, Cycles quantum, double service,
                              double dram_budget, double l2_budget);

    /**
     * Remaining time of the current layer when the memory pipeline
     * runs at `service` x the job's private cap rates.
     */
    double layerRemainingTime(const Job &job, double service) const;

    void completeJob(Job &job);
    void invokePolicy(SchedEvent event);
};

} // namespace moca::sim

#endif // MOCA_SIM_SOC_H
