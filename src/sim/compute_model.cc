#include "sim/compute_model.h"

#include <algorithm>

#include "common/log.h"

namespace moca::sim {

GemmShape
gemmShape(const dnn::Layer &layer)
{
    using dnn::LayerKind;
    GemmShape g;
    switch (layer.kind) {
      case LayerKind::Conv:
        g.m = static_cast<std::uint64_t>(layer.outH()) * layer.outW();
        g.k = static_cast<std::uint64_t>(layer.kernel) * layer.kernel *
            (static_cast<std::uint64_t>(layer.inC) / layer.groups);
        g.n = static_cast<std::uint64_t>(layer.outC) / layer.groups;
        g.groups = static_cast<std::uint64_t>(layer.groups);
        return g;
      case LayerKind::Dense:
        g.m = 1; // batch-1 inference
        g.k = static_cast<std::uint64_t>(layer.inC);
        g.n = static_cast<std::uint64_t>(layer.outC);
        return g;
      default:
        return g; // MEM layer: no GEMM
    }
}

Cycles
computeCycles(const dnn::Layer &layer, int num_tiles,
              const SocConfig &cfg)
{
    if (num_tiles < 1)
        panic("computeCycles with %d tiles", num_tiles);

    const auto a = static_cast<std::uint64_t>(cfg.arrayDim);
    const GemmShape g = gemmShape(layer);

    // Multi-tile jobs pay a per-layer coordination cost: work split,
    // per-tile dispatch, and the end-of-layer barrier.
    Cycles sync = 0;
    for (int t = 1; t < num_tiles; t *= 2)
        sync += cfg.interTileSyncCycles;

    if (g.m == 0) {
        // MEM layer: element-wise traffic through the vector path,
        // one element per PE per cycle, split across tiles.
        const std::uint64_t elems =
            (layer.inputBytes() + layer.outputBytes()) /
            dnn::kElemBytes;
        const std::uint64_t per_tile =
            ceilDiv<std::uint64_t>(elems,
                static_cast<std::uint64_t>(num_tiles));
        return std::max<Cycles>(1, per_tile / (a * a)) + sync;
    }

    const std::uint64_t tiles_k = ceilDiv(g.k, a);
    const std::uint64_t tiles_n = ceilDiv(g.n, a);
    const std::uint64_t tiles = static_cast<std::uint64_t>(num_tiles);

    std::uint64_t m_per_tile;
    std::uint64_t kn_tiles_per_tile;
    if (g.m >= tiles) {
        // Split the streamed rows across tiles.
        m_per_tile = ceilDiv(g.m, tiles);
        kn_tiles_per_tile = tiles_k * tiles_n;
    } else {
        // Small-M layers (dense): split output-channel tiles instead.
        m_per_tile = g.m;
        kn_tiles_per_tile = tiles_k * ceilDiv(tiles_n, tiles);
    }

    // Per KxN weight tile the array streams m rows; loading the next
    // weight tile (a rows) is double-buffered behind the streaming, so
    // the tile costs max(m, a) cycles.  One pipeline fill/drain (2a)
    // is paid per group.
    const std::uint64_t per_tile_cost = std::max(m_per_tile, a);
    const std::uint64_t per_group =
        kn_tiles_per_tile * per_tile_cost + 2 * a;
    const double serial =
        1.0 + cfg.multiTileSerialFraction * (num_tiles - 1);
    // Sparsity-capable datapath skips zero weights; throughput scales
    // with density down to a structural floor (load imbalance across
    // PE rows limits the speedup).
    const double density =
        std::max(0.1, std::min(1.0, layer.weightDensity));
    const auto cycles = static_cast<Cycles>(
        static_cast<double>(per_group * g.groups) * serial * density);
    return std::max<Cycles>(1, cycles) + sync;
}

double
arrayUtilization(const dnn::Layer &layer, const SocConfig &cfg)
{
    const Cycles cycles = computeCycles(layer, 1, cfg);
    const double peak =
        static_cast<double>(cfg.tileMacsPerCycle()) *
        static_cast<double>(cycles);
    if (peak <= 0.0)
        return 0.0;
    return static_cast<double>(layer.macCount()) / peak;
}

} // namespace moca::sim
