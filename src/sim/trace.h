/**
 * @file
 * Execution-trace recording: an optional, low-overhead event log the
 * SoC simulator fills while running (job lifecycle, layer-block
 * boundaries, throttle reconfigurations, migrations).  Used by the
 * timeline example and by tests that assert ordering properties that
 * aggregate metrics cannot see.
 */

#ifndef MOCA_SIM_TRACE_H
#define MOCA_SIM_TRACE_H

#include <string>
#include <vector>

#include "common/units.h"

namespace moca::sim {

/** Kind of a trace event. */
enum class TraceEventKind
{
    JobDispatched,  ///< Entered the task queue.
    JobStarted,     ///< First placed on tiles.
    JobResumed,     ///< Re-placed after preemption.
    JobPaused,      ///< Preempted (PREMA).
    JobResized,     ///< Tile allocation changed.
    JobCompleted,
    BlockBoundary,  ///< Crossed into a new layer block.
    ThrottleConfig, ///< MoCA throttle engines reprogrammed.
    SchedTick,      ///< Periodic scheduler tick fired (jobId = -1).
    // Cluster / serve front-end kinds (recorded by the coordinator,
    // jobId = request or slot id as noted).
    AdmissionShed,  ///< Admission dropped a request (jobId = req).
    AdmissionDefer, ///< Admission deferred a request (jobId = req).
    SocFail,        ///< A fleet SoC failed (jobId = slot).
    SocRecover,     ///< A failed SoC came back (jobId = slot).
    ScaleUp,        ///< Autoscaler activated a SoC (jobId = slot).
    ScaleDown,      ///< Autoscaler drained a SoC (jobId = slot).
};

/** Count of TraceEventKind values (for coverage iteration). */
inline constexpr int kNumTraceEventKinds =
    static_cast<int>(TraceEventKind::ScaleDown) + 1;

/** One recorded event. */
struct TraceEvent
{
    Cycles cycle = 0;
    TraceEventKind kind = TraceEventKind::JobDispatched;
    int jobId = -1;
    /** Event-dependent value: tiles for start/resize, block index
     *  for boundaries, window cycles for throttle configs. */
    long long value = 0;
    /** Owning SoC in fleet runs (recorder context; 0 standalone). */
    int socId = 0;
};

/** Printable event-kind name. */
const char *traceEventKindName(TraceEventKind kind);

/** Append-only event log. */
class TraceRecorder
{
  public:
    /** Recording is off until enabled (zero overhead when off). */
    void enable() { enabled_ = true; }
    bool enabled() const { return enabled_; }

    /** SoC id stamped on subsequent events (fleet context). */
    void setSocId(int soc_id) { soc_id_ = soc_id; }
    int socId() const { return soc_id_; }

    void
    record(Cycles cycle, TraceEventKind kind, int job_id,
           long long value = 0)
    {
        if (enabled_)
            events_.push_back({cycle, kind, job_id, value, soc_id_});
    }

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events of one job, in time order. */
    std::vector<TraceEvent> forJob(int job_id) const;

    /** Count of events of a kind (optionally for one job). */
    std::size_t count(TraceEventKind kind, int job_id = -1) const;

    /** Render a human-readable timeline (cycles in Kcyc). */
    std::string render(std::size_t max_events = 200) const;

    void clear() { events_.clear(); }

  private:
    bool enabled_ = false;
    int soc_id_ = 0;
    std::vector<TraceEvent> events_;
};

} // namespace moca::sim

#endif // MOCA_SIM_TRACE_H
