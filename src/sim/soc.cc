#include "sim/soc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/log.h"
#include "sim/compute_model.h"
#include "sim/traffic_model.h"

namespace moca::sim {

namespace {

constexpr double kInf = 1e30;
constexpr Cycles kNoArrival = std::numeric_limits<Cycles>::max();

} // anonymous namespace

void
Policy::onBlockBoundary(Soc &, Job &)
{
}

void
Policy::onJobComplete(Soc &, Job &)
{
}

Soc::Soc(const SocConfig &cfg, Policy &policy)
    : cfg_(cfg), policy_(policy),
      mem_(mem::MemoryModelRegistry::instance().make(cfg.memModel,
                                                     cfg))
{
    if (cfg_.numTiles < 1)
        fatal("SoC needs at least one tile");
    if (cfg_.quantum < 1)
        fatal("quantum must be positive");
    if (cfg_.schedPeriod < 1)
        fatal("scheduler period must be positive");
}

void
Soc::addJob(const JobSpec &spec)
{
    if (spec.model == nullptr)
        fatal("job %d has no model", spec.id);
    if (spec.id != static_cast<int>(jobs_.size()))
        fatal("job ids must be dense and in insertion order "
              "(got %d, expected %zu)", spec.id, jobs_.size());
    Job job;
    job.spec = spec;
    jobs_.push_back(std::move(job));
    sorted_ = false;
}

void
Soc::sortArrivals()
{
    arrival_order_.resize(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        arrival_order_[i] = static_cast<int>(i);
    std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                     [&](int a, int b) {
                         return jobs_[a].spec.dispatch <
                             jobs_[b].spec.dispatch;
                     });
    next_arrival_ = 0;
    sorted_ = true;
}

Cycles
Soc::nextArrivalCycle() const
{
    if (next_arrival_ >= arrival_order_.size())
        return kNoArrival;
    return jobs_[arrival_order_[next_arrival_]].spec.dispatch;
}

bool
Soc::admitArrivals()
{
    bool any = false;
    while (next_arrival_ < arrival_order_.size()) {
        Job &j = jobs_[arrival_order_[next_arrival_]];
        if (j.spec.dispatch > now_)
            break;
        j.state = JobState::Waiting;
        insertSorted(waiting_ids_, j.spec.id);
        trace_.record(now_, TraceEventKind::JobDispatched, j.spec.id);
        ++next_arrival_;
        any = true;
    }
    return any;
}

Job &
Soc::job(int id)
{
    if (id < 0 || id >= static_cast<int>(jobs_.size()))
        panic("bad job id %d", id);
    return jobs_[static_cast<std::size_t>(id)];
}

const Job &
Soc::job(int id) const
{
    return const_cast<Soc *>(this)->job(id);
}

std::vector<int>
Soc::waitingJobs() const
{
    return waiting_ids_;
}

void
Soc::insertSorted(std::vector<int> &ids, int id)
{
    // Ascending id order — the order the old jobs_ scans produced —
    // keeps the policy-facing queries deterministic and
    // scan-identical.
    ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

void
Soc::eraseSorted(std::vector<int> &ids, int id)
{
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    if (it == ids.end() || *it != id)
        panic("job %d is not in the tracked set", id);
    ids.erase(it);
}

std::vector<int>
Soc::runningJobs() const
{
    return running_ids_;
}

int
Soc::freeTiles() const
{
    if (used_tiles_ > cfg_.numTiles)
        panic("tile over-allocation: %d of %d", used_tiles_,
              cfg_.numTiles);
    return cfg_.numTiles - used_tiles_;
}

std::uint64_t
Soc::effectiveCacheBytes() const
{
    return cfg_.l2Bytes / static_cast<std::uint64_t>(std::max<
        std::size_t>(1, running_ids_.size()));
}

void
Soc::addRunning(int id, int tiles)
{
    insertSorted(running_ids_, id);
    used_tiles_ += tiles;
    debugCheckCounters();
}

void
Soc::dropRunning(int id, int tiles)
{
    eraseSorted(running_ids_, id);
    used_tiles_ -= tiles;
    debugCheckCounters();
}

void
Soc::debugCheckCounters() const
{
#ifndef NDEBUG
    // The counters must track the job states exactly; a drift here
    // would silently mis-model capacity/bandwidth contention.  Only
    // verified at state transitions (not per step), so debug builds
    // pay O(jobs) per lifecycle event, not per simulated quantum.
    int scanned = 0, used = 0;
    std::size_t done = 0, waiting = 0;
    for (const auto &j : jobs_) {
        if (j.state == JobState::Running) {
            ++scanned;
            used += j.numTiles;
        }
        if (j.state == JobState::Waiting ||
            j.state == JobState::Paused)
            ++waiting;
        if (j.complete())
            ++done;
    }
    if (scanned != static_cast<int>(running_ids_.size()) ||
        used != used_tiles_ || done != done_jobs_ ||
        waiting != waiting_ids_.size())
        panic("running-set counter drift: %zu/%d tracked, %d/%d "
              "scanned, done %zu/%zu, waiting %zu/%zu",
              running_ids_.size(), used_tiles_, scanned, used,
              done_jobs_, done, waiting_ids_.size(), waiting);
#endif
}

void
Soc::startJob(int id, int num_tiles, Cycles resume_penalty)
{
    Job &j = job(id);
    if (j.state != JobState::Waiting && j.state != JobState::Paused)
        panic("startJob(%d): job is not startable (state %d)",
              id, static_cast<int>(j.state));
    if (num_tiles < 1)
        panic("startJob(%d): need >= 1 tile", id);
    if (num_tiles > freeTiles())
        panic("startJob(%d): %d tiles requested, %d free",
              id, num_tiles, freeTiles());

    j.state = JobState::Running;
    j.numTiles = num_tiles;
    eraseSorted(waiting_ids_, id);
    addRunning(id, num_tiles);
    j.exec.valid = false;
    if (resume_penalty > 0)
        j.stallUntil = std::max(j.stallUntil, now_ + resume_penalty);
    trace_.record(now_,
                  j.started ? TraceEventKind::JobResumed
                            : TraceEventKind::JobStarted,
                  id, num_tiles);
    if (!j.started) {
        j.started = true;
        j.firstStart = now_;
    }
    j.throttle.reset();
}

void
Soc::resizeJob(int id, int num_tiles, bool charge_migration)
{
    Job &j = job(id);
    if (j.state != JobState::Running)
        panic("resizeJob(%d): job is not running", id);
    if (num_tiles == j.numTiles)
        return;
    if (num_tiles < 1)
        panic("resizeJob(%d): need >= 1 tile", id);
    const int avail = freeTiles() + j.numTiles;
    if (num_tiles > avail)
        panic("resizeJob(%d): %d tiles requested, %d available",
              id, num_tiles, avail);

    used_tiles_ += num_tiles - j.numTiles;
    j.numTiles = num_tiles;
    // The layer restarts under the new tiling; the migration stall
    // dominates the lost partial-layer work.
    j.exec.valid = false;
    if (charge_migration) {
        j.stallUntil = std::max(j.stallUntil,
                                now_ + cfg_.migrationCycles);
        j.migrations++;
    }
    trace_.record(now_, TraceEventKind::JobResized, id, num_tiles);
}

void
Soc::pauseJob(int id)
{
    Job &j = job(id);
    if (j.state != JobState::Running)
        panic("pauseJob(%d): job is not running", id);
    j.state = JobState::Paused;
    insertSorted(waiting_ids_, id);
    dropRunning(id, j.numTiles);
    j.numTiles = 0;
    j.exec.valid = false; // partial layer progress is discarded
    j.preemptions++;
    trace_.record(now_, TraceEventKind::JobPaused, id);
}

void
Soc::configureThrottle(int id, const hw::ThrottleConfig &tcfg)
{
    Job &j = job(id);
    j.throttle.configure(tcfg);
    trace_.record(now_, TraceEventKind::ThrottleConfig, id,
                  static_cast<long long>(tcfg.windowCycles));
}

void
Soc::beginLayer(Job &job)
{
    const dnn::Model &model = *job.spec.model;
    const dnn::Layer &layer = model.layer(job.layerIdx);

    const Cycles cc = computeCycles(layer, job.numTiles, cfg_);
    const LayerTraffic traffic =
        layerTraffic(layer, job.numTiles, cfg_, effectiveCacheBytes());

    job.exec.computeRem = static_cast<double>(cc);
    job.exec.l2Rem = static_cast<double>(traffic.l2Bytes);
    job.exec.dramRem = static_cast<double>(traffic.dramBytes);
    job.exec.valid = true;
}

double
Soc::layerRemainingTime(const Job &job, double service) const
{
    const LayerExecState &e = job.exec;
    const double c = e.computeRem;
    if (service <= 0.0)
        return kInf;
    // Memory time at the job's private DMA caps, inflated by the
    // service ratio the shared channels granted.  DRAM refills flow
    // through the L2 pipeline concurrently, so the memory time is the
    // slower of the two channels, not their sum.
    const double cap = cfg_.tileDmaBytesPerCycle *
        std::max(1, job.numTiles);
    const double dram_cap = std::min(cap, cfg_.dramBytesPerCycle);
    const double l2_cap = std::min(cap, cfg_.l2BytesPerCycle());
    const double m_cap =
        std::max(e.dramRem / dram_cap, e.l2Rem / l2_cap);
    const double m = m_cap / service;
    const double f = cfg_.overlapF;
    return std::max(c, m) + f * std::min(c, m);
}

Soc::AdvanceOutcome
Soc::advanceJob(Job &job, Cycles quantum, double service,
                double dram_budget, double l2_budget)
{
    AdvanceOutcome out;
    double t = static_cast<double>(quantum);
    const dnn::Model &model = *job.spec.model;

    while (t > 1e-9) {
        if (!job.exec.valid)
            beginLayer(job);

        double t_rem = layerRemainingTime(job, service);
        // Hard grant clamps: progress cannot consume more bytes than
        // the arbiters granted this quantum.
        double df_max = t / t_rem;
        if (job.exec.dramRem > 1e-9)
            df_max = std::min(df_max,
                              dram_budget / job.exec.dramRem);
        if (job.exec.l2Rem > 1e-9)
            df_max = std::min(df_max, l2_budget / job.exec.l2Rem);

        if (df_max >= 1.0 && t_rem <= t) {
            // Layer completes within this quantum.
            out.dramConsumed += job.exec.dramRem;
            out.l2Consumed += job.exec.l2Rem;
            dram_budget -= job.exec.dramRem;
            l2_budget -= job.exec.l2Rem;
            t -= t_rem;
            job.exec = LayerExecState();
            job.layerIdx++;

            if (job.layerIdx >= model.numLayers()) {
                out.jobComplete = true;
                break;
            }
            const auto &blocks = model.blocks();
            if (job.blockIdx + 1 < blocks.size() &&
                job.layerIdx >= blocks[job.blockIdx + 1].first) {
                job.blockIdx++;
                out.blockBoundary = true;
                // Give the policy a reconfiguration opportunity
                // before the next block begins.
                break;
            }
            if (cfg_.layerBoundaryEvents) {
                // Granularity ablation: boundary hook per layer.
                out.blockBoundary = true;
                break;
            }
        } else {
            const double frac = std::min(df_max, t / t_rem);
            const double dram_used = frac * job.exec.dramRem;
            const double l2_used = frac * job.exec.l2Rem;
            out.dramConsumed += dram_used;
            out.l2Consumed += l2_used;
            dram_budget -= dram_used;
            l2_budget -= l2_used;
            job.exec.computeRem *= 1.0 - frac;
            job.exec.dramRem *= 1.0 - frac;
            job.exec.l2Rem *= 1.0 - frac;
            t = 0.0;
        }
    }
    return out;
}

void
Soc::completeJob(Job &job)
{
    const bool was_running = job.state == JobState::Running;
    job.state = JobState::Done;
    ++done_jobs_;
    if (was_running)
        dropRunning(job.spec.id, job.numTiles);
    job.numTiles = 0;
    job.finish = now_;

    JobResult r;
    r.spec = job.spec;
    r.firstStart = job.firstStart;
    r.finish = job.finish;
    r.dramBytesMoved = job.dramBytesMoved;
    r.l2BytesMoved = job.l2BytesMoved;
    r.stallCycles = job.stallCycles;
    r.migrations = job.migrations;
    r.preemptions = job.preemptions;
    r.throttleReconfigs =
        static_cast<int>(job.throttle.stats().reconfigurations);
    results_.push_back(r);
    trace_.record(now_, TraceEventKind::JobCompleted, job.spec.id);
}

void
Soc::invokePolicy(SchedEvent event)
{
    stats_.schedInvocations++;
    policy_.schedule(*this, event);
}

// --- Shared step phases -----------------------------------------------

std::vector<int>
Soc::schedulingPoints(Cycles horizon)
{
    if (admitArrivals())
        invokePolicy(SchedEvent::JobArrival);
    if (now_ >= next_sched_tick_) {
        trace_.record(now_, TraceEventKind::SchedTick, -1);
        invokePolicy(SchedEvent::PeriodicTick);
        next_sched_tick_ = now_ + cfg_.schedPeriod;
    }

    std::vector<int> running = runningJobs();
    if (!running.empty())
        return running;

    const Cycles na = nextArrivalCycle();
    if (na != kNoArrival) {
        // Idle-advance to the next arrival, but never past a periodic
        // tick (the tick cadence stays exact across idle gaps) or the
        // caller's horizon (a co-simulator may inject work there).
        Cycles target = std::min(na, next_sched_tick_);
        if (horizon != 0)
            target = std::min(target, horizon);
        now_ = std::max(now_, target);
        return {};
    }
    // No arrivals left and nothing running: the policy must start a
    // waiting/paused job now or we are deadlocked.
    invokePolicy(SchedEvent::PeriodicTick);
    running = runningJobs();
    if (running.empty() && !allDone())
        fatal("policy deadlock: %zu jobs unfinished, nothing "
              "running, no arrivals pending", waitingJobs().size());
    return running;
}

std::vector<Soc::DemandEntry>
Soc::computeDemands(const std::vector<int> &running, Cycles horizon)
{
    std::vector<DemandEntry> entries;
    entries.reserve(running.size());

    for (int id : running) {
        Job &j = jobs_[static_cast<std::size_t>(id)];
        DemandEntry e;
        e.id = id;
        if (j.stallUntil > now_) {
            e.stalled = true;
            entries.push_back(e);
            continue;
        }
        if (!j.exec.valid)
            beginLayer(j);

        // Private (uncontended) rate cap of the job's DMA engines.
        const double cap =
            cfg_.tileDmaBytesPerCycle * j.numTiles;
        const double t_full = layerRemainingTime(j, 1.0);
        const double q = static_cast<double>(horizon);

        double l2_des, dram_des;
        if (t_full >= kInf) {
            l2_des = dram_des = 0.0;
        } else if (t_full <= q) {
            // Layer (and possibly more) finishes within the
            // step at private speed: ask for the full rate.
            l2_des = std::min(j.exec.l2Rem + q * cap * 0.25,
                              q * cap);
            dram_des = std::min(j.exec.dramRem + q * cap * 0.25,
                                q * cap);
        } else {
            // The decoupled DMA runs ahead of compute: it issues
            // at up to dmaRunAhead x the balanced rate until the
            // scratchpad double-buffer backpressures.
            const double ahead = std::max(1.0, cfg_.dmaRunAhead);
            l2_des = std::min(q * cap,
                              ahead * q * (j.exec.l2Rem / t_full));
            dram_des = std::min(
                q * cap, ahead * q * (j.exec.dramRem / t_full));
        }

        // MoCA throttle: cap by the per-tile window allowance.
        if (j.throttle.config().enabled() || l2_des > 0.0) {
            const std::uint64_t beats_per_tile =
                j.throttle.peekAllowance(horizon);
            const double allowed =
                static_cast<double>(beats_per_tile) *
                static_cast<double>(cfg_.dmaBeatBytes) *
                j.numTiles;
            if (l2_des > allowed) {
                e.throttleBound = true;
                const double scale =
                    l2_des > 0.0 ? allowed / l2_des : 0.0;
                l2_des = allowed;
                dram_des *= scale;
            }
        }
        e.l2Demand = l2_des;
        e.dramDemand = dram_des;
        entries.push_back(e);
    }
    return entries;
}

Soc::ChannelGrants
Soc::arbitrate(const std::vector<DemandEntry> &entries, Cycles horizon)
{
    std::vector<mem::MemRequest> requests;
    requests.reserve(entries.size());
    for (const auto &e : entries) {
        const Job &j = jobs_[static_cast<std::size_t>(e.id)];
        mem::MemRequest r;
        r.id = e.id;
        r.dramBytes = e.dramDemand;
        r.l2Bytes = e.l2Demand;
        r.weight = std::max(1, j.numTiles);
        requests.push_back(r);
    }

    mem::MemStepStats step;
    const std::vector<mem::MemGrant> grants =
        mem_->arbitrate(requests, horizon, step);
    if (grants.size() != requests.size())
        fatal("memory model '%s' returned %zu grants for %zu "
              "requests (zero-demand requesters must get zero "
              "grants, not be dropped)",
              mem_->name(), grants.size(), requests.size());
    if (step.thrashed) {
        stats_.thrashQuanta++;
        stats_.thrashLostBytes += step.thrashLostBytes;
    }

    ChannelGrants g;
    g.dram.reserve(entries.size());
    g.l2.reserve(entries.size());
    for (const auto &grant : grants) {
        g.dram.push_back(grant.dramBytes);
        g.l2.push_back(grant.l2Bytes);
    }
    return g;
}

double
Soc::serviceRatio(const DemandEntry &e, double dram_grant,
                  double l2_grant) const
{
    // Service ratio: how much of the demanded issue rate the shared
    // channels actually granted.
    double service = 1.0;
    if (e.dramDemand > 1e-9)
        service = std::min(service, dram_grant / e.dramDemand);
    if (e.l2Demand > 1e-9)
        service = std::min(service, l2_grant / e.l2Demand);
    // The demand already includes the run-ahead margin; the balanced
    // rate is demand / runAhead, so a grant of demand/runAhead still
    // sustains full-speed execution.
    return std::min(1.0, service * std::max(1.0, cfg_.dmaRunAhead));
}

Soc::StepOutcome
Soc::advanceEntries(const std::vector<DemandEntry> &entries,
                    const ChannelGrants &grants, Cycles horizon)
{
    StepOutcome out;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Job &j = jobs_[static_cast<std::size_t>(entries[i].id)];
        if (entries[i].stalled) {
            j.stallCycles += std::min<Cycles>(
                horizon, j.stallRemaining(now_));
            j.throttle.advance(horizon, 0);
            continue;
        }
        const double service = serviceRatio(
            entries[i], grants.dram[i], grants.l2[i]);
        const AdvanceOutcome adv =
            advanceJob(j, horizon, service,
                       grants.dram[i], grants.l2[i]);

        j.dramBytesMoved +=
            static_cast<std::uint64_t>(adv.dramConsumed);
        j.l2BytesMoved +=
            static_cast<std::uint64_t>(adv.l2Consumed);
        out.dramUsed += adv.dramConsumed;

        // Account the consumed traffic in the throttle engine
        // (per tile).
        const std::uint64_t beats = static_cast<std::uint64_t>(
            adv.l2Consumed /
            (static_cast<double>(cfg_.dmaBeatBytes) *
             std::max(1, j.numTiles)));
        j.throttle.advance(horizon, beats);

        if (adv.blockBoundary || adv.jobComplete)
            out.events.push_back({entries[i].id, adv.blockBoundary,
                                  adv.jobComplete});
    }
    return out;
}

void
Soc::accountStep(Cycles step, const StepOutcome &out)
{
    now_ += step;
    stats_.quanta++;
    stats_.dramBytes += static_cast<std::uint64_t>(out.dramUsed);
    dram_busy_cycles_ += out.dramUsed / cfg_.dramBytesPerCycle;
}

void
Soc::dispatchBoundaries(const std::vector<BoundaryEvent> &events)
{
    bool completion = false;
    for (const auto &ev : events) {
        Job &j = jobs_[static_cast<std::size_t>(ev.id)];
        if (ev.complete) {
            completeJob(j);
            policy_.onJobComplete(*this, j);
            completion = true;
        } else if (ev.blockBoundary) {
            trace_.record(now_, TraceEventKind::BlockBoundary,
                          ev.id,
                          static_cast<long long>(j.blockIdx));
            policy_.onBlockBoundary(*this, j);
        }
    }
    if (completion)
        invokePolicy(SchedEvent::JobCompletion);
}

// --- Kernels ----------------------------------------------------------

void
Soc::stepQuantum(Cycles horizon)
{
    const std::vector<int> running = schedulingPoints(horizon);
    if (running.empty())
        return;

    Cycles step = cfg_.quantum;
    const Cycles na = nextArrivalCycle();
    if (na != kNoArrival && na > now_)
        step = std::min<Cycles>(step, na - now_);
    // Clamp to the periodic tick as well, so it fires at the
    // exact schedPeriod cadence instead of up to a quantum late.
    step = std::min<Cycles>(step, next_sched_tick_ - now_);
    // The horizon acts like one more pending arrival: a cluster
    // front-end may place a task on this SoC at that cycle.
    if (horizon != 0)
        step = std::min<Cycles>(step, horizon - now_);
    step = std::max<Cycles>(step, 1);

    const auto entries = computeDemands(running, step);
    const auto grants = arbitrate(entries, step);
    const StepOutcome out = advanceEntries(entries, grants, step);
    accountStep(step, out);
    dispatchBoundaries(out.events);
}

void
Soc::stepEvent(Cycles horizon)
{
    const std::vector<int> running = schedulingPoints(horizon);
    if (running.empty())
        return;

    // Probe pass at quantum granularity: the demand-shape branch
    // and throttle binding match what the quantum kernel would
    // see in the next quantum, and stay constant until the next
    // event (demand rates are layer-invariant: every remaining
    // quantity shrinks by the same factor as the layer advances).
    auto probe = computeDemands(running, cfg_.quantum);

    events_.clear();
    const Cycles na = nextArrivalCycle();
    if (na != kNoArrival)
        events_.push(na, SimEventKind::Arrival);
    if (horizon != 0)
        events_.push(horizon, SimEventKind::Arrival);
    events_.push(next_sched_tick_, SimEventKind::SchedTick);
    // A stateful memory model (e.g. banked row-locality) bounds the
    // step so its internal state is re-sampled often enough; the
    // stateless flat model returns 0 and adds no event, keeping the
    // event stream identical to the pre-mem-subsystem kernel.
    const Cycles mem_change = mem_->cyclesUntilNextChange();
    if (mem_change > 0)
        events_.push(gridCeil(now_ + mem_change),
                     SimEventKind::MemStateChange);
    for (const DemandEntry &e : probe) {
        const Job &j = jobs_[static_cast<std::size_t>(e.id)];
        if (e.stalled) {
            events_.push(gridCeil(j.stallUntil),
                         SimEventKind::StallExpiry, e.id);
            continue;
        }
        // A layer can never finish before its full-service
        // remaining time, so step to the grid point strictly
        // *before* it: the tail quantum then replays the quantum
        // kernel's end-of-layer demand burst exactly, and no step
        // ever spans a demand-shape change.
        const double t = layerRemainingTime(j, 1.0);
        if (t < kInf) {
            const Cycles dt = static_cast<Cycles>(std::ceil(
                std::min(t, static_cast<double>(
                                cfg_.schedPeriod))));
            const Cycles floor_step = std::max<Cycles>(
                cfg_.quantum,
                (dt > 1 ? (dt - 1) / cfg_.quantum : 0) *
                    cfg_.quantum);
            events_.push(now_ + floor_step,
                         SimEventKind::LayerCompletion, e.id);
        }
        if (e.throttleBound) {
            // A binding throttle re-opens at the engine's next
            // state change (window rollover / reconfig-stall
            // end); stop there so per-window pacing is not
            // smeared across a long step.
            const Cycles c = j.throttle.cyclesUntilNextChange();
            if (c > 0)
                events_.push(gridCeil(now_ + c),
                             SimEventKind::ThrottleWindow, e.id);
        }
    }

    const Cycles step = events_.top().at - now_;

    // Tail steps (one per layer) degenerate to a single quantum,
    // where the probe already holds the exact demands.
    const auto entries = step == cfg_.quantum
        ? std::move(probe)
        : computeDemands(running, step);
    const auto grants = arbitrate(entries, step);
    const StepOutcome out = advanceEntries(entries, grants, step);
    accountStep(step, out);
    dispatchBoundaries(out.events);
}

Cycles
Soc::gridCeil(Cycles t) const
{
    if (t <= now_)
        return now_ + cfg_.quantum;
    const Cycles k =
        (t - now_ + cfg_.quantum - 1) / cfg_.quantum;
    return now_ + k * cfg_.quantum;
}

void
Soc::beginRun(Cycles max_cycles)
{
    if (!sorted_)
        sortArrivals();
    run_max_cycles_ = max_cycles == 0 ? cfg_.maxCycles : max_cycles;
    if (!began_) {
        next_sched_tick_ = 0;
        began_ = true;
    }
}

bool
Soc::stepOnce(Cycles horizon)
{
    if (!began_)
        panic("stepOnce before beginRun");
    if (allDone())
        return false;
    if (horizon != 0 && now_ >= horizon)
        panic("stepOnce: now=%llu is at/past horizon %llu",
              static_cast<unsigned long long>(now_),
              static_cast<unsigned long long>(horizon));
    if (now_ > run_max_cycles_)
        fatal("simulation exceeded %llu cycles; policy deadlock?",
              static_cast<unsigned long long>(run_max_cycles_));

    if (cfg_.kernel == SimKernel::Event)
        stepEvent(horizon);
    else
        stepQuantum(horizon);
    return !allDone();
}

void
Soc::injectJob(const JobSpec &spec)
{
    if (!began_)
        panic("injectJob before beginRun (use addJob)");
    if (spec.model == nullptr)
        fatal("job %d has no model", spec.id);
    if (spec.id != static_cast<int>(jobs_.size()))
        fatal("job ids must be dense and in insertion order "
              "(got %d, expected %zu)", spec.id, jobs_.size());
    if (spec.dispatch < now_)
        fatal("injectJob(%d): dispatch %llu is before now %llu",
              spec.id, static_cast<unsigned long long>(spec.dispatch),
              static_cast<unsigned long long>(now_));
    const Cycles pending = nextArrivalCycle();
    if (pending != kNoArrival &&
        spec.dispatch < jobs_[arrival_order_.back()].spec.dispatch)
        fatal("injectJob(%d): dispatch order violated", spec.id);

    Job job;
    job.spec = spec;
    jobs_.push_back(std::move(job));
    // Injections arrive in nondecreasing dispatch order, so the
    // sorted arrival order is maintained by appending.
    arrival_order_.push_back(spec.id);
}

void
Soc::finishRun()
{
    stats_.cyclesSimulated = now_;
    stats_.memTraffic = mem_->traffic();
    stats_.l2Bytes = 0;
    for (const auto &j : jobs_)
        stats_.l2Bytes += j.l2BytesMoved;
    stats_.dramBusyFraction =
        now_ > 0 ? dram_busy_cycles_ / static_cast<double>(now_) : 0.0;
}

void
Soc::run(Cycles max_cycles)
{
    beginRun(max_cycles);
    while (stepOnce()) {
    }
    finishRun();
}

} // namespace moca::sim
